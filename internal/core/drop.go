package core

import (
	"fmt"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
)

// DropAssociation removes an association and its mapping fragment,
// restoring the affected table's update view from the surviving fragments.
// Removing pairs cannot invalidate a valid mapping, so no containment
// checks are needed.
type DropAssociation struct {
	Name string
}

// Describe implements SMO.
func (op *DropAssociation) Describe() string { return fmt.Sprintf("DropAssociation(%s)", op.Name) }

func (op *DropAssociation) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	g := m.FragForAssoc(op.Name)
	if err := m.Client.RemoveAssociation(op.Name); err != nil {
		return err
	}
	delete(v.Assoc, op.Name)
	if g == nil {
		return nil
	}
	m.RemoveFrag(g)
	if len(m.FragsOnTable(g.Table)) == 0 {
		delete(v.Update, g.Table)
		return nil
	}
	uv, err := compiler.New().UpdateView(m, g.Table)
	if err != nil {
		return err
	}
	v.SetUpdate(g.Table, uv)
	ic.Stats.BuiltViews++
	ic.markUpdate(g.Table)
	return nil
}

// DropEntity removes a leaf entity type (§3.4). References to the type are
// eliminated from fragment conditions and update views; fragments whose
// condition becomes unsatisfiable are removed, and the query views of the
// type's ancestors are regenerated without it. Dropping a type cannot make
// a valid mapping invalid, so no containment checks are needed.
type DropEntity struct {
	Name string
}

// Describe implements SMO.
func (op *DropEntity) Describe() string { return fmt.Sprintf("DropEntity(%s)", op.Name) }

func (op *DropEntity) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	ty := m.Client.Type(op.Name)
	if ty == nil {
		return fmt.Errorf("unknown entity type %q", op.Name)
	}
	set := m.Client.SetFor(op.Name)
	ancestors := m.Client.Ancestors(op.Name)
	for _, a := range m.Client.Associations() {
		if a.End1.Type == op.Name || a.End2.Type == op.Name {
			return fmt.Errorf("drop association %q first", a.Name)
		}
	}
	if err := m.Client.RemoveType(op.Name); err != nil {
		return err
	}

	// Rewrite conditions: any IS OF E atom is now false.
	eliminate := func(c cond.Expr) cond.Expr {
		return cond.MapAtoms(c, func(e cond.Expr) cond.Expr {
			if t, ok := e.(cond.TypeIs); ok && t.Type == op.Name {
				return cond.False{}
			}
			return e
		})
	}

	th := m.Client.TheoryFor(set.Name)
	keep := make([]*frag.Fragment, 0, len(m.Frags))
	removedTables := map[string]bool{}
	for _, f := range m.Frags {
		if f.Set != set.Name {
			keep = append(keep, f)
			continue
		}
		// Rewritten fragments get private copies; untouched ones stay
		// shared with the previous generation.
		if nc := eliminate(f.ClientCond); nc != f.ClientCond {
			nf := f.Clone()
			nf.ClientCond = nc
			f = nf
		}
		if !ic.satisfiable(th, f.ClientCond) {
			removedTables[f.Table] = true
			continue
		}
		keep = append(keep, f)
	}
	m.Frags = keep
	// A table is only unmapped if no surviving fragment mentions it.
	for _, f := range m.Frags {
		delete(removedTables, f.Table)
	}

	// Views: drop the type's query view; regenerate ancestors' views from
	// the adapted fragments; rewrite update-view conditions and drop views
	// of unmapped tables.
	delete(v.Query, op.Name)
	comp := compiler.New()
	for _, f := range ancestors {
		qv, err := comp.QueryView(m, set.Name, f)
		if err != nil {
			return err
		}
		v.SetQuery(f, qv)
		ic.Stats.BuiltViews++
		ic.markQuery(f)
	}
	mentions := func(c cond.Expr) bool {
		for _, a := range cond.Atoms(c) {
			if a.Kind == cond.AtomType && a.Type == op.Name {
				return true
			}
		}
		return false
	}
	for table, view := range v.Update {
		if removedTables[table] {
			delete(v.Update, table)
			continue
		}
		if !cqt.AnyCond(view.Q, mentions) {
			continue
		}
		nview := v.MutableUpdate(table)
		nview.Q = cqt.MapConds(nview.Q, eliminate)
		ic.Stats.AdaptedViews++
		ic.markUpdate(table)
	}
	return nil
}
