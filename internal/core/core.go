// Package core implements the paper's contribution: the incremental
// mapping compiler of Bernstein et al. (SIGMOD 2013). Given a mapping that
// has already been validated and compiled into query and update views, a
// schema modification operation (SMO) is compiled into incremental
// modifications of the schemas, fragments and views, validating only the
// neighbourhood of the change instead of the whole mapping.
//
// Each SMO provides the four algorithms of §1.2: adapt/create query views,
// adapt/create update views, adapt the fragment set, and validate the new
// mapping with localized query-containment checks.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/containment"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/rel"
)

// Process-wide metric counters for the incremental compiler, resolved once.
// Per-Apply deltas of the Stats struct are mirrored into them when ApplyCtx
// returns, so every applier site is covered without per-site wiring.
var (
	mApplies           = obsv.Metrics().Counter(obsv.MApplies)
	mApplyContainments = obsv.Metrics().Counter(obsv.MApplyContainments)
	mApplyAdaptedViews = obsv.Metrics().Counter(obsv.MApplyAdaptedViews)
	mApplyBuiltViews   = obsv.Metrics().Counter(obsv.MApplyBuiltViews)
	mApplyCacheHits    = obsv.Metrics().Counter(obsv.MApplyCacheHits)
	mApplyCacheMisses  = obsv.Metrics().Counter(obsv.MApplyCacheMisses)
	mApplyCancelled    = obsv.Metrics().Counter(obsv.MApplyCancelled)
)

// ErrUnsupportedSMO reports that an operation cannot be compiled
// incrementally: it is not one of the executable SMOs of §3 (or a Planner
// resolving to one). Callers holding a full compiler can respond by
// falling back to full recompilation, as §1.2 of the paper prescribes;
// the pipeline package automates exactly that ladder.
var ErrUnsupportedSMO = errors.New("SMO is not incrementally compilable")

// Options tunes the incremental compiler.
type Options struct {
	// NoSimplify disables simplification of evolved views and containment
	// inputs (the simplifier ablation).
	NoSimplify bool
	// WideValidation re-checks every foreign key of every mapped table
	// instead of only the SMO's neighbourhood (the neighbourhood-
	// restriction ablation).
	WideValidation bool
	// SatCache, when non-nil, memoizes satisfiability/implication verdicts.
	// Passing the cache the full compiler used lets neighbourhood
	// re-validation after an SMO reuse verdicts from the original compile;
	// when nil a private cache is created, still deduplicating within the
	// incremental compilation itself.
	SatCache *cond.SatCache
	// Budget bounds the validation work of one Apply. When a limit is
	// reached, Apply returns a *fault.BudgetExceededError (wrapped with
	// the SMO's description), distinguishable from a validation failure.
	Budget fault.Budget
	// SkipValidation applies the SMO's schema, fragment and view changes
	// without the neighbourhood containment checks. Used by the fallback
	// path of the pipeline package, which re-validates the evolved mapping
	// with a full compilation; not meant for direct use.
	SkipValidation bool
	// Tracer, when non-nil, records each Apply as a hierarchical span tree
	// (Apply → adapt-fragments / adapt-views / incremental-validate →
	// containment-check). When nil the process-wide tracer installed with
	// obsv.SetDefault is used; with no tracer installed anywhere no spans
	// are created.
	Tracer *obsv.Tracer
}

// Stats reports the work one or more Apply calls performed.
type Stats struct {
	Containments int64
	Implications int64
	AdaptedViews int64
	BuiltViews   int64
	// CacheHits and CacheMisses count satisfiability-cache lookups issued
	// by incremental validation.
	CacheHits   int64
	CacheMisses int64
	// Cancelled counts Apply calls stopped by context cancellation or
	// deadline expiry.
	Cancelled int64
}

// Incremental is the incremental mapping compiler.
type Incremental struct {
	Opts  Options
	Stats Stats

	cache *cond.SatCache

	// ctx and start hold the cancellation and budget anchors of the
	// in-flight ApplyCtx; appliers reach them through the checker and the
	// decision procedures. An Incremental must not be shared by
	// concurrent Apply calls (each call mutates these and Stats).
	ctx   context.Context
	start time.Time

	// tr is the resolved tracer (nil when tracing is off), root the
	// in-flight Apply's span, and valSpan the lazily opened
	// "incremental-validate" child grouping the neighbourhood containment
	// checks; valMade latches its creation so a traced Apply opens it at
	// most once.
	tr      *obsv.Tracer
	root    *obsv.Span
	valSpan *obsv.Span
	valMade bool

	// touchedQuery/touchedUpdate track the views an SMO created or
	// restructured, so only the neighbourhood of the change is
	// re-simplified.
	touchedQuery  map[string]bool
	touchedUpdate map[string]bool
}

func (ic *Incremental) markQuery(ty string)     { ic.touchedQuery[ty] = true }
func (ic *Incremental) markUpdate(table string) { ic.touchedUpdate[table] = true }

// NewIncremental returns an incremental compiler with default options.
func NewIncremental() *Incremental { return &Incremental{} }

// SMO is a schema modification operation: a small change to the client
// schema plus a directive on how the change maps to tables. The concrete
// SMOs of this package implement it directly; external packages (such as
// the MoDEF-style planner) provide Planner implementations that are
// resolved against the evolved mapping at application time.
type SMO interface {
	// Describe names the operation for logs and errors.
	Describe() string
}

// applier is the internal face of an executable SMO.
type applier interface {
	SMO
	// apply mutates the (cloned) mapping and views; an error aborts the
	// compilation and the caller's originals stay untouched.
	apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error
}

// Planner is an SMO that is synthesised lazily against the current mapping
// (e.g. by mapping-style inference), possibly extending the store schema
// as its table directive.
type Planner interface {
	SMO
	// Plan resolves the operation against the mapping it will be applied
	// to. It may mutate the mapping's store schema (adding tables or
	// columns) but not the client schema or fragments.
	Plan(m *frag.Mapping) (SMO, error)
}

// Apply incrementally compiles one SMO: it adapts the mapping and views and
// validates the neighbourhood of the change. On success the evolved mapping
// and views are returned; on failure an error is returned and the inputs
// are left untouched, matching the paper's abort semantics.
//
// The evolved generation is a copy-on-write snapshot of the inputs:
// untouched fragments, schema entries and view trees are shared with the
// originals, and appliers copy exactly the objects they change (through
// MutableFrag, MutableQuery/MutableUpdate and the schema mutators). Apply
// therefore does O(change) copying work per SMO, not O(model).
func (ic *Incremental) Apply(m *frag.Mapping, v *frag.Views, op SMO) (*frag.Mapping, *frag.Views, error) {
	return ic.ApplyCtx(context.Background(), m, v, op)
}

// ApplyCtx is Apply with cooperative cancellation and budget enforcement.
// Cancellation is observed before the SMO is applied and inside every
// neighbourhood containment check, so a cancelled compilation aborts with
// ctx.Err() (wrapped with the SMO's description) and the inputs stay
// untouched — the same abort semantics as a validation failure. When
// Options.Budget is limited, exhausting it aborts with a
// *fault.BudgetExceededError instead.
func (ic *Incremental) ApplyCtx(ctx context.Context, m *frag.Mapping, v *frag.Views, op SMO) (rm *frag.Mapping, rv *frag.Views, err error) {
	ic.ctx = ctx
	ic.start = time.Now()
	ic.tr = obsv.Resolve(ic.Opts.Tracer)
	ic.root = ic.tr.SpanCtx(ctx, "Apply", obsv.String("smo", op.Describe()))
	mApplies.Add(1)
	st0 := ic.Stats
	defer func() {
		ic.valSpan.End(fault.Outcome(err))
		ic.root.End(fault.Outcome(err))
		ic.ctx, ic.root, ic.valSpan, ic.valMade = nil, nil, nil, false
		mApplyContainments.Add(ic.Stats.Containments - st0.Containments)
		mApplyAdaptedViews.Add(ic.Stats.AdaptedViews - st0.AdaptedViews)
		mApplyBuiltViews.Add(ic.Stats.BuiltViews - st0.BuiltViews)
		mApplyCacheHits.Add(ic.Stats.CacheHits - st0.CacheHits)
		mApplyCacheMisses.Add(ic.Stats.CacheMisses - st0.CacheMisses)
		mApplyCancelled.Add(ic.Stats.Cancelled - st0.Cancelled)
	}()
	if err := ctx.Err(); err != nil {
		ic.Stats.Cancelled++
		return nil, nil, fmt.Errorf("%s: %w", op.Describe(), err)
	}
	nm := m.Clone()
	nv := v.Clone()
	ic.touchedQuery = map[string]bool{}
	ic.touchedUpdate = map[string]bool{}
	resolved := op
	for i := 0; i < 4; i++ {
		p, ok := resolved.(Planner)
		if !ok {
			break
		}
		next, err := p.Plan(nm)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", op.Describe(), err)
		}
		resolved = next
	}
	a, ok := resolved.(applier)
	if !ok {
		return nil, nil, fmt.Errorf("%s: %w", op.Describe(), ErrUnsupportedSMO)
	}
	if err := a.apply(ic, nm, nv); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ic.Stats.Cancelled++
		}
		return nil, nil, fmt.Errorf("%s: %w", op.Describe(), err)
	}
	// Re-observe the context after the applier: a cancellation that landed
	// where no containment check was running must still abort the op — a
	// cancelled compile never commits, deterministically. This is what
	// keeps ApplyAll's abort semantics intact under cancellation: without
	// it, a step whose validation happened to finish first would return
	// success and leak a generation the caller asked to abandon.
	if err := ctx.Err(); err != nil {
		ic.Stats.Cancelled++
		return nil, nil, fmt.Errorf("%s: %w", op.Describe(), err)
	}
	if !ic.Opts.NoSimplify {
		ic.simplifyViews(nm, nv)
	}
	return nm, nv, nil
}

// ApplyAll compiles a sequence of SMOs, aborting at the first failure.
// Each step derives a copy-on-write generation from the previous one, so
// state is shared across the whole sequence and the total copying work is
// O(total change) — one cheap generation per op — rather than one full
// clone per op.
func (ic *Incremental) ApplyAll(m *frag.Mapping, v *frag.Views, ops ...SMO) (*frag.Mapping, *frag.Views, error) {
	return ic.ApplyAllCtx(context.Background(), m, v, ops...)
}

// ApplyAllCtx is ApplyAll with cooperative cancellation: the context is
// re-checked between steps and inside each step's validation, and the
// whole sequence aborts on the first failure — including a cancellation —
// with the callers' input generation untouched. The intermediate
// generations built before the abort are discarded, never returned, so a
// cancelled sequence cannot leak a half-evolved mapping.
func (ic *Incremental) ApplyAllCtx(ctx context.Context, m *frag.Mapping, v *frag.Views, ops ...SMO) (*frag.Mapping, *frag.Views, error) {
	for _, op := range ops {
		var err error
		m, v, err = ic.ApplyCtx(ctx, m, v, op)
		if err != nil {
			return nil, nil, err
		}
	}
	return m, v, nil
}

func (ic *Incremental) simplifyViews(m *frag.Mapping, v *frag.Views) {
	cat := m.Catalog()
	for ty := range ic.touchedQuery {
		if view := v.MutableQuery(ty); view != nil {
			view.Q = cqt.Simplify(cat, view.Q)
		}
	}
	for table := range ic.touchedUpdate {
		if view := v.MutableUpdate(table); view != nil {
			view.Q = cqt.Simplify(cat, view.Q)
		}
	}
}

// satCache resolves the decision cache: the shared one from Options, or a
// lazily created private one.
func (ic *Incremental) satCache() *cond.SatCache {
	if ic.cache == nil {
		if ic.Opts.SatCache != nil {
			ic.cache = ic.Opts.SatCache
		} else {
			ic.cache = cond.NewSatCache()
		}
	}
	return ic.cache
}

func (ic *Incremental) countCache(hit bool) {
	if hit {
		ic.Stats.CacheHits++
	} else {
		ic.Stats.CacheMisses++
	}
}

// satisfiable, implies, disjoint and tautology are the incremental
// compiler's cache-backed decision procedures, used by the SMO
// neighbourhood checks.
func (ic *Incremental) satisfiable(t cond.Theory, x cond.Expr) bool {
	v, hit := ic.satCache().SatisfiableHit(t, x)
	ic.countCache(hit)
	return v
}

func (ic *Incremental) implies(t cond.Theory, a, b cond.Expr) bool {
	v, hit := ic.satCache().ImpliesHit(t, a, b)
	ic.countCache(hit)
	return v
}

func (ic *Incremental) disjoint(t cond.Theory, a, b cond.Expr) bool {
	v, hit := ic.satCache().DisjointHit(t, a, b)
	ic.countCache(hit)
	return v
}

func (ic *Incremental) tautology(t cond.Theory, x cond.Expr) bool {
	return !ic.satisfiable(t, cond.NewNot(x))
}

func (ic *Incremental) checker(m *frag.Mapping) *containment.Checker {
	ch := containment.NewChecker(m.Catalog())
	ch.Simplify = !ic.Opts.NoSimplify
	ch.Cache = ic.satCache()
	ch.Budget = ic.Opts.Budget
	ch.Start = ic.start
	ch.Op = "incremental compile"
	return ch
}

// applyCtx is the context of the in-flight ApplyCtx (Background for plain
// Apply calls and for hand-constructed Incrementals driving the helpers
// directly in tests).
func (ic *Incremental) applyCtx() context.Context {
	if ic.ctx == nil {
		return context.Background()
	}
	return ic.ctx
}

// valCtx is applyCtx carrying the Apply's "incremental-validate" span,
// opened lazily on the first neighbourhood check so SMOs that validate
// nothing record no validation span. Containment checks issued with this
// context parent their spans under it.
func (ic *Incremental) valCtx() context.Context {
	if !ic.valMade {
		ic.valMade = true
		ic.valSpan = ic.root.Child("incremental-validate")
	}
	return obsv.ContextWithSpan(ic.applyCtx(), ic.valSpan)
}

func (ic *Incremental) absorb(ch *containment.Checker) {
	ic.Stats.Containments += ch.Stats.Containments
	ic.Stats.Implications += ch.Stats.Implications
	ic.Stats.CacheHits += ch.Stats.CacheHits
	ic.Stats.CacheMisses += ch.Stats.CacheMisses
}

// adaptClientCond implements the condition adaptation shared by fragment
// adaptation (§3.1.3) and update-view adaptation (Algorithm 2): after
// adding entity type E with ancestor reference P,
//
//   - IS OF (ONLY P) becomes IS OF (ONLY P) ∨ IS OF E (line 7), and
//   - IS OF F, for F a proper ancestor of E and proper descendant of P,
//     becomes the disjunction of line 14 that rules out E.
//
// pset is that set of in-between types.
func adaptClientCond(m *frag.Mapping, x cond.Expr, newType, p string, pset []string) cond.Expr {
	inP := map[string]bool{}
	for _, f := range pset {
		inP[f] = true
	}
	return cond.MapAtoms(x, func(e cond.Expr) cond.Expr {
		t, ok := e.(cond.TypeIs)
		if !ok {
			return e
		}
		if t.Only && p != "" && t.Type == p {
			return cond.NewOr(t, cond.TypeIs{Var: t.Var, Type: newType})
		}
		if !t.Only && inP[t.Type] {
			var parts []cond.Expr
			for _, fp := range pset {
				if !m.Client.IsSubtype(fp, t.Type) {
					continue
				}
				parts = append(parts, cond.TypeIs{Var: t.Var, Type: fp, Only: true})
				for _, ch := range m.Client.Children(fp) {
					if ch == newType || inP[ch] {
						continue
					}
					parts = append(parts, cond.TypeIs{Var: t.Var, Type: ch})
				}
			}
			return cond.NewOr(parts...)
		}
		return e
	})
}

// adaptFragments rewrites the client conditions of the fragments over one
// entity set (§3.1.3). Fragments whose condition is unaffected stay shared
// with the previous generation; only genuinely rewritten ones are copied
// (the rewrite rebuilds through the hash-consing constructors, so == tells
// the two cases apart).
func (ic *Incremental) adaptFragments(m *frag.Mapping, setName, newType, p string, pset []string) {
	sp := ic.root.Child("adapt-fragments", obsv.String("set", setName))
	rewritten := 0
	for _, f := range m.Frags {
		if f.Set != setName {
			continue
		}
		nc := adaptClientCond(m, f.ClientCond, newType, p, pset)
		if nc == f.ClientCond {
			continue
		}
		m.MutableFrag(f).ClientCond = nc
		rewritten++
	}
	sp.End(obsv.OutcomeOK, obsv.String("rewritten", strconv.Itoa(rewritten)))
}

// adaptUpdateViews rewrites the conditions of every update view except the
// new table's (Algorithm 2, lines 4-17). Views whose conditions mention
// neither IS OF (ONLY P) nor any type of pset are untouched, which keeps
// the adaptation proportional to the neighbourhood rather than the model.
func (ic *Incremental) adaptUpdateViews(m *frag.Mapping, v *frag.Views, skipTable, newType, p string, pset []string) {
	sp := ic.root.Child("adapt-views")
	adapted0 := ic.Stats.AdaptedViews
	defer func() {
		sp.End(obsv.OutcomeOK, obsv.String("adapted", strconv.FormatInt(ic.Stats.AdaptedViews-adapted0, 10)))
	}()
	inP := map[string]bool{}
	for _, f := range pset {
		inP[f] = true
	}
	affected := func(c cond.Expr) bool {
		for _, a := range cond.Atoms(c) {
			if a.Kind != cond.AtomType {
				continue
			}
			if a.Only && p != "" && a.Type == p {
				return true
			}
			if !a.Only && inP[a.Type] {
				return true
			}
		}
		return false
	}
	for table, view := range v.Update {
		if table == skipTable {
			continue
		}
		if !cqt.AnyCond(view.Q, affected) {
			continue
		}
		nview := v.MutableUpdate(table)
		nview.Q = cqt.MapConds(nview.Q, func(c cond.Expr) cond.Expr {
			return adaptClientCond(m, c, newType, p, pset)
		})
		ic.Stats.AdaptedViews++
	}
}

// betweenTypes computes p: the proper ancestors of E that are proper
// descendants of P ("" meaning NIL, of which every type is a descendant).
func betweenTypes(m *frag.Mapping, e, p string) []string {
	var out []string
	for _, a := range m.Client.Ancestors(e) {
		if p != "" && (a == p || !m.Client.IsSubtype(a, p)) {
			continue
		}
		if a == p {
			continue
		}
		out = append(out, a)
	}
	return out
}

// ancestorsOfP computes anc for Algorithm 1: P and its proper ancestors
// (empty when P is NIL).
func ancestorsOfP(m *frag.Mapping, p string) []string {
	if p == "" {
		return nil
	}
	return append([]string{p}, m.Client.Ancestors(p)...)
}

// checkContainment runs one localized containment check and wraps a failed
// result in the paper's abort semantics. Under Options.SkipValidation (the
// pipeline fallback path, which re-validates by full compilation) it is a
// no-op.
func (ic *Incremental) checkContainment(ch *containment.Checker, a, b cqt.Expr, what string) error {
	if ic.Opts.SkipValidation {
		return nil
	}
	ok, err := ch.ContainsCtx(ic.valCtx(), a, b)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("validation failed: %s", what)
	}
	return nil
}

// fkCheck validates one foreign key of table tab against the current update
// views: π_{β AS γ}(σ_{β NOT NULL}(Q_tab)) ⊆ π_γ(Q_ref). pres, when
// non-nil, shares prenormalized right sides between checks that reference
// the same table through the same columns (see wideFKRecheck); one-off
// checks pass nil.
func (ic *Incremental) fkCheck(ch *containment.Checker, m *frag.Mapping, v *frag.Views, tab string, fk rel.ForeignKey, pres map[string]*containment.Prenorm) error {
	if ic.Opts.SkipValidation {
		return nil
	}
	refView, ok := v.Update[fk.RefTable]
	if !ok {
		return fmt.Errorf("validation failed: foreign key %s of %s references unmapped table %s", fk.Name, tab, fk.RefTable)
	}
	tabView, ok := v.Update[tab]
	if !ok {
		return fmt.Errorf("internal: no update view for %s", tab)
	}
	var notNull []cond.Expr
	cols := make([]cqt.ProjCol, 0, len(fk.Cols))
	for i, c := range fk.Cols {
		notNull = append(notNull, cond.NotNull(c))
		cols = append(cols, cqt.ColAs(c, fk.RefCols[i]))
	}
	lhs := cqt.Project{In: cqt.Select{In: tabView.Q, Cond: cond.NewAnd(notNull...)}, Cols: cols}
	rcols := make([]cqt.ProjCol, 0, len(fk.RefCols))
	for _, c := range fk.RefCols {
		rcols = append(rcols, cqt.Col(c))
	}
	rhs := cqt.Project{In: refView.Q, Cols: rcols}
	what := fmt.Sprintf("update views violate foreign key %s → %s", fk.Name, fk.RefTable)

	if pres == nil {
		return ic.checkContainment(ch, lhs, rhs, what)
	}
	key := fk.RefTable + "\x00" + strings.Join(fk.RefCols, "\x00")
	pre, ok := pres[key]
	if !ok {
		var err error
		pre, err = ch.PrenormalizeRight(rhs)
		if err != nil {
			return err
		}
		pres[key] = pre
	}
	cok, err := ch.ContainsPreCtx(ic.valCtx(), lhs, pre)
	if err != nil {
		return err
	}
	if !cok {
		return fmt.Errorf("validation failed: %s", what)
	}
	return nil
}

// wideFKRecheck re-validates every foreign key of every mapped table (the
// neighbourhood ablation). The referenced-view side of each containment is
// prenormalized once per (table, columns) pair and shared across the sweep.
func (ic *Incremental) wideFKRecheck(ch *containment.Checker, m *frag.Mapping, v *frag.Views) error {
	pres := map[string]*containment.Prenorm{}
	for _, tn := range m.MappedTables() {
		tab := m.Store.Table(tn)
		for _, fk := range tab.FKs {
			written := false
			for _, f := range m.FragsOnTable(tn) {
				for _, c := range fk.Cols {
					if f.MapsCol(c) {
						written = true
					}
				}
			}
			if !written {
				continue
			}
			if err := ic.fkCheck(ch, m, v, tn, fk, pres); err != nil {
				return err
			}
		}
	}
	return nil
}

// unionAlign pads two queries to a common column set (NULLs for missing
// columns) so they can be unioned. Column kinds are resolved from the
// client schema where possible.
func unionAlign(m *frag.Mapping, setName string, a, b cqt.Expr) (cqt.Expr, cqt.Expr, error) {
	cat := m.Catalog()
	ac, err := cat.Cols(a)
	if err != nil {
		return nil, nil, err
	}
	bc, err := cat.Cols(b)
	if err != nil {
		return nil, nil, err
	}
	have := func(cols []string, c string) bool {
		for _, x := range cols {
			if x == c {
				return true
			}
		}
		return false
	}
	union := append([]string(nil), ac...)
	for _, c := range bc {
		if !have(ac, c) {
			union = append(union, c)
		}
	}
	pad := func(e cqt.Expr, cols []string) cqt.Expr {
		out := make([]cqt.ProjCol, 0, len(union))
		for _, c := range union {
			if have(cols, c) {
				out = append(out, cqt.Col(c))
			} else {
				out = append(out, cqt.LitAs(cqt.NullOf(colKind(m, setName, c)), c))
			}
		}
		return cqt.Project{In: e, Cols: out}
	}
	return pad(a, ac), pad(b, bc), nil
}

// colKind guesses the kind of a view output column: a client attribute of
// the set's hierarchy, a boolean provenance flag, or the string type tag.
func colKind(m *frag.Mapping, setName, col string) cond.Kind {
	set := m.Client.Set(setName)
	if set != nil {
		for _, ty := range append([]string{set.Type}, m.Client.Descendants(set.Type)...) {
			if a, ok := m.Client.Attr(ty, col); ok {
				return a.Type
			}
		}
	}
	if col == "__type" {
		return cond.KindString
	}
	return cond.KindBool
}

// typeFlagCol names the provenance flag introduced for a newly added type
// (the paper's t_E attribute).
func typeFlagCol(ty string) string { return "__t_" + ty }
