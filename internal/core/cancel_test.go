package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// cancelPlanner resolves to the wrapped SMO after firing cancel, so the
// cancellation lands deterministically between SMO resolution and the
// applier's neighbourhood validation — "mid-compile" without sleeping.
type cancelPlanner struct {
	op     SMO
	cancel context.CancelFunc
}

func (p cancelPlanner) Describe() string { return p.op.Describe() }
func (p cancelPlanner) Plan(m *frag.Mapping) (SMO, error) {
	p.cancel()
	return p.op, nil
}

func TestApplyCancelBeforeStart(t *testing.T) {
	m, v := compiled(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ic := NewIncremental()
	nm, nv, err := ic.ApplyCtx(ctx, m, v, employeeSMO())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if nm != nil || nv != nil {
		t.Fatal("cancelled Apply returned a generation")
	}
	if ic.Stats.Cancelled != 1 {
		t.Fatalf("Stats.Cancelled = %d, want 1", ic.Stats.Cancelled)
	}
}

func TestApplyCancelMidValidationLeavesInputsIntact(t *testing.T) {
	m, v := compiled(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ic := NewIncremental()
	nm, nv, err := ic.ApplyCtx(ctx, m, v, cancelPlanner{op: employeeSMO(), cancel: cancel})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if nm != nil || nv != nil {
		t.Fatal("cancelled Apply returned a generation")
	}
	if ic.Stats.Cancelled != 1 {
		t.Fatalf("Stats.Cancelled = %d, want 1", ic.Stats.Cancelled)
	}
	// The pre-SMO generation must be untouched: no Employee type leaked
	// into the client schema, and the original views still roundtrip.
	if m.Client.Type("Employee") != nil {
		t.Fatal("cancelled Apply leaked the new type into the input mapping")
	}
	cs := state.NewClientState()
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatalf("pre-SMO generation no longer roundtrips: %v", err)
	}
}

// TestApplyAllCancelAbort is the regression test for ApplyAll abort
// semantics under cancellation: when a later op of the sequence is
// cancelled, the whole sequence aborts — no partial generation is
// returned, and the original inputs stay untouched — exactly as it aborts
// on a validation error.
func TestApplyAllCancelAbort(t *testing.T) {
	m, v := compiled(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ic := NewIncremental()
	// Op 1 (Employee) succeeds; op 2 (Customer) cancels the context while
	// resolving, so its validation observes the cancellation.
	nm, nv, err := ic.ApplyAllCtx(ctx, m, v,
		employeeSMO(),
		cancelPlanner{op: customerSMO(), cancel: cancel})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if nm != nil || nv != nil {
		t.Fatal("aborted ApplyAll returned a partial generation")
	}
	if m.Client.Type("Employee") != nil || m.Client.Type("Customer") != nil {
		t.Fatal("aborted ApplyAll leaked types into the input mapping")
	}
	if _, ok := v.Update["Emp"]; ok {
		t.Fatal("aborted ApplyAll leaked an update view into the input views")
	}
}

func TestApplyBudgetWallTime(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	ic.Opts.Budget = fault.Budget{MaxWallTime: time.Nanosecond}
	nm, nv, err := ic.Apply(m, v, employeeSMO())
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	if nm != nil || nv != nil {
		t.Fatal("budget-stopped Apply returned a generation")
	}
	if be.Op == "" {
		t.Fatalf("budget error not labelled with the SMO: %+v", be)
	}
}

func TestApplyBudgetContainments(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	icb := NewIncremental()
	icb.Opts.Budget = fault.Budget{MaxContainments: 1}
	icb.Opts.WideValidation = true // re-check every FK: guaranteed > 1 containment
	_, _, err = icb.Apply(m, v, supportsSMO())
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	if be.Reason != "containments" {
		t.Fatalf("Reason = %q, want containments", be.Reason)
	}
	// The same op under no budget succeeds.
	if _, _, err := NewIncremental().Apply(m, v, supportsSMO()); err != nil {
		t.Fatalf("unbudgeted apply failed: %v", err)
	}
}

// TestSoakCancelMidValidation cancels incremental compilations mid-flight
// 100 times — alternating deterministic cancellation points and real
// timers — and each time diffs what survives against the pre-SMO
// generation. Run with -race in CI, this also shakes out unsynchronized
// stats or view mutations on the cancel path.
func TestSoakCancelMidValidation(t *testing.T) {
	m, v := compiled(t)
	cs := workload.PaperClientState()
	// Only Person data roundtrips through the initial mapping.
	keep := state.NewClientState()
	for _, e := range cs.Entities["Persons"] {
		if e.Type == "Person" {
			keep.Insert("Persons", e)
		}
	}
	if err := orm.Roundtrip(m, v, keep); err != nil {
		t.Fatalf("baseline roundtrip: %v", err)
	}

	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var op SMO = employeeSMO()
		if i%2 == 0 {
			op = cancelPlanner{op: op, cancel: cancel}
		} else {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*3*time.Microsecond)
		}
		ic := NewIncremental()
		nm, nv, err := ic.ApplyCtx(ctx, m, v, op)
		cancel()
		if err == nil {
			// The timer lost the race: the op compiled. Discard the new
			// generation; the shared inputs must still be intact below.
			if nm == nil || nv == nil {
				t.Fatalf("iteration %d: nil generation without error", i)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
		if nm != nil || nv != nil {
			t.Fatalf("iteration %d: cancelled Apply returned a generation", i)
		}
	}

	// The surviving generation is byte-for-byte the pre-SMO one: same
	// schema objects, and the same client state diff (empty) after a
	// materialize/load cycle.
	if m.Client.Type("Employee") != nil {
		t.Fatal("soak leaked the Employee type into the shared mapping")
	}
	if err := orm.Roundtrip(m, v, keep); err != nil {
		t.Fatalf("surviving generation diverged from pre-SMO: %v", err)
	}
}
