package core

import (
	"fmt"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
)

// RefactorAssocToInheritance is the refactoring SMO of §3.4: given an
// association A with cardinality 1 — 0..1 between entity types E1 and E2,
// delete A and make E2 a derived type of E1. Whenever an entity e2 was
// associated with e1 in the original schema, the new schema has a single
// entity of type E2 carrying the attribute values of both. The former
// association's foreign-key columns become the inheritance linkage: E2's
// table rows attach to E1's rows through them.
//
// The supported shape (matching how AddAssociationFK lays associations
// out) is: E2 is the root and only type of its own hierarchy, participates
// in no other association, and A is mapped to E2's table with E1's key in
// foreign-key columns. The paper notes this SMO is "a bit more
// complicated" because views above E1 and below E2 change; we require E2
// to be a leaf and regenerate the affected hierarchy's views from the
// adapted fragments.
type RefactorAssocToInheritance struct {
	Assoc string
}

// Describe implements SMO.
func (op *RefactorAssocToInheritance) Describe() string {
	return fmt.Sprintf("RefactorAssocToInheritance(%s)", op.Assoc)
}

func (op *RefactorAssocToInheritance) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	a := m.Client.Association(op.Assoc)
	if a == nil {
		return fmt.Errorf("unknown association %q", op.Assoc)
	}
	if a.End1.Mult == edm.Many && a.End2.Mult == edm.Many {
		return fmt.Errorf("association %q is many-to-many; refactoring needs 1 — 0..1", op.Assoc)
	}
	// Orient: e2 is the side that holds the association fragment's table
	// key (the "at most one partner" side), e1 becomes the base type.
	g := m.FragForAssoc(op.Assoc)
	if g == nil {
		return fmt.Errorf("association %q is not mapped", op.Assoc)
	}
	if a.End1.Type == a.End2.Type {
		return fmt.Errorf("association %q is self-referential", op.Assoc)
	}
	e2, e1 := a.End1.Type, a.End2.Type
	e1Cols := assocEndsOfType(m, a, e1)[0]

	// --- Preconditions ----------------------------------------------------
	if m.Client.Parent(e2) != "" || len(m.Client.Descendants(e2)) > 0 {
		return fmt.Errorf("type %q must be the only type of its hierarchy", e2)
	}
	set2 := m.Client.SetFor(e2)
	set1 := m.Client.SetFor(e1)
	if set2 == nil || set1 == nil {
		return fmt.Errorf("both endpoints must be persisted")
	}
	for _, other := range m.Client.Associations() {
		if other.Name == op.Assoc {
			continue
		}
		if other.End1.Type == e2 || other.End2.Type == e2 {
			return fmt.Errorf("type %q participates in association %q; drop it first", e2, other.Name)
		}
	}
	frags2 := m.FragsOnSet(set2.Name)
	if len(frags2) != 1 {
		return fmt.Errorf("type %q must be mapped by exactly one fragment", e2)
	}
	f2 := frags2[0]
	if f2.Table != g.Table {
		return fmt.Errorf("association %q must be mapped into %q's table", op.Assoc, e2)
	}
	// Attribute names must stay distinct under the merged hierarchy.
	for _, attr := range m.Client.AttrNames(e2) {
		if m.Client.HasAttr(e1, attr) {
			return fmt.Errorf("attribute %q exists on both %q and %q", attr, e1, e2)
		}
	}

	key1 := m.Client.KeyOf(e1)
	fkCols := make([]string, len(e1Cols))
	for i, c := range e1Cols {
		fkCols[i] = g.ColOf[c]
	}

	// --- Validation: every stored pair must reference an existing E1, so
	// the merged entities' inherited part is recoverable. This is the same
	// foreign-key preservation containment as check 3 of §3.2, issued over
	// the pre-refactoring views.
	ch := ic.checker(m)
	defer ic.absorb(ch)
	tab2 := m.Store.Table(g.Table)
	for _, fk := range tab2.FKs {
		if !overlap(fk.Cols, fkCols) {
			continue
		}
		if err := ic.fkCheck(ch, m, v, g.Table, fk, nil); err != nil {
			return err
		}
	}

	// --- Schema surgery -----------------------------------------------------
	oldKey2 := m.Client.KeyOf(e2)
	oldAttrs2 := m.Client.AttrNames(e2)
	if err := m.Client.RemoveAssociation(op.Assoc); err != nil {
		return err
	}
	if err := m.Client.RerootType(e2, e1); err != nil {
		return err
	}

	// --- Fragment adaptation --------------------------------------------------
	// E2's fragment becomes a TPT-style fragment of E1's set: it maps E1's
	// key (through the former FK columns) plus E2's own attributes
	// (including its former key, now a plain unique attribute).
	ic.adaptFragments(m, set1.Name, e2, e1, nil)
	f2 = m.MutableFrag(f2)
	f2.Set = set1.Name
	f2.ClientCond = cond.TypeIs{Type: e2}
	f2.Attrs = append(append([]string(nil), key1...), oldAttrs2...)
	newColOf := map[string]string{}
	for i, k := range key1 {
		newColOf[k] = fkCols[i]
	}
	for attr, col := range f2.ColOf {
		newColOf[attr] = col
	}
	f2.ColOf = newColOf
	f2.StoreCond = cond.NewAnd(notNullAll(fkCols)...)
	// Remove the association fragment.
	m.RemoveFrag(g)
	if err := m.CheckFragment(f2); err != nil {
		return err
	}
	_ = oldKey2

	// --- Views -----------------------------------------------------------------
	delete(v.Assoc, op.Assoc)
	delete(v.Query, e2)
	comp := compiler.New()
	uv, err := comp.UpdateView(m, g.Table)
	if err != nil {
		return err
	}
	v.SetUpdate(g.Table, uv)
	ic.Stats.BuiltViews++
	ic.markUpdate(g.Table)
	ic.adaptUpdateViews(m, v, g.Table, e2, e1, nil)

	// Regenerate the query views of E2 and of E1's chain up to the root —
	// the neighbourhood whose constructors gain the new derived type.
	affected := append([]string{e2, e1}, m.Client.Ancestors(e1)...)
	for _, ty := range affected {
		qv, err := comp.QueryView(m, set1.Name, ty)
		if err != nil {
			return err
		}
		v.SetQuery(ty, qv)
		ic.Stats.BuiltViews++
		ic.markQuery(ty)
	}
	return nil
}

func notNullAll(cols []string) []cond.Expr {
	out := make([]cond.Expr, len(cols))
	for i, c := range cols {
		out[i] = cond.NotNull(c)
	}
	return out
}
