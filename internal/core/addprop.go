package core

import (
	"fmt"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
)

// AddProperty adds an attribute to an existing entity type (§3.4). The new
// property is mapped either into a table that already stores the type's
// attributes (extending that fragment) or into a fresh table (adding a new
// TPT-style fragment). Query views of the type, its ancestors and its
// descendants are evolved so the new attribute becomes visible everywhere
// entities of the type can be constructed.
type AddProperty struct {
	// Type is E, the entity type gaining the property.
	Type string
	// Attr is the new attribute.
	Attr edm.Attribute
	// Table and Col say where the property is stored.
	Table string
	Col   string
}

// Describe implements SMO.
func (op *AddProperty) Describe() string {
	return fmt.Sprintf("AddProperty(%s.%s → %s.%s)", op.Type, op.Attr.Name, op.Table, op.Col)
}

func (op *AddProperty) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	if err := m.Client.AddAttr(op.Type, op.Attr); err != nil {
		return err
	}
	set := m.Client.SetFor(op.Type)
	if set == nil {
		return fmt.Errorf("type %q has no entity set", op.Type)
	}
	tab := m.Store.Table(op.Table)
	if tab == nil {
		return fmt.Errorf("unknown table %q", op.Table)
	}
	tc, ok := tab.Col(op.Col)
	if !ok {
		return fmt.Errorf("unknown column %s.%s", op.Table, op.Col)
	}
	if tc.Type != op.Attr.Type {
		return fmt.Errorf("dom(%s) ⊄ dom(%s)", op.Attr.Name, op.Col)
	}
	for _, f := range m.Frags {
		if f.Table == op.Table && f.MapsCol(op.Col) {
			return fmt.Errorf("column %s.%s is already mapped by fragment %s", op.Table, op.Col, f.ID)
		}
	}
	key := m.Client.KeyOf(op.Type)
	th := m.Client.TheoryFor(set.Name)

	// Find a fragment of this set on the table that covers all entities of
	// the type; extending it stores the property alongside the existing
	// attributes.
	var host *frag.Fragment
	for _, f := range m.FragsOnTable(op.Table) {
		if f.Set != set.Name {
			continue
		}
		ic.Stats.Implications++
		if ic.implies(th, cond.TypeIs{Type: op.Type}, f.ClientCond) {
			host = f
			break
		}
	}

	var sourceCond cond.Expr = cond.True{}
	var keyColOf map[string]string
	if host != nil {
		if !tc.Nullable && !hostExactlyCovers(th, host, op.Type, m, op.Table, ic) {
			return fmt.Errorf("column %s.%s must be nullable: table rows exist that are not %s entities", op.Table, op.Col, op.Type)
		}
		host = m.MutableFrag(host)
		host.Attrs = append(host.Attrs, op.Attr.Name)
		host.ColOf[op.Attr.Name] = op.Col
		sourceCond = host.StoreCond
		keyColOf = map[string]string{}
		for i, k := range key {
			kc, found := keyColOfFragment(host, k)
			if !found {
				return fmt.Errorf("fragment %s does not map the key attribute %q", host.ID, k)
			}
			keyColOf[k] = kc
			_ = i
		}
	} else {
		// Fresh table: the property gets its own TPT-style fragment.
		if len(m.FragsOnTable(op.Table)) > 0 {
			return fmt.Errorf("table %q stores other data; the property needs a table holding %s attributes or a fresh table", op.Table, op.Type)
		}
		keyColOf = map[string]string{}
		colOf := map[string]string{op.Attr.Name: op.Col}
		attrs := append(append([]string(nil), key...), op.Attr.Name)
		if len(tab.Key) != len(key) {
			return fmt.Errorf("table %q key arity does not match type %q", op.Table, op.Type)
		}
		for i, k := range key {
			colOf[k] = tab.Key[i]
			keyColOf[k] = tab.Key[i]
		}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         fmt.Sprintf("f_%s_%s_%s", op.Type, op.Attr.Name, op.Table),
			Set:        set.Name,
			ClientCond: cond.TypeIs{Type: op.Type},
			Attrs:      attrs,
			Table:      op.Table,
			StoreCond:  cond.True{},
			ColOf:      colOf,
		})
	}
	changed := host
	if changed == nil {
		changed = m.Frags[len(m.Frags)-1]
	}
	if err := m.CheckFragment(changed); err != nil {
		return err
	}

	// --- Update view of the affected table: regenerate from the adapted
	// fragments (only this table — the incremental scope; views of other
	// tables carry explicit projections, so the new attribute cannot leak
	// into them).
	comp := compiler.New()
	uv, err := comp.UpdateView(m, op.Table)
	if err != nil {
		return err
	}
	v.SetUpdate(op.Table, uv)
	ic.Stats.BuiltViews++
	ic.markUpdate(op.Table)

	// --- Validation: a fresh table's foreign keys must be preserved.
	ch := ic.checker(m)
	defer ic.absorb(ch)
	if host == nil {
		for _, fk := range tab.FKs {
			written := overlap(fk.Cols, []string{op.Col}) || overlap(fk.Cols, tab.Key)
			if !written {
				continue
			}
			if err := ic.fkCheck(ch, m, v, op.Table, fk, nil); err != nil {
				return err
			}
		}
	}
	if ic.Opts.WideValidation {
		if err := ic.wideFKRecheck(ch, m, v); err != nil {
			return err
		}
	}

	// --- Query views: extend every view that can construct E or a
	// descendant with a left outer join supplying the new column.
	source := cqt.Project{
		In: cqt.Select{In: cqt.ScanTable{Table: op.Table}, Cond: sourceCond},
		Cols: func() []cqt.ProjCol {
			cols := make([]cqt.ProjCol, 0, len(key)+1)
			for _, k := range key {
				cols = append(cols, cqt.ColAs(keyColOf[k], k))
			}
			return append(cols, cqt.ColAs(op.Col, op.Attr.Name))
		}(),
	}
	keyOn := make([][2]string, 0, len(key))
	for _, k := range key {
		keyOn = append(keyOn, [2]string{k, k})
	}
	affected := map[string]bool{op.Type: true}
	for _, a := range m.Client.Ancestors(op.Type) {
		affected[a] = true
	}
	for _, d := range m.Client.Descendants(op.Type) {
		affected[d] = true
	}
	for ty := range affected {
		qv := v.MutableQuery(ty)
		if qv == nil {
			continue
		}
		qv.Q = cqt.Join{Kind: cqt.LeftOuter, L: qv.Q, R: source, On: keyOn}
		ic.markQuery(ty)
		for i := range qv.Cases {
			if m.Client.IsSubtype(qv.Cases[i].Type, op.Type) {
				qv.Cases[i].Attrs[op.Attr.Name] = op.Attr.Name
			}
		}
		ic.Stats.AdaptedViews++
	}
	return nil
}

func keyColOfFragment(f *frag.Fragment, keyAttr string) (string, bool) {
	c, ok := f.ColOf[keyAttr]
	return c, ok
}

// hostExactlyCovers reports whether the host fragment's table rows all
// correspond to entities of the property's type, so a non-nullable column
// is safe.
func hostExactlyCovers(th cond.Theory, host *frag.Fragment, ty string, m *frag.Mapping, table string, ic *Incremental) bool {
	if len(m.FragsOnTable(table)) > 1 {
		return false
	}
	ic.Stats.Implications++
	return ic.implies(th, host.ClientCond, cond.TypeIs{Type: ty})
}
