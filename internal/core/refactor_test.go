package core

import (
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
)

// ownerAccountModel builds Person —(Owns, 0..1)— Account with Account
// mapped to its own table TAcc holding an OwnerId FK, the layout the
// refactoring SMO consumes.
func ownerAccountModel(t *testing.T) (*frag.Mapping, *frag.Views) {
	t.Helper()
	c := edm.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddType(edm.EntityType{
		Name: "Account",
		Attrs: []edm.Attribute{
			{Name: "AccId", Type: cond.KindInt},
			{Name: "Balance", Type: cond.KindInt, Nullable: true},
		},
		Key: []string{"AccId"},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))
	must(c.AddSet(edm.EntitySet{Name: "Accounts", Type: "Account"}))
	must(c.AddAssociation(edm.Association{
		Name: "Owns",
		End1: edm.End{Type: "Account", Mult: edm.ZeroOne},
		End2: edm.End{Type: "Person", Mult: edm.One},
	}))

	s := rel.NewSchema()
	must(s.AddTable(rel.Table{
		Name: "TPeople",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(s.AddTable(rel.Table{
		Name: "TAcc",
		Cols: []rel.Column{
			{Name: "AccId", Type: cond.KindInt},
			{Name: "Balance", Type: cond.KindInt, Nullable: true},
			{Name: "OwnerId", Type: cond.KindInt, Nullable: true},
		},
		Key: []string{"AccId"},
		FKs: []rel.ForeignKey{{Name: "fk_owner", Cols: []string{"OwnerId"}, RefTable: "TPeople", RefCols: []string{"Id"}}},
	}))

	m := &frag.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags,
		&frag.Fragment{
			ID: "f_person", Set: "Persons",
			ClientCond: cond.TypeIs{Type: "Person"},
			Attrs:      []string{"Id", "Name"},
			Table:      "TPeople", StoreCond: cond.True{},
			ColOf: map[string]string{"Id": "Id", "Name": "Name"},
		},
		&frag.Fragment{
			ID: "f_account", Set: "Accounts",
			ClientCond: cond.TypeIs{Type: "Account"},
			Attrs:      []string{"AccId", "Balance"},
			Table:      "TAcc", StoreCond: cond.True{},
			ColOf: map[string]string{"AccId": "AccId", "Balance": "Balance"},
		},
		&frag.Fragment{
			ID: "f_owns", Assoc: "Owns",
			ClientCond: cond.True{},
			Attrs:      []string{"Account_AccId", "Person_Id"},
			Table:      "TAcc", StoreCond: cond.NotNull("OwnerId"),
			ColOf: map[string]string{"Account_AccId": "AccId", "Person_Id": "OwnerId"},
		},
	)
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, views
}

func TestRefactorAssocToInheritance(t *testing.T) {
	m, v := ownerAccountModel(t)
	ic := NewIncremental()
	m, v, err := ic.Apply(m, v, &RefactorAssocToInheritance{Assoc: "Owns"})
	if err != nil {
		t.Fatal(err)
	}
	// Schema: Account now derives from Person; the Accounts set is gone.
	if got := m.Client.Parent("Account"); got != "Person" {
		t.Fatalf("Account parent = %q", got)
	}
	if m.Client.Set("Accounts") != nil {
		t.Fatal("Accounts set survived")
	}
	if m.Client.Association("Owns") != nil {
		t.Fatal("association survived")
	}
	// Merged entities roundtrip: a plain person and a person-with-account.
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("ann")}})
	cs.Insert("Persons", &state.Entity{Type: "Account", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("bob"),
		"AccId": cond.Int(77), "Balance": cond.Int(500)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
	// The merged entity's rows land in both tables, linked by OwnerId.
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Tables["TPeople"]) != 2 || len(ss.Tables["TAcc"]) != 1 {
		t.Fatalf("rows: TPeople=%d TAcc=%d", len(ss.Tables["TPeople"]), len(ss.Tables["TAcc"]))
	}
	row := ss.Tables["TAcc"][0]
	if row["OwnerId"].IntVal() != 2 || row["AccId"].IntVal() != 77 {
		t.Fatalf("TAcc row = %v", row)
	}
}

func TestRefactorPreconditions(t *testing.T) {
	ic := NewIncremental()

	// Unknown association.
	m, v := ownerAccountModel(t)
	if _, _, err := ic.Apply(m, v, &RefactorAssocToInheritance{Assoc: "Nope"}); err == nil {
		t.Error("unknown association accepted")
	}

	// A type with other associations must be rejected.
	m, v = ownerAccountModel(t)
	if err := m.Client.AddAssociation(edm.Association{
		Name: "Audits",
		End1: edm.End{Type: "Account", Mult: edm.Many},
		End2: edm.End{Type: "Person", Mult: edm.ZeroOne},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ic.Apply(m, v, &RefactorAssocToInheritance{Assoc: "Owns"}); err == nil {
		t.Error("refactoring with a second association accepted")
	}

	// Attribute collision must be rejected.
	m, v = ownerAccountModel(t)
	if err := m.Client.AddAttr("Account", edm.Attribute{Name: "Name", Type: cond.KindString, Nullable: true}); err == nil {
		// AddAttr only guards within one hierarchy; force the collision by
		// renaming the account attribute directly.
		t.Log("unexpected: AddAttr accepted duplicate within hierarchy")
	}
	acc := m.Client.Type("Account")
	acc.Attrs = append(acc.Attrs, edm.Attribute{Name: "Name", Type: cond.KindString, Nullable: true})
	if _, _, err := ic.Apply(m, v, &RefactorAssocToInheritance{Assoc: "Owns"}); err == nil {
		t.Error("attribute collision accepted")
	}
}

func TestRefactorAdaptsOnlyConditions(t *testing.T) {
	// After refactoring, IS OF (ONLY Person) conditions in fragments must
	// expand to include Account (rule 7 of Algorithm 2).
	m, v := ownerAccountModel(t)
	// Make the person fragment use an ONLY condition first.
	for _, f := range m.Frags {
		if f.ID == "f_person" {
			f.ClientCond = cond.TypeIs{Type: "Person", Only: true}
		}
	}
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	v = views
	ic := NewIncremental()
	m, v, err = ic.Apply(m, v, &RefactorAssocToInheritance{Assoc: "Owns"})
	if err != nil {
		t.Fatal(err)
	}
	var f1 *frag.Fragment
	for _, f := range m.Frags {
		if f.ID == "f_person" {
			f1 = f
		}
	}
	th := m.Client.TheoryFor("Persons")
	if !cond.Implies(th, cond.TypeIs{Type: "Account"}, f1.ClientCond) {
		t.Fatalf("accounts' inherited part not covered by adapted f_person: %s", f1.ClientCond)
	}
	// And the merged roundtrip must still hold.
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Account", Attrs: state.Row{
		"Id": cond.Int(9), "Name": cond.String("merged"), "AccId": cond.Int(1)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}
