package core

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// compiled returns the paper's initial model (Example 1) fully compiled.
func compiled(t *testing.T) (*frag.Mapping, *frag.Views) {
	t.Helper()
	m := workload.PaperInitial()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, views
}

// employeeSMO is the AddEntity of Example 1: Employee TPT on Emp.
func employeeSMO() *AddEntity {
	return AddEntityTPT("Employee", "Person",
		[]edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
		"Emp", map[string]string{"Id": "Id", "Department": "Dept"})
}

// customerSMO is the AddEntity of Example 4: Customer TPC on Client.
func customerSMO() *AddEntity {
	return AddEntityTPC("Customer", "Person",
		[]edm.Attribute{
			{Name: "CredScore", Type: cond.KindInt, Nullable: true},
			{Name: "BillAddr", Type: cond.KindString, Nullable: true},
		},
		"Client", map[string]string{
			"Id": "Cid", "Name": "Name", "CredScore": "Score", "BillAddr": "Addr",
		})
}

// supportsSMO is the AddAssocFK of Example 7.
func supportsSMO() *AddAssociationFK {
	return &AddAssociationFK{
		Name: "Supports",
		E1:   "Customer", Mult1: edm.Many,
		E2: "Employee", Mult2: edm.ZeroOne,
		Table:    "Client",
		KeyCols1: []string{"Cid"},
		KeyCols2: []string{"Eid"},
	}
}

// TestExamples1Through7 replays the paper's running example end to end:
// start from Person→HR, add Employee (TPT), Customer (TPC) and the
// Supports association (FK), and verify the evolved views roundtrip the
// full client state of Figure 1.
func TestExamples1Through7(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	if err := orm.Roundtrip(m, v, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
	// The adapted ϕ1 must be the ϕ1' of Example 5.
	var phi1 *frag.Fragment
	for _, f := range m.Frags {
		if f.ID == "phi1" {
			phi1 = f
		}
	}
	got := phi1.ClientCond.String()
	if !strings.Contains(got, "ONLY Person") || !strings.Contains(got, "IS OF Employee") {
		t.Errorf("phi1 not adapted per Example 5: %s", got)
	}
	if strings.Contains(got, "Customer") {
		t.Errorf("phi1 must exclude Customer: %s", got)
	}
}

// TestIncrementalMatchesFullCompilation checks that the incrementally
// evolved views are semantically equivalent to a full compilation of the
// final mapping: both load the same client state from the same store.
func TestIncrementalMatchesFullCompilation(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}

	full := workload.PaperFull()
	fullViews, err := compiler.New().Compile(full)
	if err != nil {
		t.Fatal(err)
	}

	cs := workload.PaperClientState()
	ss, err := orm.Materialize(full, fullViews, cs)
	if err != nil {
		t.Fatal(err)
	}
	viaIncremental, err := orm.Load(m, v, ss)
	if err != nil {
		t.Fatal(err)
	}
	viaFull, err := orm.Load(full, fullViews, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d := state.Diff(viaIncremental, viaFull); d != "" {
		t.Fatalf("incremental and full views disagree:\n%s", d)
	}
}

func TestAddEntityRejectsUsedTable(t *testing.T) {
	m, v := compiled(t)
	op := AddEntityTPT("Employee", "Person", nil, "HR", map[string]string{"Id": "Id"})
	if _, _, err := NewIncremental().Apply(m, v, op); err == nil {
		t.Fatal("AddEntity into an already-mapped table accepted")
	}
}

func TestAddEntityRejectsBadKeyMapping(t *testing.T) {
	m, v := compiled(t)
	op := AddEntityTPT("Employee", "Person",
		[]edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
		"Emp", map[string]string{"Id": "Dept", "Department": "Id"})
	if _, _, err := NewIncremental().Apply(m, v, op); err == nil {
		t.Fatal("AddEntity with non-key key mapping accepted")
	}
}

func TestAddEntityRejectsKindMismatch(t *testing.T) {
	m, v := compiled(t)
	op := AddEntityTPT("Employee", "Person",
		[]edm.Attribute{{Name: "Department", Type: cond.KindInt, Nullable: true}},
		"Emp", map[string]string{"Id": "Id", "Department": "Dept"})
	if _, _, err := NewIncremental().Apply(m, v, op); err == nil {
		t.Fatal("AddEntity with kind mismatch accepted")
	}
}

// TestFigure6Violation reproduces the foreign-key violation scenario of
// Figure 6: after Supports exists, a TPC type derived from Employee can
// participate in the association, but its keys are only stored in its own
// table, never in Emp, so Client.Eid → Emp.Id breaks and validation must
// abort the SMO.
func TestFigure6Violation(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	// Add a fresh table for the TPC contractor.
	m2 := m.Clone()
	if err := m2.Store.AddTable(relTableContractors()); err != nil {
		t.Fatal(err)
	}
	op := AddEntityTPC("Contractor", "Employee",
		nil,
		"Contractors", map[string]string{
			"Id": "Id", "Name": "Name", "Department": "Dept",
		})
	_, _, err = ic.Apply(m2, v, op)
	if err == nil {
		t.Fatal("Figure 6 scenario accepted: TPC type under an association endpoint must fail validation")
	}
	if !strings.Contains(err.Error(), "check 1") && !strings.Contains(err.Error(), "foreign key") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestTPTUnderAssociationEndpointAccepted contrasts Figure 6: the same new
// type mapped TPT keeps its inherited data in the endpoint's tables, so
// validation succeeds.
func TestTPTUnderAssociationEndpointAccepted(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store.AddTable(relTableContractors()); err != nil {
		t.Fatal(err)
	}
	op := AddEntityTPT("Contractor", "Employee",
		[]edm.Attribute{{Name: "Agency", Type: cond.KindString, Nullable: true}},
		"Contractors", map[string]string{"Id": "Id", "Agency": "Name"})
	m, v, err = ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	// Contractors roundtrip, including association participation.
	cs := workload.PaperClientState()
	cs.Insert("Persons", &state.Entity{Type: "Contractor", Attrs: state.Row{
		"Id": cond.Int(9), "Name": cond.String("gil"), "Department": cond.String("ops"),
		"Agency": cond.String("acme")}})
	cs.Relate("Supports", state.AssocPair{Ends: state.Row{
		"Customer_Id": cond.Int(5), "Employee_Id": cond.Int(9)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}

func relTableContractors() rel.Table {
	return rel.Table{
		Name: "Contractors",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
			{Name: "Dept", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}
}

// TestTPHHierarchy builds a hierarchy mapped TPH through incremental SMOs
// and verifies roundtripping.
func TestTPHHierarchy(t *testing.T) {
	m, v, ic := tphBase(t)
	cs := state.NewClientState()
	cs.Insert("Vehicles", &state.Entity{Type: "Vehicle", Attrs: state.Row{
		"Id": cond.Int(1), "Make": cond.String("generic")}})
	cs.Insert("Vehicles", &state.Entity{Type: "Car", Attrs: state.Row{
		"Id": cond.Int(2), "Make": cond.String("zip"), "Doors": cond.Int(5)}})
	cs.Insert("Vehicles", &state.Entity{Type: "Truck", Attrs: state.Row{
		"Id": cond.Int(3), "Make": cond.String("haul"), "Axles": cond.Int(3)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
	_ = ic
}

func TestTPHDuplicateDiscriminatorRejected(t *testing.T) {
	m, v, ic := tphBase(t)
	op := AddEntityTPH("Van", "Vehicle",
		[]edm.Attribute{},
		"AllVehicles", "Disc", cond.String("Car"), // reuses Car's discriminator
		map[string]string{"Id": "Id", "Make": "Make"})
	if _, _, err := ic.Apply(m, v, op); err == nil {
		t.Fatal("duplicate discriminator value accepted")
	}
}

// tphBase builds Vehicle(TPH root) + Car + Truck in one table.
func tphBase(t *testing.T) (*frag.Mapping, *frag.Views, *Incremental) {
	t.Helper()
	c := edm.NewSchema()
	if err := c.AddType(edm.EntityType{
		Name: "Vehicle",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Make", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSet(edm.EntitySet{Name: "Vehicles", Type: "Vehicle"}); err != nil {
		t.Fatal(err)
	}
	s := rel.NewSchema()
	if err := s.AddTable(rel.Table{
		Name: "AllVehicles",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Make", Type: cond.KindString, Nullable: true},
			{Name: "Disc", Type: cond.KindString,
				Enum: []cond.Value{cond.String("Vehicle"), cond.String("Car"), cond.String("Truck"), cond.String("Van")}},
			{Name: "Doors", Type: cond.KindInt, Nullable: true},
			{Name: "Axles", Type: cond.KindInt, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	m := &frag.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "f_Vehicle",
		Set:        "Vehicles",
		ClientCond: cond.TypeIs{Type: "Vehicle"},
		Attrs:      []string{"Id", "Make"},
		Table:      "AllVehicles",
		StoreCond:  cond.Cmp{Attr: "Disc", Op: cond.OpEq, Val: cond.String("Vehicle")},
		ColOf:      map[string]string{"Id": "Id", "Make": "Make"},
	})
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	ic := NewIncremental()
	m, views, err = ic.ApplyAll(m, views,
		AddEntityTPH("Car", "Vehicle",
			[]edm.Attribute{{Name: "Doors", Type: cond.KindInt, Nullable: true}},
			"AllVehicles", "Disc", cond.String("Car"),
			map[string]string{"Id": "Id", "Make": "Make", "Doors": "Doors"}),
		AddEntityTPH("Truck", "Vehicle",
			[]edm.Attribute{{Name: "Axles", Type: cond.KindInt, Nullable: true}},
			"AllVehicles", "Disc", cond.String("Truck"),
			map[string]string{"Id": "Id", "Make": "Make", "Axles": "Axles"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m, views, ic
}

// TestSoundnessRestriction checks the §2.3 requirement: old client states
// (with the new type's extension empty) satisfy the adapted mapping
// exactly when they satisfied the original.
func TestSoundnessRestriction(t *testing.T) {
	m, v := compiled(t)
	old := state.NewClientState()
	old.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("ann")}})
	ssOld, err := orm.Materialize(m, v, old)
	if err != nil {
		t.Fatal(err)
	}
	okOld, err := m.SatisfiedBy(old, ssOld)
	if err != nil || !okOld {
		t.Fatalf("old state does not satisfy old mapping: %v %v", okOld, err)
	}

	ic := NewIncremental()
	m2, _, err := ic.Apply(m, v, employeeSMO())
	if err != nil {
		t.Fatal(err)
	}
	okNew, err := m2.SatisfiedBy(old, ssOld)
	if err != nil || !okNew {
		t.Fatalf("f(c) does not satisfy adapted mapping: %v %v", okNew, err)
	}
}

func TestFormatEvolvedPersonView(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	out := cqt.FormatView(v.Query["Person"])
	// The evolved Person view has the Figure 2 shape: LOJ + UNION ALL with
	// an if/else constructor.
	for _, want := range []string{"LEFT OUTER JOIN", "UNION ALL", "Customer(", "Employee(", "Person("} {
		if !strings.Contains(out, want) {
			t.Errorf("evolved Person view missing %q:\n%s", want, out)
		}
	}
}

// TestAddEntityWithAncestorGap exercises the general AddEntity form the
// paper's SMO allows: P is a strict ancestor above the parent, so α must
// cover the in-between type's attributes too, and the in-between type's
// query view evolves through the union path of Algorithm 1 while the
// root's evolves through the left-outer-join path.
func TestAddEntityWithAncestorGap(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.Apply(m, v, employeeSMO())
	if err != nil {
		t.Fatal(err)
	}
	// Senior derives from Employee but references P = Person: its
	// Department (normally inherited via Employee's table) is re-mapped
	// into its own table together with its new Level attribute.
	if err := m.Store.AddTable(rel.Table{
		Name: "Seniors",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Dept", Type: cond.KindString, Nullable: true},
			{Name: "Level", Type: cond.KindInt, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	op := &AddEntity{
		Name: "Senior", Parent: "Employee",
		DeclAttrs: []edm.Attribute{{Name: "Level", Type: cond.KindInt, Nullable: true}},
		Alpha:     []string{"Id", "Department", "Level"},
		P:         "Person",
		Table:     "Seniors",
		ColOf:     map[string]string{"Id": "Id", "Department": "Dept", "Level": "Level"},
		StoreCond: cond.True{},
	}
	m, v, err = ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}

	// The Employee fragment must now exclude Senior (rule 13/14): senior
	// departments live in Seniors, not Emp.
	th := m.Client.TheoryFor("Persons")
	for _, f := range m.Frags {
		if f.Table == "Emp" {
			if cond.Satisfiable(th, cond.NewAnd(f.ClientCond, cond.TypeIs{Type: "Senior", Only: true})) {
				t.Fatalf("Emp fragment still covers Senior: %s", f.ClientCond)
			}
		}
	}

	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("p")}})
	cs.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("e"), "Department": cond.String("hw")}})
	cs.Insert("Persons", &state.Entity{Type: "Senior", Attrs: state.Row{
		"Id": cond.Int(3), "Name": cond.String("s"), "Department": cond.String("mgmt"),
		"Level": cond.Int(4)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}

	// Storage shape: the senior's name is in HR (mapped like Person), but
	// its department is in Seniors, not Emp.
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Tables["Emp"]) != 1 {
		t.Fatalf("Emp rows = %v", ss.Tables["Emp"])
	}
	if len(ss.Tables["Seniors"]) != 1 || ss.Tables["Seniors"][0]["Dept"].Str() != "mgmt" {
		t.Fatalf("Seniors rows = %v", ss.Tables["Seniors"])
	}
	if len(ss.Tables["HR"]) != 3 {
		t.Fatalf("HR rows = %v", ss.Tables["HR"])
	}
}
