package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modelio"
)

// These tests pin down the aliasing contract of the copy-on-write
// generations produced by Apply: the evolved mapping and views share
// untouched state with their inputs, so mutating either generation through
// the sanctioned mutators must never be visible in the other, and a failed
// SMO must leave its inputs byte-identical.

// fingerprintMapping renders a mapping to its canonical serialized form.
func fingerprintMapping(t *testing.T, m *frag.Mapping) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := modelio.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fingerprintViews renders every view of all three families in sorted
// order.
func fingerprintViews(v *frag.Views) string {
	var b strings.Builder
	family := func(tag string, views map[string]*cqt.View) {
		names := make([]string, 0, len(views))
		for n := range views {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s:\n%s\n", tag, n, cqt.FormatView(views[n]))
		}
	}
	family("query", v.Query)
	family("assoc", v.Assoc)
	family("update", v.Update)
	return b.String()
}

// TestApplySnapshotIsolation applies SMOs and checks isolation in both
// directions: evolving a generation leaves the input generation untouched,
// and evolving the old generation again does not leak into the previously
// derived one.
func TestApplySnapshotIsolation(t *testing.T) {
	m0, v0 := compiled(t)
	ic := NewIncremental()

	fpM0 := fingerprintMapping(t, m0)
	fpV0 := fingerprintViews(v0)

	m1, v1, err := ic.Apply(m0, v0, employeeSMO())
	if err != nil {
		t.Fatal(err)
	}
	// Forward direction: deriving m1/v1 must not disturb m0/v0.
	if !bytes.Equal(fpM0, fingerprintMapping(t, m0)) {
		t.Error("applying an SMO mutated the input mapping")
	}
	if fpV0 != fingerprintViews(v0) {
		t.Error("applying an SMO mutated the input views")
	}

	fpM1 := fingerprintMapping(t, m1)
	fpV1 := fingerprintViews(v1)

	// Backward direction: evolving the old generation again (a sibling
	// branch sharing state with m1/v1) must not leak into m1/v1.
	if _, _, err := ic.Apply(m0, v0, customerSMO()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fpM1, fingerprintMapping(t, m1)) {
		t.Error("evolving the old generation mutated a sibling generation's mapping")
	}
	if fpV1 != fingerprintViews(v1) {
		t.Error("evolving the old generation mutated a sibling generation's views")
	}
	// And m0/v0 are still the original snapshot.
	if !bytes.Equal(fpM0, fingerprintMapping(t, m0)) {
		t.Error("second apply mutated the input mapping")
	}
	if fpV0 != fingerprintViews(v0) {
		t.Error("second apply mutated the input views")
	}

	// Deeper chains keep every intermediate generation intact.
	m2, v2, err := ic.Apply(m1, v1, customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ic.Apply(m2, v2, supportsSMO()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fpM1, fingerprintMapping(t, m1)) || fpV1 != fingerprintViews(v1) {
		t.Error("chained applies mutated an intermediate generation")
	}
}

// TestFailedApplyLeavesInputsIdentical replays the Figure 6 rejection: the
// applier mutates its working clone before validation fails, and the abort
// contract demands the caller's generation is untouched, byte for byte.
func TestFailedApplyLeavesInputsIdentical(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store.AddTable(relTableContractors()); err != nil {
		t.Fatal(err)
	}
	fpM := fingerprintMapping(t, m)
	fpV := fingerprintViews(v)

	op := AddEntityTPC("Contractor", "Employee",
		nil,
		"Contractors", map[string]string{
			"Id": "Id", "Name": "Name", "Department": "Dept",
		})
	if _, _, err := ic.Apply(m, v, op); err == nil {
		t.Fatal("Figure 6 violation unexpectedly accepted")
	}
	if !bytes.Equal(fpM, fingerprintMapping(t, m)) {
		t.Error("failed SMO mutated the input mapping")
	}
	if fpV != fingerprintViews(v) {
		t.Error("failed SMO mutated the input views")
	}
}

// TestConcurrentReadersOfOldGeneration derives new generations while other
// goroutines continuously read the old one. Run under -race this checks
// that copy-on-write sharing never writes into state a reader can see.
func TestConcurrentReadersOfOldGeneration(t *testing.T) {
	m0, v0 := compiled(t)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Read-only traversal of the shared generation.
				for _, f := range m0.Frags {
					_ = f.String()
					_ = f.ClientCond.String()
				}
				for _, ty := range m0.Client.Types() {
					_ = m0.Client.AttrNames(ty.Name)
				}
				_ = fingerprintViews(v0)
			}
		}()
	}

	ic := NewIncremental()
	for i := 0; i < 5; i++ {
		if _, _, err := ic.ApplyAll(m0, v0, employeeSMO(), customerSMO(), supportsSMO()); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
}
