package core

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
)

// AddAssociationFK creates an association between two existing entity
// types, mapped to key/foreign-key columns of a table that already stores
// one endpoint — the SMO AddAssocFK(A, E1, E2, mult, T, f) of §3.2 of the
// paper. The E2 endpoint's multiplicity must not be * (many).
type AddAssociationFK struct {
	// Name is the association (and association-set) name.
	Name string
	// E1 and E2 are the endpoint types with their multiplicities.
	E1, E2       string
	Mult1, Mult2 edm.Mult
	// Table is T, a table already mentioned in mapping fragments.
	Table string
	// KeyCols1 are the columns of Table storing E1's key (they must be
	// Table's primary key); KeyCols2 store E2's key (the FK columns).
	KeyCols1, KeyCols2 []string
}

// Describe implements SMO.
func (op *AddAssociationFK) Describe() string {
	return fmt.Sprintf("AddAssociationFK(%s: %s—%s → %s)", op.Name, op.E1, op.E2, op.Table)
}

func (op *AddAssociationFK) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	if op.Mult2 == edm.Many {
		return fmt.Errorf("the E2 endpoint of AddAssocFK must not be *; use AddAssociationJT")
	}
	if err := m.Client.AddAssociation(edm.Association{
		Name: op.Name,
		End1: edm.End{Type: op.E1, Mult: op.Mult1},
		End2: edm.End{Type: op.E2, Mult: op.Mult2},
	}); err != nil {
		return err
	}
	assoc := m.Client.Association(op.Name)
	tab := m.Store.Table(op.Table)
	if tab == nil {
		return fmt.Errorf("unknown table %q", op.Table)
	}
	oldView := v.Update[op.Table]
	if oldView == nil || len(m.FragsOnTable(op.Table)) == 0 {
		return fmt.Errorf("table %q is not previously mentioned in mapping fragments", op.Table)
	}
	e1cols, e2cols := cqt.AssocEndCols(m.Client, assoc)
	if len(op.KeyCols1) != len(e1cols) || len(op.KeyCols2) != len(e2cols) {
		return fmt.Errorf("key column arity mismatch")
	}
	for i, c := range op.KeyCols1 {
		if i >= len(tab.Key) || tab.Key[i] != c {
			return fmt.Errorf("f(PK1) must be the primary key of %q", op.Table)
		}
	}

	// --- Validation (§3.2, checks 1-3) over the PREVIOUS update views ----
	ch := ic.checker(m)
	defer ic.absorb(ch)

	// Check 1: f(PK2) columns have not previously been used.
	for _, f := range m.Frags {
		for _, c := range op.KeyCols2 {
			if f.MapsCol(c) && f.Table == op.Table {
				return fmt.Errorf("validation failed: column %s.%s is already mapped by fragment %s (check 1)", op.Table, c, f.ID)
			}
		}
	}

	// Check 2: E1 entities can be stored entirely in T's key.
	set1 := m.Client.SetFor(op.E1)
	key1 := m.Client.KeyOf(op.E1)
	lcols := make([]cqt.ProjCol, len(key1))
	rcols := make([]cqt.ProjCol, len(key1))
	for i, k := range key1 {
		lcols[i] = cqt.Col(k)
		rcols[i] = cqt.ColAs(op.KeyCols1[i], k)
	}
	lhs := cqt.Project{In: cqt.Select{In: cqt.ScanSet{Set: set1.Name}, Cond: cond.TypeIs{Type: op.E1}}, Cols: lcols}
	rhs := cqt.Project{In: oldView.Q, Cols: rcols}
	if err := ic.checkContainment(ch, lhs, rhs,
		fmt.Sprintf("endpoint %s cannot be mapped to the key of %s (check 2)", op.E1, op.Table)); err != nil {
		return err
	}

	// Check 3: a foreign key on f(PK2) must accept all E2 keys.
	set2 := m.Client.SetFor(op.E2)
	key2 := m.Client.KeyOf(op.E2)
	for _, fk := range tab.FKs {
		if !overlap(fk.Cols, op.KeyCols2) {
			continue
		}
		refView := v.Update[fk.RefTable]
		if refView == nil {
			return fmt.Errorf("validation failed: foreign key %s references unmapped table %s (check 3)", fk.Name, fk.RefTable)
		}
		l2 := make([]cqt.ProjCol, len(key2))
		for i, k := range key2 {
			// Align E2's key attribute with the referenced key column the
			// FK maps the corresponding f(PK2) column to.
			gamma := refColFor(fk.Cols, fk.RefCols, op.KeyCols2[i])
			if gamma == "" {
				return fmt.Errorf("validation failed: foreign key %s does not cover column %s (check 3)", fk.Name, op.KeyCols2[i])
			}
			l2[i] = cqt.ColAs(k, gamma)
		}
		r2 := make([]cqt.ProjCol, len(fk.RefCols))
		for i, c := range fk.RefCols {
			r2[i] = cqt.Col(c)
		}
		lhs2 := cqt.Project{In: cqt.Select{In: cqt.ScanSet{Set: set2.Name}, Cond: cond.TypeIs{Type: op.E2}}, Cols: l2}
		rhs2 := cqt.Project{In: refView.Q, Cols: r2}
		if err := ic.checkContainment(ch, lhs2, rhs2,
			fmt.Sprintf("foreign key %s would be violated by association %s (check 3)", fk.Name, op.Name)); err != nil {
			return err
		}
	}
	if ic.Opts.WideValidation {
		if err := ic.wideFKRecheck(ch, m, v); err != nil {
			return err
		}
	}

	// --- Fragment ϕA ------------------------------------------------------
	colOf := map[string]string{}
	var notNull []cond.Expr
	for i, c := range e1cols {
		colOf[c] = op.KeyCols1[i]
	}
	for i, c := range e2cols {
		colOf[c] = op.KeyCols2[i]
		notNull = append(notNull, cond.NotNull(op.KeyCols2[i]))
	}
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "f_" + op.Name + "_" + op.Table,
		Assoc:      op.Name,
		ClientCond: cond.True{},
		Attrs:      append(append([]string(nil), e1cols...), e2cols...),
		Table:      op.Table,
		StoreCond:  cond.NewAnd(notNull...),
		ColOf:      colOf,
	})
	if err := m.CheckFragment(m.Frags[len(m.Frags)-1]); err != nil {
		return err
	}

	// --- Query view Q_A (§3.2.1) -------------------------------------------
	qaCols := make([]cqt.ProjCol, 0, len(colOf))
	for i, c := range e1cols {
		qaCols = append(qaCols, cqt.ColAs(op.KeyCols1[i], c))
	}
	for i, c := range e2cols {
		qaCols = append(qaCols, cqt.ColAs(op.KeyCols2[i], c))
	}
	v.SetAssoc(op.Name, &cqt.View{Q: cqt.Project{
		In:   cqt.Select{In: cqt.ScanTable{Table: op.Table}, Cond: cond.NewAnd(notNull...)},
		Cols: qaCols,
	}})
	ic.Stats.BuiltViews++

	// --- Update view Q_T (§3.2.1) -------------------------------------------
	base, err := projectAway(m.Catalog(), oldView.Q, op.KeyCols2)
	if err != nil {
		return err
	}
	part := make([]cqt.ProjCol, 0, len(colOf))
	for i, c := range e1cols {
		part = append(part, cqt.ColAs(c, op.KeyCols1[i]))
	}
	for i, c := range e2cols {
		part = append(part, cqt.ColAs(c, op.KeyCols2[i]))
	}
	on := make([][2]string, len(op.KeyCols1))
	for i, c := range op.KeyCols1 {
		on[i] = [2]string{c, c}
	}
	v.SetUpdate(op.Table, &cqt.View{Q: cqt.Join{
		Kind: cqt.LeftOuter,
		L:    base,
		R:    cqt.Project{In: cqt.ScanAssoc{Assoc: op.Name}, Cols: part},
		On:   on,
	}})
	ic.Stats.AdaptedViews++
	ic.markUpdate(op.Table)
	return nil
}

func refColFor(cols, refCols []string, c string) string {
	for i, x := range cols {
		if x == c {
			return refCols[i]
		}
	}
	return ""
}

// AddAssociationJT creates an association mapped to its own join table —
// the variant of §3.4 that also covers many-to-many associations.
type AddAssociationJT struct {
	Name         string
	E1, E2       string
	Mult1, Mult2 edm.Mult
	// Table is a fresh table; KeyCols1/KeyCols2 are its columns storing the
	// two endpoint keys. Together they must cover the table's primary key.
	Table              string
	KeyCols1, KeyCols2 []string
}

// Describe implements SMO.
func (op *AddAssociationJT) Describe() string {
	return fmt.Sprintf("AddAssociationJT(%s: %s—%s → %s)", op.Name, op.E1, op.E2, op.Table)
}

func (op *AddAssociationJT) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	if err := m.Client.AddAssociation(edm.Association{
		Name: op.Name,
		End1: edm.End{Type: op.E1, Mult: op.Mult1},
		End2: edm.End{Type: op.E2, Mult: op.Mult2},
	}); err != nil {
		return err
	}
	assoc := m.Client.Association(op.Name)
	tab := m.Store.Table(op.Table)
	if tab == nil {
		return fmt.Errorf("unknown table %q", op.Table)
	}
	if len(m.FragsOnTable(op.Table)) > 0 {
		return fmt.Errorf("join table %q is already mentioned in a mapping fragment", op.Table)
	}
	e1cols, e2cols := cqt.AssocEndCols(m.Client, assoc)
	if len(op.KeyCols1) != len(e1cols) || len(op.KeyCols2) != len(e2cols) {
		return fmt.Errorf("key column arity mismatch")
	}
	mapped := map[string]bool{}
	colOf := map[string]string{}
	for i, c := range e1cols {
		colOf[c] = op.KeyCols1[i]
		mapped[op.KeyCols1[i]] = true
	}
	for i, c := range e2cols {
		colOf[c] = op.KeyCols2[i]
		mapped[op.KeyCols2[i]] = true
	}
	for _, k := range tab.Key {
		if !mapped[k] {
			return fmt.Errorf("join-table key column %q is not covered by the association", k)
		}
	}
	for _, tc := range tab.Cols {
		if !mapped[tc.Name] && !tc.Nullable {
			return fmt.Errorf("unmapped join-table column %q must be nullable", tc.Name)
		}
	}

	// --- Validation: the join table's foreign keys must accept all keys ----
	ch := ic.checker(m)
	defer ic.absorb(ch)
	endFor := func(col string) (string, string, []string, []string) {
		for i, c := range op.KeyCols1 {
			if c == col {
				return op.E1, m.Client.KeyOf(op.E1)[i], op.KeyCols1, m.Client.KeyOf(op.E1)
			}
		}
		for i, c := range op.KeyCols2 {
			if c == col {
				return op.E2, m.Client.KeyOf(op.E2)[i], op.KeyCols2, m.Client.KeyOf(op.E2)
			}
		}
		return "", "", nil, nil
	}
	for _, fk := range tab.FKs {
		endType, _, endCols, endKey := endFor(fk.Cols[0])
		if endType == "" {
			continue
		}
		refView := v.Update[fk.RefTable]
		if refView == nil {
			return fmt.Errorf("validation failed: foreign key %s references unmapped table %s", fk.Name, fk.RefTable)
		}
		set := m.Client.SetFor(endType)
		l := make([]cqt.ProjCol, len(fk.Cols))
		for i, c := range fk.Cols {
			// Which end key attribute does this FK column store?
			attr := ""
			for j, ec := range endCols {
				if ec == c {
					attr = endKey[j]
				}
			}
			if attr == "" {
				return fmt.Errorf("validation failed: foreign key %s mixes association ends", fk.Name)
			}
			l[i] = cqt.ColAs(attr, fk.RefCols[i])
		}
		r := make([]cqt.ProjCol, len(fk.RefCols))
		for i, c := range fk.RefCols {
			r[i] = cqt.Col(c)
		}
		lhs := cqt.Project{In: cqt.Select{In: cqt.ScanSet{Set: set.Name}, Cond: cond.TypeIs{Type: endType}}, Cols: l}
		rhs := cqt.Project{In: refView.Q, Cols: r}
		if err := ic.checkContainment(ch, lhs, rhs,
			fmt.Sprintf("join-table foreign key %s would be violated by association %s", fk.Name, op.Name)); err != nil {
			return err
		}
	}
	if ic.Opts.WideValidation {
		if err := ic.wideFKRecheck(ch, m, v); err != nil {
			return err
		}
	}

	// --- Fragment, query view, update view ---------------------------------
	attrs := append(append([]string(nil), e1cols...), e2cols...)
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "f_" + op.Name + "_" + op.Table,
		Assoc:      op.Name,
		ClientCond: cond.True{},
		Attrs:      attrs,
		Table:      op.Table,
		StoreCond:  cond.True{},
		ColOf:      colOf,
	})
	if err := m.CheckFragment(m.Frags[len(m.Frags)-1]); err != nil {
		return err
	}

	qaCols := make([]cqt.ProjCol, 0, len(attrs))
	utCols := make([]cqt.ProjCol, 0, len(tab.Cols))
	for _, a := range attrs {
		qaCols = append(qaCols, cqt.ColAs(colOf[a], a))
	}
	for _, tc := range tab.Cols {
		found := ""
		for _, a := range attrs {
			if colOf[a] == tc.Name {
				found = a
			}
		}
		if found != "" {
			utCols = append(utCols, cqt.ColAs(found, tc.Name))
		} else {
			utCols = append(utCols, cqt.LitAs(cqt.NullOf(tc.Type), tc.Name))
		}
	}
	v.SetAssoc(op.Name, &cqt.View{Q: cqt.Project{In: cqt.ScanTable{Table: op.Table}, Cols: qaCols}})
	v.SetUpdate(op.Table, &cqt.View{Q: cqt.Project{In: cqt.ScanAssoc{Assoc: op.Name}, Cols: utCols}})
	ic.Stats.BuiltViews += 2
	ic.markUpdate(op.Table)
	return nil
}
