package core_test

import (
	"fmt"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// TestSoakRandomSMOSequences applies long pseudo-random SMO sequences to
// the paper's model and checks, after every accepted operation, that
//
//  1. randomly generated client states roundtrip through the evolved views
//     (V ∘ Q = identity), and
//  2. the full compiler also accepts the evolved mapping — the incremental
//     compiler must never accept a mapping the baseline would reject.
//
// Rejected SMOs (e.g. TPC under an association endpoint) must leave the
// mapping untouched and the sequence continues, matching the paper's abort
// semantics.
func TestSoakRandomSMOSequences(t *testing.T) {
	for seed := uint32(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soak(t, seed, 25)
		})
	}
}

func soak(t *testing.T, seed uint32, steps int) {
	t.Helper()
	rnd := seed
	next := func() uint32 {
		rnd = rnd*1664525 + 1013904223
		return rnd
	}

	m := workload.PaperInitial()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	ic := core.NewIncremental()
	accepted, rejected := 0, 0
	nameSeq := 0

	for step := 0; step < steps; step++ {
		op, err := randomSMO(m, next, &nameSeq)
		if err != nil || op == nil {
			continue
		}
		m2, v2, err := ic.Apply(m, views, op)
		if err != nil {
			rejected++
			continue // abort semantics: m and views stay as they were
		}
		accepted++
		m, views = m2, v2

		// (1) roundtrip random data through the evolved views.
		cs := orm.RandomState(m, next(), 2)
		if err := orm.Roundtrip(m, views, cs); err != nil {
			t.Fatalf("step %d (%s): roundtrip broke: %v", step, op.Describe(), err)
		}
		// (2) the baseline must agree the mapping is valid.
		fullViews, err := compiler.New().Compile(m)
		if err != nil {
			t.Fatalf("step %d (%s): full compiler rejects the incrementally accepted mapping: %v",
				step, op.Describe(), err)
		}
		// And both view sets must load the same client state.
		ss, err := orm.Materialize(m, views, cs)
		if err != nil {
			t.Fatal(err)
		}
		viaInc, err := orm.Load(m, views, ss)
		if err != nil {
			t.Fatal(err)
		}
		viaFull, err := orm.Load(m, fullViews, ss)
		if err != nil {
			t.Fatalf("step %d: full views failed to load: %v", step, err)
		}
		if d := state.Diff(viaInc, viaFull); d != "" {
			t.Fatalf("step %d (%s): incremental and full views disagree:\n%s", step, op.Describe(), d)
		}
	}
	if accepted == 0 {
		t.Fatalf("soak accepted no SMOs (rejected %d)", rejected)
	}
	t.Logf("seed %d: %d accepted, %d rejected, %d types, %d fragments",
		seed, accepted, rejected, len(m.Client.Types()), len(m.Frags))
}

// randomSMO synthesises one operation against the current mapping using
// the MoDEF-style planners, choosing targets pseudo-randomly.
func randomSMO(m *frag.Mapping, next func() uint32, nameSeq *int) (core.SMO, error) {
	types := m.Client.Types()
	pick := func() string { return types[int(next())%len(types)].Name }
	*nameSeq++
	switch next() % 5 {
	case 0, 1: // add entity (style inferred from the neighbourhood)
		name := fmt.Sprintf("Soak%d", *nameSeq)
		var attrs []edm.Attribute
		if next()%2 == 0 {
			attrs = append(attrs, edm.Attribute{
				Name: name + "Attr", Type: cond.KindString, Nullable: true})
		}
		return modef.PlanAddEntity(m, name, pick(), attrs)
	case 2: // add association
		name := fmt.Sprintf("SoakA%d", *nameSeq)
		e1, e2 := pick(), pick()
		mult2 := edm.ZeroOne
		if next()%4 == 0 {
			return modef.PlanAddAssociation(m, name, e1, e2, edm.Many, edm.Many)
		}
		return modef.PlanAddAssociation(m, name, e1, e2, edm.Many, mult2)
	case 3: // drop a random association
		assocs := m.Client.Associations()
		if len(assocs) == 0 {
			return nil, nil
		}
		return &core.DropAssociation{Name: assocs[int(next())%len(assocs)].Name}, nil
	default: // drop a random leaf without associations
		var leaves []string
		for _, ty := range types {
			if len(m.Client.Descendants(ty.Name)) > 0 || ty.Name == "Person" {
				continue
			}
			used := false
			for _, a := range m.Client.Associations() {
				if a.End1.Type == ty.Name || a.End2.Type == ty.Name {
					used = true
				}
			}
			if !used {
				leaves = append(leaves, ty.Name)
			}
		}
		if len(leaves) == 0 {
			return nil, nil
		}
		return &core.DropEntity{Name: leaves[int(next())%len(leaves)]}, nil
	}
}
