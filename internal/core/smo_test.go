package core

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// TestAddAssociationJT adds a many-to-many association mapped to a join
// table and verifies roundtripping.
func TestAddAssociationJT(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store.AddTable(rel.Table{
		Name: "Assignments",
		Cols: []rel.Column{
			{Name: "CustId", Type: cond.KindInt},
			{Name: "EmpId", Type: cond.KindInt},
		},
		Key: []string{"CustId", "EmpId"},
		FKs: []rel.ForeignKey{
			{Name: "fk_a_client", Cols: []string{"CustId"}, RefTable: "Client", RefCols: []string{"Cid"}},
			{Name: "fk_a_emp", Cols: []string{"EmpId"}, RefTable: "Emp", RefCols: []string{"Id"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	op := &AddAssociationJT{
		Name: "AssignedTo",
		E1:   "Customer", Mult1: edm.Many,
		E2: "Employee", Mult2: edm.Many,
		Table:    "Assignments",
		KeyCols1: []string{"CustId"},
		KeyCols2: []string{"EmpId"},
	}
	m, v, err = ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	cs := workload.PaperClientState()
	delete(cs.Assocs, "Supports") // Supports not mapped in this variant
	cs.Relate("AssignedTo", state.AssocPair{Ends: state.Row{
		"Customer_Id": cond.Int(4), "Employee_Id": cond.Int(2)}})
	cs.Relate("AssignedTo", state.AssocPair{Ends: state.Row{
		"Customer_Id": cond.Int(4), "Employee_Id": cond.Int(3)}})
	cs.Relate("AssignedTo", state.AssocPair{Ends: state.Row{
		"Customer_Id": cond.Int(5), "Employee_Id": cond.Int(2)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}

func TestAddAssociationFKRejectsUsedColumn(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	op := supportsSMO()
	op.KeyCols2 = []string{"Name"} // already mapped by phi3
	if _, _, err := ic.Apply(m, v, op); err == nil {
		t.Fatal("association over an already-mapped column accepted (check 1)")
	}
}

func TestAddAssociationFKRejectsManyTarget(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	op := supportsSMO()
	op.Mult2 = edm.Many
	if _, _, err := ic.Apply(m, v, op); err == nil {
		t.Fatal("AddAssocFK with a many-valued E2 accepted")
	}
}

// TestAddEntityPartAdultYoung replays the §3.3 Adult/Young example as an
// incremental SMO.
func TestAddEntityPartAdultYoung(t *testing.T) {
	m, v, ic := emptyPeopleBase(t)
	op := &AddEntityPart{
		Name:   "Person",
		Parent: "NamedThing",
		DeclAttrs: []edm.Attribute{
			{Name: "Age", Type: cond.KindInt},
		},
		P: "NamedThing",
		Parts: []Part{
			{
				Alpha: []string{"Id", "Age"},
				Cond:  cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(18)},
				Table: "Adult", ColOf: map[string]string{"Id": "Id", "Age": "Age"},
			},
			{
				Alpha: []string{"Id", "Age"},
				Cond:  cond.Cmp{Attr: "Age", Op: cond.OpLt, Val: cond.Int(18)},
				Table: "Young", ColOf: map[string]string{"Id": "Id", "Age": "Age"},
			},
		},
	}
	m, v, err := ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	cs := state.NewClientState()
	cs.Insert("Things", &state.Entity{Type: "NamedThing", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("thing")}})
	cs.Insert("Things", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("kid"), "Age": cond.Int(7)}})
	cs.Insert("Things", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(3), "Name": cond.String("adult"), "Age": cond.Int(40)}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}

func TestAddEntityPartRejectsHole(t *testing.T) {
	m, v, ic := emptyPeopleBase(t)
	op := &AddEntityPart{
		Name:      "Person",
		Parent:    "NamedThing",
		DeclAttrs: []edm.Attribute{{Name: "Age", Type: cond.KindInt}},
		P:         "NamedThing",
		Parts: []Part{
			{
				Alpha: []string{"Id", "Age"},
				Cond:  cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(19)},
				Table: "Adult", ColOf: map[string]string{"Id": "Id", "Age": "Age"},
			},
			{
				Alpha: []string{"Id", "Age"},
				Cond:  cond.Cmp{Attr: "Age", Op: cond.OpLt, Val: cond.Int(18)},
				Table: "Young", ColOf: map[string]string{"Id": "Id", "Age": "Age"},
			},
		},
	}
	_, _, err := ic.Apply(m, v, op)
	if err == nil {
		t.Fatal("partition with age = 18 hole accepted")
	}
	if !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// emptyPeopleBase builds a tiny compiled model NamedThing→Names plus two
// unmapped tables Adult and Young for partition SMOs.
func emptyPeopleBase(t *testing.T) (*frag.Mapping, *frag.Views, *Incremental) {
	t.Helper()
	c := edm.NewSchema()
	if err := c.AddType(edm.EntityType{
		Name: "NamedThing",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSet(edm.EntitySet{Name: "Things", Type: "NamedThing"}); err != nil {
		t.Fatal(err)
	}
	s := rel.NewSchema()
	if err := s.AddTable(rel.Table{
		Name: "Names",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Adult", "Young"} {
		if err := s.AddTable(rel.Table{
			Name: name,
			Cols: []rel.Column{
				{Name: "Id", Type: cond.KindInt},
				{Name: "Age", Type: cond.KindInt},
			},
			Key: []string{"Id"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	m := &frag.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags, fragOf("f_thing", "Things", cond.TypeIs{Type: "NamedThing"},
		[]string{"Id", "Name"}, "Names", map[string]string{"Id": "Id", "Name": "Name"}))
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, views, NewIncremental()
}

// TestAddProperty extends Employee with a Salary stored in a new column of
// Emp.
func TestAddPropertySameTable(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	// Widen the store first (the developer adds the column). DeepClone:
	// the table entry itself is edited in place.
	m = m.DeepClone()
	tab := m.Store.Table("Emp")
	tab.Cols = append(tab.Cols, rel.Column{Name: "Salary", Type: cond.KindFloat, Nullable: true})

	op := &AddProperty{Type: "Employee", Attr: edm.Attribute{Name: "Salary", Type: cond.KindFloat, Nullable: true}, Table: "Emp", Col: "Salary"}
	m, v, err = ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	cs := workload.PaperClientState()
	cs.Entities["Persons"][1].Attrs["Salary"] = cond.Float(99.5)
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}

func TestAddPropertyFreshTable(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	m = m.Clone()
	if err := m.Store.AddTable(rel.Table{
		Name: "Badges",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Badge", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	op := &AddProperty{Type: "Employee", Attr: edm.Attribute{Name: "Badge", Type: cond.KindString, Nullable: true}, Table: "Badges", Col: "Badge"}
	m, v, err = ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	cs := workload.PaperClientState()
	cs.Entities["Persons"][2].Attrs["Badge"] = cond.String("gold")
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}

func TestAddPropertyRejectsMappedColumn(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO())
	if err != nil {
		t.Fatal(err)
	}
	op := &AddProperty{Type: "Employee", Attr: edm.Attribute{Name: "Extra", Type: cond.KindString, Nullable: true}, Table: "Emp", Col: "Dept"}
	if _, _, err := ic.Apply(m, v, op); err == nil {
		t.Fatal("AddProperty over an already-mapped column accepted")
	}
}

// TestDropEntity drops Customer again after adding it and verifies the
// model behaves like the pre-Customer one.
func TestDropEntity(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO())
	if err != nil {
		t.Fatal(err)
	}
	m, v, err = ic.Apply(m, v, &DropEntity{Name: "Customer"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Client.Type("Customer") != nil {
		t.Fatal("Customer still in schema")
	}
	if _, ok := v.Update["Client"]; ok {
		t.Fatal("update view for Client should be gone")
	}
	if _, ok := v.Query["Customer"]; ok {
		t.Fatal("query view for Customer should be gone")
	}
	// phi1's condition must cover plain persons and employees again.
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{"Id": cond.Int(1), "Name": cond.String("ann")}})
	cs.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{"Id": cond.Int(2), "Name": cond.String("bob"), "Department": cond.String("hw")}})
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatal(err)
	}
}

func TestDropEntityRequiresAssociationsDropped(t *testing.T) {
	m, v := compiled(t)
	ic := NewIncremental()
	m, v, err := ic.ApplyAll(m, v, employeeSMO(), customerSMO(), supportsSMO())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ic.Apply(m, v, &DropEntity{Name: "Customer"}); err == nil {
		t.Fatal("dropping an association endpoint accepted")
	}
}

// TestGenderConstantPartition exercises the full M/F constant-recovery
// example of §3.3 through the full compiler and roundtripping.
func TestGenderConstantPartition(t *testing.T) {
	m := workload.GenderConstantModel()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := orm.Roundtrip(m, views, workload.GenderConstantState()); err != nil {
		t.Fatal(err)
	}
}

// fragOf is a small fragment constructor for tests.
func fragOf(id, set string, c cond.Expr, attrs []string, table string, colOf map[string]string) *frag.Fragment {
	return &frag.Fragment{ID: id, Set: set, ClientCond: c, Attrs: attrs, Table: table, StoreCond: cond.True{}, ColOf: colOf}
}
