package core

import (
	"fmt"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// AddEntity creates a new entity type as a leaf of an existing hierarchy
// and maps it to a table. It is the carefully-crafted SMO of §3.1 of the
// paper, AddEntity(E, E', α, P, T, f), generalized with a store-side
// condition so the Table-per-Hierarchy variant of §3.4 is the same
// operation with a discriminator equality:
//
//   - TPT: α = non-inherited attributes ∪ key, P = parent, T fresh.
//   - TPC: α = all attributes, P = NIL, T fresh.
//   - TPH: α = all attributes, P = NIL, T shared, χ: disc = value.
//
// Use the AddEntityTPT/TPC/TPH constructors for the common strategies.
type AddEntity struct {
	// Name is E, the new entity type; Parent is E', its base type.
	Name   string
	Parent string
	// DeclAttrs are the attributes E declares beyond those it inherits.
	DeclAttrs []edm.Attribute
	// Alpha is α: the attributes mapped to Table, including the key.
	Alpha []string
	// P is the ancestor whose mapping covers att(E) ∖ α; "" means NIL.
	P string
	// Table is T and ColOf is f, the 1-1 attribute-to-column renaming.
	Table string
	ColOf map[string]string
	// StoreCond is χ on T's rows; True{} except for TPH, where it is the
	// discriminator equality.
	StoreCond cond.Expr
}

// AddEntityTPT returns the Table-per-Type form of AddEntity: the new
// type's own attributes and key go to a fresh table, the rest is mapped
// like the parent.
func AddEntityTPT(name, parent string, attrs []edm.Attribute, table string, colOf map[string]string) *AddEntity {
	return &AddEntity{
		Name: name, Parent: parent, DeclAttrs: attrs,
		P: parent, Table: table, ColOf: colOf, StoreCond: cond.True{},
	}
}

// AddEntityTPC returns the Table-per-Concrete-type form of AddEntity: all
// attributes (inherited and declared) go to a fresh table.
func AddEntityTPC(name, parent string, attrs []edm.Attribute, table string, colOf map[string]string) *AddEntity {
	return &AddEntity{
		Name: name, Parent: parent, DeclAttrs: attrs,
		P: "", Table: table, ColOf: colOf, StoreCond: cond.True{},
	}
}

// AddEntityTPH returns the Table-per-Hierarchy form of AddEntity: all
// attributes go to the hierarchy's shared table, with a discriminator
// column identifying the type of each row.
func AddEntityTPH(name, parent string, attrs []edm.Attribute, table, discCol string, discVal cond.Value, colOf map[string]string) *AddEntity {
	return &AddEntity{
		Name: name, Parent: parent, DeclAttrs: attrs,
		P: "", Table: table, ColOf: colOf,
		StoreCond: cond.Cmp{Attr: discCol, Op: cond.OpEq, Val: discVal},
	}
}

// Describe implements SMO.
func (op *AddEntity) Describe() string {
	return fmt.Sprintf("AddEntity(%s < %s → %s)", op.Name, op.Parent, op.Table)
}

func (op *AddEntity) sharedTable() bool {
	_, isTrue := op.StoreCond.(cond.True)
	return !isTrue
}

func (op *AddEntity) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	// --- Schema change -------------------------------------------------
	parent := m.Client.Type(op.Parent)
	if parent == nil {
		return fmt.Errorf("unknown parent type %q", op.Parent)
	}
	if err := m.Client.AddType(edm.EntityType{Name: op.Name, Base: op.Parent, Attrs: op.DeclAttrs}); err != nil {
		return err
	}
	set := m.Client.SetFor(op.Name)
	if set == nil {
		return fmt.Errorf("parent hierarchy of %q has no entity set", op.Parent)
	}

	alpha := op.Alpha
	if alpha == nil {
		// Derive α from the strategy: TPT maps key + declared attributes,
		// TPC/TPH map everything.
		if op.P == op.Parent && op.P != "" {
			alpha = append([]string(nil), m.Client.KeyOf(op.Name)...)
			for _, a := range op.DeclAttrs {
				alpha = append(alpha, a.Name)
			}
		} else {
			alpha = m.Client.AttrNames(op.Name)
		}
	}

	// --- Side conditions of the SMO (§3.1) ------------------------------
	if op.P != "" && !m.Client.IsSubtype(op.Name, op.P) {
		return fmt.Errorf("P = %q is not an ancestor of %q", op.P, op.Name)
	}
	if err := op.checkCoverage(m, alpha); err != nil {
		return err
	}
	tab := m.Store.Table(op.Table)
	if tab == nil {
		return fmt.Errorf("unknown table %q", op.Table)
	}
	if !op.sharedTable() && len(m.FragsOnTable(op.Table)) > 0 {
		return fmt.Errorf("table %q is already mentioned in a mapping fragment", op.Table)
	}
	if err := op.checkColumnMapping(m, tab, alpha); err != nil {
		return err
	}

	// --- Fragment adaptation (§3.1.3) ------------------------------------
	pset := betweenTypes(m, op.Name, op.P)
	ic.adaptFragments(m, set.Name, op.Name, op.P, pset)
	phiE := &frag.Fragment{
		ID:         "f_" + op.Name + "_" + op.Table,
		Set:        set.Name,
		ClientCond: cond.TypeIs{Type: op.Name},
		Attrs:      alpha,
		Table:      op.Table,
		StoreCond:  op.StoreCond,
		ColOf:      op.ColOf,
	}
	m.Frags = append(m.Frags, phiE)
	if err := m.CheckFragment(phiE); err != nil {
		return err
	}

	// --- Update views (Algorithm 2) --------------------------------------
	contribution := op.updateContribution(m, set.Name, tab, alpha)
	if op.sharedTable() {
		old := v.Update[op.Table]
		hasAssoc := false
		for _, g := range m.FragsOnTable(op.Table) {
			if g.Assoc != "" {
				hasAssoc = true
				break
			}
		}
		switch {
		case old == nil:
			v.SetUpdate(op.Table, &cqt.View{Q: contribution})
		case hasAssoc:
			// Association fragments are left-outer-joined onto the entity
			// part *inside* the view, so unioning the new type's branch on
			// top would leave its rows without the association columns.
			// Regenerate this one table's view from the adapted fragments
			// (the incremental scope), as AddProperty does.
			uv, err := compiler.New().UpdateView(m, op.Table)
			if err != nil {
				return err
			}
			v.SetUpdate(op.Table, uv)
		default:
			adapted := cqt.MapConds(old.Q, func(c cond.Expr) cond.Expr {
				return adaptClientCond(m, c, op.Name, op.P, pset)
			})
			// The directive may have widened the shared table (new columns
			// for the new type's attributes), so the pre-existing branch —
			// compiled against the narrower table — must be padded to the
			// common column set before the union, as for query views.
			oldBranch, newBranch, err := unionAlign(m, set.Name, adapted, contribution)
			if err != nil {
				return err
			}
			v.SetUpdate(op.Table, &cqt.View{Q: cqt.UnionAll{Inputs: []cqt.Expr{oldBranch, newBranch}}})
		}
	} else {
		v.SetUpdate(op.Table, &cqt.View{Q: contribution})
	}
	ic.Stats.BuiltViews++
	ic.markUpdate(op.Table)
	ic.adaptUpdateViews(m, v, op.Table, op.Name, op.P, pset)

	// --- Incremental validation (§3.1.4) ---------------------------------
	if err := op.validate(ic, m, v, tab, alpha, pset); err != nil {
		return err
	}

	// --- Query views (Algorithm 1) ---------------------------------------
	return op.evolveQueryViews(ic, m, v, set, alpha, pset)
}

// checkCoverage verifies att(E) = α ∪ att(P).
func (op *AddEntity) checkCoverage(m *frag.Mapping, alpha []string) error {
	inAlpha := map[string]bool{}
	for _, a := range alpha {
		inAlpha[a] = true
	}
	key := m.Client.KeyOf(op.Name)
	for _, k := range key {
		if !inAlpha[k] {
			return fmt.Errorf("α must contain key attribute %q", k)
		}
	}
	for _, a := range m.Client.AttrNames(op.Name) {
		if inAlpha[a] {
			continue
		}
		if op.P != "" && m.Client.HasAttr(op.P, a) {
			continue
		}
		return fmt.Errorf("attribute %q of %q is covered by neither α nor att(P)", a, op.Name)
	}
	return nil
}

// checkColumnMapping verifies f is 1-1 onto existing columns, maps the key
// onto the table key, respects domains, and leaves only nullable columns
// unmapped (for fresh tables).
func (op *AddEntity) checkColumnMapping(m *frag.Mapping, tab *rel.Table, alpha []string) error {
	used := map[string]bool{}
	for _, a := range alpha {
		col, ok := op.ColOf[a]
		if !ok {
			return fmt.Errorf("α attribute %q has no column mapping", a)
		}
		tc, ok := tab.Col(col)
		if !ok {
			return fmt.Errorf("column %q not in table %q", col, op.Table)
		}
		if used[col] {
			return fmt.Errorf("column %q mapped twice", col)
		}
		used[col] = true
		attr, ok := m.Client.Attr(op.Name, a)
		if !ok {
			return fmt.Errorf("unknown attribute %q", a)
		}
		if attr.Type != tc.Type {
			return fmt.Errorf("dom(%s) ⊄ dom(%s): kind %v vs %v", a, col, attr.Type, tc.Type)
		}
	}
	key := m.Client.KeyOf(op.Name)
	if len(key) != len(tab.Key) {
		return fmt.Errorf("key arity mismatch between %q and table %q", op.Name, op.Table)
	}
	for i, k := range key {
		if op.ColOf[k] != tab.Key[i] {
			return fmt.Errorf("f must map key attribute %q to key column %q", k, tab.Key[i])
		}
	}
	if !op.sharedTable() {
		consts := map[string]cond.Value{}
		collectStoreEqualities(op.StoreCond, consts)
		for _, tc := range tab.Cols {
			if tc.Nullable || used[tc.Name] || tab.IsKey(tc.Name) {
				continue
			}
			if _, fixed := consts[tc.Name]; fixed {
				continue
			}
			return fmt.Errorf("unmapped column %q of %q must be nullable", tc.Name, op.Table)
		}
	}
	return nil
}

// updateContribution builds π_{α AS f(α)} pad att(T) (σ_{IS OF E}(E-set)),
// line 2 of Algorithm 2, with store-condition constants (the TPH
// discriminator) projected as literals.
func (op *AddEntity) updateContribution(m *frag.Mapping, setName string, tab *rel.Table, alpha []string) cqt.Expr {
	colFor := map[string]string{}
	for _, a := range alpha {
		colFor[op.ColOf[a]] = a
	}
	consts := map[string]cond.Value{}
	collectStoreEqualities(op.StoreCond, consts)
	cols := make([]cqt.ProjCol, 0, len(tab.Cols))
	for _, tc := range tab.Cols {
		switch {
		case colFor[tc.Name] != "":
			cols = append(cols, cqt.ColAs(colFor[tc.Name], tc.Name))
		default:
			if val, ok := consts[tc.Name]; ok {
				cols = append(cols, cqt.LitAs(cqt.Const(val), tc.Name))
			} else {
				cols = append(cols, cqt.LitAs(cqt.NullOf(tc.Type), tc.Name))
			}
		}
	}
	return cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: setName}, Cond: cond.TypeIs{Type: op.Name}},
		Cols: cols,
	}
}

// validate runs the localized checks of §3.1.4 plus the TPH discriminator
// check of §3.4.
func (op *AddEntity) validate(ic *Incremental, m *frag.Mapping, v *frag.Views, tab *rel.Table, alpha []string, pset []string) error {
	if ic.Opts.SkipValidation {
		// Pipeline fallback: the evolved mapping is re-validated by a full
		// compilation, which subsumes every check below.
		return nil
	}
	ch := ic.checker(m)
	defer ic.absorb(ch)

	// TPH: the new discriminator region must be disjoint from every other
	// entity fragment already on the table.
	if op.sharedTable() {
		th := m.Store.TheoryFor(op.Table)
		for _, g := range m.FragsOnTable(op.Table) {
			if g.Assoc != "" || g.ClientCond.String() == (cond.TypeIs{Type: op.Name}).String() {
				continue
			}
			if !ic.disjoint(th, g.StoreCond, op.StoreCond) {
				return fmt.Errorf("validation failed: discriminator region of %s overlaps fragment %s", op.Name, g.ID)
			}
		}
	}

	// Checks 1-2: associations with an endpoint strictly between E and P.
	for _, f := range pset {
		for _, a := range m.Client.Associations() {
			g := m.FragForAssoc(a.Name)
			if g == nil {
				continue
			}
			ends := assocEndsOfType(m, a, f)
			for _, endCols := range ends {
				// Check 1: the association's F-end keys can still be
				// stored in its table now that E-instances may occur.
				beta := make([]string, len(endCols))
				lcols := make([]cqt.ProjCol, len(endCols))
				for i, ec := range endCols {
					beta[i] = g.ColOf[ec]
					lcols[i] = cqt.ColAs(ec, beta[i])
				}
				lhs := cqt.Project{In: cqt.ScanAssoc{Assoc: a.Name}, Cols: lcols}
				rcols := make([]cqt.ProjCol, len(beta))
				for i, b := range beta {
					rcols[i] = cqt.Col(b)
				}
				rhs := cqt.Project{In: v.Update[g.Table].Q, Cols: rcols}
				if err := ic.checkContainment(ch, lhs, rhs,
					fmt.Sprintf("association %s can no longer store keys of new type %s (check 1)", a.Name, op.Name)); err != nil {
					return err
				}
				// Check 2: foreign keys of the association's table that
				// overlap β.
				rtab := m.Store.Table(g.Table)
				for _, fk := range rtab.FKs {
					if !overlap(fk.Cols, beta) {
						continue
					}
					if err := ic.fkCheck(ch, m, v, g.Table, fk, nil); err != nil {
						return err
					}
				}
			}
		}
	}

	// Check 3: foreign keys of T that overlap f(α).
	falpha := make([]string, len(alpha))
	for i, a := range alpha {
		falpha[i] = op.ColOf[a]
	}
	for _, fk := range tab.FKs {
		if !overlap(fk.Cols, falpha) {
			continue
		}
		if err := ic.fkCheck(ch, m, v, op.Table, fk, nil); err != nil {
			return err
		}
	}

	if ic.Opts.WideValidation {
		return ic.wideFKRecheck(ch, m, v)
	}
	return nil
}

// evolveQueryViews implements Algorithm 1.
func (op *AddEntity) evolveQueryViews(ic *Incremental, m *frag.Mapping, v *frag.Views, set *edm.EntitySet, alpha []string, pset []string) error {
	cat := m.Catalog()
	key := m.Client.KeyOf(op.Name)
	flag := typeFlagCol(op.Name)

	tPart := func(withFlag bool) cqt.Expr {
		cols := make([]cqt.ProjCol, 0, len(alpha)+1)
		for _, a := range alpha {
			cols = append(cols, cqt.ColAs(op.ColOf[a], a))
		}
		if withFlag {
			cols = append(cols, cqt.LitAs(cqt.Const(cond.Bool(true)), flag))
		}
		return cqt.Project{
			In:   cqt.Select{In: cqt.ScanTable{Table: op.Table}, Cond: op.StoreCond},
			Cols: cols,
		}
	}
	keyOn := make([][2]string, 0, len(key))
	for _, k := range key {
		keyOn = append(keyOn, [2]string{k, k})
	}

	// Lines 3-10: Q_E and Q_aux.
	tauE := cqt.Case{When: cond.True{}, Type: op.Name, Attrs: attrIdentity(m, op.Name)}
	var qE, qAux cqt.Expr
	if op.P == "" {
		qE = tPart(false)
		qAux = tPart(true)
	} else {
		qp := v.Query[op.P]
		if qp == nil {
			return fmt.Errorf("no query view for ancestor %q", op.P)
		}
		base, err := projectAway(cat, qp.Q, nonKey(alpha, key))
		if err != nil {
			return err
		}
		qE = cqt.Join{Kind: cqt.Inner, L: base, R: tPart(false), On: keyOn}
		qAux = cqt.Join{Kind: cqt.Inner, L: base, R: tPart(true), On: keyOn}
	}
	v.SetQuery(op.Name, &cqt.View{Q: qE, Cases: []cqt.Case{tauE}})
	ic.Stats.BuiltViews++
	ic.markQuery(op.Name)

	return ic.evolveAncestorViews(m, v, set.Name, op.Name, op.P, pset, qAux, flag)
}

// evolveAncestorViews implements lines 11-23 of Algorithm 1, shared by
// AddEntity and AddEntityPart: the views of P and its ancestors gain a
// left outer join with the new type's (flagged) source, and the views of
// the types strictly between E and P gain a union branch. In both cases
// the constructor gains a leading flag case for the new type.
func (ic *Incremental) evolveAncestorViews(m *frag.Mapping, v *frag.Views, setName, newType, p string, pset []string, qAux cqt.Expr, flag string) error {
	cat := m.Catalog()
	key := m.Client.KeyOf(newType)
	attrs := m.Client.AttrNames(newType)
	keyOn := make([][2]string, 0, len(key))
	for _, k := range key {
		keyOn = append(keyOn, [2]string{k, k})
	}
	inKey := map[string]bool{}
	for _, k := range key {
		inKey[k] = true
	}

	// Ancestors of P extend with a left outer join. Attributes of the new
	// type whose names already occur in the ancestor view (α re-mapping an
	// inherited attribute, as the general AddEntity form allows) must not
	// merge with the ancestor's columns — the ancestor side is NULL for the
	// new type's rows — so the new source's copies are renamed and the new
	// constructor case reads the renamed columns.
	for _, f := range ancestorsOfP(m, p) {
		qf := v.MutableQuery(f)
		if qf == nil {
			continue
		}
		oldCols, err := cat.Cols(qf.Q)
		if err != nil {
			return err
		}
		old := map[string]bool{}
		for _, c := range oldCols {
			old[c] = true
		}
		auxCols, err := cat.Cols(qAux)
		if err != nil {
			return err
		}
		inAux := map[string]bool{}
		for _, c := range auxCols {
			inAux[c] = true
		}
		attrMap := map[string]string{}
		proj := make([]cqt.ProjCol, 0, len(attrs)+1)
		for _, k := range key {
			proj = append(proj, cqt.Col(k))
			attrMap[k] = k
		}
		for _, a := range attrs {
			if inKey[a] || !inAux[a] {
				continue
			}
			if old[a] {
				renamed := "__r_" + newType + "_" + a
				proj = append(proj, cqt.ColAs(a, renamed))
				attrMap[a] = renamed
			} else {
				proj = append(proj, cqt.Col(a))
				attrMap[a] = a
			}
		}
		proj = append(proj, cqt.Col(flag))
		rPart := cqt.Expr(cqt.Project{In: qAux, Cols: proj})
		qf.Q = cqt.Join{Kind: cqt.LeftOuter, L: qf.Q, R: rPart, On: keyOn}
		qf.Cases = append([]cqt.Case{{
			When:  cond.Cmp{Attr: flag, Op: cond.OpEq, Val: cond.Bool(true)},
			Type:  newType,
			Attrs: attrMap,
		}}, qf.Cases...)
		ic.Stats.AdaptedViews++
		ic.markQuery(f)
	}

	// Types strictly between E and P extend with a union; rows come from
	// exactly one branch, so plain attribute names stay correct.
	flagCase := cqt.Case{
		When:  cond.Cmp{Attr: flag, Op: cond.OpEq, Val: cond.Bool(true)},
		Type:  newType,
		Attrs: attrIdentity(m, newType),
	}
	for _, f := range pset {
		qf := v.MutableQuery(f)
		if qf == nil {
			continue
		}
		a, b, err := unionAlign(m, setName, qf.Q, qAux)
		if err != nil {
			return err
		}
		qf.Q = cqt.UnionAll{Inputs: []cqt.Expr{a, b}}
		qf.Cases = append([]cqt.Case{flagCase}, qf.Cases...)
		ic.Stats.AdaptedViews++
		ic.markQuery(f)
	}
	return nil
}

// --- small helpers shared by the SMO implementations ---------------------

func attrIdentity(m *frag.Mapping, ty string) map[string]string {
	out := map[string]string{}
	for _, a := range m.Client.AttrNames(ty) {
		out[a] = a
	}
	return out
}

func nonKey(alpha, key []string) []string {
	inKey := map[string]bool{}
	for _, k := range key {
		inKey[k] = true
	}
	var out []string
	for _, a := range alpha {
		if !inKey[a] {
			out = append(out, a)
		}
	}
	return out
}

func diff(a, b []string) []string {
	inB := map[string]bool{}
	for _, x := range b {
		inB[x] = true
	}
	var out []string
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func overlap(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if set[x] {
			return true
		}
	}
	return false
}

// projectAway removes the named columns from a query's output.
func projectAway(cat *cqt.Catalog, q cqt.Expr, drop []string) (cqt.Expr, error) {
	cols, err := cat.Cols(q)
	if err != nil {
		return nil, err
	}
	dropSet := map[string]bool{}
	for _, d := range drop {
		dropSet[d] = true
	}
	var keep []cqt.ProjCol
	changed := false
	for _, c := range cols {
		if dropSet[c] {
			changed = true
			continue
		}
		keep = append(keep, cqt.Col(c))
	}
	if !changed {
		return q, nil
	}
	return cqt.Project{In: q, Cols: keep}, nil
}

// projectKeep restricts a query's output to the named columns plus a flag.
func projectKeep(cat *cqt.Catalog, q cqt.Expr, keep []string, flag string) (cqt.Expr, error) {
	cols, err := cat.Cols(q)
	if err != nil {
		return nil, err
	}
	has := map[string]bool{}
	for _, c := range cols {
		has[c] = true
	}
	seen := map[string]bool{}
	var out []cqt.ProjCol
	for _, k := range keep {
		if has[k] && !seen[k] {
			seen[k] = true
			out = append(out, cqt.Col(k))
		}
	}
	if has[flag] && !seen[flag] {
		out = append(out, cqt.Col(flag))
	}
	return cqt.Project{In: q, Cols: out}, nil
}

// assocEndsOfType returns the association-scan column lists of the ends
// whose type is exactly ty.
func assocEndsOfType(m *frag.Mapping, a *edm.Association, ty string) [][]string {
	e1, e2 := cqt.AssocEndCols(m.Client, a)
	var out [][]string
	if a.End1.Type == ty {
		out = append(out, e1)
	}
	if a.End2.Type == ty {
		out = append(out, e2)
	}
	return out
}

func collectStoreEqualities(e cond.Expr, out map[string]cond.Value) {
	switch v := e.(type) {
	case cond.Cmp:
		if v.Op == cond.OpEq {
			out[v.Attr] = v.Val
		}
	case *cond.And:
		for _, x := range v.Xs {
			collectStoreEqualities(x, out)
		}
	}
}
