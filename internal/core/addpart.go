package core

import (
	"fmt"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
)

// Part is one element (αi, ψi, Ti, fi) of an AddEntityPart directive: the
// attributes Alpha of rows satisfying Cond are stored in Table under the
// renaming ColOf.
type Part struct {
	Alpha []string
	// Cond is ψi, a satisfiable conjunction of comparisons over att(E).
	Cond  cond.Expr
	Table string
	ColOf map[string]string
}

// AddEntityPart is the SMO of §3.3: a new entity type whose instances are
// horizontally partitioned across several tables by client-side
// conditions. Validation checks that the (ψi, αi) pairs cover every
// attribute — including attributes recovered as constants from equalities
// ψi entails, such as the gender = 'M'/'F' example — by proving the
// disjunction of the covering conditions a tautology.
type AddEntityPart struct {
	Name      string
	Parent    string
	DeclAttrs []edm.Attribute
	// P is the ancestor covering attributes no part maps; "" means NIL.
	P     string
	Parts []Part
}

// Describe implements SMO.
func (op *AddEntityPart) Describe() string {
	return fmt.Sprintf("AddEntityPart(%s < %s, %d parts)", op.Name, op.Parent, len(op.Parts))
}

func (op *AddEntityPart) apply(ic *Incremental, m *frag.Mapping, v *frag.Views) error {
	if len(op.Parts) == 0 {
		return fmt.Errorf("no parts given")
	}
	if err := m.Client.AddType(edm.EntityType{Name: op.Name, Base: op.Parent, Attrs: op.DeclAttrs}); err != nil {
		return err
	}
	set := m.Client.SetFor(op.Name)
	if set == nil {
		return fmt.Errorf("parent hierarchy of %q has no entity set", op.Parent)
	}
	if op.P != "" && !m.Client.IsSubtype(op.Name, op.P) {
		return fmt.Errorf("P = %q is not an ancestor of %q", op.P, op.Name)
	}

	th := exactTypeTheory{m: m, set: set, ty: op.Name}
	key := m.Client.KeyOf(op.Name)

	// --- Side conditions per part ----------------------------------------
	for i := range op.Parts {
		p := &op.Parts[i]
		if !ic.satisfiable(th, p.Cond) {
			return fmt.Errorf("part %d condition %s is unsatisfiable", i, p.Cond)
		}
		tab := m.Store.Table(p.Table)
		if tab == nil {
			return fmt.Errorf("unknown table %q", p.Table)
		}
		if len(m.FragsOnTable(p.Table)) > 0 {
			return fmt.Errorf("table %q is already mentioned in a mapping fragment", p.Table)
		}
		for j := 0; j < i; j++ {
			if op.Parts[j].Table == p.Table {
				return fmt.Errorf("parts %d and %d share table %q", j, i, p.Table)
			}
		}
		inAlpha := map[string]bool{}
		for _, a := range p.Alpha {
			inAlpha[a] = true
		}
		for _, k := range key {
			if !inAlpha[k] {
				return fmt.Errorf("part %d must map key attribute %q", i, k)
			}
		}
		for ai, k := range key {
			if p.ColOf[k] != tab.Key[ai] {
				return fmt.Errorf("part %d must map the key onto table %q's key", i, p.Table)
			}
		}
		used := map[string]bool{}
		for _, a := range p.Alpha {
			col, ok := p.ColOf[a]
			if !ok {
				return fmt.Errorf("part %d attribute %q has no column mapping", i, a)
			}
			tc, ok := tab.Col(col)
			if !ok {
				return fmt.Errorf("part %d maps %q to unknown column %q", i, a, col)
			}
			if used[col] {
				return fmt.Errorf("part %d maps column %q twice", i, col)
			}
			used[col] = true
			attr, ok := m.Client.Attr(op.Name, a)
			if !ok {
				return fmt.Errorf("part %d maps unknown attribute %q", i, a)
			}
			if attr.Type != tc.Type {
				return fmt.Errorf("part %d: dom(%s) ⊄ dom(%s)", i, a, col)
			}
		}
		for _, tc := range tab.Cols {
			if !tc.Nullable && !used[tc.Name] {
				return fmt.Errorf("part %d leaves non-nullable column %q unmapped", i, tc.Name)
			}
		}
	}

	// --- Coverage tautology (§3.3) ----------------------------------------
	for _, a := range m.Client.AttrNames(op.Name) {
		if op.P != "" && m.Client.HasAttr(op.P, a) {
			continue
		}
		var covering []cond.Expr
		for _, p := range op.Parts {
			inAlpha := false
			for _, x := range p.Alpha {
				if x == a {
					inAlpha = true
				}
			}
			eqs := map[string]cond.Value{}
			collectStoreEqualities(p.Cond, eqs)
			if _, fixed := eqs[a]; inAlpha || fixed {
				covering = append(covering, p.Cond)
			}
		}
		ic.Stats.Implications++
		if !ic.tautology(th, cond.NewOr(covering...)) {
			return fmt.Errorf("validation failed: attribute %q of %q is not covered by the partition conditions", a, op.Name)
		}
	}

	// --- Fragment adaptation and new fragments ----------------------------
	pset := betweenTypes(m, op.Name, op.P)
	ic.adaptFragments(m, set.Name, op.Name, op.P, pset)
	for i, p := range op.Parts {
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         fmt.Sprintf("f_%s_part%d_%s", op.Name, i, p.Table),
			Set:        set.Name,
			ClientCond: cond.NewAnd(cond.TypeIs{Type: op.Name}, p.Cond),
			Attrs:      p.Alpha,
			Table:      p.Table,
			StoreCond:  cond.True{},
			ColOf:      p.ColOf,
		})
	}
	for i := range op.Parts {
		if err := m.CheckFragment(m.Frags[len(m.Frags)-len(op.Parts)+i]); err != nil {
			return err
		}
	}

	// --- Update views -------------------------------------------------------
	for _, p := range op.Parts {
		tab := m.Store.Table(p.Table)
		colFor := map[string]string{}
		for _, a := range p.Alpha {
			colFor[p.ColOf[a]] = a
		}
		cols := make([]cqt.ProjCol, 0, len(tab.Cols))
		for _, tc := range tab.Cols {
			if a, ok := colFor[tc.Name]; ok {
				cols = append(cols, cqt.ColAs(a, tc.Name))
			} else {
				cols = append(cols, cqt.LitAs(cqt.NullOf(tc.Type), tc.Name))
			}
		}
		v.SetUpdate(p.Table, &cqt.View{Q: cqt.Project{
			In: cqt.Select{
				In:   cqt.ScanSet{Set: set.Name},
				Cond: cond.NewAnd(cond.TypeIs{Type: op.Name}, p.Cond),
			},
			Cols: cols,
		}})
		ic.Stats.BuiltViews++
		ic.markUpdate(p.Table)
	}
	// An empty skip table adapts every existing view; the parts' own tables
	// were just created and contain no IS OF atoms, so the rewrite is a
	// no-op on them.
	ic.adaptUpdateViews(m, v, "", op.Name, op.P, pset)

	// --- Validation: association and foreign-key checks --------------------
	ch := ic.checker(m)
	defer ic.absorb(ch)
	for _, p := range op.Parts {
		tab := m.Store.Table(p.Table)
		falpha := make([]string, 0, len(p.Alpha))
		for _, a := range p.Alpha {
			falpha = append(falpha, p.ColOf[a])
		}
		for _, fk := range tab.FKs {
			if !overlap(fk.Cols, falpha) {
				continue
			}
			if err := ic.fkCheck(ch, m, v, p.Table, fk, nil); err != nil {
				return err
			}
		}
	}
	if ic.Opts.WideValidation {
		if err := ic.wideFKRecheck(ch, m, v); err != nil {
			return err
		}
	}

	// --- Query views ----------------------------------------------------------
	comp := compiler.New()
	qE, err := comp.Assembly(m, set.Name, op.Name)
	if err != nil {
		return err
	}
	v.SetQuery(op.Name, &cqt.View{Q: qE, Cases: []cqt.Case{{
		When: cond.True{}, Type: op.Name, Attrs: attrIdentity(m, op.Name),
	}}})
	ic.Stats.BuiltViews++
	ic.markQuery(op.Name)

	flag := typeFlagCol(op.Name)
	cat := m.Catalog()
	qCols, err := cat.Cols(qE)
	if err != nil {
		return err
	}
	aux := make([]cqt.ProjCol, 0, len(qCols)+1)
	for _, c := range qCols {
		aux = append(aux, cqt.Col(c))
	}
	aux = append(aux, cqt.LitAs(cqt.Const(cond.Bool(true)), flag))
	qAux := cqt.Project{In: qE, Cols: aux}

	return ic.evolveAncestorViews(m, v, set.Name, op.Name, op.P, pset, qAux, flag)
}

// exactTypeTheory restricts an entity set's theory to instances of exactly
// one type (used for the §3.3 satisfiability and tautology checks).
type exactTypeTheory struct {
	m   *frag.Mapping
	set *edm.EntitySet
	ty  string
}

func (t exactTypeTheory) ConcreteTypes(subject string) []string {
	if subject != "" {
		return nil
	}
	return []string{t.ty}
}
func (t exactTypeTheory) IsSubtype(sub, typ string) bool { return t.m.Client.IsSubtype(sub, typ) }
func (t exactTypeTheory) Domain(attr string) (cond.Domain, bool) {
	if a, ok := t.m.Client.Attr(t.ty, attr); ok {
		return a.Domain(), true
	}
	return cond.Domain{}, false
}
func (t exactTypeTheory) Nullable(attr string) bool {
	if a, ok := t.m.Client.Attr(t.ty, attr); ok {
		return a.Nullable
	}
	return true
}
func (t exactTypeTheory) HasAttr(ct, attr string) bool { return t.m.Client.HasAttr(ct, attr) }
