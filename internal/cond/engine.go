package cond

// The incremental theory index: shared machinery for exhaustive cell
// enumeration (EnumerateCells and the legacy Enumerate* wrappers) and for
// the CDCL solver's theory propagator (cdcl.go).
//
// The previous enumerator re-derived the feasibility of the touched
// attribute group from scratch at every DFS node — gathering the group's
// assigned literals into a scratch slice and re-running interval or enum
// reasoning over them — and mirrored every assignment into a map[Atom]bool.
// For the hub-and-rim TPH store tables of Figure 4 that made each of the
// 2^(N·M) search nodes cost O(group · |enum|) value comparisons plus map
// churn. The engine instead precomputes, per atom, how its assignment
// constrains its group, and maintains per-group summaries that make the
// post-assignment feasibility check a handful of word operations:
//
//   - enum/bool domains keep a bitmask of domain values compatible with the
//     assigned comparison literals (each literal contributes a precomputed
//     satisfying-value mask),
//   - nullability is two counters (literals forcing NULL / forcing a value),
//   - typed subjects keep a bitmask of concrete-type candidates compatible
//     with the assigned type literals, and a per-attribute-group mask of
//     candidates the group's state still admits (present or absent),
//
// all undone in O(1) on backtrack via per-atom save slots. Domains or
// candidate sets wider than 64 fall back to the gather-and-recheck path,
// preserving exact semantics.

// maxMaskBits is the widest enum domain / candidate set the bitmask fast
// path covers; wider groups use the slow gather path.
const maxMaskBits = 64

// onesMask returns a mask with the low n bits set (n in 1..64).
func onesMask(n int) uint64 { return ^uint64(0) >> (64 - uint(n)) }

// eAtomKind classifies how an atom's assignment feeds the index.
type eAtomKind uint8

const (
	// eaTypeUntyped is a type atom whose subject has no concrete types: a
	// positive assignment is infeasible, a negative one vacuous.
	eaTypeUntyped eAtomKind = iota
	// eaType is a type atom on a typed subject: it narrows the candidate
	// mask.
	eaType
	// eaNull is an A IS NULL atom: it moves the group's null counters.
	eaNull
	// eaCmp is an A θ c atom: it narrows the group's value mask (fast
	// groups) and moves the non-null counter when positive.
	eaCmp
)

// eAtom is the precomputed per-atom index entry.
type eAtom struct {
	kind  eAtomKind
	group int32 // attr-group index, -1 for type atoms
	subj  int32 // subject index, -1 when the subject is untyped
	// mask is, for eaType, the candidate-type bits where the literal holds
	// positively; for eaCmp in a fast group, the domain-value bits where
	// the comparison holds.
	mask uint64
}

// eGroup is one attribute's literal group with its incremental state.
type eGroup struct {
	attr    string
	subj    int32   // owning typed subject, -1 for standalone groups
	members []int32 // atom indices, for the gather path
	info    domEntry
	// fast marks enum/bool domains of ≤ maxMaskBits values, whose
	// feasibility is tracked by valueMask instead of re-derivation.
	fast     bool
	enumVals []Value
	fullVals uint64
	// skipState marks groups owned by a slow (>64-candidate) subject:
	// assignments only record vals; feasibility re-derives everything.
	skipState bool
	hasMask   uint64 // typed subjects: candidates carrying the attribute

	// Dynamic state.
	valueMask     uint64 // fast groups: values compatible with assigned cmps
	nonNullForced int32  // literals forcing a non-NULL value
	nullForced    int32  // IS NULL literals assigned true
	allowed       uint64 // typed subjects: candidates this group still admits
}

// eSubject is a typed condition subject (one with concrete-type candidates).
type eSubject struct {
	name        string
	candidates  []string
	slow        bool // >maxMaskBits candidates: gather path
	fullMask    uint64
	candMask    uint64 // candidates compatible with assigned type literals
	groups      []int32
	typeMembers []int32
}

// undoSlot holds the saved words restored when an atom is unassigned.
type undoSlot struct{ x, y uint64 }

// enumEngine drives exhaustive theory-consistent enumeration over a fixed
// atom list. It is not safe for concurrent use.
type enumEngine struct {
	t     Theory
	atoms []Atom
	vals  []int8
	// asg, when non-nil, mirrors vals as an Assignment for legacy visitors.
	asg Assignment

	ea     []eAtom
	groups []eGroup
	subjs  []eSubject
	undo   []undoSlot

	dom     map[string]domEntry
	litsBuf []attrLit
	cmpsBuf []attrLit
	tlsBuf  []typeLit
}

func newEnumEngine(t Theory, atoms []Atom) *enumEngine {
	e := &enumEngine{
		t:     t,
		atoms: atoms,
		vals:  make([]int8, len(atoms)),
		ea:    make([]eAtom, len(atoms)),
		undo:  make([]undoSlot, len(atoms)),
		dom:   map[string]domEntry{},
	}
	for i := range e.vals {
		e.vals[i] = -1
	}

	subjIdx := map[string]int32{}
	groupIdx := map[string]int32{}
	getSubj := func(name string) int32 {
		if si, ok := subjIdx[name]; ok {
			return si
		}
		cands := t.ConcreteTypes(name)
		si := int32(-1)
		if len(cands) > 0 {
			si = int32(len(e.subjs))
			s := eSubject{name: name, candidates: cands}
			if len(cands) > maxMaskBits {
				s.slow = true
			} else {
				s.fullMask = onesMask(len(cands))
				s.candMask = s.fullMask
			}
			e.subjs = append(e.subjs, s)
		}
		subjIdx[name] = si
		return si
	}
	getGroup := func(attr string, si int32) int32 {
		if gi, ok := groupIdx[attr]; ok {
			return gi
		}
		gi := int32(len(e.groups))
		g := eGroup{attr: attr, subj: si}
		g.info = e.attrInfo(attr)
		if si >= 0 && e.subjs[si].slow {
			// Slow subjects skip incremental mask state, but the group must
			// still be linked so slowSubjectConsistent and subjectAssigned
			// see its literals (info and members are all they need).
			g.skipState = true
			e.subjs[si].groups = append(e.subjs[si].groups, gi)
		} else {
			switch {
			case g.info.known && len(g.info.dom.Enum) > 0:
				g.enumVals = g.info.dom.Enum
			case g.info.known && g.info.dom.Kind == KindBool:
				g.enumVals = boolEnum
			}
			if len(g.enumVals) > 0 && len(g.enumVals) <= maxMaskBits {
				g.fast = true
				g.fullVals = onesMask(len(g.enumVals))
				g.valueMask = g.fullVals
			} else {
				g.enumVals = nil
			}
			if si >= 0 {
				for ci, c := range e.subjs[si].candidates {
					if t.HasAttr(c, bareAttr(attr)) {
						g.hasMask |= 1 << uint(ci)
					}
				}
				e.subjs[si].groups = append(e.subjs[si].groups, gi)
			}
		}
		e.groups = append(e.groups, g)
		groupIdx[attr] = gi
		return gi
	}

	for i, a := range atoms {
		switch a.Kind {
		case AtomType:
			si := getSubj(a.Var)
			if si < 0 {
				e.ea[i] = eAtom{kind: eaTypeUntyped, group: -1, subj: -1}
				continue
			}
			s := &e.subjs[si]
			s.typeMembers = append(s.typeMembers, int32(i))
			ea := eAtom{kind: eaType, group: -1, subj: si}
			if !s.slow {
				for ci, c := range s.candidates {
					var holds bool
					if a.Only {
						holds = c == a.Type
					} else {
						holds = t.IsSubtype(c, a.Type)
					}
					if holds {
						ea.mask |= 1 << uint(ci)
					}
				}
			}
			e.ea[i] = ea
		default:
			si := getSubj(a.subject())
			gi := getGroup(a.Attr, si)
			g := &e.groups[gi]
			g.members = append(g.members, int32(i))
			kind := eaNull
			var mask uint64
			if a.Kind == AtomCmp {
				kind = eaCmp
				if g.fast {
					for vi, v := range g.enumVals {
						if cmpHolds(v, a.Op, a.Val) {
							mask |= 1 << uint(vi)
						}
					}
				}
			}
			e.ea[i] = eAtom{kind: kind, group: gi, subj: si, mask: mask}
		}
	}
	// Seed the per-group candidate-admission masks from the empty state.
	for gi := range e.groups {
		g := &e.groups[gi]
		if g.subj >= 0 && !g.skipState {
			g.allowed = e.groupAllowed(g)
		}
	}
	return e
}

// boolEnum is the implicit two-value domain of boolean attributes.
var boolEnum = []Value{Bool(false), Bool(true)}

func (e *enumEngine) attrInfo(attr string) domEntry {
	if d, ok := e.dom[attr]; ok {
		return d
	}
	var d domEntry
	d.dom, d.known = e.t.Domain(attr)
	d.nullable = e.t.Nullable(attr)
	e.dom[attr] = d
	return d
}

// assign records atom i as val (1 or 0) and updates the touched group's
// incremental state, saving whatever unassign must restore.
func (e *enumEngine) assign(i int, val int8) {
	e.vals[i] = val
	if e.asg != nil {
		e.asg[e.atoms[i]] = val == 1
	}
	ea := &e.ea[i]
	switch ea.kind {
	case eaTypeUntyped:
		// No state: feasibility is the atom's own polarity.
	case eaType:
		s := &e.subjs[ea.subj]
		if s.slow {
			return
		}
		e.undo[i].x = s.candMask
		if val == 1 {
			s.candMask &= ea.mask
		} else {
			s.candMask &^= ea.mask
		}
	default:
		g := &e.groups[ea.group]
		if g.skipState {
			return
		}
		e.undo[i] = undoSlot{x: g.valueMask, y: g.allowed}
		if ea.kind == eaNull {
			if val == 1 {
				g.nullForced++
			} else {
				g.nonNullForced++
			}
		} else {
			if val == 1 {
				g.nonNullForced++
				if g.fast {
					g.valueMask &= ea.mask
				}
			} else if g.fast {
				g.valueMask &^= ea.mask
			}
		}
		if g.subj >= 0 {
			g.allowed = e.groupAllowed(g)
		}
	}
}

// unassign reverts assign(i, ·). vals[i] must still hold the assigned value.
func (e *enumEngine) unassign(i int) {
	val := e.vals[i]
	e.vals[i] = -1
	if e.asg != nil {
		delete(e.asg, e.atoms[i])
	}
	ea := &e.ea[i]
	switch ea.kind {
	case eaTypeUntyped:
	case eaType:
		s := &e.subjs[ea.subj]
		if s.slow {
			return
		}
		s.candMask = e.undo[i].x
	default:
		g := &e.groups[ea.group]
		if g.skipState {
			return
		}
		g.valueMask = e.undo[i].x
		g.allowed = e.undo[i].y
		if ea.kind == eaNull {
			if val == 1 {
				g.nullForced--
			} else {
				g.nonNullForced--
			}
		} else if val == 1 {
			g.nonNullForced--
		}
	}
}

// feasibleAfter reports whether the theory still admits a witness after
// atom i was assigned. Only the structure the atom touches is re-checked:
// the enumeration invariant guarantees everything else was feasible before
// the assignment and is unaffected by it.
func (e *enumEngine) feasibleAfter(i int) bool {
	ea := &e.ea[i]
	switch ea.kind {
	case eaTypeUntyped:
		return e.vals[i] != 1
	case eaType:
		s := &e.subjs[ea.subj]
		if s.slow {
			return e.slowSubjectConsistent(s)
		}
		return e.subjFeasible(s)
	default:
		g := &e.groups[ea.group]
		if g.skipState {
			return e.slowSubjectConsistent(&e.subjs[ea.subj])
		}
		if g.subj < 0 {
			return e.groupFeasible(g)
		}
		return e.subjFeasible(&e.subjs[g.subj])
	}
}

// groupFeasible decides a standalone (untyped-subject) group from its
// incremental state, falling back to literal gathering for slow domains.
func (e *enumEngine) groupFeasible(g *eGroup) bool {
	if g.fast {
		return (g.info.nullable && g.nonNullForced == 0) ||
			(g.nullForced == 0 && g.valueMask != 0)
	}
	return attrFeasibleLits(g.info, e.gatherLits(g), &e.cmpsBuf)
}

// groupAllowed computes the candidate-type mask a typed subject's group
// admits: candidates carrying the attribute when the group is feasible with
// a value or NULL, plus candidates lacking it when nothing forces non-NULL
// (an absent attribute reads as NULL regardless of declared nullability).
func (e *enumEngine) groupAllowed(g *eGroup) uint64 {
	s := &e.subjs[g.subj]
	absentOK := g.nonNullForced == 0
	var presentOK bool
	if g.fast {
		presentOK = (g.info.nullable && g.nonNullForced == 0) ||
			(g.nullForced == 0 && g.valueMask != 0)
	} else {
		presentOK = attrFeasibleLits(g.info, e.gatherLits(g), &e.cmpsBuf)
	}
	var m uint64
	if presentOK {
		m |= g.hasMask
	}
	if absentOK {
		m |= s.fullMask &^ g.hasMask
	}
	return m
}

// subjFeasible intersects the subject's candidate mask with every group's
// admission mask: some concrete type must satisfy the type literals and
// admit every attribute group at once.
func (e *enumEngine) subjFeasible(s *eSubject) bool {
	m := s.candMask
	for _, gi := range s.groups {
		m &= e.groups[gi].allowed
		if m == 0 {
			return false
		}
	}
	return m != 0
}

// gatherLits collects the group's assigned literals into the engine's
// scratch buffer (the slow path shared with the historical checker).
func (e *enumEngine) gatherLits(g *eGroup) []attrLit {
	lits := e.litsBuf[:0]
	for _, mi := range g.members {
		v := e.vals[mi]
		if v < 0 {
			continue
		}
		a := e.atoms[mi]
		if a.Kind == AtomNull {
			lits = append(lits, attrLit{null: true, pos: v == 1})
		} else {
			lits = append(lits, attrLit{op: a.Op, val: a.Val, pos: v == 1})
		}
	}
	e.litsBuf = lits
	return lits
}

// slowSubjectConsistent is the gather path for subjects with more concrete
// candidates than the bitmask covers: per candidate, re-check type literals
// and every attribute group, exactly as ConsistentAssignment does.
func (e *enumEngine) slowSubjectConsistent(s *eSubject) bool {
	tls := e.tlsBuf[:0]
	for _, ti := range s.typeMembers {
		if e.vals[ti] < 0 {
			continue
		}
		a := e.atoms[ti]
		tls = append(tls, typeLit{typ: a.Type, only: a.Only, pos: e.vals[ti] == 1})
	}
	e.tlsBuf = tls
	for _, c := range s.candidates {
		if !typeLitsHold(e.t, c, tls) {
			continue
		}
		ok := true
		for _, gi := range s.groups {
			g := &e.groups[gi]
			lits := e.gatherLits(g)
			if !e.t.HasAttr(c, bareAttr(g.attr)) {
				if forcedNonNull(lits) {
					ok = false
					break
				}
				continue
			}
			if !attrFeasibleLits(g.info, lits, &e.cmpsBuf) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// seedPrefix replays already-decided leading atoms into the index without
// feasibility checks (the caller guarantees the prefix is consistent).
func (e *enumEngine) seedPrefix(prefix []int8, start int) {
	for i := 0; i < start && i < len(e.atoms); i++ {
		if i < len(prefix) && prefix[i] >= 0 {
			e.assign(i, prefix[i])
		}
	}
}

// run enumerates, in the canonical order (atom index order, true before
// false), every theory-consistent completion of the current state over
// atoms[i:]. It stops early when visit returns false and reports whether
// the enumeration ran to completion.
func (e *enumEngine) run(i int, visit func([]int8) bool) bool {
	if i >= len(e.atoms) {
		return visit(e.vals)
	}
	e.assign(i, 1)
	if e.feasibleAfter(i) && !e.run(i+1, visit) {
		e.unassign(i)
		return false
	}
	e.unassign(i)
	e.assign(i, 0)
	if e.feasibleAfter(i) && !e.run(i+1, visit) {
		e.unassign(i)
		return false
	}
	e.unassign(i)
	return true
}

// EnumerateCells visits every theory-consistent full assignment of the
// atoms that extends the dense prefix over atoms[:start] (prefix[i] is the
// truth of atoms[i]; the prefix must itself be theory-consistent). The
// visitor receives the dense truth slice indexed like atoms, valid only for
// the duration of the call; no Assignment map is maintained, which keeps
// the exhaustive cell walks of the validation pipeline off the allocator.
// It stops early when visit returns false and reports whether the
// enumeration ran to completion.
func EnumerateCells(t Theory, atoms []Atom, prefix []int8, start int, visit func([]int8) bool) bool {
	e := newEnumEngine(t, atoms)
	e.seedPrefix(prefix, start)
	return e.run(start, visit)
}

// AssignmentFromVals materializes a dense truth slice as an Assignment
// (for error reporting and other cold paths).
func AssignmentFromVals(atoms []Atom, vals []int8) Assignment {
	asg := make(Assignment, len(atoms))
	for i, a := range atoms {
		if i < len(vals) && vals[i] >= 0 {
			asg[a] = vals[i] == 1
		}
	}
	return asg
}
