package cond

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCDCLAgreesWithNaiveDPLL differentially checks the CDCL solver against
// the historical DPLL tree search on randomized theories and expressions —
// both with and without lemma persistence in the loop.
func TestCDCLAgreesWithNaiveDPLL(t *testing.T) {
	th := satCacheTheory()
	r := rand.New(rand.NewSource(42))
	c := NewSatCache()
	for i := 0; i < 2000; i++ {
		x := randExpr(r, 4)
		want := satisfiableNaive(th, x)
		if got := Satisfiable(th, x); got != want {
			t.Fatalf("CDCL disagrees with naive DPLL on %s: cdcl=%v naive=%v", x, got, want)
		}
		// Through the cache: the miss path solves with a lemma store that
		// accumulates clauses from every earlier same-scope query.
		if got := c.Satisfiable(th, x); got != want {
			t.Fatalf("cached CDCL disagrees with naive DPLL on %s: cache=%v naive=%v", x, got, want)
		}
	}
}

// TestCDCLAgreesOnDerivedProcedures checks the derived decision procedures
// (which stack negation and conjunction on top of the raw queries) against
// naive verdicts.
func TestCDCLAgreesOnDerivedProcedures(t *testing.T) {
	th := satCacheTheory()
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		a, b := randExpr(r, 3), randExpr(r, 3)
		if got, want := Implies(th, a, b), !satisfiableNaive(th, NewAnd(a, NewNot(b))); got != want {
			t.Fatalf("Implies mismatch on %s ⇒ %s: got %v want %v", a, b, got, want)
		}
		if got, want := Disjoint(th, a, b), !satisfiableNaive(th, NewAnd(a, b)); got != want {
			t.Fatalf("Disjoint mismatch on %s vs %s: got %v want %v", a, b, got, want)
		}
	}
}

// TestLemmaPersistenceObservable proves that clauses learned while solving
// one query are re-installed into a later same-scope query, and that the
// reuse is visible in SatCacheStats.
func TestLemmaPersistenceObservable(t *testing.T) {
	th := satCacheTheory()
	c := NewSatCache()

	m := Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}
	f := Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}
	contra := NewAnd(m, f) // theory-infeasible pair, learnable above level 0

	// Same atom set and theory facts — one solver scope — but distinct
	// expressions, so each misses the verdict cache and actually solves.
	q1 := NewOr(contra, Null{Attr: "Age"})
	q2 := NewOr(contra, NewNot(Null{Attr: "Age"}))

	if !c.Satisfiable(th, q1) {
		t.Fatal("q1 should be satisfiable (NULL Age branch)")
	}
	st := c.Stats()
	if st.LemmasStored == 0 {
		t.Fatalf("solving q1 learned no lemmas: %+v", st)
	}
	if !c.Satisfiable(th, q2) {
		t.Fatal("q2 should be satisfiable (NOT NULL Age branch)")
	}
	st = c.Stats()
	if st.LemmaHits == 0 {
		t.Fatalf("solving q2 reused no lemmas from q1's scope: %+v", st)
	}
	if st.Hits != 0 {
		t.Fatalf("queries were expected to miss the verdict cache: %+v", st)
	}
}

// TestSolverTotalsAdvance checks the process-wide counters move when the
// solver works.
func TestSolverTotalsAdvance(t *testing.T) {
	before := SolverTotals()
	th := satCacheTheory()
	m := Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}
	f := Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}
	if !Satisfiable(th, NewOr(NewAnd(m, f), Null{Attr: "Age"})) {
		t.Fatal("expected satisfiable")
	}
	after := SolverTotals()
	if after.Propagations <= before.Propagations {
		t.Errorf("propagation counter did not advance: %+v -> %+v", before, after)
	}
	if after.Conflicts <= before.Conflicts {
		t.Errorf("conflict counter did not advance: %+v -> %+v", before, after)
	}
}

// TestInternClockEviction streams far more distinct composites through the
// constructors than the (shrunken) table cap and checks that the table
// stays bounded, evictions are counted, and pointer equality still holds
// for structures built close together in time (within a generation).
func TestInternClockEviction(t *testing.T) {
	oldCap := internMaxEntries
	internMaxEntries = 256
	defer func() { internMaxEntries = oldCap }()

	evBefore := InternEvictions()
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 8*256; i++ {
		// Distinct leaf values make distinct composites; the Not wrapper
		// forces each through the intern table.
		x := NewNot(Cmp{Attr: "Age", Op: OpGe, Val: Int(int64(r.Intn(1 << 20)))})
		// Re-building immediately must hit the resident node: eviction may
		// only claw back cold entries, never the one just constructed.
		y := NewNot(Cmp{Attr: x.(*Not).X.(Cmp).Attr, Op: OpGe, Val: x.(*Not).X.(Cmp).Val})
		if x != y {
			t.Fatalf("pointer equality broken for a just-interned node at i=%d", i)
		}
		if sz := InternStats(); sz > internMaxEntries {
			t.Fatalf("intern table exceeded its cap: %d > %d", sz, internMaxEntries)
		}
	}
	if InternEvictions() == evBefore {
		t.Fatal("streaming past the cap caused no evictions")
	}
	if got := NewSatCache().Stats().InternEvictions; got == 0 {
		t.Fatal("evictions not visible through SatCacheStats")
	}
}

// decodeFuzzExpr builds an expression from a byte stream via a small stack
// machine over the satCacheTheory vocabulary. Every input decodes to some
// expression (trailing operands are OR-ed together), so the fuzzer wastes
// no executions on parse errors.
func decodeFuzzExpr(data []byte) Expr {
	var stack []Expr
	pop := func() Expr {
		if len(stack) == 0 {
			return True{}
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	types := []string{"Person", "Employee", "Customer"}
	attrs := []string{"Gender", "Age", "Salary", "Id"}
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 8 {
		case 0:
			stack = append(stack, TypeIs{Type: types[int(arg)%3], Only: arg&0x80 != 0})
		case 1:
			stack = append(stack, Null{Attr: attrs[int(arg)%4]})
		case 2:
			stack = append(stack, Cmp{Attr: "Gender", Op: OpEq, Val: String([]string{"M", "F", "X"}[int(arg)%3])})
		case 3:
			ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			stack = append(stack, Cmp{Attr: "Age", Op: ops[int(arg)%6], Val: Int(int64(arg) % 64)})
		case 4:
			stack = append(stack, Cmp{Attr: "Salary", Op: OpGt, Val: Int(int64(arg) * 100)})
		case 5:
			stack = append(stack, NewNot(pop()))
		case 6:
			b, a := pop(), pop()
			stack = append(stack, NewAnd(a, b))
		default:
			b, a := pop(), pop()
			stack = append(stack, NewOr(a, b))
		}
	}
	x := pop()
	for len(stack) > 0 {
		x = NewOr(x, pop())
	}
	return x
}

// FuzzSatisfiable cross-checks the CDCL solver against the naive DPLL
// search (and the cache-mediated lemma-reusing path) on fuzzer-built
// expressions. Seeds mirror testdata/fuzz/FuzzSatisfiable.
func FuzzSatisfiable(f *testing.F) {
	f.Add([]byte{2, 0, 2, 1, 6, 0})             // Gender=M ∧ Gender=F (theory conflict)
	f.Add([]byte{3, 10, 3, 40, 5, 0, 6, 0})     // Age bound ∧ ¬(Age bound)
	f.Add([]byte{0, 0, 0, 0x81, 6, 0, 1, 1})    // typed subject ∧ only-type, stray Null
	f.Add([]byte{1, 0, 5, 0, 2, 2, 7, 0, 4, 3}) // ¬NULL ∨ cmp, trailing Salary
	f.Add([]byte{0, 2, 1, 3, 6, 0, 3, 5, 7, 0, 5, 0})
	th := satCacheTheory()
	cache := NewSatCache()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 20 {
			data = data[:20] // bound atom count: the oracle is exponential
		}
		x := decodeFuzzExpr(data)
		if len(Atoms(x)) > 10 {
			t.Skip("too many atoms for the naive oracle")
		}
		want := satisfiableNaive(th, x)
		if got := Satisfiable(th, x); got != want {
			t.Fatalf("CDCL disagrees with naive DPLL on %s: cdcl=%v naive=%v", x, got, want)
		}
		if got := cache.Satisfiable(th, x); got != want {
			t.Fatalf("cached CDCL disagrees with naive DPLL on %s: cache=%v naive=%v", x, got, want)
		}
	})
}

// TestFuzzSatisfiableSeeds runs the seed corpus as ordinary tests, so plain
// `go test` exercises the differential oracle without -fuzz.
func TestFuzzSatisfiableSeeds(t *testing.T) {
	seeds := [][]byte{
		{2, 0, 2, 1, 6, 0},
		{3, 10, 3, 40, 5, 0, 6, 0},
		{0, 0, 0, 0x81, 6, 0, 1, 1},
		{1, 0, 5, 0, 2, 2, 7, 0, 4, 3},
		{0, 2, 1, 3, 6, 0, 3, 5, 7, 0, 5, 0},
	}
	th := satCacheTheory()
	for i, data := range seeds {
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			x := decodeFuzzExpr(data)
			if got, want := Satisfiable(th, x), satisfiableNaive(th, x); got != want {
				t.Fatalf("CDCL disagrees with naive DPLL on %s: cdcl=%v naive=%v", x, got, want)
			}
		})
	}
}
