package cond

import "fmt"

// A CDCL (conflict-driven clause learning) satisfiability core replacing
// the historical DPLL tree search of Satisfiable. The condition is Tseitin-
// encoded over its interned structure — every And/Or node contributes one
// gate variable keyed by its content address, negation folds into literal
// polarity — and solved with two-watched-literal unit propagation, 1-UIP
// conflict analysis and non-chronological backjumping. Assignments are
// dense arrays indexed by variable, not maps.
//
// Theory reasoning (discriminator-equality mutual exclusion, IS NOT NULL
// domains, concrete-type candidates) runs as a propagator on the same
// incremental index the cell enumerator uses (engine.go): every atom
// assignment updates its group's summary in O(1) words, and an infeasible
// group produces an explanation clause — the negation of the group's
// assigned literals — that conflict analysis can resolve on and learn from.
//
// Learned clauses deliberately keep their level-0 literals (the root
// assertion is a level-0 unit, and conflict analysis never resolves on
// literals below the current decision level), so every learned clause is
// implied by the theory facts and the gate definitions alone — never by
// the particular query being decided. That is what makes lemma persistence
// (satcache.go) sound: a clause whose gate literals all name structures
// present in a later query, over the same atom list and theory fingerprint,
// may be re-installed there verbatim — even in another process, since
// content addresses are structure-derived rather than process-local.

// SolverStats counts one solver run's work (and, accumulated by SatCache,
// a cache's lifetime totals).
type SolverStats struct {
	Propagations int64 // literals enqueued by unit propagation
	Conflicts    int64 // conflicts hit (boolean or theory)
	Learned      int64 // clauses learned by conflict analysis
	Backjumps    int64 // non-chronological jumps (skipping ≥1 level)
	LemmaHits    int64 // persisted lemmas re-installed from the store
	LemmasStored int64 // learned clauses persisted to the store
}

// lit is a literal: variable<<1 | 1 for negated occurrences.
type lit int32

// litUndef is the "no literal" sentinel used during conflict analysis.
const litUndef = lit(-2)

func mkLit(v int32, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) v() int32   { return int32(l) >> 1 }
func (l lit) negd() bool { return l&1 != 0 }
func (l lit) inv() lit   { return l ^ 1 }

const reasonNone = int32(-1)

// cdclClause is one clause of the database. lits[0] and lits[1] are the
// watched literals for clauses that participate in propagation.
type cdclClause struct {
	lits []lit
}

// cdcl is the solver state for one Satisfiable decision.
type cdcl struct {
	t     Theory
	atoms []Atom
	eng   *enumEngine

	nAtoms   int32
	nVars    int32
	assigned []int8 // per var: -1 unassigned, 0 false, 1 true
	level    []int32
	reason   []int32 // clause index that propagated the var, or reasonNone
	trail    []lit
	trailLim []int
	qhead    int

	clauses []cdclClause
	watches [][]int32

	gateOf   map[string]int32 // content address -> gate var
	ckOf     []string         // per var: content address of its gate node, "" otherwise
	constVar int32            // lazily created always-true var, -1 until used

	units []lit // level-0 assertions (root literal, unit lemmas)
	unsat bool  // an empty/contradictory clause surfaced during setup

	store *lemmaStore
	stats SolverStats

	seen    []bool
	clearV  []int32
	explBuf []int32
}

// satisfiableCDCL decides theory-satisfiability of x over its atom list.
// store, when non-nil, supplies persisted lemmas for this (atoms, theory)
// scope and receives the clauses learned here. stats, when non-nil,
// receives the run's counters.
func satisfiableCDCL(t Theory, x Expr, atoms []Atom, store *lemmaStore, stats *SolverStats) bool {
	s := &cdcl{t: t, atoms: atoms, constVar: -1, store: store}
	s.nAtoms = int32(len(atoms))
	s.eng = newEnumEngine(t, atoms)
	for range atoms {
		s.addVar()
	}
	s.gateOf = make(map[string]int32)

	root := s.encode(x)
	s.units = append(s.units, root)
	s.installLemmas()

	sat := s.solve()
	solverTotals.add(&s.stats)
	if stats != nil {
		*stats = s.stats
	}
	return sat
}

func (s *cdcl) addVar() int32 {
	v := s.nVars
	s.nVars++
	s.assigned = append(s.assigned, -1)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, reasonNone)
	s.ckOf = append(s.ckOf, "")
	s.watches = append(s.watches, nil, nil)
	return v
}

// atomVarOf finds the atom's variable by binary search over the sorted
// atom list (the list is the canonical Atoms order).
func (s *cdcl) atomVarOf(a Atom) int32 {
	lo, hi := 0, len(s.atoms)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.atoms[mid].less(a) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// constLit returns a literal that is true (neg=false) or false (neg=true)
// in every model, via a lazily created asserted variable. Constants never
// occur inside interned composites (the constructors simplify them away),
// so this only serves degenerate top-level expressions.
func (s *cdcl) constLit(neg bool) lit {
	if s.constVar < 0 {
		s.constVar = s.addVar()
		s.units = append(s.units, mkLit(s.constVar, false))
	}
	return mkLit(s.constVar, neg)
}

// encode returns a literal equivalent to x, adding gate definitions as
// needed. Composites reuse one gate per content address.
func (s *cdcl) encode(x Expr) lit {
	switch v := x.(type) {
	case True:
		return s.constLit(false)
	case False:
		return s.constLit(true)
	case *Not:
		return s.encode(v.X).inv()
	case *And:
		return s.encodeGate(v.ck, v.Xs, true)
	case *Or:
		return s.encodeGate(v.ck, v.Xs, false)
	default:
		a, ok := atomOf(x)
		if !ok {
			// Fail loudly: a new Expr variant must be taught to the encoder,
			// not silently treated as a constant.
			panic(fmt.Sprintf("cond: cdcl encode: unsupported Expr kind %T", x))
		}
		return mkLit(s.atomVarOf(a), false)
	}
}

func (s *cdcl) encodeGate(ck string, children []Expr, isAnd bool) lit {
	if ck != "" {
		if g, ok := s.gateOf[ck]; ok {
			return mkLit(g, false)
		}
	}
	cl := make([]lit, len(children))
	for i, c := range children {
		cl[i] = s.encode(c)
	}
	g := s.addVar()
	if ck != "" {
		s.gateOf[ck] = g
		s.ckOf[g] = ck
	}
	glit := mkLit(g, false)
	long := make([]lit, 1, len(cl)+1)
	if isAnd {
		// g ↔ c1 ∧ … ∧ ck: (¬g ∨ ci) each, (g ∨ ¬c1 ∨ … ∨ ¬ck).
		long[0] = glit
		for _, c := range cl {
			s.addClause([]lit{glit.inv(), c}, true)
			long = append(long, c.inv())
		}
	} else {
		// g ↔ c1 ∨ … ∨ ck: (g ∨ ¬ci) each, (¬g ∨ c1 ∨ … ∨ ck).
		long[0] = glit.inv()
		for _, c := range cl {
			s.addClause([]lit{glit, c.inv()}, true)
			long = append(long, c)
		}
	}
	s.addClause(long, true)
	return glit
}

// addClause registers a clause; watched=false keeps it out of propagation
// (used for theory explanations, whose literals are all false when built —
// they serve conflict analysis and persistence only).
func (s *cdcl) addClause(ls []lit, watched bool) int32 {
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, cdclClause{lits: ls})
	switch {
	case len(ls) == 0:
		s.unsat = true
	case len(ls) == 1:
		s.units = append(s.units, ls[0])
	case watched:
		s.watch(ls[0], ci)
		s.watch(ls[1], ci)
	}
	return ci
}

func (s *cdcl) watch(l lit, ci int32) {
	s.watches[int32(l)] = append(s.watches[int32(l)], ci)
}

// litVal reports the literal's truth under the current assignment:
// 1 true, 0 false, -1 unassigned.
func (s *cdcl) litVal(l lit) int8 {
	a := s.assigned[l.v()]
	if a < 0 {
		return -1
	}
	if l.negd() {
		return 1 - a
	}
	return a
}

func (s *cdcl) decisionLevel() int { return len(s.trailLim) }

// enqueue records l as true with the given reason and feeds atom
// assignments to the theory propagator. It returns the index of a theory
// conflict clause, or -1.
func (s *cdcl) enqueue(l lit, reason int32) int32 {
	v := l.v()
	if l.negd() {
		s.assigned[v] = 0
	} else {
		s.assigned[v] = 1
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	if v < s.nAtoms {
		s.eng.assign(int(v), s.assigned[v])
		if !s.eng.feasibleAfter(int(v)) {
			return s.theoryConflict(int(v))
		}
	}
	return -1
}

// theoryConflict builds the explanation clause for the infeasible structure
// touched by atom i: the negation of every assigned literal the verdict
// depends on. The clause is implied by the theory alone (group feasibility
// is monotone in the literal set), so it is learnable and persistable.
func (s *cdcl) theoryConflict(i int) int32 {
	s.explBuf = s.eng.conflictAtoms(i, s.explBuf[:0])
	ls := make([]lit, 0, len(s.explBuf))
	for _, ai := range s.explBuf {
		ls = append(ls, mkLit(ai, s.eng.vals[ai] == 1))
	}
	ci := s.addClause(ls, false)
	s.persist(ls)
	return ci
}

// propagate runs unit propagation to fixpoint, returning a conflicting
// clause index or -1.
func (s *cdcl) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		pi := int32(p.inv())
		ws := s.watches[pi]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			c := &s.clauses[ci]
			// Normalize: the false literal sits at lits[1].
			if c.lits[0] == p.inv() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.litVal(c.lits[0]) == 1 {
				ws[j] = ci
				j++
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.litVal(c.lits[k]) != 0 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watch(c.lits[1], ci)
					moved = true
					break
				}
			}
			if moved {
				continue // clause left this watch list
			}
			ws[j] = ci
			j++
			if s.litVal(c.lits[0]) == 0 {
				// Conflict: flush the remaining watchers and report.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[pi] = ws[:j]
				s.qhead = len(s.trail)
				return ci
			}
			s.stats.Propagations++
			if confl := s.enqueue(c.lits[0], ci); confl >= 0 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[pi] = ws[:j]
				s.qhead = len(s.trail)
				return confl
			}
		}
		s.watches[pi] = ws[:j]
	}
	return -1
}

// analyze performs 1-UIP conflict analysis from the conflicting clause,
// returning the learned clause (asserting literal first, a highest-level
// literal second) and the level to backjump to. Literals assigned below
// the current level — including level 0 — are kept in the clause, never
// resolved on; see the package comment on lemma soundness.
func (s *cdcl) analyze(confl int32) ([]lit, int) {
	if len(s.seen) < int(s.nVars) {
		s.seen = make([]bool, s.nVars)
	}
	learnt := []lit{litUndef}
	curLevel := int32(s.decisionLevel())
	counter := 0
	p := litUndef
	ci := confl
	idx := len(s.trail) - 1

	for {
		c := s.clauses[ci].lits
		start := 0
		if p != litUndef {
			start = 1 // reason clauses carry the propagated literal at lits[0]
		}
		for _, q := range c[start:] {
			v := q.v()
			if s.seen[v] {
				continue
			}
			s.seen[v] = true
			s.clearV = append(s.clearV, v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !s.seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		if counter == 0 {
			break
		}
		ci = s.reason[p.v()]
	}
	learnt[0] = p.inv()

	// Second literal: one assigned at the backjump level, so the clause's
	// watches stay coherent after the jump.
	bl := 0
	for i := 1; i < len(learnt); i++ {
		if lv := int(s.level[learnt[i].v()]); lv > bl {
			bl = lv
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	for _, v := range s.clearV {
		s.seen[v] = false
	}
	s.clearV = s.clearV[:0]
	return learnt, bl
}

// backjump undoes every assignment above the given level.
func (s *cdcl) backjump(bl int) {
	lim := s.trailLim[bl]
	for len(s.trail) > lim {
		l := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		v := l.v()
		if v < s.nAtoms {
			s.eng.unassign(int(v))
		}
		s.assigned[v] = -1
		s.reason[v] = reasonNone
	}
	s.trailLim = s.trailLim[:bl]
	if s.qhead > lim {
		s.qhead = lim
	}
}

// learnAndAssert installs the learned clause and asserts its UIP literal,
// returning a theory conflict index if the assertion is infeasible.
func (s *cdcl) learnAndAssert(learnt []lit) int32 {
	s.stats.Learned++
	ci := s.addClause(learnt, len(learnt) >= 2)
	s.persist(learnt)
	if len(learnt) == 1 {
		// addClause queued it as a unit; assert it here instead.
		s.units = s.units[:len(s.units)-1]
	}
	return s.enqueue(learnt[0], ci)
}

// flushUnits asserts the pending level-0 literals (root, unit lemmas,
// constants). It returns a conflict clause index or -1.
func (s *cdcl) flushUnits() int32 {
	for i := 0; i < len(s.units); i++ {
		u := s.units[i]
		switch s.litVal(u) {
		case 1:
			continue
		case 0:
			// Contradicting units: fabricate the empty conflict.
			return s.addClause(nil, false)
		}
		if confl := s.enqueue(u, reasonNone); confl >= 0 {
			return confl
		}
		if confl := s.propagate(); confl >= 0 {
			return confl
		}
	}
	return -1
}

// nextDecision picks the first unassigned atom variable in canonical
// order, or -1 when every atom is assigned (gate variables are then all
// forced by propagation, so the formula is decided).
func (s *cdcl) nextDecision() int32 {
	for v := int32(0); v < s.nAtoms; v++ {
		if s.assigned[v] < 0 {
			return v
		}
	}
	return -1
}

func (s *cdcl) solve() bool {
	if s.unsat {
		return false
	}
	confl := s.flushUnits()
	for {
		if confl < 0 {
			confl = s.propagate()
		}
		if confl >= 0 {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				return false
			}
			learnt, bl := s.analyze(confl)
			if bl < s.decisionLevel()-1 {
				s.stats.Backjumps++
			}
			s.backjump(bl)
			confl = s.learnAndAssert(learnt)
			continue
		}
		v := s.nextDecision()
		if v < 0 {
			return true
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		confl = s.enqueue(mkLit(v, false), reasonNone)
	}
}

// conflictAtoms appends the indices of the assigned atoms of the structure
// touched by atom i — the inputs its infeasibility verdict depends on.
func (e *enumEngine) conflictAtoms(i int, out []int32) []int32 {
	ea := &e.ea[i]
	switch ea.kind {
	case eaTypeUntyped:
		return append(out, int32(i))
	case eaType:
		return e.subjectAssigned(&e.subjs[ea.subj], out)
	default:
		if ea.subj >= 0 {
			return e.subjectAssigned(&e.subjs[ea.subj], out)
		}
		g := &e.groups[ea.group]
		for _, mi := range g.members {
			if e.vals[mi] >= 0 {
				out = append(out, mi)
			}
		}
		return out
	}
}

func (e *enumEngine) subjectAssigned(s *eSubject, out []int32) []int32 {
	for _, ti := range s.typeMembers {
		if e.vals[ti] >= 0 {
			out = append(out, ti)
		}
	}
	for _, gi := range s.groups {
		for _, mi := range e.groups[gi].members {
			if e.vals[mi] >= 0 {
				out = append(out, mi)
			}
		}
	}
	return out
}
