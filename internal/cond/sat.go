package cond

import (
	"sort"
	"strings"
)

// Assignment maps atoms to truth values. A full assignment determines the
// truth of every condition built from those atoms.
type Assignment map[Atom]bool

// Eval evaluates the expression under the (full) assignment. Atoms missing
// from the assignment evaluate to false.
func (a Assignment) Eval(x Expr) bool {
	v, known := evalPartial(x, a)
	return known && v
}

// evalPartial performs three-valued evaluation of x under a partial
// assignment. known reports whether the truth value is already determined.
func evalPartial(x Expr, asg Assignment) (val, known bool) {
	switch v := x.(type) {
	case True:
		return true, true
	case False:
		return false, true
	case *Not:
		iv, ik := evalPartial(v.X, asg)
		return !iv, ik
	case *And:
		all := true
		for _, c := range v.Xs {
			cv, ck := evalPartial(c, asg)
			if ck && !cv {
				return false, true
			}
			if !ck {
				all = false
			}
		}
		return true, all
	case *Or:
		none := true
		for _, c := range v.Xs {
			cv, ck := evalPartial(c, asg)
			if ck && cv {
				return true, true
			}
			if !ck {
				none = false
			}
		}
		return false, none
	default:
		a, ok := atomOf(x)
		if !ok {
			return false, true
		}
		if b, assigned := asg[a]; assigned {
			return b, true
		}
		return false, false
	}
}

// Satisfiable reports whether some theory-consistent instance satisfies x.
// The check is a CDCL search (cdcl.go) over the Tseitin-encoded condition
// with theory-consistency propagation; it is exponential in the number of
// atoms in the worst case, which is inherent (the underlying problem is
// NP-hard), but clause learning and non-chronological backjumping prune
// the repeated near-identical subproblems that containment checking
// generates in practice.
func Satisfiable(t Theory, x Expr) bool {
	return satisfiableCDCL(t, x, Atoms(x), nil, nil)
}

// satisfiableNaive is the historical DPLL tree search, retained as the
// differential-testing oracle for the CDCL solver.
func satisfiableNaive(t Theory, x Expr) bool {
	s := &solver{t: t, atoms: Atoms(x), asg: Assignment{}}
	s.buildIndex()
	return s.search(0, x)
}

// Implies reports whether every theory-consistent instance satisfying a
// also satisfies b.
func Implies(t Theory, a, b Expr) bool {
	return !Satisfiable(t, NewAnd(a, NewNot(b)))
}

// Tautology reports whether every theory-consistent instance satisfies x.
// This implements the coverage check of §3.3 of the paper (e.g. that
// age >= 18 OR age < 18 is a tautology over non-null integer ages, and that
// gender = 'M' OR gender = 'F' is one over the two-valued gender domain).
func Tautology(t Theory, x Expr) bool { return !Satisfiable(t, NewNot(x)) }

// Equivalent reports whether a and b agree on every theory-consistent
// instance.
func Equivalent(t Theory, a, b Expr) bool { return Implies(t, a, b) && Implies(t, b, a) }

// Disjoint reports whether no theory-consistent instance satisfies both a
// and b.
func Disjoint(t Theory, a, b Expr) bool { return !Satisfiable(t, NewAnd(a, b)) }

// EnumerateAssignments visits every theory-consistent full assignment of the
// given atoms. It stops early when visit returns false and reports whether
// the enumeration ran to completion. The enumeration is exponential in
// len(atoms) by design: the full mapping compiler uses it for exhaustive
// roundtrip (cell) analysis, which is the source of the compilation-time
// blow-up the paper measures in Figure 4.
func EnumerateAssignments(t Theory, atoms []Atom, visit func(Assignment) bool) bool {
	e := newEnumEngine(t, atoms)
	e.asg = make(Assignment, len(atoms))
	return e.run(0, func([]int8) bool { return visit(e.asg) })
}

// EnumerateAssignmentsSeeded visits every theory-consistent full assignment
// of the atoms that extends the given prefix assignment over atoms[:start].
// The prefix must itself be theory-consistent; the enumeration branches only
// over atoms[start:]. The visitor additionally receives a dense truth slice
// indexed like atoms (1 true, 0 false), valid only for the duration of the
// call. Seeded enumeration lets callers partition one exponential cell space
// into disjoint contiguous sub-spaces — the unit of work of the parallel
// validation pipeline.
func EnumerateAssignmentsSeeded(t Theory, atoms []Atom, prefix Assignment, start int, visit func(Assignment, []int8) bool) bool {
	e := newEnumEngine(t, atoms)
	e.asg = make(Assignment, len(atoms))
	for a, v := range prefix {
		e.asg[a] = v
	}
	dense := make([]int8, 0, start)
	for i := 0; i < start && i < len(atoms); i++ {
		v, ok := prefix[atoms[i]]
		switch {
		case !ok:
			dense = append(dense, -1)
		case v:
			dense = append(dense, 1)
		default:
			dense = append(dense, 0)
		}
	}
	e.seedPrefix(dense, start)
	return e.run(start, func([]int8) bool { return visit(e.asg, e.vals) })
}

// EnumerateAllAssignments visits every full boolean assignment of the atoms
// with no theory pruning (2^len(atoms) visits). It exists for the
// cell-pruning ablation benchmark; use EnumerateAssignments otherwise.
func EnumerateAllAssignments(atoms []Atom, visit func(Assignment) bool) bool {
	asg := Assignment{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i >= len(atoms) {
			return visit(asg)
		}
		for _, val := range [2]bool{true, false} {
			asg[atoms[i]] = val
			if !rec(i + 1) {
				return false
			}
		}
		delete(asg, atoms[i])
		return true
	}
	return rec(0)
}

// EnumerateAllAssignmentsIndexed is EnumerateAllAssignments extended with
// the dense truth slice of EnumerateAssignmentsSeeded.
func EnumerateAllAssignmentsIndexed(atoms []Atom, visit func(Assignment, []int8) bool) bool {
	asg := Assignment{}
	vals := make([]int8, len(atoms))
	for i := range vals {
		vals[i] = -1
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i >= len(atoms) {
			return visit(asg, vals)
		}
		for _, val := range [2]bool{true, false} {
			asg[atoms[i]] = val
			if val {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
			if !rec(i + 1) {
				return false
			}
		}
		delete(asg, atoms[i])
		vals[i] = -1
		return true
	}
	return rec(0)
}

// ConsistentAssignment reports whether a full assignment admits a witness
// instance under the theory.
func ConsistentAssignment(t Theory, asg Assignment) bool {
	s := &solver{t: t, asg: asg}
	subjects := map[string]bool{}
	for a := range asg {
		subjects[a.subject()] = true
	}
	for subj := range subjects {
		if !s.subjectConsistent(subj) {
			return false
		}
	}
	return true
}

type solver struct {
	t     Theory
	atoms []Atom
	asg   Assignment

	// Lazily built indices over atoms, used to localize consistency checks
	// and avoid hashing large atom keys in the enumeration hot path.
	attrAtoms map[string][]int // attr -> indices of its null/cmp atoms
	typedSubj map[string]bool  // subject -> has type atoms or concrete types
	vals      []int8           // per-atom truth: -1 unassigned, 0 false, 1 true
	litsBuf   []attrLit        // scratch buffer for group literals
	cmpsBuf   []attrLit        // scratch buffer for comparison literals
	domCache  map[string]domEntry
	indexed   bool
}

// domEntry caches per-attribute theory lookups for the enumeration hot
// path.
type domEntry struct {
	dom      Domain
	known    bool
	nullable bool
}

func (s *solver) attrInfo(attr string) domEntry {
	if e, ok := s.domCache[attr]; ok {
		return e
	}
	if s.domCache == nil {
		s.domCache = map[string]domEntry{}
	}
	var e domEntry
	e.dom, e.known = s.t.Domain(attr)
	e.nullable = s.t.Nullable(attr)
	s.domCache[attr] = e
	return e
}

func (s *solver) buildIndex() {
	if s.indexed {
		return
	}
	s.indexed = true
	s.attrAtoms = map[string][]int{}
	s.typedSubj = map[string]bool{}
	s.vals = make([]int8, len(s.atoms))
	for i, a := range s.atoms {
		s.vals[i] = -1
		switch a.Kind {
		case AtomType:
			s.typedSubj[a.subject()] = true
		default:
			s.attrAtoms[a.Attr] = append(s.attrAtoms[a.Attr], i)
		}
	}
	// Seed values already present in the assignment (callers may start
	// from a partial assignment).
	for i, a := range s.atoms {
		if v, ok := s.asg[a]; ok {
			if v {
				s.vals[i] = 1
			} else {
				s.vals[i] = 0
			}
		}
	}
}

// subjectTyped reports whether consistency of the subject couples its
// attribute groups (through the choice of a concrete type).
func (s *solver) subjectTyped(subject string) bool {
	s.buildIndex()
	return s.typedSubj[subject] || len(s.t.ConcreteTypes(subject)) > 0
}

func (s *solver) search(i int, x Expr) bool {
	if v, known := evalPartial(x, s.asg); known {
		// The partial assignment is theory-consistent by construction, so a
		// witness exists for the assigned atoms; unassigned atoms take
		// whatever truth values the witness induces without affecting x.
		return v
	}
	if i >= len(s.atoms) {
		return false
	}
	a := s.atoms[i]
	for _, val := range [2]bool{true, false} {
		s.assign(i, a, val)
		if s.consistentForIdx(i) && s.search(i+1, x) {
			s.unassign(i, a)
			return true
		}
	}
	s.unassign(i, a)
	return false
}

func (s *solver) assign(i int, a Atom, val bool) {
	s.asg[a] = val
	if val {
		s.vals[i] = 1
	} else {
		s.vals[i] = 0
	}
}

func (s *solver) unassign(i int, a Atom) {
	delete(s.asg, a)
	s.vals[i] = -1
}

// consistentForIdx re-checks the consistency of the subject touched by the
// i-th atom under the current partial assignment. For untyped subjects the
// attribute groups are independent, so only the touched group needs
// re-checking — this keeps exhaustive cell enumeration at O(group) per
// search node, using int-indexed values and scratch buffers to stay off
// the allocator.
func (s *solver) consistentForIdx(i int) bool {
	a := s.atoms[i]
	subject := a.subject()
	if s.subjectTyped(subject) {
		return s.subjectConsistent(subject)
	}
	if a.Kind == AtomType {
		// Positive type literals are unsatisfiable on untyped subjects.
		return s.vals[i] != 1
	}
	lits := s.litsBuf[:0]
	for _, gi := range s.attrAtoms[a.Attr] {
		v := s.vals[gi]
		if v < 0 {
			continue
		}
		ga := s.atoms[gi]
		if ga.Kind == AtomNull {
			lits = append(lits, attrLit{null: true, pos: v == 1})
		} else {
			lits = append(lits, attrLit{op: ga.Op, val: ga.Val, pos: v == 1})
		}
	}
	s.litsBuf = lits
	return s.attrFeasible(a.Attr, lits, true)
}

func (a Atom) subject() string {
	if a.Kind == AtomType {
		return a.Var
	}
	if i := strings.IndexByte(a.Attr, '.'); i >= 0 {
		return a.Attr[:i]
	}
	return ""
}

// subjectConsistent checks whether the assigned literals about one subject
// admit a witness: a concrete type (for typed subjects) together with
// per-attribute values or NULLs.
func (s *solver) subjectConsistent(subject string) bool {
	var typeLits []typeLit
	attrLits := map[string][]attrLit{}
	for a, val := range s.asg {
		if a.subject() != subject {
			continue
		}
		switch a.Kind {
		case AtomType:
			typeLits = append(typeLits, typeLit{typ: a.Type, only: a.Only, pos: val})
		case AtomNull:
			attrLits[a.Attr] = append(attrLits[a.Attr], attrLit{null: true, pos: val})
		case AtomCmp:
			attrLits[a.Attr] = append(attrLits[a.Attr], attrLit{op: a.Op, val: a.Val, pos: val})
		}
	}
	candidates := s.t.ConcreteTypes(subject)
	if len(candidates) == 0 {
		// Untyped subject: every positive type literal is unsatisfiable and
		// attribute groups stand alone.
		for _, tl := range typeLits {
			if tl.pos {
				return false
			}
		}
		for attr, lits := range attrLits {
			if !s.attrFeasible(attr, lits, true) {
				return false
			}
		}
		return true
	}
	// Typed subject: some concrete type must satisfy the type literals and
	// admit all attribute groups.
	for _, c := range candidates {
		if !typeLitsHold(s.t, c, typeLits) {
			continue
		}
		ok := true
		for attr, lits := range attrLits {
			if !s.t.HasAttr(c, bareAttr(attr)) {
				// The attribute does not exist on this type, hence is NULL.
				if forcedNonNull(lits) {
					ok = false
					break
				}
				continue
			}
			if !s.attrFeasible(attr, lits, false) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func bareAttr(attr string) string {
	if i := strings.IndexByte(attr, '.'); i >= 0 {
		return attr[i+1:]
	}
	return attr
}

type typeLit struct {
	typ  string
	only bool
	pos  bool
}

type attrLit struct {
	null bool // true for IS NULL atoms, false for comparisons
	op   Op
	val  Value
	pos  bool
}

func typeLitsHold(t Theory, concrete string, lits []typeLit) bool {
	for _, l := range lits {
		var holds bool
		if l.only {
			holds = concrete == l.typ
		} else {
			holds = t.IsSubtype(concrete, l.typ)
		}
		if holds != l.pos {
			return false
		}
	}
	return true
}

func forcedNonNull(lits []attrLit) bool {
	for _, l := range lits {
		if l.null && !l.pos {
			return true // IS NULL assigned false
		}
		if !l.null && l.pos {
			return true // a positive comparison requires a value
		}
	}
	return false
}

func forcedNull(lits []attrLit) bool {
	for _, l := range lits {
		if l.null && l.pos {
			return true
		}
	}
	return false
}

// attrFeasible reports whether a single attribute admits a value (or NULL)
// consistent with its assigned literals.
func (s *solver) attrFeasible(attr string, lits []attrLit, untyped bool) bool {
	return attrFeasibleLits(s.attrInfo(attr), lits, &s.cmpsBuf)
}

// attrFeasibleLits is the domain reasoning shared by the historical solver
// and the enumeration engine: whether one attribute admits a value (or
// NULL) consistent with its assigned literals. cmpsBuf is caller-owned
// scratch, grown as needed.
func attrFeasibleLits(info domEntry, lits []attrLit, cmpsBuf *[]attrLit) bool {
	// Option 1: the attribute is NULL. All comparisons are then false.
	if info.nullable && !forcedNonNull(lits) {
		return true
	}
	// Option 2: the attribute holds a value.
	if forcedNull(lits) {
		return false
	}
	cmps := (*cmpsBuf)[:0]
	for _, l := range lits {
		if !l.null {
			cmps = append(cmps, l)
		}
	}
	*cmpsBuf = cmps
	if !info.known {
		return regionFeasibleUnknownDomain(cmps)
	}
	return regionFeasible(info.dom, cmps)
}

// regionFeasibleUnknownDomain handles attributes with no declared domain:
// the value may be of any kind.
func regionFeasibleUnknownDomain(cmps []attrLit) bool {
	// Positive literals force the kind.
	kind := Kind(-1)
	for _, l := range cmps {
		if l.pos {
			if kind >= 0 && kind != l.val.K {
				return false
			}
			kind = l.val.K
		}
	}
	if kind < 0 {
		// Only negative literals: pick any kind not mentioned, or any value
		// far from the mentioned constants; for bool fall through to the
		// two-valued check.
		return true
	}
	var same []attrLit
	for _, l := range cmps {
		if l.val.K == kind {
			same = append(same, l)
		} else if l.pos {
			return false
		}
		// Negative literals of other kinds hold vacuously.
	}
	return regionFeasible(Domain{Kind: kind}, same)
}

// regionFeasible decides whether some value of the given domain satisfies
// each comparison literal with its assigned polarity. Literals whose
// constant kind differs from the domain kind are always-false atoms: a
// positive occurrence is infeasible, a negative one vacuous (enumFeasible
// handles the latter through cmpHolds; rangeFeasible skips them).
func regionFeasible(dom Domain, cmps []attrLit) bool {
	for _, l := range cmps {
		if l.val.K != dom.Kind && l.pos {
			return false
		}
	}
	if len(dom.Enum) > 0 {
		return enumFeasible(dom.Enum, cmps)
	}
	if dom.Kind == KindBool {
		return enumFeasible([]Value{Bool(false), Bool(true)}, cmps)
	}
	return rangeFeasible(dom.Kind, cmps)
}

func enumFeasible(enum []Value, lits []attrLit) bool {
	// Fast path: a positive equality pins the value, so the enum scan
	// collapses to membership plus one pass over the literals. This keeps
	// exhaustive cell enumeration over large TPH discriminator domains
	// near-linear per search node.
	for _, l := range lits {
		if !l.pos || l.op != OpEq {
			continue
		}
		v := l.val
		if len(enum) > 0 && v.K != enum[0].K {
			return false // positive equality outside the domain kind
		}
		in := false
		for _, e := range enum {
			if c, ok := Compare(e, v); ok && c == 0 {
				in = true
				break
			}
		}
		if !in {
			return false
		}
		for _, l2 := range lits {
			if cmpHolds(v, l2.op, l2.val) != l2.pos {
				return false
			}
		}
		return true
	}
	// Negated equalities can rule out at most one enum value each.
	allNegEq := true
	for _, l := range lits {
		if l.pos || l.op != OpEq {
			allNegEq = false
			break
		}
	}
	if allNegEq && len(lits) < len(enum) {
		return true
	}
	for _, v := range enum {
		ok := true
		for _, l := range lits {
			if cmpHolds(v, l.op, l.val) != l.pos {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// rangeFeasible decides feasibility over an unbounded ordered domain using
// interval reasoning. Integer domains account for integrality of strict
// bounds and point exclusions; float and string domains are treated as
// dense unbounded orders.
func rangeFeasible(kind Kind, lits []attrLit) bool {
	type bound struct {
		val    Value
		strict bool
		set    bool
	}
	var lo, hi bound
	var eq *Value
	var excl []Value

	tightenLo := func(v Value, strict bool) {
		if !lo.set {
			lo = bound{val: v, strict: strict, set: true}
			return
		}
		c, _ := Compare(v, lo.val)
		if c > 0 || (c == 0 && strict && !lo.strict) {
			lo = bound{val: v, strict: strict, set: true}
		}
	}
	tightenHi := func(v Value, strict bool) {
		if !hi.set {
			hi = bound{val: v, strict: strict, set: true}
			return
		}
		c, _ := Compare(v, hi.val)
		if c < 0 || (c == 0 && strict && !hi.strict) {
			hi = bound{val: v, strict: strict, set: true}
		}
	}
	requireEq := func(v Value) bool {
		if eq != nil {
			c, _ := Compare(*eq, v)
			return c == 0
		}
		eq = &v
		return true
	}

	for _, l := range lits {
		if l.val.K != kind {
			continue // mismatched negatives are vacuous
		}
		op := l.op
		if !l.pos {
			op = op.Negate()
		}
		switch op {
		case OpEq:
			if !requireEq(l.val) {
				return false
			}
		case OpNe:
			excl = append(excl, l.val)
		case OpLt:
			tightenHi(l.val, true)
		case OpLe:
			tightenHi(l.val, false)
		case OpGt:
			tightenLo(l.val, true)
		case OpGe:
			tightenLo(l.val, false)
		}
	}

	if eq != nil {
		v := *eq
		for _, x := range excl {
			if c, _ := Compare(v, x); c == 0 {
				return false
			}
		}
		if lo.set {
			c, _ := Compare(v, lo.val)
			if c < 0 || (c == 0 && lo.strict) {
				return false
			}
		}
		if hi.set {
			c, _ := Compare(v, hi.val)
			if c > 0 || (c == 0 && hi.strict) {
				return false
			}
		}
		return true
	}

	if kind == KindInt {
		return intIntervalFeasible(lo.set, lo.val.IntVal(), lo.strict, hi.set, hi.val.IntVal(), hi.strict, excl)
	}

	// Dense order (floats; strings approximated as dense, which is sound
	// for the query classes this compiler generates).
	if lo.set && hi.set {
		c, _ := Compare(lo.val, hi.val)
		if c > 0 {
			return false
		}
		if c == 0 {
			if lo.strict || hi.strict {
				return false
			}
			for _, x := range excl {
				if cc, _ := Compare(lo.val, x); cc == 0 {
					return false
				}
			}
		}
	}
	return true
}

func intIntervalFeasible(loSet bool, lo int64, loStrict, hiSet bool, hi int64, hiStrict bool, excl []Value) bool {
	if loSet && loStrict {
		lo++
	}
	if hiSet && hiStrict {
		hi--
	}
	if loSet && hiSet {
		if lo > hi {
			return false
		}
		// Count distinct excluded points inside the closed interval.
		seen := map[int64]bool{}
		for _, x := range excl {
			v := x.IntVal()
			if v >= lo && v <= hi {
				seen[v] = true
			}
		}
		return hi-lo+1 > int64(len(seen))
	}
	return true
}

// SortAtoms orders atoms deterministically (the order used by Atoms).
func SortAtoms(atoms []Atom) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].less(atoms[j]) })
}
