package cond

import (
	"encoding/json"
	"testing"
)

// TestScopeClockEviction regresses the historical scope-cap bug: once the
// scope map filled, scopeStore refused every NEW scope a lemma store
// forever, freezing the lemma working set at whatever arrived first. With
// clock eviction, churning far more scopes than the cap must stay bounded,
// count evictions, and a fresh scope past the cap must still persist and
// reuse lemmas.
func TestScopeClockEviction(t *testing.T) {
	th := satCacheTheory()
	c := NewSatCache()
	c.maxScopes = 8

	for i := 0; i < 64; i++ {
		// Each i is a distinct atom set, hence a distinct solver scope.
		lo := Cmp{Attr: "Age", Op: OpGe, Val: Int(int64(i))}
		hi := Cmp{Attr: "Age", Op: OpLt, Val: Int(int64(i))}
		if !c.Satisfiable(th, NewOr(lo, hi)) {
			t.Fatalf("Age>=%d OR Age<%d should be satisfiable", i, i)
		}
		if n := c.scopeCount.Load(); n > c.maxScopes {
			t.Fatalf("scope map exceeded its cap: %d > %d", n, c.maxScopes)
		}
	}
	if st := c.Stats(); st.ScopeEvictions == 0 {
		t.Fatalf("scope churn past the cap caused no evictions: %+v", st)
	}

	// A brand-new scope, created after sustained churn past the cap, must
	// still get lemma persistence: q1 learns, q2 (same scope, distinct
	// expression) reuses.
	m := Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}
	f := Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}
	contra := NewAnd(m, f)
	q1 := NewOr(contra, Null{Attr: "Salary"})
	q2 := NewOr(contra, NewNot(Null{Attr: "Salary"}))
	base := c.Stats()
	if !c.Satisfiable(th, q1) || !c.Satisfiable(th, q2) {
		t.Fatal("expected both queries satisfiable")
	}
	st := c.Stats()
	if st.LemmasStored <= base.LemmasStored {
		t.Fatalf("fresh scope past the cap stored no lemmas: %+v", st)
	}
	if st.LemmaHits <= base.LemmaHits {
		t.Fatalf("fresh scope past the cap got no lemma hits: %+v", st)
	}
}

// TestSnapshotRoundtrip exports a warmed cache through the JSON form the
// persistent store uses, imports it into a fresh cache, and checks that
// verdicts come back as hits (counted as PersistedHits) and that imported
// lemmas are reused by new same-scope solves.
func TestSnapshotRoundtrip(t *testing.T) {
	th := satCacheTheory()
	c := NewSatCache()

	m := Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}
	f := Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}
	contra := NewAnd(m, f)
	q1 := NewOr(contra, Null{Attr: "Age"})
	q2 := NewOr(contra, NewNot(Null{Attr: "Age"}))
	want1 := c.Satisfiable(th, q1)
	want2 := c.Satisfiable(th, q2)

	snap := c.Export()
	if len(snap.Entries) != 2 {
		t.Fatalf("expected 2 exported verdicts, got %d", len(snap.Entries))
	}
	if got, ok := snap.Entries[CacheKey(th, q1)]; !ok || got != want1 {
		t.Fatalf("q1 verdict missing or wrong in export: %v %v", ok, got)
	}
	if len(snap.Scopes) == 0 {
		t.Fatal("expected exported lemma scopes")
	}

	// Through JSON, exactly as internal/store will persist it.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back SatSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	c2 := NewSatCache()
	c2.Import(&back)
	if got, hit := c2.SatisfiableHit(th, q1); !hit || got != want1 {
		t.Fatalf("imported verdict for q1 not served from cache: hit=%v got=%v", hit, got)
	}
	if got, hit := c2.SatisfiableHit(th, q2); !hit || got != want2 {
		t.Fatalf("imported verdict for q2 not served from cache: hit=%v got=%v", hit, got)
	}
	if st := c2.Stats(); st.PersistedHits != 2 {
		t.Fatalf("persisted hits not counted: %+v", st)
	}

	// q3 shares q1/q2's scope (same atom set, same theory facts) and embeds
	// the contradiction subtree, but is a distinct expression: it misses the
	// verdict cache and must reuse the imported lemmas.
	q3 := NewNot(q1)
	if !c2.Satisfiable(th, q3) {
		t.Fatal("¬q1 should be satisfiable (neither Gender value, Age NOT NULL)")
	}
	if st := c2.Stats(); st.LemmaHits == 0 {
		t.Fatalf("imported lemmas were not reused by a new same-scope solve: %+v", st)
	}
}

// TestSnapshotImportMalformed checks that damaged snapshot records are
// skipped individually without panics or partial corruption.
func TestSnapshotImportMalformed(t *testing.T) {
	th := satCacheTheory()
	c := NewSatCache()
	c.Import(nil) // no-op
	c.Import(&SatSnapshot{
		Entries: map[string]bool{"": true, "plausible-but-unknown-key": false},
		Scopes: []ScopeSnapshot{
			{Key: "", Lemmas: []LemmaSnapshot{{Lits: []LemmaLitSnapshot{{Atom: 0}}}}},
			{Key: "some-scope", Lemmas: []LemmaSnapshot{
				{Lits: nil}, // empty clause
				{Lits: make([]LemmaLitSnapshot, maxLemmaLen+1)}, // oversized
				{Lits: []LemmaLitSnapshot{{Atom: -5}}},          // negative index
				{Lits: []LemmaLitSnapshot{{Atom: 1 << 30}}},     // out-of-range index
			}},
		},
	})
	// The out-of-range atom lemma was stored (its scope key is opaque here)
	// but install-time bounds checks must keep the solver safe; everything
	// still decides correctly.
	m := Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}
	f := Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}
	if c.Satisfiable(th, NewAnd(m, f)) {
		t.Fatal("contradictory pair should be unsatisfiable after malformed import")
	}
	if !c.Satisfiable(th, NewOr(m, f)) {
		t.Fatal("disjunction should be satisfiable after malformed import")
	}
}

// TestContentAddressStability proves cache keys are a function of structure
// alone: after the intern table has been churned (evicting the original
// nodes), a rebuilt structurally-equal expression produces a byte-identical
// cache key — the property that makes persisted verdicts portable.
func TestContentAddressStability(t *testing.T) {
	th := satCacheTheory()
	m := Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}
	f := Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}
	q := NewOr(NewAnd(m, f), Null{Attr: "Age"})
	key := CacheKey(th, q)

	oldCap := internMaxEntries
	internMaxEntries = 64
	defer func() { internMaxEntries = oldCap }()
	for i := 0; i < 1024; i++ {
		NewNot(Cmp{Attr: "Id", Op: OpGe, Val: Int(int64(i))})
	}

	rebuilt := NewOr(NewAnd(m, f), Null{Attr: "Age"})
	if got := CacheKey(th, rebuilt); got != key {
		t.Fatalf("cache key changed across intern-table churn:\n before %q\n after  %q", key, got)
	}
}
