// Package cond implements the boolean condition language used by mapping
// fragments, query views, and update views in the incremental mapping
// compiler. The language follows §2.1 of Bernstein et al. (SIGMOD 2013): an
// AND-OR combination of atoms of the form IS OF E, IS OF (ONLY E),
// A IS NULL, A IS NOT NULL, and A θ c, closed under negation.
//
// Besides the syntax, the package provides theory-aware reasoning:
// satisfiability, implication, equivalence and tautology checking over a
// theory describing the entity-type hierarchy, attribute domains and
// nullability. These checks are the computational core of mapping
// validation and are exponential in the worst case, as the paper requires.
package cond

import (
	"fmt"
	"strconv"
)

// Kind enumerates the primitive value kinds supported by client attributes
// and store columns.
type Kind int

// Supported primitive kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is an immutable typed constant. The zero value is the empty string.
// Value is comparable and can be used as a map key.
type Value struct {
	K Kind
	s string
	i int64
	f float64
	b bool
}

// String returns a string Value.
func String(s string) Value { return Value{K: KindString, s: s} }

// Int returns an integer Value.
func Int(i int64) Value { return Value{K: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{K: KindFloat, f: f} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{K: KindBool, b: b} }

// Str reports the underlying string of a KindString value.
func (v Value) Str() string { return v.s }

// IntVal reports the underlying integer of a KindInt value.
func (v Value) IntVal() int64 { return v.i }

// FloatVal reports the underlying float of a KindFloat value.
func (v Value) FloatVal() float64 { return v.f }

// BoolVal reports the underlying bool of a KindBool value.
func (v Value) BoolVal() bool { return v.b }

// String renders the value as an Entity SQL literal.
func (v Value) String() string {
	switch v.K {
	case KindString:
		return "'" + v.s + "'"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare compares two values of the same kind. It returns a negative,
// zero, or positive integer in the usual way. Comparing values of
// different kinds returns ok == false.
func Compare(a, b Value) (c int, ok bool) {
	if a.K != b.K {
		return 0, false
	}
	switch a.K {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		}
		return 0, true
	case KindInt:
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		}
		return 0, true
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1, true
		case a.f > b.f:
			return 1, true
		}
		return 0, true
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, true
		case a.b && !b.b:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
