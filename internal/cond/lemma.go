package cond

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// Lemma persistence: learned clauses outlive the Satisfiable call that
// derived them. A lemmaStore holds the clauses learned for one scope —
// one (sorted atom list, theory fingerprint) pair — in a solver-neutral
// form: atom literals by index into the scope's atom list, gate literals
// by the content address of the And/Or node they define. Because conflict
// analysis never resolves on the root assertion (a level-0 unit) and gate
// definitions are definitional extensions, every stored clause is implied
// by the theory and the gate definitions alone, so it can be installed
// verbatim into any later solver run over the same scope whose encoding
// contains all of the clause's gate nodes.
//
// Clauses naming a gate the new query does not contain are simply skipped
// at install time. Content addresses are structure-derived (intern.go), so
// a lemma can never be misattributed: a rebuilt or re-interned structure —
// even in a different process restoring a persisted snapshot — carries the
// same address exactly when it is the same structure.

const (
	maxLemmasPerScope = 256 // per-scope clause cap (append-only, first come)
	maxLemmaLen       = 24  // longer clauses prune too little to be worth storing
)

// lemmaLit is one literal of a persisted clause: an atom literal when
// gate == "" (atom indexes the scope's atom list), a gate literal
// otherwise (gate is the content address of the And/Or node).
type lemmaLit struct {
	gate string
	atom int32
	neg  bool
}

// lemmaKeyOf builds the deduplication key of a clause from its store form.
// The key depends only on content addresses and atom indices, so it is
// stable across processes (snapshot import reuses it).
func lemmaKeyOf(ls []lemmaLit) string {
	var key []byte
	for _, ll := range ls {
		if ll.gate == "" {
			key = strconv.AppendInt(key, int64(mkLit(ll.atom, ll.neg)), 36)
		} else {
			key = append(key, 'g')
			key = append(key, ll.gate...)
			if ll.neg {
				key = append(key, '-')
			}
		}
		key = append(key, '.')
	}
	return string(key)
}

// lemmaStore holds the persisted lemmas of one solver scope.
type lemmaStore struct {
	mu     sync.Mutex
	keys   map[string]struct{}
	lemmas [][]lemmaLit
	// ref is the second-chance bit for scope eviction (satcache.go),
	// set on scope lookups and cleared by the clock sweep.
	ref uint32
}

func (st *lemmaStore) addLocked(key string, ls []lemmaLit) bool {
	if st.keys == nil {
		st.keys = make(map[string]struct{})
	}
	if _, dup := st.keys[key]; dup {
		return false
	}
	st.keys[key] = struct{}{}
	st.lemmas = append(st.lemmas, ls)
	return true
}

// persist translates a learned clause into store form and appends it,
// skipping clauses that mention anonymous variables (the constant var) —
// those have no cross-run identity.
func (s *cdcl) persist(ls []lit) {
	if s.store == nil || len(ls) == 0 || len(ls) > maxLemmaLen {
		return
	}
	out := make([]lemmaLit, len(ls))
	for i, l := range ls {
		v := l.v()
		ll := lemmaLit{neg: l.negd()}
		if v < s.nAtoms {
			ll.atom = v
		} else {
			ck := s.ckOf[v]
			if ck == "" {
				return // anonymous variable: not persistable
			}
			ll.gate = ck
		}
		out[i] = ll
	}
	st := s.store
	st.mu.Lock()
	if len(st.lemmas) < maxLemmasPerScope && st.addLocked(lemmaKeyOf(out), out) {
		s.stats.LemmasStored++
	}
	st.mu.Unlock()
}

// installLemmas adds every applicable stored lemma to a freshly encoded
// solver (called before solving, while all variables are unassigned).
// Lemmas whose gates are absent from this query's encoding are skipped.
func (s *cdcl) installLemmas() {
	if s.store == nil {
		return
	}
	s.store.mu.Lock()
	snapshot := s.store.lemmas
	s.store.mu.Unlock()
	for _, lm := range snapshot {
		ls := make([]lit, len(lm))
		ok := true
		for i, ll := range lm {
			if ll.gate != "" {
				g, present := s.gateOf[ll.gate]
				if !present {
					ok = false
					break
				}
				ls[i] = mkLit(g, ll.neg)
			} else {
				if ll.atom < 0 || ll.atom >= s.nAtoms {
					// Imported lemmas are schema-checked but their atom
					// indices are scope-relative; never trust them blindly.
					ok = false
					break
				}
				ls[i] = mkLit(ll.atom, ll.neg)
			}
		}
		if !ok {
			continue
		}
		s.addClause(ls, len(ls) >= 2)
		s.stats.LemmaHits++
	}
}

// solverCounters accumulates solver work across all runs in the process.
// Each solve flushes its local SolverStats here once, so the per-solve
// cost is a handful of atomic adds off the hot loop. Consumers (the obsv
// registry's gauges) read them via SolverTotals.
type solverCounters struct {
	propagations atomic.Int64
	conflicts    atomic.Int64
	learned      atomic.Int64
	backjumps    atomic.Int64
	lemmaHits    atomic.Int64
	lemmasStored atomic.Int64
}

var solverTotals solverCounters

func (c *solverCounters) add(s *SolverStats) {
	if s.Propagations != 0 {
		c.propagations.Add(s.Propagations)
	}
	if s.Conflicts != 0 {
		c.conflicts.Add(s.Conflicts)
	}
	if s.Learned != 0 {
		c.learned.Add(s.Learned)
	}
	if s.Backjumps != 0 {
		c.backjumps.Add(s.Backjumps)
	}
	if s.LemmaHits != 0 {
		c.lemmaHits.Add(s.LemmaHits)
	}
	if s.LemmasStored != 0 {
		c.lemmasStored.Add(s.LemmasStored)
	}
}

// SolverTotals returns the process-lifetime solver counters.
func SolverTotals() SolverStats {
	return SolverStats{
		Propagations: solverTotals.propagations.Load(),
		Conflicts:    solverTotals.conflicts.Load(),
		Learned:      solverTotals.learned.Load(),
		Backjumps:    solverTotals.backjumps.Load(),
		LemmaHits:    solverTotals.lemmaHits.Load(),
		LemmasStored: solverTotals.lemmasStored.Load(),
	}
}
