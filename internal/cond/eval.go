package cond

// Instance is a data point a condition can be evaluated on: an entity, a
// table row, or a joined tuple of several. Attribute names follow the same
// qualification convention as Theory.
type Instance interface {
	// InstanceType returns the concrete entity type of the subject, or ""
	// when the subject is untyped (a row) or unknown.
	InstanceType(subject string) string
	// Lookup returns the attribute's value. ok is false when the attribute
	// is NULL or absent.
	Lookup(attr string) (v Value, ok bool)
}

// EvalOn evaluates the condition against concrete data under SQL-style
// two-valued collapse: a comparison with a NULL operand is false, and
// IS OF over an untyped subject is false.
func EvalOn(t Theory, x Expr, in Instance) bool {
	switch v := x.(type) {
	case True:
		return true
	case False:
		return false
	case TypeIs:
		ct := in.InstanceType(v.Var)
		if ct == "" {
			return false
		}
		if v.Only {
			return ct == v.Type
		}
		return t.IsSubtype(ct, v.Type)
	case Null:
		_, ok := in.Lookup(v.Attr)
		return !ok
	case Cmp:
		val, ok := in.Lookup(v.Attr)
		if !ok {
			return false
		}
		return cmpHolds(val, v.Op, v.Val)
	case *Not:
		return !EvalOn(t, v.X, in)
	case *And:
		for _, c := range v.Xs {
			if !EvalOn(t, c, in) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range v.Xs {
			if EvalOn(t, c, in) {
				return true
			}
		}
		return false
	}
	return false
}

func cmpHolds(v Value, op Op, c Value) bool {
	r, ok := Compare(v, c)
	if !ok {
		return false
	}
	switch op {
	case OpEq:
		return r == 0
	case OpNe:
		return r != 0
	case OpLt:
		return r < 0
	case OpLe:
		return r <= 0
	case OpGt:
		return r > 0
	case OpGe:
		return r >= 0
	}
	return false
}

// MapInstance is an Instance backed by maps, convenient for tests and the
// query evaluator.
type MapInstance struct {
	// Type maps subject names to concrete types. The empty subject "" names
	// the single-scan subject.
	Type map[string]string
	// Vals maps attribute names to non-null values; absent keys are NULL.
	Vals map[string]Value
}

// InstanceType implements Instance.
func (m *MapInstance) InstanceType(subject string) string { return m.Type[subject] }

// Lookup implements Instance.
func (m *MapInstance) Lookup(attr string) (Value, bool) {
	v, ok := m.Vals[attr]
	return v, ok
}
