package cond

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a comparison operator in an A θ c atom.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary operator under a non-null operand
// (e.g. the negation of < is >=).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// Expr is a boolean condition over a single scan subject (entity or row) or,
// when attribute names are qualified as "alias.attr" and type atoms carry a
// Var, over several subjects at once. Expr values are immutable; rewrites
// build new trees.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// True is the always-true condition.
type True struct{}

// False is the always-false condition.
type False struct{}

// TypeIs is the atom IS OF T (Only=false) or IS OF (ONLY T) (Only=true).
// Var names the subject when the condition ranges over several scans;
// it is empty for single-subject conditions.
type TypeIs struct {
	Var  string
	Type string
	Only bool
}

// Null is the atom A IS NULL.
type Null struct {
	Attr string
}

// Cmp is the atom Attr Op Val. Its SQL semantics are three-valued collapsed
// to two: the atom is true iff Attr is non-null and the comparison holds.
type Cmp struct {
	Attr string
	Op   Op
	Val  Value
}

// Not is logical negation. Composite nodes (Not, And, Or) are pointer
// types built only through the New* constructors, which hash-cons them in
// a process-wide intern table: structurally identical composites share one
// node. Every dynamic type of Expr is therefore comparable — atoms by
// value, composites by pointer — and == on two interned expressions is a
// structural-equality test.
type Not struct {
	X Expr

	key   string // canonical structural encoding (intern key)
	ck    string // content address: hash of key, stable across processes
	atoms []Atom // memoized Atoms result, fixed at construction
	ref   uint32 // second-chance bit for intern-table eviction (atomic)
}

// And is n-ary conjunction (hash-consed; see Not). The constructors never
// produce an empty or single-element And.
type And struct {
	Xs []Expr

	key   string
	ck    string
	atoms []Atom
	ref   uint32
}

// Or is n-ary disjunction (hash-consed; see Not). The constructors never
// produce an empty or single-element Or.
type Or struct {
	Xs []Expr

	key   string
	ck    string
	atoms []Atom
	ref   uint32
}

func (True) isExpr()   {}
func (False) isExpr()  {}
func (TypeIs) isExpr() {}
func (Null) isExpr()   {}
func (Cmp) isExpr()    {}
func (*Not) isExpr()   {}
func (*And) isExpr()   {}
func (*Or) isExpr()    {}

func (True) String() string  { return "TRUE" }
func (False) String() string { return "FALSE" }

func (t TypeIs) String() string {
	subj := t.Var
	if subj == "" {
		subj = "e"
	}
	if t.Only {
		return fmt.Sprintf("%s IS OF (ONLY %s)", subj, t.Type)
	}
	return fmt.Sprintf("%s IS OF %s", subj, t.Type)
}

func (n Null) String() string { return n.Attr + " IS NULL" }

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val) }

func (n *Not) String() string {
	if in, ok := n.X.(Null); ok {
		return in.Attr + " IS NOT NULL"
	}
	return "NOT (" + n.X.String() + ")"
}

func (a *And) String() string { return joinExprs(a.Xs, " AND ", "TRUE") }
func (o *Or) String() string  { return joinExprs(o.Xs, " OR ", "FALSE") }

func joinExprs(xs []Expr, sep, empty string) string {
	if len(xs) == 0 {
		return empty
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		s := x.String()
		if needsParens(x) {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

func needsParens(x Expr) bool {
	switch x.(type) {
	case *And, *Or:
		return true
	}
	return false
}

// NotNull returns the condition Attr IS NOT NULL.
func NotNull(attr string) Expr { return NewNot(Null{Attr: attr}) }

// NewAnd builds a conjunction, flattening nested Ands and applying the
// obvious True/False simplifications.
func NewAnd(xs ...Expr) Expr {
	var out []Expr
	for _, x := range xs {
		switch v := x.(type) {
		case nil:
		case True:
		case False:
			return False{}
		case *And:
			out = append(out, v.Xs...)
		default:
			out = append(out, x)
		}
	}
	switch len(out) {
	case 0:
		return True{}
	case 1:
		return out[0]
	}
	return internAnd(out)
}

// NewOr builds a disjunction, flattening nested Ors and applying the obvious
// True/False simplifications.
func NewOr(xs ...Expr) Expr {
	var out []Expr
	for _, x := range xs {
		switch v := x.(type) {
		case nil:
		case False:
		case True:
			return True{}
		case *Or:
			out = append(out, v.Xs...)
		default:
			out = append(out, x)
		}
	}
	switch len(out) {
	case 0:
		return False{}
	case 1:
		return out[0]
	}
	return internOr(out)
}

// NewNot negates an expression, pushing negation through constants and
// collapsing double negation.
func NewNot(x Expr) Expr {
	switch v := x.(type) {
	case True:
		return False{}
	case False:
		return True{}
	case *Not:
		return v.X
	}
	return internNot(x)
}

// AtomKind distinguishes the atom families.
type AtomKind int

// Atom families.
const (
	AtomType AtomKind = iota // IS OF T (possibly ONLY)
	AtomNull                 // A IS NULL
	AtomCmp                  // A θ c
)

// Atom is a canonical, comparable identity for an atomic condition. It is
// usable as a map key.
type Atom struct {
	Kind AtomKind
	Var  string // type atoms only
	Type string // type atoms only
	Only bool   // type atoms only
	Attr string // null and cmp atoms
	Op   Op     // cmp atoms only
	Val  Value  // cmp atoms only
}

// String renders the atom as its positive-expression form.
func (a Atom) String() string { return a.Expr().String() }

// Expr returns the positive expression form of the atom.
func (a Atom) Expr() Expr {
	switch a.Kind {
	case AtomType:
		return TypeIs{Var: a.Var, Type: a.Type, Only: a.Only}
	case AtomNull:
		return Null{Attr: a.Attr}
	case AtomCmp:
		return Cmp{Attr: a.Attr, Op: a.Op, Val: a.Val}
	}
	return False{}
}

func atomOf(x Expr) (Atom, bool) {
	switch v := x.(type) {
	case TypeIs:
		return Atom{Kind: AtomType, Var: v.Var, Type: v.Type, Only: v.Only}, true
	case Null:
		return Atom{Kind: AtomNull, Attr: v.Attr}, true
	case Cmp:
		return Atom{Kind: AtomCmp, Attr: v.Attr, Op: v.Op, Val: v.Val}, true
	}
	return Atom{}, false
}

// Atoms returns the distinct atoms of the expression in a deterministic
// order. Composite nodes memoize the result at construction, so repeated
// calls on interned trees are O(1). Callers must not modify the returned
// slice.
func Atoms(x Expr) []Atom {
	switch v := x.(type) {
	case *Not:
		if v.atoms != nil {
			return v.atoms
		}
	case *And:
		if v.atoms != nil {
			return v.atoms
		}
	case *Or:
		if v.atoms != nil {
			return v.atoms
		}
	}
	return collectAtoms(x)
}

// collectAtoms walks the tree, using child memos where present.
func collectAtoms(x Expr) []Atom {
	seen := map[Atom]bool{}
	var collect func(Expr)
	collect = func(e Expr) {
		if a, ok := atomOf(e); ok {
			seen[a] = true
			return
		}
		switch v := e.(type) {
		case *Not:
			if v.atoms != nil {
				for _, a := range v.atoms {
					seen[a] = true
				}
				return
			}
			collect(v.X)
		case *And:
			if v.atoms != nil {
				for _, a := range v.atoms {
					seen[a] = true
				}
				return
			}
			for _, c := range v.Xs {
				collect(c)
			}
		case *Or:
			if v.atoms != nil {
				for _, a := range v.atoms {
					seen[a] = true
				}
				return
			}
			for _, c := range v.Xs {
				collect(c)
			}
		}
	}
	collect(x)
	out := make([]Atom, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

func (a Atom) less(b Atom) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Only != b.Only {
		return !a.Only
	}
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Val.String() < b.Val.String()
}

// MapAtoms rewrites every atom of x through f, preserving the boolean
// structure. f receives the atom's expression form and returns its
// replacement.
func MapAtoms(x Expr, f func(Expr) Expr) Expr {
	switch v := x.(type) {
	case True, False:
		return x
	case TypeIs, Null, Cmp:
		return f(x)
	case *Not:
		return NewNot(MapAtoms(v.X, f))
	case *And:
		out := make([]Expr, len(v.Xs))
		for i, c := range v.Xs {
			out[i] = MapAtoms(c, f)
		}
		return NewAnd(out...)
	case *Or:
		out := make([]Expr, len(v.Xs))
		for i, c := range v.Xs {
			out[i] = MapAtoms(c, f)
		}
		return NewOr(out...)
	}
	return x
}

// QualifyAttrs prefixes every attribute reference and unqualified type-atom
// subject with the given alias, producing a multi-subject condition suitable
// for use inside joins.
func QualifyAttrs(x Expr, alias string) Expr {
	return MapAtoms(x, func(e Expr) Expr {
		switch v := e.(type) {
		case TypeIs:
			if v.Var == "" {
				v.Var = alias
			}
			return v
		case Null:
			v.Attr = alias + "." + v.Attr
			return v
		case Cmp:
			v.Attr = alias + "." + v.Attr
			return v
		}
		return e
	})
}

// RenameAttrs rewrites attribute references through the given map; names
// absent from the map are kept.
func RenameAttrs(x Expr, ren map[string]string) Expr {
	get := func(a string) string {
		if n, ok := ren[a]; ok {
			return n
		}
		return a
	}
	return MapAtoms(x, func(e Expr) Expr {
		switch v := e.(type) {
		case Null:
			v.Attr = get(v.Attr)
			return v
		case Cmp:
			v.Attr = get(v.Attr)
			return v
		}
		return e
	})
}

// AttrsOf returns the distinct attribute names referenced by null and
// comparison atoms of x, sorted.
func AttrsOf(x Expr) []string {
	set := map[string]bool{}
	for _, a := range Atoms(x) {
		if a.Kind == AtomNull || a.Kind == AtomCmp {
			set[a.Attr] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
