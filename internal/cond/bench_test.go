package cond

import (
	"fmt"
	"testing"
)

func benchTheory(nTypes int) Theory {
	types := make([]string, nTypes)
	sub := map[string]map[string]bool{}
	for i := range types {
		types[i] = fmt.Sprintf("T%d", i)
		if i > 0 {
			sub[types[i]] = map[string]bool{types[0]: true}
		}
	}
	return &MapTheory{
		Types: map[string][]string{"": types},
		Sub:   sub,
		Domains: map[string]Domain{
			"x": {Kind: KindInt},
			"d": {Kind: KindString, Enum: []Value{String("a"), String("b"), String("c")}},
		},
	}
}

// BenchmarkSatisfiableTypeHierarchy measures the DPLL search over type
// atoms, the dominant operation of fragment-applicability analysis.
func BenchmarkSatisfiableTypeHierarchy(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		th := benchTheory(n)
		var parts []Expr
		for i := 1; i < n; i += 2 {
			parts = append(parts, TypeIs{Type: fmt.Sprintf("T%d", i)})
		}
		e := NewAnd(NewOr(parts...), NewNot(TypeIs{Type: "T1", Only: true}))
		b.Run(fmt.Sprintf("types=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !Satisfiable(th, e) {
					b.Fatal("unexpectedly unsatisfiable")
				}
			}
		})
	}
}

// BenchmarkImpliesRanges measures implication over integer intervals, the
// workhorse of §3.3 coverage checking.
func BenchmarkImpliesRanges(b *testing.B) {
	th := benchTheory(2)
	a := NewAnd(
		Cmp{Attr: "x", Op: OpGe, Val: Int(10)},
		Cmp{Attr: "x", Op: OpLt, Val: Int(20)},
	)
	c := Cmp{Attr: "x", Op: OpGe, Val: Int(5)}
	for i := 0; i < b.N; i++ {
		if !Implies(th, a, c) {
			b.Fatal("implication should hold")
		}
	}
}

// BenchmarkEnumerateAssignments measures the exhaustive cell enumeration
// that drives full-compilation cost (Figure 4's mechanism), across atom
// counts.
func BenchmarkEnumerateAssignments(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		atoms := make([]Atom, n)
		for i := range atoms {
			atoms[i] = Atom{Kind: AtomNull, Attr: fmt.Sprintf("c%d", i)}
		}
		th := FreeTheory
		b.Run(fmt.Sprintf("atoms=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells := 0
				EnumerateAssignments(th, atoms, func(Assignment) bool {
					cells++
					return true
				})
				if cells != 1<<n {
					b.Fatalf("cells = %d", cells)
				}
			}
		})
	}
}

// BenchmarkTautologyPartition measures the Adult/Young §3.3 check.
func BenchmarkTautologyPartition(b *testing.B) {
	th := &MapTheory{
		Domains: map[string]Domain{"age": {Kind: KindInt}},
		NotNull: map[string]bool{"age": true},
	}
	e := NewOr(
		Cmp{Attr: "age", Op: OpGe, Val: Int(18)},
		Cmp{Attr: "age", Op: OpLt, Val: Int(18)},
	)
	for i := 0; i < b.N; i++ {
		if !Tautology(th, e) {
			b.Fatal("not a tautology")
		}
	}
}
