package cond

import (
	"fmt"
	"testing"
)

// ageComposite builds a distinctive interned composite for slot i.
func ageComposite(i int) Expr {
	return NewAnd(
		Cmp{Attr: "AgeSweepAttr", Op: OpEq, Val: Int(int64(i))},
		NewNot(Null{Attr: fmt.Sprintf("AgeSweepN%d", i)}),
	)
}

// TestAgeInternSweep: entries untouched across two sweeps are reclaimed,
// entries re-interned between sweeps survive, and the aged counter moves.
func TestAgeInternSweep(t *testing.T) {
	const n = 32
	nodes := make([]Expr, n)
	for i := range nodes {
		nodes[i] = ageComposite(i)
	}
	agedBefore := InternAged()

	// First sweep: every fresh entry has its reference bit set (first
	// revolution's grace), so it only clears bits — our nodes survive.
	AgeIntern()

	// Keep half warm: re-interning sets the reference bit again.
	for i := 0; i < n/2; i++ {
		if ageComposite(i) != nodes[i] {
			t.Fatalf("composite %d evicted by the first sweep", i)
		}
	}

	// Second sweep must reclaim at least something (our cold half plus
	// whatever else idles in the table) and never the warm half.
	AgeIntern()
	for i := 0; i < n/2; i++ {
		if ageComposite(i) != nodes[i] {
			t.Fatalf("warm composite %d aged out", i)
		}
	}
	if InternAged() == agedBefore {
		t.Fatal("no entries aged across two sweeps")
	}

	// A third sweep right after the warm-half re-intern above still keeps
	// the warm nodes (the re-check set their bits again).
	AgeIntern()
	for i := 0; i < n/2; i++ {
		if ageComposite(i) != nodes[i] {
			t.Fatalf("warm composite %d aged out on the third sweep", i)
		}
	}
}

// TestAgeInternDrainsIdleTable: two sweeps with no intervening intern hits
// empty the whole table (nothing is pinned below the capacity cap).
func TestAgeInternDrainsIdleTable(t *testing.T) {
	for i := 0; i < 16; i++ {
		ageComposite(1000 + i)
	}
	AgeIntern()
	AgeIntern()
	if got := InternStats(); got != 0 {
		t.Fatalf("idle table holds %d entries after two sweeps", got)
	}
	// The table keeps working after a full drain.
	x := ageComposite(2000)
	if ageComposite(2000) != x {
		t.Fatal("intern table broken after a full drain")
	}
}
