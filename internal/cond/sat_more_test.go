package cond

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestOpNegate(t *testing.T) {
	pairs := map[Op]Op{
		OpEq: OpNe, OpNe: OpEq,
		OpLt: OpGe, OpGe: OpLt,
		OpLe: OpGt, OpGt: OpLe,
	}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
		if got := op.Negate().Negate(); got != op {
			t.Errorf("double negation of %v = %v", op, got)
		}
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("ab"), "'ab'"},
		{Int(-5), "-5"},
		{Float(1.25), "1.25"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if KindFloat.String() != "float" || KindBool.String() != "bool" {
		t.Error("kind names wrong")
	}
}

func TestFloatRangeReasoning(t *testing.T) {
	th := &MapTheory{
		Domains: map[string]Domain{"x": {Kind: KindFloat}},
		NotNull: map[string]bool{"x": true},
	}
	// Floats are dense: 1 < x < 2 is satisfiable (unlike integers).
	e := NewAnd(
		Cmp{Attr: "x", Op: OpGt, Val: Float(1)},
		Cmp{Attr: "x", Op: OpLt, Val: Float(2)},
	)
	if !Satisfiable(th, e) {
		t.Error("dense float interval reported empty")
	}
	// Point interval with exclusion is empty.
	point := NewAnd(
		Cmp{Attr: "x", Op: OpGe, Val: Float(1)},
		Cmp{Attr: "x", Op: OpLe, Val: Float(1)},
		Cmp{Attr: "x", Op: OpNe, Val: Float(1)},
	)
	if Satisfiable(th, point) {
		t.Error("excluded point interval reported satisfiable")
	}
	// Reversed bounds are empty.
	rev := NewAnd(
		Cmp{Attr: "x", Op: OpGt, Val: Float(5)},
		Cmp{Attr: "x", Op: OpLt, Val: Float(4)},
	)
	if Satisfiable(th, rev) {
		t.Error("reversed float bounds reported satisfiable")
	}
}

func TestStringOrderingReasoning(t *testing.T) {
	th := &MapTheory{
		Domains: map[string]Domain{"s": {Kind: KindString}},
		NotNull: map[string]bool{"s": true},
	}
	sat := NewAnd(
		Cmp{Attr: "s", Op: OpGe, Val: String("a")},
		Cmp{Attr: "s", Op: OpLt, Val: String("b")},
	)
	if !Satisfiable(th, sat) {
		t.Error("string interval [a,b) reported empty")
	}
	unsat := NewAnd(
		Cmp{Attr: "s", Op: OpEq, Val: String("x")},
		Cmp{Attr: "s", Op: OpEq, Val: String("y")},
	)
	if Satisfiable(th, unsat) {
		t.Error("two distinct string equalities reported satisfiable")
	}
}

func TestIntEnumDomain(t *testing.T) {
	th := &MapTheory{
		Domains: map[string]Domain{"d": {Kind: KindInt, Enum: []Value{Int(1), Int(2), Int(3)}}},
		NotNull: map[string]bool{"d": true},
	}
	if !Tautology(th, NewOr(
		Cmp{Attr: "d", Op: OpLe, Val: Int(2)},
		Cmp{Attr: "d", Op: OpEq, Val: Int(3)},
	)) {
		t.Error("exhaustive split over int enum not a tautology")
	}
	if Satisfiable(th, Cmp{Attr: "d", Op: OpGt, Val: Int(3)}) {
		t.Error("value above the enum reported satisfiable")
	}
}

func TestUnknownDomainReasoning(t *testing.T) {
	// Attributes without declared domains still get sound reasoning.
	th := FreeTheory
	if !Satisfiable(th, Cmp{Attr: "x", Op: OpEq, Val: Int(5)}) {
		t.Error("equality over unknown domain unsatisfiable")
	}
	if Satisfiable(th, NewAnd(
		Cmp{Attr: "x", Op: OpEq, Val: Int(5)},
		Cmp{Attr: "x", Op: OpEq, Val: String("five")},
	)) {
		t.Error("cross-kind equalities both true")
	}
	if Satisfiable(th, NewAnd(
		Cmp{Attr: "x", Op: OpGt, Val: Int(5)},
		Cmp{Attr: "x", Op: OpLt, Val: Int(5)},
	)) {
		t.Error("contradictory bounds over unknown domain satisfiable")
	}
}

func TestEnumerateAllAssignmentsCount(t *testing.T) {
	atoms := []Atom{
		{Kind: AtomNull, Attr: "a"},
		{Kind: AtomNull, Attr: "b"},
		{Kind: AtomNull, Attr: "c"},
	}
	n := 0
	EnumerateAllAssignments(atoms, func(Assignment) bool { n++; return true })
	if n != 8 {
		t.Fatalf("naive enumeration visited %d, want 8", n)
	}
}

func TestConsistentAssignment(t *testing.T) {
	th := &MapTheory{
		Domains: map[string]Domain{"k": {Kind: KindInt}},
		NotNull: map[string]bool{"k": true},
	}
	a := Atom{Kind: AtomNull, Attr: "k"}
	if ConsistentAssignment(th, Assignment{a: true}) {
		t.Error("NULL on a non-nullable attribute reported consistent")
	}
	if !ConsistentAssignment(th, Assignment{a: false}) {
		t.Error("non-NULL on a non-nullable attribute reported inconsistent")
	}
}

// TestSatAgreesWithNaiveEnumeration cross-checks the pruned DPLL search
// against brute-force enumeration on random small conditions.
func TestSatAgreesWithNaiveEnumeration(t *testing.T) {
	th := &MapTheory{
		Types: map[string][]string{"": {"A", "B"}},
		Sub:   map[string]map[string]bool{"B": {"A": true}},
		Domains: map[string]Domain{
			"x": {Kind: KindInt},
			"y": {Kind: KindInt},
		},
	}
	mkAtom := func(sel uint8) Expr {
		switch sel % 5 {
		case 0:
			return TypeIs{Type: "A"}
		case 1:
			return TypeIs{Type: "B", Only: true}
		case 2:
			return Null{Attr: "x"}
		case 3:
			return Cmp{Attr: "x", Op: OpGe, Val: Int(int64(sel))}
		default:
			return Cmp{Attr: "y", Op: OpLt, Val: Int(int64(sel))}
		}
	}
	f := func(a, b, c uint8, neg bool) bool {
		e := NewOr(NewAnd(mkAtom(a), mkAtom(b)), mkAtom(c))
		if neg {
			e = NewNot(e)
		}
		fast := Satisfiable(th, e)
		slow := false
		EnumerateAllAssignments(Atoms(e), func(asg Assignment) bool {
			if ConsistentAssignment(th, asg) && asg.Eval(e) {
				slow = true
				return false
			}
			return true
		})
		return fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSlowSubjectAttributeLiterals is the regression test for subjects with
// more concrete types than the bitmask fast path covers (>maxMaskBits): their
// attribute groups must stay linked to the subject so the gather-path
// consistency check still sees attribute literals. A past bug dropped the
// link, making contradictory literals like a='x' AND a='y' look satisfiable.
func TestSlowSubjectAttributeLiterals(t *testing.T) {
	types := make([]string, maxMaskBits+3)
	for i := range types {
		types[i] = fmt.Sprintf("T%02d", i)
	}
	th := &MapTheory{
		Types: map[string][]string{"": types},
		Domains: map[string]Domain{
			"a": {Kind: KindString},
			"n": {Kind: KindInt},
		},
		NotNull: map[string]bool{"n": true},
	}

	eqX := Cmp{Attr: "a", Op: OpEq, Val: String("x")}
	eqY := Cmp{Attr: "a", Op: OpEq, Val: String("y")}
	if Satisfiable(th, NewAnd(eqX, eqY)) {
		t.Error("a='x' AND a='y' reported satisfiable on a slow subject")
	}
	if !Satisfiable(th, eqX) {
		t.Error("a='x' reported unsatisfiable on a slow subject")
	}
	if Satisfiable(th, NewAnd(eqX, Null{Attr: "a"})) {
		t.Error("a='x' AND a IS NULL reported satisfiable on a slow subject")
	}
	if Satisfiable(th, Null{Attr: "n"}) {
		t.Error("NULL on a non-nullable attribute reported satisfiable on a slow subject")
	}

	// The cell enumerator shares the same index; it must prune the
	// contradictory cell too.
	atoms := Atoms(NewAnd(eqX, eqY))
	cells := 0
	EnumerateCells(th, atoms, nil, 0, func(vals []int8) bool {
		if vals[0] == 1 && vals[1] == 1 {
			t.Error("EnumerateCells emitted the contradictory a='x' AND a='y' cell")
		}
		cells++
		return true
	})
	if cells != 3 {
		t.Errorf("EnumerateCells visited %d cells, want 3", cells)
	}

	// Differential sweep over the slow subject, same shape as
	// TestSatAgreesWithNaiveEnumeration.
	mkAtom := func(sel uint8) Expr {
		switch sel % 5 {
		case 0:
			return TypeIs{Type: types[int(sel)%len(types)]}
		case 1:
			return TypeIs{Type: types[int(sel)%len(types)], Only: true}
		case 2:
			return Null{Attr: "a"}
		case 3:
			return Cmp{Attr: "a", Op: OpEq, Val: String("x")}
		default:
			return Cmp{Attr: "n", Op: OpLt, Val: Int(int64(sel))}
		}
	}
	f := func(a, b, c uint8, neg bool) bool {
		e := NewOr(NewAnd(mkAtom(a), mkAtom(b)), mkAtom(c))
		if neg {
			e = NewNot(e)
		}
		fast := Satisfiable(th, e)
		slow := false
		EnumerateAllAssignments(Atoms(e), func(asg Assignment) bool {
			if ConsistentAssignment(th, asg) && asg.Eval(e) {
				slow = true
				return false
			}
			return true
		})
		return fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
