package cond

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/ormkit/incmap/internal/faultinject"
)

// SatCache memoizes the theory-level decision procedures (Satisfiable,
// Implies, Disjoint, Tautology, Equivalent). Each verdict is keyed by a
// canonical structural encoding of the query expression together with a
// fingerprint of the theory facts the solver can consult for that
// expression (concrete types, subtype relations, attribute domains,
// nullability, attribute presence). Because the key captures the exact
// dependence set of the decision, a cache may safely outlive the theory it
// was filled against: verdicts are reused across compilations — and across
// full and incremental compilation — exactly when the relevant schema
// facts are unchanged, and miss otherwise.
//
// All derived procedures reduce to Satisfiable before keying, so e.g.
// Implies(a, b), Disjoint(a, ¬b) and Satisfiable(a ∧ ¬b) share one entry.
//
// A SatCache is safe for concurrent use. The zero value is not usable;
// construct with NewSatCache.
type SatCache struct {
	entries sync.Map // string -> verdict
	hits    atomic.Int64
	misses  atomic.Int64
	size    atomic.Int64
	// maxEntries bounds memory: once reached, new verdicts are computed but
	// not stored.
	maxEntries int64

	// scopes holds persisted solver lemmas (lemma.go) keyed by solver scope
	// — the sorted atom list plus theory fingerprint. Distinct queries over
	// the same atoms and theory facts solve in the same scope and reuse each
	// other's learned clauses. Bounded by maxScopes with second-chance
	// (clock) eviction, like the intern table: scope churn past the cap
	// ages out cold scopes instead of refusing persistence to new ones.
	scopes         sync.Map // string -> *lemmaStore
	scopeCount     atomic.Int64
	maxScopes      int64
	scopeEvictions atomic.Int64
	lemmaHits      atomic.Int64
	lemmasStored   atomic.Int64
	persistedHits  atomic.Int64

	// scopeClock is the eviction ring of scope keys, swept by a clock hand
	// (see scopeEvict).
	scopeClock struct {
		mu   sync.Mutex
		keys []string
		hand int
	}
}

// SatCacheStats is a snapshot of a cache's counters.
type SatCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int64
	// LemmaHits counts persisted lemmas re-installed into cache-miss solver
	// runs; LemmasStored counts clauses persisted by those runs.
	LemmaHits    int64
	LemmasStored int64
	// ScopeEvictions counts lemma scopes aged out of the scope map by the
	// clock sweep once the scope cap is reached.
	ScopeEvictions int64
	// PersistedHits counts cache hits served by verdicts that entered this
	// cache through snapshot Import (a warm start from an on-disk store)
	// rather than being solved in this process.
	PersistedHits int64
	// InternEvictions counts structures aged out of the package-wide
	// hash-consing table (intern.go) since process start.
	InternEvictions int64
}

// defaultSatCacheEntries bounds a cache at roughly a few hundred MB of keys
// in the worst case; real workloads stay far below it.
const defaultSatCacheEntries = 1 << 20

// defaultMaxScopes bounds the lemma-scope map; each scope holds at most
// maxLemmasPerScope clauses.
const defaultMaxScopes = 1 << 16

// verdict is one cached decision. persisted marks entries that arrived via
// snapshot Import (an on-disk warm start) rather than a local solve, so
// hits on them are separately countable.
type verdict struct {
	sat       bool
	persisted bool
}

// NewSatCache returns an empty decision cache.
func NewSatCache() *SatCache {
	return &SatCache{maxEntries: defaultSatCacheEntries, maxScopes: defaultMaxScopes}
}

// Stats returns a snapshot of the hit/miss counters.
func (c *SatCache) Stats() SatCacheStats {
	return SatCacheStats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Entries:         c.size.Load(),
		LemmaHits:       c.lemmaHits.Load(),
		LemmasStored:    c.lemmasStored.Load(),
		ScopeEvictions:  c.scopeEvictions.Load(),
		PersistedHits:   c.persistedHits.Load(),
		InternEvictions: internEvictions.Load(),
	}
}

// Reset drops every cached verdict and persisted lemma and zeroes the
// counters (the process-wide intern eviction count is not affected).
func (c *SatCache) Reset() {
	c.entries.Range(func(k, _ any) bool {
		c.entries.Delete(k)
		return true
	})
	c.scopes.Range(func(k, _ any) bool {
		c.scopes.Delete(k)
		return true
	})
	c.hits.Store(0)
	c.misses.Store(0)
	c.size.Store(0)
	c.scopeCount.Store(0)
	c.scopeEvictions.Store(0)
	c.lemmaHits.Store(0)
	c.lemmasStored.Store(0)
	c.persistedHits.Store(0)
	c.scopeClock.mu.Lock()
	c.scopeClock.keys = nil
	c.scopeClock.hand = 0
	c.scopeClock.mu.Unlock()
}

// Satisfiable is the memoized form of the package-level Satisfiable.
func (c *SatCache) Satisfiable(t Theory, x Expr) bool {
	v, _ := c.SatisfiableHit(t, x)
	return v
}

// SatisfiableHit reports the verdict and whether it was served from cache.
func (c *SatCache) SatisfiableHit(t Theory, x Expr) (sat, hit bool) {
	// Fault-injection hook: lookups cannot propagate an error, so only
	// injected panics and delays take effect here.
	faultinject.At(faultinject.SiteSatCache) //nolint:errcheck
	atoms := Atoms(x)

	// The theory fingerprint is shared by the verdict key (expr + theory)
	// and the lemma-scope key (atoms + theory); build it once.
	var tb strings.Builder
	encodeTheory(&tb, t, atoms)
	th := tb.String()

	var kb strings.Builder
	encodeExpr(&kb, x)
	kb.WriteByte('#')
	kb.WriteString(th)
	key := kb.String()

	if v, ok := c.entries.Load(key); ok {
		c.hits.Add(1)
		vd := v.(verdict)
		if vd.persisted {
			c.persistedHits.Add(1)
		}
		return vd.sat, true
	}
	c.misses.Add(1)

	var sb strings.Builder
	for _, a := range atoms {
		encodeAtomExpr(&sb, a.Expr())
	}
	sb.WriteByte('#')
	sb.WriteString(th)
	store := c.scopeStore(sb.String())

	var stats SolverStats
	v := satisfiableCDCL(t, x, atoms, store, &stats)
	c.lemmaHits.Add(stats.LemmaHits)
	c.lemmasStored.Add(stats.LemmasStored)

	if c.size.Load() < c.maxEntries {
		if _, loaded := c.entries.LoadOrStore(key, verdict{sat: v}); !loaded {
			c.size.Add(1)
		}
	}
	return v, false
}

// scopeStore returns the lemma store for a solver scope, creating it if
// absent. Past the scope cap, a second-chance clock sweep (scopeEvict)
// ages out scopes that have not been consulted since the last revolution —
// scope churn keeps persisting into fresh scopes instead of permanently
// refusing every scope after the cap, which froze the lemma working set at
// whatever arrived first.
func (c *SatCache) scopeStore(scopeKey string) *lemmaStore {
	if st, ok := c.scopes.Load(scopeKey); ok {
		ls := st.(*lemmaStore)
		if atomic.LoadUint32(&ls.ref) == 0 {
			atomic.StoreUint32(&ls.ref, 1)
		}
		return ls
	}
	// Reserve a slot before inserting so racing first-time creations cannot
	// push the scope map past maxScopes; release it if we lost the race.
	if c.scopeCount.Add(1) > c.maxScopes {
		c.scopeEvict(scopeEvictBatch)
		if c.scopeCount.Load() > c.maxScopes {
			// The sweep reclaimed nothing (every scope freshly referenced):
			// solve without persistence rather than grow without bound.
			c.scopeCount.Add(-1)
			return nil
		}
	}
	fresh := &lemmaStore{ref: 1} // first revolution's grace
	st, loaded := c.scopes.LoadOrStore(scopeKey, fresh)
	if loaded {
		c.scopeCount.Add(-1)
	} else {
		c.scopeClock.mu.Lock()
		c.scopeClock.keys = append(c.scopeClock.keys, scopeKey)
		c.scopeClock.mu.Unlock()
	}
	return st.(*lemmaStore)
}

// scopeEvictBatch is how many scopes one over-cap insert reclaims,
// amortizing the sweep like the intern table's internEvictBatch.
const scopeEvictBatch = 16

// scopeEvict runs the clock hand until it has reclaimed want scopes or
// proven every resident scope recently referenced. Referenced scopes get
// their second chance (bit cleared, hand moves on); clear ones are evicted
// with their lemmas.
func (c *SatCache) scopeEvict(want int) {
	ck := &c.scopeClock
	ck.mu.Lock()
	defer ck.mu.Unlock()
	budget := 2 * len(ck.keys)
	for want > 0 && len(ck.keys) > 0 && budget > 0 {
		budget--
		if ck.hand >= len(ck.keys) {
			ck.hand = 0
		}
		key := ck.keys[ck.hand]
		e, ok := c.scopes.Load(key)
		if !ok {
			// Stale ring slot (Reset ran); drop it.
			ck.keys[ck.hand] = ck.keys[len(ck.keys)-1]
			ck.keys = ck.keys[:len(ck.keys)-1]
			continue
		}
		ls := e.(*lemmaStore)
		if atomic.LoadUint32(&ls.ref) != 0 {
			atomic.StoreUint32(&ls.ref, 0)
			ck.hand++
			continue
		}
		c.scopes.Delete(key)
		c.scopeCount.Add(-1)
		c.scopeEvictions.Add(1)
		ck.keys[ck.hand] = ck.keys[len(ck.keys)-1]
		ck.keys = ck.keys[:len(ck.keys)-1]
		want--
	}
}

// Implies is the memoized form of the package-level Implies.
func (c *SatCache) Implies(t Theory, a, b Expr) bool {
	v, _ := c.ImpliesHit(t, a, b)
	return v
}

// ImpliesHit reports the verdict and whether it was served from cache.
func (c *SatCache) ImpliesHit(t Theory, a, b Expr) (implies, hit bool) {
	sat, hit := c.SatisfiableHit(t, NewAnd(a, NewNot(b)))
	return !sat, hit
}

// Disjoint is the memoized form of the package-level Disjoint.
func (c *SatCache) Disjoint(t Theory, a, b Expr) bool {
	v, _ := c.DisjointHit(t, a, b)
	return v
}

// DisjointHit reports the verdict and whether it was served from cache.
func (c *SatCache) DisjointHit(t Theory, a, b Expr) (disjoint, hit bool) {
	sat, hit := c.SatisfiableHit(t, NewAnd(a, b))
	return !sat, hit
}

// Tautology is the memoized form of the package-level Tautology.
func (c *SatCache) Tautology(t Theory, x Expr) bool {
	return !c.Satisfiable(t, NewNot(x))
}

// Equivalent is the memoized form of the package-level Equivalent.
func (c *SatCache) Equivalent(t Theory, a, b Expr) bool {
	return c.Implies(t, a, b) && c.Implies(t, b, a)
}

// cacheKey builds the canonical key for one Satisfiable query: the
// structural encoding of the expression followed by the theory fingerprint
// restricted to the expression's atoms.
func cacheKey(t Theory, x Expr) string {
	var b strings.Builder
	encodeExpr(&b, x)
	b.WriteByte('#')
	encodeTheory(&b, t, Atoms(x))
	return b.String()
}

// encStr writes a length-prefixed string, so concatenated fields can never
// be confused with one another.
func encStr(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func encBool(b *strings.Builder, v bool) {
	if v {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
}

func encVal(b *strings.Builder, v Value) {
	switch v.K {
	case KindString:
		b.WriteByte('s')
		encStr(b, v.s)
	case KindInt:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.i, 10))
		b.WriteByte(';')
	case KindFloat:
		b.WriteByte('f')
		b.WriteString(strconv.FormatFloat(v.f, 'b', -1, 64))
		b.WriteByte(';')
	case KindBool:
		b.WriteByte('b')
		encBool(b, v.b)
	default:
		b.WriteByte('?')
	}
}

// encodeExpr writes an unambiguous prefix encoding of the expression.
// Composite nodes are hash-consed (see intern.go) and contribute their
// memoized canonical key — an "@ck" content-address reference — so
// encoding is O(1) in the subtree size instead of a full walk, and the
// resulting cache keys are stable across processes.
func encodeExpr(b *strings.Builder, x Expr) {
	switch x.(type) {
	case *Not, *And, *Or:
		b.WriteString(internKeyOf(x))
	default:
		encodeAtomExpr(b, x)
	}
}

// encodeTheory fingerprints every theory fact the solver may consult while
// deciding a query over the given atoms: per-attribute domains and
// nullability, per-subject concrete-type candidates, and for each candidate
// the subtype facts against the query's type atoms and the attribute-
// presence facts against the query's attribute atoms.
func encodeTheory(b *strings.Builder, t Theory, atoms []Atom) {
	// Distinct attributes and subjects, in the deterministic atom order.
	var attrs []string
	seenAttr := map[string]bool{}
	subjSet := map[string]bool{}
	for _, a := range atoms {
		subjSet[a.subject()] = true
		if a.Kind == AtomNull || a.Kind == AtomCmp {
			if !seenAttr[a.Attr] {
				seenAttr[a.Attr] = true
				attrs = append(attrs, a.Attr)
			}
		}
	}
	subjects := make([]string, 0, len(subjSet))
	for s := range subjSet {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)

	for _, attr := range attrs {
		b.WriteByte('D')
		encStr(b, attr)
		dom, known := t.Domain(attr)
		encBool(b, known)
		if known {
			b.WriteByte(byte('0' + int(dom.Kind)))
			b.WriteString(strconv.Itoa(len(dom.Enum)))
			b.WriteByte(':')
			for _, v := range dom.Enum {
				encVal(b, v)
			}
		}
		encBool(b, t.Nullable(attr))
	}
	for _, subj := range subjects {
		b.WriteByte('S')
		encStr(b, subj)
		cts := t.ConcreteTypes(subj)
		b.WriteString(strconv.Itoa(len(cts)))
		b.WriteByte(':')
		for _, ct := range cts {
			encStr(b, ct)
			for _, a := range atoms {
				if a.Kind != AtomType || a.subject() != subj {
					continue
				}
				encBool(b, t.IsSubtype(ct, a.Type))
			}
			for _, attr := range attrs {
				if subjectOfAttr(attr) != subj {
					continue
				}
				encBool(b, t.HasAttr(ct, bareAttr(attr)))
			}
		}
	}
}

// subjectOfAttr is Atom.subject for attribute atoms: the alias prefix of a
// qualified name, "" for bare names.
func subjectOfAttr(attr string) string {
	if i := strings.IndexByte(attr, '.'); i >= 0 {
		return attr[:i]
	}
	return ""
}
