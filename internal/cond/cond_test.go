package cond

import (
	"testing"
	"testing/quick"
)

// personTheory models the running example of the paper: Person with derived
// Employee and Customer, plus a handful of attributes.
func personTheory() *MapTheory {
	return &MapTheory{
		Types: map[string][]string{"": {"Person", "Employee", "Customer"}},
		Sub: map[string]map[string]bool{
			"Employee": {"Person": true},
			"Customer": {"Person": true},
		},
		Domains: map[string]Domain{
			"Id":        {Kind: KindInt},
			"Name":      {Kind: KindString},
			"Age":       {Kind: KindInt},
			"CredScore": {Kind: KindInt},
			"Gender":    {Kind: KindString, Enum: []Value{String("M"), String("F")}},
			"Active":    {Kind: KindBool},
		},
		NotNull: map[string]bool{"Id": true, "Age": true, "Gender": true},
		Attrs: map[string]map[string]bool{
			"Person":   {"Id": true, "Name": true, "Age": true, "Gender": true, "Active": true},
			"Employee": {"Id": true, "Name": true, "Age": true, "Gender": true, "Active": true, "Dept": true},
			"Customer": {"Id": true, "Name": true, "Age": true, "Gender": true, "Active": true, "CredScore": true},
		},
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		c    int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{String("a"), String("b"), -1, true},
		{Float(1.5), Float(1.5), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Int(1), String("1"), 0, false},
	}
	for _, tc := range cases {
		c, ok := Compare(tc.a, tc.b)
		if ok != tc.ok || (ok && c != tc.c) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", tc.a, tc.b, c, ok, tc.c, tc.ok)
		}
	}
}

func TestNewAndOrSimplify(t *testing.T) {
	if _, ok := NewAnd().(True); !ok {
		t.Errorf("empty And should be True")
	}
	if _, ok := NewOr().(False); !ok {
		t.Errorf("empty Or should be False")
	}
	if _, ok := NewAnd(True{}, False{}).(False); !ok {
		t.Errorf("And with False should collapse")
	}
	if _, ok := NewOr(False{}, True{}).(True); !ok {
		t.Errorf("Or with True should collapse")
	}
	x := TypeIs{Type: "Person"}
	if got := NewAnd(True{}, x); got != Expr(x) {
		t.Errorf("And(True, x) = %v, want x", got)
	}
	if got := NewNot(NewNot(x)); got != Expr(x) {
		t.Errorf("double negation should collapse")
	}
}

func TestAtomsDeterministic(t *testing.T) {
	e := NewOr(
		NewAnd(TypeIs{Type: "Employee"}, Cmp{Attr: "Age", Op: OpGe, Val: Int(18)}),
		NewAnd(Null{Attr: "Dept"}, TypeIs{Type: "Person", Only: true}),
	)
	a1 := Atoms(e)
	a2 := Atoms(e)
	if len(a1) != 4 {
		t.Fatalf("got %d atoms, want 4: %v", len(a1), a1)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("non-deterministic atom order: %v vs %v", a1, a2)
		}
	}
}

func TestEvalOn(t *testing.T) {
	th := personTheory()
	emp := &MapInstance{
		Type: map[string]string{"": "Employee"},
		Vals: map[string]Value{"Id": Int(1), "Age": Int(30), "Gender": String("M")},
	}
	cases := []struct {
		e    Expr
		want bool
	}{
		{TypeIs{Type: "Person"}, true},
		{TypeIs{Type: "Employee"}, true},
		{TypeIs{Type: "Customer"}, false},
		{TypeIs{Type: "Person", Only: true}, false},
		{TypeIs{Type: "Employee", Only: true}, true},
		{Null{Attr: "Name"}, true},
		{NotNull("Id"), true},
		{Cmp{Attr: "Age", Op: OpGe, Val: Int(18)}, true},
		{Cmp{Attr: "Age", Op: OpLt, Val: Int(18)}, false},
		{Cmp{Attr: "Name", Op: OpEq, Val: String("x")}, false}, // NULL comparison
		{NewAnd(TypeIs{Type: "Person"}, Cmp{Attr: "Gender", Op: OpEq, Val: String("M")}), true},
		{NewOr(TypeIs{Type: "Customer"}, Null{Attr: "Id"}), false},
		{NewNot(TypeIs{Type: "Customer"}), true},
	}
	for _, tc := range cases {
		if got := EvalOn(th, tc.e, emp); got != tc.want {
			t.Errorf("EvalOn(%v) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestSatisfiableBasics(t *testing.T) {
	th := personTheory()
	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"true", True{}, true},
		{"false", False{}, false},
		{"isPerson", TypeIs{Type: "Person"}, true},
		{"onlyAndDerived", NewAnd(TypeIs{Type: "Person", Only: true}, TypeIs{Type: "Employee"}), false},
		{"derivedImpliesBase", NewAnd(TypeIs{Type: "Employee"}, NewNot(TypeIs{Type: "Person"})), false},
		{"siblingsDisjoint", NewAnd(TypeIs{Type: "Employee"}, TypeIs{Type: "Customer"}), false},
		{"notNullKey", Null{Attr: "Id"}, false},
		{"nullable", Null{Attr: "Name"}, true},
		{"ageContradiction", NewAnd(Cmp{Attr: "Age", Op: OpGe, Val: Int(18)}, Cmp{Attr: "Age", Op: OpLt, Val: Int(18)}), false},
		{"intGap", NewAnd(Cmp{Attr: "Age", Op: OpGt, Val: Int(1)}, Cmp{Attr: "Age", Op: OpLt, Val: Int(2)}), false},
		{"intPoint", NewAnd(Cmp{Attr: "Age", Op: OpGe, Val: Int(2)}, Cmp{Attr: "Age", Op: OpLe, Val: Int(2)}), true},
		{"intPointExcluded", NewAnd(Cmp{Attr: "Age", Op: OpGe, Val: Int(2)}, Cmp{Attr: "Age", Op: OpLe, Val: Int(2)}, Cmp{Attr: "Age", Op: OpNe, Val: Int(2)}), false},
		{"enumThird", NewAnd(Cmp{Attr: "Gender", Op: OpNe, Val: String("M")}, Cmp{Attr: "Gender", Op: OpNe, Val: String("F")}), false},
		{"enumPick", Cmp{Attr: "Gender", Op: OpEq, Val: String("F")}, true},
		// A positive <> comparison still requires a non-null value, so no
		// boolean can differ from both constants.
		{"boolBoth", NewAnd(Cmp{Attr: "Active", Op: OpNe, Val: Bool(true)}, Cmp{Attr: "Active", Op: OpNe, Val: Bool(false)}), false},
		// The negated equalities, in contrast, are satisfied by NULL.
		{"boolBothNeg", NewAnd(NewNot(Cmp{Attr: "Active", Op: OpEq, Val: Bool(true)}), NewNot(Cmp{Attr: "Active", Op: OpEq, Val: Bool(false)})), true},
		{"attrOwnership", NewAnd(TypeIs{Type: "Employee"}, NotNull("CredScore")), false},
		{"attrOwnershipOK", NewAnd(TypeIs{Type: "Customer"}, NotNull("CredScore")), true},
		{"kindMismatch", Cmp{Attr: "Age", Op: OpEq, Val: String("x")}, false},
	}
	for _, tc := range cases {
		if got := Satisfiable(th, tc.e); got != tc.want {
			t.Errorf("%s: Satisfiable(%v) = %v, want %v", tc.name, tc.e, got, tc.want)
		}
	}
}

func TestImplication(t *testing.T) {
	th := personTheory()
	cases := []struct {
		name string
		a, b Expr
		want bool
	}{
		{"empToPerson", TypeIs{Type: "Employee"}, TypeIs{Type: "Person"}, true},
		{"personToEmp", TypeIs{Type: "Person"}, TypeIs{Type: "Employee"}, false},
		{"onlyExpansion",
			TypeIs{Type: "Person"},
			NewOr(TypeIs{Type: "Person", Only: true}, TypeIs{Type: "Employee"}, TypeIs{Type: "Customer"}),
			true},
		{"rangeNarrow",
			Cmp{Attr: "Age", Op: OpGe, Val: Int(21)},
			Cmp{Attr: "Age", Op: OpGe, Val: Int(18)},
			true},
		{"rangeWiden",
			Cmp{Attr: "Age", Op: OpGe, Val: Int(18)},
			Cmp{Attr: "Age", Op: OpGe, Val: Int(21)},
			false},
		{"eqToRange",
			Cmp{Attr: "Age", Op: OpEq, Val: Int(30)},
			NewAnd(Cmp{Attr: "Age", Op: OpGt, Val: Int(18)}, Cmp{Attr: "Age", Op: OpLt, Val: Int(65)}),
			true},
	}
	for _, tc := range cases {
		if got := Implies(th, tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Implies = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTautologyPartitioning exercises the §3.3 examples verbatim.
func TestTautologyPartitioning(t *testing.T) {
	th := personTheory()
	adultYoung := NewOr(
		Cmp{Attr: "Age", Op: OpGe, Val: Int(18)},
		Cmp{Attr: "Age", Op: OpLt, Val: Int(18)},
	)
	if !Tautology(th, adultYoung) {
		t.Errorf("age >= 18 OR age < 18 must be a tautology over non-null ages")
	}
	gender := NewOr(
		Cmp{Attr: "Gender", Op: OpEq, Val: String("M")},
		Cmp{Attr: "Gender", Op: OpEq, Val: String("F")},
	)
	if !Tautology(th, gender) {
		t.Errorf("gender = M OR gender = F must be a tautology over the {M,F} domain")
	}
	// With a nullable attribute the same split is NOT a tautology.
	score := NewOr(
		Cmp{Attr: "CredScore", Op: OpGe, Val: Int(0)},
		Cmp{Attr: "CredScore", Op: OpLt, Val: Int(0)},
	)
	if Tautology(th, score) {
		t.Errorf("split over nullable CredScore must not be a tautology")
	}
	// Incomplete split.
	holey := NewOr(
		Cmp{Attr: "Age", Op: OpGe, Val: Int(19)},
		Cmp{Attr: "Age", Op: OpLt, Val: Int(18)},
	)
	if Tautology(th, holey) {
		t.Errorf("age >= 19 OR age < 18 leaves age = 18 uncovered")
	}
}

func TestDisjoint(t *testing.T) {
	th := personTheory()
	a := Cmp{Attr: "Age", Op: OpGe, Val: Int(18)}
	b := Cmp{Attr: "Age", Op: OpLt, Val: Int(18)}
	if !Disjoint(th, a, b) {
		t.Errorf("adult/young conditions must be disjoint")
	}
	if Disjoint(th, a, Cmp{Attr: "Age", Op: OpGe, Val: Int(21)}) {
		t.Errorf("overlapping ranges must not be disjoint")
	}
	if !Disjoint(th, TypeIs{Type: "Employee"}, TypeIs{Type: "Customer"}) {
		t.Errorf("sibling types must be disjoint")
	}
}

func TestEnumerateAssignments(t *testing.T) {
	th := personTheory()
	atoms := []Atom{
		{Kind: AtomType, Type: "Employee"},
		{Kind: AtomType, Type: "Person"},
	}
	var n int
	EnumerateAssignments(th, atoms, func(a Assignment) bool {
		n++
		if a[atoms[0]] && !a[atoms[1]] {
			t.Errorf("inconsistent assignment visited: Employee without Person")
		}
		return true
	})
	// Consistent combinations: (F,F) impossible (some concrete type always
	// satisfies neither only if Customer... Customer is not Employee but is
	// Person, so (F,T) ok; Person (F,T); Employee (T,T); no concrete type
	// is outside Person, so (F,F) inconsistent.
	if n != 2 {
		t.Errorf("got %d consistent assignments, want 2", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	th := personTheory()
	atoms := []Atom{
		{Kind: AtomNull, Attr: "Name"},
		{Kind: AtomNull, Attr: "Dept"},
	}
	var n int
	completed := EnumerateAssignments(th, atoms, func(Assignment) bool {
		n++
		return n < 2
	})
	if completed || n != 2 {
		t.Errorf("early stop failed: completed=%v n=%d", completed, n)
	}
}

func TestQualifyAndRename(t *testing.T) {
	e := NewAnd(TypeIs{Type: "Person"}, Null{Attr: "Name"}, Cmp{Attr: "Age", Op: OpGe, Val: Int(18)})
	q := QualifyAttrs(e, "p")
	atoms := Atoms(q)
	for _, a := range atoms {
		switch a.Kind {
		case AtomType:
			if a.Var != "p" {
				t.Errorf("type atom not qualified: %v", a)
			}
		default:
			if a.Attr[:2] != "p." {
				t.Errorf("attr atom not qualified: %v", a)
			}
		}
	}
	r := RenameAttrs(e, map[string]string{"Age": "Years"})
	found := false
	for _, a := range Atoms(r) {
		if a.Kind == AtomCmp && a.Attr == "Years" {
			found = true
		}
	}
	if !found {
		t.Errorf("rename failed: %v", r)
	}
}

// TestImpliesConsistentWithEval cross-checks symbolic implication against
// concrete evaluation on randomly generated instances: whenever Implies
// says a ⇒ b, no instance may satisfy a and falsify b.
func TestImpliesConsistentWithEval(t *testing.T) {
	th := personTheory()
	mk := func(ageLo, ageHi int64) (Expr, Expr) {
		a := NewAnd(Cmp{Attr: "Age", Op: OpGe, Val: Int(ageLo)}, Cmp{Attr: "Age", Op: OpLt, Val: Int(ageHi)})
		b := Cmp{Attr: "Age", Op: OpGe, Val: Int(ageLo - 1)}
		return a, b
	}
	f := func(lo int8, span uint8, age int8) bool {
		a, b := mk(int64(lo), int64(lo)+int64(span)+1)
		if !Implies(th, a, b) {
			return false
		}
		inst := &MapInstance{
			Type: map[string]string{"": "Person"},
			Vals: map[string]Value{"Age": Int(int64(age))},
		}
		if EvalOn(th, a, inst) && !EvalOn(th, b, inst) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	e := NewOr(
		NewAnd(TypeIs{Type: "Person", Only: true}, NotNull("Name")),
		TypeIs{Type: "Employee"},
	)
	got := e.String()
	want := "(e IS OF (ONLY Person) AND Name IS NOT NULL) OR e IS OF Employee"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
