package cond

import (
	"math/rand"
	"testing"
)

// satCacheTheory builds a theory with enough structure to exercise every
// fingerprint dimension: typed subjects, subtype relations, enum/int/bool
// domains, nullability, and per-type attribute presence.
func satCacheTheory() *MapTheory {
	return &MapTheory{
		Types: map[string][]string{"": {"Person", "Employee", "Customer"}},
		Sub: map[string]map[string]bool{
			"Employee": {"Person": true},
			"Customer": {"Person": true},
		},
		Domains: map[string]Domain{
			"Gender": {Kind: KindString, Enum: []Value{String("M"), String("F")}},
			"Age":    {Kind: KindInt},
			"Active": {Kind: KindBool},
		},
		NotNull: map[string]bool{"Id": true},
		Attrs: map[string]map[string]bool{
			"Person":   {"Id": true, "Gender": true, "Age": true},
			"Employee": {"Id": true, "Gender": true, "Age": true, "Salary": true},
			"Customer": {"Id": true, "Gender": true, "Age": true, "Active": true},
		},
	}
}

// randExpr generates a random condition over the theory's vocabulary.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return TypeIs{Type: []string{"Person", "Employee", "Customer"}[r.Intn(3)], Only: r.Intn(2) == 0}
		case 1:
			return Null{Attr: []string{"Gender", "Age", "Salary", "Id"}[r.Intn(4)]}
		case 2:
			return Cmp{Attr: "Gender", Op: OpEq, Val: String([]string{"M", "F", "X"}[r.Intn(3)])}
		case 3:
			ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			return Cmp{Attr: "Age", Op: ops[r.Intn(len(ops))], Val: Int(int64(r.Intn(5) * 10))}
		case 4:
			return Cmp{Attr: "Active", Op: OpEq, Val: Bool(r.Intn(2) == 0)}
		default:
			return Cmp{Attr: "Salary", Op: OpGt, Val: Int(int64(r.Intn(3) * 1000))}
		}
	}
	switch r.Intn(3) {
	case 0:
		return NewNot(randExpr(r, depth-1))
	case 1:
		return NewAnd(randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		return NewOr(randExpr(r, depth-1), randExpr(r, depth-1))
	}
}

// TestSatCacheAgreesWithDirect proves the memoized procedures agree with
// the direct solver on randomized expressions, on both the miss path and
// the hit path (every query is issued twice).
func TestSatCacheAgreesWithDirect(t *testing.T) {
	th := satCacheTheory()
	r := rand.New(rand.NewSource(7))
	c := NewSatCache()
	for i := 0; i < 400; i++ {
		a := randExpr(r, 3)
		b := randExpr(r, 3)
		for round := 0; round < 2; round++ {
			if got, want := c.Satisfiable(th, a), Satisfiable(th, a); got != want {
				t.Fatalf("Satisfiable mismatch (round %d) on %s: cache=%v direct=%v", round, a, got, want)
			}
			if got, want := c.Implies(th, a, b), Implies(th, a, b); got != want {
				t.Fatalf("Implies mismatch (round %d) on %s ⇒ %s: cache=%v direct=%v", round, a, b, got, want)
			}
			if got, want := c.Disjoint(th, a, b), Disjoint(th, a, b); got != want {
				t.Fatalf("Disjoint mismatch (round %d) on %s vs %s: cache=%v direct=%v", round, a, b, got, want)
			}
			if got, want := c.Tautology(th, a), Tautology(th, a); got != want {
				t.Fatalf("Tautology mismatch (round %d) on %s: cache=%v direct=%v", round, a, got, want)
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	if st.Entries > st.Misses {
		t.Fatalf("more entries than misses: %+v", st)
	}
}

// TestSatCacheTheoryFingerprint proves that one cache serves conflicting
// theories correctly: the key must capture the schema facts the verdict
// depends on, not just the expression.
func TestSatCacheTheoryFingerprint(t *testing.T) {
	c := NewSatCache()
	x := Expr(Null{Attr: "A"})
	nullable := &MapTheory{}
	notNull := &MapTheory{NotNull: map[string]bool{"A": true}}
	for round := 0; round < 2; round++ {
		if !c.Satisfiable(nullable, x) {
			t.Fatalf("round %d: A IS NULL should be satisfiable when A is nullable", round)
		}
		if c.Satisfiable(notNull, x) {
			t.Fatalf("round %d: A IS NULL should be unsatisfiable when A is NOT NULL", round)
		}
	}

	// Enum domains with different value sets must not collide either.
	y := Expr(Cmp{Attr: "G", Op: OpEq, Val: String("X")})
	mf := &MapTheory{Domains: map[string]Domain{"G": {Kind: KindString, Enum: []Value{String("M"), String("F")}}}}
	mfx := &MapTheory{Domains: map[string]Domain{"G": {Kind: KindString, Enum: []Value{String("M"), String("F"), String("X")}}}}
	for round := 0; round < 2; round++ {
		if c.Satisfiable(mf, y) {
			t.Fatalf("round %d: G = 'X' outside {M,F} should be unsatisfiable", round)
		}
		if !c.Satisfiable(mfx, y) {
			t.Fatalf("round %d: G = 'X' within {M,F,X} should be satisfiable", round)
		}
	}
}

// TestSatCacheSharedEntries checks that Implies, Disjoint and Satisfiable
// reduce to shared Satisfiable entries.
func TestSatCacheSharedEntries(t *testing.T) {
	th := FreeTheory
	a := Expr(Cmp{Attr: "A", Op: OpGt, Val: Int(1)})
	b := Expr(Cmp{Attr: "A", Op: OpGt, Val: Int(0)})
	c := NewSatCache()
	c.Implies(th, a, b) // caches SAT(a ∧ ¬b)
	if _, hit := c.SatisfiableHit(th, NewAnd(a, NewNot(b))); !hit {
		t.Fatal("Implies should share its entry with the reduced Satisfiable query")
	}
	c.Disjoint(th, a, NewNot(b)) // same query again
	st := c.Stats()
	if st.Hits < 2 {
		t.Fatalf("expected shared entries to hit, got %+v", st)
	}
}

// TestSatCacheReset checks Reset drops entries and counters.
func TestSatCacheReset(t *testing.T) {
	c := NewSatCache()
	c.Satisfiable(FreeTheory, Cmp{Attr: "A", Op: OpEq, Val: Int(1)})
	c.Reset()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
	if _, hit := c.SatisfiableHit(FreeTheory, Cmp{Attr: "A", Op: OpEq, Val: Int(1)}); hit {
		t.Fatal("Reset should drop cached entries")
	}
}
