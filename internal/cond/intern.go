package cond

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Hash-consing of composite condition nodes. The New* constructors funnel
// every Not/And/Or through a process-wide intern table keyed by the same
// canonical structural encoding SatCache uses, so structurally identical
// composites share one node. Consequences:
//
//   - sharing subtrees across mapping generations is safe by construction
//     (the nodes are immutable and unique),
//   - == on Expr is O(1) structural equality for interned trees,
//   - SatCache keys composites by their (memoized) canonical encoding
//     instead of re-walking the subtree on every decision, and
//   - the simplifier's rebuild-heavy rewrites reuse existing nodes rather
//     than allocating fresh copies of unchanged subtrees.
//
// The table is bounded; once full, constructors return fresh non-interned
// nodes (hc == 0) that still carry their canonical key and atom memo, so
// correctness never depends on residency — only == precision and key
// brevity degrade.

// internMaxEntries bounds the intern table. Keys of resident nodes are
// O(fan-out) because interned children contribute a short "@id" reference.
const internMaxEntries = 1 << 20

var (
	internTab  sync.Map // canonical key (string) -> *Not | *And | *Or
	internSize atomic.Int64
	internNext atomic.Uint64 // id source; ids are stable for the process lifetime
)

// InternStats reports the number of live interned composite nodes.
func InternStats() int64 { return internSize.Load() }

// internKeyOf returns the canonical encoding of x as it appears inside a
// parent's intern key: interned composites contribute "@id" (ids are
// unique per structure, so this is canonical), non-interned composites
// contribute their full key, and atoms their structural encoding.
func internKeyOf(x Expr) string {
	switch v := x.(type) {
	case *Not:
		if v.hc != 0 {
			return "@" + strconv.FormatUint(v.hc, 36)
		}
		return v.key
	case *And:
		if v.hc != 0 {
			return "@" + strconv.FormatUint(v.hc, 36)
		}
		return v.key
	case *Or:
		if v.hc != 0 {
			return "@" + strconv.FormatUint(v.hc, 36)
		}
		return v.key
	}
	var b strings.Builder
	encodeAtomExpr(&b, x)
	return b.String()
}

// encodeAtomExpr writes the unambiguous prefix encoding of a non-composite
// expression (the atom cases of the historical encodeExpr).
func encodeAtomExpr(b *strings.Builder, x Expr) {
	switch v := x.(type) {
	case True:
		b.WriteByte('T')
	case False:
		b.WriteByte('F')
	case TypeIs:
		b.WriteByte('t')
		encBool(b, v.Only)
		encStr(b, v.Var)
		encStr(b, v.Type)
	case Null:
		b.WriteByte('n')
		encStr(b, v.Attr)
	case Cmp:
		b.WriteByte('c')
		b.WriteByte(byte('0' + int(v.Op)))
		encStr(b, v.Attr)
		encVal(b, v.Val)
	default:
		b.WriteByte('?')
	}
}

// intern publishes a fully-built node under its key, or returns the
// already-resident structural twin. Nodes are complete (key and atom memo
// set) before publication, so readers never observe partial state. When
// the table is full the fresh node is returned un-interned: its hc is
// cleared so parents embed its full key rather than a dangling "@id".
func intern(key string, mk func() Expr) Expr {
	if e, ok := internTab.Load(key); ok {
		return e.(Expr)
	}
	n := mk()
	if internSize.Load() >= internMaxEntries {
		clearHC(n)
		return n
	}
	if e, loaded := internTab.LoadOrStore(key, n); loaded {
		return e.(Expr)
	}
	internSize.Add(1)
	return n
}

func clearHC(x Expr) {
	switch v := x.(type) {
	case *Not:
		v.hc = 0
	case *And:
		v.hc = 0
	case *Or:
		v.hc = 0
	}
}

func internNot(x Expr) Expr {
	var b strings.Builder
	b.WriteByte('!')
	b.WriteString(internKeyOf(x))
	key := b.String()
	return intern(key, func() Expr {
		n := &Not{X: x, key: key}
		n.atoms = collectAtoms(n.X)
		n.hc = internNext.Add(1)
		return n
	})
}

func internAnd(xs []Expr) Expr {
	key := compositeKey('&', xs)
	return intern(key, func() Expr {
		n := &And{Xs: xs, key: key}
		n.atoms = collectAtoms(n)
		n.hc = internNext.Add(1)
		return n
	})
}

func internOr(xs []Expr) Expr {
	key := compositeKey('|', xs)
	return intern(key, func() Expr {
		n := &Or{Xs: xs, key: key}
		n.atoms = collectAtoms(n)
		n.hc = internNext.Add(1)
		return n
	})
}

func compositeKey(tag byte, xs []Expr) string {
	var b strings.Builder
	b.WriteByte(tag)
	b.WriteString(strconv.Itoa(len(xs)))
	b.WriteByte(':')
	for _, x := range xs {
		encStr(&b, internKeyOf(x))
	}
	return b.String()
}
