package cond

import (
	"crypto/sha256"
	"encoding/base64"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/ormkit/incmap/internal/obsv"
)

// Hash-consing of composite condition nodes. The New* constructors funnel
// every Not/And/Or through a process-wide intern table keyed by the same
// canonical structural encoding SatCache uses, so structurally identical
// composites share one node. Consequences:
//
//   - sharing subtrees across mapping generations is safe by construction
//     (the nodes are immutable and unique),
//   - == on Expr is O(1) structural equality for interned trees,
//   - SatCache keys composites by their (memoized) canonical encoding
//     instead of re-walking the subtree on every decision, and
//   - the simplifier's rebuild-heavy rewrites reuse existing nodes rather
//     than allocating fresh copies of unchanged subtrees.
//
// The table is bounded and aged: when full, a second-chance (clock) sweep
// evicts composites that have not been re-interned since the last sweep,
// making room for the working set instead of freezing whatever happened to
// arrive first. Every node carries a reference bit that intern hits set and
// the sweep clears; an entry survives one full revolution after its last
// hit. Eviction never invalidates live pointers — a resident node handed
// out earlier stays valid and structurally correct; only future
// constructions of the same structure mint a fresh node. Within one mapping
// generation, nodes reached through the table while resident still compare
// == as before; eviction only weakens == between expressions built far
// apart in time, the same degradation the historical hard cap had.
//
// Every composite also carries a content address (ck): a 128-bit hash of
// its canonical key, itself built from the content addresses of its
// children — a Merkle hash of the structure. Unlike the historical
// sequential intern ids, content addresses are identical for identical
// structures in every process and across eviction/rebuild cycles, which is
// what lets SatCache verdicts and persisted CDCL lemmas (whose keys embed
// these references) survive a process restart (internal/store). Distinct
// structures collide with probability ~2^-64 at a billion nodes — far
// below any hardware error rate — and a collision's blast radius is one
// cache entry, never memory unsafety.

// internMaxEntries bounds the intern table. Keys of resident nodes are
// O(fan-out) because interned children contribute a short "@ck" reference.
// It is a variable only for tests, which shrink it to exercise eviction.
var internMaxEntries = int64(1 << 20)

var (
	internTab       sync.Map // canonical key (string) -> *Not | *And | *Or
	internSize      atomic.Int64
	internEvictions atomic.Int64
	internAged      atomic.Int64
	mInternAged     = obsv.Metrics().Counter(obsv.MInternAged)
)

// internClock is the eviction ring: the keys of resident nodes, swept by a
// clock hand. Order is approximate (removals swap from the tail), which is
// all second chance needs.
var internClock struct {
	mu   sync.Mutex
	keys []string
	hand int
}

// InternStats reports the number of live interned composite nodes.
func InternStats() int64 { return internSize.Load() }

// InternEvictions reports the process-lifetime count of composites evicted
// by the capacity clock (full-table inserts reclaiming room).
func InternEvictions() int64 { return internEvictions.Load() }

// InternAged reports the process-lifetime count of composites reclaimed by
// AgeIntern sweeps (the cond.intern.aged counter).
func InternAged() int64 { return internAged.Load() }

// AgeIntern performs one aging revolution over the intern table: every
// resident composite whose reference bit is still clear — meaning no
// constructor re-interned it since the previous sweep — is evicted, and
// every set bit is cleared so the entry is a candidate next time. Two
// consecutive sweeps with no intervening hits therefore empty the table.
//
// The capacity clock (internEvict) only runs when the table is full, so a
// long-lived multi-tenant daemon whose tenants come and go accumulates one
// idle tenant's working set forever below the cap; callers (mapserved's
// sweep ticker, or an operator via SIGHUP-tuned cadence) invoke AgeIntern
// periodically to return that memory. Eviction never invalidates live
// pointers — nodes handed out earlier stay valid; only future
// constructions of the same structure mint fresh nodes.
//
// Returns how many entries this sweep reclaimed, also accumulated into the
// cond.intern.aged metric.
func AgeIntern() int64 {
	c := &internClock
	c.mu.Lock()
	defer c.mu.Unlock()
	var aged int64
	// One pass over the ring, front to back; evictions swap from the tail,
	// so walk an index and only advance past survivors.
	for i := 0; i < len(c.keys); {
		key := c.keys[i]
		e, ok := internTab.Load(key)
		if !ok {
			// Stale ring slot; drop it.
			c.keys[i] = c.keys[len(c.keys)-1]
			c.keys = c.keys[:len(c.keys)-1]
			continue
		}
		p := refBitOf(e.(Expr))
		if p != nil && atomic.LoadUint32(p) != 0 {
			atomic.StoreUint32(p, 0)
			i++
			continue
		}
		internTab.Delete(key)
		internSize.Add(-1)
		aged++
		c.keys[i] = c.keys[len(c.keys)-1]
		c.keys = c.keys[:len(c.keys)-1]
	}
	if c.hand >= len(c.keys) {
		c.hand = 0
	}
	if aged > 0 {
		internAged.Add(aged)
		mInternAged.Add(aged)
	}
	return aged
}

// refBitOf returns the node's second-chance bit, nil for non-composites.
func refBitOf(x Expr) *uint32 {
	switch v := x.(type) {
	case *Not:
		return &v.ref
	case *And:
		return &v.ref
	case *Or:
		return &v.ref
	}
	return nil
}

func touchRef(x Expr) {
	if p := refBitOf(x); p != nil && atomic.LoadUint32(p) == 0 {
		atomic.StoreUint32(p, 1)
	}
}

// internEvict runs the clock hand until it has reclaimed want entries (or
// proven the ring empty). Entries with the reference bit set get their
// second chance — the bit is cleared and the hand moves on; clear entries
// are evicted. Callers hold no locks.
func internEvict(want int) {
	c := &internClock
	c.mu.Lock()
	defer c.mu.Unlock()
	// Two revolutions bound the scan: the first clears every set bit in the
	// worst case, the second must then find victims.
	budget := 2 * len(c.keys)
	for want > 0 && len(c.keys) > 0 && budget > 0 {
		budget--
		if c.hand >= len(c.keys) {
			c.hand = 0
		}
		key := c.keys[c.hand]
		e, ok := internTab.Load(key)
		if !ok {
			// Stale ring slot; drop it.
			c.keys[c.hand] = c.keys[len(c.keys)-1]
			c.keys = c.keys[:len(c.keys)-1]
			continue
		}
		p := refBitOf(e.(Expr))
		if p != nil && atomic.LoadUint32(p) != 0 {
			atomic.StoreUint32(p, 0)
			c.hand++
			continue
		}
		internTab.Delete(key)
		internSize.Add(-1)
		internEvictions.Add(1)
		c.keys[c.hand] = c.keys[len(c.keys)-1]
		c.keys = c.keys[:len(c.keys)-1]
		want--
	}
}

// contentRef hashes a canonical key into its content address: 128 bits of
// SHA-256, base64url. Children contribute their own content addresses to
// the key, so this is a Merkle hash of the whole structure — equal for
// equal structures in every process.
func contentRef(key string) string {
	sum := sha256.Sum256([]byte(key))
	return base64.RawURLEncoding.EncodeToString(sum[:16])
}

// internKeyOf returns the canonical encoding of x as it appears inside a
// parent's intern key: composites contribute their "@ck" content address
// (equal structures hash equal, so this is canonical — and, unlike the
// historical sequential intern ids, stable across processes and across
// eviction/rebuild cycles), atoms their structural encoding.
func internKeyOf(x Expr) string {
	switch v := x.(type) {
	case *Not:
		return "@" + v.ck
	case *And:
		return "@" + v.ck
	case *Or:
		return "@" + v.ck
	}
	var b strings.Builder
	encodeAtomExpr(&b, x)
	return b.String()
}

// encodeAtomExpr writes the unambiguous prefix encoding of a non-composite
// expression (the atom cases of the historical encodeExpr).
func encodeAtomExpr(b *strings.Builder, x Expr) {
	switch v := x.(type) {
	case True:
		b.WriteByte('T')
	case False:
		b.WriteByte('F')
	case TypeIs:
		b.WriteByte('t')
		encBool(b, v.Only)
		encStr(b, v.Var)
		encStr(b, v.Type)
	case Null:
		b.WriteByte('n')
		encStr(b, v.Attr)
	case Cmp:
		b.WriteByte('c')
		b.WriteByte(byte('0' + int(v.Op)))
		encStr(b, v.Attr)
		encVal(b, v.Val)
	default:
		b.WriteByte('?')
	}
}

// intern publishes a fully-built node under its key, or returns the
// already-resident structural twin. Nodes are complete (key, content
// address and atom memo set) before publication, so readers never observe
// partial state. When the table is full a clock sweep (internEvict) ages
// out cold entries to make room; only if that reclaims nothing is the
// fresh node returned un-interned — its content address is still valid
// (it depends only on structure, not residency), so parents embed the
// same "@ck" reference either way.
func intern(key string, mk func() Expr) Expr {
	if e, ok := internTab.Load(key); ok {
		touchRef(e.(Expr))
		return e.(Expr)
	}
	n := mk()
	if over := internSize.Load() - internMaxEntries; over >= 0 {
		// Reclaim the overshoot plus a batch, so steady-state inserts pay
		// for the sweep only once every internEvictBatch entries.
		internEvict(int(over) + internEvictBatch)
		if internSize.Load() >= internMaxEntries {
			return n
		}
	}
	touchRef(n) // fresh entries get a first revolution's grace
	if e, loaded := internTab.LoadOrStore(key, n); loaded {
		return e.(Expr)
	}
	internSize.Add(1)
	internClock.mu.Lock()
	internClock.keys = append(internClock.keys, key)
	internClock.mu.Unlock()
	return n
}

// internEvictBatch is how many entries one full-table insert reclaims;
// batching amortizes the sweep against the insert path.
const internEvictBatch = 64

func internNot(x Expr) Expr {
	var b strings.Builder
	b.WriteByte('!')
	b.WriteString(internKeyOf(x))
	key := b.String()
	return intern(key, func() Expr {
		n := &Not{X: x, key: key, ck: contentRef(key)}
		n.atoms = collectAtoms(n.X)
		return n
	})
}

func internAnd(xs []Expr) Expr {
	key := compositeKey('&', xs)
	return intern(key, func() Expr {
		n := &And{Xs: xs, key: key, ck: contentRef(key)}
		n.atoms = collectAtoms(n)
		return n
	})
}

func internOr(xs []Expr) Expr {
	key := compositeKey('|', xs)
	return intern(key, func() Expr {
		n := &Or{Xs: xs, key: key, ck: contentRef(key)}
		n.atoms = collectAtoms(n)
		return n
	})
}

func compositeKey(tag byte, xs []Expr) string {
	var b strings.Builder
	b.WriteByte(tag)
	b.WriteString(strconv.Itoa(len(xs)))
	b.WriteByte(':')
	for _, x := range xs {
		encStr(&b, internKeyOf(x))
	}
	return b.String()
}
