package cond

// Snapshot export/import: the portable form of a SatCache that
// internal/store persists to disk. Everything in a snapshot is keyed by
// strings that are stable across processes — verdict keys embed content
// addresses (intern.go) rather than process-local ids, theory fingerprints
// are built from schema facts only, and lemma gate references are content
// addresses. A snapshot produced by one process is therefore directly
// meaningful to another, as long as both run the same key-format version
// (internal/store gates on that).

// SatSnapshot is the portable state of a SatCache.
type SatSnapshot struct {
	// Entries maps verdict keys (expression encoding + theory fingerprint)
	// to satisfiability verdicts.
	Entries map[string]bool `json:"entries,omitempty"`
	// Scopes carries the persisted CDCL lemmas per solver scope.
	Scopes []ScopeSnapshot `json:"scopes,omitempty"`
}

// ScopeSnapshot is one solver scope — a (sorted atom list, theory
// fingerprint) pair — and its persisted lemmas.
type ScopeSnapshot struct {
	Key    string          `json:"key"`
	Lemmas []LemmaSnapshot `json:"lemmas"`
}

// LemmaSnapshot is one persisted clause.
type LemmaSnapshot struct {
	Lits []LemmaLitSnapshot `json:"lits"`
}

// LemmaLitSnapshot is one literal: a gate literal when Gate is a content
// address, an atom literal (index into the scope's atom list) otherwise.
type LemmaLitSnapshot struct {
	Gate string `json:"g,omitempty"`
	Atom int32  `json:"a,omitempty"`
	Neg  bool   `json:"n,omitempty"`
}

// Export captures the cache's verdicts and persisted lemmas in portable
// form. Concurrent use during export is safe; the snapshot is a consistent
// enough view for persistence (individual entries are immutable once
// written, so at worst a racing insert is missed).
func (c *SatCache) Export() *SatSnapshot {
	snap := &SatSnapshot{Entries: make(map[string]bool)}
	c.entries.Range(func(k, v any) bool {
		snap.Entries[k.(string)] = v.(verdict).sat
		return true
	})
	c.scopes.Range(func(k, v any) bool {
		st := v.(*lemmaStore)
		st.mu.Lock()
		if len(st.lemmas) > 0 {
			sc := ScopeSnapshot{Key: k.(string), Lemmas: make([]LemmaSnapshot, len(st.lemmas))}
			for i, lm := range st.lemmas {
				lits := make([]LemmaLitSnapshot, len(lm))
				for j, ll := range lm {
					lits[j] = LemmaLitSnapshot{Gate: ll.gate, Atom: ll.atom, Neg: ll.neg}
				}
				sc.Lemmas[i] = LemmaSnapshot{Lits: lits}
			}
			snap.Scopes = append(snap.Scopes, sc)
		}
		st.mu.Unlock()
		return true
	})
	return snap
}

// Import merges a snapshot into the cache. Imported verdicts are marked
// persisted, so hits on them are observable as PersistedHits; imported
// lemmas land in their scope's store exactly as locally learned ones do.
// Malformed records (empty keys, empty or oversized clauses, negative atom
// indices) are skipped individually — a partially damaged snapshot warms
// what it can and never corrupts the cache. Existing entries win over
// imported ones.
func (c *SatCache) Import(snap *SatSnapshot) {
	if snap == nil {
		return
	}
	for k, sat := range snap.Entries {
		if k == "" {
			continue
		}
		if c.size.Load() >= c.maxEntries {
			break
		}
		if _, loaded := c.entries.LoadOrStore(k, verdict{sat: sat, persisted: true}); !loaded {
			c.size.Add(1)
		}
	}
	for _, sc := range snap.Scopes {
		if sc.Key == "" || len(sc.Lemmas) == 0 {
			continue
		}
		st := c.scopeStore(sc.Key)
		if st == nil {
			continue // scope map full and nothing evictable
		}
		st.mu.Lock()
		for _, lm := range sc.Lemmas {
			if len(lm.Lits) == 0 || len(lm.Lits) > maxLemmaLen || len(st.lemmas) >= maxLemmasPerScope {
				continue
			}
			ls := make([]lemmaLit, len(lm.Lits))
			bad := false
			for i, l := range lm.Lits {
				if l.Gate == "" && l.Atom < 0 {
					bad = true
					break
				}
				ls[i] = lemmaLit{gate: l.Gate, atom: l.Atom, neg: l.Neg}
			}
			if !bad {
				st.addLocked(lemmaKeyOf(ls), ls)
			}
		}
		st.mu.Unlock()
	}
}

// CacheKey returns the canonical verdict key of one Satisfiable query —
// the key SatisfiableHit stores under. Exported so persistence tests can
// assert that keys are byte-identical across a save/restore cycle.
func CacheKey(t Theory, x Expr) string { return cacheKey(t, x) }
