package cond

// Domain describes the value space of an attribute or column for the
// purposes of condition reasoning. If Enum is non-empty, the attribute only
// takes values from that finite set (this drives the `gender = 'M' OR
// gender = 'F'` tautology reasoning of §3.3 in the paper). Boolean
// attributes implicitly have the two-value enumeration.
type Domain struct {
	Kind Kind
	Enum []Value
}

// Theory supplies the schema facts needed to reason about conditions:
// the entity-type hierarchy behind each condition subject, and the domain
// and nullability of each attribute or column.
//
// Subjects and attribute names follow the qualification convention of this
// package: in a single-scan condition the subject is "" and attributes are
// bare names; in a multi-scan condition subjects are scan aliases and
// attributes are written "alias.attr".
type Theory interface {
	// ConcreteTypes returns the instantiable entity types the subject may
	// take, or nil when the subject is untyped (a table row).
	ConcreteTypes(subject string) []string
	// IsSubtype reports whether sub is typ or a descendant of typ.
	IsSubtype(sub, typ string) bool
	// Domain returns the value domain of the attribute, if known.
	Domain(attr string) (Domain, bool)
	// Nullable reports whether the attribute may hold NULL where declared.
	Nullable(attr string) bool
	// HasAttr reports whether entities of the given concrete type carry the
	// attribute. It is only consulted for typed subjects.
	HasAttr(concreteType, attr string) bool
}

// MapTheory is a Theory backed by plain maps, convenient for tests and for
// composing per-alias theories.
type MapTheory struct {
	// Types maps a subject to its candidate concrete types.
	Types map[string][]string
	// Sub maps a type to the set of its supertypes (reflexive closure).
	Sub map[string]map[string]bool
	// Domains maps attribute names to their domains.
	Domains map[string]Domain
	// NotNull marks attributes that can never be NULL.
	NotNull map[string]bool
	// Attrs maps a concrete type to the set of attributes it carries. A nil
	// map means every type carries every attribute.
	Attrs map[string]map[string]bool
}

// ConcreteTypes implements Theory.
func (m *MapTheory) ConcreteTypes(subject string) []string { return m.Types[subject] }

// IsSubtype implements Theory.
func (m *MapTheory) IsSubtype(sub, typ string) bool {
	if sub == typ {
		return true
	}
	return m.Sub[sub][typ]
}

// Domain implements Theory.
func (m *MapTheory) Domain(attr string) (Domain, bool) {
	d, ok := m.Domains[attr]
	return d, ok
}

// Nullable implements Theory.
func (m *MapTheory) Nullable(attr string) bool { return !m.NotNull[attr] }

// HasAttr implements Theory.
func (m *MapTheory) HasAttr(concreteType, attr string) bool {
	if m.Attrs == nil {
		return true
	}
	set, ok := m.Attrs[concreteType]
	if !ok {
		return true
	}
	return set[attr]
}

// FreeTheory is the unconstrained theory: no typed subjects, all attributes
// nullable with unknown domains. Reasoning over it treats every attribute as
// ranging over an unbounded value space.
var FreeTheory Theory = &MapTheory{}
