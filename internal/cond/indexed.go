package cond

// CompileEval compiles x into an evaluator over the dense per-atom truth
// slices produced by the indexed enumerators (1 true, 0 false, -1
// unassigned). idx maps each atom to its slice position; atoms of x absent
// from idx are treated as unassigned. The evaluator agrees with
// Assignment.Eval on the assignment the slice mirrors: it returns true iff
// the three-valued truth of x is determined and true.
//
// Compiling once per condition moves the per-cell cost of the exhaustive
// validation loops from repeated map lookups and interface dispatch to a
// few slice loads.
func CompileEval(x Expr, idx map[Atom]int) func(vals []int8) bool {
	f := compile3(x, idx)
	return func(vals []int8) bool { return f(vals) == 1 }
}

func const3(v int8) func([]int8) int8 {
	return func([]int8) int8 { return v }
}

// compile3 builds the three-valued evaluator, constant-folding subtrees
// whose truth does not depend on any atom.
func compile3(x Expr, idx map[Atom]int) func([]int8) int8 {
	if v, known := evalPartial(x, nil); known {
		if v {
			return const3(1)
		}
		return const3(0)
	}
	switch v := x.(type) {
	case *Not:
		in := compile3(v.X, idx)
		return func(vals []int8) int8 {
			t := in(vals)
			if t < 0 {
				return -1
			}
			return 1 - t
		}
	case *And:
		subs := make([]func([]int8) int8, len(v.Xs))
		for i, c := range v.Xs {
			subs[i] = compile3(c, idx)
		}
		return func(vals []int8) int8 {
			res := int8(1)
			for _, f := range subs {
				switch f(vals) {
				case 0:
					return 0
				case -1:
					res = -1
				}
			}
			return res
		}
	case *Or:
		subs := make([]func([]int8) int8, len(v.Xs))
		for i, c := range v.Xs {
			subs[i] = compile3(c, idx)
		}
		return func(vals []int8) int8 {
			res := int8(0)
			for _, f := range subs {
				switch f(vals) {
				case 1:
					return 1
				case -1:
					res = -1
				}
			}
			return res
		}
	default:
		a, ok := atomOf(x)
		if !ok {
			return const3(0)
		}
		i, ok := idx[a]
		if !ok {
			return const3(-1)
		}
		return func(vals []int8) int8 { return vals[i] }
	}
}
