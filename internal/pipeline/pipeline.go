// Package pipeline implements the paper's fallback ladder (§1.2): try to
// compile a schema modification incrementally and, when the incremental
// compiler cannot handle it — the SMO is not incrementally compilable, the
// validation budget ran out, or a worker panicked — fall back to a full
// compilation of the evolved mapping. A Session owns the current mapping
// generation and applies SMOs transactionally: the pre-SMO generation is
// returned intact on any failure, and readers always observe a fully
// validated generation.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/store"
)

// Process-wide metric counters for the fallback ladder, resolved once.
var (
	mEvolves           = obsv.Metrics().Counter(obsv.MEvolves)
	mEvolveIncremental = obsv.Metrics().Counter(obsv.MEvolveIncremental)
	mEvolveFallback    = obsv.Metrics().Counter(obsv.MEvolveFallback)
	mEvolveCancelled   = obsv.Metrics().Counter(obsv.MEvolveCancelled)
	mEvolvePanics      = obsv.Metrics().Counter(obsv.MEvolvePanics)
	mPersistErrors     = obsv.Metrics().Counter(obsv.MStorePersistErrors)
	mPersistRetries    = obsv.Metrics().Counter(obsv.MStorePersistRetries)
)

// FullEvolver is an SMO that the incremental compiler does not support but
// that can still transform the mapping (schemas and fragments) directly.
// The fallback path uses it to evolve the mapping structurally and then
// regenerates and re-validates every view with a full compilation — the
// paper's answer for schema changes outside the executable SMO set.
type FullEvolver interface {
	core.SMO
	// EvolveMapping mutates the (cloned) mapping in place. Views need not
	// be touched; the full compiler rebuilds them all.
	EvolveMapping(m *frag.Mapping) error
}

// Options configures both rungs of the ladder.
type Options struct {
	// Incremental tunes the incremental compiler (first rung).
	Incremental core.Options
	// Compiler tunes the full compiler used by the fallback (second rung)
	// and by NewSessionCompile.
	Compiler compiler.Options
	// Store, when non-nil, is the persistent compile cache.
	// NewSessionCompile restores a matching compiled generation from it
	// instead of compiling (a warm start), and every committed generation —
	// including the opening compile — is snapshotted back, together with
	// the session's SatCache (verdicts and learned solver lemmas). Store
	// failures never fail the session: a broken or stale store degrades to
	// a cold compile.
	Store *store.Store
	// WriteBehind persists snapshots on a background goroutine instead of
	// on the Evolve path. Use Flush to wait for pending snapshots (e.g.
	// before process exit) and surface the first persistence error since
	// the previous Flush.
	WriteBehind bool
	// PersistRetries is the number of additional attempts a failed
	// snapshot persist makes before the error is surfaced through Stats
	// and Flush. Retries back off exponentially from PersistBackoff
	// (default 10ms) with ±50% jitter, capped at 1s per sleep. 0 disables
	// retrying; long-running daemons absorbing transient store I/O
	// failures (a full disk being rotated, an NFS blip) want 3–5.
	PersistRetries int
	// PersistBackoff is the base delay of the persist retry ladder.
	PersistBackoff time.Duration
	// KeepGenerations bounds the session's version chain: the last K
	// committed generations stay live (readable through Generations /
	// GenerationAt, and rollback targets). 0 means DefaultKeepGenerations;
	// 1 disables rollback. Copy-on-write makes a deep chain cheap — the
	// generations share every untouched fragment and view.
	KeepGenerations int
}

// DefaultKeepGenerations is the version-chain depth when Options does not
// set one: the serving generation plus two rollback targets.
const DefaultKeepGenerations = 3

// sharedSatCache resolves the one decision cache both rungs share,
// creating and wiring it if the caller supplied none. Sessions backed by a
// persistent store need this: the snapshot written on commit must contain
// the verdicts the compiles actually produced.
func (o *Options) sharedSatCache() *cond.SatCache {
	switch {
	case o.Incremental.SatCache == nil && o.Compiler.SatCache == nil:
		c := cond.NewSatCache()
		o.Incremental.SatCache = c
		o.Compiler.SatCache = c
	case o.Incremental.SatCache == nil:
		o.Incremental.SatCache = o.Compiler.SatCache
	case o.Compiler.SatCache == nil:
		o.Compiler.SatCache = o.Incremental.SatCache
	}
	return o.Incremental.SatCache
}

// fingerprintExtras captures the compiler options that change what a
// compilation produces; generations compiled under different options must
// not be served to one another. Default options contribute no extras, so
// default-session snapshots share the plain store.Fingerprint(m) address
// used by the standalone Save/Load helpers and the incmapc CLI.
func (o *Options) fingerprintExtras() []string {
	if !o.Compiler.SkipValidation && !o.Compiler.NoSimplify {
		return nil
	}
	return []string{fmt.Sprintf("skipval=%t,nosimplify=%t",
		o.Compiler.SkipValidation, o.Compiler.NoSimplify)}
}

// Stats counts how each Evolve call was resolved. Counters are updated
// atomically; read a consistent snapshot with Session.Stats.
type Stats struct {
	// Evolves counts Evolve calls; Incremental and Fallbacks count the
	// calls won by each rung of the ladder (failed calls count in neither).
	Evolves     int64
	Incremental int64
	Fallbacks   int64
	// Cancelled counts Evolve calls that ended with context cancellation
	// or deadline expiry. PanicsRecovered counts panics recovered into
	// typed errors anywhere in the ladder, including compiler workers.
	Cancelled       int64
	PanicsRecovered int64
	// WarmStarts counts sessions opened from a persisted generation instead
	// of a compile; Snapshots counts generations persisted to the store.
	WarmStarts int64
	Snapshots  int64
	// PersistErrors counts snapshot persists that failed after all
	// retries (the store stayed behind the committed generation);
	// PersistRetries counts the individual retry attempts. Both paths —
	// inline and write-behind — are covered; Flush returns the first
	// error since the last Flush.
	PersistErrors  int64
	PersistRetries int64
	// Proposals counts generations staged through Propose/ResumePending;
	// Rollbacks counts Rollback commits (each also counts as a commit in
	// the chain but not as an Evolve).
	Proposals int64
	Rollbacks int64
}

// Generation is one committed entry of a session's version chain. Seq is
// the session-monotone commit counter: it grows on every commit, including
// a rollback — rolling back re-commits the previous generation's mapping
// and views verbatim under a fresh Seq, so observers can always order
// events. FP is the content address of the compiled generation (empty for
// sessions without a persistent store).
type Generation struct {
	Seq int64
	M   *frag.Mapping
	V   *frag.Views
	FP  string
}

// Session owns a mapping generation and evolves it one SMO at a time.
// Generation and Stats may be called concurrently with Evolve; Evolve
// calls are serialized.
type Session struct {
	opts  Options
	stats Stats

	// satCache is the decision cache shared by both rungs when the session
	// is store-backed; nil otherwise (each compile resolves its own).
	satCache *cond.SatCache
	// flushWG tracks in-flight write-behind snapshots; persistMu guards
	// persistErr, the first persist error since the last Flush.
	flushWG    sync.WaitGroup
	persistMu  sync.Mutex
	persistErr error

	// evolveMu serializes Evolve/Propose/Rollback calls; mu guards only
	// the generation pointers and the chain so readers never block behind
	// a long compilation.
	evolveMu sync.Mutex
	mu       sync.Mutex
	m        *frag.Mapping
	v        *frag.Views
	seq      int64
	chain    []Generation
	pending  *Generation
}

// NewSession starts a session at an already compiled generation (a mapping
// and the views the full or incremental compiler produced for it).
func NewSession(m *frag.Mapping, v *frag.Views, opts Options) *Session {
	s := &Session{opts: opts, m: m, v: v, seq: 1}
	if opts.Store != nil {
		s.satCache = s.opts.sharedSatCache()
	}
	s.chain = []Generation{{Seq: 1, M: m, V: v, FP: s.fingerprintOf(m)}}
	return s
}

// fingerprintOf computes the generation's content address for store-backed
// sessions; without a store the chain carries no fingerprints (computing
// one hashes the whole mapping, a cost pure in-memory sessions never paid).
func (s *Session) fingerprintOf(m *frag.Mapping) string {
	if s.opts.Store == nil {
		return ""
	}
	fp, err := store.Fingerprint(m, s.opts.fingerprintExtras()...)
	if err != nil {
		return ""
	}
	return fp
}

// NewSessionCompile starts a session at a compiled generation for the
// mapping: restored from the persistent store when Options.Store holds a
// generation with a matching fingerprint (a warm start — no solver work at
// all), full-compiled otherwise. A cold compile's result is snapshotted
// back to the store so the next process starts warm.
func NewSessionCompile(ctx context.Context, m *frag.Mapping, opts Options) (*Session, error) {
	if opts.Store != nil {
		cache := opts.sharedSatCache()
		if fp, err := store.Fingerprint(m, opts.fingerprintExtras()...); err == nil {
			if lm, lv, lerr := opts.Store.LoadGeneration(fp); lerr == nil {
				// Warm the solver too: persisted verdicts and lemmas apply to
				// any later Evolve over unchanged schema facts.
				_ = opts.Store.LoadSatCache(cache)
				s := NewSession(lm, lv, opts)
				atomic.AddInt64(&s.stats.WarmStarts, 1)
				return s, nil
			}
			// Generation miss: persisted verdicts may still cover much of the
			// compile about to run (same schema facts ⇒ same keys).
			_ = opts.Store.LoadSatCache(cache)
		}
	}
	c := &compiler.Compiler{Opts: opts.Compiler}
	v, err := c.CompileCtx(ctx, m)
	if err != nil {
		return nil, err
	}
	s := NewSession(m, v, opts)
	s.snapshot(m, v)
	return s, nil
}

// Generation returns the current mapping and views. The returned objects
// are the live generation: treat them as immutable, as every other reader
// shares them (evolve through Evolve, which derives copy-on-write
// generations).
func (s *Session) Generation() (*frag.Mapping, *frag.Views) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m, s.v
}

func (s *Session) commit(m *frag.Mapping, v *frag.Views) {
	fp := s.fingerprintOf(m)
	s.mu.Lock()
	s.seq++
	s.m, s.v = m, v
	s.chain = append(s.chain, Generation{Seq: s.seq, M: m, V: v, FP: fp})
	if k := s.keepGenerations(); len(s.chain) > k {
		s.chain = append([]Generation(nil), s.chain[len(s.chain)-k:]...)
	}
	s.mu.Unlock()
	s.snapshot(m, v)
}

func (s *Session) keepGenerations() int {
	k := s.opts.KeepGenerations
	if k <= 0 {
		k = DefaultKeepGenerations
	}
	return k
}

// Head returns the currently served generation (the newest chain entry).
func (s *Session) Head() Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chain[len(s.chain)-1]
}

// Generations returns the live version chain, oldest first. Entries share
// copy-on-write structure; treat their mappings and views as immutable.
func (s *Session) Generations() []Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Generation(nil), s.chain...)
}

// GenerationAt returns the chain entry with the given Seq, if it is still
// live.
func (s *Session) GenerationAt(seq int64) (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.chain {
		if g.Seq == seq {
			return g, true
		}
	}
	return Generation{}, false
}

// Pending returns the proposed-but-uncommitted generation, if any. Its Seq
// is 0 until promotion assigns one.
func (s *Session) Pending() (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return Generation{}, false
	}
	return *s.pending, true
}

// snapshot persists the committed generation and the session's SatCache,
// inline or write-behind per Options. Persistence failures never fail the
// commit — the store is an accelerator, never a correctness dependency —
// but they are no longer silent: each exhausted persist counts in
// Stats.PersistErrors and the store.persist_errors metric, and Flush
// returns the first error since the previous Flush.
func (s *Session) snapshot(m *frag.Mapping, v *frag.Views) {
	if s.opts.Store == nil {
		return
	}
	if s.opts.WriteBehind {
		s.flushWG.Add(1)
		go func() {
			defer s.flushWG.Done()
			s.persist(m, v)
		}()
		return
	}
	s.persist(m, v)
}

// persist runs the retry ladder around persistOnce and records the final
// verdict. Transient store failures (a disk filling, an injected fault)
// are retried with capped exponential backoff plus jitter so a burst of
// write-behind snapshots does not hammer a struggling disk in lockstep.
func (s *Session) persist(m *frag.Mapping, v *frag.Views) {
	backoff := s.opts.PersistBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	const backoffCap = time.Second
	var first error
	for attempt := 0; ; attempt++ {
		err := s.persistOnce(m, v)
		if err == nil {
			return
		}
		if first == nil {
			first = err
		}
		if attempt >= s.opts.PersistRetries {
			break
		}
		atomic.AddInt64(&s.stats.PersistRetries, 1)
		mPersistRetries.Add(1)
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		if sleep > backoffCap {
			sleep = backoffCap
		}
		time.Sleep(sleep)
		if backoff < backoffCap {
			backoff *= 2
		}
	}
	atomic.AddInt64(&s.stats.PersistErrors, 1)
	mPersistErrors.Add(1)
	s.persistMu.Lock()
	if s.persistErr == nil {
		s.persistErr = first
	}
	s.persistMu.Unlock()
}

// persistOnce is one snapshot attempt: the generation record, then the
// SatCache snapshot. The first failure aborts the attempt.
func (s *Session) persistOnce(m *frag.Mapping, v *frag.Views) error {
	if err := faultinject.At(faultinject.SiteSessionPersist); err != nil {
		return err
	}
	fp, err := store.Fingerprint(m, s.opts.fingerprintExtras()...)
	if err != nil {
		return err
	}
	if err := s.opts.Store.SaveGeneration(fp, m, v); err != nil {
		return err
	}
	atomic.AddInt64(&s.stats.Snapshots, 1)
	if s.satCache != nil {
		if err := s.opts.Store.SaveSatCache(s.satCache); err != nil {
			return err
		}
	}
	return nil
}

// Flush waits for pending write-behind snapshots and returns the first
// persistence error since the last Flush (nil when every snapshot landed).
// A successful Flush therefore certifies that the store holds the latest
// committed generation. Synchronous sessions only report.
func (s *Session) Flush() error {
	s.flushWG.Wait()
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	err := s.persistErr
	s.persistErr = nil
	return err
}

// SatCache returns the decision cache shared across the session's
// compiles, or nil when the session is not store-backed and no cache was
// injected through Options.
func (s *Session) SatCache() *cond.SatCache { return s.satCache }

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() Stats {
	return Stats{
		Evolves:         atomic.LoadInt64(&s.stats.Evolves),
		Incremental:     atomic.LoadInt64(&s.stats.Incremental),
		Fallbacks:       atomic.LoadInt64(&s.stats.Fallbacks),
		Cancelled:       atomic.LoadInt64(&s.stats.Cancelled),
		PanicsRecovered: atomic.LoadInt64(&s.stats.PanicsRecovered),
		WarmStarts:      atomic.LoadInt64(&s.stats.WarmStarts),
		Snapshots:       atomic.LoadInt64(&s.stats.Snapshots),
		PersistErrors:   atomic.LoadInt64(&s.stats.PersistErrors),
		PersistRetries:  atomic.LoadInt64(&s.stats.PersistRetries),
		Proposals:       atomic.LoadInt64(&s.stats.Proposals),
		Rollbacks:       atomic.LoadInt64(&s.stats.Rollbacks),
	}
}

// Evolve applies one SMO to the current generation via the fallback
// ladder. On success the new generation is committed and returned. On
// failure the session keeps — and Evolve returns — the pre-SMO generation,
// along with a typed error:
//
//   - ctx.Err() (wrapped) when the compile was cancelled or timed out; no
//     fallback is attempted, since it would be cancelled too;
//   - the incremental validation error when the evolved mapping is
//     genuinely invalid (no fallback: full compilation would reject it
//     with more work);
//   - a combined error when the fallback rung was tried and also failed.
//
// The fallback is attempted when the incremental error is
// core.ErrUnsupportedSMO, a *fault.BudgetExceededError, or a
// *fault.PanicError (including panics recovered from compiler workers and
// from the incremental appliers themselves).
func (s *Session) Evolve(ctx context.Context, op core.SMO) (*frag.Mapping, *frag.Views, error) {
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	m, v := s.Generation()
	if s.pending != nil {
		return m, v, ErrPendingGeneration
	}
	atomic.AddInt64(&s.stats.Evolves, 1)
	mEvolves.Add(1)

	nm, nv, err := s.ladder(ctx, m, v, op, true)
	if err != nil {
		return m, v, err
	}
	return nm, nv, nil
}

// ErrPendingGeneration rejects Evolve while a proposed generation awaits
// promotion or discard: interleaving direct commits with a staged rollout
// would make the rollout's "previous generation" ambiguous.
var ErrPendingGeneration = errors.New("pipeline: a proposed generation is pending; promote or discard it before evolving")

// ErrNoPendingGeneration reports a promote/discard with nothing staged.
var ErrNoPendingGeneration = errors.New("pipeline: no pending generation")

// ErrNoPreviousGeneration reports a rollback on a chain of depth one.
var ErrNoPreviousGeneration = errors.New("pipeline: no previous generation to roll back to")

// ladder runs the fallback ladder over one SMO and, when commit is true,
// commits the result. It owns tracing and the per-decision counters; the
// caller holds evolveMu.
func (s *Session) ladder(ctx context.Context, m *frag.Mapping, v *frag.Views, op core.SMO, commit bool) (*frag.Mapping, *frag.Views, error) {
	// The ladder is traced as one "Evolve" span whose children are the rung
	// spans (the inner Apply/Compile spans nest under those via the
	// context); the decision the ladder took is recorded as an attribute.
	tr := obsv.Resolve(s.tracer())
	root := tr.SpanCtx(ctx, "Evolve", obsv.String("smo", op.Describe()))

	rung := root.Child("rung-incremental")
	nm, nv, ierr := s.tryIncremental(obsv.ContextWithSpan(ctx, rung), m, v, op)
	rung.End(fault.Outcome(ierr))
	if ierr == nil {
		atomic.AddInt64(&s.stats.Incremental, 1)
		mEvolveIncremental.Add(1)
		if commit {
			s.commit(nm, nv)
		}
		root.End(obsv.OutcomeOK, obsv.String("decision", "incremental"))
		return nm, nv, nil
	}
	if isCancellation(ierr) {
		atomic.AddInt64(&s.stats.Cancelled, 1)
		mEvolveCancelled.Add(1)
		root.End(obsv.OutcomeCancelled, obsv.String("decision", "abort"))
		return nil, nil, ierr
	}
	if !fallbackWorthy(ierr) {
		root.End(fault.Outcome(ierr), obsv.String("decision", "reject"))
		return nil, nil, ierr
	}

	root.Annotate(obsv.String("fallback_cause", fault.Outcome(ierr)))
	rung = root.Child("rung-fallback")
	fm, fv, ferr := s.fullCompile(obsv.ContextWithSpan(ctx, rung), m, v, op)
	rung.End(fault.Outcome(ferr))
	if ferr != nil {
		if isCancellation(ferr) {
			atomic.AddInt64(&s.stats.Cancelled, 1)
			mEvolveCancelled.Add(1)
			root.End(obsv.OutcomeCancelled, obsv.String("decision", "abort"))
			return nil, nil, ferr
		}
		root.End(fault.Outcome(ferr), obsv.String("decision", "reject"))
		return nil, nil, fmt.Errorf("%s: incremental compilation failed (%v); full-compile fallback failed: %w",
			op.Describe(), ierr, ferr)
	}
	atomic.AddInt64(&s.stats.Fallbacks, 1)
	mEvolveFallback.Add(1)
	if commit {
		s.commit(fm, fv)
	}
	root.End(obsv.OutcomeOK, obsv.String("decision", "fallback"))
	return fm, fv, nil
}

// Propose compiles the SMO sequence into a staged generation without
// committing it: the session keeps serving the current head while the
// rollout engine canaries and backfills against the proposal. The staged
// generation is persisted to the store (when one is configured) so a
// crashed rollout can resume without recompiling. While a proposal is
// pending, Evolve and further Propose calls fail with
// ErrPendingGeneration.
func (s *Session) Propose(ctx context.Context, ops ...core.SMO) (Generation, error) {
	if len(ops) == 0 {
		return Generation{}, fmt.Errorf("pipeline: Propose needs at least one SMO")
	}
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	if s.pending != nil {
		return Generation{}, ErrPendingGeneration
	}
	m, v := s.Generation()
	for _, op := range ops {
		atomic.AddInt64(&s.stats.Evolves, 1)
		mEvolves.Add(1)
		nm, nv, err := s.ladder(ctx, m, v, op, false)
		if err != nil {
			return Generation{}, err
		}
		m, v = nm, nv
	}
	return s.stagePending(m, v), nil
}

// ResumePending re-stages an already compiled generation (typically one
// reloaded from the persistent store after a crash mid-rollout).
func (s *Session) ResumePending(m *frag.Mapping, v *frag.Views) (Generation, error) {
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	if s.pending != nil {
		return Generation{}, ErrPendingGeneration
	}
	return s.stagePending(m, v), nil
}

// stagePending records the proposal and persists it for crash resume. The
// caller holds evolveMu.
func (s *Session) stagePending(m *frag.Mapping, v *frag.Views) Generation {
	atomic.AddInt64(&s.stats.Proposals, 1)
	g := &Generation{M: m, V: v, FP: s.fingerprintOf(m)}
	s.mu.Lock()
	s.pending = g
	s.mu.Unlock()
	if s.opts.Store != nil {
		s.persist(m, v)
	}
	return *g
}

// PromotePending commits the staged generation as the new head (the
// rollout's cutover step).
func (s *Session) PromotePending() (Generation, error) {
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	s.mu.Lock()
	p := s.pending
	s.pending = nil
	s.mu.Unlock()
	if p == nil {
		return Generation{}, ErrNoPendingGeneration
	}
	s.commit(p.M, p.V)
	return s.Head(), nil
}

// DiscardPending drops the staged generation (rollout abort or rollback).
// The session's served head was never touched; the persisted proposal
// record is content-addressed and harmless to leave behind.
func (s *Session) DiscardPending() error {
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	s.mu.Lock()
	p := s.pending
	s.pending = nil
	s.mu.Unlock()
	if p == nil {
		return ErrNoPendingGeneration
	}
	return nil
}

// Rollback re-commits the previous chain entry's mapping and views
// verbatim under a fresh Seq — the serving pointers move back, the commit
// counter moves forward, so generation numbers stay monotone through a
// rollback (observers can order a rollback after the commit it undoes).
func (s *Session) Rollback() (Generation, error) {
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	s.mu.Lock()
	if len(s.chain) < 2 {
		s.mu.Unlock()
		return Generation{}, ErrNoPreviousGeneration
	}
	prev := s.chain[len(s.chain)-2]
	s.mu.Unlock()
	atomic.AddInt64(&s.stats.Rollbacks, 1)
	s.commit(prev.M, prev.V)
	return s.Head(), nil
}

// tracer resolves the session's explicit tracer: the incremental rung's,
// else the full compiler's (Resolve falls through to the process default).
func (s *Session) tracer() *obsv.Tracer {
	if s.opts.Incremental.Tracer != nil {
		return s.opts.Incremental.Tracer
	}
	return s.opts.Compiler.Tracer
}

// tryIncremental runs the first rung, recovering panics from the appliers
// and decision procedures into a typed *fault.PanicError so one poisonous
// SMO cannot crash the session.
func (s *Session) tryIncremental(ctx context.Context, m *frag.Mapping, v *frag.Views, op core.SMO) (nm *frag.Mapping, nv *frag.Views, err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&s.stats.PanicsRecovered, 1)
			mEvolvePanics.Add(1)
			nm, nv = nil, nil
			err = fmt.Errorf("%s: %w", op.Describe(),
				&fault.PanicError{Where: "incremental compilation", Value: r, Stack: debug.Stack()})
		}
	}()
	ic := core.NewIncremental()
	ic.Opts = s.opts.Incremental
	return ic.ApplyCtx(ctx, m, v, op)
}

// fullCompile runs the second rung: evolve the mapping structurally
// (without neighbourhood validation), then regenerate and validate every
// view with a full compilation. The full compile subsumes all the checks
// the structural apply skipped.
func (s *Session) fullCompile(ctx context.Context, m *frag.Mapping, v *frag.Views, op core.SMO) (nm *frag.Mapping, nv *frag.Views, err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&s.stats.PanicsRecovered, 1)
			mEvolvePanics.Add(1)
			nm, nv = nil, nil
			err = fmt.Errorf("%s: %w", op.Describe(),
				&fault.PanicError{Where: "full-compile fallback", Value: r, Stack: debug.Stack()})
		}
	}()

	em, serr := s.structuralApply(ctx, m, v, op)
	if serr != nil {
		return nil, nil, serr
	}

	c := &compiler.Compiler{Opts: s.opts.Compiler}
	views, cerr := c.CompileCtx(ctx, em)
	atomic.AddInt64(&s.stats.PanicsRecovered, atomic.LoadInt64(&c.Stats.PanicsRecovered))
	mEvolvePanics.Add(atomic.LoadInt64(&c.Stats.PanicsRecovered))
	if cerr != nil {
		return nil, nil, cerr
	}
	return em, views, nil
}

// structuralApply evolves the mapping without validation: through the
// SMO's own applier with SkipValidation when it is executable, or through
// its FullEvolver hook when it is not.
func (s *Session) structuralApply(ctx context.Context, m *frag.Mapping, v *frag.Views, op core.SMO) (*frag.Mapping, error) {
	sic := core.NewIncremental()
	sic.Opts = s.opts.Incremental
	sic.Opts.SkipValidation = true
	em, _, aerr := sic.ApplyCtx(ctx, m, v, op)
	if aerr == nil {
		return em, nil
	}
	if errors.Is(aerr, core.ErrUnsupportedSMO) {
		if fe, ok := op.(FullEvolver); ok {
			em = m.Clone()
			if eerr := fe.EvolveMapping(em); eerr != nil {
				return nil, fmt.Errorf("%s: evolving mapping for full compilation: %w", op.Describe(), eerr)
			}
			return em, nil
		}
	}
	return nil, aerr
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fallbackWorthy reports whether the incremental error is one full
// compilation can overcome. Genuine validation failures are not: the
// mapping is invalid, and the full compiler would only reject it again.
func fallbackWorthy(err error) bool {
	if errors.Is(err, core.ErrUnsupportedSMO) {
		return true
	}
	var be *fault.BudgetExceededError
	if errors.As(err, &be) {
		return true
	}
	var pe *fault.PanicError
	return errors.As(err, &pe)
}
