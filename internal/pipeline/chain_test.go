package pipeline

import (
	"context"
	"errors"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/store"
)

func customerOp() core.SMO {
	return core.AddEntityTPC("Customer", "Person",
		[]edm.Attribute{
			{Name: "Score", Type: cond.KindInt, Nullable: true},
			{Name: "Addr", Type: cond.KindString, Nullable: true},
		},
		"Client", map[string]string{"Id": "Cid", "Name": "Name", "Score": "Score", "Addr": "Addr"})
}

func TestVersionChainGrowsAndTrims(t *testing.T) {
	s := baseSession(t, Options{KeepGenerations: 2})
	ctx := context.Background()

	if got := s.Generations(); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("fresh chain = %+v, want one entry at seq 1", got)
	}
	if _, _, err := s.Evolve(ctx, employeeOp()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Evolve(ctx, customerOp()); err != nil {
		t.Fatal(err)
	}
	chain := s.Generations()
	if len(chain) != 2 {
		t.Fatalf("chain depth = %d, want trim to KeepGenerations=2", len(chain))
	}
	if chain[0].Seq != 2 || chain[1].Seq != 3 {
		t.Fatalf("chain seqs = [%d %d], want [2 3]", chain[0].Seq, chain[1].Seq)
	}
	head := s.Head()
	m, v := s.Generation()
	if head.M != m || head.V != v {
		t.Fatal("Head disagrees with Generation")
	}
	if g, ok := s.GenerationAt(2); !ok || g.M != chain[0].M {
		t.Fatalf("GenerationAt(2) = %+v, %t", g, ok)
	}
	if _, ok := s.GenerationAt(1); ok {
		t.Fatal("trimmed generation still addressable")
	}
}

func TestProposePromote(t *testing.T) {
	s := baseSession(t, Options{})
	ctx := context.Background()
	m0, v0 := s.Generation()

	pg, err := s.Propose(ctx, employeeOp())
	if err != nil {
		t.Fatal(err)
	}
	if pg.Seq != 0 {
		t.Fatalf("pending Seq = %d, want 0 until promotion", pg.Seq)
	}
	if m, v := s.Generation(); m != m0 || v != v0 {
		t.Fatal("Propose moved the served generation")
	}
	if _, ok := s.Pending(); !ok {
		t.Fatal("Pending lost the proposal")
	}

	// Direct evolves and second proposals are rejected while staged.
	if _, _, err := s.Evolve(ctx, customerOp()); !errors.Is(err, ErrPendingGeneration) {
		t.Fatalf("Evolve during rollout = %v, want ErrPendingGeneration", err)
	}
	if _, err := s.Propose(ctx, customerOp()); !errors.Is(err, ErrPendingGeneration) {
		t.Fatalf("second Propose = %v, want ErrPendingGeneration", err)
	}

	head, err := s.PromotePending()
	if err != nil {
		t.Fatal(err)
	}
	if head.Seq != 2 || head.M != pg.M || head.V != pg.V {
		t.Fatalf("promoted head = %+v, want the staged generation at seq 2", head)
	}
	if _, ok := s.Pending(); ok {
		t.Fatal("promotion left the proposal staged")
	}
	if st := s.Stats(); st.Proposals != 1 {
		t.Fatalf("Proposals = %d, want 1", st.Proposals)
	}
	// The session evolves normally again.
	if _, _, err := s.Evolve(ctx, customerOp()); err != nil {
		t.Fatal(err)
	}
}

func TestProposeDiscard(t *testing.T) {
	s := baseSession(t, Options{})
	ctx := context.Background()
	m0, v0 := s.Generation()

	if _, err := s.Propose(ctx, employeeOp()); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardPending(); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardPending(); !errors.Is(err, ErrNoPendingGeneration) {
		t.Fatalf("double discard = %v, want ErrNoPendingGeneration", err)
	}
	if _, err := s.PromotePending(); !errors.Is(err, ErrNoPendingGeneration) {
		t.Fatalf("promote after discard = %v, want ErrNoPendingGeneration", err)
	}
	if m, v := s.Generation(); m != m0 || v != v0 {
		t.Fatal("discard disturbed the served generation")
	}
	if _, _, err := s.Evolve(ctx, employeeOp()); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackRestoresVerbatim: a rollback re-commits the previous
// generation's exact mapping and view pointers under a fresh monotone Seq.
func TestRollbackRestoresVerbatim(t *testing.T) {
	s := baseSession(t, Options{})
	ctx := context.Background()
	m0, v0 := s.Generation()

	m1, v1, err := s.Evolve(ctx, employeeOp())
	if err != nil {
		t.Fatal(err)
	}
	head, err := s.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if head.M != m0 || head.V != v0 {
		t.Fatal("rollback did not restore the prior generation verbatim")
	}
	if head.Seq != 3 {
		t.Fatalf("rollback Seq = %d, want monotone 3", head.Seq)
	}
	// Rolling back again undoes the rollback.
	head, err = s.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if head.M != m1 || head.V != v1 || head.Seq != 4 {
		t.Fatalf("second rollback = seq %d, want the evolved generation back at seq 4", head.Seq)
	}
	if st := s.Stats(); st.Rollbacks != 2 {
		t.Fatalf("Rollbacks = %d, want 2", st.Rollbacks)
	}
}

func TestRollbackNeedsHistory(t *testing.T) {
	s := baseSession(t, Options{KeepGenerations: 1})
	if _, err := s.Rollback(); !errors.Is(err, ErrNoPreviousGeneration) {
		t.Fatalf("rollback at depth 1 = %v, want ErrNoPreviousGeneration", err)
	}
	if _, _, err := s.Evolve(context.Background(), employeeOp()); err != nil {
		t.Fatal(err)
	}
	// KeepGenerations=1 trims the predecessor away immediately.
	if _, err := s.Rollback(); !errors.Is(err, ErrNoPreviousGeneration) {
		t.Fatalf("rollback with K=1 = %v, want ErrNoPreviousGeneration", err)
	}
}

// TestProposePersistsForResume: a staged generation lands in the store
// under its content address, and a second session can re-stage it without
// recompiling — the crash-resume path of the rollout engine.
func TestProposePersistsForResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := baseSession(t, Options{Store: st})
	pg, err := s.Propose(context.Background(), employeeOp())
	if err != nil {
		t.Fatal(err)
	}
	if pg.FP == "" {
		t.Fatal("store-backed proposal should carry a fingerprint")
	}
	if !st.HasGeneration(pg.FP) {
		t.Fatal("proposal was not persisted")
	}

	lm, lv, err := st.LoadGeneration(pg.FP)
	if err != nil {
		t.Fatalf("reloading proposal: %v", err)
	}
	s2 := baseSession(t, Options{Store: st})
	rg, err := s2.ResumePending(lm, lv)
	if err != nil {
		t.Fatal(err)
	}
	if rg.FP != pg.FP {
		t.Fatalf("resumed fingerprint %s, want %s", rg.FP, pg.FP)
	}
	if _, ok := s2.Pending(); !ok {
		t.Fatal("resume did not stage the proposal")
	}
	head, err := s2.PromotePending()
	if err != nil {
		t.Fatal(err)
	}
	if head.FP != pg.FP {
		t.Fatal("promoted generation lost the proposal's content address")
	}
}
