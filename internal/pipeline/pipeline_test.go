package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/store"
	"github.com/ormkit/incmap/internal/workload"
)

func baseSession(t *testing.T, opts Options) *Session {
	t.Helper()
	m := workload.PaperInitial()
	v, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(m, v, opts)
}

func employeeOp() core.SMO {
	return core.AddEntityTPT("Employee", "Person",
		[]edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
		"Emp", map[string]string{"Id": "Id", "Department": "Dept"})
}

// loadBack materializes a client state through a generation and loads it
// back, so two generations can be compared observationally via state.Diff.
func loadBack(t *testing.T, m *frag.Mapping, v *frag.Views, cs *state.ClientState) *state.ClientState {
	t.Helper()
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := orm.Load(m, v, ss)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func employeeState() *state.ClientState {
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("ann")}})
	cs.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("bob"), "Department": cond.String("hw")}})
	return cs
}

func TestEvolveIncrementalWins(t *testing.T) {
	s := baseSession(t, Options{})
	m, v, err := s.Evolve(context.Background(), employeeOp())
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Incremental != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want incremental win", st)
	}
	if err := orm.Roundtrip(m, v, employeeState()); err != nil {
		t.Fatal(err)
	}
	gm, gv := s.Generation()
	if gm != m || gv != v {
		t.Fatal("session did not commit the evolved generation")
	}
}

// TestEvolveFaultPanicFallsBackToFullCompile is the acceptance check of
// the fallback ladder: with a panic injected into the first containment
// check of the incremental attempt, Evolve must complete via full-compile
// fallback with Stats.Fallbacks == 1 and a roundtrip-valid result
// observationally identical (state.Diff) to the no-fault run.
func TestEvolveFaultPanicFallsBackToFullCompile(t *testing.T) {
	// No-fault run first, as the reference.
	ref := baseSession(t, Options{})
	rm, rv, err := ref.Evolve(context.Background(), employeeOp())
	if err != nil {
		t.Fatal(err)
	}

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteContainment, Kind: faultinject.KindPanic, Nth: 1},
	}})
	defer deactivate()
	s := baseSession(t, Options{})
	m, v, err := s.Evolve(context.Background(), employeeOp())
	if err != nil {
		t.Fatalf("Evolve did not survive the injected panic: %v", err)
	}
	st := s.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("Stats.Fallbacks = %d, want 1 (stats %+v)", st.Fallbacks, st)
	}
	if st.PanicsRecovered == 0 {
		t.Fatalf("Stats.PanicsRecovered = 0, want >= 1")
	}
	if faultinject.Fired() != 1 {
		t.Fatalf("injected faults fired = %d, want 1", faultinject.Fired())
	}

	cs := employeeState()
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatalf("fallback result does not roundtrip: %v", err)
	}
	if d := state.Diff(loadBack(t, rm, rv, cs), loadBack(t, m, v, cs)); d != "" {
		t.Fatalf("fallback generation differs from no-fault run:\n%s", d)
	}
}

func TestEvolveBudgetExhaustionFallsBack(t *testing.T) {
	s := baseSession(t, Options{
		Incremental: core.Options{Budget: fault.Budget{MaxWallTime: time.Nanosecond}},
	})
	m, v, err := s.Evolve(context.Background(), employeeOp())
	if err != nil {
		t.Fatalf("Evolve did not survive budget exhaustion: %v", err)
	}
	if st := s.Stats(); st.Fallbacks != 1 || st.Incremental != 0 {
		t.Fatalf("stats = %+v, want one fallback win", st)
	}
	if err := orm.Roundtrip(m, v, employeeState()); err != nil {
		t.Fatal(err)
	}
}

// unsupportedOp is an SMO the incremental compiler has no applier for.
type unsupportedOp struct{ evolve func(m *frag.Mapping) error }

func (u unsupportedOp) Describe() string { return "unsupported test op" }

// evolvableOp additionally implements FullEvolver.
type evolvableOp struct{ unsupportedOp }

func (e evolvableOp) EvolveMapping(m *frag.Mapping) error { return e.evolve(m) }

func TestEvolveUnsupportedSMOFallsBackViaFullEvolver(t *testing.T) {
	s := baseSession(t, Options{})
	op := evolvableOp{unsupportedOp{evolve: func(m *frag.Mapping) error {
		// Add a whole new mapped entity set in one step — a change outside
		// the executable SMO set; only full compilation can validate it.
		if err := m.Client.AddType(edm.EntityType{
			Name: "Note",
			Attrs: []edm.Attribute{
				{Name: "Id", Type: cond.KindInt},
				{Name: "Text", Type: cond.KindString, Nullable: true},
			},
			Key: []string{"Id"},
		}); err != nil {
			return err
		}
		if err := m.Client.AddSet(edm.EntitySet{Name: "Notes", Type: "Note"}); err != nil {
			return err
		}
		if err := m.Store.AddTable(rel.Table{
			Name: "TNote",
			Cols: []rel.Column{
				{Name: "Id", Type: cond.KindInt},
				{Name: "Text", Type: cond.KindString, Nullable: true},
			},
			Key: []string{"Id"},
		}); err != nil {
			return err
		}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         "f_Note",
			Set:        "Notes",
			ClientCond: cond.TypeIs{Type: "Note"},
			Attrs:      []string{"Id", "Text"},
			Table:      "TNote",
			StoreCond:  cond.True{},
			ColOf:      map[string]string{"Id": "Id", "Text": "Text"},
		})
		return nil
	}}}
	m, v, err := s.Evolve(context.Background(), op)
	if err != nil {
		t.Fatalf("Evolve via FullEvolver failed: %v", err)
	}
	if st := s.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want one fallback", st)
	}
	if m.Client.Type("Note") == nil || v.Query["Note"] == nil || v.Update["TNote"] == nil {
		t.Fatal("fallback generation incomplete")
	}
}

func TestEvolveUnsupportedSMOWithoutEvolverFailsClean(t *testing.T) {
	s := baseSession(t, Options{})
	m0, v0 := s.Generation()
	_, _, err := s.Evolve(context.Background(), unsupportedOp{})
	if !errors.Is(err, core.ErrUnsupportedSMO) {
		t.Fatalf("err = %v, want ErrUnsupportedSMO", err)
	}
	if m, v := s.Generation(); m != m0 || v != v0 {
		t.Fatal("failed Evolve moved the generation")
	}
	if st := s.Stats(); st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want no fallback recorded", st)
	}
}

func TestEvolveCancelSkipsFallback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := baseSession(t, Options{})
	m0, v0 := s.Generation()
	_, _, err := s.Evolve(ctx, employeeOp())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Cancelled != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want cancelled without fallback", st)
	}
	if m, v := s.Generation(); m != m0 || v != v0 {
		t.Fatal("cancelled Evolve moved the generation")
	}
}

func TestEvolveValidationErrorSkipsFallback(t *testing.T) {
	s := baseSession(t, Options{})
	if _, _, err := s.Evolve(context.Background(), employeeOp()); err != nil {
		t.Fatal(err)
	}
	// An association over a column another fragment already maps is a
	// genuine validation failure: full compilation would reject it too,
	// so the ladder must not retry.
	bad := &core.AddAssociationFK{
		Name: "Supports",
		E1:   "Person", Mult1: edm.Many,
		E2: "Employee", Mult2: edm.ZeroOne,
		Table:    "HR",
		KeyCols1: []string{"Id"},
		KeyCols2: []string{"Name"}, // mapped by phi1
	}
	m0, v0 := s.Generation()
	_, _, err := s.Evolve(context.Background(), bad)
	if err == nil {
		t.Fatal("invalid SMO accepted")
	}
	var be *fault.BudgetExceededError
	var pe *fault.PanicError
	if errors.As(err, &be) || errors.As(err, &pe) {
		t.Fatalf("validation failure misclassified: %v", err)
	}
	st := s.Stats()
	if st.Fallbacks != 0 {
		t.Fatalf("stats = %+v: fallback attempted on a validation failure", st)
	}
	if m, v := s.Generation(); m != m0 || v != v0 {
		t.Fatal("failed Evolve moved the generation")
	}
}

// TestFaultInjectionMatrix drives every fault kind through every compile
// path and asserts the invariant of the robustness issue: the session (or
// compiler) always ends in a valid generation or a clean typed error, and
// a failed evolution never moves the generation.
func TestFaultInjectionMatrix(t *testing.T) {
	kinds := []faultinject.Kind{faultinject.KindPanic, faultinject.KindDelay, faultinject.KindError}

	t.Run("incremental", func(t *testing.T) {
		for _, kind := range kinds {
			t.Run(kind.String(), func(t *testing.T) {
				deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
					{Site: faultinject.SiteContainment, Kind: kind, Nth: 1, Delay: time.Millisecond},
				}})
				defer deactivate()
				s := baseSession(t, Options{})
				m0, v0 := s.Generation()
				m, v, err := s.Evolve(context.Background(), employeeOp())
				switch kind {
				case faultinject.KindPanic:
					// Recovered, then resolved by the fallback rung.
					if err != nil {
						t.Fatalf("panic not absorbed by fallback: %v", err)
					}
					if s.Stats().Fallbacks != 1 {
						t.Fatalf("stats = %+v", s.Stats())
					}
				case faultinject.KindDelay:
					if err != nil {
						t.Fatalf("delay broke the compile: %v", err)
					}
					if s.Stats().Incremental != 1 {
						t.Fatalf("stats = %+v", s.Stats())
					}
				case faultinject.KindError:
					// A spurious non-validation error is surfaced typed; the
					// generation stays put.
					var ie *faultinject.InjectedError
					if !errors.As(err, &ie) {
						t.Fatalf("err = %v, want *InjectedError", err)
					}
					if m, v := s.Generation(); m != m0 || v != v0 {
						t.Fatal("failed Evolve moved the generation")
					}
					return
				}
				if err := orm.Roundtrip(m, v, employeeState()); err != nil {
					t.Fatalf("surviving generation invalid: %v", err)
				}
			})
		}
	})

	t.Run("full", func(t *testing.T) {
		for _, kind := range kinds {
			t.Run(kind.String(), func(t *testing.T) {
				deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
					{Site: faultinject.SiteWorker, Kind: kind, Nth: 2, Delay: time.Millisecond},
				}})
				defer deactivate()
				c := compiler.New()
				v, err := c.Compile(workload.PaperFull())
				switch kind {
				case faultinject.KindPanic:
					var pe *fault.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("err = %v, want *fault.PanicError", err)
					}
				case faultinject.KindError:
					var ie *faultinject.InjectedError
					if !errors.As(err, &ie) {
						t.Fatalf("err = %v, want *InjectedError", err)
					}
				case faultinject.KindDelay:
					if err != nil {
						t.Fatalf("delay broke the compile: %v", err)
					}
					if err := orm.Roundtrip(workload.PaperFull(), v, state.NewClientState()); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	})

	t.Run("parallel-span", func(t *testing.T) {
		m := workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: true})
		for _, kind := range kinds {
			t.Run(kind.String(), func(t *testing.T) {
				deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
					{Site: faultinject.SiteWorker, Kind: kind, Nth: 3, Delay: time.Millisecond},
				}})
				defer deactivate()
				c := compiler.New()
				c.Opts.Parallelism = 4
				_, err := c.Compile(m)
				switch kind {
				case faultinject.KindPanic:
					var pe *fault.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("err = %v, want *fault.PanicError", err)
					}
					if c.Stats.PanicsRecovered == 0 {
						t.Fatal("panic not counted")
					}
				case faultinject.KindError:
					var ie *faultinject.InjectedError
					if !errors.As(err, &ie) {
						t.Fatalf("err = %v, want *InjectedError", err)
					}
				case faultinject.KindDelay:
					if err != nil {
						t.Fatalf("delay broke the parallel compile: %v", err)
					}
				}
			})
		}
	})
}

// TestSoakCancelEvolve cancels Session.Evolve at 100 staggered points
// under -race and checks the session never commits a cancelled evolution
// and remains usable afterwards.
func TestSoakCancelEvolve(t *testing.T) {
	s := baseSession(t, Options{})
	m0, v0 := s.Generation()
	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*2*time.Microsecond)
		_, _, err := s.Evolve(ctx, employeeOp())
		cancel()
		if err == nil {
			// Slow timer: the evolution won. Reset to the base generation.
			s = NewSession(m0, v0, Options{})
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
		if m, v := s.Generation(); m != m0 || v != v0 {
			t.Fatalf("iteration %d: cancelled Evolve moved the generation", i)
		}
	}
	// The surviving generation still evolves and roundtrips.
	m, v, err := s.Evolve(context.Background(), employeeOp())
	if err != nil {
		t.Fatal(err)
	}
	if err := orm.Roundtrip(m, v, employeeState()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionWarmStart drives the full persistence loop: a cold session
// snapshots its opening compile, a second session over the same directory
// warm-starts from it, and both generations are observationally identical.
func TestSessionWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	model := workload.PaperInitial()

	cold, err := NewSessionCompile(context.Background(), model, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if cs := cold.Stats(); cs.WarmStarts != 0 || cs.Snapshots != 1 {
		t.Fatalf("cold open: %+v", cs)
	}

	// "Second process": a fresh store handle over the same directory, a
	// fresh mapping value (same content), a fresh SatCache.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if ws := warm.Stats(); ws.WarmStarts != 1 {
		t.Fatalf("second open did not warm start: %+v", ws)
	}
	if st2.Stats().Hits == 0 {
		t.Fatal("warm start hit nothing in the store")
	}

	// Correctness drift check: both generations must roundtrip the same
	// client state identically.
	cm, cv := cold.Generation()
	wm, wv := warm.Generation()
	cs := workload.PaperClientState()
	if d := state.Diff(loadBack(t, cm, cv, cs), loadBack(t, wm, wv, cs)); d != "" {
		t.Fatalf("warm generation drifts from cold: %s", d)
	}

	// Evolve on the warm session commits and snapshots the new generation.
	if _, _, err := warm.Evolve(context.Background(), employeeOp()); err != nil {
		t.Fatal(err)
	}
	if ws := warm.Stats(); ws.Snapshots == 0 {
		t.Fatalf("evolve did not snapshot: %+v", ws)
	}

	// A third open at the evolved fingerprint warm-starts at the evolved
	// generation.
	em, _ := warm.Generation()
	third, err := NewSessionCompile(context.Background(), em, Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if ts := third.Stats(); ts.WarmStarts != 1 {
		t.Fatalf("evolved generation not restorable: %+v", ts)
	}
}

// TestSessionWarmStartSatCache checks persisted solver state flows back:
// the warm session's shared SatCache reports persisted hits once its
// compiles consult verdicts the cold process solved.
func TestSessionWarmStartSatCache(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	// Evolve once so the persisted cache covers the employee neighbourhood.
	if _, _, err := cold.Evolve(context.Background(), employeeOp()); err != nil {
		t.Fatal(err)
	}

	st2, _ := store.Open(dir)
	warm, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := warm.Evolve(context.Background(), employeeOp()); err != nil {
		t.Fatal(err)
	}
	if warm.SatCache() == nil {
		t.Fatal("store-backed session has no shared SatCache")
	}
	stats := warm.SatCache().Stats()
	if stats.PersistedHits == 0 {
		t.Fatalf("warm Evolve consulted no persisted verdicts: %+v", stats)
	}
}

// TestSessionWriteBehind checks asynchronous snapshots land after Flush.
func TestSessionWriteBehind(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st, WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Evolve(context.Background(), employeeOp()); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if got := s.Stats().Snapshots; got != 2 {
		t.Fatalf("after Flush: %d snapshots, want 2 (open + evolve)", got)
	}
	em, _ := s.Generation()
	fp, err := store.Fingerprint(em, (&Options{}).fingerprintExtras()...)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasGeneration(fp) {
		t.Fatal("evolved generation not on disk after Flush")
	}
}

// TestSessionStoreCorruptionColdStarts checks a damaged store degrades to
// a cold compile with no error surfaced.
func TestSessionStoreCorruptionColdStarts(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	// Trash every record in the directory.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("ruin"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2, _ := store.Open(dir)
	s, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st2})
	if err != nil {
		t.Fatalf("corrupt store failed the session open: %v", err)
	}
	if ws := s.Stats(); ws.WarmStarts != 0 || ws.Snapshots != 1 {
		t.Fatalf("corrupt store: %+v (want cold start + fresh snapshot)", ws)
	}
	// And the fresh snapshot repaired the store for the next process.
	st3, _ := store.Open(dir)
	again, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st3})
	if err != nil {
		t.Fatal(err)
	}
	if ws := again.Stats(); ws.WarmStarts != 1 {
		t.Fatalf("store not repaired by cold session's snapshot: %+v", ws)
	}
}
