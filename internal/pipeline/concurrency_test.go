package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/store"
	"github.com/ormkit/incmap/internal/workload"
)

// addEmployeeN builds a distinct planner-resolved entity add for each i so
// a session can be evolved repeatedly. Using the planned form matters: the
// planner mutates the cloned mapping's store schema while it resolves, the
// exact path that must stay invisible to concurrent readers and the
// write-behind persist of the previous generation.
func addEmployeeN(i int) core.SMO {
	return modef.PlannedAddEntity(fmt.Sprintf("Emp%d", i), "Person",
		[]edm.Attribute{{Name: "Dept", Type: cond.KindString, Nullable: true}})
}

// TestEvolveConcurrentGenerationReaders hammers Generation and Stats from
// reader goroutines while the session evolves, under -race. Readers must
// always observe a coherent, fully committed (mapping, views) pair —
// never a half-applied generation, and never a torn pointer pair.
func TestEvolveConcurrentGenerationReaders(t *testing.T) {
	s := baseSession(t, Options{})

	const readers = 4
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, v := s.Generation()
				if m == nil || v == nil {
					torn.Add(1)
					continue
				}
				// Every client type of the committed mapping must have a
				// query view: commits are whole generations.
				for _, ty := range m.Client.Types() {
					if ty.Abstract {
						continue
					}
					if v.Query[ty.Name] == nil {
						torn.Add(1)
					}
				}
				_ = s.Stats()
			}
		}()
	}

	const evolves = 8
	for i := 0; i < evolves; i++ {
		if _, _, err := s.Evolve(context.Background(), addEmployeeN(i)); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("evolve %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if torn.Load() > 0 {
		t.Fatalf("%d torn generation observations", torn.Load())
	}
	m, _ := s.Generation()
	if got := len(m.Client.Types()); got < evolves {
		t.Fatalf("final generation has %d types, want ≥ %d", got, evolves)
	}
}

// TestEvolveCancelMidEvolveReadersUnaffected cancels an Evolve midway (a
// delay injected into the containment site gives the cancellation a
// window) while readers watch: the cancelled evolve must not move the
// generation, and concurrent reads must keep returning the old one.
func TestEvolveCancelMidEvolveReadersUnaffected(t *testing.T) {
	s := baseSession(t, Options{})
	m0, v0 := s.Generation()

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteContainment, Kind: faultinject.KindDelay, Nth: 1, Every: 1, Delay: 20 * time.Millisecond},
	}})
	defer deactivate()

	stop := make(chan struct{})
	var badReads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if m, v := s.Generation(); m != m0 || v != v0 {
					badReads.Add(1)
				}
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := s.Evolve(ctx, addEmployeeN(0))
	close(stop)
	wg.Wait()

	if err == nil {
		t.Skip("evolve finished before the deadline; timing too generous to assert cancellation")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("evolve error %v, want deadline exceeded", err)
	}
	if badReads.Load() > 0 {
		t.Fatalf("%d reads observed a generation the cancelled evolve must not have committed", badReads.Load())
	}
	if m, v := s.Generation(); m != m0 || v != v0 {
		t.Fatalf("cancelled evolve moved the generation")
	}
	if st := s.Stats(); st.Cancelled == 0 {
		t.Fatalf("cancellation not counted: %+v", st)
	}
}

// TestFlushSurfacesPersistFault drives the write-behind persist path into
// injected failure: the evolve itself succeeds (the store is an
// accelerator, not a dependency), the failure is counted, and Flush
// returns it — once.
func TestFlushSurfacesPersistFault(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{Store: st, WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after clean open: %v", err)
	}

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteSessionPersist, Kind: faultinject.KindError, Nth: 1, Every: 1},
	}})
	if _, _, err := s.Evolve(context.Background(), addEmployeeN(0)); err != nil {
		deactivate()
		t.Fatalf("evolve: %v", err)
	}
	ferr := s.Flush()
	deactivate()
	if ferr == nil {
		t.Fatalf("flush returned nil despite an injected persist failure")
	}
	var ie *faultinject.InjectedError
	if !errors.As(ferr, &ie) {
		t.Fatalf("flush error %v, want the injected error", ferr)
	}
	if st := s.Stats(); st.PersistErrors == 0 {
		t.Fatalf("persist failure not counted: %+v", st)
	}
	// The error was consumed: a second Flush reports clean.
	if err := s.Flush(); err != nil {
		t.Fatalf("second flush: %v", err)
	}
}

// TestPersistRetriesAbsorbTransientFault fails only the first persist
// attempt; with retries configured the snapshot must land, counted as a
// retry, with no surfaced error.
func TestPersistRetriesAbsorbTransientFault(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionCompile(context.Background(), workload.PaperInitial(), Options{
		Store: st, WriteBehind: true,
		PersistRetries: 3, PersistBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after open: %v", err)
	}
	before := s.Stats().Snapshots

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteSessionPersist, Kind: faultinject.KindError, Nth: 1},
	}})
	if _, _, err := s.Evolve(context.Background(), addEmployeeN(0)); err != nil {
		deactivate()
		t.Fatalf("evolve: %v", err)
	}
	ferr := s.Flush()
	deactivate()
	if ferr != nil {
		t.Fatalf("flush surfaced an error the retry should have absorbed: %v", ferr)
	}
	stats := s.Stats()
	if stats.PersistRetries == 0 {
		t.Fatalf("no retry counted: %+v", stats)
	}
	if stats.PersistErrors != 0 {
		t.Fatalf("retried persist still counted as an error: %+v", stats)
	}
	if stats.Snapshots <= before {
		t.Fatalf("snapshot did not land after retry (before %d, after %d)", before, stats.Snapshots)
	}
}
