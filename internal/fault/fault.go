// Package fault defines the fault-tolerance vocabulary shared by the full
// and incremental compilers and the evolution pipeline: validation budgets,
// the typed error reporting budget exhaustion, and the typed error a
// recovered worker panic is converted into.
//
// Validation reduces to query containment, which is NP-hard (§2.3 of the
// paper), and the exhaustive cell analysis is exponential in the number of
// interacting condition atoms. A deployment that compiles mappings on a
// serving path therefore needs a way to bound the work of a single
// compilation and to distinguish "the mapping is invalid" from "the
// compiler ran out of budget": only the former is a verdict, the latter is
// a resource decision a caller may respond to by falling back to full
// recompilation, queueing, or rejecting the schema change.
package fault

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Budget bounds the work one compilation (full or incremental) may spend
// on validation. The zero value imposes no limits.
type Budget struct {
	// MaxContainments bounds the number of query-containment checks
	// (the NP-hard step). 0 means unlimited.
	MaxContainments int64
	// MaxWallTime bounds the wall-clock time of validation, measured from
	// the start of the compilation. 0 means unlimited.
	MaxWallTime time.Duration
}

// Limited reports whether the budget imposes any limit.
func (b Budget) Limited() bool { return b.MaxContainments > 0 || b.MaxWallTime > 0 }

// BudgetExceededError reports that validation stopped because a Budget
// limit was reached, not because the mapping is invalid. It carries the
// partial work counters accumulated up to the moment of exhaustion so
// callers can log or adapt (e.g. retry with a larger budget, or fall back
// to full recompilation through the pipeline package).
type BudgetExceededError struct {
	// Op names the operation that ran out of budget (an SMO description or
	// "full compile").
	Op string
	// Reason is the limit that was hit: "containments" or "wall time".
	Reason string
	// Containments and CellsVisited are the partial work counters at the
	// moment of exhaustion (CellsVisited is zero for incremental
	// compilations, which do not enumerate cells).
	Containments int64
	CellsVisited int64
	// Elapsed is the wall-clock time spent before giving up.
	Elapsed time.Duration
}

// Error implements error.
func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("%s: validation budget exceeded (%s) after %v: containments=%d cells=%d",
		e.Op, e.Reason, e.Elapsed.Round(time.Microsecond), e.Containments, e.CellsVisited)
}

// PanicError is a worker panic recovered into an error: instead of
// crashing the process, a panicking validation task is reported with the
// cell span or fragment it was working on. The pre-change mapping
// generation is untouched (the compilers mutate only cloned state), so a
// caller holding it can continue serving and fall back to full
// recompilation.
type PanicError struct {
	// Where names the failing unit of work: a cell-span task label, a
	// foreign-key check, or an SMO description.
	Where string
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic recovered in %s: %v", e.Where, e.Value)
}

// Outcome classifies an error into the observability layer's span-outcome
// vocabulary: "ok" for nil, "cancelled" for context cancellation or
// deadline expiry, "budget" for budget exhaustion, "panic" for a recovered
// panic, and "error" for everything else (validation failures included;
// layers that can tell those apart refine the label themselves).
func Outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		var be *BudgetExceededError
		if errors.As(err, &be) {
			return "budget"
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return "panic"
		}
		return "error"
	}
}
