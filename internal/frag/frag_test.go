package frag

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
)

func testMapping(t *testing.T) *Mapping {
	t.Helper()
	c := edm.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddType(edm.EntityType{
		Name: "Employee", Base: "Person",
		Attrs: []edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))

	s := rel.NewSchema()
	must(s.AddTable(rel.Table{
		Name: "HR",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(s.AddTable(rel.Table{
		Name: "Emp",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Dept", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))

	m := &Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags,
		&Fragment{
			ID: "f1", Set: "Persons",
			ClientCond: cond.TypeIs{Type: "Person"},
			Attrs:      []string{"Id", "Name"},
			Table:      "HR", StoreCond: cond.True{},
			ColOf: map[string]string{"Id": "Id", "Name": "Name"},
		},
		&Fragment{
			ID: "f2", Set: "Persons",
			ClientCond: cond.TypeIs{Type: "Employee"},
			Attrs:      []string{"Id", "Department"},
			Table:      "Emp", StoreCond: cond.True{},
			ColOf: map[string]string{"Id": "Id", "Department": "Dept"},
		},
	)
	if err := m.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFragmentAccessors(t *testing.T) {
	m := testMapping(t)
	f := m.Frags[1]
	if got := f.Cols(); len(got) != 2 || got[1] != "Dept" {
		t.Errorf("Cols = %v", got)
	}
	if a, ok := f.AttrFor("Dept"); !ok || a != "Department" {
		t.Errorf("AttrFor(Dept) = %q, %v", a, ok)
	}
	if !f.MapsCol("Id") || f.MapsCol("Nope") {
		t.Errorf("MapsCol wrong")
	}
	if !strings.Contains(f.String(), "Emp") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestMappingLookups(t *testing.T) {
	m := testMapping(t)
	if got := m.FragsOnTable("HR"); len(got) != 1 || got[0].ID != "f1" {
		t.Errorf("FragsOnTable = %v", got)
	}
	if got := m.FragsOnSet("Persons"); len(got) != 2 {
		t.Errorf("FragsOnSet = %v", got)
	}
	if got := m.MappedTables(); len(got) != 2 || got[0] != "Emp" {
		t.Errorf("MappedTables = %v", got)
	}
	if m.FragForAssoc("none") != nil {
		t.Errorf("unknown association should be nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	// Clone is copy-on-write: mutation must go through MutableFrag, which
	// clones the touched fragment and leaves the source generation intact.
	m := testMapping(t)
	c := m.Clone()
	f := c.MutableFrag(c.Frags[0])
	f.ClientCond = cond.False{}
	f.ColOf["Id"] = "X"
	if _, isFalse := m.Frags[0].ClientCond.(cond.False); isFalse {
		t.Errorf("clone shares conditions")
	}
	if m.Frags[0].ColOf["Id"] != "Id" {
		t.Errorf("clone shares ColOf")
	}
	if c.Frags[0] != f {
		t.Errorf("MutableFrag did not replace the fragment in the clone")
	}
	if _, isFalse := c.Frags[0].ClientCond.(cond.False); !isFalse {
		t.Errorf("mutation lost on the clone")
	}
}

func TestDeepCloneIndependence(t *testing.T) {
	// DeepClone permits unrestricted in-place mutation of the copy.
	m := testMapping(t)
	c := m.DeepClone()
	c.Frags[0].ClientCond = cond.False{}
	c.Frags[0].ColOf["Id"] = "X"
	if _, isFalse := m.Frags[0].ClientCond.(cond.False); isFalse {
		t.Errorf("deep clone shares conditions")
	}
	if m.Frags[0].ColOf["Id"] != "Id" {
		t.Errorf("deep clone shares ColOf")
	}
}

func TestRemoveFragPreservesSource(t *testing.T) {
	m := testMapping(t)
	c := m.Clone()
	c.RemoveFrag(c.Frags[0])
	if len(c.Frags) != 1 || c.Frags[0].ID != "f2" {
		t.Errorf("RemoveFrag left %v", c.Frags)
	}
	if len(m.Frags) != 2 || m.Frags[0].ID != "f1" {
		t.Errorf("RemoveFrag disturbed the source generation: %v", m.Frags)
	}
}

func TestCheckWellFormedErrors(t *testing.T) {
	m := testMapping(t)
	bad := m.DeepClone()
	bad.Frags[0].ColOf["Name"] = "Nope"
	if err := bad.CheckWellFormed(); err == nil {
		t.Errorf("unknown column accepted")
	}

	bad = m.DeepClone()
	bad.Frags[0].Attrs = []string{"Name"} // key missing
	bad.Frags[0].ColOf = map[string]string{"Name": "Name"}
	if err := bad.CheckWellFormed(); err == nil {
		t.Errorf("fragment without key accepted")
	}

	bad = m.DeepClone()
	bad.Frags[0].Set = ""
	if err := bad.CheckWellFormed(); err == nil {
		t.Errorf("fragment with neither set nor assoc accepted")
	}

	bad = m.DeepClone()
	bad.Frags[0].Attrs = []string{"Id", "Ghost"}
	bad.Frags[0].ColOf["Ghost"] = "Name"
	if err := bad.CheckWellFormed(); err == nil {
		t.Errorf("unknown attribute accepted")
	}
}

func TestSatisfiedBy(t *testing.T) {
	m := testMapping(t)
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("a"), "Department": cond.String("d")}})
	ss := state.NewStoreState()
	ss.InsertRow("HR", state.Row{"Id": cond.Int(1), "Name": cond.String("a")})
	ss.InsertRow("Emp", state.Row{"Id": cond.Int(1), "Dept": cond.String("d")})

	ok, err := m.SatisfiedBy(cs, ss)
	if err != nil || !ok {
		t.Fatalf("consistent pair rejected: %v %v", ok, err)
	}
	// Remove the Emp row: the second equation breaks.
	ss.Tables["Emp"] = nil
	ok, err = m.SatisfiedBy(cs, ss)
	if err != nil || ok {
		t.Fatalf("inconsistent pair accepted: %v %v", ok, err)
	}
}

func TestFragmentQueries(t *testing.T) {
	m := testMapping(t)
	f := m.Frags[1]
	if _, ok := f.ClientQuery().(cqt.Project); !ok {
		t.Errorf("client query should be a projection")
	}
	if _, ok := f.StoreQuery().(cqt.Project); !ok {
		t.Errorf("store query should be a projection")
	}
}

func TestViewsClone(t *testing.T) {
	// Clone shares view pointers; MutableQuery clones on first touch so the
	// source generation keeps its constructor maps.
	v := NewViews()
	v.Query["A"] = &cqt.View{Q: cqt.ScanTable{Table: "T"}, Cases: []cqt.Case{{
		When: cond.True{}, Type: "A", Attrs: map[string]string{"x": "x"},
	}}}
	c := v.Clone()
	if c.Query["A"] != v.Query["A"] {
		t.Errorf("clone should share untouched view pointers")
	}
	q := c.MutableQuery("A")
	q.Cases[0].Attrs["x"] = "y"
	if v.Query["A"].Cases[0].Attrs["x"] != "x" {
		t.Errorf("view clone shares constructor maps")
	}
	if c.Query["A"].Cases[0].Attrs["x"] != "y" {
		t.Errorf("mutation lost on the clone")
	}
	if c.MutableQuery("A") != q {
		t.Errorf("second MutableQuery should return the owned view")
	}
	if c.MutableQuery("missing") != nil {
		t.Errorf("MutableQuery of an absent view should be nil")
	}
}

func TestViewsDeepClone(t *testing.T) {
	v := NewViews()
	v.Query["A"] = &cqt.View{Q: cqt.ScanTable{Table: "T"}, Cases: []cqt.Case{{
		When: cond.True{}, Type: "A", Attrs: map[string]string{"x": "x"},
	}}}
	c := v.DeepClone()
	c.Query["A"].Cases[0].Attrs["x"] = "y"
	if v.Query["A"].Cases[0].Attrs["x"] != "x" {
		t.Errorf("deep view clone shares constructor maps")
	}
}
