// Package frag implements the declarative mapping language of Entity
// Framework as formalized in §2.1 of Bernstein et al. (SIGMOD 2013): a
// mapping is a set Σ of mapping fragments, each an equation
//
//	π_α(σ_ψ(E)) = π_β(σ_χ(R))
//
// between a project-select query over a client entity set (or association
// set) and a project-select query over a store table. A fragment set
// specifies the mapping M ⊆ C × S of client/store state pairs that satisfy
// every equation.
package frag

import (
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
)

// Fragment is one mapping equation. Exactly one of Set and Assoc is
// non-empty: entity fragments range over an entity set, association
// fragments over an association set (whose "attributes" are the qualified
// end-key columns of cqt.AssocEndCols).
type Fragment struct {
	// ID is a stable identifier used in diagnostics and provenance flags.
	ID string
	// Set is the client entity set for entity fragments.
	Set string
	// Assoc is the association set for association fragments.
	Assoc string
	// ClientCond is ψ, the client-side selection condition.
	ClientCond cond.Expr
	// Attrs is α, the projected client attributes. It must include the key.
	Attrs []string
	// Table is R, the store table.
	Table string
	// StoreCond is χ, the store-side selection condition.
	StoreCond cond.Expr
	// ColOf is the 1-1 renaming f from client attributes to table columns.
	// Every name in Attrs must be mapped.
	ColOf map[string]string
}

// Clone returns a deep copy of the fragment.
func (f *Fragment) Clone() *Fragment {
	cp := *f
	cp.Attrs = append([]string(nil), f.Attrs...)
	cp.ColOf = make(map[string]string, len(f.ColOf))
	for k, v := range f.ColOf {
		cp.ColOf[k] = v
	}
	return &cp
}

// Cols returns f(Attrs): the store columns the fragment writes, in Attrs
// order.
func (f *Fragment) Cols() []string {
	out := make([]string, len(f.Attrs))
	for i, a := range f.Attrs {
		out[i] = f.ColOf[a]
	}
	return out
}

// AttrFor returns the client attribute mapped to the given column, if any.
func (f *Fragment) AttrFor(col string) (string, bool) {
	for a, c := range f.ColOf {
		if c == col {
			return a, true
		}
	}
	return "", false
}

// MapsCol reports whether the fragment writes the given store column.
func (f *Fragment) MapsCol(col string) bool {
	_, ok := f.AttrFor(col)
	return ok
}

// ClientQuery returns the fragment's left side as a query tree over the
// client state.
func (f *Fragment) ClientQuery() cqt.Expr {
	var scan cqt.Expr
	if f.Assoc != "" {
		scan = cqt.ScanAssoc{Assoc: f.Assoc}
	} else {
		scan = cqt.ScanSet{Set: f.Set}
	}
	cols := make([]cqt.ProjCol, len(f.Attrs))
	for i, a := range f.Attrs {
		cols[i] = cqt.Col(a)
	}
	return cqt.Project{In: cqt.Select{In: scan, Cond: f.ClientCond}, Cols: cols}
}

// StoreQuery returns the fragment's right side as a query tree over the
// store state, with columns renamed back to client attribute names so the
// two sides are directly comparable.
func (f *Fragment) StoreQuery() cqt.Expr {
	cols := make([]cqt.ProjCol, len(f.Attrs))
	for i, a := range f.Attrs {
		cols[i] = cqt.ColAs(f.ColOf[a], a)
	}
	return cqt.Project{In: cqt.Select{In: cqt.ScanTable{Table: f.Table}, Cond: f.StoreCond}, Cols: cols}
}

// String renders the fragment in the paper's π/σ notation.
func (f *Fragment) String() string {
	src := f.Set
	if f.Assoc != "" {
		src = f.Assoc
	}
	return fmt.Sprintf("π_{%v}(σ_{%s}(%s)) = π_{%v}(σ_{%s}(%s))",
		f.Attrs, f.ClientCond, src, f.Cols(), f.StoreCond, f.Table)
}

// Mapping bundles the three developer-provided definitions: client schema,
// store schema, and fragment set.
type Mapping struct {
	Client *edm.Schema
	Store  *rel.Schema
	Frags  []*Fragment

	// fragsShared marks the Frags backing array as possibly shared with
	// another generation (set on both sides by Clone). In-place writes to
	// the slice must go through ensureOwnedFrags first; appends are always
	// safe because the clone's slice is capacity-clamped.
	fragsShared bool
}

// Clone returns a copy-on-write generation of the mapping: the schemas
// take CoW snapshots (see edm.Schema.Clone, rel.Schema.Clone) and the
// fragment slice is shared, capacity-clamped so appends on the clone
// reallocate. Fragments themselves are shared until a mutator replaces
// one through MutableFrag. Cloning is O(model) only in cheap pointer
// copies — no fragment, view tree, or schema entry is duplicated.
func (m *Mapping) Clone() *Mapping {
	m.fragsShared = true
	return &Mapping{
		Client:      m.Client.Clone(),
		Store:       m.Store.Clone(),
		Frags:       m.Frags[:len(m.Frags):len(m.Frags)],
		fragsShared: true,
	}
}

// DeepClone returns a fully independent copy of the mapping, sharing no
// mutable structure with the receiver (the pre-CoW Clone semantics).
func (m *Mapping) DeepClone() *Mapping {
	out := &Mapping{Client: m.Client.DeepClone(), Store: m.Store.DeepClone()}
	out.Frags = make([]*Fragment, len(m.Frags))
	for i, f := range m.Frags {
		out.Frags[i] = f.Clone()
	}
	return out
}

// MutableFrag replaces f with a private copy in the fragment slice and
// returns the copy. Fragments are shared across generations after Clone;
// appliers must route every in-place fragment mutation through this.
// Callers are responsible for using the returned pointer afterwards.
func (m *Mapping) MutableFrag(f *Fragment) *Fragment {
	nf := f.Clone()
	m.ensureOwnedFrags()
	for i, g := range m.Frags {
		if g == f {
			m.Frags[i] = nf
			break
		}
	}
	return nf
}

// RemoveFrag deletes the fragment (by identity) from the slice.
func (m *Mapping) RemoveFrag(f *Fragment) {
	m.ensureOwnedFrags()
	for i, g := range m.Frags {
		if g == f {
			m.Frags = append(m.Frags[:i], m.Frags[i+1:]...)
			return
		}
	}
}

// ensureOwnedFrags gives the generation a private backing array before an
// in-place write to the fragment slice.
func (m *Mapping) ensureOwnedFrags() {
	if !m.fragsShared {
		return
	}
	m.Frags = append(make([]*Fragment, 0, len(m.Frags)), m.Frags...)
	m.fragsShared = false
}

// Catalog returns a query-tree catalog over the mapping's schemas.
func (m *Mapping) Catalog() *cqt.Catalog { return &cqt.Catalog{Client: m.Client, Store: m.Store} }

// FragsOnTable returns the fragments whose right side is the given table.
func (m *Mapping) FragsOnTable(table string) []*Fragment {
	var out []*Fragment
	for _, f := range m.Frags {
		if f.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// FragsOnSet returns the entity fragments over the given entity set.
func (m *Mapping) FragsOnSet(set string) []*Fragment {
	var out []*Fragment
	for _, f := range m.Frags {
		if f.Set == set {
			out = append(out, f)
		}
	}
	return out
}

// FragForAssoc returns the association fragment for the given association,
// or nil. The paper assumes each association set appears in exactly one
// fragment.
func (m *Mapping) FragForAssoc(assoc string) *Fragment {
	for _, f := range m.Frags {
		if f.Assoc == assoc {
			return f
		}
	}
	return nil
}

// MappedTables returns the names of tables mentioned by any fragment,
// sorted.
func (m *Mapping) MappedTables() []string {
	set := map[string]bool{}
	for _, f := range m.Frags {
		set[f.Table] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// CheckWellFormed verifies the structural side conditions of the fragment
// language: referenced sets/tables exist, α includes the client key, β
// includes the table key, the renaming is total and injective, and domains
// are compatible (dom(A) ⊆ dom(f(A)) in the paper's notation).
func (m *Mapping) CheckWellFormed() error {
	for _, f := range m.Frags {
		if err := m.checkFragment(f); err != nil {
			return fmt.Errorf("fragment %s: %w", f.ID, err)
		}
	}
	return nil
}

// CheckFragment verifies the structural side conditions of a single
// fragment. The incremental compiler uses it to validate only the
// fragments an SMO added or rewrote instead of the whole set.
func (m *Mapping) CheckFragment(f *Fragment) error {
	if err := m.checkFragment(f); err != nil {
		return fmt.Errorf("fragment %s: %w", f.ID, err)
	}
	return nil
}

func (m *Mapping) checkFragment(f *Fragment) error {
	if (f.Set == "") == (f.Assoc == "") {
		return fmt.Errorf("exactly one of Set and Assoc must be specified")
	}
	tab := m.Store.Table(f.Table)
	if tab == nil {
		return fmt.Errorf("unknown table %q", f.Table)
	}

	var keyAttrs []string
	attrDomain := map[string]cond.Domain{}
	if f.Set != "" {
		set := m.Client.Set(f.Set)
		if set == nil {
			return fmt.Errorf("unknown entity set %q", f.Set)
		}
		keyAttrs = m.Client.KeyOf(set.Type)
		for _, ty := range append([]string{set.Type}, m.Client.Descendants(set.Type)...) {
			for _, a := range m.Client.AllAttrs(ty) {
				attrDomain[a.Name] = a.Domain()
			}
		}
	} else {
		a := m.Client.Association(f.Assoc)
		if a == nil {
			return fmt.Errorf("unknown association %q", f.Assoc)
		}
		e1, e2 := cqt.AssocEndCols(m.Client, a)
		keyAttrs = append(append([]string(nil), e1...), e2...)
		for i, col := range e1 {
			attr, _ := m.Client.Attr(a.End1.Type, m.Client.KeyOf(a.End1.Type)[i])
			attrDomain[col] = attr.Domain()
		}
		for i, col := range e2 {
			attr, _ := m.Client.Attr(a.End2.Type, m.Client.KeyOf(a.End2.Type)[i])
			attrDomain[col] = attr.Domain()
		}
	}

	seen := map[string]bool{}
	usedCols := map[string]bool{}
	for _, a := range f.Attrs {
		if seen[a] {
			return fmt.Errorf("attribute %q projected twice", a)
		}
		seen[a] = true
		if _, ok := attrDomain[a]; !ok {
			return fmt.Errorf("unknown client attribute %q", a)
		}
		col, ok := f.ColOf[a]
		if !ok {
			return fmt.Errorf("attribute %q has no column mapping", a)
		}
		c, ok := tab.Col(col)
		if !ok {
			return fmt.Errorf("attribute %q maps to unknown column %q of %q", a, col, f.Table)
		}
		if usedCols[col] {
			return fmt.Errorf("column %q mapped twice", col)
		}
		usedCols[col] = true
		if attrDomain[a].Kind != c.Type {
			return fmt.Errorf("attribute %q kind %v incompatible with column %q kind %v", a, attrDomain[a].Kind, col, c.Type)
		}
	}
	if f.Assoc != "" {
		// Association fragments project exactly the end keys.
		for _, k := range keyAttrs {
			if !seen[k] {
				return fmt.Errorf("association fragment must project end key %q", k)
			}
		}
	} else {
		for _, k := range keyAttrs {
			if !seen[k] {
				return fmt.Errorf("projection must include key attribute %q", k)
			}
		}
		// β must include the table key.
		for _, k := range tab.Key {
			if !usedCols[k] {
				return fmt.Errorf("projection must cover table key column %q", k)
			}
		}
	}
	return nil
}

// SatisfiedBy reports whether the given pair of states is in the mapping's
// relation M: every fragment equation holds.
func (m *Mapping) SatisfiedBy(client *state.ClientState, store *state.StoreState) (bool, error) {
	env := &cqt.Env{Catalog: m.Catalog(), Client: client, Store: store}
	for _, f := range m.Frags {
		l, err := cqt.Eval(env, f.ClientQuery())
		if err != nil {
			return false, fmt.Errorf("fragment %s left side: %w", f.ID, err)
		}
		r, err := cqt.Eval(env, f.StoreQuery())
		if err != nil {
			return false, fmt.Errorf("fragment %s right side: %w", f.ID, err)
		}
		if !state.EqualRows(l.Rows, r.Rows) {
			return false, nil
		}
	}
	return true, nil
}

// Views is the compiled form of a mapping: one query view per entity type,
// one query view per association set, and one update view per mapped table
// (§2.2 of the paper).
type Views struct {
	// Query maps entity type names to their (Q | τ) query views.
	Query map[string]*cqt.View
	// Assoc maps association names to their query views (trivial τ).
	Assoc map[string]*cqt.View
	// Update maps table names to their update views (trivial τ).
	Update map[string]*cqt.View

	// owned marks views this generation created or already copied, which
	// are therefore safe to mutate in place. Clone clears it on both
	// sides: after a snapshot, neither generation owns any shared view.
	owned map[*cqt.View]bool
}

// NewViews returns an empty view set.
func NewViews() *Views {
	return &Views{
		Query:  map[string]*cqt.View{},
		Assoc:  map[string]*cqt.View{},
		Update: map[string]*cqt.View{},
	}
}

// Clone returns a copy-on-write generation of the view set: the three
// maps are copied (so adds and deletes stay private) but every *cqt.View
// is shared. A view is copied only when a mutator touches it, through
// MutableQuery/MutableAssoc/MutableUpdate — O(change) work per SMO
// instead of O(model).
func (v *Views) Clone() *Views {
	v.owned = nil
	out := &Views{
		Query:  make(map[string]*cqt.View, len(v.Query)),
		Assoc:  make(map[string]*cqt.View, len(v.Assoc)),
		Update: make(map[string]*cqt.View, len(v.Update)),
	}
	for k, view := range v.Query {
		out.Query[k] = view
	}
	for k, view := range v.Assoc {
		out.Assoc[k] = view
	}
	for k, view := range v.Update {
		out.Update[k] = view
	}
	return out
}

// DeepClone returns a fully independent copy of the view set (the pre-CoW
// Clone semantics: case lists and constructor maps are duplicated; the
// immutable query trees are still shared, as they always were).
func (v *Views) DeepClone() *Views {
	out := NewViews()
	for k, view := range v.Query {
		out.Query[k] = view.Clone()
	}
	for k, view := range v.Assoc {
		out.Assoc[k] = view.Clone()
	}
	for k, view := range v.Update {
		out.Update[k] = view.Clone()
	}
	return out
}

// MutableQuery returns the query view for the named type, copied first if
// it is still shared with another generation. Returns nil if absent.
func (v *Views) MutableQuery(name string) *cqt.View {
	return v.mutable(v.Query, name)
}

// MutableAssoc is MutableQuery for association views.
func (v *Views) MutableAssoc(name string) *cqt.View {
	return v.mutable(v.Assoc, name)
}

// MutableUpdate is MutableQuery for update views.
func (v *Views) MutableUpdate(name string) *cqt.View {
	return v.mutable(v.Update, name)
}

func (v *Views) mutable(m map[string]*cqt.View, name string) *cqt.View {
	view := m[name]
	if view == nil || v.owned[view] {
		return view
	}
	nv := view.Clone()
	v.own(nv)
	m[name] = nv
	return nv
}

// SetQuery installs a freshly built query view, marking it owned so later
// in-place rewrites (adaptation, simplification) need not copy it again.
func (v *Views) SetQuery(name string, view *cqt.View) {
	v.Query[name] = view
	v.own(view)
}

// SetAssoc is SetQuery for association views.
func (v *Views) SetAssoc(name string, view *cqt.View) {
	v.Assoc[name] = view
	v.own(view)
}

// SetUpdate is SetQuery for update views.
func (v *Views) SetUpdate(name string, view *cqt.View) {
	v.Update[name] = view
	v.own(view)
}

func (v *Views) own(view *cqt.View) {
	if v.owned == nil {
		v.owned = map[*cqt.View]bool{}
	}
	v.owned[view] = true
}
