// Package orm executes compiled mappings: it materializes client states
// into store states through update views, loads client states back through
// query views, and verifies the roundtripping property V ∘ Q = identity
// (§2.2 of the paper) on concrete data. It is the runtime layer an
// application uses once its mapping has been compiled.
package orm

import (
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/state"
)

// Materialize pushes a client state through the update views, producing the
// store state the mapping prescribes (the paper's V : C → S). Tables are
// evaluated in sorted name order so the produced state — including the
// relative order of rows within a table — is deterministic across runs
// (views.Update is a map, and Go randomizes map iteration).
func Materialize(m *frag.Mapping, views *frag.Views, cs *state.ClientState) (*state.StoreState, error) {
	env := &cqt.Env{Catalog: m.Catalog(), Client: cs}
	ss := state.NewStoreState()
	tables := make([]string, 0, len(views.Update))
	for table := range views.Update {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		res, err := cqt.Eval(env, views.Update[table].Q)
		if err != nil {
			return nil, fmt.Errorf("orm: update view for %s: %w", table, err)
		}
		for _, r := range res.Rows {
			ss.InsertRow(table, r)
		}
	}
	return ss, nil
}

// Load pulls a client state out of a store state through the query views
// (the paper's Q : S → C). Entity sets are loaded through their root
// type's view; associations through their association views.
func Load(m *frag.Mapping, views *frag.Views, ss *state.StoreState) (*state.ClientState, error) {
	env := &cqt.Env{Catalog: m.Catalog(), Store: ss}
	cs := state.NewClientState()
	for _, set := range m.Client.Sets() {
		v, ok := views.Query[set.Type]
		if !ok {
			continue
		}
		ents, err := v.ConstructEntities(env)
		if err != nil {
			return nil, fmt.Errorf("orm: query view for %s: %w", set.Type, err)
		}
		for _, e := range ents {
			cs.Insert(set.Name, e)
		}
	}
	for _, a := range m.Client.Associations() {
		v, ok := views.Assoc[a.Name]
		if !ok {
			continue
		}
		res, err := cqt.Eval(env, v.Q)
		if err != nil {
			return nil, fmt.Errorf("orm: association view for %s: %w", a.Name, err)
		}
		for _, r := range res.Rows {
			cs.Relate(a.Name, state.AssocPair{Ends: r})
		}
	}
	return cs, nil
}

// QueryType loads the entities visible through one entity type's query
// view (the type's own entities plus those of derived types), the view
// unfolding a client query over that type would see.
func QueryType(m *frag.Mapping, views *frag.Views, ss *state.StoreState, entityType string) ([]*state.Entity, error) {
	v, ok := views.Query[entityType]
	if !ok {
		return nil, fmt.Errorf("orm: no query view for type %s", entityType)
	}
	env := &cqt.Env{Catalog: m.Catalog(), Store: ss}
	return v.ConstructEntities(env)
}

// Roundtrip verifies V ∘ Q = identity on one concrete client state: the
// state is materialized to the store and loaded back, and the result must
// equal the original. A non-nil error describes the first difference.
func Roundtrip(m *frag.Mapping, views *frag.Views, cs *state.ClientState) error {
	ss, err := Materialize(m, views, cs)
	if err != nil {
		return err
	}
	back, err := Load(m, views, ss)
	if err != nil {
		return err
	}
	if d := state.Diff(cs, back); d != "" {
		return fmt.Errorf("orm: state does not roundtrip:\n%s", d)
	}
	return nil
}
