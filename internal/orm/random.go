package orm

import (
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/state"
)

// RandomState generates a referentially consistent pseudo-random client
// state for an arbitrary mapping, deterministic in the seed: up to
// maxPerType entities per concrete type of each mapped set (required
// attributes always populated, nullable ones by coin flip), and
// association pairs respecting the at-most-one multiplicity of the
// non-many end. It backs the CLI's -verify flag and the roundtripping
// property tests.
func RandomState(m *frag.Mapping, seed uint32, maxPerType int) *state.ClientState {
	rnd := seed
	next := func() uint32 {
		rnd = rnd*1664525 + 1013904223
		return rnd
	}
	if maxPerType < 1 {
		maxPerType = 1
	}
	cs := state.NewClientState()
	id := int64(1)
	byType := map[string][]int64{}
	for _, set := range m.Client.Sets() {
		if len(m.FragsOnSet(set.Name)) == 0 {
			continue
		}
		for _, ty := range m.Client.ConcreteIn(set.Type) {
			n := int(next()) % (maxPerType + 1)
			for i := 0; i < n; i++ {
				e := &state.Entity{Type: ty, Attrs: state.Row{}}
				for _, a := range m.Client.AllAttrs(ty) {
					if isKeyAttr(m, ty, a.Name) {
						e.Attrs[a.Name] = cond.Int(id)
						continue
					}
					if !a.Nullable || next()%2 == 0 {
						e.Attrs[a.Name] = randomValue(a, next)
					}
				}
				cs.Insert(set.Name, e)
				byType[ty] = append(byType[ty], id)
				id++
			}
		}
	}
	for _, a := range m.Client.Associations() {
		if m.FragForAssoc(a.Name) == nil {
			continue
		}
		ends1 := hierarchyIDs(m, byType, a.End1.Type)
		ends2 := hierarchyIDs(m, byType, a.End2.Type)
		if len(ends1) == 0 || len(ends2) == 0 {
			continue
		}
		c1, c2 := endColumns(m, a)
		// Each entity of the first end pairs with at most one partner,
		// which respects both the FK-mapped 0..1 shape and join tables.
		for _, l := range ends1 {
			if next()%2 == 0 {
				r := ends2[int(next())%len(ends2)]
				cs.Relate(a.Name, state.AssocPair{Ends: state.Row{
					c1: cond.Int(l), c2: cond.Int(r),
				}})
			}
		}
	}
	return cs
}

func isKeyAttr(m *frag.Mapping, ty, attr string) bool {
	for _, k := range m.Client.KeyOf(ty) {
		if k == attr {
			return true
		}
	}
	return false
}

func randomValue(a edm.Attribute, next func() uint32) cond.Value {
	if len(a.Enum) > 0 {
		return a.Enum[int(next())%len(a.Enum)]
	}
	switch a.Type {
	case cond.KindInt:
		return cond.Int(int64(next() % 100))
	case cond.KindFloat:
		return cond.Float(float64(next()%100) / 4)
	case cond.KindBool:
		return cond.Bool(next()%2 == 0)
	default:
		return cond.String(string(rune('a' + next()%6)))
	}
}

func hierarchyIDs(m *frag.Mapping, byType map[string][]int64, ty string) []int64 {
	var out []int64
	for _, t := range m.Client.ConcreteIn(ty) {
		out = append(out, byType[t]...)
	}
	return out
}

func endColumns(m *frag.Mapping, a *edm.Association) (string, string) {
	b1, b2 := a.End1.Type, a.End2.Type
	if b1 == b2 {
		b1 += "1"
		b2 += "2"
	}
	return b1 + "_" + m.Client.KeyOf(a.End1.Type)[0], b2 + "_" + m.Client.KeyOf(a.End2.Type)[0]
}
