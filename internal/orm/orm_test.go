package orm

import (
	"testing"
	"testing/quick"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

func compiledPaper(t *testing.T) (*frag.Mapping, *frag.Views) {
	t.Helper()
	m := workload.PaperFull()
	v, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, v
}

func TestMaterializeAndLoad(t *testing.T) {
	m, v := compiledPaper(t)
	cs := workload.PaperClientState()
	ss, err := Materialize(m, v, cs)
	if err != nil {
		t.Fatal(err)
	}
	// Customers land in Client, employees in HR+Emp.
	if len(ss.Tables["Client"]) != 2 {
		t.Errorf("Client rows = %d, want 2", len(ss.Tables["Client"]))
	}
	if len(ss.Tables["HR"]) != 3 {
		t.Errorf("HR rows = %d, want 3", len(ss.Tables["HR"]))
	}
	if len(ss.Tables["Emp"]) != 2 {
		t.Errorf("Emp rows = %d, want 2", len(ss.Tables["Emp"]))
	}
	back, err := Load(m, v, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d := state.Diff(cs, back); d != "" {
		t.Fatalf("roundtrip diff:\n%s", d)
	}
}

func TestQueryTypePolymorphic(t *testing.T) {
	m, v := compiledPaper(t)
	db := Open(m, v)
	if err := db.Save(workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
	persons, err := db.Query("Person", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(persons) != 5 {
		t.Fatalf("Person query sees %d entities, want 5", len(persons))
	}
	employees, err := db.Query("Employee", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(employees) != 2 {
		t.Fatalf("Employee query sees %d entities, want 2", len(employees))
	}
	rich, err := db.Query("Customer", func(e *state.Entity) bool {
		v, ok := e.Attrs["CredScore"]
		return ok && v.IntVal() >= 700
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rich) != 1 {
		t.Fatalf("filtered query = %d, want 1", len(rich))
	}
}

func TestSessionUpdateFlow(t *testing.T) {
	m, v := compiledPaper(t)
	db := Open(m, v)
	if err := db.Save(workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
	// Promote a person to a different department through the client view.
	err := db.Update(func(cs *state.ClientState) error {
		for _, e := range cs.Entities["Persons"] {
			if e.Type == "Employee" && e.Attrs["Id"].IntVal() == 2 {
				e.Attrs["Department"] = cond.String("research")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The change must be visible in the Emp table.
	found := false
	for _, r := range db.Table("Emp") {
		if r["Id"].IntVal() == 2 && r["Dept"].Str() == "research" {
			found = true
		}
	}
	if !found {
		t.Fatalf("update not translated to Emp: %v", db.Table("Emp"))
	}
}

func TestInsertAndRelate(t *testing.T) {
	m, v := compiledPaper(t)
	db := Open(m, v)
	if err := db.Save(workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Persons", &state.Entity{Type: "Customer", Attrs: state.Row{
		"Id": cond.Int(10), "Name": cond.String("new")}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("Supports", state.AssocPair{Ends: state.Row{
		"Customer_Id": cond.Int(10), "Employee_Id": cond.Int(3)}}); err != nil {
		t.Fatal(err)
	}
	pairs, err := db.Related("Supports")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	if err := db.Insert("Nope", &state.Entity{}); err == nil {
		t.Fatal("insert into unknown set accepted")
	}
	if err := db.Relate("Nope", state.AssocPair{}); err == nil {
		t.Fatal("relate over unknown association accepted")
	}
}

// TestRoundtripProperty is the paper's central invariant V ∘ Q = identity,
// checked with randomly generated client states.
func TestRoundtripProperty(t *testing.T) {
	m, v := compiledPaper(t)
	f := func(seed uint32, nPersons, nEmployees, nCustomers uint8) bool {
		cs := randomPaperState(seed, int(nPersons%6), int(nEmployees%6), int(nCustomers%6))
		return Roundtrip(m, v, cs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomPaperState builds a deterministic pseudo-random valid client state
// for the paper model.
func randomPaperState(seed uint32, nPersons, nEmployees, nCustomers int) *state.ClientState {
	rnd := seed
	next := func() uint32 {
		rnd = rnd*1664525 + 1013904223
		return rnd
	}
	cs := state.NewClientState()
	id := int64(1)
	var employees, customers []int64
	for i := 0; i < nPersons; i++ {
		e := &state.Entity{Type: "Person", Attrs: state.Row{"Id": cond.Int(id)}}
		if next()%2 == 0 {
			e.Attrs["Name"] = cond.String(string(rune('a' + next()%26)))
		}
		cs.Insert("Persons", e)
		id++
	}
	for i := 0; i < nEmployees; i++ {
		e := &state.Entity{Type: "Employee", Attrs: state.Row{"Id": cond.Int(id)}}
		if next()%2 == 0 {
			e.Attrs["Department"] = cond.String(string(rune('A' + next()%26)))
		}
		cs.Insert("Persons", e)
		employees = append(employees, id)
		id++
	}
	for i := 0; i < nCustomers; i++ {
		e := &state.Entity{Type: "Customer", Attrs: state.Row{"Id": cond.Int(id)}}
		if next()%2 == 0 {
			e.Attrs["CredScore"] = cond.Int(int64(next() % 800))
		}
		cs.Insert("Persons", e)
		customers = append(customers, id)
		id++
	}
	// Each customer is supported by at most one employee (the Supports
	// multiplicity), and any employee supports at most ... the * side is
	// the customer, so each customer appears at most once.
	for _, c := range customers {
		if len(employees) > 0 && next()%2 == 0 {
			e := employees[int(next())%len(employees)]
			cs.Relate("Supports", state.AssocPair{Ends: state.Row{
				"Customer_Id": cond.Int(c), "Employee_Id": cond.Int(e)}})
		}
	}
	return cs
}

// TestRoundtripDetectsBrokenViews corrupts a view and checks the dynamic
// roundtrip helper notices.
func TestRoundtripDetectsBrokenViews(t *testing.T) {
	m, v := compiledPaper(t)
	bad := v.Clone()
	// Swap the Emp update view's department source for a constant.
	bad.Update["Emp"] = bad.Update["HR"]
	if err := Roundtrip(m, bad, workload.PaperClientState()); err == nil {
		t.Fatal("broken views roundtripped")
	}
}

// TestQueryWhereViewUnfolding checks query translation by view unfolding:
// a client-side condition runs against the store through the composed
// view, without loading the whole set.
func TestQueryWhereViewUnfolding(t *testing.T) {
	m, v := compiledPaper(t)
	db := Open(m, v)
	if err := db.Save(workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
	rich, err := db.QueryWhere("Customer", cond.Cmp{Attr: "CredScore", Op: cond.OpGe, Val: cond.Int(700)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rich) != 1 || rich[0].Attrs["Id"].IntVal() != 4 {
		t.Fatalf("rich customers = %v", rich)
	}
	named, err := db.QueryWhere("Person", cond.NotNull("Name"))
	if err != nil {
		t.Fatal(err)
	}
	if len(named) != 5 {
		t.Fatalf("named persons = %d, want 5", len(named))
	}
	hw, err := db.QueryWhere("Employee", cond.Cmp{Attr: "Department", Op: cond.OpEq, Val: cond.String("hw")})
	if err != nil {
		t.Fatal(err)
	}
	if len(hw) != 1 || hw[0].Type != "Employee" {
		t.Fatalf("hw employees = %v", hw)
	}
	if _, err := db.QueryWhere("Ghost", cond.True{}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// TestRandomStateGenerator checks the exported generator: deterministic in
// the seed, valid for its mapping, and roundtrippable.
func TestRandomStateGenerator(t *testing.T) {
	m, v := compiledPaper(t)
	a := RandomState(m, 7, 3)
	b := RandomState(m, 7, 3)
	if d := state.Diff(a, b); d != "" {
		t.Fatalf("generator not deterministic:\n%s", d)
	}
	c := RandomState(m, 8, 3)
	_ = c // different seeds usually differ; determinism is the contract
	for seed := uint32(1); seed <= 10; seed++ {
		cs := RandomState(m, seed, 4)
		if err := Roundtrip(m, v, cs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Non-positive maxPerType is clamped.
	if cs := RandomState(m, 3, 0); cs == nil {
		t.Fatal("nil state")
	}
}
