package orm_test

import (
	"context"
	"errors"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

func compileFor(t *testing.T, m *frag.Mapping) *frag.Views {
	t.Helper()
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(context.Background(), m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return v
}

// TestMaterializeStreamEqualsMaterialize holds the streaming write path
// to the materializing one: same client state, same views, same store —
// whether the destination is a RingStore or a map-backed state.
func TestMaterializeStreamEqualsMaterialize(t *testing.T) {
	ctx := context.Background()
	for _, wl := range []struct {
		name string
		m    *frag.Mapping
	}{
		{"chain-4", workload.Chain(4)},
		{"paper-full", workload.PaperFull()},
		{"hubrim-tph", workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: true})},
	} {
		t.Run(wl.name, func(t *testing.T) {
			v := compileFor(t, wl.m)
			cs := orm.RandomState(wl.m, 31, 4)
			want, err := orm.Materialize(wl.m, v, cs)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}

			ring, err := orm.MaterializeInto(ctx, wl.m, v, cs, exec.Options{BatchSize: 3})
			if err != nil {
				t.Fatalf("materialize into ring: %v", err)
			}
			got, err := ring.Snapshot()
			if err != nil {
				t.Fatalf("ring snapshot: %v", err)
			}
			if d := state.DiffStore(want, got); d != "" {
				t.Fatalf("ring materialization differs:\n%s", d)
			}

			mapDst := exec.NewMapStore(state.NewStoreState())
			if err := orm.MaterializeStream(ctx, wl.m, v, cs, mapDst, exec.Options{}); err != nil {
				t.Fatalf("materialize into map store: %v", err)
			}
			if d := state.DiffStore(want, mapDst.S); d != "" {
				t.Fatalf("map materialization differs:\n%s", d)
			}
		})
	}
}

// TestLoadStreamEqualsLoad holds the streaming read path to Load.
func TestLoadStreamEqualsLoad(t *testing.T) {
	ctx := context.Background()
	for _, wl := range []struct {
		name string
		m    *frag.Mapping
	}{
		{"chain-4", workload.Chain(4)},
		{"paper-full", workload.PaperFull()},
		{"customer", workload.Customer(workload.DefaultCustomerOptions())},
	} {
		t.Run(wl.name, func(t *testing.T) {
			v := compileFor(t, wl.m)
			cs := orm.RandomState(wl.m, 37, 4)
			ss, err := orm.Materialize(wl.m, v, cs)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			want, err := orm.Load(wl.m, v, ss)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			got, err := orm.LoadStream(ctx, wl.m, v, exec.RingFromState(ss, 2), exec.Options{BatchSize: 2})
			if err != nil {
				t.Fatalf("load stream: %v", err)
			}
			if d := state.Diff(want, got); d != "" {
				t.Fatalf("streaming load differs:\n%s", d)
			}
		})
	}
}

// TestQueryTypeStreamedEqualsQueryType compares the per-type read paths
// entity-by-entity.
func TestQueryTypeStreamedEqualsQueryType(t *testing.T) {
	ctx := context.Background()
	m := workload.PaperFull()
	v := compileFor(t, m)
	cs := workload.PaperClientState()
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ring := exec.RingFromState(ss, 2)
	for ty := range v.Query {
		want, err := orm.QueryType(m, v, ss, ty)
		if err != nil {
			t.Fatalf("QueryType(%s): %v", ty, err)
		}
		got, err := orm.QueryTypeStreamed(ctx, m, v, ring, ty, exec.Options{BatchSize: 1})
		if err != nil {
			t.Fatalf("QueryTypeStreamed(%s): %v", ty, err)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: %d entities materializing, %d streaming", ty, len(want), len(got))
		}
		wantC := map[string]int{}
		for _, e := range want {
			wantC[e.Canonical()]++
		}
		for _, e := range got {
			wantC[e.Canonical()]--
		}
		for c, n := range wantC {
			if n != 0 {
				t.Fatalf("%s: entity multiset differs at %s (%+d)", ty, c, n)
			}
		}
	}
	if _, err := orm.QueryTypeStreamed(ctx, m, v, ring, "NoSuchType", exec.Options{}); err == nil {
		t.Fatal("QueryTypeStreamed accepted an unknown type")
	}
}

// TestEachEntityStopsOnCallbackError pins early termination: the
// callback's error surfaces and the stream shuts down cleanly.
func TestEachEntityStopsOnCallbackError(t *testing.T) {
	ctx := context.Background()
	m := workload.Chain(4)
	v := compileFor(t, m)
	cs := orm.RandomState(m, 41, 5)
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	var ty string
	for qt := range v.Query {
		ty = qt
		break
	}
	stop := errors.New("stop here")
	seen := 0
	err = orm.EachEntity(ctx, m, v, exec.RingFromState(ss, 2), ty, exec.Options{BatchSize: 1}, func(*state.Entity) error {
		seen++
		if seen == 2 {
			return stop
		}
		return nil
	})
	if total, _ := orm.QueryType(m, v, ss, ty); len(total) >= 2 {
		if !errors.Is(err, stop) {
			t.Fatalf("EachEntity returned %v, want the callback's error", err)
		}
		if seen != 2 {
			t.Fatalf("callback ran %d times after requesting stop at 2", seen)
		}
	} else if err != nil && !errors.Is(err, stop) {
		t.Fatalf("EachEntity over a small set returned %v", err)
	}
}
