package orm

import (
	"testing"
	"testing/quick"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// TestRoundtripPropertyPartitioned checks V ∘ Q = identity over random
// states of the §3.3 Adult/Young partitioned mapping, hammering the
// boundary value.
func TestRoundtripPropertyPartitioned(t *testing.T) {
	m := workload.PartitionedAgeModel()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	f := func(ages []int8, withName bool) bool {
		cs := state.NewClientState()
		for i, a := range ages {
			if i >= 8 {
				break
			}
			e := &state.Entity{Type: "Person", Attrs: state.Row{
				"Id": cond.Int(int64(i + 1)), "Age": cond.Int(int64(a))}}
			if withName && i%2 == 0 {
				e.Attrs["Name"] = cond.String("n")
			}
			cs.Insert("Persons", e)
		}
		return Roundtrip(m, views, cs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRoundtripPropertyGender does the same for the gender-constant
// mapping, where an attribute is reconstructed rather than stored.
func TestRoundtripPropertyGender(t *testing.T) {
	m := workload.GenderConstantModel()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	f := func(genders []bool) bool {
		cs := state.NewClientState()
		for i, g := range genders {
			if i >= 8 {
				break
			}
			val := "M"
			if g {
				val = "F"
			}
			cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
				"Id": cond.Int(int64(i + 1)), "Gender": cond.String(val)}})
		}
		return Roundtrip(m, views, cs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRoundtripPropertyHubRim generates random hub-and-rim instances,
// including association pairs, over both mapping styles.
func TestRoundtripPropertyHubRim(t *testing.T) {
	for _, tph := range []bool{false, true} {
		m := workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: tph})
		views, err := compiler.New().Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed uint32) bool {
			rnd := seed
			next := func() uint32 {
				rnd = rnd*1664525 + 1013904223
				return rnd
			}
			cs := state.NewClientState()
			id := int64(1)
			var hubs []int64 // ids of Hub1 entities (deepest hub level)
			var rims []int64 // ids of Rim1_0 entities
			for i := 0; i < int(next()%4); i++ {
				cs.Insert("Hubs", &state.Entity{Type: "Hub0", Attrs: state.Row{"Id": cond.Int(id)}})
				id++
			}
			for i := 0; i < int(next()%4); i++ {
				cs.Insert("Hubs", &state.Entity{Type: "Hub1", Attrs: state.Row{
					"Id": cond.Int(id), "H1": cond.String("x")}})
				hubs = append(hubs, id)
				id++
			}
			for i := 0; i < int(next()%4); i++ {
				cs.Insert("Hubs", &state.Entity{Type: "Rim1_0", Attrs: state.Row{
					"Id": cond.Int(id), "R1_0": cond.String("r")}})
				rims = append(rims, id)
				id++
			}
			// Each rim references at most one hub (the 0..1 end).
			for _, r := range rims {
				if len(hubs) > 0 && next()%2 == 0 {
					h := hubs[int(next())%len(hubs)]
					cs.Relate("A1_0", state.AssocPair{Ends: state.Row{
						"Rim1_0_Id": cond.Int(r), "Hub1_Id": cond.Int(h)}})
				}
			}
			return Roundtrip(m, views, cs) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("tph=%v: %v", tph, err)
		}
	}
}

// TestRoundtripPropertyIncrementalViews verifies the central theorem of
// the paper empirically: views evolved by the incremental compiler
// roundtrip random states exactly like fully compiled views do. (The
// incremental side is exercised in internal/core; here we pin the full
// compiler's TPH views, which the incremental path reuses as Q⁻.)
func TestRoundtripPropertyChain(t *testing.T) {
	m := workload.Chain(6)
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint32) bool {
		rnd := seed
		next := func() uint32 {
			rnd = rnd*1664525 + 1013904223
			return rnd
		}
		cs := state.NewClientState()
		ids := map[int][]int64{}
		id := int64(1)
		for level := 1; level <= 6; level++ {
			for i := 0; i < int(next()%3); i++ {
				cs.Insert(setName(level), &state.Entity{Type: tyName(level), Attrs: state.Row{
					"Id": cond.Int(id), "EntityAtt2": cond.String("a")}})
				ids[level] = append(ids[level], id)
				id++
			}
		}
		for level := 2; level <= 6; level++ {
			for _, child := range ids[level] {
				if len(ids[level-1]) > 0 && next()%2 == 0 {
					parent := ids[level-1][int(next())%len(ids[level-1])]
					cs.Relate(relName(level), state.AssocPair{Ends: state.Row{
						tyName(level) + "_Id":   cond.Int(child),
						tyName(level-1) + "_Id": cond.Int(parent),
					}})
				}
			}
		}
		return Roundtrip(m, views, cs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func tyName(i int) string  { return "Entity" + itoa(i) }
func setName(i int) string { return "Entity" + itoa(i) + "Set" }
func relName(i int) string { return "RelOne" + itoa(i) }

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
