package orm

import (
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/state"
)

// DB is an application-facing handle over a compiled mapping and an
// in-memory relational store. Reads go through query views (view
// unfolding); writes go through update views, the paper's direction of
// update translation.
type DB struct {
	mapping *frag.Mapping
	views   *frag.Views
	store   *state.StoreState
}

// Open creates an empty database for a compiled mapping.
func Open(m *frag.Mapping, views *frag.Views) *DB {
	return &DB{mapping: m, views: views, store: state.NewStoreState()}
}

// Mapping returns the database's mapping.
func (db *DB) Mapping() *frag.Mapping { return db.mapping }

// Views returns the database's compiled views.
func (db *DB) Views() *frag.Views { return db.views }

// Store exposes the raw relational state (for inspection and demos).
func (db *DB) Store() *state.StoreState { return db.store }

// Table returns a copy of a table's rows sorted canonically.
func (db *DB) Table(name string) []state.Row {
	rows := db.store.Tables[name]
	out := make([]state.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Canonical() < out[j].Canonical() })
	return out
}

// Load reads the full client state through the query views.
func (db *DB) Load() (*state.ClientState, error) {
	return Load(db.mapping, db.views, db.store)
}

// Save replaces the database contents with the given client state,
// translated through the update views.
func (db *DB) Save(cs *state.ClientState) error {
	ss, err := Materialize(db.mapping, db.views, cs)
	if err != nil {
		return err
	}
	db.store = ss
	return nil
}

// Update runs a read-modify-write transaction: the current client state is
// loaded, mutated by fn, and stored back. This exercises both view
// directions, so a non-roundtripping mapping would corrupt data here —
// which is exactly what mapping validation prevents.
func (db *DB) Update(fn func(cs *state.ClientState) error) error {
	cs, err := db.Load()
	if err != nil {
		return err
	}
	if err := fn(cs); err != nil {
		return err
	}
	return db.Save(cs)
}

// Query returns the entities visible through one entity type's view,
// optionally filtered.
func (db *DB) Query(entityType string, pred func(*state.Entity) bool) ([]*state.Entity, error) {
	ents, err := QueryType(db.mapping, db.views, db.store, entityType)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		return ents, nil
	}
	out := ents[:0]
	for _, e := range ents {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out, nil
}

// QueryWhere translates a client-side selection over an entity type into a
// store-side query by view unfolding (§1.1 of the paper): the condition —
// over the type's attribute names — is composed onto the type's query view
// and evaluated directly against the relational store, before entities are
// constructed. Type tests (IS OF) are not meaningful here; use the view of
// the type you want.
func (db *DB) QueryWhere(entityType string, c cond.Expr) ([]*state.Entity, error) {
	v, ok := db.views.Query[entityType]
	if !ok {
		return nil, fmt.Errorf("orm: no query view for type %s", entityType)
	}
	unfolded := &cqt.View{
		Q:     cqt.Select{In: v.Q, Cond: c},
		Cases: v.Cases,
	}
	env := &cqt.Env{Catalog: db.mapping.Catalog(), Store: db.store}
	return unfolded.ConstructEntities(env)
}

// Related returns the pairs of an association.
func (db *DB) Related(assoc string) ([]state.AssocPair, error) {
	cs, err := db.Load()
	if err != nil {
		return nil, err
	}
	return cs.Assocs[assoc], nil
}

// Insert adds one entity to a set (a read-modify-write convenience).
func (db *DB) Insert(set string, e *state.Entity) error {
	if db.mapping.Client.Set(set) == nil {
		return fmt.Errorf("orm: unknown entity set %q", set)
	}
	return db.Update(func(cs *state.ClientState) error {
		cs.Insert(set, e)
		return nil
	})
}

// Relate adds one association pair.
func (db *DB) Relate(assoc string, p state.AssocPair) error {
	if db.mapping.Client.Association(assoc) == nil {
		return fmt.Errorf("orm: unknown association %q", assoc)
	}
	return db.Update(func(cs *state.ClientState) error {
		cs.Relate(assoc, p)
		return nil
	})
}
