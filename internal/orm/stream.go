package orm

import (
	"context"
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/state"
)

// This file is the streaming half of the runtime: the same three
// operations as orm.go (materialize, load, per-type query) evaluated
// through internal/exec's pull iterators over a TableStore, instead of
// cqt.Eval over a fully materialized state.StoreState. The materializing
// path stays the semantic oracle; internal/difftest holds the two
// equal on random states.

// QueryTypeStream opens a streaming read of one entity type's query view
// over a table store. The caller owns the returned iterator and must
// Close it; entity batches are valid until the next pull.
func QueryTypeStream(ctx context.Context, m *frag.Mapping, views *frag.Views, ts exec.TableStore, entityType string, opts exec.Options) (*exec.EntityIter, error) {
	v, ok := views.Query[entityType]
	if !ok {
		return nil, fmt.Errorf("orm: no query view for type %s", entityType)
	}
	env := &exec.Env{Catalog: m.Catalog(), Store: ts}
	return exec.OpenView(ctx, env, v, exec.Strict, opts)
}

// EachEntity streams one entity type's query view through a callback,
// never holding more than a batch. Returning a non-nil error from the
// callback stops the stream and surfaces that error.
func EachEntity(ctx context.Context, m *frag.Mapping, views *frag.Views, ts exec.TableStore, entityType string, opts exec.Options, fn func(*state.Entity) error) error {
	it, err := QueryTypeStream(ctx, m, views, ts, entityType, opts)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		batch, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for _, e := range batch {
			if err := fn(e); err != nil {
				return err
			}
		}
	}
}

// QueryTypeStreamed drains a streaming per-type read into a slice — the
// streaming counterpart of QueryType, with identical results by
// construction (same views, shared constructor and selection theory).
func QueryTypeStreamed(ctx context.Context, m *frag.Mapping, views *frag.Views, ts exec.TableStore, entityType string, opts exec.Options) ([]*state.Entity, error) {
	it, err := QueryTypeStream(ctx, m, views, ts, entityType, opts)
	if err != nil {
		return nil, err
	}
	out := []*state.Entity{}
	defer it.Close()
	for {
		batch, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		for _, e := range batch {
			out = append(out, e)
		}
	}
}

// LoadStream pulls a client state out of a table store through the query
// views, streaming each view instead of materializing its relational
// result first. It is Load's streaming counterpart: same views, same
// output.
func LoadStream(ctx context.Context, m *frag.Mapping, views *frag.Views, ts exec.TableStore, opts exec.Options) (*state.ClientState, error) {
	env := &exec.Env{Catalog: m.Catalog(), Store: ts}
	cs := state.NewClientState()
	for _, set := range m.Client.Sets() {
		v, ok := views.Query[set.Type]
		if !ok {
			continue
		}
		it, err := exec.OpenView(ctx, env, v, exec.Strict, opts)
		if err != nil {
			return nil, fmt.Errorf("orm: query view for %s: %w", set.Type, err)
		}
		ents, err := exec.CollectEntities(it)
		if err != nil {
			return nil, fmt.Errorf("orm: query view for %s: %w", set.Type, err)
		}
		for _, e := range ents {
			cs.Insert(set.Name, e)
		}
	}
	for _, a := range m.Client.Associations() {
		v, ok := views.Assoc[a.Name]
		if !ok {
			continue
		}
		it, err := exec.Open(ctx, env, v.Q, opts)
		if err != nil {
			return nil, fmt.Errorf("orm: association view for %s: %w", a.Name, err)
		}
		res, err := exec.Collect(it)
		if err != nil {
			return nil, fmt.Errorf("orm: association view for %s: %w", a.Name, err)
		}
		for _, r := range res.Rows {
			cs.Relate(a.Name, state.AssocPair{Ends: r})
		}
	}
	return cs, nil
}

// MaterializeStream pushes a client state through the update views and
// appends the produced rows to the given store batch-at-a-time — the
// streaming counterpart of Materialize, writing into any Appender
// (a RingStore, a MapStore over a fresh state) instead of building a
// whole StoreState. Tables are evaluated in sorted name order; within a
// table, row order matches Materialize.
func MaterializeStream(ctx context.Context, m *frag.Mapping, views *frag.Views, cs *state.ClientState, dst exec.Appender, opts exec.Options) error {
	env := &exec.Env{Catalog: m.Catalog(), Client: cs}
	tables := make([]string, 0, len(views.Update))
	for table := range views.Update {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		it, err := exec.Open(ctx, env, views.Update[table].Q, opts)
		if err != nil {
			return fmt.Errorf("orm: update view for %s: %w", table, err)
		}
		for {
			batch, ok, err := it.Next()
			if err != nil {
				_ = it.Close()
				return fmt.Errorf("orm: update view for %s: %w", table, err)
			}
			if !ok {
				break
			}
			rows := make([]state.Row, len(batch))
			for i, t := range batch {
				rows[i] = t.Data
			}
			dst.Append(table, rows...)
		}
		if err := it.Close(); err != nil {
			return fmt.Errorf("orm: update view for %s: %w", table, err)
		}
	}
	return nil
}

// MaterializeInto materializes a client state into a fresh RingStore —
// the convenience entry for callers that want a streaming-readable store
// without ever building a map-backed StoreState.
func MaterializeInto(ctx context.Context, m *frag.Mapping, views *frag.Views, cs *state.ClientState, opts exec.Options) (*exec.RingStore, error) {
	rs := exec.NewRingStore(0)
	if err := MaterializeStream(ctx, m, views, cs, rs, opts); err != nil {
		return nil, err
	}
	return rs, nil
}

// StreamEnv builds the executor environment a compiled mapping's views
// run over — handy for callers dropping down to exec.Open directly.
func StreamEnv(m *frag.Mapping, ts exec.TableStore, cs *state.ClientState) *exec.Env {
	return &exec.Env{Catalog: m.Catalog(), Store: ts, Client: cs}
}
