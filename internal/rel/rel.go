// Package rel implements the store-side relational schema of the
// reproduction: tables with typed columns, primary keys and foreign keys,
// per §2 of Bernstein et al. (SIGMOD 2013). It also adapts tables to the
// condition-reasoning theory so store-side fragment conditions (χ in the
// paper's notation) can be analysed.
package rel

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
)

// Column is a table column.
type Column struct {
	Name     string
	Type     cond.Kind
	Nullable bool
	// Enum optionally restricts the column to a finite value set (used for
	// TPH discriminator columns).
	Enum []cond.Value
}

// Domain returns the column's condition-reasoning domain.
func (c Column) Domain() cond.Domain { return cond.Domain{Kind: c.Type, Enum: c.Enum} }

// ForeignKey maps columns of the owning table to the primary key of another
// table.
type ForeignKey struct {
	Name     string
	Cols     []string
	RefTable string
	RefCols  []string
}

// Table is a relational table definition.
type Table struct {
	Name string
	Cols []Column
	Key  []string
	FKs  []ForeignKey
}

// Col returns the named column, or ok == false.
func (t *Table) Col(name string) (Column, bool) {
	for _, c := range t.Cols {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// HasCol reports whether the table has the named column.
func (t *Table) HasCol(name string) bool {
	_, ok := t.Col(name)
	return ok
}

// ColNames returns the column names in declaration order.
func (t *Table) ColNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// IsKey reports whether the named column is part of the primary key.
func (t *Table) IsKey(name string) bool {
	for _, k := range t.Key {
		if k == name {
			return true
		}
	}
	return false
}

// Schema is a mutable relational schema. The zero value is empty and ready
// for use.
type Schema struct {
	tables map[string]*Table
	order  []string
}

// NewSchema returns an empty store schema.
func NewSchema() *Schema { return &Schema{tables: map[string]*Table{}} }

// AddTable adds a table definition.
func (s *Schema) AddTable(t Table) error {
	if t.Name == "" {
		return fmt.Errorf("rel: table with empty name")
	}
	if s.tables == nil {
		s.tables = map[string]*Table{}
	}
	if _, dup := s.tables[t.Name]; dup {
		return fmt.Errorf("rel: duplicate table %q", t.Name)
	}
	seen := map[string]bool{}
	for _, c := range t.Cols {
		if c.Name == "" {
			return fmt.Errorf("rel: table %q has a column with empty name", t.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("rel: table %q declares column %q twice", t.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if len(t.Key) == 0 {
		return fmt.Errorf("rel: table %q has no primary key", t.Name)
	}
	for _, k := range t.Key {
		c, ok := t.Col(k)
		if !ok {
			return fmt.Errorf("rel: table %q key column %q is not declared", t.Name, k)
		}
		if c.Nullable {
			return fmt.Errorf("rel: table %q key column %q must not be nullable", t.Name, k)
		}
	}
	cp := t
	cp.Cols = append([]Column(nil), t.Cols...)
	cp.Key = append([]string(nil), t.Key...)
	cp.FKs = append([]ForeignKey(nil), t.FKs...)
	s.tables[t.Name] = &cp
	s.order = append(s.order, t.Name)
	return nil
}

// AddForeignKey adds a foreign key to an existing table.
func (s *Schema) AddForeignKey(table string, fk ForeignKey) error {
	t, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("rel: unknown table %q", table)
	}
	if len(fk.Cols) == 0 || len(fk.Cols) != len(fk.RefCols) {
		return fmt.Errorf("rel: foreign key %q on %q has mismatched column lists", fk.Name, table)
	}
	for _, c := range fk.Cols {
		if !t.HasCol(c) {
			return fmt.Errorf("rel: foreign key %q references unknown column %q of %q", fk.Name, c, table)
		}
	}
	t = s.MutableTable(table)
	t.FKs = append(t.FKs, fk)
	return nil
}

// RemoveTable deletes a table. Tables referenced by other tables' foreign
// keys cannot be removed.
func (s *Schema) RemoveTable(name string) error {
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("rel: unknown table %q", name)
	}
	for _, t := range s.tables {
		if t.Name == name {
			continue
		}
		for _, fk := range t.FKs {
			if fk.RefTable == name {
				return fmt.Errorf("rel: table %q is referenced by foreign key %q of %q", name, fk.Name, t.Name)
			}
		}
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.tables[name] }

// Tables returns all tables in declaration order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.tables[n])
	}
	return out
}

// Validate checks referential well-formedness of all foreign keys.
func (s *Schema) Validate() error {
	for _, n := range s.order {
		t := s.tables[n]
		for _, fk := range t.FKs {
			ref, ok := s.tables[fk.RefTable]
			if !ok {
				return fmt.Errorf("rel: foreign key %q of %q references unknown table %q", fk.Name, t.Name, fk.RefTable)
			}
			if len(fk.RefCols) != len(ref.Key) {
				return fmt.Errorf("rel: foreign key %q of %q does not cover the key of %q", fk.Name, t.Name, fk.RefTable)
			}
			for i, rc := range fk.RefCols {
				if ref.Key[i] != rc {
					return fmt.Errorf("rel: foreign key %q of %q must reference the primary key of %q in order", fk.Name, t.Name, fk.RefTable)
				}
			}
			for i, c := range fk.Cols {
				cc, ok := t.Col(c)
				if !ok {
					return fmt.Errorf("rel: foreign key %q of %q uses unknown column %q", fk.Name, t.Name, c)
				}
				rc, _ := ref.Col(fk.RefCols[i])
				if cc.Type != rc.Type {
					return fmt.Errorf("rel: foreign key %q of %q: column %q kind mismatch", fk.Name, t.Name, c)
				}
			}
		}
	}
	return nil
}

// Clone returns a copy-on-write snapshot of the schema: the table map and
// declaration order are copied so each generation can add or remove tables
// privately, while the *Table entries are shared. Mutators that change a
// table in place first replace it with a private copy (see mutableTable),
// so a clone and its source never observe each other's changes.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		tables: make(map[string]*Table, len(s.tables)),
		order:  append(make([]string, 0, len(s.order)), s.order...),
	}
	for n, t := range s.tables {
		c.tables[n] = t
	}
	return c
}

// DeepClone returns a fully independent copy of the schema, sharing no
// structure with the receiver (the pre-CoW deep-copy semantics).
func (s *Schema) DeepClone() *Schema {
	c := NewSchema()
	for _, n := range s.order {
		t := *s.tables[n]
		t.Cols = append([]Column(nil), t.Cols...)
		t.Key = append([]string(nil), t.Key...)
		t.FKs = append([]ForeignKey(nil), t.FKs...)
		c.tables[n] = &t
		c.order = append(c.order, n)
	}
	return c
}

// MutableTable replaces the named table's entry with a private copy and
// returns it, or nil if the table does not exist. After Clone, entries are
// shared across generations; every caller that mutates a table in place —
// including column appends and discriminator-enum extensions — must go
// through this first, or the write tears the generation it was cloned
// from (and races with concurrent readers of that generation, such as a
// write-behind persist). Column enum slices are copied too, so appending
// a discriminator value never writes into a shared backing array.
func (s *Schema) MutableTable(name string) *Table {
	src, ok := s.tables[name]
	if !ok {
		return nil
	}
	t := *src
	t.Cols = append([]Column(nil), t.Cols...)
	for i := range t.Cols {
		t.Cols[i].Enum = append([]cond.Value(nil), t.Cols[i].Enum...)
	}
	t.Key = append([]string(nil), t.Key...)
	t.FKs = append([]ForeignKey(nil), t.FKs...)
	s.tables[name] = &t
	return &t
}

// TableTheory adapts one table to the condition-reasoning theory for
// single-subject store conditions (subject ""): the subject is untyped and
// attributes are the table's columns.
type TableTheory struct {
	Tab *Table
}

// TheoryFor returns a theory for conditions over the named table.
func (s *Schema) TheoryFor(table string) *TableTheory {
	return &TableTheory{Tab: s.Table(table)}
}

// ConcreteTypes implements cond.Theory: rows are untyped.
func (t *TableTheory) ConcreteTypes(string) []string { return nil }

// IsSubtype implements cond.Theory.
func (t *TableTheory) IsSubtype(string, string) bool { return false }

// Domain implements cond.Theory.
func (t *TableTheory) Domain(attr string) (cond.Domain, bool) {
	if t.Tab == nil {
		return cond.Domain{}, false
	}
	c, ok := t.Tab.Col(attr)
	if !ok {
		return cond.Domain{}, false
	}
	return c.Domain(), true
}

// Nullable implements cond.Theory.
func (t *TableTheory) Nullable(attr string) bool {
	if t.Tab == nil {
		return true
	}
	c, ok := t.Tab.Col(attr)
	if !ok {
		return true
	}
	return c.Nullable
}

// HasAttr implements cond.Theory.
func (t *TableTheory) HasAttr(string, string) bool { return true }
