package rel

import (
	"testing"

	"github.com/ormkit/incmap/internal/cond"
)

// paperStore builds the Fig. 1 store schema: HR(Id,Name), Emp(Id,Dept),
// Client(Cid,Eid,Name,Score,Addr) with FKs Emp.Id→HR.Id, Client.Eid→Emp.Id.
func paperStore(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddTable(Table{
		Name: "HR",
		Cols: []Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(s.AddTable(Table{
		Name: "Emp",
		Cols: []Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Dept", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
		FKs: []ForeignKey{{Name: "fk_emp_hr", Cols: []string{"Id"}, RefTable: "HR", RefCols: []string{"Id"}}},
	}))
	must(s.AddTable(Table{
		Name: "Client",
		Cols: []Column{
			{Name: "Cid", Type: cond.KindInt},
			{Name: "Eid", Type: cond.KindInt, Nullable: true},
			{Name: "Name", Type: cond.KindString, Nullable: true},
			{Name: "Score", Type: cond.KindInt, Nullable: true},
			{Name: "Addr", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Cid"},
		FKs: []ForeignKey{{Name: "fk_client_emp", Cols: []string{"Eid"}, RefTable: "Emp", RefCols: []string{"Id"}}},
	}))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableLookup(t *testing.T) {
	s := paperStore(t)
	hr := s.Table("HR")
	if hr == nil || len(hr.Cols) != 2 {
		t.Fatalf("Table(HR) = %+v", hr)
	}
	if c, ok := hr.Col("Name"); !ok || c.Type != cond.KindString || !c.Nullable {
		t.Errorf("Col(Name) = %+v, %v", c, ok)
	}
	if !hr.IsKey("Id") || hr.IsKey("Name") {
		t.Errorf("IsKey wrong")
	}
	if got := hr.ColNames(); len(got) != 2 || got[0] != "Id" {
		t.Errorf("ColNames = %v", got)
	}
	if len(s.Tables()) != 3 {
		t.Errorf("Tables() = %d", len(s.Tables()))
	}
}

func TestAddTableErrors(t *testing.T) {
	s := paperStore(t)
	if err := s.AddTable(Table{Name: "HR", Key: []string{"Id"}, Cols: []Column{{Name: "Id", Type: cond.KindInt}}}); err == nil {
		t.Errorf("duplicate table accepted")
	}
	if err := s.AddTable(Table{Name: "X", Cols: []Column{{Name: "A", Type: cond.KindInt}}}); err == nil {
		t.Errorf("keyless table accepted")
	}
	if err := s.AddTable(Table{Name: "X", Cols: []Column{{Name: "A", Type: cond.KindInt, Nullable: true}}, Key: []string{"A"}}); err == nil {
		t.Errorf("nullable key accepted")
	}
	if err := s.AddTable(Table{Name: "X", Cols: []Column{{Name: "A", Type: cond.KindInt}, {Name: "A", Type: cond.KindInt}}, Key: []string{"A"}}); err == nil {
		t.Errorf("duplicate column accepted")
	}
}

func TestValidateForeignKeys(t *testing.T) {
	s := paperStore(t)
	if err := s.AddForeignKey("Emp", ForeignKey{Name: "bad", Cols: []string{"Nope"}, RefTable: "HR", RefCols: []string{"Id"}}); err == nil {
		t.Errorf("FK with unknown column accepted")
	}
	if err := s.AddForeignKey("Emp", ForeignKey{Name: "bad2", Cols: []string{"Id"}, RefTable: "Ghost", RefCols: []string{"Id"}}); err != nil {
		t.Fatal(err) // structural check deferred to Validate
	}
	if err := s.Validate(); err == nil {
		t.Errorf("Validate accepted FK to unknown table")
	}
}

func TestRemoveTable(t *testing.T) {
	s := paperStore(t)
	if err := s.RemoveTable("HR"); err == nil {
		t.Errorf("removing a referenced table accepted")
	}
	if err := s.RemoveTable("Client"); err != nil {
		t.Fatal(err)
	}
	if s.Table("Client") != nil {
		t.Errorf("Client still present")
	}
}

func TestClone(t *testing.T) {
	s := paperStore(t)
	c := s.Clone()
	if err := c.AddTable(Table{Name: "New", Cols: []Column{{Name: "Id", Type: cond.KindInt}}, Key: []string{"Id"}}); err != nil {
		t.Fatal(err)
	}
	if s.Table("New") != nil {
		t.Errorf("clone not independent")
	}
}

func TestTableTheory(t *testing.T) {
	s := paperStore(t)
	th := s.TheoryFor("Client")
	if th.ConcreteTypes("") != nil {
		t.Errorf("rows must be untyped")
	}
	if th.Nullable("Cid") {
		t.Errorf("key column must not be nullable")
	}
	if !th.Nullable("Eid") {
		t.Errorf("Eid must be nullable")
	}
	// Eid IS NOT NULL AND Eid IS NULL is unsatisfiable.
	bad := cond.NewAnd(cond.NotNull("Eid"), cond.Null{Attr: "Eid"})
	if cond.Satisfiable(th, bad) {
		t.Errorf("contradictory null conditions satisfiable")
	}
	// A positive IS OF over rows is unsatisfiable.
	if cond.Satisfiable(th, cond.TypeIs{Type: "Person"}) {
		t.Errorf("IS OF over rows must be unsatisfiable")
	}
}

func TestDiscriminatorEnumTheory(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(Table{
		Name: "All",
		Cols: []Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Disc", Type: cond.KindString, Enum: []cond.Value{cond.String("A"), cond.String("B")}},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	th := s.TheoryFor("All")
	split := cond.NewOr(
		cond.Cmp{Attr: "Disc", Op: cond.OpEq, Val: cond.String("A")},
		cond.Cmp{Attr: "Disc", Op: cond.OpEq, Val: cond.String("B")},
	)
	if !cond.Tautology(th, split) {
		t.Errorf("discriminator split over its enum must be a tautology")
	}
}
