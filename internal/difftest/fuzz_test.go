// Package difftest cross-checks the two compilation paths of the fallback
// ladder against each other: a sequence of planned SMOs is applied once
// through the incremental compiler (validate + adapt views) and once
// through structural application followed by a full compilation. Whenever
// the incremental path accepts the sequence, the full path must accept it
// too, and the two resulting view sets must be semantically equal: they
// materialize a random client state to the same store state, and both
// satisfy the roundtripping property V ∘ Q = identity. Divergence is a bug
// in one of the compilers — exactly the class of defect §3 of the paper's
// incremental adaptation rules can introduce.
package difftest

import (
	"context"
	"fmt"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// maxOps bounds the SMO sequence length per fuzz input; each op consumes
// two bytes of the op stream.
const maxOps = 4

// opSpec is one decoded SMO request. Decoding is independent of any
// mapping so both differential paths plan from identical specs.
type opSpec struct {
	kind   byte // 0 add-entity, 1 add-association, 2 add-property
	style  modef.Style
	target string // parent type / property target / association end 1
	other  string // association end 2
	jt     bool   // many-to-many association (join table)
	idx    int    // position in the sequence, for unique names
}

func fzEntityName(idx int) string { return fmt.Sprintf("FzEntity%d", idx) }

// buildWorkload constructs the base mapping for a fuzz input, plus the
// list of client types ops may reference. Each call builds a fresh,
// fully independent mapping: the SMO planner mutates the store schema of
// the mapping it plans against, so the two differential paths must never
// share one.
func buildWorkload(wl, size byte) (*frag.Mapping, []string, error) {
	switch wl % 3 {
	case 0:
		n := 2 + int(size)%4
		m, err := workload.ChainE(n)
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, n)
		for i := 1; i <= n; i++ {
			names[i-1] = fmt.Sprintf("Entity%d", i)
		}
		return m, names, nil
	default:
		opt := workload.HubRimOptions{
			N:   1 + int(size)%3,
			M:   int(size/4) % 3,
			TPH: wl%3 == 1,
		}
		m, err := workload.HubRimE(opt)
		if err != nil {
			return nil, nil, err
		}
		var names []string
		for i := 0; i < opt.N; i++ {
			names = append(names, fmt.Sprintf("Hub%d", i))
			for j := 0; j < opt.M; j++ {
				names = append(names, fmt.Sprintf("Rim%d_%d", i, j))
			}
		}
		return m, names, nil
	}
}

// decodeOps turns the raw op stream into specs. Entity types added by
// earlier ops become candidate targets for later ones, so sequences can
// build on their own additions.
func decodeOps(opBytes []byte, baseTypes []string) []opSpec {
	types := append([]string(nil), baseTypes...)
	styles := []modef.Style{modef.TPT, modef.TPC, modef.TPH}
	var specs []opSpec
	for i := 0; i+1 < len(opBytes) && len(specs) < maxOps; i += 2 {
		k, p := opBytes[i], opBytes[i+1]
		idx := len(specs)
		pick := func(b byte) string { return types[int(b)%len(types)] }
		switch k % 3 {
		case 0:
			specs = append(specs, opSpec{
				kind: 0, style: styles[int(k/3)%3], target: pick(p), idx: idx,
			})
			types = append(types, fzEntityName(idx))
		case 1:
			specs = append(specs, opSpec{
				kind: 1, target: pick(p), other: pick(p >> 4), jt: k&0x80 != 0, idx: idx,
			})
		default:
			specs = append(specs, opSpec{kind: 2, target: pick(p), idx: idx})
		}
	}
	return specs
}

// planOp synthesises the SMO for one spec against the given mapping,
// extending its store schema with the tables and columns the op needs —
// the planning side of the "directive" in §1.2. It must be called on each
// path's own mapping so both store schemas evolve identically.
func planOp(m *frag.Mapping, sp opSpec) (core.SMO, error) {
	switch sp.kind {
	case 0:
		attrs := []edm.Attribute{{Name: fmt.Sprintf("FzAtt%d", sp.idx), Type: cond.KindString, Nullable: true}}
		return modef.PlanAddEntityWithStyle(m, fzEntityName(sp.idx), sp.target, attrs, sp.style)
	case 1:
		name := fmt.Sprintf("FzAssoc%d", sp.idx)
		if sp.jt {
			return modef.PlanAddAssociation(m, name, sp.target, sp.other, edm.Many, edm.Many)
		}
		return modef.PlanAddAssociation(m, name, sp.target, sp.other, edm.Many, edm.ZeroOne)
	default:
		table := fmt.Sprintf("T_FzProp%d", sp.idx)
		if err := m.Store.AddTable(rel.Table{
			Name: table,
			Cols: []rel.Column{
				{Name: "Id", Type: cond.KindInt},
				{Name: "Val", Type: cond.KindString, Nullable: true},
			},
			Key: []string{"Id"},
		}); err != nil {
			return nil, err
		}
		return &core.AddProperty{
			Type:  sp.target,
			Attr:  edm.Attribute{Name: fmt.Sprintf("FzProp%d", sp.idx), Type: cond.KindString, Nullable: true},
			Table: table, Col: "Val",
		}, nil
	}
}

// runDifferential executes one fuzz input. Inputs the incremental path
// cannot plan or apply are skipped — the fuzzer's job is to find
// sequences both paths accept but disagree on, not to exercise error
// paths. Once the incremental path succeeds, any failure or divergence on
// the full path is a real bug.
func runDifferential(t *testing.T, wl, size byte, opBytes []byte, stateSeed uint32) {
	t.Helper()
	if len(opBytes) > 2*maxOps {
		opBytes = opBytes[:2*maxOps]
	}
	ctx := context.Background()

	m, baseTypes, err := buildWorkload(wl, size)
	if err != nil {
		t.Skip("workload parameters rejected")
	}
	specs := decodeOps(opBytes, baseTypes)
	if len(specs) == 0 {
		t.Skip("no ops decoded")
	}

	// Incremental path: validate and adapt views one SMO at a time.
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(ctx, m)
	if err != nil {
		t.Fatalf("base workload (wl=%d size=%d) failed to compile: %v", wl, size, err)
	}
	descs := make([]string, 0, len(specs))
	for _, sp := range specs {
		op, perr := planOp(m, sp)
		if perr != nil {
			t.Skipf("planning rejected: %v", perr)
		}
		descs = append(descs, op.Describe())
		ic := core.NewIncremental()
		nm, nv, aerr := ic.ApplyCtx(ctx, m, v, op)
		if aerr != nil {
			t.Skipf("incremental apply rejected %s: %v", op.Describe(), aerr)
		}
		m, v = nm, nv
	}

	// Full path: structural application (no neighbourhood validation),
	// then one full compilation — the fallback rung of the ladder.
	fm, _, err := buildWorkload(wl, size)
	if err != nil {
		t.Fatalf("rebuilding base workload: %v", err)
	}
	fc := &compiler.Compiler{}
	fv, err := fc.CompileCtx(ctx, fm)
	if err != nil {
		t.Fatalf("recompiling base workload: %v", err)
	}
	for i, sp := range specs {
		op, perr := planOp(fm, sp)
		if perr != nil {
			t.Fatalf("full path could not plan %s though the incremental path did: %v", descs[i], perr)
		}
		if d := op.Describe(); d != descs[i] {
			t.Fatalf("paths planned different SMOs at step %d: %q vs %q", i, descs[i], d)
		}
		sic := core.NewIncremental()
		sic.Opts.SkipValidation = true
		nm, nv, aerr := sic.ApplyCtx(ctx, fm, fv, op)
		if aerr != nil {
			t.Fatalf("structural apply of %s failed though incremental apply succeeded: %v", descs[i], aerr)
		}
		fm, fv = nm, nv
	}
	full := &compiler.Compiler{}
	fullViews, cerr := full.CompileCtx(ctx, fm)
	if cerr != nil {
		t.Fatalf("full compilation rejected a mapping the incremental compiler accepted (ops %v): %v", descs, cerr)
	}

	// Semantic comparison: both view sets must materialize the same random
	// client state to the same store state, and both must roundtrip it.
	cs := orm.RandomState(m, stateSeed, 3)
	ssInc, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatalf("materializing through incremental views: %v", err)
	}
	ssFull, err := orm.Materialize(fm, fullViews, cs)
	if err != nil {
		t.Fatalf("materializing through full-compile views: %v", err)
	}
	if d := state.DiffStore(ssInc, ssFull); d != "" {
		t.Fatalf("incremental and full compilation materialize differently after ops %v (seed %d):\n%s", descs, stateSeed, d)
	}
	if err := orm.Roundtrip(m, v, cs); err != nil {
		t.Fatalf("incremental views do not roundtrip after ops %v: %v", descs, err)
	}
	if err := orm.Roundtrip(fm, fullViews, cs); err != nil {
		t.Fatalf("full-compile views do not roundtrip after ops %v: %v", descs, err)
	}
}

// FuzzSMOSequence is the native fuzz target. Bytes decode to (workload,
// size, SMO sequence, state seed); see runDifferential for the oracle.
func FuzzSMOSequence(f *testing.F) {
	// The in-code seeds mirror testdata/fuzz/FuzzSMOSequence and cover
	// every op kind and both workload families.
	f.Add(byte(0), byte(2), []byte{0, 0, 0, 1}, uint32(1))           // chain: AE-TPT ×2
	f.Add(byte(0), byte(1), []byte{6, 0, 2, 0}, uint32(7))           // chain: AE-TPH, AP
	f.Add(byte(0), byte(3), []byte{1, 0x21, 0x85, 0x43}, uint32(3))  // chain: AA-FK, AA-JT
	f.Add(byte(1), byte(2), []byte{0, 0, 2, 1}, uint32(5))           // hub-rim TPH: AE-TPT, AP
	f.Add(byte(2), byte(5), []byte{0, 1, 1, 0x10}, uint32(9))        // hub-rim TPT: AE-TPT, AA-FK
	f.Add(byte(0), byte(2), []byte{0, 0, 2, 4, 1, 0x40}, uint32(11)) // chain: AE then AP+AA on the new type
	f.Fuzz(func(t *testing.T, wl, size byte, opBytes []byte, stateSeed uint32) {
		runDifferential(t, wl, size, opBytes, stateSeed)
	})
}

// TestDifferentialSeeds runs the seed corpus as ordinary tests, so plain
// `go test` exercises the differential oracle without -fuzz.
func TestDifferentialSeeds(t *testing.T) {
	cases := []struct {
		name   string
		wl, sz byte
		ops    []byte
		seed   uint32
	}{
		{"chain-add-entities", 0, 2, []byte{0, 0, 0, 1}, 1},
		{"chain-tph-and-prop", 0, 1, []byte{6, 0, 2, 0}, 7},
		{"chain-associations", 0, 3, []byte{1, 0x21, 0x85, 0x43}, 3},
		{"hubrim-tph", 1, 2, []byte{0, 0, 2, 1}, 5},
		{"hubrim-tpt", 2, 5, []byte{0, 1, 1, 0x10}, 9},
		{"chain-build-on-new", 0, 2, []byte{0, 0, 2, 4, 1, 0x40}, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runDifferential(t, tc.wl, tc.sz, tc.ops, tc.seed)
		})
	}
}
