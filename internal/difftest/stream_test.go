package difftest

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// Differential testing of the streaming executor: random client states
// over the chain / hub-rim / customer / paper workload families, every
// compiled view evaluated once through the materializing ORM path
// (cqt.Eval, orm.Materialize, orm.QueryType) and once through the
// streaming executor over a segmented RingStore, compared as multisets.
// The materializing path is the oracle; any divergence is an executor
// bug and gets a pinned regression test below.

// buildStreamWorkload maps two fuzz bytes onto a workload family and
// size. Unlike buildWorkload it includes the fixed paper and customer
// mappings — the streaming differential has no SMO stream, so heavier
// workloads stay cheap enough to fuzz.
func buildStreamWorkload(wl, size byte) (*frag.Mapping, error) {
	switch wl % 5 {
	case 0:
		return workload.ChainE(2 + int(size)%5)
	case 1:
		return workload.HubRimE(workload.HubRimOptions{N: 1 + int(size)%3, M: int(size/4) % 3, TPH: true})
	case 2:
		return workload.HubRimE(workload.HubRimOptions{N: 1 + int(size)%3, M: int(size/4) % 3})
	case 3:
		return workload.PaperFullE()
	default:
		// A scaled-down customer model: the full 230-type default takes
		// ~10s to compile, which trips the fuzz engine's per-input hang
		// detection. This keeps the TPT+TPH+shared-FK structure.
		return workload.CustomerE(workload.CustomerOptions{
			Types:          20 + int(size)%12,
			Hierarchies:    4,
			LargestTPH:     8,
			Associations:   4,
			SharedTableFKs: 1,
		})
	}
}

// runStreamDifferential is the oracle for one fuzz input.
func runStreamDifferential(t *testing.T, wl, size byte, stateSeed uint32, batch byte) {
	t.Helper()
	ctx := context.Background()
	m, err := buildStreamWorkload(wl, size)
	if err != nil {
		t.Skip("workload parameters rejected")
	}
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(ctx, m)
	if err != nil {
		t.Fatalf("workload (wl=%d size=%d) failed to compile: %v", wl, size, err)
	}
	cs := orm.RandomState(m, stateSeed, 4)
	opts := exec.Options{BatchSize: 1 + int(batch)%64}

	// Write path: streaming materialization into a ring store must equal
	// the materializing path row-for-row per table (as multisets).
	want, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ring, err := orm.MaterializeInto(ctx, m, v, cs, opts)
	if err != nil {
		t.Fatalf("streaming materialize: %v", err)
	}
	got, err := ring.Snapshot()
	if err != nil {
		t.Fatalf("ring snapshot: %v", err)
	}
	if d := state.DiffStore(want, got); d != "" {
		t.Fatalf("streaming materialization diverges (wl=%d size=%d seed=%d batch=%d):\n%s",
			wl, size, stateSeed, batch, d)
	}

	// Read path: every query view, materializing vs streaming, as entity
	// multisets; then the whole client state through LoadStream.
	for ty := range v.Query {
		wantEnts, err := orm.QueryType(m, v, want, ty)
		if err != nil {
			t.Fatalf("QueryType(%s): %v", ty, err)
		}
		gotEnts, err := orm.QueryTypeStreamed(ctx, m, v, ring, ty, opts)
		if err != nil {
			t.Fatalf("QueryTypeStreamed(%s): %v", ty, err)
		}
		if d := diffEntityMultiset(wantEnts, gotEnts); d != "" {
			t.Fatalf("query view %s diverges (wl=%d size=%d seed=%d batch=%d): %s",
				ty, wl, size, stateSeed, batch, d)
		}
	}
	wantCS, err := orm.Load(m, v, want)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	gotCS, err := orm.LoadStream(ctx, m, v, ring, opts)
	if err != nil {
		t.Fatalf("streaming load: %v", err)
	}
	if d := state.Diff(wantCS, gotCS); d != "" {
		t.Fatalf("streaming load diverges (wl=%d size=%d seed=%d batch=%d):\n%s",
			wl, size, stateSeed, batch, d)
	}

	// Relational layer: every compiled expression (update and association
	// views included) through cqt.Eval vs exec.Collect.
	matEnv := &cqt.Env{Catalog: m.Catalog(), Client: cs, Store: want}
	execEnv := &exec.Env{Catalog: m.Catalog(), Store: ring, Client: cs}
	check := func(kind, name string, q cqt.Expr) {
		res, err := cqt.Eval(matEnv, q)
		if err != nil {
			t.Fatalf("%s view %s: eval: %v", kind, name, err)
		}
		it, err := exec.Open(ctx, execEnv, q, opts)
		if err != nil {
			t.Fatalf("%s view %s: open: %v", kind, name, err)
		}
		sres, err := exec.Collect(it)
		if err != nil {
			t.Fatalf("%s view %s: collect: %v", kind, name, err)
		}
		if d := diffRowMultiset(res.Rows, sres.Rows); d != "" {
			t.Fatalf("%s view %s diverges (wl=%d size=%d seed=%d batch=%d): %s",
				kind, name, wl, size, stateSeed, batch, d)
		}
	}
	for table, view := range v.Update {
		check("update", table, view.Q)
	}
	for assoc, view := range v.Assoc {
		check("assoc", assoc, view.Q)
	}
}

func diffRowMultiset(want, got []state.Row) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d rows materializing, %d streaming", len(want), len(got))
	}
	a := make([]string, len(want))
	b := make([]string, len(got))
	for i := range want {
		a[i], b[i] = want[i].Canonical(), got[i].Canonical()
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("row multiset differs: %q vs %q", a[i], b[i])
		}
	}
	return ""
}

func diffEntityMultiset(want, got []*state.Entity) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d entities materializing, %d streaming", len(want), len(got))
	}
	a := make([]string, len(want))
	b := make([]string, len(got))
	for i := range want {
		a[i], b[i] = want[i].Canonical(), got[i].Canonical()
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("entity multiset differs: %q vs %q", a[i], b[i])
		}
	}
	return ""
}

// FuzzExecVsMaterialize is the native fuzz target: bytes decode to
// (workload family, size, state seed, batch size).
func FuzzExecVsMaterialize(f *testing.F) {
	// In-code seeds mirror testdata/fuzz/FuzzExecVsMaterialize and cover
	// every workload family and awkward batch sizes.
	f.Add(byte(0), byte(2), uint32(1), byte(0))   // chain, batch 1
	f.Add(byte(0), byte(4), uint32(9), byte(2))   // longer chain, batch 3
	f.Add(byte(1), byte(5), uint32(3), byte(1))   // hub-rim TPH
	f.Add(byte(2), byte(6), uint32(5), byte(7))   // hub-rim TPT
	f.Add(byte(3), byte(0), uint32(7), byte(30))  // paper full
	f.Add(byte(4), byte(0), uint32(11), byte(63)) // customer TPH+TPT mix
	f.Fuzz(func(t *testing.T, wl, size byte, stateSeed uint32, batch byte) {
		runStreamDifferential(t, wl, size, stateSeed, batch)
	})
}

// TestExecDiffSeeds runs the streaming seed corpus as ordinary tests, so
// plain `go test` exercises the executor differential without -fuzz.
func TestExecDiffSeeds(t *testing.T) {
	cases := []struct {
		name  string
		wl    byte
		sz    byte
		seed  uint32
		batch byte
	}{
		{"chain-batch1", 0, 2, 1, 0},
		{"chain-long", 0, 4, 9, 2},
		{"hubrim-tph", 1, 5, 3, 1},
		{"hubrim-tpt", 2, 6, 5, 7},
		{"paper-full", 3, 0, 7, 30},
		{"customer", 4, 0, 11, 63},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runStreamDifferential(t, tc.wl, tc.sz, tc.seed, tc.batch)
		})
	}
}

// TestExecDiffRegressions pins inputs that found (or nearly found) real
// divergences while the executor was built: full-outer join tails over
// multi-segment rings, and single-row batches straddling every segment
// boundary of the paper workload.
func TestExecDiffRegressions(t *testing.T) {
	cases := []struct {
		name  string
		wl    byte
		sz    byte
		seed  uint32
		batch byte
	}{
		// Paper workload at batch 1: every join build/probe boundary and
		// union input straddles a batch edge.
		{"paper-batch1", 3, 0, 2, 0},
		// Hub-rim TPT with zero rims compiles degenerate joins.
		{"hubrim-no-rims", 2, 0, 13, 0},
		// Chain of 2 at large batch: single-batch fast path.
		{"chain-single-batch", 0, 0, 17, 63},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runStreamDifferential(t, tc.wl, tc.sz, tc.seed, tc.batch)
		})
	}
}
