// Package store is the content-addressed persistent compile cache: an
// on-disk directory of compilation artifacts that lets a new process warm
// start instead of recompiling from scratch. Three artifact classes are
// kept:
//
//   - compiled generations: a (mapping, views) pair keyed by a fingerprint
//     of the mapping's full content plus the format version, so a store
//     entry can never be served to a model it was not compiled from;
//   - SatCache snapshots: solver verdicts and learned CDCL lemmas, whose
//     keys are content-addressed (internal/cond) and therefore portable
//     across processes by construction.
//
// Durability model: every artifact is one JSON record wrapped in a
// checksummed envelope, written to a temp file in the same directory and
// atomically renamed into place — a crash mid-write leaves either the old
// record or a stray temp file, never a torn visible record. Reads verify
// the format version, the artifact class, the fingerprint and the checksum
// before decoding the payload; any mismatch, truncation or decode failure
// makes the load fail cleanly, which callers treat as a cold start. The
// store never makes correctness worse — it can only save work, not change
// results.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sync"
	"sync/atomic"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/obsv"
)

// FormatVersion gates every record: bump it whenever the payload encoding,
// the condition content-address scheme, or the cache key format changes
// incompatibly. Records from other versions are ignored (cold start), never
// migrated in place.
const FormatVersion = 1

// DefaultMaxGenerations bounds how many compiled generations a store keeps;
// older files (by modification time) are pruned on save.
const DefaultMaxGenerations = 32

// Artifact classes.
const (
	classGeneration = "generation"
	classSatCache   = "satcache"
	classManifest   = "manifest"
)

// Store is a handle on one cache directory. Safe for concurrent use within
// a process; concurrent writers in different processes are safe against
// corruption (atomic renames) though last-writer-wins per file.
type Store struct {
	dir string
	// MaxGenerations bounds resident generation files; zero means
	// DefaultMaxGenerations.
	MaxGenerations int

	mu sync.Mutex // serializes save+prune cycles

	hits, misses, evictions atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// Stats is a snapshot of one store's traffic counters. The same counts
// aggregate process-wide in the obsv registry under store.*.
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns this store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Evictions:    s.evictions.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

func (s *Store) hit()  { s.hits.Add(1); obsv.Add(obsv.MStoreHits, 1) }
func (s *Store) miss() { s.misses.Add(1); obsv.Add(obsv.MStoreMisses, 1) }

// Fingerprint computes the content address of a compiled generation: a
// hash of the mapping's canonical serialized form, the format version, and
// any extra strings that influenced compilation (e.g. compiler option
// flags). Two processes compiling the same model the same way compute the
// same fingerprint; any model or option change misses.
func Fingerprint(m *frag.Mapping, extras ...string) (string, error) {
	var buf bytes.Buffer
	if err := modelio.Encode(&buf, m); err != nil {
		return "", fmt.Errorf("store: fingerprint: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "incmap-gen:%d:", FormatVersion)
	h.Write(buf.Bytes())
	for _, e := range extras {
		fmt.Fprintf(h, ":%d:%s", len(e), e)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// record is the on-disk envelope of every artifact.
type record struct {
	Version     int             `json:"version"`
	Class       string          `json:"class"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Payload     json.RawMessage `json:"payload"`
	Checksum    string          `json:"sha256"`
}

// checksumOf binds the payload to its envelope fields, so a record cannot
// be truncated, bit-flipped, or spliced into another class/fingerprint/
// version without detection.
func checksumOf(version int, class, fp string, payload []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "incmap-store:%d:%s:%s:", version, class, fp)
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// writeRecord persists one artifact crash-safely: temp file in the target
// directory, fsync, atomic rename.
func (s *Store) writeRecord(name, class, fp string, payload []byte) error {
	rec := record{
		Version:     FormatVersion,
		Class:       class,
		Fingerprint: fp,
		Payload:     payload,
		Checksum:    checksumOf(FormatVersion, class, fp, payload),
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if ferr := faultinject.At(faultinject.SiteStoreSave); ferr != nil {
		if !faultinject.IsCorrupt(ferr) {
			return fmt.Errorf("store: %w", ferr)
		}
		// Simulated short write: the visible record ends up truncated, as
		// a torn write would leave it, and the write still reports
		// success. The next read rejects it on the checksum and the
		// caller degrades to a cold compile.
		data = data[:len(data)/2]
	}
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.bytesWritten.Add(int64(len(data)))
	obsv.Add(obsv.MStoreBytesWritten, int64(len(data)))
	return nil
}

// readRecord loads and verifies one artifact. Every failure mode —
// missing file, truncation, bit flip, wrong version, wrong class, wrong
// fingerprint — returns an error; callers degrade to a cold start.
func (s *Store) readRecord(name, class, fp string) (json.RawMessage, error) {
	if ferr := faultinject.At(faultinject.SiteStoreLoad); ferr != nil {
		return nil, fmt.Errorf("store: %w", ferr)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.bytesRead.Add(int64(len(data)))
	obsv.Add(obsv.MStoreBytesRead, int64(len(data)))
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("store: %s: corrupt record: %w", name, err)
	}
	if rec.Version != FormatVersion {
		return nil, fmt.Errorf("store: %s: format version %d, want %d", name, rec.Version, FormatVersion)
	}
	if rec.Class != class {
		return nil, fmt.Errorf("store: %s: class %q, want %q", name, rec.Class, class)
	}
	if rec.Fingerprint != fp {
		return nil, fmt.Errorf("store: %s: fingerprint mismatch", name)
	}
	if rec.Checksum != checksumOf(rec.Version, rec.Class, rec.Fingerprint, rec.Payload) {
		return nil, fmt.Errorf("store: %s: checksum mismatch", name)
	}
	return rec.Payload, nil
}

// genPayload is the payload of a compiled generation: the mapping in its
// document form and the views in their structural form.
type genPayload struct {
	Mapping json.RawMessage `json:"mapping"`
	Views   json.RawMessage `json:"views"`
}

func genFileName(fp string) string { return "gen-" + fp + ".json" }

// SaveGeneration persists a compiled (mapping, views) pair under its
// fingerprint and prunes generations beyond the cap.
func (s *Store) SaveGeneration(fp string, m *frag.Mapping, v *frag.Views) error {
	var mb, vb bytes.Buffer
	if err := modelio.Encode(&mb, m); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := modelio.EncodeViews(&vb, v); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	payload, err := json.Marshal(&genPayload{Mapping: mb.Bytes(), Views: vb.Bytes()})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeRecord(genFileName(fp), classGeneration, fp, payload); err != nil {
		return err
	}
	s.pruneGenerationsLocked()
	return nil
}

// LoadGeneration restores the compiled pair for a fingerprint. The decoded
// mapping passes the full modelio validation and the views are re-interned
// through the cond constructors, so a loaded generation is semantically
// indistinguishable from a freshly compiled one.
func (s *Store) LoadGeneration(fp string) (*frag.Mapping, *frag.Views, error) {
	payload, err := s.readRecord(genFileName(fp), classGeneration, fp)
	if err != nil {
		s.miss()
		return nil, nil, err
	}
	var gp genPayload
	if err := json.Unmarshal(payload, &gp); err != nil {
		s.miss()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	m, err := modelio.Decode(bytes.NewReader(gp.Mapping))
	if err != nil {
		s.miss()
		return nil, nil, fmt.Errorf("store: generation mapping: %w", err)
	}
	v, err := modelio.DecodeViews(bytes.NewReader(gp.Views))
	if err != nil {
		s.miss()
		return nil, nil, fmt.Errorf("store: generation views: %w", err)
	}
	s.hit()
	return m, v, nil
}

// HasGeneration reports whether a (verifiable) generation record exists
// for the fingerprint, without decoding the payload.
func (s *Store) HasGeneration(fp string) bool {
	_, err := s.readRecord(genFileName(fp), classGeneration, fp)
	return err == nil
}

// pruneGenerationsLocked deletes the oldest generation files past the cap.
func (s *Store) pruneGenerationsLocked() {
	max := s.MaxGenerations
	if max <= 0 {
		max = DefaultMaxGenerations
	}
	matches, err := filepath.Glob(filepath.Join(s.dir, "gen-*.json"))
	if err != nil || len(matches) <= max {
		return
	}
	type aged struct {
		path string
		mod  int64
	}
	files := make([]aged, 0, len(matches))
	for _, p := range matches {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		files = append(files, aged{p, fi.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for i := 0; i < len(files)-max; i++ {
		if os.Remove(files[i].path) == nil {
			s.evictions.Add(1)
			obsv.Add(obsv.MStoreEvictions, 1)
		}
	}
}

const satCacheFile = "satcache.json"

// SaveSatCache persists a SatCache snapshot — verdicts plus learned
// lemmas. SatCache keys embed content addresses and schema facts only, so
// no fingerprint is needed: a key is valid exactly for the (expression,
// theory) pair it encodes, whatever model it came from.
func (s *Store) SaveSatCache(c *cond.SatCache) error {
	payload, err := json.Marshal(c.Export())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeRecord(satCacheFile, classSatCache, "", payload)
}

// LoadSatCache merges the persisted snapshot into the given cache.
// Verdicts arriving this way are marked persisted, so warm-start traffic
// is observable via SatCacheStats.PersistedHits.
func (s *Store) LoadSatCache(c *cond.SatCache) error {
	payload, err := s.readRecord(satCacheFile, classSatCache, "")
	if err != nil {
		s.miss()
		return err
	}
	var snap cond.SatSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		s.miss()
		return fmt.Errorf("store: satcache: %w", err)
	}
	c.Import(&snap)
	s.hit()
	return nil
}

// manifestFileName maps a manifest name to its record file. Names are
// restricted to a filesystem-safe alphabet by validManifestName.
func manifestFileName(name string) string { return "manifest-" + name + ".json" }

func validManifestName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// SaveManifest persists an opaque named payload — e.g. the serving
// daemon's tenant table — with the same checksummed crash-safe envelope as
// every other artifact. The name keys the record: a manifest can only be
// read back under the name it was saved with.
func (s *Store) SaveManifest(name string, payload []byte) error {
	if !validManifestName(name) {
		return fmt.Errorf("store: invalid manifest name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeRecord(manifestFileName(name), classManifest, name, payload)
}

// LoadManifest restores a named manifest payload. Any damage — truncation,
// checksum mismatch, wrong name — fails the load cleanly; callers treat a
// failed manifest like an empty one.
func (s *Store) LoadManifest(name string) ([]byte, error) {
	if !validManifestName(name) {
		return nil, fmt.Errorf("store: invalid manifest name %q", name)
	}
	payload, err := s.readRecord(manifestFileName(name), classManifest, name)
	if err != nil {
		s.miss()
		return nil, err
	}
	s.hit()
	return payload, nil
}

// DeleteManifest removes a named manifest. Deleting a manifest that does
// not exist is not an error: the rollout engine retires checkpoints with
// best-effort idempotent deletes so a crash between deletes is harmless.
func (s *Store) DeleteManifest(name string) error {
	if !validManifestName(name) {
		return fmt.Errorf("store: invalid manifest name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(filepath.Join(s.dir, manifestFileName(name)))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Generations lists the fingerprints with resident generation files,
// sorted. Mostly for tooling and tests.
func (s *Store) Generations() []string {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "gen-*.json"))
	out := make([]string, 0, len(matches))
	for _, p := range matches {
		base := filepath.Base(p)
		fp := base[len("gen-") : len(base)-len(".json")]
		if _, err := hex.DecodeString(fp); err == nil && fp != "" {
			out = append(out, fp)
		}
	}
	sort.Strings(out)
	return out
}
