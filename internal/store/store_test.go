package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/workload"
)

func compiledPair(t *testing.T, m *frag.Mapping) (*frag.Mapping, *frag.Views) {
	t.Helper()
	v, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m, v
}

func TestGenerationRoundtrip(t *testing.T) {
	m, v := compiledPair(t, workload.PaperFull())
	fp, err := Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveGeneration(fp, m, v); err != nil {
		t.Fatal(err)
	}

	// A second handle on the same directory — the "new process".
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasGeneration(fp) {
		t.Fatal("generation not visible to a fresh handle")
	}
	m2, v2, err := s2.LoadGeneration(fp)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := orm.Roundtrip(m2, v2, workload.PaperClientState()); err != nil {
		t.Fatalf("data roundtrip through loaded generation: %v", err)
	}
	st := s2.Stats()
	if st.Hits == 0 || st.BytesRead == 0 {
		t.Fatalf("load not counted: %+v", st)
	}
	if w := s1.Stats(); w.BytesWritten == 0 {
		t.Fatalf("save not counted: %+v", w)
	}

	// A different model must miss, not be served someone else's artifact.
	other, _ := Fingerprint(m, "different-options")
	if _, _, err := s2.LoadGeneration(other); err == nil {
		t.Fatal("foreign fingerprint was served a generation")
	}
	if s2.Stats().Misses == 0 {
		t.Fatal("miss not counted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	m1 := workload.PaperFull()
	m2 := workload.PartitionedAgeModel()
	f1a, err := Fingerprint(m1)
	if err != nil {
		t.Fatal(err)
	}
	f1b, _ := Fingerprint(m1)
	f2, _ := Fingerprint(m2)
	fx, _ := Fingerprint(m1, "opt=1")
	if f1a != f1b {
		t.Fatal("fingerprint not deterministic")
	}
	if f1a == f2 {
		t.Fatal("distinct models share a fingerprint")
	}
	if f1a == fx {
		t.Fatal("extras do not influence the fingerprint")
	}
}

func TestSatCacheRoundtrip(t *testing.T) {
	th := &cond.MapTheory{Domains: map[string]cond.Domain{
		"G": {Kind: cond.KindString, Enum: []cond.Value{cond.String("M"), cond.String("F")}},
	}}
	c := cond.NewSatCache()
	a := cond.Cmp{Attr: "G", Op: cond.OpEq, Val: cond.String("M")}
	b := cond.Cmp{Attr: "G", Op: cond.OpEq, Val: cond.String("F")}
	c.Satisfiable(th, cond.NewAnd(a, b))
	c.Satisfiable(th, cond.NewOr(a, b))

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSatCache(c); err != nil {
		t.Fatal(err)
	}

	c2 := cond.NewSatCache()
	s2, _ := Open(dir)
	if err := s2.LoadSatCache(c2); err != nil {
		t.Fatalf("load: %v", err)
	}
	if got, hit := c2.SatisfiableHit(th, cond.NewAnd(a, b)); !hit || got {
		t.Fatalf("persisted verdict lost: hit=%v sat=%v", hit, got)
	}
	if st := c2.Stats(); st.PersistedHits == 0 {
		t.Fatalf("persisted hit not counted: %+v", st)
	}
}

// TestCorruptionColdStart damages a valid store in every way the envelope
// guards against and checks each load fails cleanly — no panic, no partial
// artifact — exactly like a cold start.
func TestCorruptionColdStart(t *testing.T) {
	m, v := compiledPair(t, workload.PaperFull())
	fp, _ := Fingerprint(m)
	pristine := func(t *testing.T) (*Store, string) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveGeneration(fp, m, v); err != nil {
			t.Fatal(err)
		}
		return s, filepath.Join(dir, genFileName(fp))
	}
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			// Flip a bit deep in the payload, past the envelope fields.
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("}{ not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong_version", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(`{"version":99,"class":"generation","payload":{},"sha256":""}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong_class", func(t *testing.T, path string) {
			rec := `{"version":1,"class":"satcache","fingerprint":"` + fp + `","payload":{},"sha256":"` +
				checksumOf(1, "satcache", fp, []byte("{}")) + `"}`
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"spliced_fingerprint", func(t *testing.T, path string) {
			// A checksum-valid record for a DIFFERENT fingerprint copied over
			// this file: the envelope's fingerprint check must reject it.
			rec := `{"version":1,"class":"generation","fingerprint":"feedface","payload":{},"sha256":"` +
				checksumOf(1, "generation", "feedface", []byte("{}")) + `"}`
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"valid_envelope_garbage_payload", func(t *testing.T, path string) {
			payload := []byte(`{"mapping":"nope","views":12}`)
			rec := `{"version":1,"class":"generation","fingerprint":"` + fp + `","payload":` + string(payload) + `,"sha256":"` +
				checksumOf(1, "generation", fp, payload) + `"}`
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, path := pristine(t)
			tc.damage(t, path)
			lm, lv, err := s.LoadGeneration(fp)
			if err == nil {
				t.Fatal("damaged record was accepted")
			}
			if lm != nil || lv != nil {
				t.Fatal("damaged load returned partial state")
			}
			if s.Stats().Misses == 0 {
				t.Fatal("damaged load not counted as a miss")
			}
			// The store must remain usable: a fresh save recovers.
			if err := s.SaveGeneration(fp, m, v); err != nil {
				t.Fatalf("save after corruption: %v", err)
			}
			if _, _, err := s.LoadGeneration(fp); err != nil {
				t.Fatalf("load after recovery save: %v", err)
			}
		})
	}
}

// TestTornWrite simulates a kill -9 mid-save: a half-written temp file next
// to an intact (old) record. The old record must still load; the stray temp
// must not be picked up.
func TestTornWrite(t *testing.T) {
	m, v := compiledPair(t, workload.PaperFull())
	fp, _ := Fingerprint(m)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveGeneration(fp, m, v); err != nil {
		t.Fatal(err)
	}
	// The interrupted writer left a partial temp file behind.
	torn := filepath.Join(dir, genFileName(fp)+".tmp12345")
	if err := os.WriteFile(torn, []byte(`{"version":1,"class":"genera`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadGeneration(fp); err != nil {
		t.Fatalf("old record unreadable with a torn temp alongside: %v", err)
	}
	if got := s.Generations(); len(got) != 1 || got[0] != fp {
		t.Fatalf("temp file leaked into the generation listing: %v", got)
	}
}

func TestPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxGenerations = 2
	var fps []string
	for n := 2; n <= 5; n++ {
		m, v := compiledPair(t, workload.HubRim(workload.HubRimOptions{N: n, M: 2, TPH: true}))
		fp, err := Fingerprint(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveGeneration(fp, m, v); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
		// Make modification times strictly ordered regardless of filesystem
		// timestamp granularity.
		ts := time.Now().Add(time.Duration(n-10) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, genFileName(fp)), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Generations()); got != 2 {
		t.Fatalf("pruning kept %d generations, want 2", got)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("pruning counted no evictions")
	}
	// The newest survive.
	if !s.HasGeneration(fps[len(fps)-1]) {
		t.Fatal("newest generation was pruned")
	}
	if s.HasGeneration(fps[0]) {
		t.Fatal("oldest generation survived pruning")
	}
}

// FuzzStoreDecode feeds arbitrary bytes through both load paths: nothing
// may panic, and nothing invalid may be accepted as a generation.
func FuzzStoreDecode(f *testing.F) {
	fp := "00112233445566778899aabbccddeeff"
	f.Add([]byte(`{"version":1,"class":"generation","payload":{},"sha256":"x"}`))
	f.Add([]byte(`{"version":1,"class":"satcache","payload":{"entries":{"k":true}},"sha256":""}`))
	f.Add([]byte(""))
	f.Add([]byte("}{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, genFileName(fp)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, satCacheFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Arbitrary bytes can only be accepted if they happen to be a fully
		// valid record, which requires a matching sha256 — effectively never
		// for fuzz inputs. Either way: no panic, no partial state.
		if lm, lv, err := s.LoadGeneration(fp); err == nil && (lm == nil || lv == nil) {
			t.Fatal("accepted generation with partial state")
		}
		c := cond.NewSatCache()
		_ = s.LoadSatCache(c)
	})
}
