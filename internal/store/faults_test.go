package store

import (
	"errors"
	"testing"

	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/workload"
)

// TestFaultStoreSaveErrorPropagates injects an I/O failure (the ENOSPC
// stand-in) into the record writer and checks it surfaces as a typed
// error, counted, with nothing half-written that a later load could trip
// over.
func TestFaultStoreSaveErrorPropagates(t *testing.T) {
	m, v := compiledPair(t, workload.PaperFull())
	fp, err := Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteStoreSave, Kind: faultinject.KindError, Nth: 1},
	}})
	serr := s.SaveGeneration(fp, m, v)
	deactivate()
	if serr == nil {
		t.Fatal("save succeeded despite injected I/O failure")
	}
	var ie *faultinject.InjectedError
	if !errors.As(serr, &ie) {
		t.Fatalf("save error %v, want the injected error", serr)
	}
	if s.HasGeneration(fp) {
		t.Fatal("failed save left a visible generation")
	}
	// The failure was transient (Nth:1, no Every): a retry lands cleanly.
	if err := s.SaveGeneration(fp, m, v); err != nil {
		t.Fatalf("retry after injected failure: %v", err)
	}
	if _, _, err := s.LoadGeneration(fp); err != nil {
		t.Fatalf("load after retried save: %v", err)
	}
}

// TestFaultStoreSaveCorruptionRejectedOnLoad injects a torn write: the
// save reports success (as a short write would to the writing process) but
// persists a truncated record. The checksum must reject it on load —
// degrading the reader to a cold compile — rather than serve garbage.
func TestFaultStoreSaveCorruptionRejectedOnLoad(t *testing.T) {
	m, v := compiledPair(t, workload.PaperFull())
	fp, err := Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteStoreSave, Kind: faultinject.KindCorrupt, Nth: 1},
	}})
	serr := s.SaveGeneration(fp, m, v)
	fired := faultinject.Fired()
	deactivate()
	if serr != nil {
		t.Fatalf("torn write must report success to the writer, got %v", serr)
	}
	if fired == 0 {
		t.Fatal("corruption rule never fired")
	}

	// Same handle and a fresh one: both must reject the record.
	if _, _, err := s.LoadGeneration(fp); err == nil {
		t.Fatal("truncated record served by the writing handle")
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.LoadGeneration(fp); err == nil {
		t.Fatal("truncated record served to a fresh process")
	}

	// An intact rewrite repairs the store.
	if err := s2.SaveGeneration(fp, m, v); err != nil {
		t.Fatalf("repair save: %v", err)
	}
	if _, _, err := s2.LoadGeneration(fp); err != nil {
		t.Fatalf("load after repair: %v", err)
	}
}

// TestFaultStoreLoadErrorReadsAsMiss injects a read failure and checks the
// loader treats it as an error the caller can degrade on, not a panic or a
// silently-empty generation.
func TestFaultStoreLoadErrorReadsAsMiss(t *testing.T) {
	m, v := compiledPair(t, workload.PaperFull())
	fp, err := Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveGeneration(fp, m, v); err != nil {
		t.Fatal(err)
	}

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteStoreLoad, Kind: faultinject.KindError, Nth: 1},
	}})
	_, _, lerr := s.LoadGeneration(fp)
	deactivate()
	if lerr == nil {
		t.Fatal("load succeeded despite injected read failure")
	}
	var ie *faultinject.InjectedError
	if !errors.As(lerr, &ie) {
		t.Fatalf("load error %v, want the injected error", lerr)
	}
	// The record itself is intact: the next read succeeds.
	if _, _, err := s.LoadGeneration(fp); err != nil {
		t.Fatalf("load after transient read failure: %v", err)
	}
}
