package modelio

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/state"
)

// Row-set serialization for store states. The rollout engine checkpoints
// backfill batches — slices of concrete table rows — through the
// persistent store, so rows need the same self-describing, deterministic
// wire form as models and views: every value carries its kind, tables and
// columns are emitted in sorted order, and decoding re-validates kinds so
// a damaged record fails loudly instead of yielding zero values.

// rowsDoc is the wire form of a state.StoreState.
type rowsDoc struct {
	Tables []tableRowsDoc `json:"tables"`
}

type tableRowsDoc struct {
	Name string   `json:"name"`
	Rows []rowDoc `json:"rows"`
}

// rowDoc is one row: columns sorted by name, absent columns are NULL.
type rowDoc []cellDoc

type cellDoc struct {
	Col   string          `json:"col"`
	Type  string          `json:"type"`
	Value json.RawMessage `json:"value"`
}

func encodeCell(col string, v cond.Value) (cellDoc, error) {
	var raw []byte
	var err error
	switch v.K {
	case cond.KindString:
		raw, err = json.Marshal(v.Str())
	case cond.KindInt:
		raw, err = json.Marshal(v.IntVal())
	case cond.KindFloat:
		raw, err = json.Marshal(v.FloatVal())
	case cond.KindBool:
		raw, err = json.Marshal(v.BoolVal())
	default:
		err = fmt.Errorf("modelio: column %q has unknown kind %v", col, v.K)
	}
	if err != nil {
		return cellDoc{}, err
	}
	return cellDoc{Col: col, Type: kindName(v.K), Value: raw}, nil
}

func decodeCell(c cellDoc) (cond.Value, error) {
	k, err := kindOf(c.Type)
	if err != nil {
		return cond.Value{}, err
	}
	switch k {
	case cond.KindString:
		var s string
		if err := json.Unmarshal(c.Value, &s); err != nil {
			return cond.Value{}, fmt.Errorf("modelio: column %q: %w", c.Col, err)
		}
		return cond.String(s), nil
	case cond.KindInt:
		var i int64
		if err := json.Unmarshal(c.Value, &i); err != nil {
			return cond.Value{}, fmt.Errorf("modelio: column %q: %w", c.Col, err)
		}
		return cond.Int(i), nil
	case cond.KindFloat:
		var f float64
		if err := json.Unmarshal(c.Value, &f); err != nil {
			return cond.Value{}, fmt.Errorf("modelio: column %q: %w", c.Col, err)
		}
		return cond.Float(f), nil
	case cond.KindBool:
		var b bool
		if err := json.Unmarshal(c.Value, &b); err != nil {
			return cond.Value{}, fmt.Errorf("modelio: column %q: %w", c.Col, err)
		}
		return cond.Bool(b), nil
	}
	return cond.Value{}, fmt.Errorf("modelio: column %q has unknown kind %q", c.Col, c.Type)
}

// EncodeRows serializes a store state deterministically: tables sorted by
// name, columns within each row sorted by name, row order preserved (the
// backfill checkpointer relies on stable row order for batch offsets).
func EncodeRows(ss *state.StoreState) ([]byte, error) {
	doc := rowsDoc{}
	if ss != nil {
		tables := make([]string, 0, len(ss.Tables))
		for t := range ss.Tables {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			td := tableRowsDoc{Name: t, Rows: []rowDoc{}}
			for _, r := range ss.Tables[t] {
				cols := make([]string, 0, len(r))
				for c := range r {
					cols = append(cols, c)
				}
				sort.Strings(cols)
				rd := make(rowDoc, 0, len(cols))
				for _, c := range cols {
					cell, err := encodeCell(c, r[c])
					if err != nil {
						return nil, fmt.Errorf("modelio: table %q: %w", t, err)
					}
					rd = append(rd, cell)
				}
				td.Rows = append(td.Rows, rd)
			}
			doc.Tables = append(doc.Tables, td)
		}
	}
	return json.Marshal(doc)
}

// DecodeRows restores a store state from EncodeRows output.
func DecodeRows(payload []byte) (*state.StoreState, error) {
	var doc rowsDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("modelio: rows: %w", err)
	}
	ss := state.NewStoreState()
	for _, td := range doc.Tables {
		if td.Name == "" {
			return nil, fmt.Errorf("modelio: rows: unnamed table")
		}
		if _, dup := ss.Tables[td.Name]; dup {
			return nil, fmt.Errorf("modelio: rows: duplicate table %q", td.Name)
		}
		rows := make([]state.Row, 0, len(td.Rows))
		for _, rd := range td.Rows {
			r := make(state.Row, len(rd))
			for _, cell := range rd {
				if _, dup := r[cell.Col]; dup {
					return nil, fmt.Errorf("modelio: rows: table %q: duplicate column %q", td.Name, cell.Col)
				}
				v, err := decodeCell(cell)
				if err != nil {
					return nil, fmt.Errorf("modelio: rows: table %q: %w", td.Name, err)
				}
				r[cell.Col] = v
			}
			rows = append(rows, r)
		}
		ss.Tables[td.Name] = rows
	}
	return ss, nil
}
