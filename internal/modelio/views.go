// Structural serialization of compiled views. Unlike the mapping document
// (modelio.go), which renders conditions in Entity-SQL text for human
// readability, compiled artifacts round-trip through a structural JSON form:
// the esql grammar cannot represent every expression the compiler builds
// (e.g. multi-subject conditions with explicit empty subjects), and the
// decode path must rebuild conditions through the cond constructors so the
// hash-consing invariant — structurally equal composites are pointer-equal —
// holds for loaded views exactly as for freshly compiled ones.
package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
)

// ViewsDoc is the JSON shape of a compiled view set (frag.Views).
type ViewsDoc struct {
	Query  map[string]*ViewDoc `json:"query,omitempty"`
	Assoc  map[string]*ViewDoc `json:"assoc,omitempty"`
	Update map[string]*ViewDoc `json:"update,omitempty"`
}

// ViewDoc is the JSON shape of one (Q | τ) view.
type ViewDoc struct {
	Q     *QDoc     `json:"q"`
	Cases []CaseDoc `json:"cases,omitempty"`
}

// CaseDoc is one constructor branch.
type CaseDoc struct {
	When  *CondDoc          `json:"when"`
	Type  string            `json:"type"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// QDoc is the JSON shape of a relational query tree node. Op selects the
// node type; the other fields are populated per Op.
type QDoc struct {
	Op     string       `json:"op"`
	Name   string       `json:"name,omitempty"`   // scantable/scanset/scanassoc
	In     *QDoc        `json:"in,omitempty"`     // select/project
	Cond   *CondDoc     `json:"cond,omitempty"`   // select
	Cols   []ProjColDoc `json:"cols,omitempty"`   // project
	Kind   string       `json:"kind,omitempty"`   // join
	L      *QDoc        `json:"l,omitempty"`      // join
	R      *QDoc        `json:"r,omitempty"`      // join
	On     [][2]string  `json:"on,omitempty"`     // join
	Inputs []QDoc       `json:"inputs,omitempty"` // unionall
}

// ProjColDoc is one projection output column.
type ProjColDoc struct {
	As  string      `json:"as"`
	Src string      `json:"src,omitempty"`
	Lit *LiteralDoc `json:"lit,omitempty"`
}

// LiteralDoc is a constant projection source, possibly a typed NULL.
type LiteralDoc struct {
	Null bool            `json:"null,omitempty"`
	Kind string          `json:"kind"`
	Val  json.RawMessage `json:"val,omitempty"`
}

// CondDoc is the structural JSON shape of a boolean condition.
type CondDoc struct {
	Op   string          `json:"op"` // true false typeis null cmp not and or
	Var  string          `json:"var,omitempty"`
	Type string          `json:"type,omitempty"`
	Only bool            `json:"only,omitempty"`
	Attr string          `json:"attr,omitempty"`
	Cmp  string          `json:"cmp,omitempty"` // comparison operator symbol
	Kind string          `json:"kind,omitempty"`
	Val  json.RawMessage `json:"val,omitempty"`
	Kids []CondDoc       `json:"kids,omitempty"`
}

// EncodeViews writes a compiled view set as JSON.
func EncodeViews(w io.Writer, v *frag.Views) error {
	doc, err := ViewsToDoc(v)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(doc)
}

// DecodeViews reads a compiled view set from JSON, rebuilding every
// condition through the cond constructors so loaded views satisfy the
// same interning invariants as compiled ones.
func DecodeViews(r io.Reader) (*frag.Views, error) {
	var doc ViewsDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("modelio: views: %w", err)
	}
	return ViewsFromDoc(&doc)
}

// ViewsToDoc converts a view set to its document form.
func ViewsToDoc(v *frag.Views) (*ViewsDoc, error) {
	doc := &ViewsDoc{}
	var err error
	if doc.Query, err = viewMapToDoc(v.Query); err != nil {
		return nil, err
	}
	if doc.Assoc, err = viewMapToDoc(v.Assoc); err != nil {
		return nil, err
	}
	if doc.Update, err = viewMapToDoc(v.Update); err != nil {
		return nil, err
	}
	return doc, nil
}

// ViewsFromDoc rebuilds a view set from its document form.
func ViewsFromDoc(doc *ViewsDoc) (*frag.Views, error) {
	out := frag.NewViews()
	for name, vd := range doc.Query {
		v, err := viewFromDoc(vd)
		if err != nil {
			return nil, fmt.Errorf("modelio: query view %q: %w", name, err)
		}
		out.SetQuery(name, v)
	}
	for name, vd := range doc.Assoc {
		v, err := viewFromDoc(vd)
		if err != nil {
			return nil, fmt.Errorf("modelio: assoc view %q: %w", name, err)
		}
		out.SetAssoc(name, v)
	}
	for name, vd := range doc.Update {
		v, err := viewFromDoc(vd)
		if err != nil {
			return nil, fmt.Errorf("modelio: update view %q: %w", name, err)
		}
		out.SetUpdate(name, v)
	}
	return out, nil
}

func viewMapToDoc(m map[string]*cqt.View) (map[string]*ViewDoc, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]*ViewDoc, len(m))
	for name, v := range m {
		vd, err := viewToDoc(v)
		if err != nil {
			return nil, fmt.Errorf("modelio: view %q: %w", name, err)
		}
		out[name] = vd
	}
	return out, nil
}

func viewToDoc(v *cqt.View) (*ViewDoc, error) {
	q, err := qToDoc(v.Q)
	if err != nil {
		return nil, err
	}
	vd := &ViewDoc{Q: q}
	for _, c := range v.Cases {
		when, err := condToDoc(c.When)
		if err != nil {
			return nil, err
		}
		vd.Cases = append(vd.Cases, CaseDoc{When: when, Type: c.Type, Attrs: c.Attrs})
	}
	return vd, nil
}

func viewFromDoc(vd *ViewDoc) (*cqt.View, error) {
	if vd == nil || vd.Q == nil {
		return nil, fmt.Errorf("missing query tree")
	}
	q, err := qFromDoc(vd.Q)
	if err != nil {
		return nil, err
	}
	v := &cqt.View{Q: q}
	for _, cd := range vd.Cases {
		when, err := condFromDoc(cd.When)
		if err != nil {
			return nil, err
		}
		attrs := make(map[string]string, len(cd.Attrs))
		for k, col := range cd.Attrs {
			attrs[k] = col
		}
		v.Cases = append(v.Cases, cqt.Case{When: when, Type: cd.Type, Attrs: attrs})
	}
	return v, nil
}

func qToDoc(e cqt.Expr) (*QDoc, error) {
	switch q := e.(type) {
	case cqt.ScanTable:
		return &QDoc{Op: "scantable", Name: q.Table}, nil
	case cqt.ScanSet:
		return &QDoc{Op: "scanset", Name: q.Set}, nil
	case cqt.ScanAssoc:
		return &QDoc{Op: "scanassoc", Name: q.Assoc}, nil
	case cqt.Select:
		in, err := qToDoc(q.In)
		if err != nil {
			return nil, err
		}
		c, err := condToDoc(q.Cond)
		if err != nil {
			return nil, err
		}
		return &QDoc{Op: "select", In: in, Cond: c}, nil
	case cqt.Project:
		in, err := qToDoc(q.In)
		if err != nil {
			return nil, err
		}
		cols := make([]ProjColDoc, len(q.Cols))
		for i, pc := range q.Cols {
			cd := ProjColDoc{As: pc.As, Src: pc.Src}
			if pc.Lit != nil {
				ld, err := literalToDoc(pc.Lit)
				if err != nil {
					return nil, err
				}
				cd.Lit = ld
				cd.Src = ""
			}
			cols[i] = cd
		}
		return &QDoc{Op: "project", In: in, Cols: cols}, nil
	case cqt.Join:
		l, err := qToDoc(q.L)
		if err != nil {
			return nil, err
		}
		r, err := qToDoc(q.R)
		if err != nil {
			return nil, err
		}
		return &QDoc{Op: "join", Kind: joinKindName(q.Kind), L: l, R: r, On: q.On}, nil
	case cqt.UnionAll:
		inputs := make([]QDoc, len(q.Inputs))
		for i, in := range q.Inputs {
			d, err := qToDoc(in)
			if err != nil {
				return nil, err
			}
			inputs[i] = *d
		}
		return &QDoc{Op: "unionall", Inputs: inputs}, nil
	}
	return nil, fmt.Errorf("unknown query node %T", e)
}

func qFromDoc(d *QDoc) (cqt.Expr, error) {
	if d == nil {
		return nil, fmt.Errorf("missing query node")
	}
	switch d.Op {
	case "scantable":
		return cqt.ScanTable{Table: d.Name}, nil
	case "scanset":
		return cqt.ScanSet{Set: d.Name}, nil
	case "scanassoc":
		return cqt.ScanAssoc{Assoc: d.Name}, nil
	case "select":
		in, err := qFromDoc(d.In)
		if err != nil {
			return nil, err
		}
		c, err := condFromDoc(d.Cond)
		if err != nil {
			return nil, err
		}
		return cqt.Select{In: in, Cond: c}, nil
	case "project":
		in, err := qFromDoc(d.In)
		if err != nil {
			return nil, err
		}
		cols := make([]cqt.ProjCol, len(d.Cols))
		for i, cd := range d.Cols {
			pc := cqt.ProjCol{As: cd.As, Src: cd.Src}
			if cd.Lit != nil {
				lit, err := literalFromDoc(cd.Lit)
				if err != nil {
					return nil, err
				}
				pc.Lit = lit
				pc.Src = ""
			}
			cols[i] = pc
		}
		return cqt.Project{In: in, Cols: cols}, nil
	case "join":
		kind, err := joinKindOf(d.Kind)
		if err != nil {
			return nil, err
		}
		l, err := qFromDoc(d.L)
		if err != nil {
			return nil, err
		}
		r, err := qFromDoc(d.R)
		if err != nil {
			return nil, err
		}
		return cqt.Join{Kind: kind, L: l, R: r, On: d.On}, nil
	case "unionall":
		inputs := make([]cqt.Expr, len(d.Inputs))
		for i := range d.Inputs {
			in, err := qFromDoc(&d.Inputs[i])
			if err != nil {
				return nil, err
			}
			inputs[i] = in
		}
		return cqt.UnionAll{Inputs: inputs}, nil
	}
	return nil, fmt.Errorf("unknown query op %q", d.Op)
}

func joinKindName(k cqt.JoinKind) string {
	switch k {
	case cqt.Inner:
		return "inner"
	case cqt.LeftOuter:
		return "left"
	case cqt.FullOuter:
		return "full"
	}
	return "?"
}

func joinKindOf(name string) (cqt.JoinKind, error) {
	switch name {
	case "inner":
		return cqt.Inner, nil
	case "left":
		return cqt.LeftOuter, nil
	case "full":
		return cqt.FullOuter, nil
	}
	return 0, fmt.Errorf("unknown join kind %q", name)
}

func literalToDoc(l *cqt.Literal) (*LiteralDoc, error) {
	d := &LiteralDoc{Null: l.Null, Kind: kindName(l.Kind)}
	if !l.Null {
		raw, err := valueRaw(l.Val)
		if err != nil {
			return nil, err
		}
		d.Val = raw
	}
	return d, nil
}

func literalFromDoc(d *LiteralDoc) (*cqt.Literal, error) {
	k, err := kindOf(d.Kind)
	if err != nil {
		return nil, err
	}
	if d.Null {
		return cqt.NullOf(k), nil
	}
	v, err := valueOfRaw(k, d.Val)
	if err != nil {
		return nil, err
	}
	return cqt.Const(v), nil
}

func cmpOpName(o cond.Op) string { return o.String() }

func cmpOpOf(name string) (cond.Op, error) {
	switch name {
	case "=":
		return cond.OpEq, nil
	case "<>":
		return cond.OpNe, nil
	case "<":
		return cond.OpLt, nil
	case "<=":
		return cond.OpLe, nil
	case ">":
		return cond.OpGt, nil
	case ">=":
		return cond.OpGe, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", name)
}

// valueRaw marshals a typed value as its bare JSON form (kind travels
// alongside it in the containing document).
func valueRaw(v cond.Value) (json.RawMessage, error) {
	switch v.K {
	case cond.KindString:
		return json.Marshal(v.Str())
	case cond.KindInt:
		return json.Marshal(v.IntVal())
	case cond.KindFloat:
		return json.Marshal(v.FloatVal())
	case cond.KindBool:
		return json.Marshal(v.BoolVal())
	}
	return nil, fmt.Errorf("unknown value kind %v", v.K)
}

func valueOfRaw(k cond.Kind, raw json.RawMessage) (cond.Value, error) {
	switch k {
	case cond.KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return cond.Value{}, err
		}
		return cond.String(s), nil
	case cond.KindInt:
		var i int64
		if err := json.Unmarshal(raw, &i); err != nil {
			return cond.Value{}, err
		}
		return cond.Int(i), nil
	case cond.KindFloat:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return cond.Value{}, err
		}
		return cond.Float(f), nil
	case cond.KindBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return cond.Value{}, err
		}
		return cond.Bool(b), nil
	}
	return cond.Value{}, fmt.Errorf("unknown value kind %q", k)
}

func condToDoc(x cond.Expr) (*CondDoc, error) {
	switch v := x.(type) {
	case nil:
		return nil, fmt.Errorf("nil condition")
	case cond.True:
		return &CondDoc{Op: "true"}, nil
	case cond.False:
		return &CondDoc{Op: "false"}, nil
	case cond.TypeIs:
		return &CondDoc{Op: "typeis", Var: v.Var, Type: v.Type, Only: v.Only}, nil
	case cond.Null:
		return &CondDoc{Op: "null", Attr: v.Attr}, nil
	case cond.Cmp:
		raw, err := valueRaw(v.Val)
		if err != nil {
			return nil, err
		}
		return &CondDoc{Op: "cmp", Attr: v.Attr, Cmp: cmpOpName(v.Op), Kind: kindName(v.Val.K), Val: raw}, nil
	case *cond.Not:
		kid, err := condToDoc(v.X)
		if err != nil {
			return nil, err
		}
		return &CondDoc{Op: "not", Kids: []CondDoc{*kid}}, nil
	case *cond.And:
		kids, err := condKidsToDoc(v.Xs)
		if err != nil {
			return nil, err
		}
		return &CondDoc{Op: "and", Kids: kids}, nil
	case *cond.Or:
		kids, err := condKidsToDoc(v.Xs)
		if err != nil {
			return nil, err
		}
		return &CondDoc{Op: "or", Kids: kids}, nil
	}
	return nil, fmt.Errorf("unknown condition node %T", x)
}

func condKidsToDoc(xs []cond.Expr) ([]CondDoc, error) {
	kids := make([]CondDoc, len(xs))
	for i, x := range xs {
		kd, err := condToDoc(x)
		if err != nil {
			return nil, err
		}
		kids[i] = *kd
	}
	return kids, nil
}

// condFromDoc rebuilds a condition, funneling every composite through the
// cond constructors: the result is interned, so == works against freshly
// compiled expressions, and its cache keys match the ones the original
// process computed.
func condFromDoc(d *CondDoc) (cond.Expr, error) {
	if d == nil {
		return nil, fmt.Errorf("missing condition node")
	}
	switch d.Op {
	case "true":
		return cond.True{}, nil
	case "false":
		return cond.False{}, nil
	case "typeis":
		return cond.TypeIs{Var: d.Var, Type: d.Type, Only: d.Only}, nil
	case "null":
		return cond.Null{Attr: d.Attr}, nil
	case "cmp":
		op, err := cmpOpOf(d.Cmp)
		if err != nil {
			return nil, err
		}
		k, err := kindOf(d.Kind)
		if err != nil {
			return nil, err
		}
		v, err := valueOfRaw(k, d.Val)
		if err != nil {
			return nil, err
		}
		return cond.Cmp{Attr: d.Attr, Op: op, Val: v}, nil
	case "not":
		if len(d.Kids) != 1 {
			return nil, fmt.Errorf("not node wants 1 child, has %d", len(d.Kids))
		}
		kid, err := condFromDoc(&d.Kids[0])
		if err != nil {
			return nil, err
		}
		return cond.NewNot(kid), nil
	case "and", "or":
		kids := make([]cond.Expr, len(d.Kids))
		for i := range d.Kids {
			kid, err := condFromDoc(&d.Kids[i])
			if err != nil {
				return nil, err
			}
			kids[i] = kid
		}
		if d.Op == "and" {
			return cond.NewAnd(kids...), nil
		}
		return cond.NewOr(kids...), nil
	}
	return nil, fmt.Errorf("unknown condition op %q", d.Op)
}
