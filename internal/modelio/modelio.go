// Package modelio serializes mappings — client schema, store schema and
// fragment set — to and from a JSON document. Conditions use the
// Entity-SQL-like syntax of package esql so the files stay readable, in
// the spirit of EF's MSL mapping-specification files.
package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/esql"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// Document is the JSON shape of a mapping.
type Document struct {
	Client    ClientDoc     `json:"client"`
	Store     StoreDoc      `json:"store"`
	Fragments []FragmentDoc `json:"fragments"`
}

// ClientDoc is the JSON shape of a client schema.
type ClientDoc struct {
	Types        []TypeDoc  `json:"types"`
	Sets         []SetDoc   `json:"sets"`
	Associations []AssocDoc `json:"associations,omitempty"`
}

// TypeDoc is the JSON shape of an entity type.
type TypeDoc struct {
	Name     string    `json:"name"`
	Base     string    `json:"base,omitempty"`
	Abstract bool      `json:"abstract,omitempty"`
	Attrs    []AttrDoc `json:"attrs,omitempty"`
	Key      []string  `json:"key,omitempty"`
}

// AttrDoc is the JSON shape of an attribute or column.
type AttrDoc struct {
	Name     string            `json:"name"`
	Type     string            `json:"type"`
	Nullable bool              `json:"nullable,omitempty"`
	Enum     []json.RawMessage `json:"enum,omitempty"`
}

// SetDoc is the JSON shape of an entity set.
type SetDoc struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// AssocDoc is the JSON shape of an association.
type AssocDoc struct {
	Name string `json:"name"`
	End1 EndDoc `json:"end1"`
	End2 EndDoc `json:"end2"`
}

// EndDoc is the JSON shape of an association end.
type EndDoc struct {
	Type string `json:"type"`
	Mult string `json:"mult"`
}

// StoreDoc is the JSON shape of a store schema.
type StoreDoc struct {
	Tables []TableDoc `json:"tables"`
}

// TableDoc is the JSON shape of a table.
type TableDoc struct {
	Name string    `json:"name"`
	Cols []AttrDoc `json:"cols"`
	Key  []string  `json:"key"`
	FKs  []FKDoc   `json:"fks,omitempty"`
}

// FKDoc is the JSON shape of a foreign key.
type FKDoc struct {
	Name     string   `json:"name"`
	Cols     []string `json:"cols"`
	RefTable string   `json:"refTable"`
	RefCols  []string `json:"refCols"`
}

// FragmentDoc is the JSON shape of a mapping fragment.
type FragmentDoc struct {
	ID         string            `json:"id"`
	Set        string            `json:"set,omitempty"`
	Assoc      string            `json:"assoc,omitempty"`
	ClientCond string            `json:"clientCond"`
	Attrs      []string          `json:"attrs"`
	Table      string            `json:"table"`
	StoreCond  string            `json:"storeCond"`
	ColOf      map[string]string `json:"colOf"`
}

// Encode writes a mapping as indented JSON.
func Encode(w io.Writer, m *frag.Mapping) error {
	doc, err := toDocument(m)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode reads a mapping from JSON and validates it.
func Decode(r io.Reader) (*frag.Mapping, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	return fromDocument(&doc)
}

func kindName(k cond.Kind) string { return k.String() }

func kindOf(name string) (cond.Kind, error) {
	switch name {
	case "string":
		return cond.KindString, nil
	case "int":
		return cond.KindInt, nil
	case "float":
		return cond.KindFloat, nil
	case "bool":
		return cond.KindBool, nil
	}
	return 0, fmt.Errorf("modelio: unknown kind %q", name)
}

func multName(m edm.Mult) string { return m.String() }

func multOf(name string) (edm.Mult, error) {
	switch name {
	case "1":
		return edm.One, nil
	case "0..1":
		return edm.ZeroOne, nil
	case "*":
		return edm.Many, nil
	}
	return 0, fmt.Errorf("modelio: unknown multiplicity %q", name)
}

func encodeEnum(k cond.Kind, vals []cond.Value) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, 0, len(vals))
	for _, v := range vals {
		var raw []byte
		var err error
		switch k {
		case cond.KindString:
			raw, err = json.Marshal(v.Str())
		case cond.KindInt:
			raw, err = json.Marshal(v.IntVal())
		case cond.KindFloat:
			raw, err = json.Marshal(v.FloatVal())
		case cond.KindBool:
			raw, err = json.Marshal(v.BoolVal())
		}
		if err != nil {
			return nil, err
		}
		out = append(out, raw)
	}
	return out, nil
}

func decodeEnum(k cond.Kind, raws []json.RawMessage) ([]cond.Value, error) {
	out := make([]cond.Value, 0, len(raws))
	for _, raw := range raws {
		switch k {
		case cond.KindString:
			var s string
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, err
			}
			out = append(out, cond.String(s))
		case cond.KindInt:
			var i int64
			if err := json.Unmarshal(raw, &i); err != nil {
				return nil, err
			}
			out = append(out, cond.Int(i))
		case cond.KindFloat:
			var f float64
			if err := json.Unmarshal(raw, &f); err != nil {
				return nil, err
			}
			out = append(out, cond.Float(f))
		case cond.KindBool:
			var b bool
			if err := json.Unmarshal(raw, &b); err != nil {
				return nil, err
			}
			out = append(out, cond.Bool(b))
		}
	}
	return out, nil
}

func toDocument(m *frag.Mapping) (*Document, error) {
	doc := &Document{}
	for _, t := range m.Client.Types() {
		td := TypeDoc{Name: t.Name, Base: t.Base, Abstract: t.Abstract, Key: t.Key}
		for _, a := range t.Attrs {
			enum, err := encodeEnum(a.Type, a.Enum)
			if err != nil {
				return nil, err
			}
			td.Attrs = append(td.Attrs, AttrDoc{
				Name: a.Name, Type: kindName(a.Type), Nullable: a.Nullable, Enum: enum,
			})
		}
		doc.Client.Types = append(doc.Client.Types, td)
	}
	for _, s := range m.Client.Sets() {
		doc.Client.Sets = append(doc.Client.Sets, SetDoc{Name: s.Name, Type: s.Type})
	}
	for _, a := range m.Client.Associations() {
		doc.Client.Associations = append(doc.Client.Associations, AssocDoc{
			Name: a.Name,
			End1: EndDoc{Type: a.End1.Type, Mult: multName(a.End1.Mult)},
			End2: EndDoc{Type: a.End2.Type, Mult: multName(a.End2.Mult)},
		})
	}
	for _, t := range m.Store.Tables() {
		td := TableDoc{Name: t.Name, Key: t.Key}
		for _, c := range t.Cols {
			enum, err := encodeEnum(c.Type, c.Enum)
			if err != nil {
				return nil, err
			}
			td.Cols = append(td.Cols, AttrDoc{
				Name: c.Name, Type: kindName(c.Type), Nullable: c.Nullable, Enum: enum,
			})
		}
		for _, fk := range t.FKs {
			td.FKs = append(td.FKs, FKDoc{Name: fk.Name, Cols: fk.Cols, RefTable: fk.RefTable, RefCols: fk.RefCols})
		}
		doc.Store.Tables = append(doc.Store.Tables, td)
	}
	for _, f := range m.Frags {
		doc.Fragments = append(doc.Fragments, FragmentDoc{
			ID:         f.ID,
			Set:        f.Set,
			Assoc:      f.Assoc,
			ClientCond: f.ClientCond.String(),
			Attrs:      f.Attrs,
			Table:      f.Table,
			StoreCond:  f.StoreCond.String(),
			ColOf:      f.ColOf,
		})
	}
	return doc, nil
}

func fromDocument(doc *Document) (*frag.Mapping, error) {
	c := edm.NewSchema()
	for _, td := range doc.Client.Types {
		t := edm.EntityType{Name: td.Name, Base: td.Base, Abstract: td.Abstract, Key: td.Key}
		for _, ad := range td.Attrs {
			k, err := kindOf(ad.Type)
			if err != nil {
				return nil, err
			}
			enum, err := decodeEnum(k, ad.Enum)
			if err != nil {
				return nil, err
			}
			t.Attrs = append(t.Attrs, edm.Attribute{Name: ad.Name, Type: k, Nullable: ad.Nullable, Enum: enum})
		}
		if err := c.AddType(t); err != nil {
			return nil, err
		}
	}
	for _, sd := range doc.Client.Sets {
		if err := c.AddSet(edm.EntitySet{Name: sd.Name, Type: sd.Type}); err != nil {
			return nil, err
		}
	}
	for _, ad := range doc.Client.Associations {
		m1, err := multOf(ad.End1.Mult)
		if err != nil {
			return nil, err
		}
		m2, err := multOf(ad.End2.Mult)
		if err != nil {
			return nil, err
		}
		if err := c.AddAssociation(edm.Association{
			Name: ad.Name,
			End1: edm.End{Type: ad.End1.Type, Mult: m1},
			End2: edm.End{Type: ad.End2.Type, Mult: m2},
		}); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}

	s := rel.NewSchema()
	for _, td := range doc.Store.Tables {
		t := rel.Table{Name: td.Name, Key: td.Key}
		for _, cd := range td.Cols {
			k, err := kindOf(cd.Type)
			if err != nil {
				return nil, err
			}
			enum, err := decodeEnum(k, cd.Enum)
			if err != nil {
				return nil, err
			}
			t.Cols = append(t.Cols, rel.Column{Name: cd.Name, Type: k, Nullable: cd.Nullable, Enum: enum})
		}
		for _, fd := range td.FKs {
			t.FKs = append(t.FKs, rel.ForeignKey{Name: fd.Name, Cols: fd.Cols, RefTable: fd.RefTable, RefCols: fd.RefCols})
		}
		if err := s.AddTable(t); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}

	m := &frag.Mapping{Client: c, Store: s}
	for _, fd := range doc.Fragments {
		cc, err := esql.ParseCond(fd.ClientCond)
		if err != nil {
			return nil, fmt.Errorf("modelio: fragment %s client condition: %w", fd.ID, err)
		}
		sc, err := esql.ParseCond(fd.StoreCond)
		if err != nil {
			return nil, fmt.Errorf("modelio: fragment %s store condition: %w", fd.ID, err)
		}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         fd.ID,
			Set:        fd.Set,
			Assoc:      fd.Assoc,
			ClientCond: cc,
			Attrs:      fd.Attrs,
			Table:      fd.Table,
			StoreCond:  sc,
			ColOf:      fd.ColOf,
		})
	}
	if err := m.CheckWellFormed(); err != nil {
		return nil, err
	}
	return m, nil
}
