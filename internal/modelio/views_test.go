package modelio

import (
	"bytes"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/workload"
)

func compiledViews(t *testing.T, m *frag.Mapping) *frag.Views {
	t.Helper()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return views
}

// viewConds collects every condition of a view — Select nodes of the query
// tree plus constructor case guards — in deterministic traversal order.
func viewConds(v *cqt.View) []cond.Expr {
	var out []cond.Expr
	cqt.AnyCond(v.Q, func(c cond.Expr) bool {
		out = append(out, c)
		return false
	})
	for _, c := range v.Cases {
		out = append(out, c.When)
	}
	return out
}

// TestViewsRoundtrip encodes compiled views, decodes them, and checks the
// decode is byte-faithful (re-encode equality) and semantically intact
// (data roundtrips through the decoded views).
func TestViewsRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *frag.Mapping
	}{
		{"paperFull", workload.PaperFull()},
		{"partitioned", workload.PartitionedAgeModel()},
		{"hubrim", workload.HubRim(workload.HubRimOptions{N: 2, M: 3, TPH: true})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			views := compiledViews(t, tc.m)
			var buf bytes.Buffer
			if err := EncodeViews(&buf, views); err != nil {
				t.Fatalf("encode: %v", err)
			}
			first := append([]byte(nil), buf.Bytes()...)
			back, err := DecodeViews(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			var again bytes.Buffer
			if err := EncodeViews(&again, back); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(first, again.Bytes()) {
				t.Error("encode/decode/encode drift")
			}
			if len(back.Query) != len(views.Query) || len(back.Assoc) != len(views.Assoc) || len(back.Update) != len(views.Update) {
				t.Fatalf("view counts drifted: %d/%d/%d vs %d/%d/%d",
					len(back.Query), len(back.Assoc), len(back.Update),
					len(views.Query), len(views.Assoc), len(views.Update))
			}
		})
	}
}

// TestViewsRoundtripSemantics runs a full data roundtrip through decoded
// views: the serialized artifact must be a drop-in replacement for the
// compiled one.
func TestViewsRoundtripSemantics(t *testing.T) {
	m := workload.PaperFull()
	views := compiledViews(t, m)
	var buf bytes.Buffer
	if err := EncodeViews(&buf, views); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeViews(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := orm.Roundtrip(m, back, workload.PaperClientState()); err != nil {
		t.Fatalf("data roundtrip through decoded views: %v", err)
	}
}

// TestViewsReinternIdentity is the load-path half of the hash-consing
// invariant: decoding funnels every composite condition back through the
// cond constructors, so a decoded condition must be pointer-equal (==) to
// the still-resident original — x == Load(Save(x)) — and must produce
// byte-identical SatCache keys. This is what lets a warm-started process
// mix loaded views with freshly compiled ones.
func TestViewsReinternIdentity(t *testing.T) {
	m := workload.PaperFull()
	views := compiledViews(t, m)
	var buf bytes.Buffer
	if err := EncodeViews(&buf, views); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeViews(&buf)
	if err != nil {
		t.Fatal(err)
	}

	th := &cond.MapTheory{}
	checked := 0
	check := func(name string, a, b *cqt.View) {
		ca, cb := viewConds(a), viewConds(b)
		if len(ca) != len(cb) {
			t.Fatalf("%s: condition count drifted: %d vs %d", name, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%s: condition %d not re-interned to the original node:\n  %s\n  %s",
					name, i, ca[i], cb[i])
			}
			if ka, kb := cond.CacheKey(th, ca[i]), cond.CacheKey(th, cb[i]); ka != kb {
				t.Fatalf("%s: cache key drifted for condition %d", name, i)
			}
			checked++
		}
	}
	for name, v := range views.Query {
		check("query "+name, v, back.Query[name])
	}
	for name, v := range views.Assoc {
		check("assoc "+name, v, back.Assoc[name])
	}
	for name, v := range views.Update {
		check("update "+name, v, back.Update[name])
	}
	if checked == 0 {
		t.Fatal("no conditions compared; fixture too trivial")
	}
}

// TestViewsDecodeRejectsGarbage checks structurally invalid documents fail
// loudly (the store turns these errors into silent cold starts).
func TestViewsDecodeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"{",
		`{"query":{"V":{}}}`,
		`{"query":{"V":{"q":{"op":"warp"}}}}`,
		`{"query":{"V":{"q":{"op":"select","in":{"op":"scanset","name":"S"}}}}}`,
		`{"query":{"V":{"q":{"op":"select","in":{"op":"scanset","name":"S"},"cond":{"op":"cmp","attr":"a","cmp":"??","kind":"int","val":1}}}}}`,
		`{"update":{"T":{"q":{"op":"join","kind":"sideways","l":{"op":"scantable","name":"T"},"r":{"op":"scantable","name":"T"}}}}}`,
	} {
		if _, err := DecodeViews(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("DecodeViews(%q) accepted", in)
		}
	}
}
