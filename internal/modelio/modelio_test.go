package modelio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/workload"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    func() ([]byte, error)
	}{
		{"paperFull", encode(workload.PaperFull)},
		{"partitioned", encode(workload.PartitionedAgeModel)},
		{"gender", encode(workload.GenderConstantModel)},
		{"hubrim", encode(func() *mapping { return workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: true}) })},
	} {
		data, err := tc.m()
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		m2, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		data2 := &bytes.Buffer{}
		if err := Encode(data2, m2); err != nil {
			t.Fatalf("%s: re-encode: %v", tc.name, err)
		}
		if !bytes.Equal(data, data2.Bytes()) {
			t.Errorf("%s: encode/decode/encode drift", tc.name)
		}
	}
}

// TestDecodedModelCompiles compiles a decoded model and roundtrips data
// through it, proving serialization preserves semantics.
func TestDecodedModelCompiles(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, workload.PaperFull()); err != nil {
		t.Fatal(err)
	}
	m, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := orm.Roundtrip(m, views, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"{",
		`{"unknown": 1}`,
		`{"client":{"types":[{"name":"A","attrs":[{"name":"x","type":"nope"}],"key":["x"]}],"sets":[]},"store":{"tables":[]},"fragments":[]}`,
		`{"client":{"types":[],"sets":[]},"store":{"tables":[]},"fragments":[{"id":"f","set":"S","clientCond":"age >","attrs":[],"table":"T","storeCond":"TRUE","colOf":{}}]}`,
	} {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("Decode(%q) accepted", in)
		}
	}
}

type mapping = frag.Mapping

func encode(f func() *mapping) func() ([]byte, error) {
	return func() ([]byte, error) {
		var buf bytes.Buffer
		if err := Encode(&buf, f()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

func TestDecodeRejectsBadMultiplicity(t *testing.T) {
	doc := `{
	  "client": {
	    "types": [{"name":"A","attrs":[{"name":"Id","type":"int"}],"key":["Id"]}],
	    "sets": [{"name":"As","type":"A"}],
	    "associations": [{"name":"X","end1":{"type":"A","mult":"??"},"end2":{"type":"A","mult":"1"}}]
	  },
	  "store": {"tables": [{"name":"T","cols":[{"name":"Id","type":"int"}],"key":["Id"]}]},
	  "fragments": []
	}`
	if _, err := Decode(strings.NewReader(doc)); err == nil {
		t.Fatal("bad multiplicity accepted")
	}
}

func TestDecodeRejectsBadEnumValue(t *testing.T) {
	doc := `{
	  "client": {
	    "types": [{"name":"A","attrs":[{"name":"Id","type":"int"},{"name":"D","type":"int","enum":["notanint"]}],"key":["Id"]}],
	    "sets": [{"name":"As","type":"A"}]
	  },
	  "store": {"tables": [{"name":"T","cols":[{"name":"Id","type":"int"}],"key":["Id"]}]},
	  "fragments": []
	}`
	if _, err := Decode(strings.NewReader(doc)); err == nil {
		t.Fatal("bad enum value accepted")
	}
}

func TestDecodeRejectsIllFormedFragment(t *testing.T) {
	doc := `{
	  "client": {
	    "types": [{"name":"A","attrs":[{"name":"Id","type":"int"}],"key":["Id"]}],
	    "sets": [{"name":"As","type":"A"}]
	  },
	  "store": {"tables": [{"name":"T","cols":[{"name":"Id","type":"int"}],"key":["Id"]}]},
	  "fragments": [{"id":"f","set":"As","clientCond":"TRUE","attrs":["Ghost"],"table":"T","storeCond":"TRUE","colOf":{"Ghost":"Id"}}]
	}`
	if _, err := Decode(strings.NewReader(doc)); err == nil {
		t.Fatal("fragment over unknown attribute accepted")
	}
}

func TestEncodeDecodeChainWithFKs(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, workload.Chain(5)); err != nil {
		t.Fatal(err)
	}
	m, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Store.Table("TEntity3").FKs) != 2 {
		t.Fatalf("foreign keys lost: %+v", m.Store.Table("TEntity3").FKs)
	}
	if _, err := compiler.New().Compile(m); err != nil {
		t.Fatal(err)
	}
}
