package modelio

import (
	"bytes"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/state"
)

func sampleRows() *state.StoreState {
	ss := state.NewStoreState()
	ss.InsertRow("HR", state.Row{"Id": cond.Int(1), "Name": cond.String("ada")})
	ss.InsertRow("HR", state.Row{"Id": cond.Int(2), "Name": cond.String("bob")})
	ss.InsertRow("Emp", state.Row{"Id": cond.Int(1), "Dept": cond.String("eng"), "Remote": cond.Bool(true), "Load": cond.Float(0.5)})
	ss.Tables["Empty"] = nil
	return ss
}

func TestRowsRoundtrip(t *testing.T) {
	ss := sampleRows()
	payload, err := EncodeRows(ss)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRows(payload)
	if err != nil {
		t.Fatal(err)
	}
	if d := state.DiffStore(ss, got); d != "" {
		t.Fatalf("roundtrip diverged:\n%s", d)
	}
	// Row order inside a table is part of the contract (batch offsets).
	if got.Tables["HR"][0]["Name"].Str() != "ada" || got.Tables["HR"][1]["Name"].Str() != "bob" {
		t.Fatal("row order not preserved")
	}
}

func TestRowsDeterministic(t *testing.T) {
	a, err := EncodeRows(sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRows(sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeRows is not deterministic")
	}
}

func TestRowsRejectsDamage(t *testing.T) {
	for _, bad := range []string{
		`{"tables":[{"name":"T","rows":[[{"col":"C","type":"int","value":"x"}]]}]}`,
		`{"tables":[{"name":"T","rows":[[{"col":"C","type":"blob","value":1}]]}]}`,
		`{"tables":[{"name":"","rows":[]}]}`,
		`{"tables":[{"name":"T","rows":[]},{"name":"T","rows":[]}]}`,
		`{"tables":[{"name":"T","rows":[[{"col":"C","type":"int","value":1},{"col":"C","type":"int","value":2}]]}]}`,
		`{"tables":`,
	} {
		if _, err := DecodeRows([]byte(bad)); err == nil {
			t.Errorf("DecodeRows(%s) accepted damaged input", bad)
		}
	}
}

func TestRowsNilAndEmpty(t *testing.T) {
	payload, err := EncodeRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRows(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 0 {
		t.Fatalf("nil state decoded to %d tables", len(got.Tables))
	}
}
