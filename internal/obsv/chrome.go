package obsv

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome trace_event output: the recorded span set rendered as "X"
// (complete) events, loadable in chrome://tracing and Perfetto. Span IDs
// and parents ride along in args so tools (and tests) can rebuild the
// span tree from the file alone.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the JSON-object envelope ({"traceEvents": [...]}), the
// format variant Perfetto and chrome://tracing both accept.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// ChromeEvents converts spans to trace_event entries, ordered by start
// time for stable output.
func ChromeEvents(spans []SpanData) []chromeEvent {
	sorted := append([]SpanData(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	evs := make([]chromeEvent, 0, len(sorted))
	for _, sp := range sorted {
		args := map[string]string{
			"id":      formatUint(sp.ID),
			"parent":  formatUint(sp.Parent),
			"outcome": sp.Outcome,
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Val
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name,
			Cat:  "incmap",
			Ph:   "X",
			TS:   micros(sp.Start),
			Dur:  micros(sp.Dur),
			PID:  1,
			TID:  sp.TID,
			Args: args,
		})
	}
	return evs
}

// WriteChromeTrace writes the spans as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: ChromeEvents(spans), DisplayUnit: "ms"})
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// PhaseSummary aggregates spans by name: how many ran and how much
// (possibly overlapping) time they cover. This is the per-phase breakdown
// mapbench appends to its BENCH_*.json envelopes.
type PhaseSummary struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// SummarizePhases folds spans into per-name totals, sorted by descending
// total time.
func SummarizePhases(spans []SpanData) []PhaseSummary {
	idx := map[string]int{}
	var out []PhaseSummary
	for _, sp := range spans {
		i, ok := idx[sp.Name]
		if !ok {
			i = len(out)
			idx[sp.Name] = i
			out = append(out, PhaseSummary{Name: sp.Name})
		}
		out[i].Count++
		out[i].Seconds += sp.Dur.Seconds()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}
