package obsv

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The metrics registry: process-wide, always-on, lock-free counters that
// replace grepping ad-hoc Stats structs when operating the system. The
// per-compilation Stats structs remain the API for one operation's work;
// the registry aggregates across every compilation in the process and is
// exported through expvar (and Snapshot) for scraping.

// counterStripes spreads one hot counter over several cache lines so
// concurrent validation workers do not serialize on a single atomic word.
// Must be a power of two.
const counterStripes = 8

// stripe is one cache-line-padded counter cell.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a lock-free, striped monotonic counter.
type Counter struct {
	s [counterStripes]stripe
}

// Add increments the counter. The stripe is picked from the address of a
// stack variable, which differs across goroutines (stacks are distinct
// allocations), so concurrent adders usually land on different cache
// lines; Load sums all stripes.
func (c *Counter) Add(d int64) {
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (counterStripes - 1)
	c.s[i].v.Add(d)
}

// Load returns the counter's value.
func (c *Counter) Load() int64 {
	var n int64
	for i := range c.s {
		n += c.s[i].v.Load()
	}
	return n
}

// Registry is a named-counter registry with optional gauge callbacks
// (for values owned elsewhere, like the condition intern table's size).
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Add increments the named counter.
func (r *Registry) Add(name string, d int64) { r.Counter(name).Add(d) }

// RegisterGauge registers a callback sampled at Snapshot time. Registering
// the same name again replaces the callback.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	r.gauges.Store(name, fn)
}

// Snapshot returns the current value of every counter and gauge.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		out[k.(string)] = v.(func() int64)()
		return true
	})
	return out
}

// Names returns the sorted metric names currently present.
func (r *Registry) Names() []string {
	var names []string
	r.counters.Range(func(k, _ any) bool { names = append(names, k.(string)); return true })
	r.gauges.Range(func(k, _ any) bool { names = append(names, k.(string)); return true })
	sort.Strings(names)
	return names
}

// defaultRegistry is the process-wide registry the compilation stack
// reports into.
var defaultRegistry = NewRegistry()

// Metrics returns the process-wide registry.
func Metrics() *Registry { return defaultRegistry }

// Add increments a counter of the process-wide registry.
func Add(name string, d int64) { defaultRegistry.Add(name, d) }

// RegisterGauge registers a gauge on the process-wide registry.
func RegisterGauge(name string, fn func() int64) { defaultRegistry.RegisterGauge(name, fn) }

// Snapshot snapshots the process-wide registry.
func Snapshot() map[string]int64 { return defaultRegistry.Snapshot() }

// Metric names reported by the compilation stack. Kept as constants so
// dashboards and tests reference one vocabulary.
const (
	// Full compiler.
	MCompiles            = "compile.full"
	MCompileCells        = "compile.cells_visited"
	MCompileTasks        = "compile.validation_tasks"
	MCompileContainments = "compile.containments"
	MCompileCacheHits    = "compile.satcache.hit"
	MCompileCacheMisses  = "compile.satcache.miss"
	MCompileCancelled    = "compile.cancelled"
	MCompileBudget       = "compile.budget_exceeded"
	MCompilePanics       = "compile.panics_recovered"
	// Containment checker (all clients: full, incremental, tooling).
	MContainments          = "containment.checks"
	MContainmentBlockPairs = "containment.block_pairs"
	// Incremental compiler.
	MApplies           = "incremental.applies"
	MApplyContainments = "incremental.containments"
	MApplyAdaptedViews = "incremental.adapted_views"
	MApplyBuiltViews   = "incremental.built_views"
	MApplyCacheHits    = "incremental.satcache.hit"
	MApplyCacheMisses  = "incremental.satcache.miss"
	MApplyCancelled    = "incremental.cancelled"
	// Session fallback ladder.
	MEvolves           = "session.evolves"
	MEvolveIncremental = "session.evolve.incremental"
	MEvolveFallback    = "session.evolve.fallback"
	MEvolveCancelled   = "session.evolve.cancelled"
	MEvolvePanics      = "session.evolve.panics_recovered"
	// Condition layer gauges (registered by the cond package's consumers).
	MInternSize      = "cond.intern.size"
	MInternEvictions = "cond.intern.evictions"
	// CDCL prover gauges, fed by cond's process-lifetime solver counters:
	// one flush of a local stats struct per solve keeps the solver's hot
	// loop free of shared atomics.
	MSatPropagations = "cond.sat.propagations"
	MSatConflicts    = "cond.sat.conflicts"
	MSatLearned      = "cond.sat.learned"
	MSatBackjumps    = "cond.sat.backjumps"
	MSatLemmaHits    = "cond.sat.lemma_hits"
	MSatLemmasStored = "cond.sat.lemmas_stored"
	// Persistent compile store (internal/store): artifact-level traffic with
	// the on-disk cache. A hit is a record decoded and accepted (version,
	// fingerprint and checksum all matched); a miss is any load that fell
	// back to a cold start, whatever the reason.
	MStoreHits         = "store.hits"
	MStoreMisses       = "store.misses"
	MStoreEvictions    = "store.evictions"
	MStoreBytesRead    = "store.bytes_read"
	MStoreBytesWritten = "store.bytes_written"
	// Session snapshot persistence: errors surfaced by Session.Flush and
	// the write-behind retry loop that precedes them.
	MStorePersistErrors  = "store.persist_errors"
	MStorePersistRetries = "store.persist_retries"
	// Mapping-compiler daemon (internal/server). Requests counts every
	// HTTP request; Shed counts admissions rejected by the bounded queue
	// (429); StaleServes counts read responses flagged stale because the
	// tenant's last evolve failed; EvolveErrors counts evolve jobs that
	// ended in an error after admission; HandlerPanics counts panics
	// recovered inside the daemon's workers and handlers.
	MServeRequests      = "server.requests"
	MServeShed          = "server.shed"
	MServeStaleServes   = "server.stale_serves"
	MServeEvolveErrors  = "server.evolve_errors"
	MServeHandlerPanics = "server.handler_panics"
	// server.queue_depth is registered as a gauge by the daemon.
	MServeQueueDepth = "server.queue_depth"
	// Per-tenant authorization on mutating endpoints: 401 is a missing or
	// malformed credential, 403 a well-formed credential for the wrong
	// tenant — kept distinct from each other and from 429 so an auth
	// misconfiguration never masquerades as overload.
	MServeAuth401 = "server.auth_401"
	MServeAuth403 = "server.auth_403"
	// Intern-table aging: entries reclaimed by the periodic cross-tenant
	// sweep (as opposed to capacity-pressure clock evictions).
	MInternAged = "cond.intern.aged"
	// Versioned rollout engine (internal/server): state-machine outcomes
	// and backfill progress. RolloutGateFailures counts health-gate
	// verdicts that triggered an automatic rollback.
	MRolloutStarted      = "rollout.started"
	MRolloutCutovers     = "rollout.cutovers"
	MRolloutRollbacks    = "rollout.rollbacks"
	MRolloutGateFailures = "rollout.gate_failures"
	MRolloutDivergences  = "rollout.divergences"
	MBackfillBatches     = "rollout.backfill.batches"
	MBackfillRetries     = "rollout.backfill.retries"
	MBackfillResumed     = "rollout.backfill.resumed"
	// Streaming view executor (internal/exec): per-operator traffic. Each
	// operator accumulates locally and flushes once at iterator Close, so
	// the per-batch hot loop touches no shared atomics. Rows/Batches count
	// tuples and batches emitted by every operator; ScanRows only those
	// read from a table store; JoinBuildRows the tuples a hash join held
	// as its build side; Spills the blocking operators whose held state
	// exceeded the configured spill threshold (a memory-pressure signal —
	// rows stay in memory); ScanFaults the injected or store-level scan
	// errors surfaced as typed executor errors.
	MExecOpens         = "exec.opens"
	MExecRows          = "exec.rows"
	MExecBatches       = "exec.batches"
	MExecScanRows      = "exec.scan.rows"
	MExecJoinBuildRows = "exec.join.build_rows"
	MExecSpills        = "exec.spills"
	MExecConstructed   = "exec.constructed"
	MExecScanFaults    = "exec.scan.faults"
)

// expvarOnce guards the process-global expvar name, which panics on
// re-publication.
var expvarOnce sync.Once

// PublishExpvar exposes the process-wide registry under the expvar name
// "incmap" (served on /debug/vars wherever the application installs the
// expvar handler). Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("incmap", expvar.Func(func() any { return Snapshot() }))
	})
}
