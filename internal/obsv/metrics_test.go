package obsv

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	r.RegisterGauge("g", func() int64 { return 42 })
	snap := r.Snapshot()
	if snap["a"] != 5 || snap["b"] != 1 || snap["g"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "g" {
		t.Fatalf("names = %v", names)
	}
	// Counter identity: repeated lookups return the same counter.
	if r.Counter("a") != r.Counter("a") {
		t.Fatalf("Counter not stable")
	}
}

func TestExpvarExport(t *testing.T) {
	Add(MCompiles, 1)
	PublishExpvar()
	PublishExpvar() // second call must not panic
	v := expvar.Get("incmap")
	if v == nil {
		t.Fatal("expvar \"incmap\" not published")
	}
	var snap map[string]int64
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
	if snap[MCompiles] < 1 {
		t.Fatalf("expvar snapshot missing %s: %v", MCompiles, snap)
	}
}
