package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("Compile")
	if sp != nil {
		t.Fatalf("nil tracer produced a span")
	}
	// Every operation on the nil span chain must be a no-op.
	sp.Annotate(String("k", "v"))
	child := sp.Child("Validate")
	child.ChildIn(nil, "task").End(OutcomeOK)
	child.End(OutcomeOK)
	sp.End(OutcomeOK)
	sp.EndErr(nil)
	if sp.ID() != 0 {
		t.Fatalf("nil span has an ID")
	}
	if tr.OpenSpans() != 0 || tr.DoubleEnds() != 0 {
		t.Fatalf("nil tracer counters moved")
	}
	var b *Buffer
	b.Flush()
	if b.Len() != 0 {
		t.Fatalf("nil buffer non-empty")
	}
}

func TestNullPathAllocFree(t *testing.T) {
	SetDefault(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		tr := Resolve(nil)
		sp := tr.Span("Compile")
		c := sp.Child("Validate")
		c.End(OutcomeOK)
		sp.End(OutcomeOK)
	})
	if allocs != 0 {
		t.Fatalf("null tracing path allocates: %v allocs/op", allocs)
	}
}

func TestSpanTree(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	root := tr.Span("Compile", String("model", "chain"))
	val := root.Child("Validate")
	task := val.Child("span-worker", String("task", "t0"))
	task.End(OutcomeOK)
	val.End(OutcomeOK)
	root.End(OutcomeOK, String("views", "3"))

	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["Validate"].Parent != byName["Compile"].ID {
		t.Errorf("Validate not parented under Compile")
	}
	if byName["span-worker"].Parent != byName["Validate"].ID {
		t.Errorf("span-worker not parented under Validate")
	}
	if byName["Compile"].Outcome != OutcomeOK {
		t.Errorf("outcome = %q", byName["Compile"].Outcome)
	}
	found := false
	for _, a := range byName["Compile"].Attrs {
		if a.Key == "views" && a.Val == "3" {
			found = true
		}
	}
	if !found {
		t.Errorf("End-time attribute missing: %v", byName["Compile"].Attrs)
	}
	if tr.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d after all ended", tr.OpenSpans())
	}
}

func TestEndIsExactlyOnce(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	sp := tr.Span("x")
	sp.End(OutcomeOK)
	sp.End(OutcomeError)
	if got := sink.Len(); got != 1 {
		t.Fatalf("span recorded %d times", got)
	}
	if tr.DoubleEnds() != 1 {
		t.Fatalf("DoubleEnds = %d, want 1", tr.DoubleEnds())
	}
	if sink.Spans()[0].Outcome != OutcomeOK {
		t.Fatalf("second End overwrote outcome")
	}
}

func TestBufferFlush(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	root := tr.Span("Compile")
	buf := tr.Buffer(3)
	for i := 0; i < 4; i++ {
		root.ChildIn(buf, "span-worker").End(OutcomeOK)
	}
	if sink.Len() != 0 {
		t.Fatalf("buffered spans leaked to the sink before Flush")
	}
	if buf.Len() != 4 {
		t.Fatalf("buffer holds %d spans, want 4", buf.Len())
	}
	buf.Flush()
	if sink.Len() != 4 {
		t.Fatalf("sink got %d spans after flush, want 4", sink.Len())
	}
	for _, sp := range sink.Spans() {
		if sp.TID != 3 {
			t.Errorf("buffered span TID = %d, want 3", sp.TID)
		}
		if sp.Parent != root.ID() {
			t.Errorf("buffered span parent = %d, want %d", sp.Parent, root.ID())
		}
	}
	buf.Flush() // empty flush is a no-op
	if sink.Len() != 4 {
		t.Fatalf("empty flush recorded spans")
	}
	root.End(OutcomeOK)
}

func TestConcurrentBuffers(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	root := tr.Span("Compile")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := tr.Buffer(w)
			for i := 0; i < perWorker; i++ {
				sp := root.ChildIn(buf, "span-worker")
				sp.Child("containment-check").End(OutcomeOK)
				sp.End(OutcomeOK)
			}
			buf.Flush()
		}(w)
	}
	wg.Wait()
	root.End(OutcomeOK)
	if got, want := sink.Len(), workers*perWorker*2+1; got != want {
		t.Fatalf("got %d spans, want %d", got, want)
	}
	if tr.OpenSpans() != 0 || tr.DoubleEnds() != 0 {
		t.Fatalf("open=%d double=%d", tr.OpenSpans(), tr.DoubleEnds())
	}
	// Every containment-check must be parented under a span-worker from
	// the same track.
	byID := map[uint64]SpanData{}
	for _, sp := range sink.Spans() {
		byID[sp.ID] = sp
	}
	for _, sp := range sink.Spans() {
		if sp.Name != "containment-check" {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok || parent.Name != "span-worker" || parent.TID != sp.TID {
			t.Fatalf("containment-check badly parented: %+v -> %+v", sp, parent)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	sp := tr.Span("Apply")
	ctx := ContextWithSpan(context.Background(), sp)
	got := SpanFromContext(ctx)
	if got != sp {
		t.Fatalf("span not propagated")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatalf("empty context returned a span")
	}
	if ContextWithSpan(context.Background(), nil) == nil {
		t.Fatalf("nil span must keep the context usable")
	}
	sp.End(OutcomeOK)
}

func TestChromeTraceOutput(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	root := tr.Span("Compile", String("model", "hub-rim"))
	time.Sleep(time.Millisecond)
	c := root.Child("Validate")
	c.End(OutcomeOK)
	root.End(OutcomeOK)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sink.Spans()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(parsed.TraceEvents))
	}
	// Sorted by start: Compile first.
	ev := parsed.TraceEvents[0]
	if ev.Name != "Compile" || ev.Ph != "X" {
		t.Fatalf("first event = %+v", ev)
	}
	if ev.Args["model"] != "hub-rim" || ev.Args["outcome"] != OutcomeOK {
		t.Fatalf("args = %v", ev.Args)
	}
	if ev.Dur <= 0 {
		t.Fatalf("non-positive duration %v", ev.Dur)
	}
	// Parent linkage survives the round-trip.
	if parsed.TraceEvents[1].Args["parent"] != parsed.TraceEvents[0].Args["id"] {
		t.Fatalf("parent linkage lost: %v / %v", parsed.TraceEvents[1].Args, parsed.TraceEvents[0].Args)
	}
}

func TestSummarizePhases(t *testing.T) {
	spans := []SpanData{
		{Name: "Validate", Dur: 2 * time.Second},
		{Name: "span-worker", Dur: time.Second},
		{Name: "span-worker", Dur: time.Second},
	}
	sum := SummarizePhases(spans)
	if len(sum) != 2 {
		t.Fatalf("got %d phases", len(sum))
	}
	if sum[0].Name != "Validate" && sum[0].Seconds < sum[1].Seconds {
		t.Fatalf("not sorted by time: %+v", sum)
	}
	for _, p := range sum {
		if p.Name == "span-worker" && (p.Count != 2 || p.Seconds != 2) {
			t.Fatalf("span-worker summary wrong: %+v", p)
		}
	}
}

func TestDefaultTracerGate(t *testing.T) {
	sink := NewRecordingSink()
	tr := New(sink)
	SetDefault(tr)
	defer SetDefault(nil)
	if Resolve(nil) != tr {
		t.Fatalf("Resolve(nil) did not find the default")
	}
	other := New(NewRecordingSink())
	if Resolve(other) != other {
		t.Fatalf("explicit tracer must win over the default")
	}
	SetDefault(nil)
	if Resolve(nil) != nil {
		t.Fatalf("default not cleared")
	}
}
