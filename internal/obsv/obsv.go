// Package obsv is the observability layer of the compilation stack: a
// structured tracer recording hierarchical spans (Compile → Validate →
// span-worker → containment-check; Apply → adapt-fragments → adapt-views →
// containment-check) and a process-wide metrics registry exported through
// expvar.
//
// The design goal is an always-on layer whose disabled cost is invisible on
// the hot paths of the compiler. Tracing is off unless a *Tracer is
// installed — either threaded through compiler/core options or installed
// process-wide with SetDefault — and every tracing entry point is nil-safe:
// a nil *Tracer produces nil *Spans, and every method of a nil *Span is a
// no-op. Resolving the default tracer is a single atomic pointer load, done
// once per compilation, not per span; with no tracer installed the per-cell
// and per-check work of the compiler executes exactly as before.
//
// Spans carry monotonic start offsets and durations (measured against the
// tracer's epoch, immune to wall-clock steps), an outcome label ("ok",
// "cancelled", "budget", "panic", ...), and a short list of
// bounded-cardinality attributes. Sinks must be safe for concurrent Record
// calls; parallel validation workers avoid sink contention by recording
// into per-worker Buffers that are flushed once at the pool barrier.
package obsv

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome labels shared by the compilation stack. Spans may use free-form
// outcomes, but sticking to this vocabulary keeps trace analysis simple.
const (
	OutcomeOK        = "ok"
	OutcomeError     = "error"
	OutcomeInvalid   = "invalid"   // a genuine validation failure
	OutcomeCancelled = "cancelled" // context cancellation or deadline
	OutcomeBudget    = "budget"    // validation budget exhausted
	OutcomePanic     = "panic"     // recovered panic
	OutcomeHit       = "hit"       // cache or intern-table hit
	OutcomeMiss      = "miss"
)

// Attr is one bounded-cardinality span attribute. Values should identify
// schema objects or configuration (a table name, a worker index), not
// unbounded data.
type Attr struct {
	Key, Val string
}

// String builds an Attr.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// SpanData is one finished span as delivered to a Sink.
type SpanData struct {
	// ID and Parent identify the span and its parent (0 = root) within one
	// tracer's lifetime.
	ID, Parent uint64
	// Name is the span's operation name ("Compile", "span-worker", ...).
	Name string
	// TID is the logical track the span ran on: a validation worker index,
	// or 0 for the coordinating goroutine. It becomes the Chrome trace tid.
	TID int
	// Start is the monotonic offset from the tracer's epoch; Dur the
	// monotonic duration.
	Start, Dur time.Duration
	// Outcome labels how the span ended (see the Outcome constants).
	Outcome string
	// Attrs are the span's attributes, creation-time ones first.
	Attrs []Attr
}

// Sink consumes finished spans. Record must be safe for concurrent use;
// RecordBatch (optional, see BatchSink) lets per-worker buffers flush in
// one call.
type Sink interface {
	Record(sp SpanData)
}

// BatchSink is an optional Sink refinement accepting a whole buffer of
// spans at once.
type BatchSink interface {
	Sink
	RecordBatch(sps []SpanData)
}

// Tracer creates spans and dispatches them to its sink. A nil *Tracer is
// the null tracer: it produces nil spans and records nothing.
type Tracer struct {
	sink  Sink
	epoch time.Time

	nextID atomic.Uint64
	// started/ended track span balance so tests can assert that every code
	// path — including cancellation, budget exhaustion and recovered panics
	// — closes exactly the spans it opened. doubleEnds counts excess End
	// calls (always 0 in a correct instrumentation).
	started    atomic.Int64
	ended      atomic.Int64
	doubleEnds atomic.Int64
}

// New returns a tracer delivering finished spans to sink.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// defaultTracer is the process-wide tracer; nil when tracing is off. The
// compiler resolves it once per compilation with Default — one atomic load
// — so the null tracer adds no per-cell or per-check work.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs (or, with nil, removes) the process-wide tracer used
// by compilations that were not handed an explicit tracer.
func SetDefault(t *Tracer) {
	if t == nil {
		defaultTracer.Store(nil)
		return
	}
	defaultTracer.Store(t)
}

// Default returns the process-wide tracer, nil when tracing is off.
func Default() *Tracer { return defaultTracer.Load() }

// Resolve returns the explicit tracer when non-nil, else the process-wide
// default. This is the one atomic load a compilation pays when tracing is
// off.
func Resolve(explicit *Tracer) *Tracer {
	if explicit != nil {
		return explicit
	}
	return Default()
}

// OpenSpans reports started-but-not-ended spans; 0 once every code path has
// closed its spans. Nil-safe.
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load() - t.ended.Load()
}

// DoubleEnds reports spans ended more than once (0 in a correct
// instrumentation). Nil-safe.
func (t *Tracer) DoubleEnds() int64 {
	if t == nil {
		return 0
	}
	return t.doubleEnds.Load()
}

// recorder is a span destination: the tracer's sink, or a per-worker
// buffer.
type recorder interface {
	record(sp SpanData)
}

// sinkRecorder adapts the tracer's shared sink.
type sinkRecorder struct{ t *Tracer }

func (r sinkRecorder) record(sp SpanData) { r.t.sink.Record(sp) }

// Span is one in-flight unit of work. A nil *Span (tracing off) ignores
// every call.
type Span struct {
	t      *Tracer
	dest   recorder
	id     uint64
	parent uint64
	tid    int
	name   string
	start  time.Duration
	attrs  []Attr
	ended  atomic.Bool
}

func (t *Tracer) newSpan(dest recorder, parent uint64, tid int, name string, attrs []Attr) *Span {
	t.started.Add(1)
	return &Span{
		t:      t,
		dest:   dest,
		id:     t.nextID.Add(1),
		parent: parent,
		tid:    tid,
		name:   name,
		start:  time.Since(t.epoch),
		attrs:  attrs,
	}
}

// Span starts a root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Span(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(sinkRecorder{t}, 0, 0, name, attrs)
}

// SpanCtx starts a span parented under the span carried by ctx when that
// span belongs to this tracer, and a root span otherwise. This is how an
// operation run inside a larger traced operation (a compilation inside the
// pipeline's fallback ladder) nests instead of starting a new root.
// Nil-safe.
func (t *Tracer) SpanCtx(ctx context.Context, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if p := SpanFromContext(ctx); p != nil && p.t == t {
		return p.Child(name, attrs...)
	}
	return t.Span(name, attrs...)
}

// Child starts a span under s, recording to the same destination (the
// shared sink, or s's buffer). Nil-safe.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.dest, s.id, s.tid, name, attrs)
}

// ChildIn starts a span under s recording into the given per-worker
// buffer. With a nil buffer it behaves like Child. Nil-safe.
func (s *Span) ChildIn(b *Buffer, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	if b == nil {
		return s.Child(name, attrs...)
	}
	return s.t.newSpan(b, s.id, b.tid, name, attrs)
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Annotate appends attributes to an in-flight span. It must be called from
// the goroutine that owns the span. Nil-safe.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.ended.Load() {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End finishes the span with the given outcome and delivers it to its
// destination. Exactly the first End takes effect; later calls are counted
// (Tracer.DoubleEnds) and otherwise ignored. Nil-safe, so instrumentation
// can unconditionally defer End on paths that may run without tracing.
func (s *Span) End(outcome string, attrs ...Attr) {
	if s == nil {
		return
	}
	if !s.ended.CompareAndSwap(false, true) {
		s.t.doubleEnds.Add(1)
		return
	}
	s.t.ended.Add(1)
	dur := time.Since(s.t.epoch) - s.start
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	s.dest.record(SpanData{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		TID:     s.tid,
		Start:   s.start,
		Dur:     dur,
		Outcome: outcome,
		Attrs:   s.attrs,
	})
}

// EndErr ends the span with an outcome derived from err: OutcomeOK for
// nil, otherwise OutcomeError with the error text attached. Callers with
// richer classifications (cancelled/budget/panic) should End explicitly.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err == nil {
		s.End(OutcomeOK)
		return
	}
	s.End(OutcomeError, String("error", err.Error()))
}

// Buffer is a per-worker span destination: spans recorded into it are
// appended without locking and handed to the tracer's sink in one batch at
// Flush. One buffer must only ever be used by one goroutine at a time
// (create one per worker, flush after the pool barrier).
type Buffer struct {
	t     *Tracer
	tid   int
	spans []SpanData
}

// Buffer returns a span buffer for the given logical track (worker index).
// Nil-safe: a nil tracer returns a nil buffer, which ChildIn and Flush
// ignore.
func (t *Tracer) Buffer(tid int) *Buffer {
	if t == nil {
		return nil
	}
	return &Buffer{t: t, tid: tid}
}

func (b *Buffer) record(sp SpanData) { b.spans = append(b.spans, sp) }

// Len reports the number of buffered spans. Nil-safe.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.spans)
}

// Flush delivers the buffered spans to the tracer's sink and empties the
// buffer. Nil-safe.
func (b *Buffer) Flush() {
	if b == nil || len(b.spans) == 0 {
		return
	}
	if bs, ok := b.t.sink.(BatchSink); ok {
		bs.RecordBatch(b.spans)
	} else {
		for _, sp := range b.spans {
			b.t.sink.Record(sp)
		}
	}
	b.spans = b.spans[:0]
}

// Context propagation ---------------------------------------------------------

type ctxKey struct{}

// ContextWithSpan attaches a span to the context so downstream layers (the
// containment checker under a validation task, for example) parent their
// spans correctly across package boundaries.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span attached to ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// RecordingSink --------------------------------------------------------------

// RecordingSink collects spans in memory. It is safe for concurrent use
// and implements BatchSink.
type RecordingSink struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewRecordingSink returns an empty recording sink.
func NewRecordingSink() *RecordingSink { return &RecordingSink{} }

// Record implements Sink.
func (r *RecordingSink) Record(sp SpanData) {
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// RecordBatch implements BatchSink.
func (r *RecordingSink) RecordBatch(sps []SpanData) {
	r.mu.Lock()
	r.spans = append(r.spans, sps...)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (r *RecordingSink) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.spans...)
}

// Drain returns the recorded spans and empties the sink, so one process
// can segment a long trace (one experiment at a time).
func (r *RecordingSink) Drain() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.spans
	r.spans = nil
	return out
}

// Len reports the number of recorded spans.
func (r *RecordingSink) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}
