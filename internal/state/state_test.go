package state

import (
	"testing"
	"testing/quick"

	"github.com/ormkit/incmap/internal/cond"
)

func TestRowCanonicalDeterministic(t *testing.T) {
	r := Row{"b": cond.Int(2), "a": cond.String("x"), "c": cond.Bool(true)}
	want := "a='x',b=2,c=true"
	if got := r.Canonical(); got != want {
		t.Errorf("Canonical = %q, want %q", got, want)
	}
	if got := r.Clone().Canonical(); got != want {
		t.Errorf("clone changed canonical form: %q", got)
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{"a": cond.Int(1)}
	c := r.Clone()
	c["a"] = cond.Int(2)
	if r["a"].IntVal() != 1 {
		t.Errorf("clone not independent")
	}
}

func TestEqualRowsMultiset(t *testing.T) {
	a := []Row{{"x": cond.Int(1)}, {"x": cond.Int(2)}, {"x": cond.Int(1)}}
	b := []Row{{"x": cond.Int(2)}, {"x": cond.Int(1)}, {"x": cond.Int(1)}}
	if !EqualRows(a, b) {
		t.Errorf("permuted multisets must be equal")
	}
	c := []Row{{"x": cond.Int(2)}, {"x": cond.Int(2)}, {"x": cond.Int(1)}}
	if EqualRows(a, c) {
		t.Errorf("different multiplicities must differ")
	}
	if EqualRows(a, a[:2]) {
		t.Errorf("different lengths must differ")
	}
}

func TestEqualClientStates(t *testing.T) {
	mk := func() *ClientState {
		cs := NewClientState()
		cs.Insert("S", &Entity{Type: "T", Attrs: Row{"Id": cond.Int(1)}})
		cs.Insert("S", &Entity{Type: "U", Attrs: Row{"Id": cond.Int(2), "N": cond.String("n")}})
		cs.Relate("A", AssocPair{Ends: Row{"l": cond.Int(1), "r": cond.Int(2)}})
		return cs
	}
	a, b := mk(), mk()
	if !EqualClient(a, b) {
		t.Fatalf("identical states differ:\n%s", Diff(a, b))
	}
	b.Entities["S"][0].Attrs["Id"] = cond.Int(9)
	if EqualClient(a, b) {
		t.Fatalf("modified state equal")
	}
	if Diff(a, b) == "" {
		t.Fatalf("Diff empty for unequal states")
	}
}

func TestEqualClientEmptySetIrrelevant(t *testing.T) {
	a := NewClientState()
	b := NewClientState()
	b.Entities["S"] = nil
	b.Assocs["A"] = nil
	if !EqualClient(a, b) {
		t.Errorf("empty collections must not matter")
	}
}

func TestCloneDeep(t *testing.T) {
	cs := NewClientState()
	cs.Insert("S", &Entity{Type: "T", Attrs: Row{"Id": cond.Int(1)}})
	cs.Relate("A", AssocPair{Ends: Row{"l": cond.Int(1)}})
	cp := cs.Clone()
	cp.Entities["S"][0].Attrs["Id"] = cond.Int(5)
	cp.Assocs["A"][0].Ends["l"] = cond.Int(5)
	if cs.Entities["S"][0].Attrs["Id"].IntVal() != 1 {
		t.Errorf("entity clone not deep")
	}
	if cs.Assocs["A"][0].Ends["l"].IntVal() != 1 {
		t.Errorf("assoc clone not deep")
	}

	ss := NewStoreState()
	ss.InsertRow("T", Row{"a": cond.Int(1)})
	sp := ss.Clone()
	sp.Tables["T"][0]["a"] = cond.Int(9)
	if ss.Tables["T"][0]["a"].IntVal() != 1 {
		t.Errorf("store clone not deep")
	}
}

func TestInstances(t *testing.T) {
	e := &Entity{Type: "Employee", Attrs: Row{"Id": cond.Int(2)}}
	ei := EntityInstance{E: e}
	if ei.InstanceType("") != "Employee" || ei.InstanceType("x") != "" {
		t.Errorf("entity instance types wrong")
	}
	if v, ok := ei.Lookup("Id"); !ok || v.IntVal() != 2 {
		t.Errorf("entity lookup wrong")
	}
	if _, ok := ei.Lookup("Nope"); ok {
		t.Errorf("missing attribute should be NULL")
	}
	ri := RowInstance{R: Row{"c": cond.String("v")}}
	if ri.InstanceType("") != "" {
		t.Errorf("rows are untyped")
	}
	if v, ok := ri.Lookup("c"); !ok || v.Str() != "v" {
		t.Errorf("row lookup wrong")
	}
}

// TestEqualRowsSymmetric is a property test: multiset equality must be
// symmetric and reflexive under permutation.
func TestEqualRowsSymmetric(t *testing.T) {
	f := func(xs []int8) bool {
		a := make([]Row, len(xs))
		b := make([]Row, len(xs))
		for i, x := range xs {
			a[i] = Row{"v": cond.Int(int64(x))}
			b[len(xs)-1-i] = Row{"v": cond.Int(int64(x))}
		}
		return EqualRows(a, b) && EqualRows(b, a) && EqualRows(a, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
