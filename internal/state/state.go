// Package state holds concrete instances of client and store schemas: typed
// entities with attribute values, association pairs, and table rows. The
// query-tree evaluator runs over these states, and the roundtripping
// property (§2.2 of the paper: V ∘ Q = identity on client states) is tested
// against them.
package state

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
)

// Row is a table row or intermediate tuple: a map from column name to
// value. Absent keys are NULL.
type Row map[string]cond.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Canonical renders the row deterministically, for comparison and debug
// output.
func (r Row) Canonical() string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, r[k])
	}
	return b.String()
}

// Entity is an instance of a concrete entity type.
type Entity struct {
	Type  string
	Attrs Row
}

// Clone returns a deep copy of the entity.
func (e *Entity) Clone() *Entity { return &Entity{Type: e.Type, Attrs: e.Attrs.Clone()} }

// Canonical renders the entity deterministically.
func (e *Entity) Canonical() string { return e.Type + "{" + e.Attrs.Canonical() + "}" }

// AssocPair is one instance of an association: the key values of the two
// participating entities, stored under the association's qualified column
// names (see AssocEndCols).
type AssocPair struct {
	Ends Row
}

// ClientState is an instance of a client schema.
type ClientState struct {
	// Entities maps entity-set names to their members.
	Entities map[string][]*Entity
	// Assocs maps association names to their pairs.
	Assocs map[string][]AssocPair
}

// NewClientState returns an empty client state.
func NewClientState() *ClientState {
	return &ClientState{Entities: map[string][]*Entity{}, Assocs: map[string][]AssocPair{}}
}

// Insert adds an entity to a set.
func (c *ClientState) Insert(set string, e *Entity) {
	c.Entities[set] = append(c.Entities[set], e)
}

// Relate adds an association pair.
func (c *ClientState) Relate(assoc string, p AssocPair) {
	c.Assocs[assoc] = append(c.Assocs[assoc], p)
}

// Clone returns a deep copy of the client state.
func (c *ClientState) Clone() *ClientState {
	out := NewClientState()
	for set, es := range c.Entities {
		cp := make([]*Entity, len(es))
		for i, e := range es {
			cp[i] = e.Clone()
		}
		out.Entities[set] = cp
	}
	for a, ps := range c.Assocs {
		cp := make([]AssocPair, len(ps))
		for i, p := range ps {
			cp[i] = AssocPair{Ends: p.Ends.Clone()}
		}
		out.Assocs[a] = cp
	}
	return out
}

// StoreState is an instance of a relational schema.
type StoreState struct {
	Tables map[string][]Row
}

// NewStoreState returns an empty store state.
func NewStoreState() *StoreState { return &StoreState{Tables: map[string][]Row{}} }

// InsertRow appends a row to a table.
func (s *StoreState) InsertRow(table string, r Row) {
	s.Tables[table] = append(s.Tables[table], r)
}

// Clone returns a deep copy of the store state.
func (s *StoreState) Clone() *StoreState {
	out := NewStoreState()
	for t, rows := range s.Tables {
		cp := make([]Row, len(rows))
		for i, r := range rows {
			cp[i] = r.Clone()
		}
		out.Tables[t] = cp
	}
	return out
}

// canonicalMultiset sorts the canonical strings of a multiset.
func canonicalMultiset(items []string) []string {
	sort.Strings(items)
	return items
}

// EqualRows compares two row multisets.
func EqualRows(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	ca := make([]string, len(a))
	cb := make([]string, len(b))
	for i := range a {
		ca[i] = a[i].Canonical()
	}
	for i := range b {
		cb[i] = b[i].Canonical()
	}
	canonicalMultiset(ca)
	canonicalMultiset(cb)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// EqualClient compares two client states as multisets of entities and
// association pairs.
func EqualClient(a, b *ClientState) bool {
	if len(nonEmptySets(a.Entities)) != len(nonEmptySets(b.Entities)) {
		return false
	}
	for set, es := range a.Entities {
		if !equalEntities(es, b.Entities[set]) {
			return false
		}
	}
	for set, es := range b.Entities {
		if _, ok := a.Entities[set]; !ok && len(es) > 0 {
			return false
		}
	}
	for assoc, ps := range a.Assocs {
		if !equalPairs(ps, b.Assocs[assoc]) {
			return false
		}
	}
	for assoc, ps := range b.Assocs {
		if _, ok := a.Assocs[assoc]; !ok && len(ps) > 0 {
			return false
		}
	}
	return true
}

func nonEmptySets(m map[string][]*Entity) []string {
	var out []string
	for k, v := range m {
		if len(v) > 0 {
			out = append(out, k)
		}
	}
	return out
}

func equalEntities(a, b []*Entity) bool {
	if len(a) != len(b) {
		return false
	}
	ca := make([]string, len(a))
	cb := make([]string, len(b))
	for i := range a {
		ca[i] = a[i].Canonical()
	}
	for i := range b {
		cb[i] = b[i].Canonical()
	}
	canonicalMultiset(ca)
	canonicalMultiset(cb)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func equalPairs(a, b []AssocPair) bool {
	ra := make([]Row, len(a))
	rb := make([]Row, len(b))
	for i := range a {
		ra[i] = a[i].Ends
	}
	for i := range b {
		rb[i] = b[i].Ends
	}
	return EqualRows(ra, rb)
}

// Diff returns a human-readable description of the difference between two
// client states, or "" when equal. It is used in test failure messages.
func Diff(a, b *ClientState) string {
	if EqualClient(a, b) {
		return ""
	}
	var sb strings.Builder
	dump := func(label string, c *ClientState) {
		fmt.Fprintf(&sb, "%s:\n", label)
		sets := nonEmptySets(c.Entities)
		sort.Strings(sets)
		for _, set := range sets {
			items := make([]string, len(c.Entities[set]))
			for i, e := range c.Entities[set] {
				items[i] = e.Canonical()
			}
			canonicalMultiset(items)
			fmt.Fprintf(&sb, "  %s: %s\n", set, strings.Join(items, "; "))
		}
		var assocs []string
		for a2, ps := range c.Assocs {
			if len(ps) > 0 {
				assocs = append(assocs, a2)
			}
		}
		sort.Strings(assocs)
		for _, a2 := range assocs {
			items := make([]string, len(c.Assocs[a2]))
			for i, p := range c.Assocs[a2] {
				items[i] = p.Ends.Canonical()
			}
			canonicalMultiset(items)
			fmt.Fprintf(&sb, "  %s: %s\n", a2, strings.Join(items, "; "))
		}
	}
	dump("left", a)
	dump("right", b)
	return sb.String()
}

// EqualStore compares two store states as per-table row multisets (tables
// present with zero rows count as absent).
func EqualStore(a, b *StoreState) bool {
	for t, rows := range a.Tables {
		if !EqualRows(rows, b.Tables[t]) {
			return false
		}
	}
	for t, rows := range b.Tables {
		if _, ok := a.Tables[t]; !ok && len(rows) > 0 {
			return false
		}
	}
	return true
}

// DiffStore returns a human-readable description of the difference between
// two store states, or "" when equal.
func DiffStore(a, b *StoreState) string {
	if EqualStore(a, b) {
		return ""
	}
	var sb strings.Builder
	dump := func(label string, s *StoreState) {
		fmt.Fprintf(&sb, "%s:\n", label)
		var tables []string
		for t, rows := range s.Tables {
			if len(rows) > 0 {
				tables = append(tables, t)
			}
		}
		sort.Strings(tables)
		for _, t := range tables {
			items := make([]string, len(s.Tables[t]))
			for i, r := range s.Tables[t] {
				items[i] = r.Canonical()
			}
			canonicalMultiset(items)
			fmt.Fprintf(&sb, "  %s: %s\n", t, strings.Join(items, "; "))
		}
	}
	dump("left", a)
	dump("right", b)
	return sb.String()
}

// EntityInstance adapts an entity to the condition evaluation interface.
type EntityInstance struct {
	E *Entity
}

// InstanceType implements cond.Instance.
func (e EntityInstance) InstanceType(subject string) string {
	if subject != "" {
		return ""
	}
	return e.E.Type
}

// Lookup implements cond.Instance.
func (e EntityInstance) Lookup(attr string) (cond.Value, bool) {
	v, ok := e.E.Attrs[attr]
	return v, ok
}

// RowInstance adapts a row to the condition evaluation interface.
type RowInstance struct {
	R Row
}

// InstanceType implements cond.Instance.
func (RowInstance) InstanceType(string) string { return "" }

// Lookup implements cond.Instance.
func (r RowInstance) Lookup(attr string) (cond.Value, bool) {
	v, ok := r.R[attr]
	return v, ok
}
