// Package containment implements a query-containment checker for the query
// class the mapping compiler generates: unions of conjunctive blocks over
// entity sets, association sets and tables, with the condition language of
// package cond. Containment of such queries is NP-hard (the paper relies on
// this to motivate incremental compilation); the checker is sound — a true
// answer is always correct — and complete for the union-of-project-select
// and key-joined query shapes that fragments and views produce.
//
// Queries containing outer joins are first simplified; any remaining outer
// join is approximated conservatively (the left-hand query of ⊆ from above,
// the right-hand query from below), preserving soundness.
package containment

import (
	"fmt"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
)

// ScanKind distinguishes block scan targets.
type ScanKind int

// Scan targets.
const (
	KTable ScanKind = iota
	KSet
	KAssoc
)

// ScanRef is one scan of a conjunctive block.
type ScanRef struct {
	Alias string
	Kind  ScanKind
	Name  string
}

// ColRef is a column of a scan.
type ColRef struct {
	Alias, Col string
}

func (c ColRef) qualified() string { return c.Alias + "." + c.Col }

// Term is a projected output: a column reference or a literal.
type Term struct {
	Lit *cqt.Literal
	Ref ColRef
}

// CQ is one conjunctive block: a set of scans joined by column equalities,
// filtered by a condition with alias-qualified atoms, projecting named
// terms.
type CQ struct {
	Scans   []ScanRef
	Eqs     [][2]ColRef
	Cond    cond.Expr
	Proj    map[string]Term
	Subject string // alias of the typed (entity-set) scan, if any
}

// approxMode selects how outer joins are approximated.
type approxMode int

const (
	exact approxMode = iota
	upper            // superset of the query (for the ⊆ left-hand side)
	lower            // subset of the query (for the ⊆ right-hand side)
)

type normalizer struct {
	cat     *cqt.Catalog
	mode    approxMode
	nextID  int
	inexact bool // an approximation was actually applied
}

func (n *normalizer) fresh() string {
	n.nextID++
	return fmt.Sprintf("t%d", n.nextID)
}

// normalize converts a query tree into a union of conjunctive blocks.
func (n *normalizer) normalize(e cqt.Expr) ([]CQ, error) {
	switch v := e.(type) {
	case cqt.ScanTable:
		return n.scan(KTable, v.Table)
	case cqt.ScanSet:
		return n.scan(KSet, v.Set)
	case cqt.ScanAssoc:
		return n.scan(KAssoc, v.Assoc)

	case cqt.Select:
		blocks, err := n.normalize(v.In)
		if err != nil {
			return nil, err
		}
		out := blocks[:0]
		for _, b := range blocks {
			c, ok := rewriteCond(v.Cond, &b)
			if !ok {
				return nil, fmt.Errorf("containment: cannot rewrite condition %v over block", v.Cond)
			}
			b.Cond = cond.NewAnd(b.Cond, c)
			if _, isFalse := b.Cond.(cond.False); isFalse {
				continue
			}
			out = append(out, b)
		}
		return out, nil

	case cqt.Project:
		blocks, err := n.normalize(v.In)
		if err != nil {
			return nil, err
		}
		for i := range blocks {
			proj := make(map[string]Term, len(v.Cols))
			for _, pc := range v.Cols {
				if pc.Lit != nil {
					proj[pc.As] = Term{Lit: pc.Lit}
					continue
				}
				t, ok := blocks[i].Proj[pc.Src]
				if !ok {
					return nil, fmt.Errorf("containment: projection of unknown column %q", pc.Src)
				}
				proj[pc.As] = t
			}
			blocks[i].Proj = proj
		}
		return blocks, nil

	case cqt.Join:
		switch v.Kind {
		case cqt.Inner:
			return n.innerJoin(v)
		case cqt.LeftOuter:
			inner, err := n.innerJoin(cqt.Join{Kind: cqt.Inner, L: v.L, R: v.R, On: v.On})
			if err != nil {
				return nil, err
			}
			switch n.mode {
			case lower:
				n.inexact = true
				return inner, nil
			case upper:
				n.inexact = true
				padded, err := n.padBlocks(v.L, v.R)
				if err != nil {
					return nil, err
				}
				return append(inner, padded...), nil
			default:
				return nil, fmt.Errorf("containment: outer join not supported in exact mode")
			}
		case cqt.FullOuter:
			inner, err := n.innerJoin(cqt.Join{Kind: cqt.Inner, L: v.L, R: v.R, On: v.On})
			if err != nil {
				return nil, err
			}
			switch n.mode {
			case lower:
				n.inexact = true
				return inner, nil
			case upper:
				n.inexact = true
				lp, err := n.padBlocks(v.L, v.R)
				if err != nil {
					return nil, err
				}
				rp, err := n.padBlocks(v.R, v.L)
				if err != nil {
					return nil, err
				}
				return append(append(inner, lp...), rp...), nil
			default:
				return nil, fmt.Errorf("containment: outer join not supported in exact mode")
			}
		}
		return nil, fmt.Errorf("containment: unknown join kind")

	case cqt.UnionAll:
		var out []CQ
		for _, in := range v.Inputs {
			bs, err := n.normalize(in)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("containment: unsupported expression %T", e)
}

func (n *normalizer) scan(kind ScanKind, name string) ([]CQ, error) {
	var scanExpr cqt.Expr
	switch kind {
	case KTable:
		scanExpr = cqt.ScanTable{Table: name}
	case KSet:
		scanExpr = cqt.ScanSet{Set: name}
	case KAssoc:
		scanExpr = cqt.ScanAssoc{Assoc: name}
	}
	cols, err := n.cat.Cols(scanExpr)
	if err != nil {
		return nil, err
	}
	alias := n.fresh()
	proj := make(map[string]Term, len(cols))
	for _, c := range cols {
		proj[c] = Term{Ref: ColRef{Alias: alias, Col: c}}
	}
	b := CQ{
		Scans: []ScanRef{{Alias: alias, Kind: kind, Name: name}},
		Cond:  cond.True{},
		Proj:  proj,
	}
	if kind == KSet {
		b.Subject = alias
	}
	if kind == KAssoc && n.mode == upper {
		n.addReferentialIntegrity(&b, alias, name)
	}
	return []CQ{b}, nil
}

// addReferentialIntegrity encodes the client-side axiom that association
// ends reference existing entities: each end of an association scan is
// joined with a companion entity-set scan restricted to the end's type.
// This is what lets foreign-key preservation checks like check 3 of the
// paper's Example 7 go through. It is applied to the ⊆ left-hand side only
// (enlarging the right-hand side would be unsound).
func (n *normalizer) addReferentialIntegrity(b *CQ, assocAlias, assocName string) {
	a := n.cat.Client.Association(assocName)
	if a == nil {
		return
	}
	e1, e2 := cqt.AssocEndCols(n.cat.Client, a)
	for end := 0; end < 2; end++ {
		endType := a.End1.Type
		cols := e1
		if end == 1 {
			endType = a.End2.Type
			cols = e2
		}
		set := n.cat.Client.SetFor(endType)
		if set == nil {
			continue
		}
		companion := n.fresh()
		b.Scans = append(b.Scans, ScanRef{Alias: companion, Kind: KSet, Name: set.Name})
		for i, key := range n.cat.Client.KeyOf(endType) {
			b.Eqs = append(b.Eqs, [2]ColRef{
				{Alias: assocAlias, Col: cols[i]},
				{Alias: companion, Col: key},
			})
		}
		b.Cond = cond.NewAnd(b.Cond, cond.TypeIs{Var: companion, Type: endType})
	}
}

func (n *normalizer) innerJoin(v cqt.Join) ([]CQ, error) {
	lbs, err := n.normalize(v.L)
	if err != nil {
		return nil, err
	}
	rbs, err := n.normalize(v.R)
	if err != nil {
		return nil, err
	}
	var out []CQ
	for _, lb := range lbs {
		for _, rb := range rbs {
			m := CQ{
				Scans: append(append([]ScanRef{}, lb.Scans...), rb.Scans...),
				Eqs:   append(append([][2]ColRef{}, lb.Eqs...), rb.Eqs...),
				Cond:  cond.NewAnd(lb.Cond, rb.Cond),
				Proj:  map[string]Term{},
			}
			m.Subject = lb.Subject
			if m.Subject == "" {
				m.Subject = rb.Subject
			}
			ok := true
			for _, p := range v.On {
				lt, lok := lb.Proj[p[0]]
				rt, rok := rb.Proj[p[1]]
				if !lok || !rok {
					return nil, fmt.Errorf("containment: join column %v/%v not projected", p[0], p[1])
				}
				switch {
				case lt.Lit == nil && rt.Lit == nil:
					m.Eqs = append(m.Eqs, [2]ColRef{lt.Ref, rt.Ref})
				case lt.Lit != nil && rt.Lit == nil:
					c, o := litEqCond(rt.Ref, lt.Lit)
					if !o {
						ok = false
					} else {
						m.Cond = cond.NewAnd(m.Cond, c)
					}
				case lt.Lit == nil && rt.Lit != nil:
					c, o := litEqCond(lt.Ref, rt.Lit)
					if !o {
						ok = false
					} else {
						m.Cond = cond.NewAnd(m.Cond, c)
					}
				default:
					if !litEqual(lt.Lit, rt.Lit) || lt.Lit.Null {
						ok = false // NULL = NULL is false
					}
				}
			}
			if !ok {
				continue
			}
			// Merge projections, left side winning on shared names (the
			// evaluator requires shared names to be join-equated).
			for k, t := range rb.Proj {
				m.Proj[k] = t
			}
			for k, t := range lb.Proj {
				m.Proj[k] = t
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// padBlocks builds the "keep side, NULL-pad other" blocks used in outer
// join over-approximation.
func (n *normalizer) padBlocks(keep, pad cqt.Expr) ([]CQ, error) {
	kbs, err := n.normalize(keep)
	if err != nil {
		return nil, err
	}
	padCols, err := n.cat.Cols(pad)
	if err != nil {
		return nil, err
	}
	for i := range kbs {
		for _, c := range padCols {
			if _, exists := kbs[i].Proj[c]; !exists {
				kbs[i].Proj[c] = Term{Lit: &cqt.Literal{Null: true}}
			}
		}
	}
	return kbs, nil
}

func litEqual(a, b *cqt.Literal) bool {
	if a.Null != b.Null {
		return false
	}
	if a.Null {
		return true
	}
	c, ok := cond.Compare(a.Val, b.Val)
	return ok && c == 0
}

func litEqCond(r ColRef, l *cqt.Literal) (cond.Expr, bool) {
	if l.Null {
		return nil, false // join key NULL never matches
	}
	return cond.Cmp{Attr: r.qualified(), Op: cond.OpEq, Val: l.Val}, true
}

// rewriteCond rewrites a condition stated over the block's output names
// into one over qualified scan columns, folding atoms that land on
// literals.
func rewriteCond(c cond.Expr, b *CQ) (cond.Expr, bool) {
	ok := true
	out := cond.MapAtoms(c, func(e cond.Expr) cond.Expr {
		switch v := e.(type) {
		case cond.TypeIs:
			if v.Var == "" {
				if b.Subject == "" {
					// IS OF over an untyped block is false.
					return cond.False{}
				}
				v.Var = b.Subject
			}
			return v
		case cond.Null:
			t, found := b.Proj[v.Attr]
			if !found {
				ok = false
				return cond.False{}
			}
			if t.Lit != nil {
				if t.Lit.Null {
					return cond.True{}
				}
				return cond.False{}
			}
			return cond.Null{Attr: t.Ref.qualified()}
		case cond.Cmp:
			t, found := b.Proj[v.Attr]
			if !found {
				ok = false
				return cond.False{}
			}
			if t.Lit != nil {
				val, nonNull := t.Lit.Value()
				if !nonNull {
					return cond.False{}
				}
				inst := &cond.MapInstance{Vals: map[string]cond.Value{"x": val}}
				if cond.EvalOn(cond.FreeTheory, cond.Cmp{Attr: "x", Op: v.Op, Val: v.Val}, inst) {
					return cond.True{}
				}
				return cond.False{}
			}
			v.Attr = t.Ref.qualified()
			return v
		}
		return e
	})
	return out, ok
}

// bareCol strips the alias qualification.
func bareCol(q string) string {
	if i := strings.IndexByte(q, '.'); i >= 0 {
		return q[i+1:]
	}
	return q
}
