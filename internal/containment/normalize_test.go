package containment

import (
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/workload"
)

func TestNormalizeSelectFoldsLiterals(t *testing.T) {
	m := workload.PaperFull()
	n := &normalizer{cat: m.Catalog(), mode: upper}
	// Project a constant, then select on it: the condition folds away.
	q := cqt.Select{
		In: cqt.Project{
			In:   cqt.ScanTable{Table: "HR"},
			Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.Const(cond.Bool(true)), "flag")},
		},
		Cond: cond.Cmp{Attr: "flag", Op: cond.OpEq, Val: cond.Bool(true)},
	}
	blocks, err := n.normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if _, isTrue := blocks[0].Cond.(cond.True); !isTrue {
		t.Errorf("condition did not fold: %v", blocks[0].Cond)
	}
	// Selecting on the constant being false eliminates the block.
	q2 := cqt.Select{
		In: cqt.Project{
			In:   cqt.ScanTable{Table: "HR"},
			Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.Const(cond.Bool(true)), "flag")},
		},
		Cond: cond.Cmp{Attr: "flag", Op: cond.OpEq, Val: cond.Bool(false)},
	}
	blocks, err = n.normalize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 0 {
		t.Errorf("statically false block survived: %d", len(blocks))
	}
}

func TestNormalizeNullLiteralConditions(t *testing.T) {
	m := workload.PaperFull()
	n := &normalizer{cat: m.Catalog(), mode: upper}
	q := cqt.Select{
		In: cqt.Project{
			In:   cqt.ScanTable{Table: "HR"},
			Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.NullOf(cond.KindInt), "pad")},
		},
		Cond: cond.Null{Attr: "pad"},
	}
	blocks, err := n.normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if _, isTrue := blocks[0].Cond.(cond.True); !isTrue {
		t.Errorf("IS NULL over NULL literal did not fold to true: %v", blocks[0].Cond)
	}
}

func TestNormalizeOuterJoinModes(t *testing.T) {
	m := workload.PaperFull()
	j := cqt.Join{
		Kind: cqt.LeftOuter,
		L:    cqt.ScanTable{Table: "HR"},
		R: cqt.Project{In: cqt.ScanTable{Table: "Emp"},
			Cols: []cqt.ProjCol{cqt.ColAs("Id", "EId"), cqt.Col("Dept")}},
		On: [][2]string{{"Id", "EId"}},
	}
	upperN := &normalizer{cat: m.Catalog(), mode: upper}
	ub, err := upperN.normalize(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(ub) != 2 {
		t.Fatalf("upper LOJ blocks = %d, want 2 (inner + padded)", len(ub))
	}
	lowerN := &normalizer{cat: m.Catalog(), mode: lower}
	lb, err := lowerN.normalize(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) != 1 {
		t.Fatalf("lower LOJ blocks = %d, want 1 (inner)", len(lb))
	}
	exactN := &normalizer{cat: m.Catalog(), mode: exact}
	if _, err := exactN.normalize(j); err == nil {
		t.Fatal("exact mode must reject outer joins")
	}

	foj := j
	foj.Kind = cqt.FullOuter
	upperN2 := &normalizer{cat: m.Catalog(), mode: upper}
	fb, err := upperN2.normalize(foj)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 3 {
		t.Fatalf("upper FOJ blocks = %d, want 3", len(fb))
	}
}

func TestNormalizeJoinOnLiteral(t *testing.T) {
	m := workload.PaperFull()
	n := &normalizer{cat: m.Catalog(), mode: upper}
	// Joining a constant column against a scan column becomes a condition.
	j := cqt.Join{
		Kind: cqt.Inner,
		L: cqt.Project{In: cqt.ScanTable{Table: "HR"},
			Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.Const(cond.Int(7)), "K")}},
		R: cqt.Project{In: cqt.ScanTable{Table: "Emp"},
			Cols: []cqt.ProjCol{cqt.ColAs("Id", "K2"), cqt.Col("Dept")}},
		On: [][2]string{{"K", "K2"}},
	}
	blocks, err := n.normalize(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	found := false
	for _, a := range cond.Atoms(blocks[0].Cond) {
		if a.Kind == cond.AtomCmp && a.Op == cond.OpEq && a.Val.IntVal() == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("literal join not turned into a condition: %v", blocks[0].Cond)
	}
}

func TestContainmentWithSelfAssociationRI(t *testing.T) {
	// Referential-integrity enrichment must handle self-associations
	// (distinct end aliases on the same set).
	m := workload.PaperFull()
	if err := m.Client.AddAssociation(assoc("Mentors", "Employee", "Employee")); err != nil {
		t.Fatal(err)
	}
	ch := NewChecker(m.Catalog())
	lhs := cqt.Project{
		In:   cqt.ScanAssoc{Assoc: "Mentors"},
		Cols: []cqt.ProjCol{cqt.ColAs("Employee2_Id", "Id")},
	}
	rhs := persons(cond.TypeIs{Type: "Person"}, "Id")
	ok, err := ch.Contains(lhs, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("mentor ids must be contained in Person ids via referential integrity")
	}
}

func TestBareColHelper(t *testing.T) {
	if bareCol("t1.Name") != "Name" || bareCol("Name") != "Name" {
		t.Error("bareCol wrong")
	}
}

// assoc builds an association value for tests.
func assoc(name, e1, e2 string) edm.Association {
	return edm.Association{
		Name: name,
		End1: edm.End{Type: e1, Mult: edm.Many},
		End2: edm.End{Type: e2, Mult: edm.ZeroOne},
	}
}
