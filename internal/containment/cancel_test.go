package containment

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/fault"
)

func TestContainsCtxCancelled(t *testing.T) {
	ch := checker(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	emp := persons(cond.TypeIs{Type: "Employee"}, "Id")
	per := persons(cond.TypeIs{Type: "Person"}, "Id")
	_, err := ch.ContainsCtx(ctx, emp, per)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ch.Stats.Containments != 0 {
		t.Fatalf("cancelled check still counted: %+v", ch.Stats)
	}
}

func TestContainsCtxBudgetContainments(t *testing.T) {
	ch := checker(t)
	ch.Budget = fault.Budget{MaxContainments: 1}
	ch.Op = "unit test"
	emp := persons(cond.TypeIs{Type: "Employee"}, "Id")
	per := persons(cond.TypeIs{Type: "Person"}, "Id")
	if _, err := ch.ContainsCtx(context.Background(), emp, per); err != nil {
		t.Fatalf("first check should fit the budget: %v", err)
	}
	_, err := ch.ContainsCtx(context.Background(), emp, per)
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	if be.Op != "unit test" || be.Reason != "containments" {
		t.Fatalf("budget error mislabelled: %+v", be)
	}
}

func TestContainsCtxBudgetWallTime(t *testing.T) {
	ch := checker(t)
	ch.Budget = fault.Budget{MaxWallTime: time.Nanosecond}
	ch.Start = time.Now().Add(-time.Second)
	emp := persons(cond.TypeIs{Type: "Employee"}, "Id")
	per := persons(cond.TypeIs{Type: "Person"}, "Id")
	_, err := ch.ContainsCtx(context.Background(), emp, per)
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	if be.Reason != "wall time" {
		t.Fatalf("Reason = %q, want wall time", be.Reason)
	}
}

// TestContainsUnchangedByCtxVariant pins the compatibility contract: the
// ctx-less Contains is exactly ContainsCtx with a background context.
func TestContainsUnchangedByCtxVariant(t *testing.T) {
	ch := checker(t)
	emp := persons(cond.TypeIs{Type: "Employee"}, "Id")
	per := persons(cond.TypeIs{Type: "Person"}, "Id")
	a, errA := ch.Contains(emp, per)
	b, errB := ch.ContainsCtx(context.Background(), emp, per)
	if a != b || (errA == nil) != (errB == nil) {
		t.Fatalf("Contains=%v/%v ContainsCtx=%v/%v", a, errA, b, errB)
	}
}
