package containment_test

import (
	"testing"
	"testing/quick"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/containment"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// TestContainmentSoundOnData is the key property of the checker: whenever
// Contains(a, b) reports true, evaluating a and b over concrete data must
// yield a's rows as a subset of b's rows. Random states are generated for
// the paper model; several query pairs are checked on each.
func TestContainmentSoundOnData(t *testing.T) {
	m := workload.PaperFull()
	ch := containment.NewChecker(m.Catalog())

	queries := []cqt.Expr{
		persons(cond.TypeIs{Type: "Person"}, "Id"),
		persons(cond.TypeIs{Type: "Employee"}, "Id"),
		persons(cond.TypeIs{Type: "Customer"}, "Id"),
		persons(cond.TypeIs{Type: "Person", Only: true}, "Id"),
		persons(cond.NewAnd(cond.TypeIs{Type: "Customer"}, cond.Cmp{Attr: "CredScore", Op: cond.OpGe, Val: cond.Int(500)}), "Id"),
		persons(cond.NotNull("Name"), "Id"),
		cqt.UnionAll{Inputs: []cqt.Expr{
			persons(cond.TypeIs{Type: "Employee"}, "Id"),
			persons(cond.TypeIs{Type: "Customer"}, "Id"),
		}},
	}

	// Pre-compute symbolic answers.
	type pair struct{ i, j int }
	contained := map[pair]bool{}
	for i := range queries {
		for j := range queries {
			ok, err := ch.Contains(queries[i], queries[j])
			if err != nil {
				t.Fatal(err)
			}
			contained[pair{i, j}] = ok
		}
	}
	if !contained[pair{1, 0}] || contained[pair{0, 1}] {
		t.Fatal("sanity: Employee ⊆ Person expected")
	}

	f := func(seed uint32, nP, nE, nC uint8) bool {
		cs := randomState(seed, int(nP%5), int(nE%5), int(nC%5))
		env := &cqt.Env{Catalog: m.Catalog(), Client: cs}
		results := make([][]state.Row, len(queries))
		for i, q := range queries {
			res, err := cqt.Eval(env, q)
			if err != nil {
				t.Logf("eval error: %v", err)
				return false
			}
			results[i] = res.Rows
		}
		for i := range queries {
			for j := range queries {
				if !contained[pair{i, j}] {
					continue
				}
				if !rowsSubset(results[i], results[j]) {
					t.Logf("Contains(%d ⊆ %d) claimed but data disagrees (seed %d)", i, j, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func rowsSubset(a, b []state.Row) bool {
	counts := map[string]int{}
	for _, r := range b {
		counts[r.Canonical()]++
	}
	for _, r := range a {
		k := r.Canonical()
		if counts[k] == 0 {
			return false
		}
		counts[k]--
	}
	return true
}

func randomState(seed uint32, nP, nE, nC int) *state.ClientState {
	rnd := seed
	next := func() uint32 {
		rnd = rnd*1664525 + 1013904223
		return rnd
	}
	cs := state.NewClientState()
	id := int64(1)
	add := func(ty string, n int) {
		for i := 0; i < n; i++ {
			e := &state.Entity{Type: ty, Attrs: state.Row{"Id": cond.Int(id)}}
			if next()%2 == 0 {
				e.Attrs["Name"] = cond.String(string(rune('a' + next()%4)))
			}
			if ty == "Employee" && next()%2 == 0 {
				e.Attrs["Department"] = cond.String("d")
			}
			if ty == "Customer" && next()%2 == 0 {
				e.Attrs["CredScore"] = cond.Int(int64(next() % 1000))
			}
			cs.Insert("Persons", e)
			id++
		}
	}
	add("Person", nP)
	add("Employee", nE)
	add("Customer", nC)
	return cs
}

// TestFKContainmentSoundOnData checks the foreign-key preservation
// containments of the paper model against materialized data: the symbolic
// claim π_Eid(Q_Client) ⊆ π_Id(Q_Emp) must hold on every generated store.
func TestFKContainmentSoundOnData(t *testing.T) {
	m := workload.PaperFull()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	ch := containment.NewChecker(m.Catalog())

	lhs := cqt.Project{
		In:   cqt.Select{In: views.Update["Client"].Q, Cond: cond.NotNull("Eid")},
		Cols: []cqt.ProjCol{cqt.ColAs("Eid", "Id")},
	}
	rhs := cqt.Project{In: views.Update["Emp"].Q, Cols: []cqt.ProjCol{cqt.Col("Id")}}
	ok, err := ch.Contains(lhs, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("FK preservation containment not provable on the paper model")
	}
	// Concrete confirmation.
	cs := workload.PaperClientState()
	env := &cqt.Env{Catalog: m.Catalog(), Client: cs}
	l, err := cqt.Eval(env, lhs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cqt.Eval(env, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsSubset(l.Rows, r.Rows) {
		t.Fatal("data disagrees with the proven containment")
	}
}

// persons builds a project-select over the Persons set (duplicated from the
// internal test helpers, since this file lives in the external test package
// to use the compiler without an import cycle).
func persons(c cond.Expr, attrs ...string) cqt.Expr {
	cols := make([]cqt.ProjCol, len(attrs))
	for i, a := range attrs {
		cols[i] = cqt.Col(a)
	}
	return cqt.Project{In: cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: c}, Cols: cols}
}
