package containment

import (
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/workload"
)

func checker(t *testing.T) *Checker {
	t.Helper()
	m := workload.PaperFull()
	return NewChecker(m.Catalog())
}

func persons(c cond.Expr, attrs ...string) cqt.Expr {
	cols := make([]cqt.ProjCol, len(attrs))
	for i, a := range attrs {
		cols[i] = cqt.Col(a)
	}
	return cqt.Project{In: cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: c}, Cols: cols}
}

func mustContain(t *testing.T, ch *Checker, a, b cqt.Expr, want bool, msg string) {
	t.Helper()
	got, err := ch.Contains(a, b)
	if err != nil {
		t.Fatalf("%s: %v", msg, err)
	}
	if got != want {
		t.Errorf("%s: Contains = %v, want %v", msg, got, want)
	}
}

// TestExample6Containment reproduces the validation check of Example 6:
// π_Id(σ IS OF Employee(Persons)) ⊆ π_Id(σ IS OF Person(Persons)).
func TestExample6Containment(t *testing.T) {
	ch := checker(t)
	emp := persons(cond.TypeIs{Type: "Employee"}, "Id")
	per := persons(cond.TypeIs{Type: "Person"}, "Id")
	mustContain(t, ch, emp, per, true, "Employee ⊆ Person")
	mustContain(t, ch, per, emp, false, "Person ⊄ Employee")
}

func TestRenamedProjection(t *testing.T) {
	ch := checker(t)
	a := cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Customer"}},
		Cols: []cqt.ProjCol{cqt.ColAs("Id", "Cid")},
	}
	b := cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Person"}},
		Cols: []cqt.ProjCol{cqt.ColAs("Id", "Cid")},
	}
	mustContain(t, ch, a, b, true, "renamed projection")
}

func TestConditionSubsumption(t *testing.T) {
	ch := checker(t)
	narrow := persons(cond.NewAnd(cond.TypeIs{Type: "Customer"}, cond.Cmp{Attr: "CredScore", Op: cond.OpGe, Val: cond.Int(700)}), "Id")
	wide := persons(cond.NewAnd(cond.TypeIs{Type: "Customer"}, cond.Cmp{Attr: "CredScore", Op: cond.OpGe, Val: cond.Int(600)}), "Id")
	mustContain(t, ch, narrow, wide, true, "narrow range ⊆ wide range")
	mustContain(t, ch, wide, narrow, false, "wide range ⊄ narrow range")
}

func TestUnionContainment(t *testing.T) {
	ch := checker(t)
	u := cqt.UnionAll{Inputs: []cqt.Expr{
		persons(cond.TypeIs{Type: "Employee"}, "Id"),
		persons(cond.TypeIs{Type: "Customer"}, "Id"),
	}}
	all := persons(cond.TypeIs{Type: "Person"}, "Id")
	mustContain(t, ch, u, all, true, "union of subtypes ⊆ supertype")
	// The reverse fails: ONLY Person entities are not covered.
	mustContain(t, ch, all, u, false, "supertype ⊄ union of proper subtypes")
	// But a union covering the whole hierarchy contains the supertype query.
	full := cqt.UnionAll{Inputs: []cqt.Expr{
		persons(cond.TypeIs{Type: "Person", Only: true}, "Id"),
		persons(cond.TypeIs{Type: "Employee"}, "Id"),
		persons(cond.TypeIs{Type: "Customer"}, "Id"),
	}}
	mustContain(t, ch, all, full, true, "supertype ⊆ exhaustive union")
}

func TestJoinHomomorphism(t *testing.T) {
	ch := checker(t)
	// a joins HR and Emp on key; b scans HR alone. π_Id(a) ⊆ π_Id(b).
	a := cqt.Project{
		In: cqt.Join{
			Kind: cqt.Inner,
			L:    cqt.ScanTable{Table: "HR"},
			R:    cqt.Project{In: cqt.ScanTable{Table: "Emp"}, Cols: []cqt.ProjCol{cqt.ColAs("Id", "EId"), cqt.Col("Dept")}},
			On:   [][2]string{{"Id", "EId"}},
		},
		Cols: []cqt.ProjCol{cqt.Col("Id")},
	}
	b := cqt.Project{In: cqt.ScanTable{Table: "HR"}, Cols: []cqt.ProjCol{cqt.Col("Id")}}
	mustContain(t, ch, a, b, true, "join ⊆ its left scan on left columns")
	mustContain(t, ch, b, a, false, "scan ⊄ join")
}

func TestJoinTransportsConditions(t *testing.T) {
	ch := checker(t)
	// In a, the condition is on Emp's copy of the key; the join equality
	// must transport it to HR's copy for the containment to be provable.
	a := cqt.Project{
		In: cqt.Select{
			In: cqt.Join{
				Kind: cqt.Inner,
				L:    cqt.ScanTable{Table: "HR"},
				R:    cqt.Project{In: cqt.ScanTable{Table: "Emp"}, Cols: []cqt.ProjCol{cqt.ColAs("Id", "EId")}},
				On:   [][2]string{{"Id", "EId"}},
			},
			Cond: cond.Cmp{Attr: "EId", Op: cond.OpGe, Val: cond.Int(10)},
		},
		Cols: []cqt.ProjCol{cqt.Col("Id")},
	}
	b := cqt.Project{
		In:   cqt.Select{In: cqt.ScanTable{Table: "HR"}, Cond: cond.Cmp{Attr: "Id", Op: cond.OpGe, Val: cond.Int(5)}},
		Cols: []cqt.ProjCol{cqt.Col("Id")},
	}
	mustContain(t, ch, a, b, true, "condition transported through join equality")
}

func TestLiteralProjections(t *testing.T) {
	ch := checker(t)
	a := cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Employee"}},
		Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.Const(cond.Bool(true)), "flag")},
	}
	b := cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Person"}},
		Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.Const(cond.Bool(true)), "flag")},
	}
	mustContain(t, ch, a, b, true, "matching literal outputs")
	c := cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Person"}},
		Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.LitAs(cqt.Const(cond.Bool(false)), "flag")},
	}
	mustContain(t, ch, a, c, false, "mismatching literal outputs")
}

// TestExample7Unfolding reproduces check 2 of §3.2 as unfolded in
// Example 7: the customer identifiers are contained in the update view of
// Client projected on Cid. The update view contains a left outer join that
// the simplifier must eliminate.
func TestExample7Unfolding(t *testing.T) {
	ch := checker(t)
	// Q3_Client: customers projected into Client's columns.
	q3client := cqt.Project{
		In: cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Customer"}},
		Cols: []cqt.ProjCol{
			cqt.ColAs("Id", "Cid"),
			cqt.LitAs(cqt.NullOf(cond.KindInt), "Eid"),
			cqt.Col("Name"),
			cqt.ColAs("CredScore", "Score"),
			cqt.ColAs("BillAddr", "Addr"),
		},
	}
	// Q4_Client adds the association via a left outer join on the key.
	q4client := cqt.Join{
		Kind: cqt.LeftOuter,
		L: cqt.Project{
			In: q3client,
			Cols: []cqt.ProjCol{
				cqt.Col("Cid"), cqt.Col("Name"), cqt.Col("Score"), cqt.Col("Addr"),
			},
		},
		R: cqt.Project{
			In:   cqt.ScanAssoc{Assoc: "Supports"},
			Cols: []cqt.ProjCol{cqt.ColAs("Customer_Id", "Cid"), cqt.ColAs("Employee_Id", "Eid")},
		},
		On: [][2]string{{"Cid", "Cid"}},
	}
	lhs := cqt.Project{
		In:   cqt.Select{In: cqt.ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Customer"}},
		Cols: []cqt.ProjCol{cqt.ColAs("Id", "Cid")},
	}
	rhs := cqt.Project{In: q4client, Cols: []cqt.ProjCol{cqt.Col("Cid")}}
	mustContain(t, ch, lhs, rhs, true, "check 2 of Example 7")
}

func TestStatsAccumulate(t *testing.T) {
	ch := checker(t)
	a := persons(cond.TypeIs{Type: "Employee"}, "Id")
	b := persons(cond.TypeIs{Type: "Person"}, "Id")
	if _, err := ch.Contains(a, b); err != nil {
		t.Fatal(err)
	}
	if ch.Stats.Containments != 1 || ch.Stats.Implications == 0 {
		t.Errorf("stats = %+v", ch.Stats)
	}
}

func TestUnsatisfiableBlockSkipped(t *testing.T) {
	ch := checker(t)
	empty := persons(cond.NewAnd(cond.TypeIs{Type: "Employee"}, cond.TypeIs{Type: "Customer"}), "Id")
	anything := persons(cond.TypeIs{Type: "Customer"}, "Id")
	mustContain(t, ch, empty, anything, true, "empty query contained in anything")
}
