package containment

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/obsv"
)

// Process-wide metric counters shared by every checker (full compile,
// incremental compile, tooling), resolved once.
var (
	mChecks     = obsv.Metrics().Counter(obsv.MContainments)
	mBlockPairs = obsv.Metrics().Counter(obsv.MContainmentBlockPairs)
)

// Stats counts the work a checker performed, for the experiment harness.
// The counters are updated atomically, so one checker may serve concurrent
// Contains calls (all other per-call state is local).
type Stats struct {
	// Containments is the number of Contains calls.
	Containments int64
	// BlockPairs is the number of conjunctive-block pairs compared.
	BlockPairs int64
	// Implications is the number of theory implication checks issued.
	Implications int64
	// CacheHits and CacheMisses count decision-cache lookups (zero when no
	// cache is attached).
	CacheHits   int64
	CacheMisses int64
}

// Checker decides query containment over a catalog. The zero value is not
// usable; construct with NewChecker.
type Checker struct {
	Cat *cqt.Catalog
	// Simplify controls whether query trees are simplified before
	// normalization (outer-join elimination). Disabling it forces the
	// conservative approximations and is measured by the simplifier
	// ablation benchmark.
	Simplify bool
	// Cache, when non-nil, memoizes the satisfiability and implication
	// verdicts the containment check reduces to. Sharing one cache between
	// the full compiler and the incremental compiler lets neighbourhood
	// re-validation after an SMO reuse verdicts from the original compile.
	Cache *cond.SatCache
	// Budget, when limited, bounds the work of this checker's containment
	// calls: once Stats.Containments reaches Budget.MaxContainments, or
	// the wall clock passes Start+Budget.MaxWallTime, ContainsCtx returns
	// a *fault.BudgetExceededError instead of deciding. Op labels the
	// error with the operation being validated.
	Budget fault.Budget
	// Start anchors Budget.MaxWallTime; the zero value disables the
	// wall-time limit.
	Start time.Time
	// Op names the operation for budget errors ("full compile", an SMO
	// description, ...).
	Op    string
	Stats Stats
}

// NewChecker returns a checker with simplification enabled.
func NewChecker(cat *cqt.Catalog) *Checker {
	return &Checker{Cat: cat, Simplify: true}
}

func (ch *Checker) countCache(hit bool) {
	if hit {
		atomic.AddInt64(&ch.Stats.CacheHits, 1)
	} else {
		atomic.AddInt64(&ch.Stats.CacheMisses, 1)
	}
}

func (ch *Checker) satisfiable(t cond.Theory, x cond.Expr) bool {
	if ch.Cache == nil {
		return cond.Satisfiable(t, x)
	}
	v, hit := ch.Cache.SatisfiableHit(t, x)
	ch.countCache(hit)
	return v
}

func (ch *Checker) implies(t cond.Theory, a, b cond.Expr) bool {
	if ch.Cache == nil {
		return cond.Implies(t, a, b)
	}
	v, hit := ch.Cache.ImpliesHit(t, a, b)
	ch.countCache(hit)
	return v
}

// Contains reports whether query a is contained in query b (a ⊆ b) on
// every instance. The answer true is always sound. A false answer means
// containment could not be established; for the query shapes the compiler
// generates the check is complete, so false is reported to the user as a
// validation failure, matching the paper's behaviour of aborting the SMO.
func (ch *Checker) Contains(a, b cqt.Expr) (bool, error) {
	return ch.ContainsCtx(context.Background(), a, b)
}

// budgetErr reports whether the checker's budget is exhausted, building
// the typed error if so. Containment is the NP-hard step of validation, so
// the budget is re-checked before every Contains call and between the
// left-side blocks of one call.
func (ch *Checker) budgetErr() *fault.BudgetExceededError {
	op := ch.Op
	if op == "" {
		op = "containment"
	}
	if ch.Budget.MaxContainments > 0 && atomic.LoadInt64(&ch.Stats.Containments) > ch.Budget.MaxContainments {
		return &fault.BudgetExceededError{
			Op:           op,
			Reason:       "containments",
			Containments: atomic.LoadInt64(&ch.Stats.Containments),
			Elapsed:      ch.elapsed(),
		}
	}
	if ch.Budget.MaxWallTime > 0 && !ch.Start.IsZero() && time.Since(ch.Start) > ch.Budget.MaxWallTime {
		return &fault.BudgetExceededError{
			Op:           op,
			Reason:       "wall time",
			Containments: atomic.LoadInt64(&ch.Stats.Containments),
			Elapsed:      ch.elapsed(),
		}
	}
	return nil
}

func (ch *Checker) elapsed() time.Duration {
	if ch.Start.IsZero() {
		return 0
	}
	return time.Since(ch.Start)
}

// ContainsCtx is Contains with cooperative cancellation and budget
// enforcement: it returns ctx.Err() once the context is cancelled and a
// *fault.BudgetExceededError once the checker's Budget is exhausted,
// checking both between the normalized blocks of the left side so a
// runaway check stops within one block's homomorphism enumeration.
//
// When the context carries a span (a validation task's, or an SMO
// application's), the check records itself as a "containment-check" child
// span labelled with its verdict and the number of block pairs compared.
func (ch *Checker) ContainsCtx(ctx context.Context, a, b cqt.Expr) (contained bool, err error) {
	sp := obsv.SpanFromContext(ctx).Child("containment-check")
	pairs0 := atomic.LoadInt64(&ch.Stats.BlockPairs)
	defer func() {
		switch {
		case err != nil:
			sp.End(fault.Outcome(err))
		case contained:
			sp.End(obsv.OutcomeOK)
		default:
			sp.End("not-contained",
				obsv.String("block_pairs", strconv.FormatInt(atomic.LoadInt64(&ch.Stats.BlockPairs)-pairs0, 10)))
		}
	}()
	return ch.containsCtx(ctx, a, b)
}

func (ch *Checker) containsCtx(ctx context.Context, a, b cqt.Expr) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := faultinject.At(faultinject.SiteContainment); err != nil {
		return false, err
	}
	atomic.AddInt64(&ch.Stats.Containments, 1)
	mChecks.Add(1)
	if be := ch.budgetErr(); be != nil {
		return false, be
	}
	if ch.Simplify {
		a = cqt.Simplify(ch.Cat, a)
		b = cqt.Simplify(ch.Cat, b)
	}
	na := &normalizer{cat: ch.Cat, mode: upper}
	A, err := na.normalize(a)
	if err != nil {
		return false, err
	}
	nb := &normalizer{cat: ch.Cat, mode: lower, nextID: 1 << 20}
	B, err := nb.normalize(b)
	if err != nil {
		return false, err
	}
	return ch.containsBlocks(ctx, A, B)
}

// Prenorm is the reusable right-hand side of a containment check: the
// simplify + normalize result of one query, computed once by
// PrenormalizeRight and shared across every ContainsPreCtx call that checks
// containment in that query. The blocks are never mutated after
// construction (the left side's aliases are drawn from a disjoint range),
// so one Prenorm may serve concurrent checks.
type Prenorm struct {
	blocks []CQ
}

// PrenormalizeRight prepares q for use as the right-hand (containing) side
// of ContainsPreCtx. Validation passes that check many queries against the
// same view — every foreign key referencing one table, say — pay q's
// simplification and normalization once instead of once per check.
func (ch *Checker) PrenormalizeRight(q cqt.Expr) (*Prenorm, error) {
	if ch.Simplify {
		q = cqt.Simplify(ch.Cat, q)
	}
	nb := &normalizer{cat: ch.Cat, mode: lower, nextID: 1 << 20}
	B, err := nb.normalize(q)
	if err != nil {
		return nil, err
	}
	return &Prenorm{blocks: B}, nil
}

// ContainsPreCtx is ContainsCtx with a prenormalized right-hand side; the
// verdict is identical to ContainsCtx against the query the Prenorm was
// built from.
func (ch *Checker) ContainsPreCtx(ctx context.Context, a cqt.Expr, pre *Prenorm) (contained bool, err error) {
	sp := obsv.SpanFromContext(ctx).Child("containment-check")
	pairs0 := atomic.LoadInt64(&ch.Stats.BlockPairs)
	defer func() {
		switch {
		case err != nil:
			sp.End(fault.Outcome(err))
		case contained:
			sp.End(obsv.OutcomeOK)
		default:
			sp.End("not-contained",
				obsv.String("block_pairs", strconv.FormatInt(atomic.LoadInt64(&ch.Stats.BlockPairs)-pairs0, 10)))
		}
	}()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := faultinject.At(faultinject.SiteContainment); err != nil {
		return false, err
	}
	atomic.AddInt64(&ch.Stats.Containments, 1)
	mChecks.Add(1)
	if be := ch.budgetErr(); be != nil {
		return false, be
	}
	if ch.Simplify {
		a = cqt.Simplify(ch.Cat, a)
	}
	na := &normalizer{cat: ch.Cat, mode: upper}
	A, err := na.normalize(a)
	if err != nil {
		return false, err
	}
	return ch.containsBlocks(ctx, A, pre.blocks)
}

// containsBlocks runs the block-level containment check: every satisfiable
// left block must be covered by the disjunction of its homomorphism
// requirements into the right blocks.
func (ch *Checker) containsBlocks(ctx context.Context, A, B []CQ) (bool, error) {
	for i := range A {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if be := ch.budgetErr(); be != nil {
			return false, be
		}
		ab := &A[i]
		th := ch.theoryFor(ab)
		cls := newClasses(ab)
		acond := cls.rewrite(ab.reasoningCond())
		if !ch.satisfiable(th, acond) {
			continue // empty block is contained in anything
		}
		// A block of the left side may be covered jointly by several blocks
		// of the right side (e.g. IS OF Person split into ONLY Person ∨
		// derived types), so collect the requirement of every valid
		// homomorphism into every right block and check that the left
		// condition implies their disjunction.
		var coverage []cond.Expr
		for j := range B {
			atomic.AddInt64(&ch.Stats.BlockPairs, 1)
			mBlockPairs.Add(1)
			coverage = append(coverage, ch.homRequirements(ab, &B[j], cls)...)
		}
		atomic.AddInt64(&ch.Stats.Implications, 1)
		if !ch.implies(th, acond, cond.NewOr(coverage...)) {
			return false, nil
		}
	}
	return true, nil
}

// reasoningCond is the block's condition strengthened with the non-null
// facts implied by its join equalities.
func (b *CQ) reasoningCond() cond.Expr {
	parts := []cond.Expr{b.Cond}
	for _, eq := range b.Eqs {
		parts = append(parts,
			cond.NotNull(eq[0].qualified()),
			cond.NotNull(eq[1].qualified()))
	}
	return cond.NewAnd(parts...)
}

// homRequirements enumerates the scan homomorphisms from block b into block
// a and returns, for each structurally valid one, the condition a's rows
// must satisfy for b to produce the same output row.
func (ch *Checker) homRequirements(a, b *CQ, cls *classes) []cond.Expr {
	// Output schemas must agree.
	if len(a.Proj) != len(b.Proj) {
		return nil
	}
	for name := range b.Proj {
		if _, ok := a.Proj[name]; !ok {
			return nil
		}
	}
	var out []cond.Expr
	h := map[string]string{}
	var try func(i int)
	try = func(i int) {
		if i == len(b.Scans) {
			if req, ok := ch.homRequirement(a, b, cls, h); ok {
				out = append(out, req)
			}
			return
		}
		bs := b.Scans[i]
		for _, as := range a.Scans {
			if as.Kind != bs.Kind || as.Name != bs.Name {
				continue
			}
			h[bs.Alias] = as.Alias
			try(i + 1)
		}
		delete(h, bs.Alias)
	}
	try(0)
	return out
}

// homRequirement computes the requirement of one candidate homomorphism:
// b's join equalities, projection compatibility, and b's condition
// transported into a's aliases. ok is false when the homomorphism is
// structurally impossible regardless of conditions.
func (ch *Checker) homRequirement(a, b *CQ, cls *classes, h map[string]string) (cond.Expr, bool) {
	mapRef := func(r ColRef) ColRef { return ColRef{Alias: h[r.Alias], Col: r.Col} }

	var req []cond.Expr

	// b's join equalities must hold on a's rows.
	for _, eq := range b.Eqs {
		x, y := mapRef(eq[0]), mapRef(eq[1])
		if !cls.sameClass(x, y) {
			return nil, false
		}
		req = append(req, cond.NotNull(cls.rep(x.qualified())))
	}

	// Projection compatibility.
	for name, tb := range b.Proj {
		ta := a.Proj[name]
		switch {
		case tb.Lit != nil && ta.Lit != nil:
			if !litEqual(tb.Lit, ta.Lit) {
				return nil, false
			}
		case tb.Lit != nil && ta.Lit == nil:
			r := cls.rep(ta.Ref.qualified())
			if tb.Lit.Null {
				req = append(req, cond.Null{Attr: r})
			} else {
				req = append(req, cond.Cmp{Attr: r, Op: cond.OpEq, Val: tb.Lit.Val})
			}
		case tb.Lit == nil && ta.Lit == nil:
			hr := mapRef(tb.Ref)
			if !cls.sameClass(hr, ta.Ref) {
				return nil, false
			}
		default: // tb ref, ta literal
			hr := cls.rep(mapRef(tb.Ref).qualified())
			if ta.Lit.Null {
				req = append(req, cond.Null{Attr: hr})
			} else {
				req = append(req, cond.Cmp{Attr: hr, Op: cond.OpEq, Val: ta.Lit.Val})
			}
		}
	}

	// b's condition, transported through h and a's equality classes.
	req = append(req, cls.rewrite(transport(b.Cond, h)))
	return cond.NewAnd(req...), true
}

// transport rewrites b-side atoms through the homomorphism.
func transport(c cond.Expr, h map[string]string) cond.Expr {
	mapAttr := func(q string) string {
		alias := q
		col := ""
		if i := indexDot(q); i >= 0 {
			alias, col = q[:i], q[i+1:]
		}
		if na, ok := h[alias]; ok {
			return na + "." + col
		}
		return q
	}
	return cond.MapAtoms(c, func(e cond.Expr) cond.Expr {
		switch v := e.(type) {
		case cond.TypeIs:
			if na, ok := h[v.Var]; ok {
				v.Var = na
			}
			return v
		case cond.Null:
			v.Attr = mapAttr(v.Attr)
			return v
		case cond.Cmp:
			v.Attr = mapAttr(v.Attr)
			return v
		}
		return e
	})
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// classes is a union-find over a block's column references, seeded by its
// join equalities, used to canonicalize conditions and compare references.
type classes struct {
	parent map[string]string
}

func newClasses(b *CQ) *classes {
	c := &classes{parent: map[string]string{}}
	for _, eq := range b.Eqs {
		c.union(eq[0].qualified(), eq[1].qualified())
	}
	return c
}

func (c *classes) find(x string) string {
	p, ok := c.parent[x]
	if !ok || p == x {
		return x
	}
	r := c.find(p)
	c.parent[x] = r
	return r
}

func (c *classes) union(x, y string) {
	rx, ry := c.find(x), c.find(y)
	if rx != ry {
		// Keep the lexicographically smaller representative for
		// determinism.
		if rx < ry {
			c.parent[ry] = rx
		} else {
			c.parent[rx] = ry
		}
	}
}

func (c *classes) rep(q string) string { return c.find(q) }

func (c *classes) sameClass(x, y ColRef) bool {
	return c.find(x.qualified()) == c.find(y.qualified())
}

// rewrite canonicalizes a condition's attribute references to class
// representatives so that facts about joined columns combine.
func (c *classes) rewrite(e cond.Expr) cond.Expr {
	return cond.MapAtoms(e, func(x cond.Expr) cond.Expr {
		switch v := x.(type) {
		case cond.Null:
			v.Attr = c.rep(v.Attr)
			return v
		case cond.Cmp:
			v.Attr = c.rep(v.Attr)
			return v
		}
		return x
	})
}

// theoryFor builds the reasoning theory for one block: each alias's
// concrete types and attribute domains come from the scanned set or table.
func (ch *Checker) theoryFor(b *CQ) cond.Theory {
	scans := map[string]ScanRef{}
	for _, s := range b.Scans {
		scans[s.Alias] = s
	}
	return &blockTheory{cat: ch.Cat, scans: scans}
}

type blockTheory struct {
	cat   *cqt.Catalog
	scans map[string]ScanRef
}

func (t *blockTheory) ConcreteTypes(subject string) []string {
	s, ok := t.scans[subject]
	if !ok || s.Kind != KSet {
		return nil
	}
	set := t.cat.Client.Set(s.Name)
	if set == nil {
		return nil
	}
	return t.cat.Client.ConcreteIn(set.Type)
}

func (t *blockTheory) IsSubtype(sub, typ string) bool {
	return t.cat.Client.IsSubtype(sub, typ)
}

func (t *blockTheory) Domain(attr string) (cond.Domain, bool) {
	s, col, ok := t.resolve(attr)
	if !ok {
		return cond.Domain{}, false
	}
	switch s.Kind {
	case KTable:
		tab := t.cat.Store.Table(s.Name)
		if tab == nil {
			return cond.Domain{}, false
		}
		c, ok := tab.Col(col)
		if !ok {
			return cond.Domain{}, false
		}
		return c.Domain(), true
	case KSet:
		set := t.cat.Client.Set(s.Name)
		if set == nil {
			return cond.Domain{}, false
		}
		if a, ok := t.setAttr(set.Type, col); ok {
			return a, true
		}
		return cond.Domain{}, false
	case KAssoc:
		if d, _, ok := t.assocCol(s.Name, col); ok {
			return d, true
		}
	}
	return cond.Domain{}, false
}

func (t *blockTheory) Nullable(attr string) bool {
	s, col, ok := t.resolve(attr)
	if !ok {
		return true
	}
	switch s.Kind {
	case KTable:
		tab := t.cat.Store.Table(s.Name)
		if tab == nil {
			return true
		}
		c, ok := tab.Col(col)
		if !ok {
			return true
		}
		return c.Nullable
	case KSet:
		set := t.cat.Client.Set(s.Name)
		if set == nil {
			return true
		}
		// An attribute of a set scan is NULL when the row's entity type
		// lacks it, even if declared non-nullable.
		declared := false
		declaredNullable := false
		for _, ty := range t.cat.Client.ConcreteIn(set.Type) {
			a, ok := t.cat.Client.Attr(ty, col)
			if ok {
				declared = true
				declaredNullable = declaredNullable || a.Nullable
			} else {
				return true
			}
		}
		if !declared {
			return true
		}
		return declaredNullable
	case KAssoc:
		if _, nullable, ok := t.assocCol(s.Name, col); ok {
			return nullable
		}
	}
	return true
}

func (t *blockTheory) HasAttr(concreteType, attr string) bool {
	return t.cat.Client.HasAttr(concreteType, attr)
}

func (t *blockTheory) resolve(attr string) (ScanRef, string, bool) {
	i := indexDot(attr)
	if i < 0 {
		return ScanRef{}, "", false
	}
	s, ok := t.scans[attr[:i]]
	return s, attr[i+1:], ok
}

func (t *blockTheory) setAttr(rootType, attr string) (cond.Domain, bool) {
	for _, ty := range append([]string{rootType}, t.cat.Client.Descendants(rootType)...) {
		if a, ok := t.cat.Client.Attr(ty, attr); ok {
			return a.Domain(), true
		}
	}
	return cond.Domain{}, false
}

func (t *blockTheory) assocCol(assoc, col string) (cond.Domain, bool, bool) {
	a := t.cat.Client.Association(assoc)
	if a == nil {
		return cond.Domain{}, false, false
	}
	e1, e2 := cqt.AssocEndCols(t.cat.Client, a)
	for i, c := range e1 {
		if c == col {
			attr, _ := t.cat.Client.Attr(a.End1.Type, t.cat.Client.KeyOf(a.End1.Type)[i])
			return attr.Domain(), false, true
		}
	}
	for i, c := range e2 {
		if c == col {
			attr, _ := t.cat.Client.Attr(a.End2.Type, t.cat.Client.KeyOf(a.End2.Type)[i])
			return attr.Domain(), false, true
		}
	}
	return cond.Domain{}, false, false
}
