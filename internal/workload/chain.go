package workload

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// buildChain builds the Figure 8 synthetic model: n entity types with no
// inheritance arranged in a chain, each related to the next by two
// associations (one 1—0..1, one 1—*), every type mapped one-to-one to its
// own table and every association mapped to a key/foreign-key
// relationship. The paper uses n = 1002. A non-empty prefix qualifies
// every schema object name, so several chain models can share one process
// (and one persistent store) without colliding — the multi-tenant daemon's
// per-tenant model. Parameter checking and panic recovery live in the
// Chain/ChainE/TenantE wrappers (builders.go).
func buildChain(prefix string, n int) *frag.Mapping {
	c := edm.NewSchema()
	s := rel.NewSchema()
	m := &frag.Mapping{Client: c, Store: s}

	ty := func(i int) string { return fmt.Sprintf("%sEntity%d", prefix, i) }
	tbl := func(i int) string { return fmt.Sprintf("T%sEntity%d", prefix, i) }
	setName := func(i int) string { return fmt.Sprintf("%sEntity%dSet", prefix, i) }

	for i := 1; i <= n; i++ {
		must(c.AddType(edm.EntityType{
			Name: ty(i),
			Attrs: []edm.Attribute{
				{Name: "Id", Type: cond.KindInt},
				{Name: "EntityAtt2", Type: cond.KindString, Nullable: true},
				{Name: "EntityAtt3", Type: cond.KindString, Nullable: true},
				{Name: "EntityAtt4", Type: cond.KindString, Nullable: true},
			},
			Key: []string{"Id"},
		}))
		must(c.AddSet(edm.EntitySet{Name: setName(i), Type: ty(i)}))
		cols := []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "EntityAtt2", Type: cond.KindString, Nullable: true},
			{Name: "EntityAtt3", Type: cond.KindString, Nullable: true},
			{Name: "EntityAtt4", Type: cond.KindString, Nullable: true},
			// A discriminator makes every table TPH-capable, so the
			// Figure 9 SMO suite can add subtypes in any style.
			{Name: "Disc", Type: cond.KindString, Enum: []cond.Value{cond.String(ty(i))}},
		}
		if i > 1 {
			// FK columns for the two associations from the previous link.
			cols = append(cols,
				rel.Column{Name: "PrevOne", Type: cond.KindInt, Nullable: true},
				rel.Column{Name: "PrevMany", Type: cond.KindInt, Nullable: true},
			)
		}
		t := rel.Table{Name: tbl(i), Cols: cols, Key: []string{"Id"}}
		if i > 1 {
			t.FKs = []rel.ForeignKey{
				{Name: fmt.Sprintf("fk_one_%d", i), Cols: []string{"PrevOne"}, RefTable: tbl(i - 1), RefCols: []string{"Id"}},
				{Name: fmt.Sprintf("fk_many_%d", i), Cols: []string{"PrevMany"}, RefTable: tbl(i - 1), RefCols: []string{"Id"}},
			}
		}
		must(s.AddTable(t))

		colOf := map[string]string{"Id": "Id", "EntityAtt2": "EntityAtt2", "EntityAtt3": "EntityAtt3", "EntityAtt4": "EntityAtt4"}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         "f_" + ty(i),
			Set:        setName(i),
			ClientCond: cond.TypeIs{Type: ty(i)},
			Attrs:      []string{"Id", "EntityAtt2", "EntityAtt3", "EntityAtt4"},
			Table:      tbl(i),
			StoreCond:  cond.Cmp{Attr: "Disc", Op: cond.OpEq, Val: cond.String(ty(i))},
			ColOf:      colOf,
		})
	}

	for i := 2; i <= n; i++ {
		for _, kind := range []struct {
			suffix string
			col    string
			mult   edm.Mult
		}{
			{"One", "PrevOne", edm.ZeroOne},
			{"Many", "PrevMany", edm.ZeroOne},
		} {
			aName := fmt.Sprintf("%sRel%s%d", prefix, kind.suffix, i)
			must(c.AddAssociation(edm.Association{
				Name: aName,
				End1: edm.End{Type: ty(i), Mult: edm.Many},
				End2: edm.End{Type: ty(i - 1), Mult: kind.mult},
			}))
			e1 := ty(i) + "_Id"
			e2 := ty(i-1) + "_Id"
			m.Frags = append(m.Frags, &frag.Fragment{
				ID:         "f_" + aName,
				Assoc:      aName,
				ClientCond: cond.True{},
				Attrs:      []string{e1, e2},
				Table:      tbl(i),
				StoreCond:  cond.NotNull(kind.col),
				ColOf:      map[string]string{e1: "Id", e2: kind.col},
			})
		}
	}
	must(c.Validate())
	must(s.Validate())
	must(m.CheckWellFormed())
	return m
}

// ChainSMOTables adds the fresh store tables the Figure 9 SMO suite needs
// (targets for AE-TPT/TPC and partitioned additions, plus a join table) to
// a chain mapping's store schema and returns their names.
func ChainSMOTables(m *frag.Mapping, parts int) (single string, partTables []string, joinTable string) {
	single = "T_New"
	must(m.Store.AddTable(rel.Table{
		Name: single,
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Extra", Type: cond.KindString, Nullable: true},
			{Name: "Weight", Type: cond.KindInt, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	for p := 0; p < parts; p++ {
		name := fmt.Sprintf("T_Part%d", p)
		partTables = append(partTables, name)
		must(m.Store.AddTable(rel.Table{
			Name: name,
			Cols: []rel.Column{
				{Name: "Id", Type: cond.KindInt},
				{Name: "Extra", Type: cond.KindString, Nullable: true},
				{Name: "Weight", Type: cond.KindInt, Nullable: true},
			},
			Key: []string{"Id"},
		}))
	}
	joinTable = "T_Join"
	must(m.Store.AddTable(rel.Table{
		Name: joinTable,
		Cols: []rel.Column{
			{Name: "LId", Type: cond.KindInt},
			{Name: "RId", Type: cond.KindInt},
		},
		Key: []string{"LId", "RId"},
	}))
	return single, partTables, joinTable
}
