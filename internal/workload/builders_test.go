package workload

import (
	"strings"
	"testing"
)

func TestBuilderFaultChainBadParams(t *testing.T) {
	m, err := ChainE(0)
	if err == nil || m != nil {
		t.Fatalf("ChainE(0) = %v, %v; want nil, error", m, err)
	}
	if !strings.Contains(err.Error(), "chain") {
		t.Fatalf("error does not name the builder: %v", err)
	}
	if m, err := ChainE(2); err != nil || m == nil {
		t.Fatalf("ChainE(2) failed: %v", err)
	}
}

func TestBuilderFaultHubRimBadParams(t *testing.T) {
	if _, err := HubRimE(HubRimOptions{N: 0, M: 3}); err == nil {
		t.Fatal("HubRimE with N=0 accepted")
	}
	if _, err := HubRimE(HubRimOptions{N: 1, M: -1}); err == nil {
		t.Fatal("HubRimE with M=-1 accepted")
	}
	if m, err := HubRimE(HubRimOptions{N: 1, M: 1, TPH: true}); err != nil || m == nil {
		t.Fatalf("valid HubRimE failed: %v", err)
	}
}

func TestBuilderFaultCustomerBadParams(t *testing.T) {
	if _, err := CustomerE(CustomerOptions{Types: 10, Hierarchies: 1, LargestTPH: 5}); err == nil {
		t.Fatal("CustomerE with one hierarchy accepted")
	}
	if _, err := CustomerE(CustomerOptions{Types: 5, Hierarchies: 4, LargestTPH: 95}); err == nil {
		t.Fatal("CustomerE with too few types accepted")
	}
}

func TestBuilderPanickingWrappersStillPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chain(0) did not panic")
		}
	}()
	Chain(0)
}

func TestBuilderPaperConstructors(t *testing.T) {
	if m, err := PaperInitialE(); err != nil || m == nil {
		t.Fatalf("PaperInitialE: %v", err)
	}
	if m, err := PaperFullE(); err != nil || m == nil {
		t.Fatalf("PaperFullE: %v", err)
	}
}
