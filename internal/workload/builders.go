package workload

import (
	"fmt"

	"github.com/ormkit/incmap/internal/frag"
)

// This file is the fault boundary of the package. The model builders use
// must() internally — schema construction failing means the builder itself
// is wrong — but a server process sizing a workload from user-supplied
// parameters must not die on bad input. The *E constructors validate
// parameters up front and confine any internal panic to a returned error;
// the panicking names remain as thin wrappers for tests and static model
// definitions.

// capture runs a builder and converts a panic (from must() or anything
// else) into a returned error.
func capture(what string, build func() *frag.Mapping) (m *frag.Mapping, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("workload: building %s: %v", what, r)
		}
	}()
	return build(), nil
}

func mustBuild(m *frag.Mapping, err error) *frag.Mapping {
	if err != nil {
		panic(err)
	}
	return m
}

// ChainE builds the Figure 8 chain model with n entity types, returning an
// error for invalid parameters instead of panicking. The paper uses
// n = 1002.
func ChainE(n int) (*frag.Mapping, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: chain needs at least one entity, got %d", n)
	}
	return capture(fmt.Sprintf("chain-%d model", n), func() *frag.Mapping { return buildChain("", n) })
}

// TenantE builds a chain model whose every schema object name carries the
// given prefix, so the models of different tenants sharing one daemon
// process are disjoint by construction: any cross-tenant state bleed
// surfaces as a foreign prefix in a served view. The prefix must be a
// non-empty identifier (letters, digits, underscore; leading letter).
func TenantE(prefix string, n int) (*frag.Mapping, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: tenant chain needs at least one entity, got %d", n)
	}
	if !validPrefix(prefix) {
		return nil, fmt.Errorf("workload: invalid tenant prefix %q", prefix)
	}
	return capture(fmt.Sprintf("tenant %s chain-%d model", prefix, n),
		func() *frag.Mapping { return buildChain(prefix, n) })
}

func validPrefix(p string) bool {
	if p == "" || len(p) > 32 {
		return false
	}
	for i, r := range p {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case (r >= '0' && r <= '9' || r == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// Chain builds the Figure 8 chain model, panicking on invalid parameters;
// see ChainE for the error-returning form and the model description.
func Chain(n int) *frag.Mapping { return mustBuild(ChainE(n)) }

// HubRimE builds the Figure 3 hub-and-rim model, returning an error for
// invalid parameters instead of panicking.
func HubRimE(opt HubRimOptions) (*frag.Mapping, error) {
	if opt.N < 1 || opt.M < 0 {
		return nil, fmt.Errorf("workload: invalid hub-rim parameters N=%d M=%d (need N ≥ 1, M ≥ 0)", opt.N, opt.M)
	}
	return capture(fmt.Sprintf("hub-rim N=%d M=%d model", opt.N, opt.M),
		func() *frag.Mapping { return buildHubRim(opt) })
}

// HubRim builds the Figure 3 hub-and-rim model, panicking on invalid
// parameters; see HubRimE for the error-returning form and buildHubRim for
// the model description.
func HubRim(opt HubRimOptions) *frag.Mapping { return mustBuild(HubRimE(opt)) }

// CustomerE builds the synthetic customer model (§4.2 statistics),
// returning an error for invalid parameters instead of panicking.
func CustomerE(opt CustomerOptions) (*frag.Mapping, error) {
	if opt.Hierarchies < 2 || opt.Types < opt.Hierarchies+opt.LargestTPH {
		return nil, fmt.Errorf("workload: invalid customer options: %d types over %d hierarchies with largest %d (need ≥ 2 hierarchies and types ≥ hierarchies + largest)",
			opt.Types, opt.Hierarchies, opt.LargestTPH)
	}
	return capture("customer model", func() *frag.Mapping { return buildCustomer(opt) })
}

// Customer builds the synthetic customer model, panicking on invalid
// parameters; see CustomerE for the error-returning form and buildCustomer
// for the model description.
func Customer(opt CustomerOptions) *frag.Mapping { return mustBuild(CustomerE(opt)) }

// PaperInitialE builds the Example 1 starting mapping, with internal
// panics confined to a returned error.
func PaperInitialE() (*frag.Mapping, error) {
	return capture("paper initial model", buildPaperInitial)
}

// PaperInitial builds the Example 1 starting mapping; see buildPaperInitial
// for the model description.
func PaperInitial() *frag.Mapping { return mustBuild(PaperInitialE()) }

// PaperFullE builds the complete Fig. 1 mapping Σ4, with internal panics
// confined to a returned error.
func PaperFullE() (*frag.Mapping, error) {
	return capture("paper full model", buildPaperFull)
}

// PaperFull builds the complete Fig. 1 mapping Σ4; see buildPaperFull for
// the model description.
func PaperFull() *frag.Mapping { return mustBuild(PaperFullE()) }
