package workload

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// HubRimOptions parametrizes the Figure 3 "hub and rim" model: N entity
// types in an inheritance chain (the hub), each with foreign keys to M
// distinct rim entity types, with the whole hierarchy of N + N·M types
// mapped into one table with a discriminator (TPH) or into one table per
// type (TPT).
type HubRimOptions struct {
	N   int  // depth of the hub chain
	M   int  // rim fan-out per hub level
	TPH bool // map everything into one table; otherwise TPT
}

// buildHubRim builds the hub-and-rim mapping. Hub type i is Hub_i deriving
// from Hub_{i-1}; every hub level has M rim leaf types Rim_i_j derived from
// the hub root (so all N + N·M types share one entity set, as in the
// paper), and an association from hub level i to each of its rim types,
// mapped to foreign-key columns of the shared (TPH) or per-type (TPT)
// tables. Parameter checking and panic recovery live in the HubRim/HubRimE
// wrappers (builders.go).
func buildHubRim(opt HubRimOptions) *frag.Mapping {
	c := edm.NewSchema()
	s := rel.NewSchema()

	hubName := func(i int) string { return fmt.Sprintf("Hub%d", i) }
	rimName := func(i, j int) string { return fmt.Sprintf("Rim%d_%d", i, j) }

	// Client types: the hub chain plus rim leaves under the root.
	for i := 0; i < opt.N; i++ {
		base := ""
		if i > 0 {
			base = hubName(i - 1)
		}
		t := edm.EntityType{Name: hubName(i), Base: base,
			Attrs: []edm.Attribute{{Name: fmt.Sprintf("H%d", i), Type: cond.KindString, Nullable: true}}}
		if i == 0 {
			t.Attrs = append([]edm.Attribute{{Name: "Id", Type: cond.KindInt}}, t.Attrs...)
			t.Key = []string{"Id"}
		}
		must(c.AddType(t))
	}
	for i := 0; i < opt.N; i++ {
		for j := 0; j < opt.M; j++ {
			must(c.AddType(edm.EntityType{
				Name: rimName(i, j), Base: hubName(0),
				Attrs: []edm.Attribute{{Name: fmt.Sprintf("R%d_%d", i, j), Type: cond.KindString, Nullable: true}},
			}))
		}
	}
	must(c.AddSet(edm.EntitySet{Name: "Hubs", Type: hubName(0)}))

	m := &frag.Mapping{Client: c, Store: s}
	if opt.TPH {
		buildHubRimTPH(m, opt, hubName, rimName)
	} else {
		buildHubRimTPT(m, opt, hubName, rimName)
	}

	// Associations: hub level i connects to each of its rim types, mapped
	// to FK columns of the table holding the rim type (TPH: the shared
	// table; TPT: the rim type's own table).
	for i := 0; i < opt.N; i++ {
		for j := 0; j < opt.M; j++ {
			aName := fmt.Sprintf("A%d_%d", i, j)
			must(c.AddAssociation(edm.Association{
				Name: aName,
				End1: edm.End{Type: rimName(i, j), Mult: edm.Many},
				End2: edm.End{Type: hubName(i), Mult: edm.ZeroOne},
			}))
			table := fmt.Sprintf("T_%s", rimName(i, j))
			fkCol := fmt.Sprintf("FK%d_%d", i, j)
			if opt.TPH {
				table = "AllTypes"
			}
			e1, e2 := assocCols(c, aName)
			colOf := map[string]string{e1[0]: "Id", e2[0]: fkCol}
			m.Frags = append(m.Frags, &frag.Fragment{
				ID:         "f_" + aName,
				Assoc:      aName,
				ClientCond: cond.True{},
				Attrs:      []string{e1[0], e2[0]},
				Table:      table,
				StoreCond:  cond.NotNull(fkCol),
				ColOf:      colOf,
			})
		}
	}
	must(c.Validate())
	must(s.Validate())
	must(m.CheckWellFormed())
	return m
}

func assocCols(c *edm.Schema, name string) ([]string, []string) {
	a := c.Association(name)
	b1, b2 := a.End1.Type, a.End2.Type
	if b1 == b2 {
		b1 += "1"
		b2 += "2"
	}
	return []string{b1 + "_Id"}, []string{b2 + "_Id"}
}

func buildHubRimTPH(m *frag.Mapping, opt HubRimOptions, hubName func(int) string, rimName func(int, int) string) {
	// One wide table with a discriminator and every attribute and FK
	// column of every type.
	var discEnum []cond.Value
	cols := []rel.Column{
		{Name: "Id", Type: cond.KindInt},
	}
	for i := 0; i < opt.N; i++ {
		discEnum = append(discEnum, cond.String(hubName(i)))
		cols = append(cols, rel.Column{Name: fmt.Sprintf("H%d", i), Type: cond.KindString, Nullable: true})
		for j := 0; j < opt.M; j++ {
			discEnum = append(discEnum, cond.String(rimName(i, j)))
			cols = append(cols,
				rel.Column{Name: fmt.Sprintf("R%d_%d", i, j), Type: cond.KindString, Nullable: true},
				rel.Column{Name: fmt.Sprintf("FK%d_%d", i, j), Type: cond.KindInt, Nullable: true},
			)
		}
	}
	cols = append(cols, rel.Column{Name: "Disc", Type: cond.KindString, Enum: discEnum})
	must(m.Store.AddTable(rel.Table{Name: "AllTypes", Cols: cols, Key: []string{"Id"}}))

	addFrag := func(ty string, attrs []string) {
		colOf := map[string]string{}
		for _, a := range attrs {
			colOf[a] = a
		}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         "f_" + ty,
			Set:        "Hubs",
			ClientCond: exactCond(m.Client, ty),
			Attrs:      attrs,
			Table:      "AllTypes",
			StoreCond:  cond.Cmp{Attr: "Disc", Op: cond.OpEq, Val: cond.String(ty)},
			ColOf:      colOf,
		})
	}
	for i := 0; i < opt.N; i++ {
		addFrag(hubName(i), m.Client.AttrNames(hubName(i)))
		for j := 0; j < opt.M; j++ {
			addFrag(rimName(i, j), m.Client.AttrNames(rimName(i, j)))
		}
	}
}

func buildHubRimTPT(m *frag.Mapping, opt HubRimOptions, hubName func(int) string, rimName func(int, int) string) {
	addTable := func(ty string, extra []rel.Column, fkTo string) {
		cols := append([]rel.Column{{Name: "Id", Type: cond.KindInt}}, extra...)
		t := rel.Table{Name: "T_" + ty, Cols: cols, Key: []string{"Id"}}
		if fkTo != "" {
			t.FKs = []rel.ForeignKey{{Name: "fk_" + ty, Cols: []string{"Id"}, RefTable: "T_" + fkTo, RefCols: []string{"Id"}}}
		}
		must(m.Store.AddTable(t))
	}
	addFrag := func(ty string, attrs []string, isRoot bool) {
		colOf := map[string]string{}
		for _, a := range attrs {
			colOf[a] = a
		}
		clientCond := cond.Expr(cond.TypeIs{Type: ty})
		if isRoot {
			// The root table stores every entity of the set.
			clientCond = cond.TypeIs{Type: hubName(0)}
		}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         "f_" + ty,
			Set:        "Hubs",
			ClientCond: clientCond,
			Attrs:      attrs,
			Table:      "T_" + ty,
			StoreCond:  cond.True{},
			ColOf:      colOf,
		})
	}

	for i := 0; i < opt.N; i++ {
		ty := hubName(i)
		extra := []rel.Column{{Name: fmt.Sprintf("H%d", i), Type: cond.KindString, Nullable: true}}
		fkTo := ""
		if i > 0 {
			fkTo = hubName(i - 1)
		}
		addTable(ty, extra, fkTo)
		attrs := []string{"Id", fmt.Sprintf("H%d", i)}
		addFrag(ty, attrs, i == 0)
	}
	for i := 0; i < opt.N; i++ {
		for j := 0; j < opt.M; j++ {
			ty := rimName(i, j)
			extra := []rel.Column{
				{Name: fmt.Sprintf("R%d_%d", i, j), Type: cond.KindString, Nullable: true},
				{Name: fmt.Sprintf("FK%d_%d", i, j), Type: cond.KindInt, Nullable: true},
			}
			addTable(ty, extra, hubName(0))
			// The association FK column references the hub level's table.
			must(m.Store.AddForeignKey("T_"+ty, rel.ForeignKey{
				Name:     fmt.Sprintf("fk_a%d_%d", i, j),
				Cols:     []string{fmt.Sprintf("FK%d_%d", i, j)},
				RefTable: "T_" + hubName(i),
				RefCols:  []string{"Id"},
			}))
			addFrag(ty, []string{"Id", fmt.Sprintf("R%d_%d", i, j)}, false)
		}
	}
}

// exactCond builds the "exactly this type" client condition a TPH fragment
// uses: IS OF (ONLY ty) expanded over the leaf, which for leaves is just
// IS OF ty.
func exactCond(c *edm.Schema, ty string) cond.Expr {
	if len(c.Descendants(ty)) == 0 {
		return cond.TypeIs{Type: ty}
	}
	return cond.TypeIs{Type: ty, Only: true}
}
