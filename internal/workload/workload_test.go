package workload

import (
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
)

func TestPaperModelsWellFormed(t *testing.T) {
	cases := []struct {
		name string
		m    *frag.Mapping
	}{
		{"initial", PaperInitial()},
		{"full", PaperFull()},
		{"partitioned", PartitionedAgeModel()},
		{"gender", GenderConstantModel()},
	}
	for _, tc := range cases {
		if err := tc.m.CheckWellFormed(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if err := tc.m.Client.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if err := tc.m.Store.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestHubRimTPTCompiles(t *testing.T) {
	m := HubRim(HubRimOptions{N: 2, M: 2, TPH: false})
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// Roundtrip a small instance: one root, one level-1 hub, one rim
	// related to the level-1 hub.
	cs := state.NewClientState()
	cs.Insert("Hubs", &state.Entity{Type: "Hub0", Attrs: state.Row{
		"Id": cond.Int(1), "H0": cond.String("root")}})
	cs.Insert("Hubs", &state.Entity{Type: "Hub1", Attrs: state.Row{
		"Id": cond.Int(2), "H0": cond.String("mid"), "H1": cond.String("deep")}})
	cs.Insert("Hubs", &state.Entity{Type: "Rim1_0", Attrs: state.Row{
		"Id": cond.Int(3), "H0": cond.String("rim"), "R1_0": cond.String("x")}})
	cs.Relate("A1_0", state.AssocPair{Ends: state.Row{
		"Rim1_0_Id": cond.Int(3), "Hub1_Id": cond.Int(2)}})
	if err := orm.Roundtrip(m, views, cs); err != nil {
		t.Fatal(err)
	}
}

func TestHubRimTPHCompiles(t *testing.T) {
	m := HubRim(HubRimOptions{N: 2, M: 2, TPH: true})
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	cs := state.NewClientState()
	cs.Insert("Hubs", &state.Entity{Type: "Hub0", Attrs: state.Row{
		"Id": cond.Int(1), "H0": cond.String("root")}})
	cs.Insert("Hubs", &state.Entity{Type: "Rim0_1", Attrs: state.Row{
		"Id": cond.Int(2), "H0": cond.String("rim"), "R0_1": cond.String("y")}})
	cs.Relate("A0_1", state.AssocPair{Ends: state.Row{
		"Rim0_1_Id": cond.Int(2), "Hub0_Id": cond.Int(1)}})
	if err := orm.Roundtrip(m, views, cs); err != nil {
		t.Fatal(err)
	}
}

func TestHubRimTypeCount(t *testing.T) {
	m := HubRim(HubRimOptions{N: 3, M: 4, TPH: true})
	want := 3 + 3*4
	if got := len(m.Client.Types()); got != want {
		t.Errorf("types = %d, want %d", got, want)
	}
	if got := len(m.Client.Associations()); got != 12 {
		t.Errorf("associations = %d, want 12", got)
	}
}

func TestChainModel(t *testing.T) {
	m := Chain(12)
	if got := len(m.Client.Types()); got != 12 {
		t.Fatalf("types = %d", got)
	}
	if got := len(m.Client.Associations()); got != 22 {
		t.Fatalf("associations = %d", got)
	}
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	cs := state.NewClientState()
	cs.Insert("Entity1Set", &state.Entity{Type: "Entity1", Attrs: state.Row{
		"Id": cond.Int(1), "EntityAtt2": cond.String("a")}})
	cs.Insert("Entity2Set", &state.Entity{Type: "Entity2", Attrs: state.Row{
		"Id": cond.Int(7), "EntityAtt3": cond.String("b")}})
	cs.Relate("RelOne2", state.AssocPair{Ends: state.Row{
		"Entity2_Id": cond.Int(7), "Entity1_Id": cond.Int(1)}})
	if err := orm.Roundtrip(m, views, cs); err != nil {
		t.Fatal(err)
	}
}

func TestCustomerModelStatistics(t *testing.T) {
	opt := CustomerOptions{Types: 40, Hierarchies: 4, LargestTPH: 20, Associations: 6, SharedTableFKs: 1}
	m := Customer(opt)
	if got := len(m.Client.Types()); got != 40 {
		t.Errorf("types = %d, want 40", got)
	}
	if got := len(m.Client.Sets()); got != 4 {
		t.Errorf("hierarchies = %d, want 4", got)
	}
	if got := len(m.Client.Associations()); got != 6 {
		t.Errorf("associations = %d, want 6", got)
	}
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// Smoke roundtrip over one entity of the big TPH hierarchy.
	cs := state.NewClientState()
	cs.Insert("SetH0", &state.Entity{Type: "H0T5", Attrs: state.Row{"Id": cond.Int(1)}})
	if err := orm.Roundtrip(m, views, cs); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCustomerStatisticsMatchPaper(t *testing.T) {
	opt := DefaultCustomerOptions()
	if opt.Types != 230 || opt.Hierarchies != 18 || opt.LargestTPH != 95 {
		t.Errorf("defaults do not match the paper: %+v", opt)
	}
}
