package workload

import (
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
)

// PartitionedAgeModel builds the §3.3 example: Person(id, name, age)
// horizontally partitioned into Adult (age >= 18) and Young (age < 18)
// tables.
func PartitionedAgeModel() *frag.Mapping {
	c := edm.NewSchema()
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
			{Name: "Age", Type: cond.KindInt},
		},
		Key: []string{"Id"},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))
	must(c.Validate())

	s := rel.NewSchema()
	for _, name := range []string{"Adult", "Young"} {
		must(s.AddTable(rel.Table{
			Name: name,
			Cols: []rel.Column{
				{Name: "Id", Type: cond.KindInt},
				{Name: "Name", Type: cond.KindString, Nullable: true},
				{Name: "Age", Type: cond.KindInt},
			},
			Key: []string{"Id"},
		}))
	}
	must(s.Validate())

	m := &frag.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags,
		&frag.Fragment{
			ID:  "adult",
			Set: "Persons",
			ClientCond: cond.NewAnd(
				cond.TypeIs{Type: "Person"},
				cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(18)},
			),
			Attrs:     []string{"Id", "Name", "Age"},
			Table:     "Adult",
			StoreCond: cond.True{},
			ColOf:     map[string]string{"Id": "Id", "Name": "Name", "Age": "Age"},
		},
		&frag.Fragment{
			ID:  "young",
			Set: "Persons",
			ClientCond: cond.NewAnd(
				cond.TypeIs{Type: "Person"},
				cond.Cmp{Attr: "Age", Op: cond.OpLt, Val: cond.Int(18)},
			),
			Attrs:     []string{"Id", "Name", "Age"},
			Table:     "Young",
			StoreCond: cond.True{},
			ColOf:     map[string]string{"Id": "Id", "Name": "Name", "Age": "Age"},
		},
	)
	must(m.CheckWellFormed())
	return m
}

// PartitionedAgeState returns a client state spanning both partitions,
// including the age = 18 boundary.
func PartitionedAgeState() *state.ClientState {
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("kid"), "Age": cond.Int(7)}})
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("teen"), "Age": cond.Int(17)}})
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(3), "Name": cond.String("boundary"), "Age": cond.Int(18)}})
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(4), "Age": cond.Int(44)}})
	return cs
}

// GenderConstantModel builds the second §3.3 example: Person(id, name,
// gender) with gender ∈ {M, F}, ids partitioned into Men/Women by gender
// and names stored in a shared Name table. The gender attribute itself is
// never stored: it is recovered from the partition constants.
func GenderConstantModel() *frag.Mapping {
	c := edm.NewSchema()
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
			{Name: "Gender", Type: cond.KindString,
				Enum: []cond.Value{cond.String("M"), cond.String("F")}},
		},
		Key: []string{"Id"},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))
	must(c.Validate())

	s := rel.NewSchema()
	for _, name := range []string{"Men", "Women"} {
		must(s.AddTable(rel.Table{
			Name: name,
			Cols: []rel.Column{{Name: "Id", Type: cond.KindInt}},
			Key:  []string{"Id"},
		}))
	}
	must(s.AddTable(rel.Table{
		Name: "Name",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(s.Validate())

	m := &frag.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags,
		&frag.Fragment{
			ID:  "men",
			Set: "Persons",
			ClientCond: cond.NewAnd(
				cond.TypeIs{Type: "Person"},
				cond.Cmp{Attr: "Gender", Op: cond.OpEq, Val: cond.String("M")},
			),
			Attrs:     []string{"Id"},
			Table:     "Men",
			StoreCond: cond.True{},
			ColOf:     map[string]string{"Id": "Id"},
		},
		&frag.Fragment{
			ID:  "women",
			Set: "Persons",
			ClientCond: cond.NewAnd(
				cond.TypeIs{Type: "Person"},
				cond.Cmp{Attr: "Gender", Op: cond.OpEq, Val: cond.String("F")},
			),
			Attrs:     []string{"Id"},
			Table:     "Women",
			StoreCond: cond.True{},
			ColOf:     map[string]string{"Id": "Id"},
		},
		&frag.Fragment{
			ID:         "names",
			Set:        "Persons",
			ClientCond: cond.TypeIs{Type: "Person"},
			Attrs:      []string{"Id", "Name"},
			Table:      "Name",
			StoreCond:  cond.True{},
			ColOf:      map[string]string{"Id": "Id", "Name": "Name"},
		},
	)
	must(m.CheckWellFormed())
	return m
}

// GenderConstantState returns a client state for GenderConstantModel.
func GenderConstantState() *state.ClientState {
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("max"), "Gender": cond.String("M")}})
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("fay"), "Gender": cond.String("F")}})
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(3), "Gender": cond.String("F")}})
	return cs
}
