package workload

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// CustomerOptions scales the synthetic stand-in for the paper's real
// customer model (§4.2). The defaults reproduce the published statistics:
// 230 entity types over 18 non-trivial hierarchies, the deepest with four
// levels and the largest with 95 types, mapped with a mix of TPT and TPH,
// and associations mapped to non-junction tables.
type CustomerOptions struct {
	Types          int // total entity types (default 230)
	Hierarchies    int // hierarchy count (default 18)
	LargestTPH     int // size of the largest (TPH) hierarchy (default 95)
	Associations   int // association count mapped to entity tables (default 24)
	SharedTableFKs int // associations mapped into the TPH hierarchy's table (default 3)
}

// DefaultCustomerOptions returns the published statistics of the paper's
// customer model.
func DefaultCustomerOptions() CustomerOptions {
	return CustomerOptions{
		Types:          230,
		Hierarchies:    18,
		LargestTPH:     95,
		Associations:   24,
		SharedTableFKs: 3,
	}
}

// buildCustomer builds the synthetic customer model. Hierarchy 0 is the
// largest one, mapped TPH into a single wide table; hierarchy 1 is the
// deepest, mapped TPT; the remaining types are distributed over the other
// hierarchies, alternating TPT and TPH. A deterministic scheme (no
// randomness) places associations between hierarchy roots. Parameter
// checking and panic recovery live in the Customer/CustomerE wrappers
// (builders.go).
func buildCustomer(opt CustomerOptions) *frag.Mapping {
	c := edm.NewSchema()
	s := rel.NewSchema()
	m := &frag.Mapping{Client: c, Store: s}

	// Partition types over hierarchies.
	sizes := make([]int, opt.Hierarchies)
	sizes[0] = opt.LargestTPH
	rest := opt.Types - opt.LargestTPH
	for i := 1; i < opt.Hierarchies; i++ {
		share := rest / (opt.Hierarchies - 1)
		if i <= rest%(opt.Hierarchies-1) {
			share++
		}
		if share < 1 {
			share = 1
		}
		sizes[i] = share
	}

	for h := 0; h < opt.Hierarchies; h++ {
		tph := h == 0 || (h >= 2 && h%2 == 0)
		buildCustomerHierarchy(m, h, sizes[h], tph)
	}

	// Associations between hierarchy roots, mapped to FK columns of the
	// first endpoint's root table ("non-junction tables" per the paper).
	// The first SharedTableFKs of them land in the TPH hierarchy's shared
	// table, which is what makes its update view join-heavy.
	for a := 0; a < opt.Associations; a++ {
		h1 := a % opt.Hierarchies
		h2 := (a + 1 + a/opt.Hierarchies) % opt.Hierarchies
		if h2 == h1 {
			h2 = (h2 + 1) % opt.Hierarchies
		}
		if a < opt.SharedTableFKs {
			h1 = 0
		}
		addCustomerAssociation(m, a, h1, h2)
	}

	must(c.Validate())
	must(s.Validate())
	must(m.CheckWellFormed())
	return m
}

func custType(h, i int) string { return fmt.Sprintf("H%dT%d", h, i) }
func custRootTable(h int) string {
	return fmt.Sprintf("TabH%d", h)
}
func custSet(h int) string { return fmt.Sprintf("SetH%d", h) }

// buildCustomerHierarchy creates one hierarchy of n types. TPH hierarchies
// go into one wide shared table; TPT hierarchies get one table per type.
// The shape is a shallow 5-ary tree, matching the paper's published depth
// of at most four levels.
func buildCustomerHierarchy(m *frag.Mapping, h, n int, tph bool) {
	c := m.Client
	// Root.
	must(c.AddType(edm.EntityType{
		Name: custType(h, 0),
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: fmt.Sprintf("A%d_0", h), Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	for i := 1; i < n; i++ {
		// A 5-ary tree keeps the 95-type hierarchy within the paper's
		// published four levels.
		parentIdx := (i - 1) / 5
		must(c.AddType(edm.EntityType{
			Name: custType(h, i),
			Base: custType(h, parentIdx),
			Attrs: []edm.Attribute{
				{Name: fmt.Sprintf("A%d_%d", h, i), Type: cond.KindString, Nullable: true},
			},
		}))
	}
	must(c.AddSet(edm.EntitySet{Name: custSet(h), Type: custType(h, 0)}))

	if tph {
		buildCustomerTPH(m, h, n)
	} else {
		buildCustomerTPT(m, h, n)
	}
}

func buildCustomerTPH(m *frag.Mapping, h, n int) {
	var enum []cond.Value
	cols := []rel.Column{{Name: "Id", Type: cond.KindInt}}
	for i := 0; i < n; i++ {
		enum = append(enum, cond.String(custType(h, i)))
		cols = append(cols, rel.Column{Name: fmt.Sprintf("A%d_%d", h, i), Type: cond.KindString, Nullable: true})
	}
	cols = append(cols, rel.Column{Name: "Disc", Type: cond.KindString, Enum: enum})
	must(m.Store.AddTable(rel.Table{Name: custRootTable(h), Cols: cols, Key: []string{"Id"}}))
	for i := 0; i < n; i++ {
		ty := custType(h, i)
		attrs := m.Client.AttrNames(ty)
		colOf := map[string]string{}
		for _, a := range attrs {
			colOf[a] = a
		}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         "f_" + ty,
			Set:        custSet(h),
			ClientCond: exactCond(m.Client, ty),
			Attrs:      attrs,
			Table:      custRootTable(h),
			StoreCond:  cond.Cmp{Attr: "Disc", Op: cond.OpEq, Val: cond.String(ty)},
			ColOf:      colOf,
		})
	}
}

func buildCustomerTPT(m *frag.Mapping, h, n int) {
	for i := 0; i < n; i++ {
		ty := custType(h, i)
		tblName := custRootTable(h)
		if i > 0 {
			tblName = fmt.Sprintf("TabH%dT%d", h, i)
		}
		cols := []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: fmt.Sprintf("A%d_%d", h, i), Type: cond.KindString, Nullable: true},
		}
		t := rel.Table{Name: tblName, Cols: cols, Key: []string{"Id"}}
		if i > 0 {
			parent := m.Client.Parent(ty)
			parentTable := custRootTable(h)
			if parent != custType(h, 0) {
				// Parent's own table.
				var pIdx int
				fmt.Sscanf(parent, fmt.Sprintf("H%dT%%d", h), &pIdx)
				parentTable = fmt.Sprintf("TabH%dT%d", h, pIdx)
			}
			t.FKs = []rel.ForeignKey{{
				Name: "fk_" + tblName, Cols: []string{"Id"},
				RefTable: parentTable, RefCols: []string{"Id"},
			}}
		}
		must(m.Store.AddTable(t))
		var clientCond cond.Expr = cond.TypeIs{Type: ty}
		attrs := []string{"Id", fmt.Sprintf("A%d_%d", h, i)}
		colOf := map[string]string{"Id": "Id", attrs[1]: attrs[1]}
		m.Frags = append(m.Frags, &frag.Fragment{
			ID:         "f_" + ty,
			Set:        custSet(h),
			ClientCond: clientCond,
			Attrs:      attrs,
			Table:      tblName,
			StoreCond:  cond.True{},
			ColOf:      colOf,
		})
	}
}

// addCustomerAssociation maps association a between the roots of h1 and h2
// to a fresh FK column added to h1's root table.
func addCustomerAssociation(m *frag.Mapping, a, h1, h2 int) {
	name := fmt.Sprintf("Assoc%d", a)
	e1, e2 := custType(h1, 0), custType(h2, 0)
	must(m.Client.AddAssociation(edm.Association{
		Name: name,
		End1: edm.End{Type: e1, Mult: edm.Many},
		End2: edm.End{Type: e2, Mult: edm.ZeroOne},
	}))
	tab := m.Store.MutableTable(custRootTable(h1))
	fkCol := fmt.Sprintf("FKA%d", a)
	tab.Cols = append(tab.Cols, rel.Column{Name: fkCol, Type: cond.KindInt, Nullable: true})
	must(m.Store.AddForeignKey(tab.Name, rel.ForeignKey{
		Name: "fk_" + name, Cols: []string{fkCol},
		RefTable: custRootTable(h2), RefCols: []string{"Id"},
	}))
	b1, b2 := e1, e2
	if b1 == b2 {
		b1 += "1"
		b2 += "2"
	}
	c1, c2 := b1+"_Id", b2+"_Id"
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "f_" + name,
		Assoc:      name,
		ClientCond: cond.True{},
		Attrs:      []string{c1, c2},
		Table:      tab.Name,
		StoreCond:  cond.NotNull(fkCol),
		ColOf:      map[string]string{c1: "Id", c2: fkCol},
	})
}
