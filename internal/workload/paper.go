// Package workload builds the client models, store schemas and mappings
// used throughout the reproduction: the paper's running example (Fig. 1),
// the hub-and-rim model (Fig. 3), the 1002-entity chain model (Fig. 8),
// and a synthetic model with the published statistics of the paper's
// customer model (§4.2).
package workload

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
)

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
}

// paperStore builds the Fig. 1 store schema: HR(Id,Name), Emp(Id,Dept),
// Client(Cid,Eid,Name,Score,Addr), with Emp.Id → HR.Id and
// Client.Eid → Emp.Id foreign keys.
func paperStore() *rel.Schema {
	s := rel.NewSchema()
	must(s.AddTable(rel.Table{
		Name: "HR",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(s.AddTable(rel.Table{
		Name: "Emp",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Dept", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
		FKs: []rel.ForeignKey{{Name: "fk_emp_hr", Cols: []string{"Id"}, RefTable: "HR", RefCols: []string{"Id"}}},
	}))
	must(s.AddTable(rel.Table{
		Name: "Client",
		Cols: []rel.Column{
			{Name: "Cid", Type: cond.KindInt},
			{Name: "Eid", Type: cond.KindInt, Nullable: true},
			{Name: "Name", Type: cond.KindString, Nullable: true},
			{Name: "Score", Type: cond.KindInt, Nullable: true},
			{Name: "Addr", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Cid"},
		FKs: []rel.ForeignKey{{Name: "fk_client_emp", Cols: []string{"Eid"}, RefTable: "Emp", RefCols: []string{"Id"}}},
	}))
	must(s.Validate())
	return s
}

// buildPaperInitial builds the starting point of the paper's Example 1: a
// client schema with only Person mapped to HR (fragment ϕ1), with the full
// Fig. 1 store schema already present so later SMOs can target Emp and
// Client. Panic recovery lives in the PaperInitial/PaperInitialE wrappers
// (builders.go).
func buildPaperInitial() *frag.Mapping {
	c := edm.NewSchema()
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))
	must(c.Validate())

	m := &frag.Mapping{Client: c, Store: paperStore()}
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "phi1",
		Set:        "Persons",
		ClientCond: cond.TypeIs{Type: "Person"},
		Attrs:      []string{"Id", "Name"},
		Table:      "HR",
		StoreCond:  cond.True{},
		ColOf:      map[string]string{"Id": "Id", "Name": "Name"},
	})
	must(m.CheckWellFormed())
	return m
}

// buildPaperFull builds the complete Fig. 1 mapping Σ4 of Example 7:
// Person, Employee (TPT on Emp), Customer (TPC on Client) and the Supports
// association mapped to Client's Eid foreign-key column. The fragment
// conditions are the adapted forms of Example 5. Panic recovery lives in
// the PaperFull/PaperFullE wrappers (builders.go).
func buildPaperFull() *frag.Mapping {
	c := edm.NewSchema()
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddType(edm.EntityType{
		Name: "Employee", Base: "Person",
		Attrs: []edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
	}))
	must(c.AddType(edm.EntityType{
		Name: "Customer", Base: "Person",
		Attrs: []edm.Attribute{
			{Name: "CredScore", Type: cond.KindInt, Nullable: true},
			{Name: "BillAddr", Type: cond.KindString, Nullable: true},
		},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))
	must(c.AddAssociation(edm.Association{
		Name: "Supports",
		End1: edm.End{Type: "Customer", Mult: edm.Many},
		End2: edm.End{Type: "Employee", Mult: edm.ZeroOne},
	}))
	must(c.Validate())

	m := &frag.Mapping{Client: c, Store: paperStore()}
	// ϕ1': persons that are not customers go to HR.
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:  "phi1",
		Set: "Persons",
		ClientCond: cond.NewOr(
			cond.TypeIs{Type: "Person", Only: true},
			cond.TypeIs{Type: "Employee"},
		),
		Attrs:     []string{"Id", "Name"},
		Table:     "HR",
		StoreCond: cond.True{},
		ColOf:     map[string]string{"Id": "Id", "Name": "Name"},
	})
	// ϕ2: employees' extra attributes go to Emp (TPT).
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "phi2",
		Set:        "Persons",
		ClientCond: cond.TypeIs{Type: "Employee"},
		Attrs:      []string{"Id", "Department"},
		Table:      "Emp",
		StoreCond:  cond.True{},
		ColOf:      map[string]string{"Id": "Id", "Department": "Dept"},
	})
	// ϕ3: customers go whole to Client (TPC).
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "phi3",
		Set:        "Persons",
		ClientCond: cond.TypeIs{Type: "Customer"},
		Attrs:      []string{"Id", "Name", "CredScore", "BillAddr"},
		Table:      "Client",
		StoreCond:  cond.True{},
		ColOf:      map[string]string{"Id": "Cid", "Name": "Name", "CredScore": "Score", "BillAddr": "Addr"},
	})
	// ϕ4: Supports mapped to Client's Eid foreign-key column.
	m.Frags = append(m.Frags, &frag.Fragment{
		ID:         "phi4",
		Assoc:      "Supports",
		ClientCond: cond.True{},
		Attrs:      []string{"Customer_Id", "Employee_Id"},
		Table:      "Client",
		StoreCond:  cond.NotNull("Eid"),
		ColOf:      map[string]string{"Customer_Id": "Cid", "Employee_Id": "Eid"},
	})
	must(m.CheckWellFormed())
	return m
}

// PaperClientState builds a small client state for the full paper model:
// one plain person, two employees, two customers, one of them supported by
// an employee.
func PaperClientState() *state.ClientState {
	cs := state.NewClientState()
	cs.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{
		"Id": cond.Int(1), "Name": cond.String("ann")}})
	cs.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{
		"Id": cond.Int(2), "Name": cond.String("bob"), "Department": cond.String("hw")}})
	cs.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{
		"Id": cond.Int(3), "Name": cond.String("cyd")}})
	cs.Insert("Persons", &state.Entity{Type: "Customer", Attrs: state.Row{
		"Id": cond.Int(4), "Name": cond.String("dee"), "CredScore": cond.Int(700), "BillAddr": cond.String("1 Main St")}})
	cs.Insert("Persons", &state.Entity{Type: "Customer", Attrs: state.Row{
		"Id": cond.Int(5), "Name": cond.String("eve")}})
	cs.Relate("Supports", state.AssocPair{Ends: state.Row{
		"Customer_Id": cond.Int(4), "Employee_Id": cond.Int(2)}})
	return cs
}
