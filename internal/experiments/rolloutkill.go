package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/ormkit/incmap/internal/server"
	"github.com/ormkit/incmap/internal/store"
)

// The kill/resume leg of the rollout soak: the parent process (mapbench)
// re-executes itself as a child, the child starts a deliberately slow
// checkpointed backfill over a shared store directory and reports batch
// progress on stdout, the parent SIGKILLs it mid-backfill — a real process
// death, not a drain — and then RolloutResume boots a fresh daemon over
// the same directory, which must resume from the last intact checkpoint
// and complete the rollout without re-migrating committed batches.

// killTenant is the tenant the child registers and the parent resumes.
const killTenant = "kr"

// RolloutKillResult reports the resume half.
type RolloutKillResult struct {
	BatchesBeforeKill int    `json:"batchesBeforeKill"`
	Phase             string `json:"phase"`
	Resumed           bool   `json:"resumed"`
	ReusedBatches     int    `json:"reusedBatches"`
	BatchesDone       int    `json:"batchesDone"`
	TotalBatches      int    `json:"totalBatches"`
	CrossReadOK       bool   `json:"crossReadOK"`
	EvolveAfterOK     bool   `json:"evolveAfterOK"`
	Error             string `json:"error,omitempty"`
}

// Pass reports whether the kill leg met the acceptance contract: the
// resumed rollout finished, reused at least one committed batch instead of
// re-migrating, and the tenant serves (cross-version reads and evolves
// work) afterwards.
func (r RolloutKillResult) Pass() bool {
	return r.Phase == "done" && r.Resumed && r.ReusedBatches > 0 &&
		r.BatchesDone == r.TotalBatches && r.CrossReadOK && r.EvolveAfterOK
}

// String formats the result as a table line.
func (r RolloutKillResult) String() string {
	s := fmt.Sprintf(
		"killed after %d batches — resumed phase=%s reused=%d batches=%d/%d crossRead=%v evolve=%v",
		r.BatchesBeforeKill, r.Phase, r.ReusedBatches, r.BatchesDone, r.TotalBatches,
		r.CrossReadOK, r.EvolveAfterOK)
	if r.Error != "" {
		s += " error=" + r.Error
	}
	return s
}

// RolloutChild is the child half: it boots a daemon over dir, seeds a
// tenant, starts a slow backfill (one row per batch, a pause between
// batches) and prints "BATCH <n>" lines as checkpoints commit. It never
// returns on its own — the parent kills the process mid-backfill. Stdout
// is the only protocol: the parent scans for batch progress.
func RolloutChild(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	srv := server.New(server.Options{Store: st})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	h := &soakHarness{client: &http.Client{Timeout: 30 * time.Second}, base: "http://" + ln.Addr().String()}

	code, err := h.do("POST", "/v1/tenants/"+killTenant, map[string]any{
		"workload": map[string]any{"kind": "chain", "prefix": "Krx", "n": 4},
	}, nil)
	if err != nil || code != http.StatusCreated {
		return fmt.Errorf("register: code %d err %v", code, err)
	}
	var seeded soakData
	code, err = h.do("POST", "/v1/tenants/"+killTenant+"/data",
		map[string]any{"seed": uint32(7), "maxPerType": 5}, &seeded)
	if err != nil || code != http.StatusOK || seeded.TotalRows == 0 {
		return fmt.Errorf("seed: code %d rows %d err %v", code, seeded.TotalRows, err)
	}
	body := rolloutReq("Krx", "Extra", 1, 17)
	body["batchDelayMs"] = 80
	code, err = h.do("POST", "/v1/tenants/"+killTenant+"/rollout", body, nil)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("rollout: code %d err %v", code, err)
	}

	last := -1
	for {
		var rst server.RolloutStatus
		if c, err := h.do("GET", "/v1/tenants/"+killTenant+"/rollout", nil, &rst); err == nil && c == http.StatusOK {
			if rst.BatchesDone != last {
				last = rst.BatchesDone
				fmt.Fprintf(os.Stdout, "BATCH %d\n", last)
			}
			switch rst.Phase {
			case "done", "rolledback", "failed":
				// The parent was too slow to kill us; tell it so and hold
				// the process open so the kill still has a target.
				fmt.Fprintf(os.Stdout, "TERMINAL %s\n", rst.Phase)
				select {}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RolloutResume is the parent half after the kill: a fresh daemon over the
// same directory must restore the tenant, find the backfill checkpoint,
// resume from the last intact batch and drive the rollout to done.
func RolloutResume(dir string, batchesBeforeKill int) (RolloutKillResult, error) {
	res := RolloutKillResult{BatchesBeforeKill: batchesBeforeKill}
	st, err := store.Open(dir)
	if err != nil {
		return res, err
	}
	srv := server.New(server.Options{Store: st})
	if srv.Restored() == 0 {
		res.Error = "second daemon restored no tenants"
		return res, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	h := &soakHarness{client: &http.Client{Timeout: 30 * time.Second}, base: "http://" + ln.Addr().String()}

	rst, err := h.waitRollout(killTenant, 60*time.Second)
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	res.Phase = rst.Phase
	res.Resumed = rst.Resumed
	res.ReusedBatches = rst.ReusedBatch
	res.BatchesDone = rst.BatchesDone
	res.TotalBatches = rst.TotalBatches
	if rst.Error != "" {
		res.Error = rst.Error
	}

	if prev, err := h.data(killTenant, "?version=prev"); err == nil && len(prev.Entities) > 0 {
		res.CrossReadOK = true
	}
	code, err := h.do("POST", "/v1/tenants/"+killTenant+"/evolve",
		map[string]any{"op": "addEntity", "name": "KrxAfter", "parent": "KrxEntity1"}, nil)
	res.EvolveAfterOK = err == nil && code == http.StatusOK

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil && res.Error == "" {
		res.Error = "drain: " + err.Error()
	}
	return res, nil
}
