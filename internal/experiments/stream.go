package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/workload"
)

// StreamOptions parameterizes the streaming-executor OLTP driver.
type StreamOptions struct {
	// Chain is the chain-model length (the paper's Figure 9 store is 1002).
	Chain int
	// Rows is the target total row count pushed through the views.
	Rows int
	// Batch is the executor batch size.
	Batch int
	// Evolves is how many SMOs a concurrent driver pushes through
	// pipeline.Session while the scans run (0 disables the evolver).
	Evolves int
	// Seed feeds the deterministic random client state.
	Seed uint32
}

func (o *StreamOptions) defaults() {
	if o.Chain <= 0 {
		o.Chain = 1002
	}
	if o.Rows <= 0 {
		o.Rows = 1_000_000
	}
	if o.Batch <= 0 {
		o.Batch = exec.DefaultBatchSize
	}
	if o.Evolves == 0 {
		o.Evolves = 8
	}
	if o.Evolves < 0 {
		o.Evolves = 0
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// StreamViewLat is the per-view latency report of the streaming scan leg:
// the distribution of single Next() calls (one batch pulled through the
// whole operator tree) for that view.
type StreamViewLat struct {
	View    string  `json:"view"`
	Rows    int64   `json:"rows"`
	Batches int64   `json:"batches"`
	P50Us   float64 `json:"p50Us"`
	P99Us   float64 `json:"p99Us"`
}

// StreamResult is the measured outcome of one stream run. The acceptance
// verdict is Pass: the streaming scan's peak resident bytes stayed under
// 10% of what the materializing path holds for the same rows.
type StreamResult struct {
	Chain      int `json:"chain"`
	TargetRows int `json:"targetRows"`
	// Rows is the actual row count in the store (the random state is
	// deterministic but only approximately sized).
	Rows int64 `json:"rows"`
	// QueryViews and AssocViews count the compiled views scanned.
	QueryViews int `json:"queryViews"`
	AssocViews int `json:"assocViews"`
	Batch      int `json:"batch"`

	CompileSeconds float64 `json:"compileSeconds"`

	// Write path: the same client state materialized through the map-based
	// ORM path and streamed through the executor into a RingStore.
	MatWriteSeconds    float64 `json:"materializeWriteSeconds"`
	StreamWriteSeconds float64 `json:"streamWriteSeconds"`
	WriteRowsPerSec    float64 `json:"streamWriteRowsPerSec"`

	// Scan path: every compiled query and association view drained.
	StreamScanSeconds float64 `json:"streamScanSeconds"`
	StreamScanRows    int64   `json:"streamScanRows"`
	StreamRowsPerSec  float64 `json:"streamScanRowsPerSec"`
	MatScanSeconds    float64 `json:"materializeScanSeconds"`
	MatRowsPerSec     float64 `json:"materializeScanRowsPerSec"`

	// Memory: peak heap growth sampled during the streaming scan versus
	// the bytes the materializing path holds live for the same scan.
	StreamPeakBytes uint64  `json:"streamPeakBytes"`
	MatHeldBytes    uint64  `json:"materializeHeldBytes"`
	BytesRatio      float64 `json:"bytesRatio"`

	// Batch latency percentiles over every Next() of the scan leg, plus
	// the slowest views by p99.
	BatchP50Us   float64         `json:"batchP50Us"`
	BatchP99Us   float64         `json:"batchP99Us"`
	SlowestViews []StreamViewLat `json:"slowestViews,omitempty"`

	// Concurrent schema evolution through pipeline.Session while the
	// streaming scan ran.
	EvolvesCommitted int64   `json:"evolvesCommitted"`
	EvolvesFailed    int64   `json:"evolvesFailed"`
	EvolveSeconds    float64 `json:"evolveSeconds"`

	Pass bool `json:"pass"`
}

// String formats the result as a table block.
func (r StreamResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf(
		"chain=%d rows=%d (target %d) views=%d+%d batch=%d\n"+
			"write: materialize %.2fs, stream %.2fs (%.0f rows/s)\n"+
			"scan:  stream %.2fs (%.0f rows/s, %d rows)  materialize %.2fs (%.0f rows/s)\n"+
			"bytes: stream peak %.1f MB vs materialize %.1f MB held (%.2f%%) — %s\n"+
			"batch latency p50=%.0fµs p99=%.0fµs\n"+
			"concurrent evolves: %d committed, %d failed in %.2fs",
		r.Chain, r.Rows, r.TargetRows, r.QueryViews, r.AssocViews, r.Batch,
		r.MatWriteSeconds, r.StreamWriteSeconds, r.WriteRowsPerSec,
		r.StreamScanSeconds, r.StreamRowsPerSec, r.StreamScanRows, r.MatScanSeconds, r.MatRowsPerSec,
		float64(r.StreamPeakBytes)/1e6, float64(r.MatHeldBytes)/1e6, r.BytesRatio*100, verdict,
		r.BatchP50Us, r.BatchP99Us,
		r.EvolvesCommitted, r.EvolvesFailed, r.EvolveSeconds)
}

// Stream is the OLTP-style driver for the streaming executor: it sizes a
// deterministic random client state to ~Rows rows over the chain model,
// pushes it through the update views twice (materializing and streaming
// write paths), then drains every query and association view through the
// executor over the segmented RingStore — while a concurrent driver
// evolves the schema through pipeline.Session — and finally re-reads the
// same rows through the materializing path to report what it holds live.
func Stream(opt StreamOptions) (StreamResult, error) {
	opt.defaults()
	ctx := context.Background()
	res := StreamResult{Chain: opt.Chain, TargetRows: opt.Rows, Batch: opt.Batch}

	m := workload.Chain(opt.Chain)
	c := compiler.New()
	t0 := time.Now()
	v, err := c.Compile(m)
	res.CompileSeconds = time.Since(t0).Seconds()
	if err != nil {
		return res, fmt.Errorf("compiling chain-%d: %w", opt.Chain, err)
	}
	res.QueryViews, res.AssocViews = len(v.Query), len(v.Assoc)

	// RandomState inserts ~maxPerType/2 entities per type on average.
	perType := 2 * opt.Rows / opt.Chain
	if perType < 1 {
		perType = 1
	}
	cs := orm.RandomState(m, opt.Seed, perType)

	// Write leg: the update views evaluated materializing (whole store as
	// maps) and streaming (batches appended into the ring as produced).
	t0 = time.Now()
	ss, err := orm.Materialize(m, v, cs)
	res.MatWriteSeconds = time.Since(t0).Seconds()
	if err != nil {
		return res, fmt.Errorf("materialize: %w", err)
	}
	t0 = time.Now()
	ring, err := orm.MaterializeInto(ctx, m, v, cs, exec.Options{BatchSize: opt.Batch})
	res.StreamWriteSeconds = time.Since(t0).Seconds()
	if err != nil {
		return res, fmt.Errorf("streaming materialize: %w", err)
	}
	res.Rows = int64(exec.TotalRows(ring))
	if res.StreamWriteSeconds > 0 {
		res.WriteRowsPerSec = float64(res.Rows) / res.StreamWriteSeconds
	}

	// Materializing scan leg first: the same rows back through orm.Load,
	// which holds the whole decoded client state live — that is the
	// baseline the streaming path's peak is compared against. It runs
	// before the streaming leg so every reference to the map-based store
	// can be dropped afterwards, leaving the streaming leg's forced-GC
	// samples to collect only what the executor itself holds.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	matBase := ms.HeapAlloc
	t0 = time.Now()
	loaded, err := orm.Load(m, v, ss)
	res.MatScanSeconds = time.Since(t0).Seconds()
	if err != nil {
		return res, fmt.Errorf("materializing load: %w", err)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > matBase {
		res.MatHeldBytes = ms.HeapAlloc - matBase
	}
	runtime.KeepAlive(loaded)
	if res.MatScanSeconds > 0 {
		res.MatRowsPerSec = float64(res.Rows) / res.MatScanSeconds
	}
	loaded = nil
	ss = nil
	_ = loaded
	_ = ss

	// Concurrent schema evolution: additive SMOs through the session's
	// fallback ladder while the scan leg runs. The scans read the original
	// generation — evolution clones, so the served views stay valid.
	session := pipeline.NewSession(m, v, pipeline.Options{})
	var committed, evFailed atomic.Int64
	evolveDone := make(chan struct{})
	var evolveWall atomic.Int64
	go func() {
		defer close(evolveDone)
		et0 := time.Now()
		for i := 0; i < opt.Evolves; i++ {
			op := modef.PlannedAddEntity(
				fmt.Sprintf("StreamEvo%d", i), "Entity2",
				[]edm.Attribute{{Name: "Note", Type: cond.KindString, Nullable: true}})
			if _, _, err := session.Evolve(ctx, op); err != nil {
				evFailed.Add(1)
			} else {
				committed.Add(1)
			}
		}
		evolveWall.Store(int64(time.Since(et0)))
	}()

	// Streaming scan leg. Peak resident bytes are sampled between batches
	// with a forced collection first, so the sample is the heap the
	// executor actually holds live — raw HeapAlloc would mostly measure
	// GC pacing slack, which scales with the (shared) store, not with the
	// executor's working set. The client state was already dropped above:
	// the streaming scans read only the ring, and a smaller live heap
	// keeps the sampling collections cheap and the live-delta honest.
	// Time spent inside sample() is tracked and subtracted from the scan
	// wall so rows/s measures the executor, not the metrology.
	cs = nil
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak uint64
	var sampleTick int64
	var sampleDur time.Duration
	sample := func(force bool) {
		sampleTick++
		if !force && sampleTick%64 != 0 {
			return
		}
		s0 := time.Now()
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		sampleDur += time.Since(s0)
	}

	env := &exec.Env{Catalog: m.Catalog(), Store: ring}
	opts := exec.Options{BatchSize: opt.Batch}
	var allLat []time.Duration
	var perView []StreamViewLat
	var scanRows int64
	t0 = time.Now()
	drain := func(name string, next func() (int, bool, error), close func() error) error {
		defer close()
		var lats []time.Duration
		var rows, batches int64
		for {
			b0 := time.Now()
			n, ok, err := next()
			if err != nil {
				return fmt.Errorf("view %s: %w", name, err)
			}
			if !ok {
				break
			}
			lats = append(lats, time.Since(b0))
			rows += int64(n)
			batches++
			sample(false)
		}
		scanRows += rows
		allLat = append(allLat, lats...)
		p50, p99 := latPercentiles(lats)
		perView = append(perView, StreamViewLat{View: name, Rows: rows, Batches: batches, P50Us: p50, P99Us: p99})
		return nil
	}
	for _, ty := range sortedKeys(v.Query) {
		it, err := exec.OpenView(ctx, env, v.Query[ty], exec.Strict, opts)
		if err != nil {
			return res, fmt.Errorf("open query view %s: %w", ty, err)
		}
		next := func() (int, bool, error) {
			ents, ok, err := it.Next()
			return len(ents), ok, err
		}
		if err := drain("query:"+ty, next, it.Close); err != nil {
			return res, err
		}
	}
	for _, a := range sortedKeys(v.Assoc) {
		it, err := exec.Open(ctx, env, v.Assoc[a].Q, opts)
		if err != nil {
			return res, fmt.Errorf("open assoc view %s: %w", a, err)
		}
		next := func() (int, bool, error) {
			batch, ok, err := it.Next()
			return len(batch), ok, err
		}
		if err := drain("assoc:"+a, next, it.Close); err != nil {
			return res, err
		}
	}
	sample(true)
	res.StreamScanSeconds = (time.Since(t0) - sampleDur).Seconds()
	res.StreamScanRows = scanRows
	if res.StreamScanSeconds > 0 {
		res.StreamRowsPerSec = float64(scanRows) / res.StreamScanSeconds
	}
	if peak > base {
		res.StreamPeakBytes = peak - base
	}
	res.BatchP50Us, res.BatchP99Us = latPercentiles(allLat)
	sort.Slice(perView, func(i, j int) bool { return perView[i].P99Us > perView[j].P99Us })
	if len(perView) > 20 {
		perView = perView[:20]
	}
	res.SlowestViews = perView

	<-evolveDone
	res.EvolvesCommitted = committed.Load()
	res.EvolvesFailed = evFailed.Load()
	res.EvolveSeconds = time.Duration(evolveWall.Load()).Seconds()

	if res.MatHeldBytes > 0 {
		res.BytesRatio = float64(res.StreamPeakBytes) / float64(res.MatHeldBytes)
	}
	res.Pass = res.MatHeldBytes > 0 && res.StreamPeakBytes*10 < res.MatHeldBytes &&
		res.EvolvesFailed == 0 && res.StreamScanRows > 0
	return res, nil
}

// latPercentiles returns the p50 and p99 of a latency sample in µs.
func latPercentiles(lats []time.Duration) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)/2].Nanoseconds()) / 1e3, float64(s[len(s)*99/100].Nanoseconds()) / 1e3
}

// sortedKeys returns the map's keys in sorted order, so scans and reports
// are deterministic.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
