package experiments

import (
	"context"
	"time"

	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/store"
	"github.com/ormkit/incmap/internal/workload"
)

// WarmstartPoint is one cold-vs-warm measurement of the persistent compile
// cache on a hub-and-rim point: the cold column pays a full compilation
// (plus the snapshot write), the warm column restores the same generation
// from disk through a fresh store handle — the in-process stand-in for a
// process restart (the true second-process number is WarmstartChild).
type WarmstartPoint struct {
	N, M int
	TPH  bool
	// Cold is a session open against an empty store: full compile + snapshot.
	Cold time.Duration
	// Warm is a session open against the populated store: load + re-intern.
	Warm time.Duration
	// ColdEvolve / WarmEvolve time the same probe SMO on each session; the
	// warm one runs against restored SatCache verdicts and lemmas.
	ColdEvolve time.Duration
	WarmEvolve time.Duration
	// Speedup is Cold/Warm.
	Speedup float64
	// StoreHits counts records the warm open decoded and accepted;
	// PersistedHits counts restored SatCache verdicts the warm Evolve
	// consulted; StoreBytes is what the cold process wrote.
	StoreHits     int64
	PersistedHits int64
	StoreBytes    int64
	Err           error
}

// warmstartProbeOps is the SMO sequence both rungs evolve — dropping a
// rim leaf (association first) touches no new store objects, so the
// identical operations run on the cold and the warm session and their
// timings compare directly.
func warmstartProbeOps() []core.SMO {
	return []core.SMO{
		&core.DropAssociation{Name: "A0_0"},
		&core.DropEntity{Name: "Rim0_0"},
	}
}

// evolveProbe runs the probe sequence on s, returning the final generation
// and the total wall time.
func evolveProbe(ctx context.Context, s *pipeline.Session) (*frag.Mapping, *frag.Views, time.Duration, error) {
	var em *frag.Mapping
	var ev *frag.Views
	t0 := time.Now()
	for _, op := range warmstartProbeOps() {
		var err error
		em, ev, err = s.Evolve(ctx, op)
		if err != nil {
			return nil, nil, time.Since(t0), err
		}
	}
	return em, ev, time.Since(t0), nil
}

// Warmstart measures one point. dir must be an empty directory; it holds
// the store both halves share.
func Warmstart(n, m int, tph bool, dir string) WarmstartPoint {
	p := WarmstartPoint{N: n, M: m, TPH: tph}
	ctx := context.Background()
	opt := workload.HubRimOptions{N: n, M: m, TPH: tph}

	st, err := store.Open(dir)
	if err != nil {
		p.Err = err
		return p
	}
	t0 := time.Now()
	cold, err := pipeline.NewSessionCompile(ctx, workload.HubRim(opt), pipeline.Options{Store: st})
	p.Cold = time.Since(t0)
	if err != nil {
		p.Err = err
		return p
	}
	_, _, p.ColdEvolve, err = evolveProbe(ctx, cold)
	if err != nil {
		p.Err = err
		return p
	}
	p.StoreBytes = st.Stats().BytesWritten

	// The "restarted process": a fresh store handle, a fresh mapping value,
	// a fresh SatCache.
	st2, err := store.Open(dir)
	if err != nil {
		p.Err = err
		return p
	}
	t0 = time.Now()
	warm, err := pipeline.NewSessionCompile(ctx, workload.HubRim(opt), pipeline.Options{Store: st2})
	p.Warm = time.Since(t0)
	if err != nil {
		p.Err = err
		return p
	}
	wm, wv, warmEvolve, err := evolveProbe(ctx, warm)
	p.WarmEvolve = warmEvolve
	if err != nil {
		p.Err = err
		return p
	}
	if p.Warm > 0 {
		p.Speedup = p.Cold.Seconds() / p.Warm.Seconds()
	}
	p.StoreHits = st2.Stats().Hits
	if c := warm.SatCache(); c != nil {
		p.PersistedHits = c.Stats().PersistedHits
	}
	// Correctness: the warm evolved generation must roundtrip client data.
	if err := orm.Roundtrip(wm, wv, orm.RandomState(wm, 2654435761, 3)); err != nil {
		p.Err = err
	}
	return p
}

// WarmstartChildResult is what a genuinely separate process reports after
// opening a store directory its parent populated: the cross-process proof
// that persisted artifacts survive a restart.
type WarmstartChildResult struct {
	WarmSeconds   float64 `json:"warmSeconds"`
	EvolveSeconds float64 `json:"evolveSeconds"`
	WarmStarts    int64   `json:"warmStarts"`
	StoreHits     int64   `json:"storeHits"`
	PersistedHits int64   `json:"persistedHits"`
	RoundtripOK   bool    `json:"roundtripOK"`
}

// WarmstartChild is the second-process half of the experiment, run by
// mapbench when it re-executes itself over a shared store directory.
func WarmstartChild(dir string, n, m int, tph bool) (WarmstartChildResult, error) {
	var r WarmstartChildResult
	st, err := store.Open(dir)
	if err != nil {
		return r, err
	}
	ctx := context.Background()
	t0 := time.Now()
	s, err := pipeline.NewSessionCompile(ctx, workload.HubRim(workload.HubRimOptions{N: n, M: m, TPH: tph}),
		pipeline.Options{Store: st})
	if err != nil {
		return r, err
	}
	r.WarmSeconds = time.Since(t0).Seconds()
	r.WarmStarts = s.Stats().WarmStarts
	em, ev, evolveD, err := evolveProbe(ctx, s)
	if err != nil {
		return r, err
	}
	r.EvolveSeconds = evolveD.Seconds()
	r.StoreHits = st.Stats().Hits
	if c := s.SatCache(); c != nil {
		r.PersistedHits = c.Stats().PersistedHits
	}
	r.RoundtripOK = orm.Roundtrip(em, ev, orm.RandomState(em, 2654435761, 3)) == nil
	return r, nil
}
