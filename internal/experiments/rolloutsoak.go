package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/server"
	"github.com/ormkit/incmap/internal/store"
)

// RolloutSoakOptions parameterizes the versioned-rollout soak.
type RolloutSoakOptions struct {
	// Tenants is the number of concurrently served models, each of which
	// runs the full rollout gauntlet (clean cutover, fault-storm rollback,
	// post-cutover rollback).
	Tenants int
	// ChainN sizes each tenant's chain model (must be >= 2: the rollout
	// adds a TPH subtype under Entity2).
	ChainN int
	// ReadersPerTenant is how many goroutines hammer each tenant's read
	// endpoints — status, rows, cross-version rows — for the whole run.
	// The acceptance contract is that none of those reads ever sees a 5xx,
	// before, during or after a cutover or rollback.
	ReadersPerTenant int
	// BatchRows bounds one backfill batch.
	BatchRows int
	// SeedRows is the synthetic per-type row count seeded before the first
	// rollout.
	SeedRows int
	// Dir backs the daemon with a persistent store (required: rollout
	// checkpoints live there).
	Dir string
}

func (o *RolloutSoakOptions) defaults() {
	if o.Tenants <= 0 {
		o.Tenants = 3
	}
	if o.ChainN < 2 {
		o.ChainN = 4
	}
	if o.ReadersPerTenant <= 0 {
		o.ReadersPerTenant = 2
	}
	if o.BatchRows <= 0 {
		o.BatchRows = 2
	}
	if o.SeedRows <= 0 {
		o.SeedRows = 4
	}
}

// RolloutSoakResult is the measured outcome of one rollout soak: the
// throughput-style counters, the read-latency percentiles split at the
// first cutover (the EXPERIMENTS before/after table), and the acceptance
// verdicts the CI job asserts on.
type RolloutSoakResult struct {
	Tenants      int   `json:"tenants"`
	Rollouts     int   `json:"rollouts"`
	Cutovers     int   `json:"cutovers"`
	Rollbacks    int   `json:"rollbacks"`
	GateFailures int64 `json:"gateFailures"`
	FaultsFired  int64 `json:"faultsFired"`

	Reads       int64 `json:"reads"`
	Read5xx     int64 `json:"read5xx"`
	ReadNetErrs int64 `json:"readNetErrors"`
	CrossReads  int64 `json:"crossVersionReads"`
	CrossWrites int64 `json:"crossVersionWrites"`

	PreCutoverP50Us  float64 `json:"preCutoverReadP50Us"`
	PreCutoverP99Us  float64 `json:"preCutoverReadP99Us"`
	PostCutoverP50Us float64 `json:"postCutoverReadP50Us"`
	PostCutoverP99Us float64 `json:"postCutoverReadP99Us"`
	WallMs           float64 `json:"wallMs"`

	// The acceptance verdicts. Violations carries one line per failed
	// check so a red CI run says what broke, not just that something did.
	ZeroRead5xx          bool     `json:"zeroRead5xx"`
	NoDataLoss           bool     `json:"noDataLoss"`
	MonotonicGenerations bool     `json:"monotonicGenerations"`
	VerbatimRollback     bool     `json:"verbatimRollback"`
	Violations           []string `json:"violations,omitempty"`
}

// Pass reports whether every acceptance verdict held.
func (r RolloutSoakResult) Pass() bool {
	return r.ZeroRead5xx && r.NoDataLoss && r.MonotonicGenerations && r.VerbatimRollback
}

// String formats the result as a table block.
func (r RolloutSoakResult) String() string {
	verdict := func(b bool) string {
		if b {
			return "ok"
		}
		return "VIOLATED"
	}
	s := fmt.Sprintf(
		"tenants=%d rollouts=%d cutovers=%d rollbacks=%d gateFailures=%d faults=%d\n"+
			"reads=%d read5xx=%d netErrs=%d crossReads=%d crossWrites=%d\n"+
			"read latency before cutover p50=%.0fµs p99=%.0fµs — after p50=%.0fµs p99=%.0fµs\n"+
			"zero-read-5xx=%s no-data-loss=%s monotonic-generations=%s verbatim-rollback=%s",
		r.Tenants, r.Rollouts, r.Cutovers, r.Rollbacks, r.GateFailures, r.FaultsFired,
		r.Reads, r.Read5xx, r.ReadNetErrs, r.CrossReads, r.CrossWrites,
		r.PreCutoverP50Us, r.PreCutoverP99Us, r.PostCutoverP50Us, r.PostCutoverP99Us,
		verdict(r.ZeroRead5xx), verdict(r.NoDataLoss), verdict(r.MonotonicGenerations), verdict(r.VerbatimRollback))
	for _, v := range r.Violations {
		s += "\n  violation: " + v
	}
	return s
}

// soakData mirrors the daemon's data-endpoint response.
type soakData struct {
	TotalRows int            `json:"totalRows"`
	Checksum  string         `json:"checksum"`
	Entities  map[string]int `json:"entities"`
}

// soakHarness wraps one daemon plus the HTTP plumbing the soak drives it
// through.
type soakHarness struct {
	client *http.Client
	base   string
}

func (h *soakHarness) do(method, path string, body, out any) (int, error) {
	var rd *bytes.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(payload)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, h.base+path, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}

// waitRollout polls a tenant's rollout until it reaches a terminal phase.
func (h *soakHarness) waitRollout(name string, timeout time.Duration) (server.RolloutStatus, error) {
	deadline := time.Now().Add(timeout)
	var st server.RolloutStatus
	for {
		code, err := h.do("GET", "/v1/tenants/"+name+"/rollout", nil, &st)
		if err == nil && code == http.StatusOK {
			switch st.Phase {
			case "done", "rolledback", "failed", "suspended":
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("rollout on %s did not finish (phase %q, err %q)", name, st.Phase, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (h *soakHarness) tenant(name string) (server.TenantStatus, error) {
	var st server.TenantStatus
	code, err := h.do("GET", "/v1/tenants/"+name, nil, &st)
	if err != nil {
		return st, err
	}
	if code != http.StatusOK {
		return st, fmt.Errorf("tenant %s status: %d", name, code)
	}
	return st, nil
}

func (h *soakHarness) data(name, query string) (soakData, error) {
	var d soakData
	code, err := h.do("GET", "/v1/tenants/"+name+"/data"+query, nil, &d)
	if err != nil {
		return d, err
	}
	if code != http.StatusOK {
		return d, fmt.Errorf("data %s%s: %d", name, query, code)
	}
	return d, nil
}

// rolloutReq builds the standard soak rollout: one TPH subtype under
// Entity2 with a nullable gap attribute.
func rolloutReq(prefix, suffix string, batchRows int, seed uint32) map[string]any {
	return map[string]any{
		"smos": []map[string]any{{
			"op": "addEntity", "name": prefix + suffix, "parent": prefix + "Entity2",
			"attrs": []map[string]any{{"name": "Note", "type": "string", "nullable": true}},
		}},
		"canarySamples": 2,
		"batchRows":     batchRows,
		"seed":          seed,
	}
}

// RolloutSoak boots a store-backed daemon, registers N tenants with
// synthetic rows, then drives every tenant through three rollouts while
// readers hammer the serving and cross-version read paths:
//
//  1. a clean rollout — propose, canary, checkpointed backfill, guarded
//     cutover, verification — after which old-version clients read and
//     write through the cross-version views;
//  2. a concurrent fault storm — gate faults plus backfill-batch faults —
//     that must end in automatic rollbacks restoring fingerprint and rows
//     bit-for-bit;
//  3. a post-cutover gate failure per tenant (the verify gate), the
//     hardest rollback: serving state was already swapped, so the engine
//     must restore the prior generation verbatim under a monotonically
//     advancing generation counter.
//
// It reports read-latency percentiles split at the first cutover and the
// four acceptance verdicts (zero read 5xx, no cross-version data loss,
// monotonic generations, verbatim rollback).
func RolloutSoak(opt RolloutSoakOptions) (RolloutSoakResult, error) {
	opt.defaults()
	res := RolloutSoakResult{Tenants: opt.Tenants}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	st, err := store.Open(opt.Dir)
	if err != nil {
		return res, fmt.Errorf("opening store: %w", err)
	}
	srv := server.New(server.Options{Store: st})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	h := &soakHarness{client: &http.Client{Timeout: 30 * time.Second}, base: "http://" + ln.Addr().String()}

	names := make([]string, opt.Tenants)
	prefixes := make([]string, opt.Tenants)
	rows0 := make([]int, opt.Tenants)
	gen := make([]int64, opt.Tenants) // latest observed generation, for monotonicity
	for i := range names {
		names[i] = fmt.Sprintf("rs%d", i)
		prefixes[i] = fmt.Sprintf("Rs%dx", i)
		code, err := h.do("POST", "/v1/tenants/"+names[i], map[string]any{
			"workload": map[string]any{"kind": "chain", "prefix": prefixes[i], "n": opt.ChainN},
		}, nil)
		if err != nil || code != http.StatusCreated {
			return res, fmt.Errorf("registering %s: code %d err %v", names[i], code, err)
		}
		var seeded soakData
		code, err = h.do("POST", "/v1/tenants/"+names[i]+"/data",
			map[string]any{"seed": uint32(7 + i), "maxPerType": opt.SeedRows}, &seeded)
		if err != nil || code != http.StatusOK || seeded.TotalRows == 0 {
			return res, fmt.Errorf("seeding %s: code %d rows %d err %v", names[i], code, seeded.TotalRows, err)
		}
		rows0[i] = seeded.TotalRows
		ts, err := h.tenant(names[i])
		if err != nil {
			return res, err
		}
		gen[i] = ts.Generation
	}

	// Readers: status, current rows, cross-version rows — in rotation, for
	// the whole run. Latencies split at the first cutover wave.
	var (
		reads        atomic.Int64
		read5xx      atomic.Int64
		readNetErrs  atomic.Int64
		afterCutover atomic.Bool
		stopReaders  = make(chan struct{})
		readWg       sync.WaitGroup
		latMu        sync.Mutex
		preLat       []time.Duration
		postLat      []time.Duration
	)
	readPaths := []string{"", "/data", "/data?version=prev"}
	for i := range names {
		name := names[i]
		for r := 0; r < opt.ReadersPerTenant; r++ {
			readWg.Add(1)
			go func(rot int) {
				defer readWg.Done()
				var pre, post []time.Duration
				for n := rot; ; n++ {
					select {
					case <-stopReaders:
						latMu.Lock()
						preLat = append(preLat, pre...)
						postLat = append(postLat, post...)
						latMu.Unlock()
						return
					default:
					}
					post2 := afterCutover.Load()
					t0 := time.Now()
					resp, err := h.client.Get(h.base + "/v1/tenants/" + name + readPaths[n%len(readPaths)])
					if err != nil {
						readNetErrs.Add(1)
						continue
					}
					resp.Body.Close()
					d := time.Since(t0)
					reads.Add(1)
					if resp.StatusCode >= 500 {
						read5xx.Add(1)
					}
					if post2 {
						post = append(post, d)
					} else {
						pre = append(pre, d)
					}
				}
			}(r)
		}
	}

	start := time.Now()

	// --- round 1: clean rollout on every tenant, concurrently ------------
	round := func(suffix string, seed uint32) []server.RolloutStatus {
		sts := make([]server.RolloutStatus, opt.Tenants)
		var wg sync.WaitGroup
		for i := range names {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				code, err := h.do("POST", "/v1/tenants/"+names[i]+"/rollout",
					rolloutReq(prefixes[i], suffix, opt.BatchRows, seed+uint32(i)), nil)
				if err != nil || code != http.StatusAccepted {
					sts[i] = server.RolloutStatus{Phase: "failed", Error: fmt.Sprintf("not accepted: code %d err %v", code, err)}
					return
				}
				sts[i], _ = h.waitRollout(names[i], 60*time.Second)
			}(i)
		}
		wg.Wait()
		return sts
	}

	fp1 := make([]string, opt.Tenants)    // post-cutover fingerprint: every later rollback must restore it
	baseline := make([]string, opt.Tenants) // checksum the rollbacks must restore
	res.Rollouts += opt.Tenants
	for i, rst := range round("Extra1", 21) {
		if rst.Phase != "done" {
			violate("clean rollout on %s ended %q (err %q)", names[i], rst.Phase, rst.Error)
			continue
		}
		res.Cutovers++
		cur, err := h.data(names[i], "")
		if err != nil {
			return res, err
		}
		if cur.TotalRows < rows0[i] {
			violate("%s lost rows across cutover: %d -> %d", names[i], rows0[i], cur.TotalRows)
		}
		prev, err := h.data(names[i], "?version=prev")
		if err != nil {
			return res, err
		}
		res.CrossReads++
		if len(prev.Entities) == 0 {
			violate("%s cross-version read returned no entity counts", names[i])
		}
		var wr soakData
		code, err := h.do("POST", "/v1/tenants/"+names[i]+"/data",
			map[string]any{"seed": uint32(31 + i), "maxPerType": 3, "version": "prev"}, &wr)
		if err != nil || code != http.StatusOK || wr.TotalRows == 0 {
			violate("%s cross-version write failed: code %d rows %d err %v", names[i], code, wr.TotalRows, err)
		} else {
			res.CrossWrites++
		}
		after, err := h.data(names[i], "")
		if err != nil {
			return res, err
		}
		baseline[i] = after.Checksum
		ts, err := h.tenant(names[i])
		if err != nil {
			return res, err
		}
		if ts.Generation <= gen[i] {
			violate("%s generation did not advance across cutover: %d -> %d", names[i], gen[i], ts.Generation)
		}
		gen[i] = ts.Generation
		fp1[i] = ts.Fingerprint
	}
	afterCutover.Store(true)

	// checkRestore asserts the rollback contract: fingerprint and rows
	// restored verbatim, generation counter never moving backwards.
	checkRestore := func(i int, strict bool) error {
		ts, err := h.tenant(names[i])
		if err != nil {
			return err
		}
		if fp1[i] != "" && ts.Fingerprint != fp1[i] {
			violate("%s rollback restored fingerprint %s, want %s", names[i], ts.Fingerprint, fp1[i])
		}
		switch {
		case ts.Generation < gen[i]:
			violate("%s generation went backwards: %d -> %d", names[i], gen[i], ts.Generation)
		case strict && ts.Generation == gen[i]:
			violate("%s post-cutover rollback did not advance the generation counter", names[i])
		}
		gen[i] = ts.Generation
		cur, err := h.data(names[i], "")
		if err != nil {
			return err
		}
		if baseline[i] != "" && cur.Checksum != baseline[i] {
			violate("%s rollback did not restore rows verbatim", names[i])
		}
		return nil
	}

	// --- round 2: concurrent fault storm ---------------------------------
	// Odd gate evaluations fail (canary rollbacks); tenants whose canary
	// passes hit a backfill that fails every batch through its whole retry
	// ladder (backfill rollbacks). Either way every rollout must end
	// rolledback with serving state untouched.
	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteRolloutGate, Kind: faultinject.KindError, Nth: 1, Every: 2},
		{Site: faultinject.SiteBackfillBatch, Kind: faultinject.KindError, Nth: 1, Every: 1},
	}})
	res.Rollouts += opt.Tenants
	storm := round("Extra2", 41)
	res.FaultsFired += faultinject.Fired()
	deactivate()
	for i, rst := range storm {
		if rst.Phase != "rolledback" {
			violate("fault-storm rollout on %s ended %q, want rolledback (err %q)", names[i], rst.Phase, rst.Error)
			continue
		}
		res.Rollbacks++
		res.GateFailures += rst.GateFailures
		if err := checkRestore(i, false); err != nil {
			return res, err
		}
	}

	// --- round 3: post-cutover rollback, one tenant at a time ------------
	// The third gate evaluation is the post-cutover verification (canary,
	// cutover, verify): failing it forces the engine to un-swap serving
	// state it already cut over.
	for i := range names {
		deact := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
			{Site: faultinject.SiteRolloutGate, Kind: faultinject.KindError, Nth: 3},
		}})
		res.Rollouts++
		code, err := h.do("POST", "/v1/tenants/"+names[i]+"/rollout",
			rolloutReq(prefixes[i], "Extra3", opt.BatchRows, 61+uint32(i)), nil)
		if err != nil || code != http.StatusAccepted {
			deact()
			return res, fmt.Errorf("round-3 rollout on %s not accepted: code %d err %v", names[i], code, err)
		}
		rst, err := h.waitRollout(names[i], 60*time.Second)
		res.FaultsFired += faultinject.Fired()
		deact()
		if err != nil {
			return res, err
		}
		if rst.Phase != "rolledback" {
			violate("post-cutover rollout on %s ended %q, want rolledback (err %q)", names[i], rst.Phase, rst.Error)
			continue
		}
		res.Rollbacks++
		res.GateFailures += rst.GateFailures
		if err := checkRestore(i, true); err != nil {
			return res, err
		}
	}

	res.WallMs = float64(time.Since(start).Microseconds()) / 1000
	close(stopReaders)
	readWg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return res, fmt.Errorf("drain: %w", err)
	}

	res.Reads = reads.Load()
	res.Read5xx = read5xx.Load()
	res.ReadNetErrs = readNetErrs.Load()
	res.PreCutoverP50Us, res.PreCutoverP99Us = percentiles(preLat)
	res.PostCutoverP50Us, res.PostCutoverP99Us = percentiles(postLat)
	res.ZeroRead5xx = res.Read5xx == 0
	res.NoDataLoss, res.MonotonicGenerations, res.VerbatimRollback = true, true, true
	for _, v := range res.Violations {
		switch {
		case strings.Contains(v, "lost rows"), strings.Contains(v, "cross-version"):
			res.NoDataLoss = false
		case strings.Contains(v, "generation"):
			res.MonotonicGenerations = false
		case strings.Contains(v, "fingerprint"), strings.Contains(v, "verbatim"):
			res.VerbatimRollback = false
		}
	}
	if res.Read5xx > 0 {
		violate("%d reads answered 5xx", res.Read5xx)
	}
	return res, nil
}

func percentiles(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(lat[len(lat)/2].Microseconds()), float64(lat[len(lat)*99/100].Microseconds())
}
