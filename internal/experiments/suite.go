package experiments

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/workload"
)

// SuiteTargets names where the SMO suite of Figures 9 and 10 attaches to a
// model: parents for the entity additions and endpoint types for the
// association additions.
type SuiteTargets struct {
	TPTParent string
	TPCParent string
	TPHParent string
	// FKEnd1/FKEnd2 are the endpoints of the AA-FK addition (end 2 gets
	// multiplicity 0..1); JTEnd1/JTEnd2 those of the many-to-many AA-JT.
	FKEnd1, FKEnd2 string
	JTEnd1, JTEnd2 string
	// PropType receives the AddProperty operation.
	PropType string
}

// Suite builds the paper's SMO suite: AE-x (AddEntity per style), AEP-np-x
// (partitioned across 2^n tables), AA-x (associations) and AP
// (AddProperty), using the naming of Figures 9 and 10.
func Suite(t SuiteTargets) []NamedOp {
	newAttrs := []edm.Attribute{
		{Name: "NewExtra", Type: cond.KindString, Nullable: true},
	}
	ops := []NamedOp{
		{Name: "AE-TPT", Make: func(m *frag.Mapping) (core.SMO, error) {
			return modef.PlanAddEntityWithStyle(m, "NewTPT", t.TPTParent, newAttrs, modef.TPT)
		}},
		{Name: "AE-TPC", Make: func(m *frag.Mapping) (core.SMO, error) {
			return modef.PlanAddEntityWithStyle(m, "NewTPC", t.TPCParent, newAttrs, modef.TPC)
		}},
		{Name: "AE-TPH", Make: func(m *frag.Mapping) (core.SMO, error) {
			return modef.PlanAddEntityWithStyle(m, "NewTPH", t.TPHParent, newAttrs, modef.TPH)
		}},
	}
	for n := 1; n <= 3; n++ {
		n := n
		ops = append(ops, NamedOp{
			Name: fmt.Sprintf("AEP-%dp-TPT", n),
			Make: func(m *frag.Mapping) (core.SMO, error) {
				return makePartitioned(m, t.TPTParent, n)
			},
		})
	}
	ops = append(ops,
		NamedOp{Name: "AA-FK", Make: func(m *frag.Mapping) (core.SMO, error) {
			return modef.PlanAddAssociation(m, "NewAF", t.FKEnd1, t.FKEnd2, edm.Many, edm.ZeroOne)
		}},
		NamedOp{Name: "AA-JT", Make: func(m *frag.Mapping) (core.SMO, error) {
			return modef.PlanAddAssociation(m, "NewAJ", t.JTEnd1, t.JTEnd2, edm.Many, edm.Many)
		}},
		NamedOp{Name: "AP", Make: func(m *frag.Mapping) (core.SMO, error) {
			table := "T_NewProp"
			if err := m.Store.AddTable(rel.Table{
				Name: table,
				Cols: []rel.Column{
					{Name: "Id", Type: cond.KindInt},
					{Name: "Val", Type: cond.KindString, Nullable: true},
				},
				Key: []string{"Id"},
			}); err != nil {
				return nil, err
			}
			return &core.AddProperty{
				Type:  t.PropType,
				Attr:  edm.Attribute{Name: "NewProp", Type: cond.KindString, Nullable: true},
				Table: table, Col: "Val",
			}, nil
		}},
	)
	return ops
}

// makePartitioned builds the AEP-np SMO: a new subtype horizontally
// partitioned across 2^n tables by ranges of a non-nullable Weight
// attribute, each table carrying a foreign key back to the parent's table,
// so validation checks 2^n new constraints — the scaling the paper
// observes for AEP-np-TPT.
func makePartitioned(m *frag.Mapping, parent string, n int) (core.SMO, error) {
	parts := 1 << n
	parentTable := modef.TableOfType(m, parent)
	if parentTable == "" {
		return nil, fmt.Errorf("experiments: parent %q unmapped", parent)
	}
	key := m.Client.KeyOf(parent)
	op := &core.AddEntityPart{
		Name:   fmt.Sprintf("NewPart%d", n),
		Parent: parent,
		DeclAttrs: []edm.Attribute{
			{Name: "Weight", Type: cond.KindInt},
		},
		P: parent,
	}
	for i := 0; i < parts; i++ {
		table := fmt.Sprintf("T_AEP%d_%d", n, i)
		cols := []rel.Column{{Name: "Id", Type: cond.KindInt}, {Name: "Weight", Type: cond.KindInt}}
		t := rel.Table{Name: table, Cols: cols, Key: []string{"Id"},
			FKs: []rel.ForeignKey{{
				Name: "fk_" + table, Cols: []string{"Id"},
				RefTable: parentTable, RefCols: m.Store.Table(parentTable).Key,
			}},
		}
		if err := m.Store.AddTable(t); err != nil {
			return nil, err
		}
		// Ranges: (-inf, 10), [10, 20), ..., [10*(parts-1), +inf).
		var c cond.Expr
		lo := cond.Cmp{Attr: "Weight", Op: cond.OpGe, Val: cond.Int(int64(10 * i))}
		hi := cond.Cmp{Attr: "Weight", Op: cond.OpLt, Val: cond.Int(int64(10 * (i + 1)))}
		switch {
		case i == 0:
			c = hi
		case i == parts-1:
			c = lo
		default:
			c = cond.NewAnd(lo, hi)
		}
		op.Parts = append(op.Parts, core.Part{
			Alpha: append(append([]string(nil), key...), "Weight"),
			Cond:  c,
			Table: table,
			ColOf: map[string]string{key[0]: "Id", "Weight": "Weight"},
		})
	}
	return op, nil
}

// Fig9 builds the chain model of Figure 8, measures its full compilation,
// and runs the SMO suite incrementally (Figure 9).
func Fig9(chainSize int) (full Result, suite []Result) {
	m := workload.Chain(chainSize)
	fullRes, views := FullCompile(m)
	if views == nil {
		return fullRes, nil
	}
	mid := chainSize / 2
	ty := func(i int) string { return fmt.Sprintf("Entity%d", i) }
	targets := SuiteTargets{
		TPTParent: ty(mid),
		TPCParent: ty(mid + 1),
		TPHParent: ty(mid + 2),
		FKEnd1:    ty(1 + chainSize/5), FKEnd2: ty(1 + 2*chainSize/5),
		JTEnd1: ty(1 + 3*chainSize/5), JTEnd2: ty(1 + 4*chainSize/5),
		PropType: ty(mid),
	}
	return fullRes, RunSuite(m, views, Suite(targets))
}

// Fig10 builds the synthetic customer model, measures its full
// compilation, and runs the SMO suite incrementally (Figure 10).
func Fig10(opt workload.CustomerOptions) (full Result, suite []Result) {
	m := workload.Customer(opt)
	fullRes, views := FullCompile(m)
	if views == nil {
		return fullRes, nil
	}
	targets := SuiteTargets{
		// Hierarchy 1 is TPT, hierarchy 0 is the large TPH one, hierarchy 3
		// is TPT as well (odd hierarchies are TPT).
		TPTParent: "H1T1",
		TPCParent: "H3T0",
		TPHParent: "H0T2",
		FKEnd1:    "H1T0", FKEnd2: "H5T0",
		JTEnd1: "H3T0", JTEnd2: "H7T0",
		PropType: "H1T1",
	}
	return fullRes, RunSuite(m, views, Suite(targets))
}
