package experiments

import (
	"fmt"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/workload"
)

// AblationCellPruning compares full compilation with theory-pruned cell
// enumeration against the naive 2^n enumeration, on a hub-and-rim point.
func AblationCellPruning(n, m int) []Result {
	var out []Result
	for _, naive := range []bool{false, true} {
		mapping := workload.HubRim(workload.HubRimOptions{N: n, M: m, TPH: true})
		c := &compiler.Compiler{Opts: compiler.Options{NaiveCells: naive}}
		start := time.Now()
		_, err := c.Compile(mapping)
		d := time.Since(start)
		name := "pruned"
		if naive {
			name = "naive"
		}
		out = append(out, Result{
			Name: name, D: d, Err: err,
			Note: fmt.Sprintf("cells=%d", c.Stats.CellsVisited),
		})
	}
	return out
}

// AblationSimplifier compares incremental compilation with and without the
// query-tree simplifier that eliminates outer joins before containment
// checking (§6 of the paper discusses these optimizations).
func AblationSimplifier(chainSize int) []Result {
	m := workload.Chain(chainSize)
	_, views := FullCompile(m)
	mid := chainSize / 2
	targets := SuiteTargets{
		TPTParent: fmt.Sprintf("Entity%d", mid),
		TPCParent: fmt.Sprintf("Entity%d", mid+1),
		TPHParent: fmt.Sprintf("Entity%d", mid+2),
		FKEnd1:    "Entity2", FKEnd2: "Entity3",
		JTEnd1: "Entity4", JTEnd2: "Entity5",
		PropType: fmt.Sprintf("Entity%d", mid),
	}
	op := Suite(targets)[0] // AE-TPT exercises the FK containment path
	var out []Result
	for _, noSimplify := range []bool{false, true} {
		ic := &core.Incremental{Opts: core.Options{NoSimplify: noSimplify}}
		start := time.Now()
		m2 := m.Clone()
		smo, err := op.Make(m2)
		if err == nil {
			_, _, err = ic.Apply(m2, views, smo)
		}
		d := time.Since(start)
		name := "simplified"
		if noSimplify {
			name = "unsimplified"
		}
		out = append(out, Result{Name: name, D: d, Err: err})
	}
	return out
}

// AblationNeighbourhood compares the incremental compiler's localized
// validation against re-checking every foreign key of the model — the
// neighbourhood restriction that makes incremental compilation fast
// (§1.2: "we need to focus only on the neighborhood of schema changes").
func AblationNeighbourhood(chainSize int) []Result {
	m := workload.Chain(chainSize)
	_, views := FullCompile(m)
	mid := chainSize / 2
	op := NamedOp{Name: "AE-TPT", Make: func(m2 *frag.Mapping) (core.SMO, error) {
		return Suite(SuiteTargets{
			TPTParent: fmt.Sprintf("Entity%d", mid),
		})[0].Make(m2)
	}}
	var out []Result
	for _, wide := range []bool{false, true} {
		ic := &core.Incremental{Opts: core.Options{WideValidation: wide}}
		start := time.Now()
		m2 := m.Clone()
		smo, err := op.Make(m2)
		if err == nil {
			_, _, err = ic.Apply(m2, views, smo)
		}
		d := time.Since(start)
		name := "neighbourhood"
		if wide {
			name = "all-constraints"
		}
		out = append(out, Result{
			Name: name, D: d, Err: err,
			Note: fmt.Sprintf("containments=%d", ic.Stats.Containments),
		})
	}
	return out
}
