package experiments

import (
	"fmt"
	"time"

	"github.com/ormkit/incmap/internal/workload"
)

// Fig4Point measures one full compilation of the hub-and-rim model
// (Figure 3/4 of the paper).
func Fig4Point(n, m int, tph bool) Result {
	mapping := workload.HubRim(workload.HubRimOptions{N: n, M: m, TPH: tph})
	r, _ := FullCompile(mapping)
	style := "TPT"
	if tph {
		style = "TPH"
	}
	r.Name = fmt.Sprintf("N=%d M=%d %s", n, m, style)
	return r
}

// Fig4Options bounds the Figure 4 grid. The compilation time of the TPH
// variant is exponential in N·M (that is the experiment's point), so the
// grid is cut off once a point exceeds PointBudget — the same pragmatic
// cap the paper applies by stopping its curves around 10^5 seconds.
type Fig4Options struct {
	MaxN int // hierarchy depths 1..MaxN (paper: 5)
	MaxM int // fan-outs 1..MaxM (paper: 15)
	// PointBudget stops extending a depth's curve after a point takes
	// longer than this.
	PointBudget time.Duration
}

// DefaultFig4Options keeps the default run under a couple of minutes.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{MaxN: 4, MaxM: 8, PointBudget: 10 * time.Second}
}

// Fig4Row is one curve point of Figure 4.
type Fig4Row struct {
	N, M   int
	TPH    time.Duration
	TPHErr error
	TPT    time.Duration
	TPTErr error
}

// Fig4 runs the grid: for each depth N, fan-outs M grow until the TPH
// compilation exceeds the point budget, reproducing both the exponential
// TPH curves and the flat TPT baseline ("under 0.2 seconds for all cases"
// per §1.1).
func Fig4(opt Fig4Options) []Fig4Row {
	var out []Fig4Row
	for n := 1; n <= opt.MaxN; n++ {
		for m := 1; m <= opt.MaxM; m++ {
			tph := Fig4Point(n, m, true)
			tpt := Fig4Point(n, m, false)
			out = append(out, Fig4Row{
				N: n, M: m,
				TPH: tph.D, TPHErr: tph.Err,
				TPT: tpt.D, TPTErr: tpt.Err,
			})
			if tph.D > opt.PointBudget {
				break // deeper fan-outs of this curve are out of budget
			}
		}
	}
	return out
}

// Fig4FrontierRow is one row of the capability frontier: for a depth N,
// the largest fan-out M whose TPH compilation completed within the point
// budget, with that point's wall time. Comparing frontiers across prover
// versions shows how far past the paper's "32 types in one table" wall a
// build reaches.
type Fig4FrontierRow struct {
	N    int
	MaxM int           // largest in-budget fan-out; 0 when even M=1 blew the budget
	TPH  time.Duration // wall time of the frontier point
}

// Fig4Frontier folds a grid into its per-depth frontier.
func Fig4Frontier(rows []Fig4Row, budget time.Duration) []Fig4FrontierRow {
	byN := map[int]*Fig4FrontierRow{}
	var order []int
	for _, r := range rows {
		if r.TPHErr != nil || r.TPH > budget {
			continue
		}
		f := byN[r.N]
		if f == nil {
			f = &Fig4FrontierRow{N: r.N}
			byN[r.N] = f
			order = append(order, r.N)
		}
		if r.M > f.MaxM {
			f.MaxM = r.M
			f.TPH = r.TPH
		}
	}
	out := make([]Fig4FrontierRow, 0, len(order))
	for _, n := range order {
		out = append(out, *byN[n])
	}
	return out
}
