package experiments

import (
	"fmt"
	"time"

	"github.com/ormkit/incmap/internal/workload"
)

// Fig4Point measures one full compilation of the hub-and-rim model
// (Figure 3/4 of the paper).
func Fig4Point(n, m int, tph bool) Result {
	mapping := workload.HubRim(workload.HubRimOptions{N: n, M: m, TPH: tph})
	r, _ := FullCompile(mapping)
	style := "TPT"
	if tph {
		style = "TPH"
	}
	r.Name = fmt.Sprintf("N=%d M=%d %s", n, m, style)
	return r
}

// Fig4Options bounds the Figure 4 grid. The compilation time of the TPH
// variant is exponential in N·M (that is the experiment's point), so the
// grid is cut off once a point exceeds PointBudget — the same pragmatic
// cap the paper applies by stopping its curves around 10^5 seconds.
type Fig4Options struct {
	MaxN int // hierarchy depths 1..MaxN (paper: 5)
	MaxM int // fan-outs 1..MaxM (paper: 15)
	// PointBudget stops extending a depth's curve after a point takes
	// longer than this.
	PointBudget time.Duration
}

// DefaultFig4Options keeps the default run under a couple of minutes.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{MaxN: 4, MaxM: 8, PointBudget: 10 * time.Second}
}

// Fig4Row is one curve point of Figure 4.
type Fig4Row struct {
	N, M   int
	TPH    time.Duration
	TPHErr error
	TPT    time.Duration
	TPTErr error
}

// Fig4 runs the grid: for each depth N, fan-outs M grow until the TPH
// compilation exceeds the point budget, reproducing both the exponential
// TPH curves and the flat TPT baseline ("under 0.2 seconds for all cases"
// per §1.1).
func Fig4(opt Fig4Options) []Fig4Row {
	var out []Fig4Row
	for n := 1; n <= opt.MaxN; n++ {
		for m := 1; m <= opt.MaxM; m++ {
			tph := Fig4Point(n, m, true)
			tpt := Fig4Point(n, m, false)
			out = append(out, Fig4Row{
				N: n, M: m,
				TPH: tph.D, TPHErr: tph.Err,
				TPT: tpt.D, TPTErr: tpt.Err,
			})
			if tph.D > opt.PointBudget {
				break // deeper fan-outs of this curve are out of budget
			}
		}
	}
	return out
}
