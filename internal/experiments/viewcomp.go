package experiments

import (
	"fmt"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// ViewComparison is one row of the §6 future-work study: for a type whose
// query view an SMO touched, the shape and evaluation cost of the
// incrementally evolved view against the freshly full-compiled one, plus
// whether the two are semantically equal on sampled data.
type ViewComparison struct {
	Op          string
	EntityType  string
	Incremental cqt.Metrics
	Full        cqt.Metrics
	IncEval     time.Duration
	FullEval    time.Duration
	Equivalent  bool
}

// String formats the row.
func (vc ViewComparison) String() string {
	eq := "equal"
	if !vc.Equivalent {
		eq = "DIFFER"
	}
	return fmt.Sprintf("%-12s %-14s inc[nodes=%d joins=%d outer=%d unions=%d %8.3fms]  full[nodes=%d joins=%d outer=%d unions=%d %8.3fms]  %s",
		vc.Op, vc.EntityType,
		vc.Incremental.Nodes, vc.Incremental.Joins, vc.Incremental.OuterJoins, vc.Incremental.Unions,
		float64(vc.IncEval.Microseconds())/1000,
		vc.Full.Nodes, vc.Full.Joins, vc.Full.OuterJoins, vc.Full.Unions,
		float64(vc.FullEval.Microseconds())/1000,
		eq)
}

// CompareViews runs the future-work study of §6 on a chain model: it
// applies each suite SMO incrementally, full-compiles the same evolved
// mapping, and compares the query views of the types the SMO touched —
// structurally (node/join/union counts), semantically (equal entities
// loaded from the same store state), and by evaluation wall-time over a
// sampled store.
func CompareViews(chainSize int) ([]ViewComparison, error) {
	base := workload.Chain(chainSize)
	baseViews, err := compiler.New().Compile(base)
	if err != nil {
		return nil, err
	}
	mid := chainSize / 2
	ty := func(i int) string { return fmt.Sprintf("Entity%d", i) }
	suite := Suite(SuiteTargets{
		TPTParent: ty(mid), TPCParent: ty(mid + 1), TPHParent: ty(mid + 2),
		FKEnd1: ty(1 + chainSize/5), FKEnd2: ty(1 + 2*chainSize/5),
		JTEnd1: ty(1 + 3*chainSize/5), JTEnd2: ty(1 + 4*chainSize/5),
		PropType: ty(mid),
	})

	var out []ViewComparison
	for _, op := range suite {
		m2 := base.Clone()
		smo, err := op.Make(m2)
		if err != nil {
			continue
		}
		ic := core.NewIncremental()
		m3, incViews, err := ic.Apply(m2, baseViews, smo)
		if err != nil {
			continue // rejected SMOs have nothing to compare
		}
		fullViews, err := compiler.New().Compile(m3)
		if err != nil {
			return nil, fmt.Errorf("%s: full compiler rejected the evolved mapping: %w", op.Name, err)
		}
		// Compare views of every type whose view differs structurally from
		// the base (the SMO's neighbourhood).
		ss, err := orm.Materialize(m3, fullViews, orm.RandomState(m3, 42, 3))
		if err != nil {
			return nil, err
		}
		for tyName, incView := range incViews.Query {
			fullView := fullViews.Query[tyName]
			if fullView == nil {
				continue
			}
			// Only the SMO's neighbourhood is interesting: skip views the
			// incremental compiler left textually identical to the base.
			if baseView := baseViews.Query[tyName]; baseView != nil &&
				cqt.Format(baseView.Q) == cqt.Format(incView.Q) {
				continue
			}
			cmp, err := compareOne(m3, op.Name, tyName, incView, fullView, ss)
			if err != nil {
				return nil, err
			}
			out = append(out, cmp)
		}
	}
	return out, nil
}

func compareOne(m *frag.Mapping, opName, tyName string, incView, fullView *cqt.View, ss *state.StoreState) (ViewComparison, error) {
	env := &cqt.Env{Catalog: m.Catalog(), Store: ss}
	timeEval := func(v *cqt.View) (time.Duration, []*state.Entity, error) {
		start := time.Now()
		var ents []*state.Entity
		var err error
		for i := 0; i < 10; i++ {
			ents, err = v.ConstructEntities(env)
			if err != nil {
				return 0, nil, err
			}
		}
		return time.Since(start) / 10, ents, nil
	}
	incD, incEnts, err := timeEval(incView)
	if err != nil {
		return ViewComparison{}, fmt.Errorf("%s/%s incremental view: %w", opName, tyName, err)
	}
	fullD, fullEnts, err := timeEval(fullView)
	if err != nil {
		return ViewComparison{}, fmt.Errorf("%s/%s full view: %w", opName, tyName, err)
	}
	return ViewComparison{
		Op:          opName,
		EntityType:  tyName,
		Incremental: cqt.Measure(incView.Q),
		Full:        cqt.Measure(fullView.Q),
		IncEval:     incD,
		FullEval:    fullD,
		Equivalent:  sameEntities(incEnts, fullEnts),
	}, nil
}

func sameEntities(a, b []*state.Entity) bool {
	if len(a) != len(b) {
		return false
	}
	ra := make([]state.Row, len(a))
	rb := make([]state.Row, len(b))
	for i := range a {
		ra[i] = a[i].Attrs.Clone()
		ra[i]["__ty"] = typeTagValue(a[i].Type)
		rb[i] = b[i].Attrs.Clone()
		rb[i]["__ty"] = typeTagValue(b[i].Type)
	}
	return state.EqualRows(ra, rb)
}

func typeTagValue(ty string) cond.Value { return cond.String(ty) }
