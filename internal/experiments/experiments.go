// Package experiments implements the paper's evaluation (§4): the
// Figure 4 hub-and-rim compilation-time grid, the Figure 9 SMO suite on
// the 1002-entity chain model, the Figure 10 SMO suite on the synthetic
// customer model, and the ablation studies listed in DESIGN.md. The
// mapbench command prints the same series the paper reports; the
// repository-level benchmarks wrap the same entry points in testing.B.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/frag"
)

// Result is one measured point.
type Result struct {
	// Name labels the point (an SMO mnemonic or a parameter tuple).
	Name string
	// D is the wall-clock duration of the operation.
	D time.Duration
	// Err is non-nil when the operation failed validation (the paper also
	// reports failing SMOs; their rejection time is still meaningful).
	Err error
	// Note carries auxiliary information (cells visited, containments).
	Note string
	// Containments counts the containment checks the operation issued.
	Containments int64
	// Allocs is the number of heap allocations observed over the run
	// (a runtime.MemStats Mallocs delta; approximate under concurrency).
	Allocs uint64
	// Fallbacks, Cancelled and PanicsRecovered record degradation events:
	// full-compile fallbacks taken by the pipeline, compilations stopped by
	// cancellation or deadline, and worker panics recovered into errors.
	Fallbacks       int64
	Cancelled       int64
	PanicsRecovered int64
}

// String formats the result as a table row.
func (r Result) String() string {
	status := "ok"
	if r.Err != nil {
		status = "rejected"
	}
	if r.Note != "" {
		return fmt.Sprintf("%-14s %12.6fs  %-9s %s", r.Name, r.D.Seconds(), status, r.Note)
	}
	return fmt.Sprintf("%-14s %12.6fs  %-9s", r.Name, r.D.Seconds(), status)
}

// FullCompile measures one full compilation.
func FullCompile(m *frag.Mapping) (Result, *frag.Views) {
	c := compiler.New()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	views, err := c.Compile(m)
	d := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return Result{
		Name:            "full",
		D:               d,
		Err:             err,
		Note:            fmt.Sprintf("cells=%d containments=%d", c.Stats.CellsVisited, c.Stats.Containments),
		Containments:    c.Stats.Containments,
		Allocs:          ms1.Mallocs - ms0.Mallocs,
		Cancelled:       c.Stats.Cancelled,
		PanicsRecovered: c.Stats.PanicsRecovered,
	}, views
}

// NamedOp is one operation of the SMO suite. Make prepares the store-side
// directive (new tables or columns) on the given mapping clone and returns
// the SMO.
type NamedOp struct {
	Name string
	Make func(m *frag.Mapping) (core.SMO, error)
}

// RunOp measures one incremental compilation of one suite operation
// against a compiled base mapping. The measured interval covers everything
// a developer waits for: cloning the model, the store-side directive, and
// the incremental compile itself.
func RunOp(base *frag.Mapping, views *frag.Views, op NamedOp) Result {
	ic := core.NewIncremental()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	m := base.Clone()
	smo, err := op.Make(m)
	if err == nil {
		_, _, err = ic.Apply(m, views, smo)
	}
	d := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return Result{
		Name:         op.Name,
		D:            d,
		Err:          err,
		Note:         fmt.Sprintf("containments=%d", ic.Stats.Containments),
		Containments: ic.Stats.Containments,
		Allocs:       ms1.Mallocs - ms0.Mallocs,
		Cancelled:    ic.Stats.Cancelled,
	}
}

// RunSuite measures every operation of a suite.
func RunSuite(base *frag.Mapping, views *frag.Views, suite []NamedOp) []Result {
	out := make([]Result, 0, len(suite))
	for _, op := range suite {
		out = append(out, RunOp(base, views, op))
	}
	return out
}
