package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/server"
	"github.com/ormkit/incmap/internal/store"
)

// ServeSoakOptions parameterizes the multi-tenant daemon soak.
type ServeSoakOptions struct {
	// Tenants is the number of concurrently served models.
	Tenants int
	// EvolvesPerTenant is how many schema changes each tenant's driver
	// pushes, sequentially (mirroring a real application).
	EvolvesPerTenant int
	// ReadersPerTenant is how many goroutines hammer each tenant's read
	// endpoint for the duration of the run.
	ReadersPerTenant int
	// ChainN sizes each tenant's chain model.
	ChainN int
	// QueueDepth bounds each tenant's evolve queue (the admission gate).
	QueueDepth int
	// Faults, when true, activates the same deterministic fault storm the
	// soak test uses: shed at admission, panics in the worker, persist
	// failures and torn store writes.
	Faults bool
	// Dir, when non-empty, backs the daemon with a persistent store there
	// (write-behind), so the run also measures drain/flush cost.
	Dir string
}

func (o *ServeSoakOptions) defaults() {
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.EvolvesPerTenant <= 0 {
		o.EvolvesPerTenant = 12
	}
	if o.ReadersPerTenant <= 0 {
		o.ReadersPerTenant = 2
	}
	if o.ChainN <= 0 {
		o.ChainN = 5
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
}

// ServeSoakResult is the measured outcome of one soak run.
type ServeSoakResult struct {
	Tenants      int           `json:"tenants"`
	Evolves      int           `json:"evolvesAttempted"`
	Committed    int64         `json:"evolvesCommitted"`
	Shed         int64         `json:"evolvesShed"`
	Failed       int64         `json:"evolvesFailed"`
	Reads        int64         `json:"reads"`
	StaleReads   int64         `json:"staleReads"`
	ReadErrors   int64         `json:"readErrors"`
	FaultsFired  int64         `json:"faultsFired"`
	Wall         time.Duration `json:"-"`
	WallMs       float64       `json:"wallMs"`
	DrainMs      float64       `json:"drainMs"`
	ThroughputPS float64       `json:"evolvesPerSec"`
	ReadP50Us    float64       `json:"readP50Us"`
	ReadP99Us    float64       `json:"readP99Us"`
	ShedRate     float64       `json:"shedRate"`
	StaleRate    float64       `json:"staleServeRate"`
}

// String formats the result as a table block.
func (r ServeSoakResult) String() string {
	return fmt.Sprintf(
		"tenants=%d evolves=%d committed=%d shed=%d failed=%d\n"+
			"reads=%d stale=%d readErrors=%d faults=%d\n"+
			"throughput=%.1f evolves/s  read p50=%.0fµs p99=%.0fµs\n"+
			"shed rate=%.1f%%  stale-serve rate=%.2f%%  drain=%.1fms",
		r.Tenants, r.Evolves, r.Committed, r.Shed, r.Failed,
		r.Reads, r.StaleReads, r.ReadErrors, r.FaultsFired,
		r.ThroughputPS, r.ReadP50Us, r.ReadP99Us,
		r.ShedRate*100, r.StaleRate*100, r.DrainMs)
}

// ServeSoak boots a mapserved daemon on a loopback listener, registers N
// tenants, then hammers them with concurrent evolvers and readers —
// optionally under the deterministic fault storm — and reports throughput,
// read latency percentiles, the shed rate and the stale-serve rate. It is
// the measured twin of the internal/server soak test: the test asserts the
// robustness contract, this reports what the contract costs.
func ServeSoak(opt ServeSoakOptions) (ServeSoakResult, error) {
	opt.defaults()
	res := ServeSoakResult{Tenants: opt.Tenants, Evolves: opt.Tenants * opt.EvolvesPerTenant}

	sopts := server.Options{QueueDepth: opt.QueueDepth}
	if opt.Dir != "" {
		st, err := store.Open(opt.Dir)
		if err != nil {
			return res, fmt.Errorf("opening store: %w", err)
		}
		sopts.Store = st
		sopts.WriteBehind = true
		sopts.PersistRetries = 2
		sopts.PersistBackoff = time.Millisecond
	}
	srv := server.New(sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer hs.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < opt.Tenants; i++ {
		body, _ := json.Marshal(map[string]any{
			"workload": map[string]any{"kind": "chain", "prefix": fmt.Sprintf("Tn%dx", i), "n": opt.ChainN},
		})
		resp, err := client.Post(fmt.Sprintf("%s/v1/tenants/tenant%d", base, i), "application/json", bytes.NewReader(body))
		if err != nil {
			return res, fmt.Errorf("registering tenant%d: %w", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return res, fmt.Errorf("registering tenant%d: status %d", i, resp.StatusCode)
		}
	}

	var deactivate func()
	if opt.Faults {
		deactivate = faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
			{Site: faultinject.SiteServerAdmit, Kind: faultinject.KindError, Nth: 5, Every: 9},
			{Site: faultinject.SiteServerHandler, Kind: faultinject.KindPanic, Nth: 4, Every: 11},
			{Site: faultinject.SiteSessionPersist, Kind: faultinject.KindError, Nth: 3, Every: 7},
			{Site: faultinject.SiteStoreSave, Kind: faultinject.KindCorrupt, Nth: 6, Every: 13},
		}})
	}

	var (
		wg, readWg  sync.WaitGroup
		committed   atomic.Int64
		shed        atomic.Int64
		failed      atomic.Int64
		reads       atomic.Int64
		staleReads  atomic.Int64
		readErrors  atomic.Int64
		stopReaders = make(chan struct{})
		latMu       sync.Mutex
		latencies   []time.Duration
	)

	start := time.Now()
	for i := 0; i < opt.Tenants; i++ {
		name := fmt.Sprintf("tenant%d", i)
		prefix := fmt.Sprintf("Tn%dx", i)

		for r := 0; r < opt.ReadersPerTenant; r++ {
			readWg.Add(1)
			go func() {
				defer readWg.Done()
				var local []time.Duration
				for {
					select {
					case <-stopReaders:
						latMu.Lock()
						latencies = append(latencies, local...)
						latMu.Unlock()
						return
					default:
					}
					t0 := time.Now()
					resp, err := client.Get(base + "/v1/tenants/" + name + "/views")
					if err != nil {
						readErrors.Add(1)
						continue
					}
					var st server.TenantStatus
					_ = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					local = append(local, time.Since(t0))
					reads.Add(1)
					if resp.StatusCode != http.StatusOK {
						readErrors.Add(1)
					} else if st.Stale {
						staleReads.Add(1)
					}
				}
			}()
		}

		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 0; e < opt.EvolvesPerTenant; e++ {
				body, _ := json.Marshal(map[string]any{
					"op": "addEntity", "name": fmt.Sprintf("%sSoak%d", prefix, e),
					"parent":    prefix + "Entity1",
					"timeoutMs": 15000,
				})
				resp, err := client.Post(base+"/v1/tenants/"+name+"/evolve", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					committed.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}

	wg.Wait()
	res.Wall = time.Since(start)
	close(stopReaders)
	readWg.Wait()
	if deactivate != nil {
		res.FaultsFired = faultinject.Fired()
		deactivate()
	}

	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return res, fmt.Errorf("drain: %w", err)
	}
	res.DrainMs = float64(time.Since(drainStart).Microseconds()) / 1000

	res.Committed = committed.Load()
	res.Shed = shed.Load()
	res.Failed = failed.Load()
	res.Reads = reads.Load()
	res.StaleReads = staleReads.Load()
	res.ReadErrors = readErrors.Load()
	res.WallMs = float64(res.Wall.Microseconds()) / 1000
	if secs := res.Wall.Seconds(); secs > 0 {
		res.ThroughputPS = float64(res.Committed) / secs
	}
	if attempts := res.Committed + res.Shed + res.Failed; attempts > 0 {
		res.ShedRate = float64(res.Shed) / float64(attempts)
	}
	if res.Reads > 0 {
		res.StaleRate = float64(res.StaleReads) / float64(res.Reads)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.ReadP50Us = float64(latencies[n/2].Microseconds())
		res.ReadP99Us = float64(latencies[n*99/100].Microseconds())
	}
	return res, nil
}
