package experiments

import "testing"

// TestCompareViewsStudy runs the §6 future-work comparison on a small
// chain: every touched view must be semantically equal between the
// incremental and full compilers.
func TestCompareViewsStudy(t *testing.T) {
	rows, err := CompareViews(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no views compared")
	}
	for _, r := range rows {
		if !r.Equivalent {
			t.Errorf("%s/%s: incremental and full views disagree", r.Op, r.EntityType)
		}
	}
}
