package experiments

import (
	"testing"

	"github.com/ormkit/incmap/internal/workload"
)

// TestFig9SuiteSmall runs the full Figure 9 pipeline on a small chain and
// checks the headline shape: every SMO compiles faster than the full
// compilation. AE-TPC is legitimately rejected on this model — every chain
// entity participates in associations, so a TPC subtype removes its keys
// from the endpoint tables, the Figure 6 scenario the paper reports as the
// common validation failure (§4.2).
func TestFig9SuiteSmall(t *testing.T) {
	full, suite := Fig9(60)
	if full.Err != nil {
		t.Fatalf("full compile failed: %v", full.Err)
	}
	if len(suite) != 9 {
		t.Fatalf("suite has %d ops, want 9", len(suite))
	}
	for _, r := range suite {
		if r.Err != nil && r.Name != "AE-TPC" {
			t.Errorf("%s rejected: %v", r.Name, r.Err)
		}
		if r.Name == "AE-TPC" && r.Err == nil {
			t.Errorf("AE-TPC under an association endpoint should be rejected on the chain model")
		}
		if r.D >= full.D {
			t.Errorf("%s (%v) not faster than full compilation (%v)", r.Name, r.D, full.D)
		}
	}
}

// TestFig10SuiteSmall runs the Figure 10 pipeline on a scaled-down
// customer model. AE-TPC under an association endpoint may legitimately be
// rejected (§4.2 reports exactly that); everything else must pass.
func TestFig10SuiteSmall(t *testing.T) {
	opt := workload.CustomerOptions{
		Types: 60, Hierarchies: 8, LargestTPH: 25, Associations: 8, SharedTableFKs: 2,
	}
	full, suite := Fig10(opt)
	if full.Err != nil {
		t.Fatalf("full compile failed: %v", full.Err)
	}
	for _, r := range suite {
		if r.Err != nil && r.Name != "AE-TPC" {
			t.Errorf("%s rejected: %v", r.Name, r.Err)
		}
		if r.D >= full.D {
			t.Errorf("%s (%v) not faster than full compilation (%v)", r.Name, r.D, full.D)
		}
	}
}

// TestFig4GridTiny checks the Figure 4 shape on a tiny grid: TPH
// compilation time grows with M while TPT stays near-constant.
func TestFig4GridTiny(t *testing.T) {
	rows := Fig4(Fig4Options{MaxN: 2, MaxM: 3, PointBudget: 5e9})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.TPHErr != nil || r.TPTErr != nil {
			t.Fatalf("N=%d M=%d failed: %v %v", r.N, r.M, r.TPHErr, r.TPTErr)
		}
	}
	last := rows[len(rows)-1]
	first := rows[0]
	if last.TPH <= first.TPH {
		t.Errorf("TPH curve not increasing: %v .. %v", first.TPH, last.TPH)
	}
	if last.TPT > 20*first.TPT+2e8 {
		t.Errorf("TPT curve not flat: %v .. %v", first.TPT, last.TPT)
	}
}

func TestAblations(t *testing.T) {
	cp := AblationCellPruning(2, 2)
	if len(cp) != 2 || cp[0].Err != nil || cp[1].Err != nil {
		t.Fatalf("cell pruning ablation failed: %+v", cp)
	}
	sim := AblationSimplifier(30)
	if len(sim) != 2 || sim[0].Err != nil {
		t.Fatalf("simplifier ablation failed: %+v", sim)
	}
	nb := AblationNeighbourhood(30)
	if len(nb) != 2 || nb[0].Err != nil || nb[1].Err != nil {
		t.Fatalf("neighbourhood ablation failed: %+v", nb)
	}
	if nb[1].D < nb[0].D {
		t.Logf("note: wide validation not slower on this tiny model (%v vs %v)", nb[1].D, nb[0].D)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Name: "AE-TPT", D: 1.5e9, Note: "containments=3"}
	if s := r.String(); s == "" {
		t.Fatal("empty result string")
	}
}

// TestStreamSmall drives the streaming OLTP harness end to end at a toy
// size: both write paths, the full streaming scan with concurrent SMOs,
// the materializing baseline, and the acceptance verdict.
func TestStreamSmall(t *testing.T) {
	res, err := Stream(StreamOptions{Chain: 20, Rows: 3000, Batch: 64, Evolves: 2})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Rows == 0 || res.StreamScanRows == 0 {
		t.Fatalf("no rows flowed: %+v", res)
	}
	if res.EvolvesCommitted != 2 || res.EvolvesFailed != 0 {
		t.Fatalf("concurrent evolves: %d committed %d failed, want 2/0", res.EvolvesCommitted, res.EvolvesFailed)
	}
	if res.MatHeldBytes == 0 {
		t.Fatal("materializing baseline held no bytes; the comparison is vacuous")
	}
	if !res.Pass {
		t.Fatalf("acceptance bound violated at toy size: stream peak %d vs materialize %d",
			res.StreamPeakBytes, res.MatHeldBytes)
	}
	if res.QueryViews != 20 {
		t.Fatalf("chain-20 compiled %d query views", res.QueryViews)
	}
}
