package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/workload"
)

// FallbackOverhead measures the cost of the paper's fallback ladder (§1.2)
// on the chain model: the same AE-TPT SMO compiled (a) incrementally
// through pipeline.Session.Evolve, and (b) under a validation budget so
// tight that the first containment check exhausts it, forcing Evolve down
// the full-compile fallback. The gap between the two rows is the price of
// degradation: a fallback costs roughly one full compilation, which is why
// the incremental path matters. Returned rows: "full" (baseline full
// compilation), "incremental", "fallback".
func FallbackOverhead(chainSize int) ([]Result, error) {
	m, err := workload.ChainE(chainSize)
	if err != nil {
		return nil, err
	}
	fullRes, views := FullCompile(m)
	if views == nil {
		return nil, fmt.Errorf("experiments: chain-%d failed full compilation: %w", chainSize, fullRes.Err)
	}

	parent := fmt.Sprintf("Entity%d", chainSize/2)
	newAttrs := []edm.Attribute{{Name: "NewExtra", Type: cond.KindString, Nullable: true}}

	measure := func(name string, opts pipeline.Options) Result {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		prep := m.Clone()
		smo, err := modef.PlanAddEntityWithStyle(prep, "New"+name, parent, newAttrs, modef.TPT)
		var st pipeline.Stats
		if err == nil {
			sess := pipeline.NewSession(prep, views, opts)
			_, _, err = sess.Evolve(context.Background(), smo)
			st = sess.Stats()
		}
		d := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return Result{
			Name:            name,
			D:               d,
			Err:             err,
			Note:            fmt.Sprintf("fallbacks=%d", st.Fallbacks),
			Allocs:          ms1.Mallocs - ms0.Mallocs,
			Fallbacks:       st.Fallbacks,
			Cancelled:       st.Cancelled,
			PanicsRecovered: st.PanicsRecovered,
		}
	}

	inc := measure("incremental", pipeline.Options{})
	// A wall-time budget of one nanosecond is exhausted by the time the
	// first neighbourhood containment check runs, so the incremental rung
	// always fails with a *fault.BudgetExceededError and the fallback wins.
	fb := measure("fallback", pipeline.Options{
		Incremental: core.Options{Budget: fault.Budget{MaxWallTime: time.Nanosecond}},
	})
	return []Result{fullRes, inc, fb}, nil
}
