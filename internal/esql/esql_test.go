package esql

import (
	"testing"
	"testing/quick"

	"github.com/ormkit/incmap/internal/cond"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() of the parsed expression
	}{
		{"TRUE", "TRUE"},
		{"FALSE", "FALSE"},
		{"IS OF Person", "e IS OF Person"},
		{"IS OF (ONLY Person)", "e IS OF (ONLY Person)"},
		{"p IS OF Person", "p IS OF Person"},
		{"e IS OF Employee", "e IS OF Employee"},
		{"Dept IS NULL", "Dept IS NULL"},
		{"Dept IS NOT NULL", "Dept IS NOT NULL"},
		{"age >= 18", "age >= 18"},
		{"age < 18", "age < 18"},
		{"gender = 'M'", "gender = 'M'"},
		{"name <> 'x''y'", "name <> 'x'y'"},
		{"score = 1.5", "score = 1.5"},
		{"active = true", "active = true"},
		{"T1.Id = 7", "T1.Id = 7"},
		{"NOT (IS OF Customer)", "NOT (e IS OF Customer)"},
		{"IS OF (ONLY Person) OR IS OF Employee",
			"e IS OF (ONLY Person) OR e IS OF Employee"},
		{"age >= 18 AND gender = 'M' OR age < 18",
			"(age >= 18 AND gender = 'M') OR age < 18"},
		{"(age >= 18 OR age < 10) AND name IS NOT NULL",
			"(age >= 18 OR age < 10) AND name IS NOT NULL"},
		{"a != 3", "a <> 3"},
	}
	for _, tc := range cases {
		e, err := ParseCond(tc.in)
		if err != nil {
			t.Errorf("ParseCond(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("ParseCond(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"age >",
		"age 18",
		"IS OF",
		"IS NULL",
		"(age > 1",
		"age > 1)",
		"'unterminated",
		"a = 'x' extra",
		"a.b.c = 1",
		"x IS BOGUS",
	} {
		if _, err := ParseCond(in); err == nil {
			t.Errorf("ParseCond(%q) accepted", in)
		}
	}
}

// TestPrintParseRoundtrip checks that printing a parsed expression and
// re-parsing it yields the same canonical form.
func TestPrintParseRoundtrip(t *testing.T) {
	inputs := []string{
		"IS OF (ONLY Person) OR IS OF Employee",
		"age >= 18 AND (gender = 'M' OR gender = 'F')",
		"NOT (Dept IS NULL) AND Id > 0",
		"Eid IS NOT NULL",
		"TRUE",
	}
	for _, in := range inputs {
		e1 := MustParseCond(in)
		e2, err := ParseCond(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q failed: %v", in, e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("roundtrip drift: %q → %q", e1.String(), e2.String())
		}
	}
}

// TestRoundtripRandomComparisons builds random comparison conditions and
// checks print/parse stability.
func TestRoundtripRandomComparisons(t *testing.T) {
	ops := []cond.Op{cond.OpEq, cond.OpNe, cond.OpLt, cond.OpLe, cond.OpGt, cond.OpGe}
	f := func(a uint8, o uint8, v int16, neg bool) bool {
		attr := string(rune('a' + a%26))
		var e cond.Expr = cond.Cmp{Attr: attr, Op: ops[int(o)%len(ops)], Val: cond.Int(int64(v))}
		if neg {
			e = cond.NewNot(e)
		}
		parsed, err := ParseCond(e.String())
		if err != nil {
			return false
		}
		return parsed.String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSemanticEquivalenceAfterRoundtrip(t *testing.T) {
	th := &cond.MapTheory{
		Types: map[string][]string{"": {"Person", "Employee"}},
		Sub:   map[string]map[string]bool{"Employee": {"Person": true}},
		Domains: map[string]cond.Domain{
			"age": {Kind: cond.KindInt},
		},
		NotNull: map[string]bool{"age": true},
	}
	orig := cond.NewOr(
		cond.NewAnd(cond.TypeIs{Type: "Person"}, cond.Cmp{Attr: "age", Op: cond.OpGe, Val: cond.Int(18)}),
		cond.TypeIs{Type: "Employee", Only: true},
	)
	parsed := MustParseCond(orig.String())
	if !cond.Equivalent(th, orig, parsed) {
		t.Fatalf("parsed condition not equivalent: %s vs %s", orig, parsed)
	}
}
