// Package esql implements a small Entity-SQL-like surface syntax for the
// condition language of mapping fragments: the σ-conditions ψ and χ of §2.1
// of the paper, written as in its figures:
//
//	IS OF Person
//	IS OF (ONLY Person) OR IS OF Employee
//	Eid IS NOT NULL
//	age >= 18 AND gender = 'M'
//
// The package provides a lexer, a recursive-descent parser producing
// cond.Expr values, and a printer (cond.Expr already prints this syntax via
// its String methods). The CLI and the JSON model format use it so
// mappings stay human-readable.
package esql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = <> < <= > >=
	tokLParen
	tokRParen
	tokDot
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

// lex tokenizes the input. Keywords stay tokIdent; the parser matches them
// case-insensitively.
func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '=':
			l.emit(tokOp, "=")
		case c == '<':
			if l.peek(1) == '=' {
				l.emit2(tokOp, "<=")
			} else if l.peek(1) == '>' {
				l.emit2(tokOp, "<>")
			} else {
				l.emit(tokOp, "<")
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit2(tokOp, ">=")
			} else {
				l.emit(tokOp, ">")
			}
		case c == '!' && l.peek(1) == '=':
			l.emit2(tokOp, "<>")
		case unicode.IsDigit(rune(c)) || (c == '-' && unicode.IsDigit(rune(l.peek(1)))):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("esql: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.in) {
		return l.in[l.pos+n]
	}
	return 0
}

func (l *lexer) emit(k tokenKind, s string) {
	l.toks = append(l.toks, token{kind: k, text: s, pos: l.pos})
	l.pos++
}

func (l *lexer) emit2(k tokenKind, s string) {
	l.toks = append(l.toks, token{kind: k, text: s, pos: l.pos})
	l.pos += 2
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == '\'' {
			if l.peek(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("esql: unterminated string at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.in[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.in) && (unicode.IsDigit(rune(l.in[l.pos])) || l.in[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.in[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.in[start:l.pos], pos: start})
}
