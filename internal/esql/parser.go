package esql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
)

// ParseCond parses a condition in the Entity-SQL-like syntax of the
// paper's figures into a cond.Expr. The syntax, in precedence order:
//
//	expr    := or
//	or      := and (OR and)*
//	and     := unary (AND unary)*
//	unary   := NOT unary | primary
//	primary := TRUE | FALSE | '(' expr ')'
//	         | [subject] IS OF (ONLY type | '(' ONLY type ')' | type)
//	         | attr IS [NOT] NULL
//	         | attr op literal            (op ∈ =, <>, !=, <, <=, >, >=)
//
// Attributes may be qualified (alias.attr). The printer's default subject
// "e" parses back to the empty (single-scan) subject.
func ParseCond(in string) (e cond.Expr, err error) {
	// A parser bug must surface as an error, not kill a server process
	// compiling user-supplied conditions.
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, fmt.Errorf("esql: internal parser fault on %q: %v", in, r)
		}
	}()
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err = p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return e, nil
}

// MustParseCond parses a condition and panics on error; intended for
// tests and static model definitions.
func MustParseCond(in string) cond.Expr {
	e, err := ParseCond(in)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("esql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseOr() (cond.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []cond.Expr{left}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return cond.NewOr(parts...), nil
}

func (p *parser) parseAnd() (cond.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []cond.Expr{left}
	for p.keyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return cond.NewAnd(parts...), nil
}

func (p *parser) parseUnary() (cond.Expr, error) {
	if p.keyword("NOT") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return cond.NewNot(x), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (cond.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("expected )")
		}
		p.next()
		return e, nil

	case p.keyword("TRUE"):
		return cond.True{}, nil
	case p.keyword("FALSE"):
		return cond.False{}, nil

	case t.kind == tokIdent && strings.EqualFold(t.text, "IS"):
		// IS OF without a subject.
		return p.parseIsTail("", "")

	case t.kind == tokIdent:
		p.next()
		name := t.text
		qual := ""
		if p.cur().kind == tokDot {
			p.next()
			at := p.cur()
			if at.kind != tokIdent {
				return nil, p.errf("expected identifier after '.'")
			}
			p.next()
			qual, name = name, at.text
		}
		if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "IS") {
			if qual != "" {
				return nil, p.errf("qualified name before IS must be a plain subject or attribute")
			}
			return p.parseIsTail(name, name)
		}
		attr := name
		if qual != "" {
			attr = qual + "." + name
		}
		return p.parseComparison(attr)

	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
}

// parseIsTail handles the constructs after a subject (possibly empty):
// IS OF ..., IS NULL, IS NOT NULL. subjectOrAttr carries the identifier in
// front, which names a subject for IS OF and an attribute for IS NULL.
func (p *parser) parseIsTail(subject, attr string) (cond.Expr, error) {
	if !p.keyword("IS") {
		return nil, p.errf("expected IS")
	}
	switch {
	case p.keyword("OF"):
		only := false
		paren := false
		if p.cur().kind == tokLParen {
			p.next()
			paren = true
		}
		if p.keyword("ONLY") {
			only = true
		}
		ty := p.cur()
		if ty.kind != tokIdent {
			return nil, p.errf("expected type name after IS OF")
		}
		p.next()
		if paren {
			if p.cur().kind != tokRParen {
				return nil, p.errf("expected ) after IS OF type")
			}
			p.next()
		}
		// The printer's default subject "e" denotes the single-scan
		// subject.
		if subject == "e" {
			subject = ""
		}
		return cond.TypeIs{Var: subject, Type: ty.text, Only: only}, nil

	case p.keyword("NOT"):
		if !p.keyword("NULL") {
			return nil, p.errf("expected NULL after IS NOT")
		}
		if attr == "" {
			return nil, p.errf("IS NOT NULL needs an attribute")
		}
		return cond.NotNull(attr), nil

	case p.keyword("NULL"):
		if attr == "" {
			return nil, p.errf("IS NULL needs an attribute")
		}
		return cond.Null{Attr: attr}, nil
	}
	return nil, p.errf("expected OF, NULL or NOT NULL after IS")
}

func (p *parser) parseComparison(attr string) (cond.Expr, error) {
	t := p.cur()
	if t.kind != tokOp {
		return nil, p.errf("expected comparison operator after %q", attr)
	}
	p.next()
	var op cond.Op
	switch t.text {
	case "=":
		op = cond.OpEq
	case "<>":
		op = cond.OpNe
	case "<":
		op = cond.OpLt
	case "<=":
		op = cond.OpLe
	case ">":
		op = cond.OpGt
	case ">=":
		op = cond.OpGe
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return cond.Cmp{Attr: attr, Op: op, Val: val}, nil
}

func (p *parser) parseLiteral() (cond.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.next()
		return cond.String(t.text), nil
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return cond.Value{}, p.errf("bad float %q", t.text)
			}
			return cond.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return cond.Value{}, p.errf("bad integer %q", t.text)
		}
		return cond.Int(i), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		p.next()
		return cond.Bool(true), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		p.next()
		return cond.Bool(false), nil
	}
	return cond.Value{}, p.errf("expected literal, got %q", t.text)
}
