// Package edm implements the client-side schema model of the reproduction:
// a subset of Microsoft's Entity Data Model as described in §2 of Bernstein
// et al. (SIGMOD 2013). A schema holds entity types arranged in
// single-inheritance hierarchies, entity sets that persist instances of a
// root type and all its descendants, and association types relating two
// entity types with 1:1, 1:n or m:n cardinality.
package edm

import (
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/cond"
)

// Mult is an association-end multiplicity.
type Mult int

// Association-end multiplicities.
const (
	One     Mult = iota // exactly 1
	ZeroOne             // 0..1
	Many                // *
)

// String renders the multiplicity in the paper's notation.
func (m Mult) String() string {
	switch m {
	case One:
		return "1"
	case ZeroOne:
		return "0..1"
	case Many:
		return "*"
	default:
		return "?"
	}
}

// Attribute is a declared attribute of an entity type.
type Attribute struct {
	Name     string
	Type     cond.Kind
	Nullable bool
	// Enum optionally restricts the attribute to a finite value set.
	Enum []cond.Value
}

// Domain returns the attribute's condition-reasoning domain.
func (a Attribute) Domain() cond.Domain { return cond.Domain{Kind: a.Type, Enum: a.Enum} }

// EntityType is a node of an inheritance hierarchy. Attrs lists only the
// attributes declared on this type; inherited attributes are reached through
// Base. Key is set on root types only and must name declared attributes.
type EntityType struct {
	Name     string
	Base     string // "" for hierarchy roots
	Abstract bool
	Attrs    []Attribute
	Key      []string
}

// EntitySet is a persistent collection of entities of the set's root type
// and any type derived from it.
type EntitySet struct {
	Name string
	Type string
}

// End is one endpoint of an association.
type End struct {
	Type string
	Mult Mult
}

// Association relates entities of two types. Instances (associations) are
// pairs of entity keys. Each association type has exactly one association
// set, identified by the association's name, matching the paper's
// assumption that every association set appears in a single mapping
// fragment.
type Association struct {
	Name string
	End1 End
	End2 End
}

// Schema is a mutable client schema. The zero value is an empty schema
// ready for use.
type Schema struct {
	types  map[string]*EntityType
	order  []string
	sets   []*EntitySet
	assocs []*Association
}

// NewSchema returns an empty client schema.
func NewSchema() *Schema { return &Schema{types: map[string]*EntityType{}} }

// AddType adds an entity type. The base type, when named, must already be
// present.
func (s *Schema) AddType(t EntityType) error {
	if t.Name == "" {
		return fmt.Errorf("edm: entity type with empty name")
	}
	if s.types == nil {
		s.types = map[string]*EntityType{}
	}
	if _, dup := s.types[t.Name]; dup {
		return fmt.Errorf("edm: duplicate entity type %q", t.Name)
	}
	if t.Base != "" {
		base, ok := s.types[t.Base]
		if !ok {
			return fmt.Errorf("edm: type %q derives from unknown type %q", t.Name, t.Base)
		}
		if len(t.Key) > 0 {
			return fmt.Errorf("edm: derived type %q must not declare a key", t.Name)
		}
		for _, a := range t.Attrs {
			if s.hasAttrUpward(base.Name, a.Name) {
				return fmt.Errorf("edm: type %q shadows inherited attribute %q", t.Name, a.Name)
			}
		}
	} else {
		if len(t.Key) == 0 {
			return fmt.Errorf("edm: root type %q must declare a key", t.Name)
		}
		declared := map[string]bool{}
		for _, a := range t.Attrs {
			declared[a.Name] = true
		}
		for _, k := range t.Key {
			if !declared[k] {
				return fmt.Errorf("edm: key attribute %q of type %q is not declared", k, t.Name)
			}
		}
	}
	seen := map[string]bool{}
	for _, a := range t.Attrs {
		if a.Name == "" {
			return fmt.Errorf("edm: type %q has an attribute with empty name", t.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("edm: type %q declares attribute %q twice", t.Name, a.Name)
		}
		seen[a.Name] = true
	}
	cp := t
	cp.Attrs = append([]Attribute(nil), t.Attrs...)
	cp.Key = append([]string(nil), t.Key...)
	s.types[t.Name] = &cp
	s.order = append(s.order, t.Name)
	return nil
}

// RemoveType deletes a leaf entity type. Types with descendants, types used
// as entity-set roots, and types referenced by associations cannot be
// removed.
func (s *Schema) RemoveType(name string) error {
	if _, ok := s.types[name]; !ok {
		return fmt.Errorf("edm: unknown entity type %q", name)
	}
	for _, t := range s.types {
		if t.Base == name {
			return fmt.Errorf("edm: type %q still has derived type %q", name, t.Name)
		}
	}
	for _, set := range s.sets {
		if set.Type == name {
			return fmt.Errorf("edm: type %q is the root of entity set %q", name, set.Name)
		}
	}
	for _, a := range s.assocs {
		if a.End1.Type == name || a.End2.Type == name {
			return fmt.Errorf("edm: type %q participates in association %q", name, a.Name)
		}
	}
	delete(s.types, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// RerootType turns a standalone hierarchy root into a derived type of
// another hierarchy (the schema surgery behind the §3.4 refactoring SMO).
// The type loses its own key and entity set; its attributes must not
// collide with the new base hierarchy's.
func (s *Schema) RerootType(typeName, newBase string) error {
	t, ok := s.types[typeName]
	if !ok {
		return fmt.Errorf("edm: unknown entity type %q", typeName)
	}
	if t.Base != "" {
		return fmt.Errorf("edm: type %q is not a hierarchy root", typeName)
	}
	base, ok := s.types[newBase]
	if !ok {
		return fmt.Errorf("edm: unknown base type %q", newBase)
	}
	if s.IsSubtype(base.Name, typeName) {
		return fmt.Errorf("edm: rerooting %q under %q would create a cycle", typeName, newBase)
	}
	for _, d := range append([]string{typeName}, s.Descendants(typeName)...) {
		for _, a := range s.types[d].Attrs {
			if s.hasAttrUpward(newBase, a.Name) {
				return fmt.Errorf("edm: attribute %q of %q collides with the %q hierarchy", a.Name, d, newBase)
			}
		}
	}
	for i, set := range s.sets {
		if set.Type == typeName {
			s.sets = append(s.sets[:i], s.sets[i+1:]...)
			break
		}
	}
	t = s.mutableType(typeName)
	t.Base = newBase
	t.Key = nil
	return nil
}

// AddAttr declares an additional attribute on an existing type.
func (s *Schema) AddAttr(typeName string, a Attribute) error {
	t, ok := s.types[typeName]
	if !ok {
		return fmt.Errorf("edm: unknown entity type %q", typeName)
	}
	for _, n := range s.hierarchyOf(typeName) {
		if s.hasDeclaredAttr(n, a.Name) {
			return fmt.Errorf("edm: attribute %q already exists in the hierarchy of %q", a.Name, typeName)
		}
	}
	t = s.mutableType(typeName)
	t.Attrs = append(t.Attrs, a)
	return nil
}

// AddSet adds an entity set rooted at an existing type. A type can root at
// most one set.
func (s *Schema) AddSet(set EntitySet) error {
	if set.Name == "" {
		return fmt.Errorf("edm: entity set with empty name")
	}
	if _, ok := s.types[set.Type]; !ok {
		return fmt.Errorf("edm: entity set %q has unknown root type %q", set.Name, set.Type)
	}
	for _, e := range s.sets {
		if e.Name == set.Name {
			return fmt.Errorf("edm: duplicate entity set %q", set.Name)
		}
		if e.Type == set.Type {
			return fmt.Errorf("edm: type %q already roots entity set %q", set.Type, e.Name)
		}
	}
	cp := set
	s.sets = append(s.sets, &cp)
	return nil
}

// AddAssociation adds an association type (and implicitly its association
// set of the same name).
func (s *Schema) AddAssociation(a Association) error {
	if a.Name == "" {
		return fmt.Errorf("edm: association with empty name")
	}
	if _, ok := s.types[a.End1.Type]; !ok {
		return fmt.Errorf("edm: association %q has unknown end type %q", a.Name, a.End1.Type)
	}
	if _, ok := s.types[a.End2.Type]; !ok {
		return fmt.Errorf("edm: association %q has unknown end type %q", a.Name, a.End2.Type)
	}
	for _, e := range s.assocs {
		if e.Name == a.Name {
			return fmt.Errorf("edm: duplicate association %q", a.Name)
		}
	}
	cp := a
	s.assocs = append(s.assocs, &cp)
	return nil
}

// RemoveAssociation deletes an association type.
func (s *Schema) RemoveAssociation(name string) error {
	for i, a := range s.assocs {
		if a.Name == name {
			s.assocs = append(s.assocs[:i], s.assocs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("edm: unknown association %q", name)
}

// Type returns the named entity type, or nil.
func (s *Schema) Type(name string) *EntityType { return s.types[name] }

// Types returns all entity types in declaration order.
func (s *Schema) Types() []*EntityType {
	out := make([]*EntityType, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.types[n])
	}
	return out
}

// Sets returns all entity sets in declaration order.
func (s *Schema) Sets() []*EntitySet { return s.sets }

// Set returns the named entity set, or nil.
func (s *Schema) Set(name string) *EntitySet {
	for _, e := range s.sets {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Associations returns all association types in declaration order.
func (s *Schema) Associations() []*Association { return s.assocs }

// Association returns the named association, or nil.
func (s *Schema) Association(name string) *Association {
	for _, a := range s.assocs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// SetFor returns the entity set that persists instances of the given type:
// the set rooted at the type's hierarchy root.
func (s *Schema) SetFor(typeName string) *EntitySet {
	root := s.RootOf(typeName)
	if root == "" {
		return nil
	}
	for _, e := range s.sets {
		if e.Type == root {
			return e
		}
	}
	return nil
}

// RootOf returns the hierarchy root of the given type, or "" if unknown.
func (s *Schema) RootOf(typeName string) string {
	t, ok := s.types[typeName]
	if !ok {
		return ""
	}
	for t.Base != "" {
		t = s.types[t.Base]
	}
	return t.Name
}

// Parent returns the base type name of the given type ("" for roots).
func (s *Schema) Parent(typeName string) string {
	if t, ok := s.types[typeName]; ok {
		return t.Base
	}
	return ""
}

// IsSubtype reports whether sub equals typ or derives from it.
func (s *Schema) IsSubtype(sub, typ string) bool {
	t, ok := s.types[sub]
	for ok {
		if t.Name == typ {
			return true
		}
		if t.Base == "" {
			return false
		}
		t, ok = s.types[t.Base]
	}
	return false
}

// Ancestors returns the proper ancestors of the type, nearest first.
func (s *Schema) Ancestors(typeName string) []string {
	var out []string
	t, ok := s.types[typeName]
	for ok && t.Base != "" {
		out = append(out, t.Base)
		t, ok = s.types[t.Base]
	}
	return out
}

// Descendants returns the proper descendants of the type in declaration
// order.
func (s *Schema) Descendants(typeName string) []string {
	var out []string
	for _, n := range s.order {
		if n != typeName && s.IsSubtype(n, typeName) {
			out = append(out, n)
		}
	}
	return out
}

// Children returns the direct subtypes of the type in declaration order.
func (s *Schema) Children(typeName string) []string {
	var out []string
	for _, n := range s.order {
		if s.types[n].Base == typeName {
			out = append(out, n)
		}
	}
	return out
}

// ConcreteIn returns the non-abstract types in the sub-hierarchy rooted at
// typeName (inclusive), in declaration order.
func (s *Schema) ConcreteIn(typeName string) []string {
	var out []string
	for _, n := range s.order {
		if !s.types[n].Abstract && s.IsSubtype(n, typeName) {
			out = append(out, n)
		}
	}
	return out
}

// hierarchyOf returns every type in the same hierarchy as typeName.
func (s *Schema) hierarchyOf(typeName string) []string {
	root := s.RootOf(typeName)
	var out []string
	for _, n := range s.order {
		if s.IsSubtype(n, root) {
			out = append(out, n)
		}
	}
	return out
}

func (s *Schema) hasDeclaredAttr(typeName, attr string) bool {
	t := s.types[typeName]
	for _, a := range t.Attrs {
		if a.Name == attr {
			return true
		}
	}
	return false
}

func (s *Schema) hasAttrUpward(typeName, attr string) bool {
	t, ok := s.types[typeName]
	for ok {
		for _, a := range t.Attrs {
			if a.Name == attr {
				return true
			}
		}
		if t.Base == "" {
			return false
		}
		t, ok = s.types[t.Base]
	}
	return false
}

// AllAttrs returns the attributes of the type including inherited ones,
// root-most first.
func (s *Schema) AllAttrs(typeName string) []Attribute {
	chain := []*EntityType{}
	t, ok := s.types[typeName]
	for ok {
		chain = append(chain, t)
		if t.Base == "" {
			break
		}
		t, ok = s.types[t.Base]
	}
	var out []Attribute
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].Attrs...)
	}
	return out
}

// AttrNames returns the names of AllAttrs.
func (s *Schema) AttrNames(typeName string) []string {
	attrs := s.AllAttrs(typeName)
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = a.Name
	}
	return out
}

// Attr looks up an attribute (inherited or declared) of the type.
func (s *Schema) Attr(typeName, attr string) (Attribute, bool) {
	for _, a := range s.AllAttrs(typeName) {
		if a.Name == attr {
			return a, true
		}
	}
	return Attribute{}, false
}

// HasAttr reports whether the type carries the attribute.
func (s *Schema) HasAttr(typeName, attr string) bool {
	_, ok := s.Attr(typeName, attr)
	return ok
}

// KeyOf returns the primary-key attributes of the type (declared on its
// hierarchy root).
func (s *Schema) KeyOf(typeName string) []string {
	root := s.RootOf(typeName)
	if root == "" {
		return nil
	}
	return append([]string(nil), s.types[root].Key...)
}

// Validate checks global schema well-formedness beyond the incremental
// checks done by the mutators.
func (s *Schema) Validate() error {
	for _, n := range s.order {
		t := s.types[n]
		// Cycle detection.
		seen := map[string]bool{n: true}
		cur := t
		for cur.Base != "" {
			if seen[cur.Base] {
				return fmt.Errorf("edm: inheritance cycle through %q", cur.Base)
			}
			seen[cur.Base] = true
			next, ok := s.types[cur.Base]
			if !ok {
				return fmt.Errorf("edm: type %q derives from unknown type %q", cur.Name, cur.Base)
			}
			cur = next
		}
	}
	for _, n := range s.order {
		if s.types[n].Base == "" && len(s.types[n].Key) == 0 {
			return fmt.Errorf("edm: root type %q has no key", n)
		}
	}
	for _, set := range s.sets {
		if _, ok := s.types[set.Type]; !ok {
			return fmt.Errorf("edm: entity set %q has unknown root type %q", set.Name, set.Type)
		}
	}
	for _, a := range s.assocs {
		if s.SetFor(a.End1.Type) == nil {
			return fmt.Errorf("edm: association %q end type %q is not persisted by any entity set", a.Name, a.End1.Type)
		}
		if s.SetFor(a.End2.Type) == nil {
			return fmt.Errorf("edm: association %q end type %q is not persisted by any entity set", a.Name, a.End2.Type)
		}
	}
	return nil
}

// Clone returns a copy-on-write snapshot of the schema: the containers
// (type map, declaration order, set and association lists) are copied so
// each generation can add or remove entries privately, while the entries
// themselves — *EntityType, *EntitySet, *Association — are shared. Every
// mutator that changes an entry in place first replaces it with a private
// copy (see mutableType), so a clone and its source never observe each
// other's changes.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		types:  make(map[string]*EntityType, len(s.types)),
		order:  append(make([]string, 0, len(s.order)), s.order...),
		sets:   append(make([]*EntitySet, 0, len(s.sets)), s.sets...),
		assocs: append(make([]*Association, 0, len(s.assocs)), s.assocs...),
	}
	for n, t := range s.types {
		c.types[n] = t
	}
	return c
}

// DeepClone returns a fully independent copy of the schema, sharing no
// structure with the receiver. It exists for callers that need the
// pre-CoW deep-copy semantics (aliasing tests, benchmark baselines).
func (s *Schema) DeepClone() *Schema {
	c := NewSchema()
	for _, n := range s.order {
		t := *s.types[n]
		t.Attrs = append([]Attribute(nil), t.Attrs...)
		t.Key = append([]string(nil), t.Key...)
		c.types[n] = &t
		c.order = append(c.order, n)
	}
	for _, e := range s.sets {
		cp := *e
		c.sets = append(c.sets, &cp)
	}
	for _, a := range s.assocs {
		cp := *a
		c.assocs = append(c.assocs, &cp)
	}
	return c
}

// mutableType replaces the named type's entry with a private copy and
// returns it. After Clone, entries are shared across generations; callers
// must go through this before any in-place entry mutation.
func (s *Schema) mutableType(name string) *EntityType {
	t := *s.types[name]
	t.Attrs = append([]Attribute(nil), t.Attrs...)
	t.Key = append([]string(nil), t.Key...)
	s.types[name] = &t
	return &t
}

// SortedTypeNames returns all type names sorted alphabetically (useful for
// deterministic output).
func (s *Schema) SortedTypeNames() []string {
	out := append([]string(nil), s.order...)
	sort.Strings(out)
	return out
}
