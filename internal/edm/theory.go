package edm

import "github.com/ormkit/incmap/internal/cond"

// SetTheory adapts one entity set of a schema to the condition-reasoning
// Theory interface for single-subject conditions (subject ""): the subject
// ranges over the concrete types of the set's hierarchy, and attributes are
// the (unqualified) attributes of those types.
type SetTheory struct {
	Schema *Schema
	Set    *EntitySet
}

// TheoryFor returns a theory for conditions over the named entity set.
func (s *Schema) TheoryFor(setName string) *SetTheory {
	return &SetTheory{Schema: s, Set: s.Set(setName)}
}

// ConcreteTypes implements cond.Theory.
func (t *SetTheory) ConcreteTypes(subject string) []string {
	if subject != "" || t.Set == nil {
		return nil
	}
	return t.Schema.ConcreteIn(t.Set.Type)
}

// IsSubtype implements cond.Theory.
func (t *SetTheory) IsSubtype(sub, typ string) bool { return t.Schema.IsSubtype(sub, typ) }

// Domain implements cond.Theory.
func (t *SetTheory) Domain(attr string) (cond.Domain, bool) {
	if t.Set == nil {
		return cond.Domain{}, false
	}
	for _, n := range t.Schema.hierarchyOf(t.Set.Type) {
		if a, ok := t.Schema.Attr(n, attr); ok {
			return a.Domain(), true
		}
	}
	return cond.Domain{}, false
}

// Nullable implements cond.Theory.
func (t *SetTheory) Nullable(attr string) bool {
	if t.Set == nil {
		return true
	}
	for _, n := range t.Schema.hierarchyOf(t.Set.Type) {
		if a, ok := t.Schema.Attr(n, attr); ok {
			return a.Nullable
		}
	}
	return true
}

// HasAttr implements cond.Theory.
func (t *SetTheory) HasAttr(concreteType, attr string) bool {
	return t.Schema.HasAttr(concreteType, attr)
}
