package edm

import (
	"testing"

	"github.com/ormkit/incmap/internal/cond"
)

// paperSchema builds the Fig. 1 client schema of the paper: Person with
// derived Employee and Customer, entity set Persons, association Supports.
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddType(EntityType{
		Name: "Person",
		Attrs: []Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(s.AddType(EntityType{
		Name: "Employee", Base: "Person",
		Attrs: []Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
	}))
	must(s.AddType(EntityType{
		Name: "Customer", Base: "Person",
		Attrs: []Attribute{
			{Name: "CredScore", Type: cond.KindInt, Nullable: true},
			{Name: "BillAddr", Type: cond.KindString, Nullable: true},
		},
	}))
	must(s.AddSet(EntitySet{Name: "Persons", Type: "Person"}))
	must(s.AddAssociation(Association{
		Name: "Supports",
		End1: End{Type: "Customer", Mult: Many},
		End2: End{Type: "Employee", Mult: ZeroOne},
	}))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHierarchyNavigation(t *testing.T) {
	s := paperSchema(t)
	if got := s.RootOf("Employee"); got != "Person" {
		t.Errorf("RootOf(Employee) = %q", got)
	}
	if got := s.Parent("Customer"); got != "Person" {
		t.Errorf("Parent(Customer) = %q", got)
	}
	if !s.IsSubtype("Employee", "Person") || s.IsSubtype("Person", "Employee") {
		t.Errorf("IsSubtype wrong")
	}
	if got := s.Ancestors("Employee"); len(got) != 1 || got[0] != "Person" {
		t.Errorf("Ancestors(Employee) = %v", got)
	}
	if got := s.Descendants("Person"); len(got) != 2 {
		t.Errorf("Descendants(Person) = %v", got)
	}
	if got := s.Children("Person"); len(got) != 2 || got[0] != "Employee" {
		t.Errorf("Children(Person) = %v", got)
	}
	if got := s.ConcreteIn("Person"); len(got) != 3 {
		t.Errorf("ConcreteIn(Person) = %v", got)
	}
}

func TestAttributes(t *testing.T) {
	s := paperSchema(t)
	names := s.AttrNames("Employee")
	want := []string{"Id", "Name", "Department"}
	if len(names) != len(want) {
		t.Fatalf("AttrNames(Employee) = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("AttrNames(Employee) = %v, want %v", names, want)
		}
	}
	if key := s.KeyOf("Customer"); len(key) != 1 || key[0] != "Id" {
		t.Errorf("KeyOf(Customer) = %v", key)
	}
	if !s.HasAttr("Customer", "Name") || s.HasAttr("Customer", "Department") {
		t.Errorf("HasAttr wrong")
	}
	a, ok := s.Attr("Employee", "Id")
	if !ok || a.Type != cond.KindInt {
		t.Errorf("Attr(Employee, Id) = %+v, %v", a, ok)
	}
}

func TestSetAndAssociationLookup(t *testing.T) {
	s := paperSchema(t)
	if set := s.SetFor("Customer"); set == nil || set.Name != "Persons" {
		t.Errorf("SetFor(Customer) = %v", set)
	}
	if a := s.Association("Supports"); a == nil || a.End2.Mult != ZeroOne {
		t.Errorf("Association(Supports) = %+v", a)
	}
	if s.Set("Nope") != nil || s.Association("Nope") != nil {
		t.Errorf("lookup of unknown names should return nil")
	}
}

func TestMutatorErrors(t *testing.T) {
	s := paperSchema(t)
	if err := s.AddType(EntityType{Name: "Person", Key: []string{"Id"}, Attrs: []Attribute{{Name: "Id", Type: cond.KindInt}}}); err == nil {
		t.Errorf("duplicate type accepted")
	}
	if err := s.AddType(EntityType{Name: "X", Base: "Nope"}); err == nil {
		t.Errorf("unknown base accepted")
	}
	if err := s.AddType(EntityType{Name: "X", Base: "Person", Attrs: []Attribute{{Name: "Name", Type: cond.KindString}}}); err == nil {
		t.Errorf("attribute shadowing accepted")
	}
	if err := s.AddType(EntityType{Name: "NoKey", Attrs: []Attribute{{Name: "A", Type: cond.KindInt}}}); err == nil {
		t.Errorf("root without key accepted")
	}
	if err := s.AddSet(EntitySet{Name: "Persons2", Type: "Person"}); err == nil {
		t.Errorf("second set on same root accepted")
	}
	if err := s.AddAssociation(Association{Name: "Supports", End1: End{Type: "Person"}, End2: End{Type: "Person"}}); err == nil {
		t.Errorf("duplicate association accepted")
	}
	if err := s.RemoveType("Person"); err == nil {
		t.Errorf("removing a type with descendants accepted")
	}
	if err := s.RemoveType("Customer"); err == nil {
		t.Errorf("removing an association endpoint accepted")
	}
}

func TestRemoveTypeAndAssociation(t *testing.T) {
	s := paperSchema(t)
	if err := s.RemoveAssociation("Supports"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveType("Customer"); err != nil {
		t.Fatal(err)
	}
	if s.Type("Customer") != nil {
		t.Errorf("Customer still present")
	}
	if got := s.Descendants("Person"); len(got) != 1 {
		t.Errorf("Descendants after removal = %v", got)
	}
}

func TestAddAttr(t *testing.T) {
	s := paperSchema(t)
	if err := s.AddAttr("Employee", Attribute{Name: "Salary", Type: cond.KindFloat, Nullable: true}); err != nil {
		t.Fatal(err)
	}
	if !s.HasAttr("Employee", "Salary") {
		t.Errorf("Salary not added")
	}
	if err := s.AddAttr("Customer", Attribute{Name: "Name", Type: cond.KindString}); err == nil {
		t.Errorf("conflicting AddAttr accepted")
	}
	if err := s.AddAttr("Person", Attribute{Name: "Department", Type: cond.KindString}); err == nil {
		t.Errorf("AddAttr conflicting with a descendant's attribute accepted")
	}
}

func TestClone(t *testing.T) {
	s := paperSchema(t)
	c := s.Clone()
	if err := c.AddType(EntityType{Name: "Contractor", Base: "Employee"}); err != nil {
		t.Fatal(err)
	}
	if s.Type("Contractor") != nil {
		t.Errorf("clone not independent")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetTheory(t *testing.T) {
	s := paperSchema(t)
	th := s.TheoryFor("Persons")
	if got := th.ConcreteTypes(""); len(got) != 3 {
		t.Fatalf("ConcreteTypes = %v", got)
	}
	if th.ConcreteTypes("other") != nil {
		t.Errorf("non-empty subject must be untyped")
	}
	// Department only exists on Employee: IS OF Customer AND Department NOT
	// NULL is unsatisfiable.
	unsat := cond.NewAnd(
		cond.TypeIs{Type: "Customer"},
		cond.NotNull("Department"),
	)
	if cond.Satisfiable(th, unsat) {
		t.Errorf("Customer with Department should be unsatisfiable")
	}
	// IS OF Person is implied by IS OF (ONLY Person) OR IS OF Employee OR
	// IS OF Customer — the expansion used during fragment adaptation.
	lhs := cond.TypeIs{Type: "Person"}
	rhs := cond.NewOr(
		cond.TypeIs{Type: "Person", Only: true},
		cond.TypeIs{Type: "Employee"},
		cond.TypeIs{Type: "Customer"},
	)
	if !cond.Equivalent(th, lhs, rhs) {
		t.Errorf("ONLY-expansion must be equivalent to IS OF")
	}
	if d, ok := th.Domain("CredScore"); !ok || d.Kind != cond.KindInt {
		t.Errorf("Domain(CredScore) = %v, %v", d, ok)
	}
	if th.Nullable("Id") {
		t.Errorf("key attribute must not be nullable")
	}
}

func TestAbstractTypesExcluded(t *testing.T) {
	s := NewSchema()
	if err := s.AddType(EntityType{
		Name: "Shape", Abstract: true,
		Attrs: []Attribute{{Name: "Id", Type: cond.KindInt}},
		Key:   []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddType(EntityType{Name: "Circle", Base: "Shape"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSet(EntitySet{Name: "Shapes", Type: "Shape"}); err != nil {
		t.Fatal(err)
	}
	got := s.ConcreteIn("Shape")
	if len(got) != 1 || got[0] != "Circle" {
		t.Errorf("ConcreteIn(Shape) = %v", got)
	}
}

func TestRerootType(t *testing.T) {
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddType(EntityType{Name: "A", Attrs: []Attribute{{Name: "Id", Type: cond.KindInt}}, Key: []string{"Id"}}))
	must(s.AddType(EntityType{Name: "B", Attrs: []Attribute{{Name: "Bid", Type: cond.KindInt}}, Key: []string{"Bid"}}))
	must(s.AddSet(EntitySet{Name: "As", Type: "A"}))
	must(s.AddSet(EntitySet{Name: "Bs", Type: "B"}))

	if err := s.RerootType("B", "A"); err != nil {
		t.Fatal(err)
	}
	if s.Parent("B") != "A" {
		t.Errorf("B not rerooted")
	}
	if len(s.KeyOf("B")) != 1 || s.KeyOf("B")[0] != "Id" {
		t.Errorf("B must inherit A's key, got %v", s.KeyOf("B"))
	}
	if s.Set("Bs") != nil {
		t.Errorf("B's set must be removed")
	}
	if s.SetFor("B").Name != "As" {
		t.Errorf("B must be persisted by A's set")
	}
}

func TestRerootTypeErrors(t *testing.T) {
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddType(EntityType{Name: "A", Attrs: []Attribute{{Name: "Id", Type: cond.KindInt}}, Key: []string{"Id"}}))
	must(s.AddType(EntityType{Name: "A2", Base: "A"}))
	must(s.AddType(EntityType{Name: "B", Attrs: []Attribute{{Name: "Id", Type: cond.KindInt}}, Key: []string{"Id"}}))

	if err := s.RerootType("A2", "B"); err == nil {
		t.Error("rerooting a non-root accepted")
	}
	if err := s.RerootType("B", "Ghost"); err == nil {
		t.Error("unknown base accepted")
	}
	if err := s.RerootType("B", "A"); err == nil {
		t.Error("colliding key attribute names accepted")
	}
	if err := s.RerootType("A", "A2"); err == nil {
		t.Error("cycle accepted")
	}
}
