package server

import (
	"crypto/subtle"
	"net/http"
	"strings"

	"github.com/ormkit/incmap/internal/obsv"
)

// Per-tenant authorization on mutating endpoints. The daemon's trust model
// is simple and static: Options.Auth maps tenant names to bearer tokens;
// a mutating request (register, evolve, rollout, data write) for a tenant
// in the map must present that tenant's token. Two failure modes stay
// distinct — in status code and in metrics — from each other and from
// overload:
//
//	401 server.auth_401  missing or malformed credential
//	403 server.auth_403  a well-formed token for the wrong tenant
//	429 server.shed      admission overload (never an auth outcome)
//
// Read endpoints are never gated: reads must not fail, and a stale token
// should not blind a client to the generation it is still serving.

var (
	mAuth401 = obsv.Metrics().Counter(obsv.MServeAuth401)
	mAuth403 = obsv.Metrics().Counter(obsv.MServeAuth403)
)

// authorized wraps a mutating handler with the bearer-token check. With no
// Auth map configured — or no entry for the tenant — the handler is open.
func (s *Server) authorized(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		want, gated := s.opts.Auth[r.PathValue("name")]
		if !gated {
			h(w, r)
			return
		}
		header := r.Header.Get("Authorization")
		token, ok := strings.CutPrefix(header, "Bearer ")
		if !ok || token == "" {
			mAuth401.Add(1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="incmap"`)
			writeError(w, &apiError{status: http.StatusUnauthorized, msg: "missing or malformed bearer token"})
			return
		}
		if subtle.ConstantTimeCompare([]byte(token), []byte(want)) != 1 {
			mAuth403.Add(1)
			writeError(w, &apiError{status: http.StatusForbidden, msg: "token not valid for this tenant"})
			return
		}
		h(w, r)
	}
}
