package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/workload"
)

// Handler returns the daemon's HTTP handler: the v1 API, health probes
// and debug surfaces, wrapped in request accounting and a last-resort
// panic recovery so no request — however malformed — can kill the
// process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(1)
		defer func() {
			if rec := recover(); rec != nil {
				mHandlerPanics.Add(1)
				writeError(w, &apiError{
					status: http.StatusInternalServerError,
					msg:    fmt.Sprintf("internal error: %v", rec),
				})
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()

	// Liveness: the process is up. Always 200 — even draining, the
	// daemon is still finishing work and must not be killed early.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Readiness: whether new work is admitted. Flips to 503 the moment
	// Drain begins so load balancers stop routing here.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, errDraining)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	mux.HandleFunc("GET /v1/tenants", s.handleList)
	mux.HandleFunc("POST /v1/tenants/{name}", s.authorized(s.handleRegister))
	mux.HandleFunc("GET /v1/tenants/{name}", s.handleStatus)
	mux.HandleFunc("GET /v1/tenants/{name}/views", s.handleViews)
	mux.HandleFunc("POST /v1/tenants/{name}/evolve", s.authorized(s.handleEvolve))
	mux.HandleFunc("POST /v1/tenants/{name}/rollout", s.authorized(s.handleRolloutPost))
	mux.HandleFunc("GET /v1/tenants/{name}/rollout", s.handleRolloutGet)
	mux.HandleFunc("POST /v1/tenants/{name}/data", s.authorized(s.handleDataPost))
	mux.HandleFunc("GET /v1/tenants/{name}/data", s.handleDataGet)
	mux.HandleFunc("GET /v1/config", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ConfigStatus())
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obsv.Snapshot())
	})
	obsv.PublishExpvar()
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	return mux
}

// registerRequest is the POST /v1/tenants/{name} body. Exactly one of
// Model (a modelio mapping document) or Workload (a synthetic model spec,
// convenient for soak drivers) must be set.
type registerRequest struct {
	Model    json.RawMessage `json:"model,omitempty"`
	Workload *workloadSpec   `json:"workload,omitempty"`
	Budget   *budgetSpec     `json:"budget,omitempty"`
}

type workloadSpec struct {
	// Kind is "chain" (the Figure 8 chain; Prefix namespaces it per
	// tenant) or "paper" (the Fig. 1 mapping).
	Kind   string `json:"kind"`
	Prefix string `json:"prefix,omitempty"`
	N      int    `json:"n,omitempty"`
}

type budgetSpec struct {
	MaxContainments int64 `json:"maxContainments,omitempty"`
	MaxWallTimeMs   int64 `json:"maxWallTimeMs,omitempty"`
}

func (b *budgetSpec) toBudget() fault.Budget {
	if b == nil {
		return fault.Budget{}
	}
	return fault.Budget{
		MaxContainments: b.MaxContainments,
		MaxWallTime:     time.Duration(b.MaxWallTimeMs) * time.Millisecond,
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	m, err := resolveModel(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	st, rerr := s.Register(r.Context(), name, m, req.Budget.toBudget())
	if rerr != nil {
		writeError(w, rerr)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// resolveModel turns the register body into a mapping.
func resolveModel(req *registerRequest) (*frag.Mapping, error) {
	switch {
	case req.Model != nil && req.Workload != nil:
		return nil, &apiError{status: http.StatusBadRequest, msg: "provide model or workload, not both"}
	case req.Model != nil:
		mm, derr := modelio.Decode(bytes.NewReader(req.Model))
		if derr != nil {
			return nil, &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf("decoding model: %v", derr)}
		}
		return mm, nil
	case req.Workload != nil:
		return resolveWorkload(req.Workload)
	default:
		return nil, &apiError{status: http.StatusBadRequest, msg: "missing model or workload"}
	}
}

func resolveWorkload(ws *workloadSpec) (*frag.Mapping, error) {
	switch ws.Kind {
	case "chain":
		n := ws.N
		if n <= 0 {
			n = 10
		}
		if ws.Prefix != "" {
			mm, err := workload.TenantE(ws.Prefix, n)
			if err != nil {
				return nil, &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
			}
			return mm, nil
		}
		mm, err := workload.ChainE(n)
		if err != nil {
			return nil, &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
		}
		return mm, nil
	case "paper":
		mm, err := workload.PaperFullE()
		if err != nil {
			return nil, &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
		}
		return mm, nil
	default:
		return nil, &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf("unknown workload kind %q", ws.Kind)}
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for name, t := range s.tenants {
		if t != nil {
			names = append(names, name)
		}
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]*TenantStatus, 0, len(names))
	for _, name := range names {
		if t, ok := s.lookup(name); ok {
			out = append(out, t.status())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

// viewsResponse is a read: the serving generation's view names plus the
// status that says exactly how fresh that generation is. Reads always
// succeed — a failed evolve shows up here as stale=true, never as a 5xx.
type viewsResponse struct {
	*TenantStatus
	Types  []string `json:"types"`
	Assocs []string `json:"assocs"`
	Tables []string `json:"tables"`
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	st := t.read()
	resp := viewsResponse{TenantStatus: t.status()}
	if st.v != nil {
		resp.Types = sortedKeys(st.v.Query)
		resp.Assocs = sortedKeys(st.v.Assoc)
		resp.Tables = sortedKeys(st.v.Update)
	}
	writeJSON(w, http.StatusOK, &resp)
}

// evolveRequest is the POST /v1/tenants/{name}/evolve body: a wire SMO
// (see smojson.go) plus an optional per-request timeout tighter than the
// server's.
type evolveRequest struct {
	WireSMO
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	var req evolveRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	op, err := req.WireSMO.ToSMO()
	if err != nil {
		writeError(w, err)
		return
	}
	timeout := s.cfg().evolveTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	st, aerr := t.Evolve(ctx, op)
	if aerr != nil {
		// Degraded, not dead: the error response carries the tenant's
		// serving status so the client sees what generation it still has.
		writeErrorWithStatus(w, aerr, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Sink == nil {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "tracing not enabled"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obsv.WriteChromeTrace(w, s.opts.Sink.Spans())
}

// --- helpers ------------------------------------------------------------

func notFound(name string) *apiError {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown tenant %q", name)}
}

// decodeBody parses a JSON request body, bounding it so a hostile client
// cannot balloon the daemon's memory.
func decodeBody(r *http.Request, into any) *apiError {
	const maxBody = 16 << 20 // generous: chain-1002 models are ~1 MB
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf("reading body: %v", err)}
	}
	if len(body) > maxBody {
		return &apiError{status: http.StatusRequestEntityTooLarge, msg: "body exceeds 16 MiB"}
	}
	if err := json.Unmarshal(body, into); err != nil {
		return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf("parsing body: %v", err)}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is every error response's shape; Status rides along on
// degraded evolves so clients need no follow-up read.
type errorBody struct {
	Error  string        `json:"error"`
	Status *TenantStatus `json:"status,omitempty"`
}

// writeError renders any error as JSON; non-apiErrors (which should not
// reach here) become opaque 500s.
func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	writeErrorWithStatus(w, ae, nil)
}

func writeErrorWithStatus(w http.ResponseWriter, e *apiError, st *TenantStatus) {
	if e.retryAfter > 0 {
		secs := int64(e.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.status, errorBody{Error: e.msg, Status: st})
}

// sortedKeys returns the sorted keys of any string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
