package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/obsv"
)

// TestServeSoakFaultInjected is the daemon's acceptance gate: several
// tenants hammered concurrently with evolves and reads while deterministic
// faults fire at the admission gate, the evolve worker and the persistent
// store. Throughout:
//
//   - every read returns 200 with either the latest or an explicitly
//     stale-flagged generation — never a 5xx, never a torn state;
//   - no cross-tenant bleed: every served type name carries the reading
//     tenant's unique prefix;
//   - per-client generation numbers are monotonic — a committed
//     generation is never rolled back or skipped;
//   - queue depth never exceeds its bound.
//
// The soak ends with a drain and a restart over the same store: the new
// daemon must warm-start every tenant at its final committed generation.
func TestServeSoakFaultInjected(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		tenants      = 4
		evolvesPerTn = 12
		readersPerTn = 2
		queueDepth   = 4
	)

	dir := t.TempDir()
	var sink *obsv.RecordingSink
	opts := Options{
		Store:          testStore(t, dir),
		WriteBehind:    true,
		PersistRetries: 2,
		PersistBackoff: time.Millisecond,
		QueueDepth:     queueDepth,
	}
	if os.Getenv("MAPSERVED_SOAK_TRACE") != "" {
		sink = obsv.NewRecordingSink()
		opts.Sink = sink
		opts.Tracer = obsv.New(sink)
	}
	srv, ts := testDaemon(t, opts)

	prefixes := make(map[string]string, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant%d", i)
		prefix := fmt.Sprintf("Tn%dx", i)
		prefixes[name] = prefix
		registerChain(t, ts.URL, name, prefix, 5)
	}

	// Deterministic fault storm across every layer the daemon guards:
	// sparse enough that most work lands, dense enough that every rule
	// fires several times over the soak.
	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServerAdmit, Kind: faultinject.KindError, Nth: 5, Every: 9},
		{Site: faultinject.SiteServerHandler, Kind: faultinject.KindPanic, Nth: 4, Every: 11},
		{Site: faultinject.SiteSessionPersist, Kind: faultinject.KindError, Nth: 3, Every: 7},
		{Site: faultinject.SiteStoreSave, Kind: faultinject.KindCorrupt, Nth: 6, Every: 13},
	}})

	var (
		wg            sync.WaitGroup
		readFailures  atomic.Int64
		bleeds        atomic.Int64
		regressions   atomic.Int64
		reads         atomic.Int64
		stopReaders   = make(chan struct{})
		lastCommitted sync.Map // tenant name -> int64 generation
	)

	// Readers: hammer views, asserting the no-5xx / no-bleed / monotonic
	// contract for their tenant.
	for name, prefix := range prefixes {
		for r := 0; r < readersPerTn; r++ {
			wg.Add(1)
			go func(name, prefix string) {
				defer wg.Done()
				var lastGen int64
				for {
					select {
					case <-stopReaders:
						return
					default:
					}
					req, _ := http.NewRequest("GET", ts.URL+"/v1/tenants/"+name+"/views", nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						readFailures.Add(1)
						return
					}
					var vr viewsResponse
					_ = json.NewDecoder(resp.Body).Decode(&vr)
					resp.Body.Close()
					reads.Add(1)
					if resp.StatusCode != http.StatusOK {
						readFailures.Add(1)
						continue
					}
					if vr.Generation < lastGen {
						regressions.Add(1)
					}
					lastGen = vr.Generation
					for _, ty := range vr.Types {
						if !strings.HasPrefix(ty, prefix) {
							bleeds.Add(1)
						}
					}
				}
			}(name, prefix)
		}
	}

	// Evolvers: one sequential driver per tenant (mirroring a real
	// application pushing schema changes), tolerating shed/panicked
	// evolves and tracking the last generation that committed.
	var evolveWg sync.WaitGroup
	var committed, rejected atomic.Int64
	for name, prefix := range prefixes {
		evolveWg.Add(1)
		go func(name, prefix string) {
			defer evolveWg.Done()
			for i := 0; i < evolvesPerTn; i++ {
				body, _ := json.Marshal(map[string]any{
					"op": "addEntity", "name": fmt.Sprintf("%sSoak%d", prefix, i),
					"parent":    prefix + "Entity1",
					"timeoutMs": 15000,
				})
				resp, err := http.Post(ts.URL+"/v1/tenants/"+name+"/evolve", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("tenant %s evolve %d: transport: %v", name, i, err)
					return
				}
				var st TenantStatus
				_ = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					committed.Add(1)
					lastCommitted.Store(name, st.Generation)
				} else {
					rejected.Add(1)
				}
				if d := srv.QueueDepth(); d > int64(tenants*queueDepth) {
					t.Errorf("queue depth %d exceeds bound %d", d, tenants*queueDepth)
				}
			}
		}(name, prefix)
	}

	evolveWg.Wait()
	close(stopReaders)
	wg.Wait()
	faultsFired := faultinject.Fired() // read before deactivation resets it
	deactivate()

	if readFailures.Load() > 0 {
		t.Fatalf("%d of %d reads failed (non-200 or transport)", readFailures.Load(), reads.Load())
	}
	if bleeds.Load() > 0 {
		t.Fatalf("%d cross-tenant type bleeds observed", bleeds.Load())
	}
	if regressions.Load() > 0 {
		t.Fatalf("%d generation regressions observed", regressions.Load())
	}
	if committed.Load() == 0 {
		t.Fatalf("fault storm rejected every evolve (%d rejected); want degradation, not outage", rejected.Load())
	}
	if faultsFired == 0 {
		t.Fatalf("no faults fired; the soak exercised nothing")
	}
	t.Logf("soak: %d evolves committed, %d rejected, %d reads, %d faults fired",
		committed.Load(), rejected.Load(), reads.Load(), faultsFired)

	// Drain (faults off — the storm is over) and restart over the same
	// store: every tenant must come back at its final committed
	// generation.
	ctx, cancel := testContext(t, 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}

	srv2, ts2 := testDaemon(t, Options{Store: testStore(t, dir)})
	if got := srv2.Restored(); got != tenants {
		t.Fatalf("restart restored %d tenants, want %d", got, tenants)
	}
	for name := range prefixes {
		vr, code := readViews(t, ts2.URL, name)
		if code != http.StatusOK {
			t.Fatalf("restored %s: status %d", name, code)
		}
		want, _ := lastCommitted.Load(name)
		if want != nil && vr.Generation != want.(int64) {
			t.Fatalf("restored %s at generation %d, want committed %d", name, vr.Generation, want)
		}
		if vr.Stale {
			t.Fatalf("restored %s flagged stale", name)
		}
	}

	if sink != nil {
		path := os.Getenv("MAPSERVED_SOAK_TRACE")
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("trace output: %v", err)
		}
		defer f.Close()
		if err := obsv.WriteChromeTrace(f, sink.Spans()); err != nil {
			t.Fatalf("writing trace: %v", err)
		}
		t.Logf("soak: Chrome trace written to %s", path)
	}
}
