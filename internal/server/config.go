package server

import (
	"fmt"
	"time"

	"github.com/ormkit/incmap/internal/fault"
)

// runtimeConfig is the hot-reloadable slice of the daemon's configuration:
// the knobs an operator tunes while the daemon runs (SIGHUP in mapserved,
// Reconfigure in-process) without dropping in-flight work. Everything else
// in Options — the store, the tracer, concurrency limits wired into
// channel capacities — stays fixed for the process lifetime.
type runtimeConfig struct {
	// queueDepth is the effective per-tenant admission bound. Tenant queue
	// channels are sized at registration; a reconfigured depth below the
	// channel capacity tightens admission immediately, one above it is
	// clamped per tenant (the channel cannot grow).
	queueDepth int
	// evolveTimeout caps one evolve's wall time, queue wait included.
	evolveTimeout time.Duration
	// defaultBudget applies to tenants registered without their own.
	defaultBudget fault.Budget
	// rollout carries the rollout engine's gate thresholds and backfill
	// tuning; per-rollout requests may tighten, never loosen past these.
	rollout RolloutConfig
}

// RolloutConfig tunes the versioned rollout engine: health-gate thresholds
// and backfill batching. The zero value selects every default.
type RolloutConfig struct {
	// CanarySamples is how many synthetic version-k states the canary gate
	// round-trips through the cross-version views before backfill starts.
	// 0 means DefaultCanarySamples.
	CanarySamples int `json:"canarySamples"`
	// BatchRows bounds one backfill batch. 0 means DefaultBatchRows.
	BatchRows int `json:"batchRows"`
	// MaxDivergence is the number of divergent canary/migration checks a
	// rollout tolerates before the gate fails. Negative disables the gate;
	// the default 0 fails on the first divergence.
	MaxDivergence int `json:"maxDivergence"`
	// MaxErrorRatePct fails the gate when the tenant's lifetime evolve
	// error rate exceeds this percentage. 0 means DefaultMaxErrorRatePct;
	// 100 effectively disables the gate.
	MaxErrorRatePct int `json:"maxErrorRatePct"`
	// BackfillRetries is how many times one backfill batch retries after a
	// fault before the rollout rolls back. 0 means DefaultBackfillRetries.
	BackfillRetries int `json:"backfillRetries"`
	// BackfillBackoff is the base retry backoff (doubled per attempt).
	// 0 means DefaultBackfillBackoff.
	BackfillBackoff time.Duration `json:"-"`
}

// Rollout defaults.
const (
	DefaultCanarySamples   = 4
	DefaultBatchRows       = 64
	DefaultMaxErrorRatePct = 50
	DefaultBackfillRetries = 3
	DefaultBackfillBackoff = 10 * time.Millisecond
)

func (c RolloutConfig) withDefaults() RolloutConfig {
	if c.CanarySamples <= 0 {
		c.CanarySamples = DefaultCanarySamples
	}
	if c.BatchRows <= 0 {
		c.BatchRows = DefaultBatchRows
	}
	if c.MaxErrorRatePct <= 0 {
		c.MaxErrorRatePct = DefaultMaxErrorRatePct
	}
	if c.BackfillRetries <= 0 {
		c.BackfillRetries = DefaultBackfillRetries
	}
	if c.BackfillBackoff <= 0 {
		c.BackfillBackoff = DefaultBackfillBackoff
	}
	return c
}

// cfg returns the current hot config snapshot.
func (s *Server) cfg() *runtimeConfig { return s.config.Load() }

// Reconfig is the wire/file form of a hot reconfiguration: nil fields keep
// their current value, so a reload file states only what it changes.
// mapserved reads one of these from its config file on SIGHUP.
type Reconfig struct {
	QueueDepth             *int   `json:"queueDepth,omitempty"`
	EvolveTimeoutMs        *int64 `json:"evolveTimeoutMs,omitempty"`
	MaxContainments        *int64 `json:"maxContainments,omitempty"`
	MaxWallTimeMs          *int64 `json:"maxWallTimeMs,omitempty"`
	RolloutCanarySamples   *int   `json:"rolloutCanarySamples,omitempty"`
	RolloutBatchRows       *int   `json:"rolloutBatchRows,omitempty"`
	RolloutMaxDivergence   *int   `json:"rolloutMaxDivergence,omitempty"`
	RolloutMaxErrorRatePct *int   `json:"rolloutMaxErrorRatePct,omitempty"`
	BackfillRetries        *int   `json:"backfillRetries,omitempty"`
	BackfillBackoffMs      *int64 `json:"backfillBackoffMs,omitempty"`
}

// ConfigStatus is the readable snapshot of the hot config, returned by
// Reconfigure and served on GET /v1/config.
type ConfigStatus struct {
	QueueDepth      int           `json:"queueDepth"`
	EvolveTimeoutMs int64         `json:"evolveTimeoutMs"`
	MaxContainments int64         `json:"maxContainments"`
	MaxWallTimeMs   int64         `json:"maxWallTimeMs"`
	Rollout         RolloutConfig `json:"rollout"`
	BackfillBackoff string        `json:"backfillBackoff"`
	Reloads         int64         `json:"reloads"`
}

// Reconfigure applies a hot reconfiguration atomically: readers see either
// the old snapshot or the new one, never a mix, and nothing in flight is
// dropped — queued evolves finish under the bounds they were admitted
// with, active rollouts pick up new gate thresholds at their next gate.
func (s *Server) Reconfigure(rc Reconfig) (*ConfigStatus, error) {
	if err := rc.validate(); err != nil {
		return nil, err
	}
	for {
		old := s.config.Load()
		next := *old
		if rc.QueueDepth != nil {
			next.queueDepth = *rc.QueueDepth
		}
		if rc.EvolveTimeoutMs != nil {
			next.evolveTimeout = time.Duration(*rc.EvolveTimeoutMs) * time.Millisecond
		}
		if rc.MaxContainments != nil {
			next.defaultBudget.MaxContainments = *rc.MaxContainments
		}
		if rc.MaxWallTimeMs != nil {
			next.defaultBudget.MaxWallTime = time.Duration(*rc.MaxWallTimeMs) * time.Millisecond
		}
		if rc.RolloutCanarySamples != nil {
			next.rollout.CanarySamples = *rc.RolloutCanarySamples
		}
		if rc.RolloutBatchRows != nil {
			next.rollout.BatchRows = *rc.RolloutBatchRows
		}
		if rc.RolloutMaxDivergence != nil {
			next.rollout.MaxDivergence = *rc.RolloutMaxDivergence
		}
		if rc.RolloutMaxErrorRatePct != nil {
			next.rollout.MaxErrorRatePct = *rc.RolloutMaxErrorRatePct
		}
		if rc.BackfillRetries != nil {
			next.rollout.BackfillRetries = *rc.BackfillRetries
		}
		if rc.BackfillBackoffMs != nil {
			next.rollout.BackfillBackoff = time.Duration(*rc.BackfillBackoffMs) * time.Millisecond
		}
		next.rollout = next.rollout.withDefaults()
		if s.config.CompareAndSwap(old, &next) {
			s.reloads.Add(1)
			return s.ConfigStatus(), nil
		}
	}
}

func (rc Reconfig) validate() error {
	if rc.QueueDepth != nil && *rc.QueueDepth < 1 {
		return fmt.Errorf("queueDepth must be at least 1")
	}
	if rc.EvolveTimeoutMs != nil && *rc.EvolveTimeoutMs < 1 {
		return fmt.Errorf("evolveTimeoutMs must be positive")
	}
	if rc.RolloutCanarySamples != nil && *rc.RolloutCanarySamples < 1 {
		return fmt.Errorf("rolloutCanarySamples must be at least 1")
	}
	if rc.RolloutBatchRows != nil && *rc.RolloutBatchRows < 1 {
		return fmt.Errorf("rolloutBatchRows must be at least 1")
	}
	if rc.RolloutMaxErrorRatePct != nil && (*rc.RolloutMaxErrorRatePct < 1 || *rc.RolloutMaxErrorRatePct > 100) {
		return fmt.Errorf("rolloutMaxErrorRatePct must be in [1,100]")
	}
	if rc.BackfillRetries != nil && *rc.BackfillRetries < 1 {
		return fmt.Errorf("backfillRetries must be at least 1")
	}
	if rc.BackfillBackoffMs != nil && *rc.BackfillBackoffMs < 0 {
		return fmt.Errorf("backfillBackoffMs must not be negative")
	}
	return nil
}

// ConfigStatus snapshots the hot config for callers.
func (s *Server) ConfigStatus() *ConfigStatus {
	c := s.cfg()
	return &ConfigStatus{
		QueueDepth:      c.queueDepth,
		EvolveTimeoutMs: c.evolveTimeout.Milliseconds(),
		MaxContainments: c.defaultBudget.MaxContainments,
		MaxWallTimeMs:   c.defaultBudget.MaxWallTime.Milliseconds(),
		Rollout:         c.rollout,
		BackfillBackoff: c.rollout.BackfillBackoff.String(),
		Reloads:         s.reloads.Load(),
	}
}
