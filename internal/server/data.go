package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"

	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/xver"
)

// Per-tenant data plane. The daemon is a mapping compiler, not a database,
// but the rollout engine's guarantees — version-k clients reading and
// writing during and after a rollout, zero data loss across cutover,
// rollback restoring the prior store verbatim — are claims about rows, so
// each tenant carries a small in-memory store state: synthetic entities
// materialized through the serving generation's update views, persisted as
// a manifest so restarts (and mid-backfill crashes) keep it.
//
//	POST /v1/tenants/{name}/data  {"seed": n, "maxPerType": n, "version": "current"|"prev"}
//	GET  /v1/tenants/{name}/data  [?version=prev]
//
// A write generates a random client state for the chosen version's model
// and replaces the tenant's rows with its materialization — version "prev"
// (valid once a rollout has cut over) drives the old generation's update
// views and the cross-version transform, exercising the paper's
// version-k-writer-against-version-k+1-store path. Reads never fail: the
// worst case is row counts against a stale generation.

// dataManifestName keys a tenant's persisted row store.
func dataManifestName(tenant string) string { return "data-" + manifestKey(tenant) }

// manifestKey squeezes a tenant name into the store's 64-char manifest
// alphabet, leaving room for prefixes; long names get a stable digest.
func manifestKey(name string) string {
	if len(name) <= 40 {
		return name
	}
	sum := sha256.Sum256([]byte(name))
	return name[:24] + "-" + hex.EncodeToString(sum[:8])
}

// dataRequest is the POST body.
type dataRequest struct {
	Seed       uint32 `json:"seed"`
	MaxPerType int    `json:"maxPerType,omitempty"`
	// Version selects which generation's model the synthetic writer
	// speaks: "current" (default) or "prev" (the pre-cutover generation,
	// routed through the cross-version write views).
	Version string `json:"version,omitempty"`
}

// dataResponse summarizes the tenant's rows.
type dataResponse struct {
	Tenant     string         `json:"tenant"`
	Generation int64          `json:"generation"`
	Version    string         `json:"version"`
	Tables     map[string]int `json:"tables"`
	TotalRows  int            `json:"totalRows"`
	// Checksum is the SHA-256 of the store's canonical encoding: two
	// identical states always produce the same checksum, so soak drivers
	// compare states across restarts and rollbacks without shipping rows.
	Checksum string `json:"checksum"`
	// Entities (version=prev reads) counts entities per set as the old
	// version sees them through the cross-version read views.
	Entities map[string]int `json:"entities,omitempty"`
	Frozen   bool           `json:"frozen,omitempty"`
}

// dataSnapshot returns a coherent reference to the tenant's data plane.
// The store state itself is treated as immutable once installed (writers
// swap whole states), so sharing the pointers is safe.
func (t *tenant) dataSnapshot() (data, prev *state.StoreState, plan *xver.Plan, frozen bool) {
	t.dataMu.RLock()
	defer t.dataMu.RUnlock()
	return t.data, t.prevData, t.xplan, t.frozen
}

// crossEntities counts entities per set as a version-k client sees the
// store through the cross-version read views, streaming each restricted
// constructor instead of materializing the projected client state.
func crossEntities(plan *xver.Plan, ss *state.StoreState) (map[string]int, error) {
	return plan.CountEntitiesStream(context.Background(), exec.NewMapStore(ss), exec.Options{})
}

// summarize renders a store state for the wire through the streaming
// summarizer (batch-at-a-time scans, order-independent multiset
// checksum).
func summarize(ss *state.StoreState) (map[string]int, int, string) {
	if ss == nil {
		return streamSummarize(context.Background(), nil)
	}
	return streamSummarize(context.Background(), exec.NewMapStore(ss))
}

func (s *Server) handleDataGet(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	st := t.read()
	data, prev, plan, frozen := t.dataSnapshot()
	resp := &dataResponse{Tenant: t.name, Generation: st.gen, Version: "current", Frozen: frozen}

	if r.URL.Query().Get("version") == "prev" {
		resp.Version = "prev"
		if plan == nil || prev == nil {
			// No cutover has happened: "prev" is just the serving store.
			resp.Tables, resp.TotalRows, resp.Checksum = summarize(data)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// Version-k client reading the version-k+1 store: counts come
		// through the cross-version read views. Reads never 5xx — a
		// cross-read failure degrades to raw table counts.
		resp.Tables, resp.TotalRows, resp.Checksum = summarize(data)
		if ents, err := crossEntities(plan, data); err == nil {
			resp.Entities = ents
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Tables, resp.TotalRows, resp.Checksum = summarize(data)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDataPost(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	var req dataRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.MaxPerType <= 0 {
		req.MaxPerType = 3
	}
	if req.Version == "" {
		req.Version = "current"
	}
	resp, aerr := t.writeData(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeData materializes a synthetic client state into the tenant's store
// through the views the requested version owns.
func (t *tenant) writeData(req dataRequest) (*dataResponse, *apiError) {
	t.dataMu.Lock()
	defer t.dataMu.Unlock()
	if t.frozen {
		return nil, &apiError{
			status: http.StatusConflict,
			msg:    fmt.Sprintf("tenant %q data is frozen for backfill; retry after cutover", t.name),
		}
	}
	st := t.serving()
	if st.m == nil || st.v == nil {
		return nil, &apiError{status: http.StatusConflict, msg: "tenant has no compiled generation"}
	}

	var next *state.StoreState
	switch req.Version {
	case "current":
		cs := orm.RandomState(st.m, req.Seed, req.MaxPerType)
		ss, err := orm.Materialize(st.m, st.v, cs)
		if err != nil {
			return nil, &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf("materialize: %v", err)}
		}
		next = ss
	case "prev":
		if t.xplan == nil {
			return nil, &apiError{status: http.StatusConflict, msg: "no cross-version plan: tenant has not cut over"}
		}
		// The old version's writer: random state over the OLD model,
		// materialized through the OLD update views, then transformed to
		// the new layout (gap columns filled per strategy).
		cs := orm.RandomState(t.xplan.From.M, req.Seed, req.MaxPerType)
		ss, err := t.xplan.WriteClient(cs)
		if err != nil {
			return nil, &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf("cross-version write: %v", err)}
		}
		next = ss
	default:
		return nil, &apiError{status: http.StatusBadRequest, msg: strconv.Quote(req.Version) + " is not a version (want current or prev)"}
	}

	t.data = next
	t.persistDataLocked()
	tables, total, sum := summarize(next)
	return &dataResponse{
		Tenant:     t.name,
		Generation: st.gen,
		Version:    req.Version,
		Tables:     tables,
		TotalRows:  total,
		Checksum:   sum,
	}, nil
}

// persistDataLocked snapshots the data plane to the store (best-effort;
// the manifest write is checksummed and a damaged record reads as empty).
// Callers hold dataMu.
func (t *tenant) persistDataLocked() {
	if t.srv.opts.Store == nil || t.data == nil {
		return
	}
	if payload, err := modelio.EncodeRows(t.data); err == nil {
		_ = t.srv.opts.Store.SaveManifest(dataManifestName(t.name), payload)
	}
}

// restoreData loads the persisted data plane, if any. Called during tenant
// restore before the daemon serves.
func (t *tenant) restoreData() {
	if t.srv.opts.Store == nil {
		return
	}
	payload, err := t.srv.opts.Store.LoadManifest(dataManifestName(t.name))
	if err != nil {
		return
	}
	if ss, err := modelio.DecodeRows(payload); err == nil {
		t.dataMu.Lock()
		t.data = ss
		t.dataMu.Unlock()
	}
}
