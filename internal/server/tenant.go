package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/store"
	"github.com/ormkit/incmap/internal/xver"
)

// tenant is one registered model: a session, a bounded evolve queue
// drained by a single worker goroutine, and a serving-state mirror that
// read handlers hit without touching the session. The single worker per
// tenant serializes that tenant's evolves (matching the session's own
// evolveMu) while tenants evolve concurrently with one another, throttled
// only by the server's global compile semaphore.
type tenant struct {
	name    string
	session *pipeline.Session
	budget  fault.Budget
	srv     *Server

	// queue is the bounded admission queue. Admission never blocks: a
	// full queue sheds synchronously with 429.
	queue chan *evolveReq
	// drainCh closes when the server drains; done closes when the worker
	// has shed the queue remainder and exited.
	drainCh   chan struct{}
	drainOnce sync.Once
	done      chan struct{}

	// genMu guards gen, the serving-state mirror. Only the worker (and
	// setCommitted during registration/restore) writes it; reads are
	// lock-cheap and coherent — generation number, fingerprint and
	// staleness always belong to the same commit.
	genMu sync.RWMutex
	gen   genState

	// evolveEWMA tracks the recent average evolve duration in
	// nanoseconds (atomic), seeding the deadline-aware admission
	// estimate. Zero until the first evolve completes.
	evolveEWMA atomic.Int64

	// Counters (atomic).
	evolves    atomic.Int64
	errors     atomic.Int64
	shed       atomic.Int64
	reads      atomic.Int64
	staleReads atomic.Int64

	// dataMu guards the tenant's row store and cross-version artifacts:
	// data is the serving store state, prevData the frozen pre-cutover
	// snapshot kept for post-cutover rollback and version-k clients, and
	// xplan the cross-version plan that lets those clients keep reading and
	// writing after cutover. frozen marks the backfill window, during which
	// writes are rejected with 409 (reads continue against data).
	dataMu   sync.RWMutex
	data     *state.StoreState
	prevData *state.StoreState
	xplan    *xver.Plan
	frozen   bool

	// roMu guards ro, the tenant's most recent rollout (at most one can be
	// active; a finished one stays for GET status until the next starts).
	roMu sync.Mutex
	ro   *rollout
}

// genState is one coherent serving snapshot.
type genState struct {
	m  *frag.Mapping
	v  *frag.Views
	gen int64
	fp  string
	// stale marks that the latest requested evolve did not commit; the
	// served generation is the last one that did.
	stale       bool
	staleReason string
}

// evolveReq is one admitted evolve waiting for the tenant worker.
type evolveReq struct {
	ctx   context.Context
	op    core.SMO
	reply chan evolveResult
}

type evolveResult struct {
	status *TenantStatus
	err    *apiError
}

func (s *Server) newTenant(name string, sess *pipeline.Session, b fault.Budget) *tenant {
	t := &tenant{
		name:    name,
		session: sess,
		budget:  b,
		srv:     s,
		queue:   make(chan *evolveReq, s.opts.QueueDepth),
		drainCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go t.worker()
	return t
}

// setCommitted installs a serving snapshot (registration and restore; the
// worker uses commit).
func (t *tenant) setCommitted(m *frag.Mapping, v *frag.Views, gen int64, fp string) {
	t.genMu.Lock()
	t.gen = genState{m: m, v: v, gen: gen, fp: fp}
	t.genMu.Unlock()
}

// serving returns the current coherent snapshot.
func (t *tenant) serving() genState {
	t.genMu.RLock()
	defer t.genMu.RUnlock()
	return t.gen
}

// status renders the tenant's wire status from the serving mirror.
func (t *tenant) status() *TenantStatus {
	st := t.serving()
	return &TenantStatus{
		Name:        t.name,
		Generation:  st.gen,
		Fingerprint: st.fp,
		Stale:       st.stale,
		StaleReason: st.staleReason,
		Evolves:     t.evolves.Load(),
		Errors:      t.errors.Load(),
		Shed:        t.shed.Load(),
		Reads:       t.reads.Load(),
		StaleReads:  t.staleReads.Load(),
		QueueDepth:  len(t.queue),
	}
}

// read records a read against the serving snapshot and returns it. Reads
// never fail: the worst case is an explicitly flagged stale generation.
func (t *tenant) read() genState {
	st := t.serving()
	t.reads.Add(1)
	if st.stale {
		t.staleReads.Add(1)
		mStaleServes.Add(1)
	}
	return st
}

// beginDrain signals the worker to shed the queue remainder and exit
// after the in-flight evolve (if any) finishes.
func (t *tenant) beginDrain() {
	t.drainOnce.Do(func() { close(t.drainCh) })
}

// admit applies the load-shedding ladder and either enqueues the request
// or rejects it — always before any compilation work:
//
//  1. an injected admission fault sheds (the overload drill);
//  2. a draining server rejects with 503;
//  3. a full queue sheds with 429 and a Retry-After estimated from the
//     tenant's recent evolve duration;
//  4. a deadline the queue cannot meet — estimated wait exceeds the
//     request's remaining time — sheds with 429 rather than letting the
//     request time out inside the queue holding a slot.
func (t *tenant) admit(req *evolveReq) *apiError {
	if err := faultinject.At(faultinject.SiteServerAdmit); err != nil {
		t.shed.Add(1)
		mShed.Add(1)
		return &apiError{status: http.StatusTooManyRequests, msg: fmt.Sprintf("admission: %v", err), retryAfter: t.retryAfter(1)}
	}
	if t.srv.draining.Load() {
		return errDraining
	}
	if ro := t.activeRollout(); ro != nil {
		// A staged generation owns the tenant's evolution until it cuts
		// over or rolls back; a conflicting evolve is a 409, not overload.
		return &apiError{
			status: http.StatusConflict,
			msg:    fmt.Sprintf("rollout %d in phase %q owns tenant %q; evolve after cutover or rollback", ro.snapshot().ID, ro.snapshot().Phase, t.name),
		}
	}
	// The hot config may have tightened the admission bound below the
	// channel capacity; admission honors the tighter of the two.
	if depth := t.effectiveDepth(); len(t.queue) >= depth {
		t.shed.Add(1)
		mShed.Add(1)
		return &apiError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("tenant %q queue full (%d deep)", t.name, depth),
			retryAfter: t.retryAfter(depth),
		}
	}
	if wait, ok := t.estimatedWait(len(t.queue) + 1); ok {
		if dl, has := req.ctx.Deadline(); has && time.Until(dl) < wait {
			t.shed.Add(1)
			mShed.Add(1)
			return &apiError{
				status:     http.StatusTooManyRequests,
				msg:        fmt.Sprintf("estimated queue wait %s exceeds request deadline", wait.Round(time.Millisecond)),
				retryAfter: wait,
			}
		}
	}
	select {
	case t.queue <- req:
		return nil
	default:
		t.shed.Add(1)
		mShed.Add(1)
		return &apiError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("tenant %q queue full (%d deep)", t.name, cap(t.queue)),
			retryAfter: t.retryAfter(cap(t.queue)),
		}
	}
}

// effectiveDepth is the admission bound: the hot-config depth, clamped to
// the channel capacity fixed at registration.
func (t *tenant) effectiveDepth() int {
	depth := t.srv.cfg().queueDepth
	if depth <= 0 || depth > cap(t.queue) {
		depth = cap(t.queue)
	}
	return depth
}

// activeRollout returns the tenant's rollout if one is still running.
func (t *tenant) activeRollout() *rollout {
	t.roMu.Lock()
	defer t.roMu.Unlock()
	if t.ro != nil && !t.ro.finished() {
		return t.ro
	}
	return nil
}

// lastRollout returns the most recent rollout, finished or not.
func (t *tenant) lastRollout() *rollout {
	t.roMu.Lock()
	defer t.roMu.Unlock()
	return t.ro
}

// estimatedWait projects how long n queued evolves will take from the
// EWMA of recent evolve durations. Before the first completed evolve
// there is no estimate (ok=false): the queue bound alone sheds.
func (t *tenant) estimatedWait(n int) (time.Duration, bool) {
	ewma := t.evolveEWMA.Load()
	if ewma <= 0 {
		return 0, false
	}
	return time.Duration(ewma) * time.Duration(n), true
}

// retryAfter suggests when the caller should try again: the projected
// time to drain n queue slots, at least one second (the HTTP header has
// whole-second resolution).
func (t *tenant) retryAfter(n int) time.Duration {
	if wait, ok := t.estimatedWait(n); ok && wait > time.Second {
		return wait
	}
	return time.Second
}

// worker is the tenant's single evolve loop. It exists so that a panic, a
// budget exhaustion or an injected fault in one tenant's compile is
// contained to that tenant: the worker recovers, flags the serving state
// stale, answers the request, and keeps going.
func (t *tenant) worker() {
	defer close(t.done)
	for {
		// Priority check: once drain is signalled, no further queued
		// evolve starts (select alone would pick randomly between a
		// closed drainCh and a non-empty queue).
		select {
		case <-t.drainCh:
			t.shedQueue()
			return
		default:
		}
		select {
		case <-t.drainCh:
			t.shedQueue()
			return
		case req := <-t.queue:
			res := t.process(req)
			req.reply <- res
		}
	}
}

// shedQueue rejects everything still queued at drain time. In-flight work
// has already finished (the worker processes one request at a time).
func (t *tenant) shedQueue() {
	for {
		select {
		case req := <-t.queue:
			t.shed.Add(1)
			mShed.Add(1)
			req.reply <- evolveResult{err: errDraining}
		default:
			return
		}
	}
}

// process runs one admitted evolve under the global compile semaphore and
// the tenant's timeout, converting every failure mode — cancellation
// while queued, compile errors, panics — into a stale-but-serving state
// and a typed API error.
func (t *tenant) process(req *evolveReq) evolveResult {
	select {
	case t.srv.sem <- struct{}{}:
	case <-req.ctx.Done():
		t.errors.Add(1)
		mEvolveErrors.Add(1)
		t.markStale("timed out waiting for a compile slot")
		return evolveResult{err: &apiError{status: http.StatusGatewayTimeout, msg: "timed out waiting for a compile slot"}}
	}
	defer func() { <-t.srv.sem }()

	start := time.Now()
	err := t.evolveOne(req.ctx, req.op)
	t.observeDuration(time.Since(start))

	t.evolves.Add(1)
	if err != nil {
		if err.status == http.StatusConflict {
			// A rollout owns the session: the request lost a race, the
			// tenant's serving state is exactly as fresh as before.
			return evolveResult{status: t.status(), err: err}
		}
		t.errors.Add(1)
		mEvolveErrors.Add(1)
		t.markStale(err.Error())
		return evolveResult{status: t.status(), err: err}
	}
	return evolveResult{status: t.status(), err: nil}
}

// evolveOne applies one SMO through the session's fallback ladder,
// recovering panics from anywhere in the handler path (including the
// injected SiteServerHandler fault) so a poisonous SMO degrades the
// tenant instead of killing the daemon.
func (t *tenant) evolveOne(ctx context.Context, op core.SMO) (apiErr *apiError) {
	defer func() {
		if r := recover(); r != nil {
			mHandlerPanics.Add(1)
			apiErr = compileError("evolve", &fault.PanicError{Where: "evolve handler", Value: r, Stack: debug.Stack()})
		}
	}()
	if err := faultinject.At(faultinject.SiteServerHandler); err != nil {
		return compileError("evolve", err)
	}
	m, v, err := t.session.Evolve(ctx, op)
	if err != nil {
		if errors.Is(err, pipeline.ErrPendingGeneration) {
			// Raced a rollout past admission: a conflict, not a compile
			// failure — the tenant is not stale, the client must wait.
			return &apiError{status: http.StatusConflict, msg: fmt.Sprintf("evolve: %v", err)}
		}
		return compileError("evolve", err)
	}
	t.commit(m, v)
	return nil
}

// commit advances the serving mirror to the newly committed generation
// and clears any staleness, then refreshes the persisted manifest.
func (t *tenant) commit(m *frag.Mapping, v *frag.Views) {
	fp, _ := store.Fingerprint(m)
	t.genMu.Lock()
	t.gen = genState{m: m, v: v, gen: t.gen.gen + 1, fp: fp}
	t.genMu.Unlock()
	_ = t.srv.saveManifest()
}

// markStale flags the serving state: the generation is unchanged (the
// session kept the pre-SMO generation) but the client's last requested
// evolution did not land.
func (t *tenant) markStale(reason string) {
	t.genMu.Lock()
	t.gen.stale = true
	t.gen.staleReason = reason
	t.genMu.Unlock()
}

// observeDuration folds one evolve duration into the EWMA (α = 1/4).
func (t *tenant) observeDuration(d time.Duration) {
	for {
		old := t.evolveEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/4
		}
		if t.evolveEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// Evolve admits, queues and waits for one SMO against the tenant.
func (t *tenant) Evolve(ctx context.Context, op core.SMO) (*TenantStatus, *apiError) {
	req := &evolveReq{ctx: ctx, op: op, reply: make(chan evolveResult, 1)}
	if err := t.admit(req); err != nil {
		return nil, err
	}
	select {
	case res := <-req.reply:
		return res.status, res.err
	case <-ctx.Done():
		// The worker will still process the request (the queue slot is
		// taken); the buffered reply channel lets it complete without us.
		return nil, &apiError{status: http.StatusGatewayTimeout, msg: "evolve timed out in queue"}
	}
}
