package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/xver"
)

// The versioned rollout engine. A rollout advances one tenant from its
// serving generation (version k) to a proposed one (version k+1) through a
// guarded state machine:
//
//	proposed → canary → backfill → cutover → verify → done
//	     └────────┴────────┴─────────┴─────────┴→ rolledback
//
// Every arrow into "rolledback" is automatic: a health gate — divergence
// between the versions' views, the tenant's evolve error rate, a stale
// serving state, or an injected gate fault — fails, and the engine
// restores the prior generation. Before cutover that is a discard (the
// serving generation and data were never touched); after cutover it is a
// pipeline rollback that reinstates the version-k mapping, views and row
// store verbatim.
//
// The backfill is checkpointed: the frozen source store, every migrated
// batch and a progress record are persisted as checksummed store
// manifests, so a daemon killed mid-backfill resumes from the last intact
// checkpoint on restart — committed batches are reused, a torn batch
// record is detected by its checksum and re-run.

// Rollout phases.
const (
	phaseProposed   = "proposed"
	phaseCanary     = "canary"
	phaseBackfill   = "backfill"
	phaseCutover    = "cutover"
	phaseVerify     = "verify"
	phaseDone       = "done"
	phaseRolledback = "rolledback"
	phaseFailed     = "failed"
	phaseSuspended  = "suspended" // daemon drained mid-backfill; resumes on restart
)

// Rollout counters, resolved once.
var (
	mRolloutStarted      = obsv.Metrics().Counter(obsv.MRolloutStarted)
	mRolloutCutovers     = obsv.Metrics().Counter(obsv.MRolloutCutovers)
	mRolloutRollbacks    = obsv.Metrics().Counter(obsv.MRolloutRollbacks)
	mRolloutGateFailures = obsv.Metrics().Counter(obsv.MRolloutGateFailures)
	mRolloutDivergences  = obsv.Metrics().Counter(obsv.MRolloutDivergences)
	mBackfillBatches     = obsv.Metrics().Counter(obsv.MBackfillBatches)
	mBackfillRetries     = obsv.Metrics().Counter(obsv.MBackfillRetries)
	mBackfillResumed     = obsv.Metrics().Counter(obsv.MBackfillResumed)
)

// Checkpoint manifest names.
func rolloutManifestName(tenant string) string { return "rollout-" + manifestKey(tenant) }
func rolloutSrcName(tenant string) string      { return rolloutManifestName(tenant) + "-src" }
func rolloutBatchName(tenant string, i int) string {
	return fmt.Sprintf("%s-b%d", rolloutManifestName(tenant), i)
}

// wireStrategies is the wire form of the pluggable update-view strategy
// dispatch: a default plus per-hierarchy (keyed by root entity type) and
// per-association overrides, by name ("null", "default", "reject").
type wireStrategies struct {
	Default     string            `json:"default,omitempty"`
	ByHierarchy map[string]string `json:"byHierarchy,omitempty"`
	ByAssoc     map[string]string `json:"byAssoc,omitempty"`
}

func (w wireStrategies) toStrategies() (xver.Strategies, error) {
	out := xver.Strategies{}
	var err error
	if out.Default, err = xver.StrategyByName(w.Default); err != nil {
		return out, err
	}
	if len(w.ByHierarchy) > 0 {
		out.ByHierarchy = map[string]xver.Strategy{}
		for root, name := range w.ByHierarchy {
			if out.ByHierarchy[root], err = xver.StrategyByName(name); err != nil {
				return out, err
			}
		}
	}
	if len(w.ByAssoc) > 0 {
		out.ByAssoc = map[string]xver.Strategy{}
		for assoc, name := range w.ByAssoc {
			if out.ByAssoc[assoc], err = xver.StrategyByName(name); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

// rolloutRequest is the POST /v1/tenants/{name}/rollout body.
type rolloutRequest struct {
	// SMOs are the schema modification operations the new generation
	// applies, in order.
	SMOs []WireSMO `json:"smos"`
	// Strategies select the update-view generation policy for gap columns.
	Strategies wireStrategies `json:"strategies,omitempty"`
	// Per-rollout overrides of the hot config (0 keeps the config value).
	CanarySamples   int  `json:"canarySamples,omitempty"`
	BatchRows       int  `json:"batchRows,omitempty"`
	MaxDivergence   *int `json:"maxDivergence,omitempty"`
	MaxErrorRatePct int  `json:"maxErrorRatePct,omitempty"`
	// BatchDelayMs slows each backfill batch (soak drivers use it to make
	// mid-backfill kills land deterministically).
	BatchDelayMs int64 `json:"batchDelayMs,omitempty"`
	// Seed drives the canary's synthetic states.
	Seed uint32 `json:"seed,omitempty"`
}

// RolloutStatus is the wire status of a rollout.
type RolloutStatus struct {
	ID           int64    `json:"id"`
	Tenant       string   `json:"tenant"`
	Phase        string   `json:"phase"`
	FromFP       string   `json:"fromFingerprint,omitempty"`
	ToFP         string   `json:"toFingerprint,omitempty"`
	BatchesDone  int      `json:"batchesDone"`
	TotalBatches int      `json:"totalBatches"`
	Divergences  int64    `json:"divergences"`
	GateFailures int64    `json:"gateFailures"`
	Resumed      bool     `json:"resumed,omitempty"`
	ReusedBatch  int      `json:"reusedBatches,omitempty"`
	Notes        []string `json:"notes,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// batchSpec is one deterministic backfill unit: a half-open row range of
// one source table. The enumeration (tables sorted, rows in stored order)
// is a pure function of the frozen source and the batch size, so a resumed
// daemon recomputes the identical schedule.
type batchSpec struct {
	Table string `json:"table"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

func planBatches(src *state.StoreState, batchRows int) []batchSpec {
	var out []batchSpec
	if src == nil {
		return out
	}
	tables := make([]string, 0, len(src.Tables))
	for t := range src.Tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		n := len(src.Tables[t])
		for start := 0; start < n; start += batchRows {
			end := start + batchRows
			if end > n {
				end = n
			}
			out = append(out, batchSpec{Table: t, Start: start, End: end})
		}
	}
	return out
}

// rolloutCheckpoint is the persisted progress record (the "rollout-<t>"
// manifest). Together with the source snapshot, the staged generation
// (content-addressed by ToFP) and the per-batch records it is everything a
// restarted daemon needs to resume.
type rolloutCheckpoint struct {
	ID         int64          `json:"id"`
	Phase      string         `json:"phase"`
	ToFP       string         `json:"toFingerprint"`
	BatchRows  int            `json:"batchRows"`
	Strategies wireStrategies `json:"strategies"`
	Done       int            `json:"done"`
	Total      int            `json:"total"`
}

// rollout is one tenant's rollout in flight (or its terminal record).
type rollout struct {
	t   *tenant
	id  int64
	req rolloutRequest

	mu           sync.Mutex
	phase        string
	fromFP, toFP string
	batchesDone  int
	totalBatches int
	divergences  int64
	gateFailures int64
	resumed      bool
	reused       int
	notes        []string
	err          string

	// Populated as phases run; guarded by the phase discipline (only the
	// rollout goroutine writes them).
	from     xver.Gen
	pending  pipeline.Generation
	plan     *xver.Plan
	src      *state.StoreState
	migrated *state.StoreState
	batches  []batchSpec

	doneCh chan struct{}
}

// finished reports whether the rollout reached a terminal phase.
func (r *rollout) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.phase {
	case phaseDone, phaseRolledback, phaseFailed, phaseSuspended:
		return true
	}
	return false
}

func (r *rollout) snapshot() *RolloutStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	notes := make([]string, len(r.notes))
	copy(notes, r.notes)
	return &RolloutStatus{
		ID:           r.id,
		Tenant:       r.t.name,
		Phase:        r.phase,
		FromFP:       r.fromFP,
		ToFP:         r.toFP,
		BatchesDone:  r.batchesDone,
		TotalBatches: r.totalBatches,
		Divergences:  r.divergences,
		GateFailures: r.gateFailures,
		Resumed:      r.resumed,
		ReusedBatch:  r.reused,
		Notes:        notes,
		Error:        r.err,
	}
}

func (r *rollout) setPhase(p string) {
	r.mu.Lock()
	r.phase = p
	r.mu.Unlock()
}

func (r *rollout) note(format string, args ...any) {
	r.mu.Lock()
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *rollout) diverge(what, detail string) {
	r.mu.Lock()
	r.divergences++
	r.mu.Unlock()
	mRolloutDivergences.Add(1)
	if len(detail) > 200 {
		detail = detail[:200] + "…"
	}
	r.note("divergence (%s): %s", what, detail)
}

// effective merges the hot rollout config with this rollout's request
// overrides. Re-read at every gate, so a SIGHUP reload adjusts the
// thresholds of rollouts already in flight.
func (r *rollout) effective() RolloutConfig {
	c := r.t.srv.cfg().rollout
	if r.req.CanarySamples > 0 {
		c.CanarySamples = r.req.CanarySamples
	}
	if r.req.BatchRows > 0 {
		c.BatchRows = r.req.BatchRows
	}
	if r.req.MaxDivergence != nil {
		c.MaxDivergence = *r.req.MaxDivergence
	}
	if r.req.MaxErrorRatePct > 0 {
		c.MaxErrorRatePct = r.req.MaxErrorRatePct
	}
	return c
}

// gate evaluates the health gates at one stage. A false verdict means the
// caller must roll back; the reason is recorded.
func (r *rollout) gate(stage string) bool {
	fail := func(reason string) bool {
		r.mu.Lock()
		r.gateFailures++
		r.mu.Unlock()
		mRolloutGateFailures.Add(1)
		r.note("gate failed at %s: %s", stage, reason)
		return false
	}
	if err := faultinject.At(faultinject.SiteRolloutGate); err != nil {
		return fail(err.Error())
	}
	eff := r.effective()
	if st := r.t.serving(); st.stale {
		return fail(fmt.Sprintf("tenant serving state is stale: %s", st.staleReason))
	}
	evolves, errs := r.t.evolves.Load(), r.t.errors.Load()
	if evolves > 0 {
		if rate := errs * 100 / evolves; rate > int64(eff.MaxErrorRatePct) {
			return fail(fmt.Sprintf("evolve error rate %d%% exceeds %d%%", rate, eff.MaxErrorRatePct))
		}
	}
	if eff.MaxDivergence >= 0 {
		r.mu.Lock()
		div := r.divergences
		r.mu.Unlock()
		if div > int64(eff.MaxDivergence) {
			return fail(fmt.Sprintf("%d divergences exceed gate threshold %d", div, eff.MaxDivergence))
		}
	}
	return true
}

// run drives the state machine. Every exit path leaves the rollout in a
// terminal phase and the tenant in a coherent state; panics anywhere roll
// back like a gate failure.
func (r *rollout) run() {
	defer close(r.doneCh)
	defer func() {
		if rec := recover(); rec != nil {
			mHandlerPanics.Add(1)
			r.note("panic: %v", rec)
			debug.PrintStack()
			if r.pastCutover() {
				r.rollbackPost(fmt.Sprintf("panic during rollout: %v", rec))
			} else {
				r.rollbackPre(fmt.Sprintf("panic during rollout: %v", rec))
			}
		}
	}()
	if !r.resumed {
		if !r.propose() {
			return
		}
		if !r.canary() {
			return
		}
	}
	if !r.backfill() {
		return
	}
	if !r.cutover() {
		return
	}
	if !r.verify() {
		return
	}
	r.retire()
}

// pastCutover reports whether the serving generation has already switched.
func (r *rollout) pastCutover() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase == phaseVerify || r.phase == phaseDone
}

// propose compiles the new generation through the session's fallback
// ladder without committing it, under the global compile semaphore.
func (r *rollout) propose() bool {
	t := r.t
	smos, err := toSMOs(r.req.SMOs)
	if err != nil {
		r.fail(err.Error())
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.srv.cfg().evolveTimeout)
	defer cancel()
	select {
	case t.srv.sem <- struct{}{}:
	case <-ctx.Done():
		r.fail("timed out waiting for a compile slot")
		return false
	}
	head := t.session.Head()
	pg, perr := t.session.Propose(ctx, smos...)
	<-t.srv.sem
	if perr != nil {
		r.fail(fmt.Sprintf("propose: %v", perr))
		return false
	}
	strat, serr := r.req.Strategies.toStrategies()
	if serr != nil {
		_ = t.session.DiscardPending()
		r.fail(serr.Error())
		return false
	}
	plan, xerr := xver.Compile(xver.Gen{M: head.M, V: head.V}, xver.Gen{M: pg.M, V: pg.V}, strat)
	if xerr != nil {
		_ = t.session.DiscardPending()
		r.fail(fmt.Sprintf("cross-version compile: %v", xerr))
		return false
	}
	r.from = xver.Gen{M: head.M, V: head.V}
	r.pending = pg
	r.plan = plan
	r.mu.Lock()
	r.fromFP = head.FP
	r.toFP = pg.FP
	r.mu.Unlock()
	for _, n := range plan.Notes {
		r.note("plan: %s", n)
	}
	return true
}

// canary round-trips synthetic version-k states through the cross-version
// views and checks the tenant's live rows migrate losslessly, then
// evaluates the gate.
func (r *rollout) canary() bool {
	r.setPhase(phaseCanary)
	eff := r.effective()
	for i := 0; i < eff.CanarySamples; i++ {
		cs := orm.RandomState(r.from.M, r.req.Seed+uint32(i), 3)
		d, err := r.plan.CheckRoundtrip(cs)
		switch {
		case err != nil:
			r.diverge(fmt.Sprintf("canary %d", i), err.Error())
		case d != "":
			r.diverge(fmt.Sprintf("canary %d", i), d)
		}
	}
	if data, _, _, _ := r.t.dataSnapshot(); data != nil {
		d, err := r.plan.CheckMigration(data)
		switch {
		case err != nil:
			r.diverge("live migration", err.Error())
		case d != "":
			r.diverge("live migration", d)
		}
	}
	if !r.gate("canary") {
		r.rollbackPre("canary gate failed")
		return false
	}
	return true
}

// backfill freezes the tenant's rows and migrates them to the new layout
// in bounded, retried, checkpointed batches.
func (r *rollout) backfill() bool {
	t := r.t
	eff := r.effective()

	if !r.resumed {
		r.setPhase(phaseBackfill)
		t.dataMu.Lock()
		if t.data == nil {
			t.data = state.NewStoreState()
		}
		r.src = t.data
		t.frozen = true
		t.dataMu.Unlock()
		r.batches = planBatches(r.src, eff.BatchRows)
		r.migrated = state.NewStoreState()
		r.mu.Lock()
		r.totalBatches = len(r.batches)
		r.mu.Unlock()
		if !r.persistSrc(eff.BatchRows) {
			// Without a durable source snapshot, a crash mid-backfill
			// could not resume; proceed un-checkpointed only when no
			// store is configured at all.
			if t.srv.opts.Store != nil {
				r.rollbackPre("persisting backfill source snapshot failed")
				return false
			}
		}
	}

	for i := r.batchesDoneNow(); i < len(r.batches); i++ {
		if t.srv.draining.Load() {
			r.note("daemon draining: backfill suspended at batch %d/%d", i, len(r.batches))
			r.setPhase(phaseSuspended)
			return false
		}
		if r.req.BatchDelayMs > 0 {
			time.Sleep(time.Duration(r.req.BatchDelayMs) * time.Millisecond)
		}
		if !r.oneBatch(i, eff) {
			return false
		}
	}
	return true
}

func (r *rollout) batchesDoneNow() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batchesDone
}

// oneBatch migrates one batch with retry/backoff, persisting the batch
// record and then the progress checkpoint (in that order, so a progress
// record never points past an unwritten batch).
func (r *rollout) oneBatch(i int, eff RolloutConfig) bool {
	b := r.batches[i]
	backoff := eff.BackfillBackoff
	for attempt := 0; ; attempt++ {
		err := r.tryBatch(i, b)
		if err == nil {
			break
		}
		if attempt >= eff.BackfillRetries {
			r.rollbackPre(fmt.Sprintf("batch %d (%s rows %d:%d) failed after %d retries: %v",
				i, b.Table, b.Start, b.End, attempt, err))
			return false
		}
		mBackfillRetries.Add(1)
		r.note("batch %d retry %d: %v", i, attempt+1, err)
		time.Sleep(backoff)
		backoff *= 2
	}
	mBackfillBatches.Add(1)
	r.mu.Lock()
	r.batchesDone = i + 1
	r.mu.Unlock()
	r.persistProgress(phaseBackfill, eff.BatchRows)
	return true
}

func (r *rollout) tryBatch(i int, b batchSpec) error {
	if err := faultinject.At(faultinject.SiteBackfillBatch); err != nil {
		return err
	}
	rows := r.src.Tables[b.Table][b.Start:b.End]
	out, _, err := r.plan.TransformTable(b.Table, rows)
	if err != nil {
		return err
	}
	if st := r.t.srv.opts.Store; st != nil {
		chunk := state.NewStoreState()
		chunk.Tables[b.Table] = out
		payload, perr := modelio.EncodeRows(chunk)
		if perr != nil {
			return perr
		}
		if serr := st.SaveManifest(rolloutBatchName(r.t.name, i), payload); serr != nil {
			return serr
		}
	}
	if len(out) > 0 {
		r.migrated.Tables[b.Table] = append(r.migrated.Tables[b.Table], out...)
	}
	return nil
}

// cutover promotes the staged generation and swaps the data plane, after a
// final gate over the fully migrated store.
func (r *rollout) cutover() bool {
	r.setPhase(phaseCutover)
	t := r.t

	// Final divergence check: the version-k client state reconstructed
	// from the migrated store must match the one the source store held.
	if d, err := r.plan.CheckMigration(r.src); err != nil {
		r.diverge("cutover migration", err.Error())
	} else if d != "" {
		r.diverge("cutover migration", d)
	}
	if !r.gate("cutover") {
		r.rollbackPre("cutover gate failed")
		return false
	}

	head, err := t.session.PromotePending()
	if err != nil {
		r.rollbackPre(fmt.Sprintf("promote: %v", err))
		return false
	}
	t.commit(head.M, head.V)
	t.dataMu.Lock()
	t.prevData = r.src
	t.data = r.migrated
	t.xplan = r.plan
	t.frozen = false
	t.persistDataLocked()
	t.dataMu.Unlock()
	mRolloutCutovers.Add(1)
	r.note("cutover: serving generation %s", head.FP)
	r.setPhase(phaseVerify)
	r.persistProgress(phaseVerify, r.effective().BatchRows)
	return true
}

// verify is the post-cutover gate: version-k reads of the live store must
// still reconstruct the pre-cutover client state, and the health gates
// must hold. Failure rolls the generation and the rows back.
func (r *rollout) verify() bool {
	data, _, _, _ := r.t.dataSnapshot()
	old, err := orm.Load(r.from.M, r.from.V, r.src)
	if err != nil {
		r.diverge("verify", fmt.Sprintf("loading source state: %v", err))
	} else {
		cur, rerr := r.plan.ReadClient(data)
		switch {
		case rerr != nil:
			r.diverge("verify", rerr.Error())
		default:
			if d := state.Diff(old, cur); d != "" {
				r.diverge("verify", d)
			}
		}
	}
	if !r.gate("verify") {
		r.rollbackPost("post-cutover gate failed")
		return false
	}
	return true
}

// retire deletes the rollout's checkpoints and finishes.
func (r *rollout) retire() {
	r.deleteCheckpoints()
	r.setPhase(phaseDone)
	r.note("rollout complete")
}

// fail terminates without rollback side effects (nothing was staged).
func (r *rollout) fail(reason string) {
	r.mu.Lock()
	r.phase = phaseFailed
	r.err = reason
	r.mu.Unlock()
}

// rollbackPre aborts before cutover: the staged generation is discarded,
// the data plane was never touched (unfreeze it), checkpoints are
// retired. The serving generation and rows are bit-for-bit what they were.
func (r *rollout) rollbackPre(reason string) {
	t := r.t
	_ = t.session.DiscardPending()
	t.dataMu.Lock()
	t.frozen = false
	t.dataMu.Unlock()
	r.deleteCheckpoints()
	mRolloutRollbacks.Add(1)
	r.mu.Lock()
	r.phase = phaseRolledback
	r.err = reason
	r.mu.Unlock()
}

// rollbackPost undoes a cutover: the session re-commits the version-k
// generation verbatim (monotone generation counter, identical mapping and
// view pointers) and the data plane is restored to the frozen source.
func (r *rollout) rollbackPost(reason string) {
	t := r.t
	head, err := t.session.Rollback()
	if err != nil {
		r.mu.Lock()
		r.phase = phaseFailed
		r.err = fmt.Sprintf("rollback after %q: %v", reason, err)
		r.mu.Unlock()
		return
	}
	t.commit(head.M, head.V)
	t.dataMu.Lock()
	t.data = r.src
	t.prevData = nil
	t.xplan = nil
	t.frozen = false
	t.persistDataLocked()
	t.dataMu.Unlock()
	r.deleteCheckpoints()
	mRolloutRollbacks.Add(1)
	r.mu.Lock()
	r.phase = phaseRolledback
	r.err = reason
	r.mu.Unlock()
}

// --- checkpoint persistence ---------------------------------------------

func (r *rollout) persistSrc(batchRows int) bool {
	st := r.t.srv.opts.Store
	if st == nil {
		return false
	}
	payload, err := modelio.EncodeRows(r.src)
	if err != nil {
		return false
	}
	if st.SaveManifest(rolloutSrcName(r.t.name), payload) != nil {
		return false
	}
	return r.persistProgress(phaseBackfill, batchRows)
}

func (r *rollout) persistProgress(phase string, batchRows int) bool {
	st := r.t.srv.opts.Store
	if st == nil {
		return false
	}
	r.mu.Lock()
	cp := rolloutCheckpoint{
		ID:         r.id,
		Phase:      phase,
		ToFP:       r.toFP,
		BatchRows:  batchRows,
		Strategies: r.req.Strategies,
		Done:       r.batchesDone,
		Total:      r.totalBatches,
	}
	r.mu.Unlock()
	payload, err := json.Marshal(&cp)
	if err != nil {
		return false
	}
	return st.SaveManifest(rolloutManifestName(r.t.name), payload) == nil
}

func (r *rollout) deleteCheckpoints() {
	st := r.t.srv.opts.Store
	if st == nil {
		return
	}
	_ = st.DeleteManifest(rolloutManifestName(r.t.name))
	_ = st.DeleteManifest(rolloutSrcName(r.t.name))
	r.mu.Lock()
	total := r.totalBatches
	r.mu.Unlock()
	for i := 0; i < total; i++ {
		_ = st.DeleteManifest(rolloutBatchName(r.t.name, i))
	}
}

// --- crash resume --------------------------------------------------------

// resumeRollout restarts a backfill interrupted by a crash or drain. It
// reloads the staged generation by content address, restages it in the
// session, recompiles the cross-version plan, and counts the longest
// contiguous prefix of intact batch checkpoints — those batches are reused
// (never re-migrated); the first torn or missing record and everything
// after it re-run. Called during tenant restore, before the daemon serves.
func (s *Server) resumeRollout(t *tenant) {
	st := s.opts.Store
	payload, err := st.LoadManifest(rolloutManifestName(t.name))
	if err != nil {
		return // no rollout in flight
	}
	var cp rolloutCheckpoint
	if json.Unmarshal(payload, &cp) != nil {
		s.abandonRollout(t, 0)
		return
	}
	if cp.Phase != phaseBackfill {
		// Cutover already happened (or never started): the committed
		// generation in the manifest is authoritative; retire leftovers.
		s.abandonRollout(t, cp.Total)
		return
	}
	abandon := func() {
		_ = t.session.DiscardPending()
		s.abandonRollout(t, cp.Total)
	}
	m, v, gerr := st.LoadGeneration(cp.ToFP)
	if gerr != nil {
		abandon()
		return
	}
	pg, rerr := t.session.ResumePending(m, v)
	if rerr != nil {
		abandon()
		return
	}
	strat, serr := cp.Strategies.toStrategies()
	if serr != nil {
		abandon()
		return
	}
	head := t.session.Head()
	plan, xerr := xver.Compile(xver.Gen{M: head.M, V: head.V}, xver.Gen{M: pg.M, V: pg.V}, strat)
	if xerr != nil {
		abandon()
		return
	}
	srcPayload, perr := st.LoadManifest(rolloutSrcName(t.name))
	if perr != nil {
		abandon()
		return
	}
	src, derr := modelio.DecodeRows(srcPayload)
	if derr != nil {
		abandon()
		return
	}

	r := &rollout{
		t:       t,
		id:      s.rolloutSeq.Add(1),
		req:     rolloutRequest{Strategies: cp.Strategies, BatchRows: cp.BatchRows},
		phase:   phaseBackfill,
		fromFP:  head.FP,
		toFP:    cp.ToFP,
		resumed: true,
		from:    xver.Gen{M: head.M, V: head.V},
		pending: pg,
		plan:    plan,
		src:     src,
		batches: planBatches(src, cp.BatchRows),
		doneCh:  make(chan struct{}),
	}
	r.totalBatches = len(r.batches)

	// Reuse the longest contiguous prefix of intact batch checkpoints, up
	// to the progress record's count. A batch whose record is torn (the
	// store's checksum rejects it) re-runs; committed ones never do.
	r.migrated = state.NewStoreState()
	valid := 0
	for i := 0; i < cp.Done && i < len(r.batches); i++ {
		bp, berr := st.LoadManifest(rolloutBatchName(t.name, i))
		if berr != nil {
			break
		}
		chunk, cerr := modelio.DecodeRows(bp)
		if cerr != nil {
			break
		}
		for table, rows := range chunk.Tables {
			if len(rows) > 0 {
				r.migrated.Tables[table] = append(r.migrated.Tables[table], rows...)
			}
		}
		valid++
	}
	r.batchesDone = valid
	r.reused = valid
	if valid > 0 {
		mBackfillResumed.Add(int64(valid))
	}
	r.note("resumed backfill at batch %d/%d (%d checkpointed batches reused)", valid, len(r.batches), valid)

	// The data plane must serve the frozen source until cutover.
	t.dataMu.Lock()
	t.data = src
	t.frozen = true
	t.dataMu.Unlock()

	t.roMu.Lock()
	t.ro = r
	t.roMu.Unlock()
	mRolloutStarted.Add(1)
	go r.run()
}

// abandonRollout clears checkpoint leftovers for a rollout that cannot
// resume (damaged records, missing generation). The tenant serves its
// committed generation; the operator re-issues the rollout.
func (s *Server) abandonRollout(t *tenant, total int) {
	st := s.opts.Store
	_ = st.DeleteManifest(rolloutManifestName(t.name))
	_ = st.DeleteManifest(rolloutSrcName(t.name))
	if total <= 0 {
		total = 1 << 12
	}
	for i := 0; i < total; i++ {
		_ = st.DeleteManifest(rolloutBatchName(t.name, i))
	}
}

// --- HTTP ----------------------------------------------------------------

func (s *Server) handleRolloutPost(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errDraining)
		return
	}
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	var req rolloutRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.SMOs) == 0 {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "rollout needs at least one SMO"})
		return
	}
	if _, err := toSMOs(req.SMOs); err != nil {
		writeError(w, err)
		return
	}
	if _, err := req.Strategies.toStrategies(); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}

	t.roMu.Lock()
	if t.ro != nil && !t.ro.finished() {
		active := t.ro.snapshot()
		t.roMu.Unlock()
		writeError(w, &apiError{
			status: http.StatusConflict,
			msg:    fmt.Sprintf("rollout %d already active in phase %q", active.ID, active.Phase),
		})
		return
	}
	ro := &rollout{
		t:      t,
		id:     s.rolloutSeq.Add(1),
		req:    req,
		phase:  phaseProposed,
		doneCh: make(chan struct{}),
	}
	t.ro = ro
	t.roMu.Unlock()
	mRolloutStarted.Add(1)
	go ro.run()
	writeJSON(w, http.StatusAccepted, ro.snapshot())
}

func (s *Server) handleRolloutGet(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, notFound(r.PathValue("name")))
		return
	}
	ro := t.lastRollout()
	if ro == nil {
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("tenant %q has no rollout", t.name)})
		return
	}
	writeJSON(w, http.StatusOK, ro.snapshot())
}

// toSMOs decodes a wire SMO list.
func toSMOs(ws []WireSMO) ([]core.SMO, *apiError) {
	out := make([]core.SMO, 0, len(ws))
	for i := range ws {
		op, err := ws[i].ToSMO()
		if err != nil {
			return nil, err
		}
		out = append(out, op)
	}
	return out, nil
}
