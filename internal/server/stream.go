package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/exec"
)

// Streaming data-plane reads. The daemon's GET path used to render a
// tenant's rows by canonically encoding the whole store state in one
// buffer and hashing it; both the encode and the hash held the full
// serialization in memory. The streaming summarizer walks each table
// through the executor's TableStore scans batch-at-a-time and folds rows
// into an order-independent multiset checksum, so the data plane's read
// cost is one batch regardless of tenant size — and the same code path
// serves both map-backed tenant states (via exec.MapStore) and any
// future log-backed store.
//
// The checksum is deterministic across processes and row orderings: two
// stores holding the same multiset of rows per table always hash equal,
// which is the property the rollout soak's restart/rollback comparisons
// rely on. (The value differs from the old whole-encoding hash; nothing
// persists checksums, so only like-for-like comparisons matter.)

// rowDigestSum is a commutative fold of row digests: per-row SHA-256
// truncated to four uint64 lanes, added lane-wise with wraparound.
// Addition (not XOR) keeps duplicate rows visible — a multiset, not a
// set.
type rowDigestSum [4]uint64

func (s *rowDigestSum) add(rowCanonical string) {
	d := sha256.Sum256([]byte(rowCanonical))
	for i := 0; i < 4; i++ {
		s[i] += binary.BigEndian.Uint64(d[i*8:])
	}
}

// streamSummarize renders a table store for the wire: per-table row
// counts, the total, and the multiset checksum. A scan error degrades to
// an empty checksum (reads never fail), matching the old summarize's
// behaviour on encode errors.
func streamSummarize(ctx context.Context, ts exec.TableStore) (map[string]int, int, string) {
	tables := map[string]int{}
	total := 0
	if ts == nil {
		return tables, total, checksumOf(nil)
	}
	type tableSum struct {
		name  string
		count int
		sum   rowDigestSum
	}
	var sums []tableSum
	for _, name := range ts.Tables() {
		it, err := ts.Scan(ctx, name, exec.DefaultBatchSize)
		if err != nil {
			return tables, total, ""
		}
		t := tableSum{name: name}
		for {
			rows, ok, err := it.Next()
			if err != nil {
				_ = it.Close()
				return tables, total, ""
			}
			if !ok {
				break
			}
			for _, r := range rows {
				t.sum.add(r.Canonical())
			}
			t.count += len(rows)
		}
		_ = it.Close()
		if t.count == 0 {
			continue
		}
		tables[name] = t.count
		total += t.count
		sums = append(sums, t)
	}
	lines := make([]string, len(sums))
	for i, t := range sums {
		lines[i] = fmt.Sprintf("%s:%d:%x%x%x%x", t.name, t.count, t.sum[0], t.sum[1], t.sum[2], t.sum[3])
	}
	return tables, total, checksumOf(lines)
}

// checksumOf hashes the sorted per-table digest lines into the wire
// checksum. The empty store has a well-defined (non-empty) checksum so
// "no data" and "checksum unavailable" stay distinguishable.
func checksumOf(lines []string) string {
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
