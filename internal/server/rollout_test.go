package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/faultinject"
)

// --- helpers -------------------------------------------------------------

// rolloutBody builds the standard test rollout: one TPH subtype added to
// the tenant's chain, nullable gap attribute, small batches so multi-batch
// backfills happen even with little data.
func rolloutBody(prefix string, extra map[string]any) map[string]any {
	body := map[string]any{
		"smos": []map[string]any{{
			"op": "addEntity", "name": prefix + "Extra", "parent": prefix + "Entity2",
			"attrs": []map[string]any{{"name": "Note", "type": "string", "nullable": true}},
		}},
		"canarySamples": 2,
		"batchRows":     2,
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// seedData writes synthetic rows and returns their checksum.
func seedData(t *testing.T, base, name string, seed uint32) string {
	t.Helper()
	var resp dataResponse
	hr := doJSON(t, "POST", fmt.Sprintf("%s/v1/tenants/%s/data", base, name),
		map[string]any{"seed": seed, "maxPerType": 4}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("seeding data: status %d", hr.StatusCode)
	}
	if resp.TotalRows == 0 {
		t.Fatal("seeding data produced no rows")
	}
	return resp.Checksum
}

func getData(t *testing.T, base, name, query string) dataResponse {
	t.Helper()
	var resp dataResponse
	hr := doJSON(t, "GET", fmt.Sprintf("%s/v1/tenants/%s/data%s", base, name, query), nil, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("reading data: status %d", hr.StatusCode)
	}
	return resp
}

// startRollout posts a rollout and asserts it was accepted.
func startRollout(t *testing.T, base, name string, body map[string]any) RolloutStatus {
	t.Helper()
	var st RolloutStatus
	hr := doJSON(t, "POST", fmt.Sprintf("%s/v1/tenants/%s/rollout", base, name), body, &st)
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("rollout not accepted: status %d", hr.StatusCode)
	}
	return st
}

// waitRollout polls until the tenant's rollout reaches a terminal phase.
func waitRollout(t *testing.T, base, name string) RolloutStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		var st RolloutStatus
		hr := doJSON(t, "GET", fmt.Sprintf("%s/v1/tenants/%s/rollout", base, name), nil, &st)
		if hr.StatusCode == http.StatusOK {
			switch st.Phase {
			case phaseDone, phaseRolledback, phaseFailed, phaseSuspended:
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout did not finish; last phase %q, notes %v, err %q", st.Phase, st.Notes, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func tenantStatus(t *testing.T, base, name string) TenantStatus {
	t.Helper()
	var st TenantStatus
	hr := doJSON(t, "GET", base+"/v1/tenants/"+name, nil, &st)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("tenant status: %d", hr.StatusCode)
	}
	return st
}

// --- tests ---------------------------------------------------------------

// TestRolloutCutover drives the happy path end to end: propose, canary,
// checkpointed backfill, guarded cutover, post-cutover verification. The
// serving generation advances, old-version clients keep reading and
// writing through the cross-version views, and the tenant evolves normally
// again afterwards.
func TestRolloutCutover(t *testing.T) {
	_, ts := testDaemon(t, Options{Store: testStore(t, t.TempDir())})
	registerChain(t, ts.URL, "rc", "rc", 3)
	seedData(t, ts.URL, "rc", 7)
	before := tenantStatus(t, ts.URL, "rc")

	startRollout(t, ts.URL, "rc", rolloutBody("rc", nil))
	st := waitRollout(t, ts.URL, "rc")
	if st.Phase != phaseDone {
		t.Fatalf("rollout phase %q (err %q, notes %v), want done", st.Phase, st.Error, st.Notes)
	}
	if st.TotalBatches == 0 || st.BatchesDone != st.TotalBatches {
		t.Fatalf("backfill %d/%d batches", st.BatchesDone, st.TotalBatches)
	}
	if st.Divergences != 0 {
		t.Fatalf("clean rollout reported %d divergences: %v", st.Divergences, st.Notes)
	}

	after := tenantStatus(t, ts.URL, "rc")
	if after.Generation <= before.Generation {
		t.Fatalf("generation %d did not advance past %d", after.Generation, before.Generation)
	}
	if after.Fingerprint == before.Fingerprint {
		t.Fatal("cutover kept the old fingerprint")
	}
	if after.Stale {
		t.Fatalf("tenant stale after rollout: %s", after.StaleReason)
	}

	// Version-k client: reads see the migrated store through the
	// cross-version views; a write through the old update views lands.
	prev := getData(t, ts.URL, "rc", "?version=prev")
	if len(prev.Entities) == 0 {
		t.Fatal("cross-version read returned no entity counts")
	}
	var wr dataResponse
	hr := doJSON(t, "POST", ts.URL+"/v1/tenants/rc/data",
		map[string]any{"seed": 11, "maxPerType": 3, "version": "prev"}, &wr)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("cross-version write: status %d", hr.StatusCode)
	}
	if wr.TotalRows == 0 {
		t.Fatal("cross-version write produced no rows")
	}

	// The tenant evolves normally again.
	var est TenantStatus
	hr = doJSON(t, "POST", ts.URL+"/v1/tenants/rc/evolve",
		map[string]any{"op": "addEntity", "name": "rcAfter", "parent": "rcEntity1"}, &est)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("evolve after rollout: status %d", hr.StatusCode)
	}
}

// TestRolloutCanaryGateRollsBack: an injected gate fault at the canary
// fails the rollout before anything was staged into serving — generation,
// fingerprint and rows stay bit-for-bit identical.
func TestRolloutCanaryGateRollsBack(t *testing.T) {
	_, ts := testDaemon(t, Options{Store: testStore(t, t.TempDir())})
	registerChain(t, ts.URL, "rg", "rg", 3)
	sum := seedData(t, ts.URL, "rg", 7)
	before := tenantStatus(t, ts.URL, "rg")

	defer faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteRolloutGate, Kind: faultinject.KindError, Nth: 1},
	}})()
	startRollout(t, ts.URL, "rg", rolloutBody("rg", nil))
	st := waitRollout(t, ts.URL, "rg")
	if st.Phase != phaseRolledback {
		t.Fatalf("phase %q, want rolledback", st.Phase)
	}
	if st.GateFailures == 0 {
		t.Fatal("gate failure not recorded")
	}

	after := tenantStatus(t, ts.URL, "rg")
	if after.Generation != before.Generation || after.Fingerprint != before.Fingerprint {
		t.Fatalf("pre-cutover rollback moved the generation: %d/%s -> %d/%s",
			before.Generation, before.Fingerprint, after.Generation, after.Fingerprint)
	}
	if got := getData(t, ts.URL, "rg", "").Checksum; got != sum {
		t.Fatal("pre-cutover rollback changed the data plane")
	}
	// The pending generation is discarded: evolves work immediately.
	var est TenantStatus
	hr := doJSON(t, "POST", ts.URL+"/v1/tenants/rg/evolve",
		map[string]any{"op": "addEntity", "name": "rgAfter", "parent": "rgEntity1"}, &est)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("evolve after rollback: status %d", hr.StatusCode)
	}
}

// TestRolloutPostCutoverRollback: the gate fails after cutover (third gate
// evaluation: canary, cutover, verify). The engine must restore the prior
// generation verbatim — same fingerprint — and the exact pre-rollout rows,
// under a monotonically advanced generation counter.
func TestRolloutPostCutoverRollback(t *testing.T) {
	_, ts := testDaemon(t, Options{Store: testStore(t, t.TempDir())})
	registerChain(t, ts.URL, "rp", "rp", 3)
	sum := seedData(t, ts.URL, "rp", 7)
	before := tenantStatus(t, ts.URL, "rp")

	defer faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteRolloutGate, Kind: faultinject.KindError, Nth: 3},
	}})()
	startRollout(t, ts.URL, "rp", rolloutBody("rp", nil))
	st := waitRollout(t, ts.URL, "rp")
	if st.Phase != phaseRolledback {
		t.Fatalf("phase %q (err %q), want rolledback", st.Phase, st.Error)
	}

	after := tenantStatus(t, ts.URL, "rp")
	if after.Fingerprint != before.Fingerprint {
		t.Fatalf("rollback restored fingerprint %s, want %s", after.Fingerprint, before.Fingerprint)
	}
	if after.Generation <= before.Generation {
		t.Fatalf("generation counter went backwards: %d -> %d", before.Generation, after.Generation)
	}
	if got := getData(t, ts.URL, "rp", "").Checksum; got != sum {
		t.Fatal("post-cutover rollback did not restore the rows verbatim")
	}
}

// TestRolloutBackfillFaultRollsBack: a backfill batch failing through its
// whole retry ladder aborts the rollout before cutover.
func TestRolloutBackfillFaultRollsBack(t *testing.T) {
	_, ts := testDaemon(t, Options{Store: testStore(t, t.TempDir())})
	registerChain(t, ts.URL, "rb", "rb", 3)
	sum := seedData(t, ts.URL, "rb", 7)
	before := tenantStatus(t, ts.URL, "rb")

	defer faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteBackfillBatch, Kind: faultinject.KindError, Nth: 1, Every: 1},
	}})()
	startRollout(t, ts.URL, "rb", rolloutBody("rb", nil))
	st := waitRollout(t, ts.URL, "rb")
	if st.Phase != phaseRolledback {
		t.Fatalf("phase %q, want rolledback", st.Phase)
	}
	var sawRetry bool
	for _, n := range st.Notes {
		if strings.Contains(n, "retry") {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("no retry recorded before rollback: %v", st.Notes)
	}
	after := tenantStatus(t, ts.URL, "rb")
	if after.Fingerprint != before.Fingerprint {
		t.Fatal("backfill rollback moved the serving generation")
	}
	if got := getData(t, ts.URL, "rb", "").Checksum; got != sum {
		t.Fatal("backfill rollback changed the data plane")
	}
}

// TestRolloutEvolveConflict: while a rollout owns the tenant, direct
// evolves are 409 conflicts — not errors, not staleness.
func TestRolloutEvolveConflict(t *testing.T) {
	_, ts := testDaemon(t, Options{Store: testStore(t, t.TempDir())})
	registerChain(t, ts.URL, "rx", "rx", 3)
	seedData(t, ts.URL, "rx", 7)

	startRollout(t, ts.URL, "rx", rolloutBody("rx", map[string]any{"batchDelayMs": 50}))
	deadline := time.Now().Add(10 * time.Second)
	var conflicted bool
	for time.Now().Before(deadline) {
		var eb errorBody
		hr := doJSON(t, "POST", ts.URL+"/v1/tenants/rx/evolve",
			map[string]any{"op": "addEntity", "name": "rxClash", "parent": "rxEntity1"}, &eb)
		if hr.StatusCode == http.StatusConflict {
			conflicted = true
			break
		}
		if hr.StatusCode == http.StatusOK {
			// The rollout already finished; too late to observe the window.
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := waitRollout(t, ts.URL, "rx")
	if !conflicted {
		t.Skipf("rollout finished before a conflict window was observed (phase %q)", st.Phase)
	}
	if tst := tenantStatus(t, ts.URL, "rx"); tst.Stale {
		t.Fatalf("conflict marked the tenant stale: %s", tst.StaleReason)
	}
	// A second rollout while one is active is also a conflict.
	startRollout(t, ts.URL, "rx", rolloutBody("rx", map[string]any{
		"smos": []map[string]any{{"op": "addEntity", "name": "rxMore", "parent": "rxEntity1"}},
	}))
	waitRollout(t, ts.URL, "rx")
}

// TestRolloutBackfillResume is the crash-resume acceptance check: a daemon
// goes down mid-backfill (drain acts as the orderly stand-in for a kill —
// checkpoints are written continuously either way), one checkpoint record
// is torn on disk, and a fresh daemon over the same store must resume from
// the last intact checkpoint: committed batches are reused, the torn one
// re-runs, and the rollout completes with the exact migrated rows.
func TestRolloutBackfillResume(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testDaemon(t, Options{Store: testStore(t, dir)})
	registerChain(t, ts.URL, "rr", "rr", 4)
	seedData(t, ts.URL, "rr", 7)

	startRollout(t, ts.URL, "rr", rolloutBody("rr", map[string]any{
		"batchRows": 1, "batchDelayMs": 30,
	}))
	// Let at least two batches commit, then "crash".
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st RolloutStatus
		doJSON(t, "GET", ts.URL+"/v1/tenants/rr/rollout", nil, &st)
		if st.BatchesDone >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backfill never reached 2 batches (phase %q, %d/%d)", st.Phase, st.BatchesDone, st.TotalBatches)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := testContext(t, 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var down RolloutStatus
	doJSON(t, "GET", ts.URL+"/v1/tenants/rr/rollout", nil, &down)
	if down.Phase != phaseSuspended {
		t.Fatalf("drained rollout phase %q, want suspended", down.Phase)
	}
	done := down.BatchesDone
	if done < 2 {
		t.Fatalf("suspended with %d batches, want >= 2", done)
	}

	// Tear the newest batch checkpoint: the resume path must detect the
	// damage by checksum and re-run that batch, not trust the progress
	// counter.
	torn := filepath.Join(dir, fmt.Sprintf("manifest-rollout-rr-b%d.json", done-1))
	fi, err := os.Stat(torn)
	if err != nil {
		t.Fatalf("stat %s: %v", torn, err)
	}
	if err := os.Truncate(torn, fi.Size()/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	srv2, ts2 := testDaemon(t, Options{Store: testStore(t, dir)})
	if srv2.Restored() == 0 {
		t.Fatal("second daemon restored no tenants")
	}
	st := waitRollout(t, ts2.URL, "rr")
	if st.Phase != phaseDone {
		t.Fatalf("resumed rollout phase %q (err %q, notes %v)", st.Phase, st.Error, st.Notes)
	}
	if !st.Resumed {
		t.Fatal("rollout does not report itself resumed")
	}
	if st.ReusedBatch != done-1 {
		t.Fatalf("reused %d checkpointed batches, want %d (torn one must re-run)", st.ReusedBatch, done-1)
	}
	if st.BatchesDone != st.TotalBatches {
		t.Fatalf("resumed backfill incomplete: %d/%d", st.BatchesDone, st.TotalBatches)
	}

	// The migrated store serves; old-version reads work; evolves work.
	after := tenantStatus(t, ts2.URL, "rr")
	if after.Stale {
		t.Fatalf("tenant stale after resume: %s", after.StaleReason)
	}
	if prev := getData(t, ts2.URL, "rr", "?version=prev"); len(prev.Entities) == 0 {
		t.Fatal("cross-version read returned no entities after resume")
	}
	var est TenantStatus
	hr := doJSON(t, "POST", ts2.URL+"/v1/tenants/rr/evolve",
		map[string]any{"op": "addEntity", "name": "rrAfter", "parent": "rrEntity1"}, &est)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("evolve after resume: status %d", hr.StatusCode)
	}
}

// TestReconfigure: the hot-config path validates, applies atomically and
// is visible on /v1/config; queue bounds tighten admissions for already
// registered tenants.
func TestReconfigure(t *testing.T) {
	srv, ts := testDaemon(t, Options{QueueDepth: 8})
	if _, err := srv.Reconfigure(Reconfig{QueueDepth: intp(0)}); err == nil {
		t.Fatal("queueDepth 0 accepted")
	}
	if _, err := srv.Reconfigure(Reconfig{RolloutMaxErrorRatePct: intp(250)}); err == nil {
		t.Fatal("error rate 250%% accepted")
	}
	cs, err := srv.Reconfigure(Reconfig{
		QueueDepth:           intp(2),
		RolloutCanarySamples: intp(9),
		RolloutBatchRows:     intp(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs.QueueDepth != 2 || cs.Rollout.CanarySamples != 9 || cs.Rollout.BatchRows != 16 {
		t.Fatalf("reconfig did not land: %+v", cs)
	}
	if cs.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", cs.Reloads)
	}
	var got ConfigStatus
	hr := doJSON(t, "GET", ts.URL+"/v1/config", nil, &got)
	if hr.StatusCode != http.StatusOK || got.QueueDepth != 2 {
		t.Fatalf("GET /v1/config: %d %+v", hr.StatusCode, got)
	}
}

func intp(v int) *int { return &v }

// TestAuthTokens: mutating endpoints distinguish missing credentials (401)
// from wrong ones (403); reads stay open; other tenants stay open.
func TestAuthTokens(t *testing.T) {
	_, ts := testDaemon(t, Options{Auth: map[string]string{"sec": "hunter2"}})

	post := func(path, token string, body string) int {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	regBody := `{"workload":{"kind":"chain","prefix":"sec","n":2}}`

	if got := post("/v1/tenants/sec", "", regBody); got != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", got)
	}
	if got := post("/v1/tenants/sec", "wrong", regBody); got != http.StatusForbidden {
		t.Fatalf("wrong token: %d, want 403", got)
	}
	if got := post("/v1/tenants/sec", "hunter2", regBody); got != http.StatusCreated {
		t.Fatalf("right token: %d, want 201", got)
	}
	// Reads are never gated.
	var st TenantStatus
	if hr := doJSON(t, "GET", ts.URL+"/v1/tenants/sec", nil, &st); hr.StatusCode != http.StatusOK {
		t.Fatalf("read gated: %d", hr.StatusCode)
	}
	// Unlisted tenants are open.
	if got := post("/v1/tenants/open", "", `{"workload":{"kind":"chain","prefix":"open","n":2}}`); got != http.StatusCreated {
		t.Fatalf("open tenant: %d, want 201", got)
	}
	// Mutations on the gated tenant keep requiring the token.
	evBody := `{"op":"addEntity","name":"secX","parent":"secEntity1"}`
	if got := post("/v1/tenants/sec/evolve", "", evBody); got != http.StatusUnauthorized {
		t.Fatalf("evolve without token: %d, want 401", got)
	}
	if got := post("/v1/tenants/sec/evolve", "hunter2", evBody); got != http.StatusOK {
		t.Fatalf("evolve with token: %d, want 200", got)
	}
}
