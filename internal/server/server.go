// Package server implements mapserved, the multi-tenant mapping-compiler
// daemon: many named models (tenants), each backed by its own
// pipeline.Session, sharing one SatCache, one condition intern table and
// one persistent store across the process. The paper's incremental
// compiler pays off operationally when it runs as a long-lived service
// absorbing schema evolution from many applications at once — and a shared
// daemon turns every single-process robustness guarantee into a tenancy
// guarantee: one tenant's pathological model (the Figure 4 cliff) must not
// take down, starve, or corrupt anyone else.
//
// The robustness ladder, in the order a request meets it:
//
//   - Admission control: every evolve passes a bounded, deadline-aware
//     per-tenant queue. A full queue — or an estimated wait that exceeds
//     the request's deadline — rejects with 429 and a Retry-After hint
//     before any compilation work is enqueued, never after.
//   - Budgets: each tenant's compilations run under its own fault.Budget,
//     so an exponential-validation model exhausts its own allowance and
//     nobody else's workers.
//   - Graceful degradation: when an evolve fails — budget, validation,
//     injected fault, or a panic recovered by the worker — the tenant
//     keeps serving its last committed generation, with an explicit
//     staleness flag in every read until a later evolve commits. Reads
//     never 5xx.
//   - Lifecycle: Drain stops admission, sheds what is still queued,
//     finishes in-flight evolves, flushes write-behind snapshots and
//     persists the tenant manifest plus the SatCache, so a restarted
//     daemon warm-starts every tenant from the store without compiling.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/store"
)

// Process-wide daemon counters, resolved once.
var (
	mRequests      = obsv.Metrics().Counter(obsv.MServeRequests)
	mShed          = obsv.Metrics().Counter(obsv.MServeShed)
	mStaleServes   = obsv.Metrics().Counter(obsv.MServeStaleServes)
	mEvolveErrors  = obsv.Metrics().Counter(obsv.MServeEvolveErrors)
	mHandlerPanics = obsv.Metrics().Counter(obsv.MServeHandlerPanics)
)

// Options configures a daemon.
type Options struct {
	// QueueDepth bounds each tenant's evolve queue; an admission finding
	// the queue full sheds with 429. 0 means DefaultQueueDepth.
	QueueDepth int
	// MaxConcurrentCompiles bounds how many tenants may compile at once
	// (a global semaphore below the per-tenant queues, so a burst across
	// many tenants degrades to queueing, not to memory exhaustion).
	// 0 means half of GOMAXPROCS, at least 1.
	MaxConcurrentCompiles int
	// DefaultBudget applies to tenants registered without their own
	// budget. The zero budget is unlimited.
	DefaultBudget fault.Budget
	// EvolveTimeout caps one evolve's wall time, queue wait included.
	// Requests may ask for less via {"timeoutMs": n}; never for more.
	// 0 means DefaultEvolveTimeout.
	EvolveTimeout time.Duration
	// Store, when non-nil, is the shared persistent compile cache:
	// registrations warm-start from it, commits snapshot back to it, and
	// the tenant manifest written on every commit lets a restarted daemon
	// restore all tenants without compiling.
	Store *store.Store
	// WriteBehind persists snapshots off the evolve path; Drain flushes.
	WriteBehind bool
	// PersistRetries / PersistBackoff tune the snapshot retry ladder
	// (see pipeline.Options).
	PersistRetries int
	PersistBackoff time.Duration
	// Tracer, when non-nil, records every compilation span; when Sink is
	// also set, GET /debug/trace serves the accumulated Chrome trace.
	Tracer *obsv.Tracer
	// Sink is the recording sink behind Tracer, drained by /debug/trace.
	Sink *obsv.RecordingSink
	// Rollout tunes the versioned rollout engine (gates, backfill). These
	// seed the hot config; Reconfigure (or mapserved's SIGHUP reload)
	// adjusts them at runtime.
	Rollout RolloutConfig
	// Auth, when non-empty, enables per-tenant bearer-token authorization
	// on mutating endpoints: a request touching tenant T must carry
	// "Authorization: Bearer <Auth[T]>". Tenants absent from the map are
	// open. Read endpoints are never gated — reads must not fail.
	Auth map[string]string
}

// Defaults for the zero Options.
const (
	DefaultQueueDepth    = 16
	DefaultEvolveTimeout = 30 * time.Second
)

// tenantManifest is the store-persisted tenant table: enough to restore
// every tenant's serving state after a restart without compiling anything.
type tenantManifest struct {
	Tenants map[string]manifestEntry `json:"tenants"`
}

type manifestEntry struct {
	Fingerprint string `json:"fingerprint"`
	Generation  int64  `json:"generation"`
	// The budget rides along so a restored tenant keeps its admission
	// policy without re-registration.
	MaxContainments int64 `json:"maxContainments,omitempty"`
	MaxWallTimeMs   int64 `json:"maxWallTimeMs,omitempty"`
}

const manifestName = "tenants"

// Server is the daemon. Create with New, mount via Handler, stop with
// Drain.
type Server struct {
	opts Options
	sat  *cond.SatCache
	// sem is the global compile semaphore (MaxConcurrentCompiles slots).
	sem chan struct{}

	mu      sync.RWMutex
	tenants map[string]*tenant

	// manifestMu serializes read-modify-write cycles on the manifest
	// record so concurrent commits cannot interleave half-written tables.
	manifestMu sync.Mutex

	draining atomic.Bool
	mux      *http.ServeMux
	restored int64

	// config is the hot-reloadable configuration snapshot (see config.go);
	// reloads counts successful Reconfigure calls.
	config  atomic.Pointer[runtimeConfig]
	reloads atomic.Int64

	// rolloutSeq numbers rollouts daemon-wide for status correlation.
	rolloutSeq atomic.Int64
}

// New builds a daemon and, when a store is configured, restores every
// tenant recorded in the manifest: mapping, views and SatCache come
// straight off disk (a warm start), so a restarted daemon serves all
// committed generations before the first request arrives. A tenant whose
// generation record is damaged or pruned is skipped — it re-registers and
// compiles cold — never served partially.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxConcurrentCompiles <= 0 {
		opts.MaxConcurrentCompiles = runtime.GOMAXPROCS(0) / 2
		if opts.MaxConcurrentCompiles < 1 {
			opts.MaxConcurrentCompiles = 1
		}
	}
	if opts.EvolveTimeout <= 0 {
		opts.EvolveTimeout = DefaultEvolveTimeout
	}
	s := &Server{
		opts:    opts,
		sat:     cond.NewSatCache(),
		sem:     make(chan struct{}, opts.MaxConcurrentCompiles),
		tenants: map[string]*tenant{},
	}
	s.config.Store(&runtimeConfig{
		queueDepth:    opts.QueueDepth,
		evolveTimeout: opts.EvolveTimeout,
		defaultBudget: opts.DefaultBudget,
		rollout:       opts.Rollout.withDefaults(),
	})
	if opts.Store != nil {
		_ = opts.Store.LoadSatCache(s.sat)
		s.restoreTenants()
	}
	s.mux = s.buildMux()
	return s
}

// sessionOptions assembles the pipeline options one tenant's session runs
// under: both rungs share the daemon-wide SatCache and the tenant budget.
func (s *Server) sessionOptions(b fault.Budget) pipeline.Options {
	po := pipeline.Options{
		Store:          s.opts.Store,
		WriteBehind:    s.opts.WriteBehind,
		PersistRetries: s.opts.PersistRetries,
		PersistBackoff: s.opts.PersistBackoff,
	}
	po.Incremental.SatCache = s.sat
	po.Incremental.Budget = b
	po.Incremental.Tracer = s.opts.Tracer
	po.Compiler.SatCache = s.sat
	po.Compiler.Budget = b
	po.Compiler.Tracer = s.opts.Tracer
	return po
}

// restoreTenants rebuilds the tenant table from the persisted manifest.
// Called from New before the daemon serves, so no locking subtleties.
func (s *Server) restoreTenants() {
	payload, err := s.opts.Store.LoadManifest(manifestName)
	if err != nil {
		return // no (or damaged) manifest: fresh daemon
	}
	var man tenantManifest
	if json.Unmarshal(payload, &man) != nil {
		return
	}
	for name, ent := range man.Tenants {
		if !validTenantName(name) {
			continue
		}
		m, v, err := s.opts.Store.LoadGeneration(ent.Fingerprint)
		if err != nil {
			continue // damaged or pruned: tenant re-registers cold
		}
		b := fault.Budget{
			MaxContainments: ent.MaxContainments,
			MaxWallTime:     time.Duration(ent.MaxWallTimeMs) * time.Millisecond,
		}
		t := s.newTenant(name, pipeline.NewSession(m, v, s.sessionOptions(b)), b)
		t.setCommitted(m, v, ent.Generation, ent.Fingerprint)
		t.restoreData()
		s.tenants[name] = t
		s.restored++
		// A rollout checkpoint means the previous process died (or was
		// drained) mid-backfill: restage the proposed generation and
		// continue from the last intact batch.
		s.resumeRollout(t)
	}
}

// saveManifest persists the current tenant table. Failures leave the
// previous manifest in place; the next commit retries, and Drain surfaces
// the error.
func (s *Server) saveManifest() error {
	if s.opts.Store == nil {
		return nil
	}
	man := tenantManifest{Tenants: map[string]manifestEntry{}}
	s.mu.RLock()
	for name, t := range s.tenants {
		if t == nil {
			continue // registration in flight
		}
		st := t.serving()
		man.Tenants[name] = manifestEntry{
			Fingerprint:     st.fp,
			Generation:      st.gen,
			MaxContainments: t.budget.MaxContainments,
			MaxWallTimeMs:   t.budget.MaxWallTime.Milliseconds(),
		}
	}
	s.mu.RUnlock()
	payload, err := json.Marshal(&man)
	if err != nil {
		return err
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	return s.opts.Store.SaveManifest(manifestName, payload)
}

// Restored reports how many tenants the daemon recovered from the
// manifest at startup.
func (s *Server) Restored() int { return int(s.restored) }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) lookup(name string) (*tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[name]
	return t, ok && t != nil
}

// QueueDepth reports the total number of queued evolves across tenants
// (exported as the server.queue_depth gauge by cmd/mapserved).
func (s *Server) QueueDepth() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, t := range s.tenants {
		if t != nil {
			n += int64(len(t.queue))
		}
	}
	return n
}

// Register creates a tenant over an already decoded mapping: warm-start
// from the store when the fingerprint matches, full compile otherwise.
// The compile runs under the tenant's budget and the global compile
// semaphore; ctx bounds the wait for both.
func (s *Server) Register(ctx context.Context, name string, m *frag.Mapping, b fault.Budget) (*TenantStatus, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if !validTenantName(name) {
		return nil, &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf("invalid tenant name %q", name)}
	}
	if b == (fault.Budget{}) {
		b = s.cfg().defaultBudget
	}
	s.mu.Lock()
	if _, dup := s.tenants[name]; dup {
		s.mu.Unlock()
		return nil, &apiError{status: http.StatusConflict, msg: fmt.Sprintf("tenant %q already registered", name)}
	}
	// Reserve the name while compiling so two racing registrations cannot
	// both compile; the nil placeholder is replaced or removed below.
	s.tenants[name] = nil
	s.mu.Unlock()

	release := func() {
		s.mu.Lock()
		if s.tenants[name] == nil {
			delete(s.tenants, name)
		}
		s.mu.Unlock()
	}

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		release()
		mShed.Add(1)
		return nil, &apiError{status: http.StatusTooManyRequests, msg: "compile slots busy", retryAfter: time.Second}
	}
	sess, err := pipeline.NewSessionCompile(ctx, m, s.sessionOptions(b))
	<-s.sem
	if err != nil {
		release()
		return nil, compileError("register", err)
	}

	t := s.newTenant(name, sess, b)
	cm, cv := sess.Generation()
	fp, _ := store.Fingerprint(cm)
	t.setCommitted(cm, cv, 1, fp)
	s.mu.Lock()
	s.tenants[name] = t
	s.mu.Unlock()
	_ = s.saveManifest()
	st := t.status()
	st.WarmStart = sess.Stats().WarmStarts > 0
	return st, nil
}

// Drain gracefully stops the daemon: admission closes (readyz flips to
// 503), queued-but-unstarted evolves are shed, in-flight evolves finish,
// write-behind snapshots flush, and the manifest plus SatCache snapshot
// are persisted. The returned error is the first flush or persistence
// failure; ctx bounds the wait for in-flight work.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			tenants = append(tenants, t)
		}
	}
	s.mu.RUnlock()

	for _, t := range tenants {
		t.beginDrain()
	}
	var firstErr error
	for _, t := range tenants {
		select {
		case <-t.done:
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = fmt.Errorf("drain: %w", ctx.Err())
			}
		}
	}
	// Rollouts notice draining at their next batch boundary and suspend
	// (their checkpoints make the restart resume); wait for the goroutines
	// so no checkpoint write races the final manifest save below.
	for _, t := range tenants {
		if ro := t.lastRollout(); ro != nil {
			select {
			case <-ro.doneCh:
			case <-ctx.Done():
				if firstErr == nil {
					firstErr = fmt.Errorf("drain: %w", ctx.Err())
				}
			}
		}
	}
	for _, t := range tenants {
		if err := t.session.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.opts.Store != nil {
		for _, t := range tenants {
			if err := s.scrubGeneration(t); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := s.saveManifest(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.opts.Store.SaveSatCache(s.sat); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// scrubGeneration verifies the store still holds a loadable record of the
// tenant's committed generation and rewrites it if not. Write-behind
// snapshots can be lost to faults the session already surfaced (and
// counted), and a torn write passes SaveGeneration but fails its
// checksummed load — the drain is the last chance to guarantee the
// acceptance property that a restart warm-starts every committed
// generation.
func (s *Server) scrubGeneration(t *tenant) error {
	st := t.serving()
	if st.fp == "" || st.m == nil {
		return nil
	}
	if _, _, err := s.opts.Store.LoadGeneration(st.fp); err == nil {
		return nil
	}
	return s.opts.Store.SaveGeneration(st.fp, st.m, st.v)
}

// validTenantName bounds tenant names to a URL- and manifest-safe
// alphabet.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// errDraining is the admission verdict while the daemon drains.
var errDraining = &apiError{status: http.StatusServiceUnavailable, msg: "draining", retryAfter: 5 * time.Second}

// apiError carries an HTTP status through the server's internals.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// compileError classifies a registration/evolve compile failure into an
// HTTP-facing error: budget exhaustion and recovered panics are resource
// verdicts (the daemon is fine; the model is expensive or poisonous),
// timeouts are 504, and validation failures mean the client's mapping is
// wrong.
func compileError(op string, err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	switch fault.Outcome(err) {
	case "budget":
		return &apiError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf("%s: %v", op, err), retryAfter: time.Second}
	case "panic":
		return &apiError{status: http.StatusInternalServerError, msg: fmt.Sprintf("%s: %v", op, err)}
	case "cancelled":
		return &apiError{status: http.StatusGatewayTimeout, msg: fmt.Sprintf("%s: %v", op, err)}
	default:
		return &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf("%s: %v", op, err)}
	}
}

// TenantStatus is the wire form of one tenant's serving state.
type TenantStatus struct {
	Name        string `json:"name"`
	Generation  int64  `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	// Stale is set while the tenant serves a generation older than the
	// last attempted evolution (that evolve failed); StaleReason says why.
	Stale       bool   `json:"stale"`
	StaleReason string `json:"staleReason,omitempty"`
	WarmStart   bool   `json:"warmStart,omitempty"`
	Evolves     int64  `json:"evolves"`
	Errors      int64  `json:"evolveErrors"`
	Shed        int64  `json:"shed"`
	Reads       int64  `json:"reads"`
	StaleReads  int64  `json:"staleReads"`
	QueueDepth  int    `json:"queueDepth"`
}
