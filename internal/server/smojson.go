package server

import (
	"fmt"
	"net/http"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/modef"
)

// WireSMO is the JSON form of a schema modification operation. The
// additive ops (addEntity, addAssociation) decode to *planned* SMOs — the
// modef planners resolve style and table placement against the session's
// cloned mapping inside the incremental compiler's transaction, never
// against the live generation. This matters in a daemon: planning against
// the served mapping would mutate shared schema state before the evolve
// is known to commit.
//
//	{"op": "addEntity", "name": "E", "parent": "P",
//	 "attrs": [{"name": "A", "type": "string", "nullable": true}]}
//	{"op": "addProperty", "type": "E",
//	 "attr": {"name": "A", "type": "int"}, "table": "T", "col": "C"}
//	{"op": "addAssociation", "name": "R",
//	 "end1": {"type": "E1", "mult": "*"}, "end2": {"type": "E2", "mult": "0..1"}}
//	{"op": "dropEntity", "name": "E"}
//	{"op": "dropAssociation", "name": "R"}
type WireSMO struct {
	Op string `json:"op"`
	// Name is the new entity/association name for adds, the victim for
	// drops.
	Name   string     `json:"name,omitempty"`
	Parent string     `json:"parent,omitempty"`
	Attrs  []WireAttr `json:"attrs,omitempty"`
	// addProperty fields.
	Type  string    `json:"type,omitempty"`
	Attr  *WireAttr `json:"attr,omitempty"`
	Table string    `json:"table,omitempty"`
	Col   string    `json:"col,omitempty"`
	// addAssociation ends.
	End1 *WireEnd `json:"end1,omitempty"`
	End2 *WireEnd `json:"end2,omitempty"`
}

// WireAttr is the JSON form of an entity attribute.
type WireAttr struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // "string", "int" or "bool"
	Nullable bool   `json:"nullable,omitempty"`
}

// WireEnd is the JSON form of an association end.
type WireEnd struct {
	Type string `json:"type"`
	Mult string `json:"mult"` // "1", "0..1" or "*"
}

func (a *WireAttr) toAttr() (edm.Attribute, error) {
	kind, err := kindOf(a.Type)
	if err != nil {
		return edm.Attribute{}, fmt.Errorf("attribute %q: %w", a.Name, err)
	}
	if a.Name == "" {
		return edm.Attribute{}, fmt.Errorf("attribute missing name")
	}
	return edm.Attribute{Name: a.Name, Type: kind, Nullable: a.Nullable}, nil
}

func kindOf(s string) (cond.Kind, error) {
	switch s {
	case "string", "":
		return cond.KindString, nil
	case "int":
		return cond.KindInt, nil
	case "bool":
		return cond.KindBool, nil
	default:
		return 0, fmt.Errorf("unknown attribute type %q", s)
	}
}

func multOf(s string) (edm.Mult, error) {
	switch s {
	case "1":
		return edm.One, nil
	case "0..1":
		return edm.ZeroOne, nil
	case "*":
		return edm.Many, nil
	default:
		return 0, fmt.Errorf("unknown multiplicity %q (want \"1\", \"0..1\" or \"*\")", s)
	}
}

// ToSMO decodes the wire form into an executable SMO.
func (w *WireSMO) ToSMO() (core.SMO, *apiError) {
	bad := func(format string, args ...any) *apiError {
		return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
	}
	switch w.Op {
	case "addEntity":
		if w.Name == "" || w.Parent == "" {
			return nil, bad("addEntity needs name and parent")
		}
		attrs := make([]edm.Attribute, 0, len(w.Attrs))
		for i := range w.Attrs {
			a, err := w.Attrs[i].toAttr()
			if err != nil {
				return nil, bad("addEntity: %v", err)
			}
			attrs = append(attrs, a)
		}
		return modef.PlannedAddEntity(w.Name, w.Parent, attrs), nil
	case "addProperty":
		if w.Type == "" || w.Attr == nil || w.Table == "" || w.Col == "" {
			return nil, bad("addProperty needs type, attr, table and col")
		}
		a, err := w.Attr.toAttr()
		if err != nil {
			return nil, bad("addProperty: %v", err)
		}
		return &core.AddProperty{Type: w.Type, Attr: a, Table: w.Table, Col: w.Col}, nil
	case "addAssociation":
		if w.Name == "" || w.End1 == nil || w.End2 == nil {
			return nil, bad("addAssociation needs name, end1 and end2")
		}
		m1, err := multOf(w.End1.Mult)
		if err != nil {
			return nil, bad("addAssociation end1: %v", err)
		}
		m2, err := multOf(w.End2.Mult)
		if err != nil {
			return nil, bad("addAssociation end2: %v", err)
		}
		if w.End1.Type == "" || w.End2.Type == "" {
			return nil, bad("addAssociation ends need types")
		}
		return modef.PlannedAddAssociation(edm.Association{
			Name: w.Name,
			End1: edm.End{Type: w.End1.Type, Mult: m1},
			End2: edm.End{Type: w.End2.Type, Mult: m2},
		}), nil
	case "dropEntity":
		if w.Name == "" {
			return nil, bad("dropEntity needs name")
		}
		return &core.DropEntity{Name: w.Name}, nil
	case "dropAssociation":
		if w.Name == "" {
			return nil, bad("dropAssociation needs name")
		}
		return &core.DropAssociation{Name: w.Name}, nil
	case "":
		return nil, bad("missing smo op")
	default:
		return nil, bad("unknown smo op %q", w.Op)
	}
}
