package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/store"
)

// testDaemon spins up a daemon over an httptest server.
func testDaemon(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func testContext(t *testing.T, d time.Duration) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), d)
}

func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// doJSON posts a JSON body and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encoding request: %v", err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func registerChain(t *testing.T, base, name, prefix string, n int) TenantStatus {
	t.Helper()
	var st TenantStatus
	resp := doJSON(t, "POST", base+"/v1/tenants/"+name,
		map[string]any{"workload": map[string]any{"kind": "chain", "prefix": prefix, "n": n}}, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: status %d", name, resp.StatusCode)
	}
	return st
}

func evolveAddEntity(base, tenant, name, parent string) (*http.Response, TenantStatus, error) {
	body, _ := json.Marshal(map[string]any{
		"op": "addEntity", "name": name, "parent": parent,
		"attrs": []map[string]any{{"name": "Extra", "type": "string", "nullable": true}},
	})
	resp, err := http.Post(base+"/v1/tenants/"+tenant+"/evolve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, TenantStatus{}, err
	}
	defer resp.Body.Close()
	var st TenantStatus
	if resp.StatusCode == http.StatusOK {
		_ = json.NewDecoder(resp.Body).Decode(&st)
	}
	return resp, st, nil
}

func readViews(t *testing.T, base, tenant string) (viewsResponse, int) {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/v1/tenants/"+tenant+"/views", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("read views: %v", err)
	}
	defer resp.Body.Close()
	var vr viewsResponse
	_ = json.NewDecoder(resp.Body).Decode(&vr)
	return vr, resp.StatusCode
}

func TestServerRegisterEvolveRead(t *testing.T) {
	_, ts := testDaemon(t, Options{})
	st := registerChain(t, ts.URL, "acme", "Acme", 5)
	if st.Generation != 1 || st.Stale {
		t.Fatalf("fresh tenant: generation %d stale %v", st.Generation, st.Stale)
	}

	resp, est, err := evolveAddEntity(ts.URL, "acme", "AcmeExtra", "AcmeEntity1")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("evolve: err %v status %d", err, resp.StatusCode)
	}
	if est.Generation != 2 || est.Stale {
		t.Fatalf("after evolve: generation %d stale %v", est.Generation, est.Stale)
	}

	vr, code := readViews(t, ts.URL, "acme")
	if code != http.StatusOK {
		t.Fatalf("read: status %d", code)
	}
	found := false
	for _, ty := range vr.Types {
		if ty == "AcmeExtra" {
			found = true
		}
		if !strings.HasPrefix(ty, "Acme") {
			t.Fatalf("foreign type %q served to tenant acme", ty)
		}
	}
	if !found {
		t.Fatalf("evolved type AcmeExtra not served; types: %v", vr.Types)
	}
}

func TestServerRejectsBadRegistrations(t *testing.T) {
	_, ts := testDaemon(t, Options{})
	registerChain(t, ts.URL, "dup", "Dup", 3)

	resp := doJSON(t, "POST", ts.URL+"/v1/tenants/dup",
		map[string]any{"workload": map[string]any{"kind": "chain", "prefix": "Dup", "n": 3}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/tenants/bad..name",
		map[string]any{"workload": map[string]any{"kind": "chain", "n": 3}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid name: status %d, want 400", resp.StatusCode)
	}
	resp = doJSON(t, "POST", ts.URL+"/v1/tenants/empty", map[string]any{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing model: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/v1/tenants/ghost", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", resp.StatusCode)
	}
}

// TestServerEvolveFailureServesStale drives an evolve that fails
// validation and checks the tenant degrades: the old generation keeps
// serving with an explicit staleness flag, reads stay 200, and the next
// successful evolve clears the flag.
func TestServerEvolveFailureServesStale(t *testing.T) {
	_, ts := testDaemon(t, Options{})
	registerChain(t, ts.URL, "acme", "Acme", 4)

	// Unknown parent: the planner rejects it; nothing commits.
	resp, _, err := evolveAddEntity(ts.URL, "acme", "AcmeOrphan", "NoSuchType")
	if err != nil {
		t.Fatalf("evolve: %v", err)
	}
	if resp.StatusCode/100 != 4 {
		t.Fatalf("bad evolve: status %d, want 4xx", resp.StatusCode)
	}

	vr, code := readViews(t, ts.URL, "acme")
	if code != http.StatusOK {
		t.Fatalf("read after failed evolve: status %d, want 200", code)
	}
	if !vr.Stale || vr.StaleReason == "" {
		t.Fatalf("read after failed evolve: stale %v reason %q, want flagged", vr.Stale, vr.StaleReason)
	}
	if vr.Generation != 1 {
		t.Fatalf("failed evolve moved the generation: %d", vr.Generation)
	}

	if resp, st, _ := evolveAddEntity(ts.URL, "acme", "AcmeOk", "AcmeEntity1"); resp.StatusCode != http.StatusOK || st.Stale {
		t.Fatalf("recovery evolve: status %d stale %v", resp.StatusCode, st.Stale)
	}
	if vr, _ := readViews(t, ts.URL, "acme"); vr.Stale {
		t.Fatalf("staleness not cleared by successful evolve")
	}
}

// TestServerEvolveFaultPanicIsolated injects a panic into the evolve
// worker and checks the blast radius: that evolve 500s, the tenant keeps
// serving (stale), other tenants are untouched, and the next evolve
// recovers.
func TestServerEvolveFaultPanicIsolated(t *testing.T) {
	_, ts := testDaemon(t, Options{})
	registerChain(t, ts.URL, "victim", "Vic", 4)
	registerChain(t, ts.URL, "bystander", "By", 4)

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServerHandler, Kind: faultinject.KindPanic, Nth: 1},
	}})
	resp, _, err := evolveAddEntity(ts.URL, "victim", "VicNew", "VicEntity1")
	deactivate()
	if err != nil {
		t.Fatalf("evolve: %v", err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked evolve: status %d, want 500", resp.StatusCode)
	}

	vr, code := readViews(t, ts.URL, "victim")
	if code != http.StatusOK || !vr.Stale {
		t.Fatalf("victim after panic: status %d stale %v, want 200 + stale", code, vr.Stale)
	}
	if vr, code := readViews(t, ts.URL, "bystander"); code != http.StatusOK || vr.Stale {
		t.Fatalf("bystander affected by victim's panic: status %d stale %v", code, vr.Stale)
	}
	if resp, st, _ := evolveAddEntity(ts.URL, "victim", "VicNew", "VicEntity1"); resp.StatusCode != http.StatusOK || st.Stale {
		t.Fatalf("victim did not recover: status %d stale %v", resp.StatusCode, st.Stale)
	}
}

// TestServerEvolveShedsUnderOverload fills a depth-1 queue behind a
// slowed worker and checks overload is rejected up front with 429 and a
// Retry-After hint — not absorbed into unbounded queues or 5xx.
func TestServerEvolveShedsUnderOverload(t *testing.T) {
	srv, ts := testDaemon(t, Options{QueueDepth: 1, MaxConcurrentCompiles: 1})
	registerChain(t, ts.URL, "busy", "Busy", 4)

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServerHandler, Kind: faultinject.KindDelay, Nth: 1, Every: 1, Delay: 200 * time.Millisecond},
	}})
	defer deactivate()

	const burst = 8
	codes := make(chan int, burst)
	var retryAfterSeen bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, err := evolveAddEntity(ts.URL, "busy", fmt.Sprintf("BusyNew%d", i), "BusyEntity1")
			if err != nil {
				codes <- -1
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				if resp.Header.Get("Retry-After") != "" {
					retryAfterSeen = true
				}
				mu.Unlock()
			}
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)

	var shed, ok int
	for c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			ok++
		case -1:
			t.Fatalf("transport error during burst")
		}
	}
	if shed == 0 {
		t.Fatalf("burst of %d against queue depth 1: no 429s (ok=%d)", burst, ok)
	}
	if !retryAfterSeen {
		t.Fatalf("shed responses carried no Retry-After header")
	}
	if ok == 0 {
		t.Fatalf("overload shed everything; some work should land")
	}
	if got := srv.QueueDepth(); got > 1 {
		t.Fatalf("queue depth %d exceeds bound 1", got)
	}
}

// TestServerAdmitFaultSheds drives the admission-site injection: the
// request is rejected before any compilation state exists.
func TestServerAdmitFaultSheds(t *testing.T) {
	_, ts := testDaemon(t, Options{})
	registerChain(t, ts.URL, "acme", "Acme", 4)

	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServerAdmit, Kind: faultinject.KindError, Nth: 1},
	}})
	defer deactivate()

	resp, _, err := evolveAddEntity(ts.URL, "acme", "AcmeNew", "AcmeEntity1")
	if err != nil {
		t.Fatalf("evolve: %v", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("admission fault: status %d, want 429", resp.StatusCode)
	}
	if faultinject.Fired() == 0 {
		t.Fatalf("admission rule never fired")
	}
	// The shed evolve left no queue residue; the tenant still works.
	if resp, _, _ := evolveAddEntity(ts.URL, "acme", "AcmeNew", "AcmeEntity1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed evolve: status %d", resp.StatusCode)
	}
}

// TestServerDrainLifecycle checks the readiness flip, rejection of new
// work, and the idempotence of Drain.
func TestServerDrainLifecycle(t *testing.T) {
	srv, ts := testDaemon(t, Options{})
	registerChain(t, ts.URL, "acme", "Acme", 4)

	if resp := doJSON(t, "GET", ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	ctx, cancel := testContext(t, 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	if resp := doJSON(t, "GET", ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %d, want 200 (process still alive)", resp.StatusCode)
	}
	if resp, _, _ := evolveAddEntity(ts.URL, "acme", "AcmeNew", "AcmeEntity1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("evolve after drain: status %d, want 503", resp.StatusCode)
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/tenants/late",
		map[string]any{"workload": map[string]any{"kind": "chain", "n": 3}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register after drain: status %d, want 503", resp.StatusCode)
	}
	// Reads still serve the committed generation during/after drain.
	if vr, code := readViews(t, ts.URL, "acme"); code != http.StatusOK || vr.Generation != 1 {
		t.Fatalf("read after drain: status %d generation %d", code, vr.Generation)
	}
}

// TestServerRestartWarmStartsTenants registers and evolves tenants, drains,
// then builds a second daemon over the same store and checks every tenant
// comes back at its committed generation without recompiling.
func TestServerRestartWarmStartsTenants(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testDaemon(t, Options{Store: testStore(t, dir), WriteBehind: true})
	registerChain(t, ts.URL, "acme", "Acme", 4)
	registerChain(t, ts.URL, "globex", "Glo", 4)
	if resp, st, _ := evolveAddEntity(ts.URL, "acme", "AcmeNew", "AcmeEntity1"); resp.StatusCode != http.StatusOK || st.Generation != 2 {
		t.Fatalf("evolve acme: status %d gen %d", resp.StatusCode, st.Generation)
	}
	ctx, cancel := testContext(t, 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	srv2, ts2 := testDaemon(t, Options{Store: testStore(t, dir)})
	if got := srv2.Restored(); got != 2 {
		t.Fatalf("restored %d tenants, want 2", got)
	}
	vr, code := readViews(t, ts2.URL, "acme")
	if code != http.StatusOK || vr.Generation != 2 || vr.Stale {
		t.Fatalf("restored acme: status %d generation %d stale %v, want 200/2/false", code, vr.Generation, vr.Stale)
	}
	foundEvolved := false
	for _, ty := range vr.Types {
		if ty == "AcmeNew" {
			foundEvolved = true
		}
	}
	if !foundEvolved {
		t.Fatalf("restored acme lost its evolved type; types: %v", vr.Types)
	}
	if vr, code := readViews(t, ts2.URL, "globex"); code != http.StatusOK || vr.Generation != 1 {
		t.Fatalf("restored globex: status %d generation %d", code, vr.Generation)
	}
	// The restored tenant evolves normally.
	if resp, st, _ := evolveAddEntity(ts2.URL, "acme", "AcmeNew2", "AcmeEntity1"); resp.StatusCode != http.StatusOK || st.Generation != 3 {
		t.Fatalf("evolve restored acme: status %d gen %d", resp.StatusCode, st.Generation)
	}
}

// TestServerFaultDamagedStoreDegradesToCold corrupts a tenant's
// generation record between daemon lifetimes: the restarted daemon must
// skip the tenant (no partial serve) and a re-registration must compile
// cold and succeed.
func TestServerFaultDamagedStoreDegradesToCold(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testDaemon(t, Options{Store: testStore(t, dir)})
	registerChain(t, ts.URL, "acme", "Acme", 4)
	ctx, cancel := testContext(t, 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	gens, err := filepath.Glob(filepath.Join(dir, "gen-*.json"))
	if err != nil || len(gens) == 0 {
		t.Fatalf("no generation records persisted: %v", err)
	}
	for _, g := range gens {
		if err := os.WriteFile(g, []byte("torn"), 0o644); err != nil {
			t.Fatalf("corrupting %s: %v", g, err)
		}
	}

	srv2, ts2 := testDaemon(t, Options{Store: testStore(t, dir)})
	if got := srv2.Restored(); got != 0 {
		t.Fatalf("restored %d tenants from a damaged store, want 0", got)
	}
	if _, code := readViews(t, ts2.URL, "acme"); code != http.StatusNotFound {
		t.Fatalf("damaged tenant served: status %d, want 404", code)
	}
	st := registerChain(t, ts2.URL, "acme", "Acme", 4)
	if st.WarmStart {
		t.Fatalf("re-registration warm-started from a damaged record")
	}
	if _, code := readViews(t, ts2.URL, "acme"); code != http.StatusOK {
		t.Fatalf("cold re-registration not serving: status %d", code)
	}
}

func TestWireSMODecode(t *testing.T) {
	cases := []struct {
		name string
		in   WireSMO
		ok   bool
	}{
		{"addEntity", WireSMO{Op: "addEntity", Name: "E", Parent: "P"}, true},
		{"addEntityNoParent", WireSMO{Op: "addEntity", Name: "E"}, false},
		{"addEntityBadAttr", WireSMO{Op: "addEntity", Name: "E", Parent: "P", Attrs: []WireAttr{{Name: "A", Type: "blob"}}}, false},
		{"addProperty", WireSMO{Op: "addProperty", Type: "E", Attr: &WireAttr{Name: "A", Type: "int"}, Table: "T", Col: "C"}, true},
		{"addPropertyIncomplete", WireSMO{Op: "addProperty", Type: "E"}, false},
		{"addAssociation", WireSMO{Op: "addAssociation", Name: "R", End1: &WireEnd{Type: "A", Mult: "*"}, End2: &WireEnd{Type: "B", Mult: "0..1"}}, true},
		{"addAssociationBadMult", WireSMO{Op: "addAssociation", Name: "R", End1: &WireEnd{Type: "A", Mult: "2"}, End2: &WireEnd{Type: "B", Mult: "1"}}, false},
		{"dropEntity", WireSMO{Op: "dropEntity", Name: "E"}, true},
		{"dropAssociation", WireSMO{Op: "dropAssociation", Name: "R"}, true},
		{"unknown", WireSMO{Op: "transmogrify"}, false},
		{"empty", WireSMO{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			op, err := tc.in.ToSMO()
			if tc.ok && (err != nil || op == nil) {
				t.Fatalf("ToSMO: unexpected error %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("ToSMO: error expected")
				}
				if err.status != http.StatusBadRequest {
					t.Fatalf("ToSMO: status %d, want 400", err.status)
				}
			}
		})
	}
}
