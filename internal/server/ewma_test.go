package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The admission queue's Retry-After hints come from an EWMA (α = 1/4) of
// recent evolve durations. These tests pin the estimator's contract: the
// estimate tracks load ramps monotonically, projected waits scale with
// queue position, and the Retry-After header a shed response carries
// matches the estimate within the header's whole-second resolution.

// ewmaTenant registers a chain tenant and hands back its internal struct.
func ewmaTenant(t *testing.T, opts Options) (*Server, *httptest.Server, *tenant) {
	t.Helper()
	srv, ts := testDaemon(t, opts)
	registerChain(t, ts.URL, "ew", "ew", 2)
	tn, ok := srv.lookup("ew")
	if !ok {
		t.Fatal("registered tenant not found")
	}
	return srv, ts, tn
}

// TestEWMAMonotoneUnderRamps: a rising sequence of observed durations
// never lowers the estimate, a falling sequence never raises it, and a
// constant load converges to that constant.
func TestEWMAMonotoneUnderRamps(t *testing.T) {
	_, _, tn := ewmaTenant(t, Options{})

	// Rising ramp: 10ms, 20ms, ..., 200ms.
	var prev time.Duration
	for d := 10 * time.Millisecond; d <= 200*time.Millisecond; d += 10 * time.Millisecond {
		tn.observeDuration(d)
		got, ok := tn.estimatedWait(1)
		if !ok {
			t.Fatal("no estimate after an observation")
		}
		if got < prev {
			t.Fatalf("estimate fell on a rising ramp: %v -> %v (observed %v)", prev, got, d)
		}
		if got > d {
			t.Fatalf("estimate %v overshot the largest observation %v", got, d)
		}
		prev = got
	}

	// Falling ramp back down to 10ms: each update moves the estimate
	// toward the observation and never past it (betweenness) — once the
	// observations drop below the estimate, the estimate only falls.
	for d := 200 * time.Millisecond; d >= 10*time.Millisecond; d -= 10 * time.Millisecond {
		tn.observeDuration(d)
		got, _ := tn.estimatedWait(1)
		lo, hi := prev, d
		if d < prev {
			lo, hi = d, prev
		}
		if got < lo || got > hi {
			t.Fatalf("estimate %v left the [old, observed] envelope [%v, %v]", got, lo, hi)
		}
		if d < prev && got > prev {
			t.Fatalf("estimate rose while observations were below it: %v -> %v (observed %v)", prev, got, d)
		}
		prev = got
	}

	// Constant load converges: after enough samples the estimate sits
	// within 5%% of the observed duration (α=1/4 halves the error every
	// ~2.4 samples).
	const target = 80 * time.Millisecond
	for i := 0; i < 32; i++ {
		tn.observeDuration(target)
	}
	got, _ := tn.estimatedWait(1)
	if diff := math.Abs(float64(got - target)); diff > 0.05*float64(target) {
		t.Fatalf("estimate %v did not converge to %v under constant load", got, target)
	}
}

// TestEWMAWaitScalesWithQueuePosition: the projected wait for n queued
// evolves is n times the per-evolve estimate — monotone and linear in n.
func TestEWMAWaitScalesWithQueuePosition(t *testing.T) {
	_, _, tn := ewmaTenant(t, Options{})
	if _, ok := tn.estimatedWait(3); ok {
		t.Fatal("estimate exists before any completed evolve (registration chain evolves should not count)")
	}
	tn.observeDuration(50 * time.Millisecond)
	var prev time.Duration
	for n := 1; n <= 8; n++ {
		got, ok := tn.estimatedWait(n)
		if !ok {
			t.Fatalf("no estimate at position %d", n)
		}
		if got <= prev {
			t.Fatalf("wait not monotone in queue position: n=%d %v after %v", n, got, prev)
		}
		if want := time.Duration(n) * tn.retryAfterUnit(); got != want {
			t.Fatalf("wait at position %d = %v, want %v", n, got, want)
		}
		prev = got
	}
}

// retryAfterUnit exposes the per-slot estimate for the linearity check.
func (t *tenant) retryAfterUnit() time.Duration {
	d, _ := t.estimatedWait(1)
	return d
}

// TestRetryAfterHeaderMatchesEstimate: a request whose deadline the
// estimated wait exceeds is shed with 429, and the Retry-After header
// equals the estimate truncated to whole seconds (within the header's 1s
// resolution).
func TestRetryAfterHeaderMatchesEstimate(t *testing.T) {
	_, ts, tn := ewmaTenant(t, Options{})

	// Pin the EWMA near 3s: admission projects a 3s wait for the next
	// evolve, far beyond the 50ms deadline the request will carry.
	for i := 0; i < 64; i++ {
		tn.observeDuration(3 * time.Second)
	}
	est, ok := tn.estimatedWait(1)
	if !ok || est < 2*time.Second {
		t.Fatalf("estimate %v (ok=%v) not pinned near 3s", est, ok)
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/tenants/ew/evolve",
		strings.NewReader(`{"op":"addEntity","name":"ewShed","parent":"ewEntity1","timeoutMs":50}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (deadline-exceeding wait must shed)", resp.StatusCode)
	}
	header := resp.Header.Get("Retry-After")
	if header == "" {
		t.Fatal("shed response carried no Retry-After header")
	}
	secs, err := strconv.ParseInt(header, 10, 64)
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", header, err)
	}
	// The handler truncates to whole seconds and floors at 1; the estimate
	// may drift by concurrent observations, so allow 1s of tolerance.
	want := int64(est / time.Second)
	if want < 1 {
		want = 1
	}
	if diff := secs - want; diff < -1 || diff > 1 {
		t.Fatalf("Retry-After %ds does not match estimate %v (want about %ds)", secs, est, want)
	}

	// The shed is overload accounting, not an auth or error outcome.
	st := tenantStatus(t, ts.URL, "ew")
	if st.Shed == 0 {
		t.Fatal("deadline shed not counted in the tenant's shed counter")
	}
	if st.Stale {
		t.Fatal("a shed request must not mark the tenant stale")
	}
}

// TestRetryAfterHeaderEncoding: the header encoder truncates the estimate
// to whole seconds, floors at one second, and scales with the queue depth
// it is quoted for — the full-queue shed quotes the whole queue's drain.
func TestRetryAfterHeaderEncoding(t *testing.T) {
	_, _, tn := ewmaTenant(t, Options{})
	for i := 0; i < 64; i++ {
		tn.observeDuration(1500 * time.Millisecond)
	}
	for _, n := range []int{1, 2, 4, 8} {
		rec := httptest.NewRecorder()
		writeErrorWithStatus(rec, &apiError{
			status: http.StatusTooManyRequests, msg: "queue full", retryAfter: tn.retryAfter(n),
		}, nil)
		secs, err := strconv.ParseInt(rec.Header().Get("Retry-After"), 10, 64)
		if err != nil {
			t.Fatalf("n=%d Retry-After %q: %v", n, rec.Header().Get("Retry-After"), err)
		}
		est, _ := tn.estimatedWait(n)
		want := int64(est / time.Second)
		if want < 1 {
			want = 1
		}
		if diff := secs - want; diff < -1 || diff > 1 {
			t.Fatalf("n=%d Retry-After %ds, estimate %v (about %ds)", n, secs, est, want)
		}
	}

	// A sub-second estimate still floors the header at 1s — the HTTP
	// header has whole-second resolution and 0 would mean "retry now".
	tiny := &tenant{}
	tiny.evolveEWMA.Store(int64(5 * time.Millisecond))
	rec := httptest.NewRecorder()
	writeErrorWithStatus(rec, &apiError{
		status: http.StatusTooManyRequests, msg: "queue full", retryAfter: tiny.retryAfter(1),
	}, nil)
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("sub-second estimate encoded Retry-After %q, want 1", got)
	}
}
