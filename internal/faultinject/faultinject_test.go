package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFaultPlanNthFiresOnce(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{{Site: SiteContainment, Kind: KindError, Nth: 3}}})
	defer deactivate()
	var fired []int
	for i := 1; i <= 6; i++ {
		if err := At(SiteContainment); err != nil {
			fired = append(fired, i)
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("visit %d: got %T, want *InjectedError", i, err)
			}
			if ie.Site != SiteContainment || ie.Visit != 3 {
				t.Fatalf("visit %d: got %+v", i, ie)
			}
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at visits %v, want [3]", fired)
	}
	if Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", Fired())
	}
}

func TestFaultPlanEveryIsPeriodic(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{{Site: SiteWorker, Kind: KindError, Nth: 2, Every: 3}}})
	defer deactivate()
	var fired []int
	for i := 1; i <= 12; i++ {
		if At(SiteWorker) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 5, 8, 11}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestFaultPlanSeedShiftsSchedule(t *testing.T) {
	// A seed of 2 makes the counter start at visit 3, so an Nth=4 rule
	// fires on the second physical call: the same plan replayed with the
	// same seed fires at the same place, which is what makes injection
	// schedules reproducible.
	deactivate := Activate(Plan{Seed: 2, Rules: []Rule{{Site: SiteSatCache, Kind: KindError, Nth: 4}}})
	defer deactivate()
	if At(SiteSatCache) != nil {
		t.Fatal("first call fired, want quiet (visit 3)")
	}
	if At(SiteSatCache) == nil {
		t.Fatal("second call quiet, want fire (visit 4)")
	}
}

func TestFaultPanicKindPanicsWithTypedValue(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{{Site: SiteWorker, Kind: KindPanic, Nth: 1}}})
	defer deactivate()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("panic value %T, want InjectedPanic", r)
		}
		if ip.Site != SiteWorker || ip.Visit != 1 {
			t.Fatalf("panic value %+v", ip)
		}
	}()
	_ = At(SiteWorker)
}

func TestFaultDelayKindSleeps(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{{Site: SiteWorker, Kind: KindDelay, Nth: 1, Delay: 20 * time.Millisecond}}})
	defer deactivate()
	start := time.Now()
	if err := At(SiteWorker); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms", d)
	}
}

func TestFaultInactiveIsNoop(t *testing.T) {
	if err := At(SiteContainment); err != nil {
		t.Fatalf("inactive At returned %v", err)
	}
}

func TestFaultDoubleActivatePanics(t *testing.T) {
	deactivate := Activate(Plan{})
	defer deactivate()
	defer func() {
		if recover() == nil {
			t.Fatal("second Activate did not panic")
		}
	}()
	Activate(Plan{})
}

func TestFaultDeactivateResetsCounters(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{{Site: SiteWorker, Kind: KindError, Nth: 1}}})
	if At(SiteWorker) == nil {
		t.Fatal("want fire on first visit")
	}
	deactivate()
	deactivate2 := Activate(Plan{Rules: []Rule{{Site: SiteWorker, Kind: KindError, Nth: 1}}})
	defer deactivate2()
	if At(SiteWorker) == nil {
		t.Fatal("want fire on first visit of the new plan")
	}
}

func TestFaultCorruptKindIsTyped(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{{Site: SiteStoreSave, Kind: KindCorrupt, Nth: 1}}})
	defer deactivate()
	err := At(SiteStoreSave)
	if err == nil {
		t.Fatal("want a corrupt injection on first visit")
	}
	if !IsCorrupt(err) {
		t.Fatalf("IsCorrupt(%v) = false, want true", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Corrupt || ie.Site != SiteStoreSave {
		t.Fatalf("got %+v, want a Corrupt InjectedError at %s", ie, SiteStoreSave)
	}
	// A plain KindError is never a corruption.
	if IsCorrupt(&InjectedError{Site: SiteStoreSave, Visit: 2}) {
		t.Fatal("plain injected error misreported as corrupt")
	}
	if IsCorrupt(nil) {
		t.Fatal("nil misreported as corrupt")
	}
}

func TestFaultServerSitesAreHookable(t *testing.T) {
	deactivate := Activate(Plan{Rules: []Rule{
		{Site: SiteServerAdmit, Kind: KindError, Nth: 1},
		{Site: SiteServerHandler, Kind: KindError, Nth: 1},
		{Site: SiteSessionPersist, Kind: KindError, Nth: 1},
	}})
	defer deactivate()
	for _, site := range []string{SiteServerAdmit, SiteServerHandler, SiteSessionPersist} {
		if At(site) == nil {
			t.Fatalf("site %s did not fire", site)
		}
	}
	if Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", Fired())
	}
}
