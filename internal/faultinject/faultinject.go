// Package faultinject provides deterministic, test-only fault injection
// for the compilation pipeline. Production code calls At(site) at a small
// number of hook points — the satisfiability cache, the containment
// checker, and the validation worker pool — and the call is a single
// atomic load (returning nil) unless a test has activated a Plan.
//
// A Plan is a list of Rules. Each rule matches one site (or every site)
// and fires deterministically, by visit count: the Nth visit of the site,
// and optionally every Every visits after that. Seed offsets the visit
// counters, so one matrix test can drive many distinct deterministic
// schedules without changing the rules. Three fault kinds cover the
// failure modes the fallback ladder must survive:
//
//   - KindPanic panics at the hook point (exercising worker panic
//     isolation and the pipeline's full-compile fallback),
//   - KindDelay sleeps, simulating a slow decision procedure (exercising
//     deadlines and wall-time budgets),
//   - KindError returns a spurious error from sites that can propagate
//     one (exercising typed-error paths; sites that cannot return errors
//     ignore it).
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

// The injectable fault kinds.
const (
	KindPanic Kind = iota
	KindDelay
	KindError
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Hook-point names. Hook points are intentionally few and stable; tests
// reference them by these constants.
const (
	// SiteSatCache fires on every satisfiability-cache lookup (full and
	// incremental validation both decide through the cache).
	SiteSatCache = "satcache.lookup"
	// SiteContainment fires on every containment check.
	SiteContainment = "containment.contains"
	// SiteWorker fires each time a validation worker picks up a task.
	SiteWorker = "compiler.worker"
)

// Rule fires a fault at a site by deterministic visit count.
type Rule struct {
	// Site is the hook point the rule matches; "" matches every site.
	Site string
	// Kind is the fault to inject.
	Kind Kind
	// Nth is the 1-based visit count (per site, seed-offset) on which the
	// rule first fires. 0 means the first visit.
	Nth int64
	// Every, when positive, re-fires the rule every Every visits after
	// Nth. 0 fires exactly once.
	Every int64
	// Delay is the sleep duration for KindDelay rules.
	Delay time.Duration
}

// Plan is an activated injection schedule.
type Plan struct {
	// Seed deterministically offsets every site's visit counter, shifting
	// which concrete call each rule hits without changing the rules.
	Seed int64
	// Rules are evaluated in order at each visit; every matching due rule
	// fires (delays sleep, then a panic or error preempts later rules).
	Rules []Rule
}

// InjectedError is the spurious error KindError rules return. It is typed
// so tests can assert that an injected error propagated (and was not
// misclassified as a validation verdict).
type InjectedError struct {
	Site  string
	Visit int64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s (visit %d)", e.Site, e.Visit)
}

// InjectedPanic is the value KindPanic rules panic with, so recovery
// paths can tag it distinctly from genuine bugs in tests.
type InjectedPanic struct {
	Site  string
	Visit int64
}

// String implements fmt.Stringer.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (visit %d)", p.Site, p.Visit)
}

// active holds the running plan; nil when injection is off (the common
// case, making At a single atomic pointer load).
var active atomic.Pointer[planState]

type planState struct {
	plan   Plan
	mu     sync.Mutex
	visits map[string]int64
	fired  atomic.Int64
}

// Activate installs a plan and returns a deactivation function. Only one
// plan can be active at a time; tests must call the returned function
// (typically via t.Cleanup) before activating another.
func Activate(p Plan) (deactivate func()) {
	st := &planState{plan: p, visits: map[string]int64{}}
	if !active.CompareAndSwap(nil, st) {
		panic("faultinject: a plan is already active")
	}
	return func() { active.CompareAndSwap(st, nil) }
}

// Fired reports how many faults the active plan has injected so far
// (0 when no plan is active). Tests use it to assert a schedule actually
// triggered.
func Fired() int64 {
	st := active.Load()
	if st == nil {
		return 0
	}
	return st.fired.Load()
}

// At is the hook point. It returns nil (after an optional injected delay)
// unless a due KindError rule matches, and panics for a due KindPanic
// rule. Call sites that cannot propagate an error may ignore the result;
// panics and delays still take effect there.
func At(site string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	st.visits[site]++
	visit := st.visits[site] + st.plan.Seed
	var due []Rule
	for _, r := range st.plan.Rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if visit == nth || (r.Every > 0 && visit > nth && (visit-nth)%r.Every == 0) {
			due = append(due, r)
		}
	}
	st.mu.Unlock()

	for _, r := range due {
		st.fired.Add(1)
		switch r.Kind {
		case KindDelay:
			time.Sleep(r.Delay)
		case KindPanic:
			panic(InjectedPanic{Site: site, Visit: visit})
		case KindError:
			return &InjectedError{Site: site, Visit: visit}
		}
	}
	return nil
}
