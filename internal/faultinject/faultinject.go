// Package faultinject provides deterministic, test-only fault injection
// for the compilation pipeline. Production code calls At(site) at a small
// number of hook points — the satisfiability cache, the containment
// checker, and the validation worker pool — and the call is a single
// atomic load (returning nil) unless a test has activated a Plan.
//
// A Plan is a list of Rules. Each rule matches one site (or every site)
// and fires deterministically, by visit count: the Nth visit of the site,
// and optionally every Every visits after that. Seed offsets the visit
// counters, so one matrix test can drive many distinct deterministic
// schedules without changing the rules. Three fault kinds cover the
// failure modes the fallback ladder must survive:
//
//   - KindPanic panics at the hook point (exercising worker panic
//     isolation and the pipeline's full-compile fallback),
//   - KindDelay sleeps, simulating a slow decision procedure (exercising
//     deadlines and wall-time budgets),
//   - KindError returns a spurious error from sites that can propagate
//     one (exercising typed-error paths; sites that cannot return errors
//     ignore it),
//   - KindCorrupt returns an InjectedError with Corrupt set; sites that
//     write data (store.save) respond by persisting a deliberately
//     truncated record — a deterministic stand-in for a short write or
//     ENOSPC-torn file — while sites without a corruption response treat
//     it like KindError.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

// The injectable fault kinds.
const (
	KindPanic Kind = iota
	KindDelay
	KindError
	KindCorrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Hook-point names. Hook points are intentionally few and stable; tests
// reference them by these constants.
const (
	// SiteSatCache fires on every satisfiability-cache lookup (full and
	// incremental validation both decide through the cache).
	SiteSatCache = "satcache.lookup"
	// SiteContainment fires on every containment check.
	SiteContainment = "containment.contains"
	// SiteWorker fires each time a validation worker picks up a task.
	SiteWorker = "compiler.worker"
	// SiteStoreSave fires inside every persistent-store record write
	// (generations, SatCache snapshots, manifests). KindError simulates an
	// I/O failure (ENOSPC); KindCorrupt makes the store persist a
	// truncated record, exercising the checksum-rejects-then-cold-compile
	// path on the next load.
	SiteStoreSave = "store.save"
	// SiteStoreLoad fires inside every persistent-store record read.
	SiteStoreLoad = "store.load"
	// SiteSessionPersist fires at the top of a Session's snapshot persist
	// (before the store is touched), on both the inline and the
	// write-behind path.
	SiteSessionPersist = "session.persist"
	// SiteServerAdmit fires in the mapping daemon's admission check,
	// before a request is enqueued. KindError sheds the request.
	SiteServerAdmit = "server.admit"
	// SiteServerHandler fires inside the daemon's evolve worker as it
	// picks up an admitted job; KindPanic exercises handler panic
	// isolation (the tenant must keep serving its last generation).
	SiteServerHandler = "server.handler"
	// SiteRolloutGate fires at every rollout health-gate evaluation
	// (canary, pre-cutover and post-cutover). KindError forces a gate
	// failure, exercising the automatic-rollback path; KindPanic must be
	// contained by the rollout worker like any other panic.
	SiteRolloutGate = "rollout.gate"
	// SiteBackfillBatch fires once per backfill batch before the batch is
	// transformed and checkpointed. KindError exercises the batch
	// retry/backoff ladder; KindPanic aborts the rollout (rollback);
	// combined with SiteStoreSave KindCorrupt it produces torn checkpoint
	// records the resume path must reject and re-run.
	SiteBackfillBatch = "backfill.batch"
	// SiteExecScan fires once per batch pulled by a streaming-executor
	// table scan, before the batch is read from the table store. KindError
	// surfaces as a typed *exec.OpError from the iterator mid-stream; the
	// store underneath must stay intact and every operator in the tree
	// must still release cleanly.
	SiteExecScan = "exec.scan"
)

// Rule fires a fault at a site by deterministic visit count.
type Rule struct {
	// Site is the hook point the rule matches; "" matches every site.
	Site string
	// Kind is the fault to inject.
	Kind Kind
	// Nth is the 1-based visit count (per site, seed-offset) on which the
	// rule first fires. 0 means the first visit.
	Nth int64
	// Every, when positive, re-fires the rule every Every visits after
	// Nth. 0 fires exactly once.
	Every int64
	// Delay is the sleep duration for KindDelay rules.
	Delay time.Duration
}

// Plan is an activated injection schedule.
type Plan struct {
	// Seed deterministically offsets every site's visit counter, shifting
	// which concrete call each rule hits without changing the rules.
	Seed int64
	// Rules are evaluated in order at each visit; every matching due rule
	// fires (delays sleep, then a panic or error preempts later rules).
	Rules []Rule
}

// InjectedError is the spurious error KindError rules return. It is typed
// so tests can assert that an injected error propagated (and was not
// misclassified as a validation verdict).
type InjectedError struct {
	Site  string
	Visit int64
	// Corrupt marks the error as a KindCorrupt injection: sites that can
	// simulate a torn write (deliberately persisting a truncated record)
	// do so and report success; everyone else treats it as a plain error.
	Corrupt bool
}

// Error implements error.
func (e *InjectedError) Error() string {
	if e.Corrupt {
		return fmt.Sprintf("faultinject: injected short write at %s (visit %d)", e.Site, e.Visit)
	}
	return fmt.Sprintf("faultinject: injected error at %s (visit %d)", e.Site, e.Visit)
}

// IsCorrupt reports whether err is a KindCorrupt injection.
func IsCorrupt(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie) && ie.Corrupt
}

// InjectedPanic is the value KindPanic rules panic with, so recovery
// paths can tag it distinctly from genuine bugs in tests.
type InjectedPanic struct {
	Site  string
	Visit int64
}

// String implements fmt.Stringer.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (visit %d)", p.Site, p.Visit)
}

// active holds the running plan; nil when injection is off (the common
// case, making At a single atomic pointer load).
var active atomic.Pointer[planState]

type planState struct {
	plan   Plan
	mu     sync.Mutex
	visits map[string]int64
	fired  atomic.Int64
}

// Activate installs a plan and returns a deactivation function. Only one
// plan can be active at a time; tests must call the returned function
// (typically via t.Cleanup) before activating another.
func Activate(p Plan) (deactivate func()) {
	st := &planState{plan: p, visits: map[string]int64{}}
	if !active.CompareAndSwap(nil, st) {
		panic("faultinject: a plan is already active")
	}
	return func() { active.CompareAndSwap(st, nil) }
}

// Fired reports how many faults the active plan has injected so far
// (0 when no plan is active). Tests use it to assert a schedule actually
// triggered.
func Fired() int64 {
	st := active.Load()
	if st == nil {
		return 0
	}
	return st.fired.Load()
}

// At is the hook point. It returns nil (after an optional injected delay)
// unless a due KindError rule matches, and panics for a due KindPanic
// rule. Call sites that cannot propagate an error may ignore the result;
// panics and delays still take effect there.
func At(site string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	st.visits[site]++
	visit := st.visits[site] + st.plan.Seed
	var due []Rule
	for _, r := range st.plan.Rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if visit == nth || (r.Every > 0 && visit > nth && (visit-nth)%r.Every == 0) {
			due = append(due, r)
		}
	}
	st.mu.Unlock()

	for _, r := range due {
		st.fired.Add(1)
		switch r.Kind {
		case KindDelay:
			time.Sleep(r.Delay)
		case KindPanic:
			panic(InjectedPanic{Site: site, Visit: visit})
		case KindError:
			return &InjectedError{Site: site, Visit: visit}
		case KindCorrupt:
			return &InjectedError{Site: site, Visit: visit, Corrupt: true}
		}
	}
	return nil
}
