// Package sqlgen renders store schemas and compiled query views as ANSI
// SQL. It is the deployment-facing face of the compiler: the DDL a
// database needs for the store schema, and the SELECT statements a real
// relational backend would execute for each compiled query view (Entity
// Framework embeds the equivalent Entity SQL in its generated views file,
// per §4.1 of the paper).
//
// Only queries over tables can be rendered — query views qualify; update
// views range over client entity sets and stay inside the ORM runtime.
package sqlgen

import (
	"fmt"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/rel"
)

// DDL renders CREATE TABLE statements (with primary and foreign keys) for
// every table of a store schema, in declaration order.
func DDL(s *rel.Schema) string {
	var b strings.Builder
	for i, t := range s.Tables() {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", quoteIdent(t.Name))
		for _, c := range t.Cols {
			fmt.Fprintf(&b, "  %s %s", quoteIdent(c.Name), sqlType(c.Type))
			if !c.Nullable {
				b.WriteString(" NOT NULL")
			}
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  PRIMARY KEY (%s)", identList(t.Key))
		for _, fk := range t.FKs {
			fmt.Fprintf(&b, ",\n  CONSTRAINT %s FOREIGN KEY (%s) REFERENCES %s (%s)",
				quoteIdent(fk.Name), identList(fk.Cols), quoteIdent(fk.RefTable), identList(fk.RefCols))
		}
		b.WriteString("\n);\n")
	}
	return b.String()
}

func sqlType(k cond.Kind) string {
	switch k {
	case cond.KindString:
		return "VARCHAR(255)"
	case cond.KindInt:
		return "BIGINT"
	case cond.KindFloat:
		return "DOUBLE PRECISION"
	case cond.KindBool:
		return "BOOLEAN"
	}
	return "VARCHAR(255)"
}

func quoteIdent(s string) string {
	// Provenance flags and type tags carry leading underscores; quote
	// anything that is not a plain identifier.
	plain := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r == '_' && i > 0, r >= '0' && r <= '9' && i > 0:
		default:
			plain = false
		}
	}
	if plain && s != "" {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func identList(cols []string) string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = quoteIdent(c)
	}
	return strings.Join(out, ", ")
}

// Query renders a query tree over tables as an ANSI SQL SELECT. Trees that
// scan client entity sets or association sets (update views) cannot be
// rendered and return an error.
func Query(cat *cqt.Catalog, e cqt.Expr) (string, error) {
	g := &generator{cat: cat}
	sql, err := g.render(e, 0)
	if err != nil {
		return "", err
	}
	return sql + ";", nil
}

type generator struct {
	cat  *cqt.Catalog
	next int
}

func (g *generator) alias() string {
	g.next++
	return fmt.Sprintf("t%d", g.next)
}

func (g *generator) render(e cqt.Expr, depth int) (string, error) {
	ind := strings.Repeat("  ", depth)
	switch v := e.(type) {
	case cqt.ScanTable:
		t := g.cat.Store.Table(v.Table)
		if t == nil {
			return "", fmt.Errorf("sqlgen: unknown table %q", v.Table)
		}
		return fmt.Sprintf("%sSELECT %s FROM %s", ind, identList(t.ColNames()), quoteIdent(v.Table)), nil

	case cqt.ScanSet, cqt.ScanAssoc:
		return "", fmt.Errorf("sqlgen: %T ranges over client data and has no SQL form", e)

	case cqt.Select:
		inner, err := g.render(v.In, depth+1)
		if err != nil {
			return "", err
		}
		a := g.alias()
		return fmt.Sprintf("%sSELECT * FROM (\n%s\n%s) AS %s WHERE %s",
			ind, inner, ind, a, condSQL(v.Cond)), nil

	case cqt.Project:
		inner, err := g.render(v.In, depth+1)
		if err != nil {
			return "", err
		}
		a := g.alias()
		items := make([]string, len(v.Cols))
		for i, pc := range v.Cols {
			items[i] = projSQL(pc)
		}
		return fmt.Sprintf("%sSELECT %s FROM (\n%s\n%s) AS %s",
			ind, strings.Join(items, ", "), inner, ind, a), nil

	case cqt.Join:
		return g.renderJoin(v, depth)

	case cqt.UnionAll:
		cols, err := g.cat.Cols(e)
		if err != nil {
			return "", err
		}
		parts := make([]string, 0, len(v.Inputs))
		for _, in := range v.Inputs {
			inner, err := g.render(in, depth+1)
			if err != nil {
				return "", err
			}
			a := g.alias()
			// SQL unions are positional: align every branch to the shared
			// column order explicitly.
			parts = append(parts, fmt.Sprintf("%sSELECT %s FROM (\n%s\n%s) AS %s",
				ind, identList(cols), inner, ind, a))
		}
		return strings.Join(parts, fmt.Sprintf("\n%sUNION ALL\n", ind)), nil
	}
	return "", fmt.Errorf("sqlgen: unsupported expression %T", e)
}

func projSQL(pc cqt.ProjCol) string {
	if pc.Lit != nil {
		if pc.Lit.Null {
			return fmt.Sprintf("CAST(NULL AS %s) AS %s", sqlType(pc.Lit.Kind), quoteIdent(pc.As))
		}
		return fmt.Sprintf("%s AS %s", pc.Lit.Val, quoteIdent(pc.As))
	}
	if pc.Src == pc.As {
		return quoteIdent(pc.As)
	}
	return fmt.Sprintf("%s AS %s", quoteIdent(pc.Src), quoteIdent(pc.As))
}

func (g *generator) renderJoin(j cqt.Join, depth int) (string, error) {
	ind := strings.Repeat("  ", depth)
	left, err := g.render(j.L, depth+1)
	if err != nil {
		return "", err
	}
	right, err := g.render(j.R, depth+1)
	if err != nil {
		return "", err
	}
	la, ra := g.alias(), g.alias()
	lcols, err := g.cat.Cols(j.L)
	if err != nil {
		return "", err
	}
	rcols, err := g.cat.Cols(j.R)
	if err != nil {
		return "", err
	}

	inLeft := map[string]bool{}
	for _, c := range lcols {
		inLeft[c] = true
	}
	onRight := map[string]string{} // right col equated to a left col
	var on []string
	for _, p := range j.On {
		on = append(on, fmt.Sprintf("%s.%s = %s.%s", la, quoteIdent(p[0]), ra, quoteIdent(p[1])))
		onRight[p[1]] = p[0]
	}

	// Output columns: left columns first; shared columns are coalesced for
	// full outer joins (either side may be NULL-padded).
	var items []string
	for _, c := range lcols {
		if j.Kind == cqt.FullOuter {
			if rc, shared := sharedJoinCol(c, j.On); shared {
				items = append(items, fmt.Sprintf("COALESCE(%s.%s, %s.%s) AS %s",
					la, quoteIdent(c), ra, quoteIdent(rc), quoteIdent(c)))
				continue
			}
		}
		items = append(items, fmt.Sprintf("%s.%s AS %s", la, quoteIdent(c), quoteIdent(c)))
	}
	for _, c := range rcols {
		if inLeft[c] {
			continue // merged join column, already emitted from the left
		}
		items = append(items, fmt.Sprintf("%s.%s AS %s", ra, quoteIdent(c), quoteIdent(c)))
	}

	kind := "INNER JOIN"
	switch j.Kind {
	case cqt.LeftOuter:
		kind = "LEFT OUTER JOIN"
	case cqt.FullOuter:
		kind = "FULL OUTER JOIN"
	}
	return fmt.Sprintf("%sSELECT %s\n%sFROM (\n%s\n%s) AS %s %s (\n%s\n%s) AS %s ON %s",
		ind, strings.Join(items, ", "),
		ind, left, ind, la, kind, right, ind, ra, strings.Join(on, " AND ")), nil
}

// sharedJoinCol reports whether col is equated with an identically or
// differently named right column, returning that right column.
func sharedJoinCol(col string, on [][2]string) (string, bool) {
	for _, p := range on {
		if p[0] == col {
			return p[1], true
		}
	}
	return "", false
}

// condSQL renders a condition in SQL syntax. Type atoms cannot occur in
// table-level queries; they render as FALSE defensively.
func condSQL(c cond.Expr) string {
	switch v := c.(type) {
	case cond.True:
		return "TRUE"
	case cond.False:
		return "FALSE"
	case cond.TypeIs:
		return "FALSE /* IS OF has no SQL form */"
	case cond.Null:
		return quoteIdent(v.Attr) + " IS NULL"
	case cond.Cmp:
		return fmt.Sprintf("%s %s %s", quoteIdent(v.Attr), v.Op, v.Val)
	case *cond.Not:
		if n, ok := v.X.(cond.Null); ok {
			return quoteIdent(n.Attr) + " IS NOT NULL"
		}
		return "NOT (" + condSQL(v.X) + ")"
	case *cond.And:
		return joinConds(v.Xs, " AND ")
	case *cond.Or:
		return joinConds(v.Xs, " OR ")
	}
	return "FALSE"
}

func joinConds(xs []cond.Expr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		s := condSQL(x)
		switch x.(type) {
		case *cond.And, *cond.Or:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}
