-- DDL
CREATE TABLE AllTypes (
  Id BIGINT NOT NULL,
  H0 VARCHAR(255),
  R0_0 VARCHAR(255),
  FK0_0 BIGINT,
  R0_1 VARCHAR(255),
  FK0_1 BIGINT,
  H1 VARCHAR(255),
  R1_0 VARCHAR(255),
  FK1_0 BIGINT,
  R1_1 VARCHAR(255),
  FK1_1 BIGINT,
  Disc VARCHAR(255) NOT NULL,
  PRIMARY KEY (Id)
);

-- query view: Hub0
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Hub0' AS "__type" FROM (
    SELECT * FROM (
      SELECT t21.Id AS Id, t21.H0 AS H0, t21."__is_Hub1" AS "__is_Hub1", t21."__is_Rim0_0" AS "__is_Rim0_0", t21."__is_Rim0_1" AS "__is_Rim0_1", t21."__is_Rim1_0" AS "__is_Rim1_0", t22."__is_Rim1_1" AS "__is_Rim1_1"
      FROM (
        SELECT t17.Id AS Id, t17.H0 AS H0, t17."__is_Hub1" AS "__is_Hub1", t17."__is_Rim0_0" AS "__is_Rim0_0", t17."__is_Rim0_1" AS "__is_Rim0_1", t18."__is_Rim1_0" AS "__is_Rim1_0"
        FROM (
          SELECT t13.Id AS Id, t13.H0 AS H0, t13."__is_Hub1" AS "__is_Hub1", t13."__is_Rim0_0" AS "__is_Rim0_0", t14."__is_Rim0_1" AS "__is_Rim0_1"
          FROM (
            SELECT t9.Id AS Id, t9.H0 AS H0, t9."__is_Hub1" AS "__is_Hub1", t10."__is_Rim0_0" AS "__is_Rim0_0"
            FROM (
              SELECT t5.Id AS Id, t5.H0 AS H0, t6."__is_Hub1" AS "__is_Hub1"
              FROM (
                SELECT Id, H0 FROM (
                  SELECT * FROM (
                    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
                  ) AS t1 WHERE Disc = 'Hub0'
                ) AS t2
              ) AS t5 LEFT OUTER JOIN (
                SELECT Id, true AS "__is_Hub1" FROM (
                  SELECT * FROM (
                    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
                  ) AS t3 WHERE Disc = 'Hub1'
                ) AS t4
              ) AS t6 ON t5.Id = t6.Id
            ) AS t9 LEFT OUTER JOIN (
              SELECT Id, true AS "__is_Rim0_0" FROM (
                SELECT * FROM (
                  SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
                ) AS t7 WHERE Disc = 'Rim0_0'
              ) AS t8
            ) AS t10 ON t9.Id = t10.Id
          ) AS t13 LEFT OUTER JOIN (
            SELECT Id, true AS "__is_Rim0_1" FROM (
              SELECT * FROM (
                SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
              ) AS t11 WHERE Disc = 'Rim0_1'
            ) AS t12
          ) AS t14 ON t13.Id = t14.Id
        ) AS t17 LEFT OUTER JOIN (
          SELECT Id, true AS "__is_Rim1_0" FROM (
            SELECT * FROM (
              SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
            ) AS t15 WHERE Disc = 'Rim1_0'
          ) AS t16
        ) AS t18 ON t17.Id = t18.Id
      ) AS t21 LEFT OUTER JOIN (
        SELECT Id, true AS "__is_Rim1_1" FROM (
          SELECT * FROM (
            SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
          ) AS t19 WHERE Disc = 'Rim1_1'
        ) AS t20
      ) AS t22 ON t21.Id = t22.Id
    ) AS t23 WHERE "__is_Hub1" IS NULL AND "__is_Rim0_0" IS NULL AND "__is_Rim0_1" IS NULL AND "__is_Rim1_0" IS NULL AND "__is_Rim1_1" IS NULL
  ) AS t24
) AS t25
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Hub1' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
    ) AS t26 WHERE Disc = 'Hub1'
  ) AS t27
) AS t28
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_0' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
    ) AS t29 WHERE Disc = 'Rim0_0'
  ) AS t30
) AS t31
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_1' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
    ) AS t32 WHERE Disc = 'Rim0_1'
  ) AS t33
) AS t34
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim1_0' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
    ) AS t35 WHERE Disc = 'Rim1_0'
  ) AS t36
) AS t37
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, R1_1, 'Rim1_1' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
    ) AS t38 WHERE Disc = 'Rim1_1'
  ) AS t39
) AS t40;
-- constructor:
--   if (__type = 'Hub0') then Hub0(H0, Id)
--   else if (__type = 'Hub1') then Hub1(H0, H1, Id)
--   else if (__type = 'Rim0_0') then Rim0_0(H0, Id, R0_0)
--   else if (__type = 'Rim0_1') then Rim0_1(H0, Id, R0_1)
--   else if (__type = 'Rim1_0') then Rim1_0(H0, Id, R1_0)
--   else if (__type = 'Rim1_1') then Rim1_1(H0, Id, R1_1)

-- query view: Hub1
SELECT Id, H0, H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Hub1' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE Disc = 'Hub1'
) AS t2;
-- constructor:
--   if (__type = 'Hub1') then Hub1(H0, H1, Id)

-- query view: Rim0_0
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_0' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE Disc = 'Rim0_0'
) AS t2;
-- constructor:
--   if (__type = 'Rim0_0') then Rim0_0(H0, Id, R0_0)

-- query view: Rim0_1
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_1' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE Disc = 'Rim0_1'
) AS t2;
-- constructor:
--   if (__type = 'Rim0_1') then Rim0_1(H0, Id, R0_1)

-- query view: Rim1_0
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim1_0' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE Disc = 'Rim1_0'
) AS t2;
-- constructor:
--   if (__type = 'Rim1_0') then Rim1_0(H0, Id, R1_0)

-- query view: Rim1_1
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, R1_1, 'Rim1_1' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE Disc = 'Rim1_1'
) AS t2;
-- constructor:
--   if (__type = 'Rim1_1') then Rim1_1(H0, Id, R1_1)

-- association view: A0_0
SELECT Id AS Rim0_0_Id, FK0_0 AS Hub0_Id FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE FK0_0 IS NOT NULL
) AS t2;

-- association view: A0_1
SELECT Id AS Rim0_1_Id, FK0_1 AS Hub0_Id FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE FK0_1 IS NOT NULL
) AS t2;

-- association view: A1_0
SELECT Id AS Rim1_0_Id, FK1_0 AS Hub1_Id FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE FK1_0 IS NOT NULL
) AS t2;

-- association view: A1_1
SELECT Id AS Rim1_1_Id, FK1_1 AS Hub1_Id FROM (
  SELECT * FROM (
    SELECT Id, H0, R0_0, FK0_0, R0_1, FK0_1, H1, R1_0, FK1_0, R1_1, FK1_1, Disc FROM AllTypes
  ) AS t1 WHERE FK1_1 IS NOT NULL
) AS t2;
