-- DDL
CREATE TABLE HR (
  Id BIGINT NOT NULL,
  Name VARCHAR(255),
  PRIMARY KEY (Id)
);

CREATE TABLE Emp (
  Id BIGINT NOT NULL,
  Dept VARCHAR(255),
  PRIMARY KEY (Id),
  CONSTRAINT fk_emp_hr FOREIGN KEY (Id) REFERENCES HR (Id)
);

CREATE TABLE Client (
  Cid BIGINT NOT NULL,
  Eid BIGINT,
  Name VARCHAR(255),
  Score BIGINT,
  Addr VARCHAR(255),
  PRIMARY KEY (Cid),
  CONSTRAINT fk_client_emp FOREIGN KEY (Eid) REFERENCES Emp (Id)
);

-- query view: Person
SELECT Id, Name, 'Person' AS "__type" FROM (
  SELECT Id, Name FROM HR
) AS t1;
-- constructor:
--   if (__type = 'Person') then Person(Id, Name)
