-- DDL
CREATE TABLE T_Hub0 (
  Id BIGINT NOT NULL,
  H0 VARCHAR(255),
  PRIMARY KEY (Id)
);

CREATE TABLE T_Hub1 (
  Id BIGINT NOT NULL,
  H1 VARCHAR(255),
  PRIMARY KEY (Id),
  CONSTRAINT fk_Hub1 FOREIGN KEY (Id) REFERENCES T_Hub0 (Id)
);

CREATE TABLE T_Rim0_0 (
  Id BIGINT NOT NULL,
  R0_0 VARCHAR(255),
  FK0_0 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Rim0_0 FOREIGN KEY (Id) REFERENCES T_Hub0 (Id),
  CONSTRAINT fk_a0_0 FOREIGN KEY (FK0_0) REFERENCES T_Hub0 (Id)
);

CREATE TABLE T_Rim0_1 (
  Id BIGINT NOT NULL,
  R0_1 VARCHAR(255),
  FK0_1 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Rim0_1 FOREIGN KEY (Id) REFERENCES T_Hub0 (Id),
  CONSTRAINT fk_a0_1 FOREIGN KEY (FK0_1) REFERENCES T_Hub0 (Id)
);

CREATE TABLE T_Rim1_0 (
  Id BIGINT NOT NULL,
  R1_0 VARCHAR(255),
  FK1_0 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Rim1_0 FOREIGN KEY (Id) REFERENCES T_Hub0 (Id),
  CONSTRAINT fk_a1_0 FOREIGN KEY (FK1_0) REFERENCES T_Hub1 (Id)
);

CREATE TABLE T_Rim1_1 (
  Id BIGINT NOT NULL,
  R1_1 VARCHAR(255),
  FK1_1 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Rim1_1 FOREIGN KEY (Id) REFERENCES T_Hub0 (Id),
  CONSTRAINT fk_a1_1 FOREIGN KEY (FK1_1) REFERENCES T_Hub1 (Id)
);

-- query view: Hub0
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Hub0' AS "__type" FROM (
    SELECT * FROM (
      SELECT t35.Id AS Id, t35.H0 AS H0, t35."__is_Hub1" AS "__is_Hub1", t35."__is_Rim0_0" AS "__is_Rim0_0", t35."__is_Rim0_1" AS "__is_Rim0_1", t35."__is_Rim1_0" AS "__is_Rim1_0", t36."__is_Rim1_1" AS "__is_Rim1_1"
      FROM (
        SELECT t28.Id AS Id, t28.H0 AS H0, t28."__is_Hub1" AS "__is_Hub1", t28."__is_Rim0_0" AS "__is_Rim0_0", t28."__is_Rim0_1" AS "__is_Rim0_1", t29."__is_Rim1_0" AS "__is_Rim1_0"
        FROM (
          SELECT t21.Id AS Id, t21.H0 AS H0, t21."__is_Hub1" AS "__is_Hub1", t21."__is_Rim0_0" AS "__is_Rim0_0", t22."__is_Rim0_1" AS "__is_Rim0_1"
          FROM (
            SELECT t14.Id AS Id, t14.H0 AS H0, t14."__is_Hub1" AS "__is_Hub1", t15."__is_Rim0_0" AS "__is_Rim0_0"
            FROM (
              SELECT t7.Id AS Id, t7.H0 AS H0, t8."__is_Hub1" AS "__is_Hub1"
              FROM (
                SELECT Id, H0 FROM (
                  SELECT Id, H0 FROM T_Hub0
                ) AS t1
              ) AS t7 LEFT OUTER JOIN (
                SELECT Id, true AS "__is_Hub1" FROM (
                  SELECT t4.Id AS Id, t4.H0 AS H0, t5.H1 AS H1
                  FROM (
                    SELECT Id, H0 FROM (
                      SELECT Id, H0 FROM T_Hub0
                    ) AS t2
                  ) AS t4 INNER JOIN (
                    SELECT Id, H1 FROM (
                      SELECT Id, H1 FROM T_Hub1
                    ) AS t3
                  ) AS t5 ON t4.Id = t5.Id
                ) AS t6
              ) AS t8 ON t7.Id = t8.Id
            ) AS t14 LEFT OUTER JOIN (
              SELECT Id, true AS "__is_Rim0_0" FROM (
                SELECT t11.Id AS Id, t11.H0 AS H0, t12.R0_0 AS R0_0
                FROM (
                  SELECT Id, H0 FROM (
                    SELECT Id, H0 FROM T_Hub0
                  ) AS t9
                ) AS t11 INNER JOIN (
                  SELECT Id, R0_0 FROM (
                    SELECT Id, R0_0, FK0_0 FROM T_Rim0_0
                  ) AS t10
                ) AS t12 ON t11.Id = t12.Id
              ) AS t13
            ) AS t15 ON t14.Id = t15.Id
          ) AS t21 LEFT OUTER JOIN (
            SELECT Id, true AS "__is_Rim0_1" FROM (
              SELECT t18.Id AS Id, t18.H0 AS H0, t19.R0_1 AS R0_1
              FROM (
                SELECT Id, H0 FROM (
                  SELECT Id, H0 FROM T_Hub0
                ) AS t16
              ) AS t18 INNER JOIN (
                SELECT Id, R0_1 FROM (
                  SELECT Id, R0_1, FK0_1 FROM T_Rim0_1
                ) AS t17
              ) AS t19 ON t18.Id = t19.Id
            ) AS t20
          ) AS t22 ON t21.Id = t22.Id
        ) AS t28 LEFT OUTER JOIN (
          SELECT Id, true AS "__is_Rim1_0" FROM (
            SELECT t25.Id AS Id, t25.H0 AS H0, t26.R1_0 AS R1_0
            FROM (
              SELECT Id, H0 FROM (
                SELECT Id, H0 FROM T_Hub0
              ) AS t23
            ) AS t25 INNER JOIN (
              SELECT Id, R1_0 FROM (
                SELECT Id, R1_0, FK1_0 FROM T_Rim1_0
              ) AS t24
            ) AS t26 ON t25.Id = t26.Id
          ) AS t27
        ) AS t29 ON t28.Id = t29.Id
      ) AS t35 LEFT OUTER JOIN (
        SELECT Id, true AS "__is_Rim1_1" FROM (
          SELECT t32.Id AS Id, t32.H0 AS H0, t33.R1_1 AS R1_1
          FROM (
            SELECT Id, H0 FROM (
              SELECT Id, H0 FROM T_Hub0
            ) AS t30
          ) AS t32 INNER JOIN (
            SELECT Id, R1_1 FROM (
              SELECT Id, R1_1, FK1_1 FROM T_Rim1_1
            ) AS t31
          ) AS t33 ON t32.Id = t33.Id
        ) AS t34
      ) AS t36 ON t35.Id = t36.Id
    ) AS t37 WHERE "__is_Hub1" IS NULL AND "__is_Rim0_0" IS NULL AND "__is_Rim0_1" IS NULL AND "__is_Rim1_0" IS NULL AND "__is_Rim1_1" IS NULL
  ) AS t38
) AS t39
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Hub1' AS "__type" FROM (
    SELECT t42.Id AS Id, t42.H0 AS H0, t43.H1 AS H1
    FROM (
      SELECT Id, H0 FROM (
        SELECT Id, H0 FROM T_Hub0
      ) AS t40
    ) AS t42 INNER JOIN (
      SELECT Id, H1 FROM (
        SELECT Id, H1 FROM T_Hub1
      ) AS t41
    ) AS t43 ON t42.Id = t43.Id
  ) AS t44
) AS t45
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_0' AS "__type" FROM (
    SELECT t48.Id AS Id, t48.H0 AS H0, t49.R0_0 AS R0_0
    FROM (
      SELECT Id, H0 FROM (
        SELECT Id, H0 FROM T_Hub0
      ) AS t46
    ) AS t48 INNER JOIN (
      SELECT Id, R0_0 FROM (
        SELECT Id, R0_0, FK0_0 FROM T_Rim0_0
      ) AS t47
    ) AS t49 ON t48.Id = t49.Id
  ) AS t50
) AS t51
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_1' AS "__type" FROM (
    SELECT t54.Id AS Id, t54.H0 AS H0, t55.R0_1 AS R0_1
    FROM (
      SELECT Id, H0 FROM (
        SELECT Id, H0 FROM T_Hub0
      ) AS t52
    ) AS t54 INNER JOIN (
      SELECT Id, R0_1 FROM (
        SELECT Id, R0_1, FK0_1 FROM T_Rim0_1
      ) AS t53
    ) AS t55 ON t54.Id = t55.Id
  ) AS t56
) AS t57
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim1_0' AS "__type" FROM (
    SELECT t60.Id AS Id, t60.H0 AS H0, t61.R1_0 AS R1_0
    FROM (
      SELECT Id, H0 FROM (
        SELECT Id, H0 FROM T_Hub0
      ) AS t58
    ) AS t60 INNER JOIN (
      SELECT Id, R1_0 FROM (
        SELECT Id, R1_0, FK1_0 FROM T_Rim1_0
      ) AS t59
    ) AS t61 ON t60.Id = t61.Id
  ) AS t62
) AS t63
UNION ALL
SELECT Id, H0, H1, R0_0, R0_1, R1_0, R1_1, "__type" FROM (
  SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, R1_1, 'Rim1_1' AS "__type" FROM (
    SELECT t66.Id AS Id, t66.H0 AS H0, t67.R1_1 AS R1_1
    FROM (
      SELECT Id, H0 FROM (
        SELECT Id, H0 FROM T_Hub0
      ) AS t64
    ) AS t66 INNER JOIN (
      SELECT Id, R1_1 FROM (
        SELECT Id, R1_1, FK1_1 FROM T_Rim1_1
      ) AS t65
    ) AS t67 ON t66.Id = t67.Id
  ) AS t68
) AS t69;
-- constructor:
--   if (__type = 'Hub0') then Hub0(H0, Id)
--   else if (__type = 'Hub1') then Hub1(H0, H1, Id)
--   else if (__type = 'Rim0_0') then Rim0_0(H0, Id, R0_0)
--   else if (__type = 'Rim0_1') then Rim0_1(H0, Id, R0_1)
--   else if (__type = 'Rim1_0') then Rim1_0(H0, Id, R1_0)
--   else if (__type = 'Rim1_1') then Rim1_1(H0, Id, R1_1)

-- query view: Hub1
SELECT Id, H0, H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Hub1' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.H0 AS H0, t4.H1 AS H1
  FROM (
    SELECT Id, H0 FROM (
      SELECT Id, H0 FROM T_Hub0
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, H1 FROM (
      SELECT Id, H1 FROM T_Hub1
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'Hub1') then Hub1(H0, H1, Id)

-- query view: Rim0_0
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_0' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.H0 AS H0, t4.R0_0 AS R0_0
  FROM (
    SELECT Id, H0 FROM (
      SELECT Id, H0 FROM T_Hub0
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, R0_0 FROM (
      SELECT Id, R0_0, FK0_0 FROM T_Rim0_0
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'Rim0_0') then Rim0_0(H0, Id, R0_0)

-- query view: Rim0_1
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim0_1' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.H0 AS H0, t4.R0_1 AS R0_1
  FROM (
    SELECT Id, H0 FROM (
      SELECT Id, H0 FROM T_Hub0
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, R0_1 FROM (
      SELECT Id, R0_1, FK0_1 FROM T_Rim0_1
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'Rim0_1') then Rim0_1(H0, Id, R0_1)

-- query view: Rim1_0
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, R1_0, CAST(NULL AS VARCHAR(255)) AS R1_1, 'Rim1_0' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.H0 AS H0, t4.R1_0 AS R1_0
  FROM (
    SELECT Id, H0 FROM (
      SELECT Id, H0 FROM T_Hub0
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, R1_0 FROM (
      SELECT Id, R1_0, FK1_0 FROM T_Rim1_0
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'Rim1_0') then Rim1_0(H0, Id, R1_0)

-- query view: Rim1_1
SELECT Id, H0, CAST(NULL AS VARCHAR(255)) AS H1, CAST(NULL AS VARCHAR(255)) AS R0_0, CAST(NULL AS VARCHAR(255)) AS R0_1, CAST(NULL AS VARCHAR(255)) AS R1_0, R1_1, 'Rim1_1' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.H0 AS H0, t4.R1_1 AS R1_1
  FROM (
    SELECT Id, H0 FROM (
      SELECT Id, H0 FROM T_Hub0
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, R1_1 FROM (
      SELECT Id, R1_1, FK1_1 FROM T_Rim1_1
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'Rim1_1') then Rim1_1(H0, Id, R1_1)

-- association view: A0_0
SELECT Id AS Rim0_0_Id, FK0_0 AS Hub0_Id FROM (
  SELECT * FROM (
    SELECT Id, R0_0, FK0_0 FROM T_Rim0_0
  ) AS t1 WHERE FK0_0 IS NOT NULL
) AS t2;

-- association view: A0_1
SELECT Id AS Rim0_1_Id, FK0_1 AS Hub0_Id FROM (
  SELECT * FROM (
    SELECT Id, R0_1, FK0_1 FROM T_Rim0_1
  ) AS t1 WHERE FK0_1 IS NOT NULL
) AS t2;

-- association view: A1_0
SELECT Id AS Rim1_0_Id, FK1_0 AS Hub1_Id FROM (
  SELECT * FROM (
    SELECT Id, R1_0, FK1_0 FROM T_Rim1_0
  ) AS t1 WHERE FK1_0 IS NOT NULL
) AS t2;

-- association view: A1_1
SELECT Id AS Rim1_1_Id, FK1_1 AS Hub1_Id FROM (
  SELECT * FROM (
    SELECT Id, R1_1, FK1_1 FROM T_Rim1_1
  ) AS t1 WHERE FK1_1 IS NOT NULL
) AS t2;
