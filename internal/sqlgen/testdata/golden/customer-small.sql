-- DDL
CREATE TABLE TabH0 (
  Id BIGINT NOT NULL,
  A0_0 VARCHAR(255),
  A0_1 VARCHAR(255),
  A0_2 VARCHAR(255),
  A0_3 VARCHAR(255),
  A0_4 VARCHAR(255),
  Disc VARCHAR(255) NOT NULL,
  FKA0 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Assoc0 FOREIGN KEY (FKA0) REFERENCES TabH1 (Id)
);

CREATE TABLE TabH1 (
  Id BIGINT NOT NULL,
  A1_0 VARCHAR(255),
  FKA1 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Assoc1 FOREIGN KEY (FKA1) REFERENCES TabH2 (Id)
);

CREATE TABLE TabH1T1 (
  Id BIGINT NOT NULL,
  A1_1 VARCHAR(255),
  PRIMARY KEY (Id),
  CONSTRAINT fk_TabH1T1 FOREIGN KEY (Id) REFERENCES TabH1 (Id)
);

CREATE TABLE TabH1T2 (
  Id BIGINT NOT NULL,
  A1_2 VARCHAR(255),
  PRIMARY KEY (Id),
  CONSTRAINT fk_TabH1T2 FOREIGN KEY (Id) REFERENCES TabH1 (Id)
);

CREATE TABLE TabH1T3 (
  Id BIGINT NOT NULL,
  A1_3 VARCHAR(255),
  PRIMARY KEY (Id),
  CONSTRAINT fk_TabH1T3 FOREIGN KEY (Id) REFERENCES TabH1 (Id)
);

CREATE TABLE TabH2 (
  Id BIGINT NOT NULL,
  A2_0 VARCHAR(255),
  A2_1 VARCHAR(255),
  A2_2 VARCHAR(255),
  Disc VARCHAR(255) NOT NULL,
  FKA2 BIGINT,
  PRIMARY KEY (Id),
  CONSTRAINT fk_Assoc2 FOREIGN KEY (FKA2) REFERENCES TabH0 (Id)
);

-- query view: H0T0
SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, "__type" FROM (
  SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T0' AS "__type" FROM (
    SELECT * FROM (
      SELECT t17.Id AS Id, t17.A0_0 AS A0_0, t17."__is_H0T1" AS "__is_H0T1", t17."__is_H0T2" AS "__is_H0T2", t17."__is_H0T3" AS "__is_H0T3", t18."__is_H0T4" AS "__is_H0T4"
      FROM (
        SELECT t13.Id AS Id, t13.A0_0 AS A0_0, t13."__is_H0T1" AS "__is_H0T1", t13."__is_H0T2" AS "__is_H0T2", t14."__is_H0T3" AS "__is_H0T3"
        FROM (
          SELECT t9.Id AS Id, t9.A0_0 AS A0_0, t9."__is_H0T1" AS "__is_H0T1", t10."__is_H0T2" AS "__is_H0T2"
          FROM (
            SELECT t5.Id AS Id, t5.A0_0 AS A0_0, t6."__is_H0T1" AS "__is_H0T1"
            FROM (
              SELECT Id, A0_0 FROM (
                SELECT * FROM (
                  SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
                ) AS t1 WHERE Disc = 'H0T0'
              ) AS t2
            ) AS t5 LEFT OUTER JOIN (
              SELECT Id, true AS "__is_H0T1" FROM (
                SELECT * FROM (
                  SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
                ) AS t3 WHERE Disc = 'H0T1'
              ) AS t4
            ) AS t6 ON t5.Id = t6.Id
          ) AS t9 LEFT OUTER JOIN (
            SELECT Id, true AS "__is_H0T2" FROM (
              SELECT * FROM (
                SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
              ) AS t7 WHERE Disc = 'H0T2'
            ) AS t8
          ) AS t10 ON t9.Id = t10.Id
        ) AS t13 LEFT OUTER JOIN (
          SELECT Id, true AS "__is_H0T3" FROM (
            SELECT * FROM (
              SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
            ) AS t11 WHERE Disc = 'H0T3'
          ) AS t12
        ) AS t14 ON t13.Id = t14.Id
      ) AS t17 LEFT OUTER JOIN (
        SELECT Id, true AS "__is_H0T4" FROM (
          SELECT * FROM (
            SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
          ) AS t15 WHERE Disc = 'H0T4'
        ) AS t16
      ) AS t18 ON t17.Id = t18.Id
    ) AS t19 WHERE "__is_H0T1" IS NULL AND "__is_H0T2" IS NULL AND "__is_H0T3" IS NULL AND "__is_H0T4" IS NULL
  ) AS t20
) AS t21
UNION ALL
SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, "__type" FROM (
  SELECT Id, A0_0, A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T1' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
    ) AS t22 WHERE Disc = 'H0T1'
  ) AS t23
) AS t24
UNION ALL
SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, "__type" FROM (
  SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T2' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
    ) AS t25 WHERE Disc = 'H0T2'
  ) AS t26
) AS t27
UNION ALL
SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, "__type" FROM (
  SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T3' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
    ) AS t28 WHERE Disc = 'H0T3'
  ) AS t29
) AS t30
UNION ALL
SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, "__type" FROM (
  SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, A0_4, 'H0T4' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
    ) AS t31 WHERE Disc = 'H0T4'
  ) AS t32
) AS t33;
-- constructor:
--   if (__type = 'H0T0') then H0T0(A0_0, Id)
--   else if (__type = 'H0T1') then H0T1(A0_0, A0_1, Id)
--   else if (__type = 'H0T2') then H0T2(A0_0, A0_2, Id)
--   else if (__type = 'H0T3') then H0T3(A0_0, A0_3, Id)
--   else if (__type = 'H0T4') then H0T4(A0_0, A0_4, Id)

-- query view: H0T1
SELECT Id, A0_0, A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T1' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
  ) AS t1 WHERE Disc = 'H0T1'
) AS t2;
-- constructor:
--   if (__type = 'H0T1') then H0T1(A0_0, A0_1, Id)

-- query view: H0T2
SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T2' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
  ) AS t1 WHERE Disc = 'H0T2'
) AS t2;
-- constructor:
--   if (__type = 'H0T2') then H0T2(A0_0, A0_2, Id)

-- query view: H0T3
SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, A0_3, CAST(NULL AS VARCHAR(255)) AS A0_4, 'H0T3' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
  ) AS t1 WHERE Disc = 'H0T3'
) AS t2;
-- constructor:
--   if (__type = 'H0T3') then H0T3(A0_0, A0_3, Id)

-- query view: H0T4
SELECT Id, A0_0, CAST(NULL AS VARCHAR(255)) AS A0_1, CAST(NULL AS VARCHAR(255)) AS A0_2, CAST(NULL AS VARCHAR(255)) AS A0_3, A0_4, 'H0T4' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
  ) AS t1 WHERE Disc = 'H0T4'
) AS t2;
-- constructor:
--   if (__type = 'H0T4') then H0T4(A0_0, A0_4, Id)

-- query view: H1T0
SELECT Id, A1_0, A1_1, A1_2, A1_3, "__type" FROM (
  SELECT Id, A1_0, CAST(NULL AS VARCHAR(255)) AS A1_1, CAST(NULL AS VARCHAR(255)) AS A1_2, CAST(NULL AS VARCHAR(255)) AS A1_3, 'H1T0' AS "__type" FROM (
    SELECT * FROM (
      SELECT t21.Id AS Id, t21.A1_0 AS A1_0, t21."__is_H1T1" AS "__is_H1T1", t21."__is_H1T2" AS "__is_H1T2", t22."__is_H1T3" AS "__is_H1T3"
      FROM (
        SELECT t14.Id AS Id, t14.A1_0 AS A1_0, t14."__is_H1T1" AS "__is_H1T1", t15."__is_H1T2" AS "__is_H1T2"
        FROM (
          SELECT t7.Id AS Id, t7.A1_0 AS A1_0, t8."__is_H1T1" AS "__is_H1T1"
          FROM (
            SELECT Id, A1_0 FROM (
              SELECT Id, A1_0, FKA1 FROM TabH1
            ) AS t1
          ) AS t7 LEFT OUTER JOIN (
            SELECT Id, true AS "__is_H1T1" FROM (
              SELECT t4.Id AS Id, t4.A1_0 AS A1_0, t5.A1_1 AS A1_1
              FROM (
                SELECT Id, A1_0 FROM (
                  SELECT Id, A1_0, FKA1 FROM TabH1
                ) AS t2
              ) AS t4 INNER JOIN (
                SELECT Id, A1_1 FROM (
                  SELECT Id, A1_1 FROM TabH1T1
                ) AS t3
              ) AS t5 ON t4.Id = t5.Id
            ) AS t6
          ) AS t8 ON t7.Id = t8.Id
        ) AS t14 LEFT OUTER JOIN (
          SELECT Id, true AS "__is_H1T2" FROM (
            SELECT t11.Id AS Id, t11.A1_0 AS A1_0, t12.A1_2 AS A1_2
            FROM (
              SELECT Id, A1_0 FROM (
                SELECT Id, A1_0, FKA1 FROM TabH1
              ) AS t9
            ) AS t11 INNER JOIN (
              SELECT Id, A1_2 FROM (
                SELECT Id, A1_2 FROM TabH1T2
              ) AS t10
            ) AS t12 ON t11.Id = t12.Id
          ) AS t13
        ) AS t15 ON t14.Id = t15.Id
      ) AS t21 LEFT OUTER JOIN (
        SELECT Id, true AS "__is_H1T3" FROM (
          SELECT t18.Id AS Id, t18.A1_0 AS A1_0, t19.A1_3 AS A1_3
          FROM (
            SELECT Id, A1_0 FROM (
              SELECT Id, A1_0, FKA1 FROM TabH1
            ) AS t16
          ) AS t18 INNER JOIN (
            SELECT Id, A1_3 FROM (
              SELECT Id, A1_3 FROM TabH1T3
            ) AS t17
          ) AS t19 ON t18.Id = t19.Id
        ) AS t20
      ) AS t22 ON t21.Id = t22.Id
    ) AS t23 WHERE "__is_H1T1" IS NULL AND "__is_H1T2" IS NULL AND "__is_H1T3" IS NULL
  ) AS t24
) AS t25
UNION ALL
SELECT Id, A1_0, A1_1, A1_2, A1_3, "__type" FROM (
  SELECT Id, A1_0, A1_1, CAST(NULL AS VARCHAR(255)) AS A1_2, CAST(NULL AS VARCHAR(255)) AS A1_3, 'H1T1' AS "__type" FROM (
    SELECT t28.Id AS Id, t28.A1_0 AS A1_0, t29.A1_1 AS A1_1
    FROM (
      SELECT Id, A1_0 FROM (
        SELECT Id, A1_0, FKA1 FROM TabH1
      ) AS t26
    ) AS t28 INNER JOIN (
      SELECT Id, A1_1 FROM (
        SELECT Id, A1_1 FROM TabH1T1
      ) AS t27
    ) AS t29 ON t28.Id = t29.Id
  ) AS t30
) AS t31
UNION ALL
SELECT Id, A1_0, A1_1, A1_2, A1_3, "__type" FROM (
  SELECT Id, A1_0, CAST(NULL AS VARCHAR(255)) AS A1_1, A1_2, CAST(NULL AS VARCHAR(255)) AS A1_3, 'H1T2' AS "__type" FROM (
    SELECT t34.Id AS Id, t34.A1_0 AS A1_0, t35.A1_2 AS A1_2
    FROM (
      SELECT Id, A1_0 FROM (
        SELECT Id, A1_0, FKA1 FROM TabH1
      ) AS t32
    ) AS t34 INNER JOIN (
      SELECT Id, A1_2 FROM (
        SELECT Id, A1_2 FROM TabH1T2
      ) AS t33
    ) AS t35 ON t34.Id = t35.Id
  ) AS t36
) AS t37
UNION ALL
SELECT Id, A1_0, A1_1, A1_2, A1_3, "__type" FROM (
  SELECT Id, A1_0, CAST(NULL AS VARCHAR(255)) AS A1_1, CAST(NULL AS VARCHAR(255)) AS A1_2, A1_3, 'H1T3' AS "__type" FROM (
    SELECT t40.Id AS Id, t40.A1_0 AS A1_0, t41.A1_3 AS A1_3
    FROM (
      SELECT Id, A1_0 FROM (
        SELECT Id, A1_0, FKA1 FROM TabH1
      ) AS t38
    ) AS t40 INNER JOIN (
      SELECT Id, A1_3 FROM (
        SELECT Id, A1_3 FROM TabH1T3
      ) AS t39
    ) AS t41 ON t40.Id = t41.Id
  ) AS t42
) AS t43;
-- constructor:
--   if (__type = 'H1T0') then H1T0(A1_0, Id)
--   else if (__type = 'H1T1') then H1T1(A1_0, A1_1, Id)
--   else if (__type = 'H1T2') then H1T2(A1_0, A1_2, Id)
--   else if (__type = 'H1T3') then H1T3(A1_0, A1_3, Id)

-- query view: H1T1
SELECT Id, A1_0, A1_1, CAST(NULL AS VARCHAR(255)) AS A1_2, CAST(NULL AS VARCHAR(255)) AS A1_3, 'H1T1' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.A1_0 AS A1_0, t4.A1_1 AS A1_1
  FROM (
    SELECT Id, A1_0 FROM (
      SELECT Id, A1_0, FKA1 FROM TabH1
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, A1_1 FROM (
      SELECT Id, A1_1 FROM TabH1T1
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'H1T1') then H1T1(A1_0, A1_1, Id)

-- query view: H1T2
SELECT Id, A1_0, CAST(NULL AS VARCHAR(255)) AS A1_1, A1_2, CAST(NULL AS VARCHAR(255)) AS A1_3, 'H1T2' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.A1_0 AS A1_0, t4.A1_2 AS A1_2
  FROM (
    SELECT Id, A1_0 FROM (
      SELECT Id, A1_0, FKA1 FROM TabH1
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, A1_2 FROM (
      SELECT Id, A1_2 FROM TabH1T2
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'H1T2') then H1T2(A1_0, A1_2, Id)

-- query view: H1T3
SELECT Id, A1_0, CAST(NULL AS VARCHAR(255)) AS A1_1, CAST(NULL AS VARCHAR(255)) AS A1_2, A1_3, 'H1T3' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.A1_0 AS A1_0, t4.A1_3 AS A1_3
  FROM (
    SELECT Id, A1_0 FROM (
      SELECT Id, A1_0, FKA1 FROM TabH1
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, A1_3 FROM (
      SELECT Id, A1_3 FROM TabH1T3
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'H1T3') then H1T3(A1_0, A1_3, Id)

-- query view: H2T0
SELECT Id, A2_0, A2_1, A2_2, "__type" FROM (
  SELECT Id, A2_0, CAST(NULL AS VARCHAR(255)) AS A2_1, CAST(NULL AS VARCHAR(255)) AS A2_2, 'H2T0' AS "__type" FROM (
    SELECT * FROM (
      SELECT t9.Id AS Id, t9.A2_0 AS A2_0, t9."__is_H2T1" AS "__is_H2T1", t10."__is_H2T2" AS "__is_H2T2"
      FROM (
        SELECT t5.Id AS Id, t5.A2_0 AS A2_0, t6."__is_H2T1" AS "__is_H2T1"
        FROM (
          SELECT Id, A2_0 FROM (
            SELECT * FROM (
              SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
            ) AS t1 WHERE Disc = 'H2T0'
          ) AS t2
        ) AS t5 LEFT OUTER JOIN (
          SELECT Id, true AS "__is_H2T1" FROM (
            SELECT * FROM (
              SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
            ) AS t3 WHERE Disc = 'H2T1'
          ) AS t4
        ) AS t6 ON t5.Id = t6.Id
      ) AS t9 LEFT OUTER JOIN (
        SELECT Id, true AS "__is_H2T2" FROM (
          SELECT * FROM (
            SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
          ) AS t7 WHERE Disc = 'H2T2'
        ) AS t8
      ) AS t10 ON t9.Id = t10.Id
    ) AS t11 WHERE "__is_H2T1" IS NULL AND "__is_H2T2" IS NULL
  ) AS t12
) AS t13
UNION ALL
SELECT Id, A2_0, A2_1, A2_2, "__type" FROM (
  SELECT Id, A2_0, A2_1, CAST(NULL AS VARCHAR(255)) AS A2_2, 'H2T1' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
    ) AS t14 WHERE Disc = 'H2T1'
  ) AS t15
) AS t16
UNION ALL
SELECT Id, A2_0, A2_1, A2_2, "__type" FROM (
  SELECT Id, A2_0, CAST(NULL AS VARCHAR(255)) AS A2_1, A2_2, 'H2T2' AS "__type" FROM (
    SELECT * FROM (
      SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
    ) AS t17 WHERE Disc = 'H2T2'
  ) AS t18
) AS t19;
-- constructor:
--   if (__type = 'H2T0') then H2T0(A2_0, Id)
--   else if (__type = 'H2T1') then H2T1(A2_0, A2_1, Id)
--   else if (__type = 'H2T2') then H2T2(A2_0, A2_2, Id)

-- query view: H2T1
SELECT Id, A2_0, A2_1, CAST(NULL AS VARCHAR(255)) AS A2_2, 'H2T1' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
  ) AS t1 WHERE Disc = 'H2T1'
) AS t2;
-- constructor:
--   if (__type = 'H2T1') then H2T1(A2_0, A2_1, Id)

-- query view: H2T2
SELECT Id, A2_0, CAST(NULL AS VARCHAR(255)) AS A2_1, A2_2, 'H2T2' AS "__type" FROM (
  SELECT * FROM (
    SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
  ) AS t1 WHERE Disc = 'H2T2'
) AS t2;
-- constructor:
--   if (__type = 'H2T2') then H2T2(A2_0, A2_2, Id)

-- association view: Assoc0
SELECT Id AS H0T0_Id, FKA0 AS H1T0_Id FROM (
  SELECT * FROM (
    SELECT Id, A0_0, A0_1, A0_2, A0_3, A0_4, Disc, FKA0 FROM TabH0
  ) AS t1 WHERE FKA0 IS NOT NULL
) AS t2;

-- association view: Assoc1
SELECT Id AS H1T0_Id, FKA1 AS H2T0_Id FROM (
  SELECT * FROM (
    SELECT Id, A1_0, FKA1 FROM TabH1
  ) AS t1 WHERE FKA1 IS NOT NULL
) AS t2;

-- association view: Assoc2
SELECT Id AS H2T0_Id, FKA2 AS H0T0_Id FROM (
  SELECT * FROM (
    SELECT Id, A2_0, A2_1, A2_2, Disc, FKA2 FROM TabH2
  ) AS t1 WHERE FKA2 IS NOT NULL
) AS t2;
