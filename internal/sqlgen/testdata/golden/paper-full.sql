-- DDL
CREATE TABLE HR (
  Id BIGINT NOT NULL,
  Name VARCHAR(255),
  PRIMARY KEY (Id)
);

CREATE TABLE Emp (
  Id BIGINT NOT NULL,
  Dept VARCHAR(255),
  PRIMARY KEY (Id),
  CONSTRAINT fk_emp_hr FOREIGN KEY (Id) REFERENCES HR (Id)
);

CREATE TABLE Client (
  Cid BIGINT NOT NULL,
  Eid BIGINT,
  Name VARCHAR(255),
  Score BIGINT,
  Addr VARCHAR(255),
  PRIMARY KEY (Cid),
  CONSTRAINT fk_client_emp FOREIGN KEY (Eid) REFERENCES Emp (Id)
);

-- query view: Customer
SELECT Cid AS Id, Name, CAST(NULL AS VARCHAR(255)) AS Department, Score AS CredScore, Addr AS BillAddr, 'Customer' AS "__type" FROM (
  SELECT Cid, Eid, Name, Score, Addr FROM Client
) AS t1;
-- constructor:
--   if (__type = 'Customer') then Customer(BillAddr, CredScore, Id, Name)

-- query view: Employee
SELECT Id, Name, Department, CAST(NULL AS BIGINT) AS CredScore, CAST(NULL AS VARCHAR(255)) AS BillAddr, 'Employee' AS "__type" FROM (
  SELECT t3.Id AS Id, t3.Name AS Name, t4.Department AS Department
  FROM (
    SELECT Id, Name FROM (
      SELECT Id, Name FROM HR
    ) AS t1
  ) AS t3 INNER JOIN (
    SELECT Id, Dept AS Department FROM (
      SELECT Id, Dept FROM Emp
    ) AS t2
  ) AS t4 ON t3.Id = t4.Id
) AS t5;
-- constructor:
--   if (__type = 'Employee') then Employee(Department, Id, Name)

-- query view: Person
SELECT Id, Name, Department, CredScore, BillAddr, "__type" FROM (
  SELECT Id, Name, CAST(NULL AS VARCHAR(255)) AS Department, CAST(NULL AS BIGINT) AS CredScore, CAST(NULL AS VARCHAR(255)) AS BillAddr, 'Person' AS "__type" FROM (
    SELECT * FROM (
      SELECT t10.Id AS Id, t10.Name AS Name, t10."__is_Employee" AS "__is_Employee", t11."__is_Customer" AS "__is_Customer"
      FROM (
        SELECT t7.Id AS Id, t7.Name AS Name, t8."__is_Employee" AS "__is_Employee"
        FROM (
          SELECT Id, Name FROM (
            SELECT Id, Name FROM HR
          ) AS t1
        ) AS t7 LEFT OUTER JOIN (
          SELECT Id, true AS "__is_Employee" FROM (
            SELECT t4.Id AS Id, t4.Name AS Name, t5.Department AS Department
            FROM (
              SELECT Id, Name FROM (
                SELECT Id, Name FROM HR
              ) AS t2
            ) AS t4 INNER JOIN (
              SELECT Id, Dept AS Department FROM (
                SELECT Id, Dept FROM Emp
              ) AS t3
            ) AS t5 ON t4.Id = t5.Id
          ) AS t6
        ) AS t8 ON t7.Id = t8.Id
      ) AS t10 LEFT OUTER JOIN (
        SELECT Cid AS Id, true AS "__is_Customer" FROM (
          SELECT Cid, Eid, Name, Score, Addr FROM Client
        ) AS t9
      ) AS t11 ON t10.Id = t11.Id
    ) AS t12 WHERE "__is_Employee" IS NULL AND "__is_Customer" IS NULL
  ) AS t13
) AS t14
UNION ALL
SELECT Id, Name, Department, CredScore, BillAddr, "__type" FROM (
  SELECT Id, Name, Department, CAST(NULL AS BIGINT) AS CredScore, CAST(NULL AS VARCHAR(255)) AS BillAddr, 'Employee' AS "__type" FROM (
    SELECT t17.Id AS Id, t17.Name AS Name, t18.Department AS Department
    FROM (
      SELECT Id, Name FROM (
        SELECT Id, Name FROM HR
      ) AS t15
    ) AS t17 INNER JOIN (
      SELECT Id, Dept AS Department FROM (
        SELECT Id, Dept FROM Emp
      ) AS t16
    ) AS t18 ON t17.Id = t18.Id
  ) AS t19
) AS t20
UNION ALL
SELECT Id, Name, Department, CredScore, BillAddr, "__type" FROM (
  SELECT Cid AS Id, Name, CAST(NULL AS VARCHAR(255)) AS Department, Score AS CredScore, Addr AS BillAddr, 'Customer' AS "__type" FROM (
    SELECT Cid, Eid, Name, Score, Addr FROM Client
  ) AS t21
) AS t22;
-- constructor:
--   if (__type = 'Person') then Person(Id, Name)
--   else if (__type = 'Employee') then Employee(Department, Id, Name)
--   else if (__type = 'Customer') then Customer(BillAddr, CredScore, Id, Name)

-- association view: Supports
SELECT Cid AS Customer_Id, Eid AS Employee_Id FROM (
  SELECT * FROM (
    SELECT Cid, Eid, Name, Score, Addr FROM Client
  ) AS t1 WHERE Eid IS NOT NULL
) AS t2;
