package sqlgen_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/sqlgen"
	"github.com/ormkit/incmap/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden SQL files with the current renderer output")

// goldenWorkloads are the mappings whose rendered SQL is pinned. The
// customer model is scaled down so the golden file stays reviewable
// while keeping the TPT+TPH mix and shared-table FK associations.
func goldenWorkloads() []struct {
	name string
	m    *frag.Mapping
} {
	return []struct {
		name string
		m    *frag.Mapping
	}{
		{"paper-initial", workload.PaperInitial()},
		{"paper-full", workload.PaperFull()},
		{"hubrim-tph", workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: true})},
		{"hubrim-tpt", workload.HubRim(workload.HubRimOptions{N: 2, M: 2})},
		{"customer-small", workload.Customer(workload.CustomerOptions{
			Types: 12, Hierarchies: 3, LargestTPH: 5, Associations: 3, SharedTableFKs: 1,
		})},
	}
}

// renderAll renders one workload deterministically: the store DDL, then
// every query view and association view in sorted name order (update
// views range over client data and have no SQL form).
func renderAll(t *testing.T, m *frag.Mapping) string {
	t.Helper()
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(context.Background(), m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cat := m.Catalog()
	var b strings.Builder
	b.WriteString("-- DDL\n")
	b.WriteString(sqlgen.DDL(m.Store))

	types := make([]string, 0, len(v.Query))
	for ty := range v.Query {
		types = append(types, ty)
	}
	sort.Strings(types)
	for _, ty := range types {
		sql, err := sqlgen.Query(cat, v.Query[ty].Q)
		if err != nil {
			t.Fatalf("rendering query view %s: %v", ty, err)
		}
		fmt.Fprintf(&b, "\n-- query view: %s\n%s\n", ty, sql)
		if con := v.Query[ty].FormatConstructor(); con != "" {
			fmt.Fprintf(&b, "-- constructor:\n--   %s\n", strings.ReplaceAll(con, "\n", "\n--   "))
		}
	}

	assocs := make([]string, 0, len(v.Assoc))
	for a := range v.Assoc {
		assocs = append(assocs, a)
	}
	sort.Strings(assocs)
	for _, a := range assocs {
		sql, err := sqlgen.Query(cat, v.Assoc[a].Q)
		if err != nil {
			t.Fatalf("rendering association view %s: %v", a, err)
		}
		fmt.Fprintf(&b, "\n-- association view: %s\n%s\n", a, sql)
	}
	return b.String()
}

// TestGoldenSQL renders every compiled query view of the pinned
// workloads and compares against the committed golden files. Run with
// -update to regenerate after an intentional renderer change.
func TestGoldenSQL(t *testing.T) {
	for _, wl := range goldenWorkloads() {
		t.Run(wl.name, func(t *testing.T) {
			got := renderAll(t, wl.m)
			path := filepath.Join("testdata", "golden", wl.name+".sql")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run `go test ./internal/sqlgen -run TestGoldenSQL -update` to create it): %v", path, err)
			}
			if string(want) != got {
				t.Fatalf("rendered SQL for %s differs from %s.\nRe-run with -update if the change is intentional.\n%s",
					wl.name, path, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff reports the first differing line, for a readable failure.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("golden has %d lines, got %d", len(wl), len(gl))
}

// TestGoldenSQLDeterministic guards the goldens' usefulness: two renders
// of the same workload must be byte-identical (map iteration anywhere in
// the compile-render path would show up here as flakes).
func TestGoldenSQLDeterministic(t *testing.T) {
	m1 := workload.PaperFull()
	m2 := workload.PaperFull()
	if a, b := renderAll(t, m1), renderAll(t, m2); a != b {
		t.Fatal("two renders of the paper workload differ; SQL generation is nondeterministic")
	}
}
