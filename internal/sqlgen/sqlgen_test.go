package sqlgen

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/workload"
)

func TestDDLPaperStore(t *testing.T) {
	m := workload.PaperFull()
	ddl := DDL(m.Store)
	for _, want := range []string{
		"CREATE TABLE HR (",
		"Id BIGINT NOT NULL",
		"Name VARCHAR(255),",
		"PRIMARY KEY (Id)",
		"CONSTRAINT fk_emp_hr FOREIGN KEY (Id) REFERENCES HR (Id)",
		"CONSTRAINT fk_client_emp FOREIGN KEY (Eid) REFERENCES Emp (Id)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
	if n := strings.Count(ddl, "CREATE TABLE"); n != 3 {
		t.Errorf("tables = %d, want 3", n)
	}
}

func TestDDLQuotesOddIdentifiers(t *testing.T) {
	if quoteIdent("__type") != `"__type"` {
		t.Errorf("leading underscore must be quoted: %s", quoteIdent("__type"))
	}
	if quoteIdent("Name") != "Name" {
		t.Errorf("plain identifier must not be quoted")
	}
	if quoteIdent(`a"b`) != `"a""b"` {
		t.Errorf("embedded quote not escaped: %s", quoteIdent(`a"b`))
	}
}

func TestQueryViewSQL(t *testing.T) {
	m := workload.PaperFull()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := Query(m.Catalog(), views.Query["Person"].Q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT", "FROM HR", "FROM Client", "UNION ALL", "LEFT OUTER JOIN",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("Person view SQL missing %q:\n%s", want, sql)
		}
	}
	if !strings.HasSuffix(sql, ";") {
		t.Errorf("statement not terminated")
	}
}

func TestQueryRejectsClientScans(t *testing.T) {
	m := workload.PaperFull()
	views, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// Update views range over entity sets: no SQL form.
	if _, err := Query(m.Catalog(), views.Update["HR"].Q); err == nil {
		t.Fatal("update view rendered as SQL")
	}
	if _, err := Query(m.Catalog(), cqt.ScanAssoc{Assoc: "Supports"}); err == nil {
		t.Fatal("association scan rendered as SQL")
	}
}

func TestCondSQL(t *testing.T) {
	cases := []struct {
		c    cond.Expr
		want string
	}{
		{cond.True{}, "TRUE"},
		{cond.False{}, "FALSE"},
		{cond.Null{Attr: "x"}, "x IS NULL"},
		{cond.NotNull("x"), "x IS NOT NULL"},
		{cond.Cmp{Attr: "a", Op: cond.OpGe, Val: cond.Int(3)}, "a >= 3"},
		{cond.NewAnd(cond.NotNull("a"), cond.NewOr(cond.Null{Attr: "b"}, cond.Cmp{Attr: "c", Op: cond.OpEq, Val: cond.String("x")})),
			"a IS NOT NULL AND (b IS NULL OR c = 'x')"},
	}
	for _, tc := range cases {
		if got := condSQL(tc.c); got != tc.want {
			t.Errorf("condSQL(%v) = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestFullOuterJoinCoalesce(t *testing.T) {
	m := workload.PaperFull()
	j := cqt.Join{
		Kind: cqt.FullOuter,
		L:    cqt.ScanTable{Table: "HR"},
		R: cqt.Project{In: cqt.ScanTable{Table: "Emp"},
			Cols: []cqt.ProjCol{cqt.Col("Id"), cqt.ColAs("Dept", "Department")}},
		On: [][2]string{{"Id", "Id"}},
	}
	sql, err := Query(m.Catalog(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "COALESCE(") {
		t.Errorf("full outer join key not coalesced:\n%s", sql)
	}
	if !strings.Contains(sql, "FULL OUTER JOIN") {
		t.Errorf("join kind missing:\n%s", sql)
	}
}

func TestGeneratedSQLForEveryQueryView(t *testing.T) {
	// Every query view of every workload model must be renderable SQL.
	models := map[string]func() *mapping{
		"paper":       workload.PaperFull,
		"partitioned": workload.PartitionedAgeModel,
		"gender":      workload.GenderConstantModel,
	}
	for name, mk := range models {
		m := mk()
		views, err := compiler.New().Compile(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for ty, v := range views.Query {
			if _, err := Query(m.Catalog(), v.Q); err != nil {
				t.Errorf("%s: query view %s: %v", name, ty, err)
			}
		}
		for a, v := range views.Assoc {
			if _, err := Query(m.Catalog(), v.Q); err != nil {
				t.Errorf("%s: association view %s: %v", name, a, err)
			}
		}
	}
}

type mapping = frag.Mapping
